(* Golden snapshot tests for the C emitter: the exact text of
   [Emit_c.full_function] (all four Figure 8 shapes) and
   [Emit_c.table_free_function] (general and degenerate-basis forms) on
   fixed instances, pinned against checked-in fixtures under
   test/golden/. Any emitter change — intentional or not — shows up as
   a readable text diff instead of a silent behaviour change; the
   native conformance harness then proves the new text still runs
   correctly.

   Intentional changes are promoted with one command:

     LAMS_UPDATE_GOLDEN=1 dune runtest --force

   which rewrites the source fixtures in place (the failing test then
   passes and the diff lands in review like any other change).

   The plans are built with [Plan.build_uncached]: the cached path
   shares delta arrays whose unreached residue classes fill in lazily,
   so its emitted text can depend on what else warmed the cache during
   the test run — the uncached oracle is deterministic. *)

open Lams_codegen

(* The paper's running example (§2): processor 1's share of
   A(4:319:9) under cyclic(8) on 4 processors. *)
let paper_plan () =
  let pr = Lams_core.Problem.make ~p:4 ~k:8 ~l:4 ~s:9 in
  match Plan.build_uncached pr ~m:1 ~u:319 with
  | Some plan -> plan
  | None -> Alcotest.fail "paper instance: processor 1 owns nothing"

(* d = gcd(s, pk) = 8 >= k = 4: no R/L basis exists and the table-free
   emitter degenerates to a single constant-gap loop. *)
let degenerate_plan () =
  let pr = Lams_core.Problem.make ~p:2 ~k:4 ~l:0 ~s:8 in
  match Plan.build_uncached pr ~m:0 ~u:63 with
  | Some plan -> plan
  | None -> Alcotest.fail "degenerate instance: processor 0 owns nothing"

(* Fixture resolution works from either the dune runtest cwd
   (_build/default/test, fixtures copied next to the binary, source
   tree three levels up) or the repo root (dune exec). Reads prefer
   the local copy; promotion always writes the source tree. *)
let read_dirs = [ "golden"; "test/golden"; "../../../test/golden" ]
let promote_dirs = [ "../../../test/golden"; "test/golden"; "golden" ]

let read_fixture fixture =
  let path d = Filename.concat d fixture in
  match List.find_opt (fun d -> Sys.file_exists (path d)) read_dirs with
  | None -> None
  | Some d ->
      Some (In_channel.with_open_text (path d) In_channel.input_all)

let promote fixture text =
  match List.find_opt Sys.file_exists promote_dirs with
  | None -> None
  | Some d ->
      let path = Filename.concat d fixture in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc text);
      Some path

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys when x = y -> go (i + 1) (xs, ys)
    | x :: _, y :: _ -> Printf.sprintf "line %d: %S vs golden %S" i x y
    | x :: _, [] -> Printf.sprintf "line %d: %S past end of golden" i x
    | [], y :: _ -> Printf.sprintf "line %d: golden %S past end of emitted" i y
    | [], [] -> "identical"
  in
  go 1 (la, lb)

let check_golden fixture emit () =
  let text = emit () in
  match read_fixture fixture with
  | Some golden when golden = text -> ()
  | current -> (
      if Sys.getenv_opt "LAMS_UPDATE_GOLDEN" = Some "1" then
        match promote fixture text with
        | Some path -> Printf.printf "golden: promoted %s\n%!" path
        | None ->
            Alcotest.failf "golden %s: no fixture directory to promote into"
              fixture
      else
        match current with
        | None ->
            Alcotest.failf
              "golden %s missing; run LAMS_UPDATE_GOLDEN=1 dune runtest \
               --force to create it"
              fixture
        | Some golden ->
            Alcotest.failf
              "golden %s out of date (%s); run LAMS_UPDATE_GOLDEN=1 dune \
               runtest --force to promote the new text"
              fixture (first_diff text golden))

let shape_case sh =
  let fixture =
    Printf.sprintf "shape_%s.c"
      (match sh with
      | Shapes.Shape_a -> "a"
      | Shapes.Shape_b -> "b"
      | Shapes.Shape_c -> "c"
      | Shapes.Shape_d -> "d")
  in
  Alcotest.test_case fixture `Quick
    (check_golden fixture (fun () ->
         Emit_c.full_function sh (paper_plan ()) ~name:"node_code"))

let suite =
  List.map shape_case Shapes.all
  @ [
      Alcotest.test_case "table_free.c" `Quick
        (check_golden "table_free.c" (fun () ->
             Emit_c.table_free_function (paper_plan ()) ~name:"node_code"));
      Alcotest.test_case "table_free_degenerate.c" `Quick
        (check_golden "table_free_degenerate.c" (fun () ->
             Emit_c.table_free_function (degenerate_plan ())
               ~name:"node_code"));
    ]
