open Lams_util

let test_prng_determinism () =
  let g1 = Prng.create 42L and g2 = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 g1) (Prng.next_int64 g2)
  done;
  let g3 = Prng.create 43L in
  Tutil.check_bool "different seed, different stream" true
    (Prng.next_int64 (Prng.create 42L) <> Prng.next_int64 g3)

let test_prng_bounds () =
  let g = Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    Tutil.check_bool "in [0,10)" true (v >= 0 && v < 10);
    let w = Prng.int_in g (-5) 5 in
    Tutil.check_bool "in [-5,5]" true (w >= -5 && w <= 5);
    let f = Prng.float g 2.0 in
    Tutil.check_bool "in [0,2)" true (f >= 0. && f < 2.)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_prng_split_copy () =
  let g = Prng.create 1L in
  let child = Prng.split g in
  Tutil.check_bool "child independent" true
    (Prng.next_int64 child <> Prng.next_int64 g);
  let g2 = Prng.create 5L in
  let c = Prng.copy g2 in
  Alcotest.(check int64) "copy same next" (Prng.next_int64 g2) (Prng.next_int64 c)

let test_prng_shuffle_permutes () =
  let g = Prng.create 9L in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Prng.shuffle g b;
  Tutil.check_bool "same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a)

let test_stats_known () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 2.5) (Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100 = max" 5.0 (Stats.percentile xs 1.);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile xs 0.25);
  let s = Stats.summarize xs in
  Tutil.check_int "n" 5 s.Stats.n;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "bad quantile"
    (Invalid_argument "Stats.percentile: q outside [0,1]") (fun () ->
      ignore (Stats.percentile [| 1. |] 1.5))

let prop_median_between =
  Tutil.qtest "min <= median <= max"
    QCheck2.Gen.(array_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let m = Stats.median xs in
      let mn = Array.fold_left min infinity xs
      and mx = Array.fold_left max neg_infinity xs in
      mn <= m && m <= mx)

let prop_percentile_monotone =
  Tutil.qtest "percentile is monotone in q"
    QCheck2.Gen.(
      tup3
        (array_size (int_range 1 50) (float_bound_inclusive 1000.))
        (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (xs, q1, q2) ->
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let test_timer_sanity () =
  let t0 = Timer.now_ns () in
  let x = ref 0 in
  for i = 1 to 1000 do
    x := !x + i
  done;
  let t1 = Timer.now_ns () in
  Tutil.check_bool "monotonic" true (Int64.compare t1 t0 >= 0);
  let _, us = Timer.time_us (fun () -> Sys.opaque_identity !x) in
  Tutil.check_bool "non-negative" true (us >= 0.);
  let best = Timer.best_of ~repeats:3 (fun () -> ()) in
  Tutil.check_bool "best_of non-negative" true (best >= 0.)

let test_ascii_table () =
  let t = Ascii_table.create ~align:[ Ascii_table.Left; Ascii_table.Right ]
      [ "name"; "value" ] in
  Ascii_table.add_row t [ "alpha"; "1" ];
  Ascii_table.add_separator t;
  Ascii_table.add_row t [ "beta"; "22" ];
  let s = Ascii_table.render t in
  Tutil.check_bool "contains header" true
    (String.length s > 0 && String.index_opt s '|' <> None);
  let lines = String.split_on_char '\n' (String.trim s) in
  (* header rule + header + rule + row + rule + row + rule = 7 lines *)
  Tutil.check_int "line count" 7 (List.length lines);
  List.iter
    (fun l ->
      Tutil.check_int "equal widths" (String.length (List.hd lines))
        (String.length l))
    lines

let test_ascii_plot () =
  let s =
    Ascii_plot.plot ~title:"t" ~log_x:true
      [ { Ascii_plot.label = "a"; marker = '*'; points = [ (1., 1.); (2., 4.) ] };
        { Ascii_plot.label = "b"; marker = 'o'; points = [ (1., 2.); (2., 3.) ] } ]
  in
  Tutil.check_bool "has markers" true
    (String.contains s '*' && String.contains s 'o');
  Alcotest.check_raises "log of nonpositive"
    (Invalid_argument "Ascii_plot.plot: log_x over non-positive x") (fun () ->
      ignore
        (Ascii_plot.plot ~title:"t" ~log_x:true
           [ { Ascii_plot.label = "a"; marker = '*'; points = [ (0., 1.) ] } ]))

let suite =
  [ Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split/copy" `Quick test_prng_split_copy;
    Alcotest.test_case "prng shuffle permutes" `Quick
      test_prng_shuffle_permutes;
    Alcotest.test_case "stats known values" `Quick test_stats_known;
    Alcotest.test_case "stats input validation" `Quick test_stats_errors;
    Alcotest.test_case "timer sanity" `Quick test_timer_sanity;
    Alcotest.test_case "ascii table" `Quick test_ascii_table;
    Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
    prop_median_between;
    prop_percentile_monotone ]
