(* The lib/obs metrics registry: monotonic counters, immutable snapshots,
   reset semantics, distribution summaries against a brute-force
   reference, and the disabled-by-default contract. *)

open Lams_obs

(* Every test leaves the registry disabled and empty so instrumented
   library code elsewhere in the suite stays unobserved. *)
let with_obs f =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_registration_idempotent () =
  let a = Obs.counter "obs_test.idem" ~units:"u" in
  let b = Obs.counter "obs_test.idem" in
  with_obs (fun () ->
      Obs.incr a;
      Obs.add b 2;
      Tutil.check_int "same cell via either handle" 3 (Obs.counter_value a));
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Obs: \"obs_test.idem\" is already a counter")
    (fun () -> ignore (Obs.distribution "obs_test.idem"))

let test_disabled_is_inert () =
  let c = Obs.counter "obs_test.disabled_c" in
  let d = Obs.distribution "obs_test.disabled_d" in
  let sp = Obs.span "obs_test.disabled_sp" in
  Obs.set_enabled false;
  Obs.reset ();
  Obs.incr c;
  Obs.add c 41;
  Obs.observe d 1.5;
  Tutil.check_int "span still runs the thunk" 7 (Obs.time sp (fun () -> 7));
  Tutil.check_int "counter untouched" 0 (Obs.counter_value c);
  Tutil.check_int "distribution untouched" 0 (Obs.distribution_count d);
  (* ... and the snapshot agrees. *)
  let snap = Obs.snapshot () in
  Alcotest.(check (option int)) "snapshot value" (Some 0)
    (Obs.find_counter snap "obs_test.disabled_c");
  match Obs.find snap "obs_test.disabled_sp" with
  | Some { Obs.value = Obs.Span s; _ } -> Tutil.check_int "span empty" 0 s.Obs.count
  | _ -> Alcotest.fail "span entry missing"

let test_negative_add_rejected () =
  let c = Obs.counter "obs_test.neg" in
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Obs.add: counters are monotonic (negative n)")
    (fun () -> Obs.add c (-1))

let prop_counter_monotonic =
  Tutil.qtest ~count:100 "counters are monotonic under random adds"
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 50))
    ~print:(fun ns -> String.concat ";" (List.map string_of_int ns))
    (fun ns ->
      let c = Obs.counter "obs_test.mono" in
      with_obs (fun () ->
          Obs.reset ();
          let ok = ref true and prev = ref 0 in
          List.iter
            (fun n ->
              Obs.add c n;
              let v = Obs.counter_value c in
              if v < !prev then ok := false;
              prev := v)
            ns;
          !ok && Obs.counter_value c = List.fold_left ( + ) 0 ns))

let test_snapshot_immutable () =
  let c = Obs.counter "obs_test.snap_c" in
  let d = Obs.distribution "obs_test.snap_d" in
  with_obs (fun () ->
      Obs.incr c;
      Obs.observe d 2.;
      let before = Obs.snapshot () in
      Obs.add c 10;
      Obs.observe d 100.;
      Alcotest.(check (option int)) "old counter value" (Some 1)
        (Obs.find_counter before "obs_test.snap_c");
      (match Obs.find before "obs_test.snap_d" with
      | Some { Obs.value = Obs.Distribution s; _ } ->
          Tutil.check_int "old dist count" 1 s.Obs.count;
          Alcotest.(check (float 0.)) "old dist max" 2. s.Obs.max
      | _ -> Alcotest.fail "distribution entry missing");
      Alcotest.(check (option int)) "new snapshot sees the add" (Some 11)
        (Obs.find_counter (Obs.snapshot ()) "obs_test.snap_c"))

let test_reset_zeroes () =
  let c = Obs.counter "obs_test.reset_c" in
  let d = Obs.distribution "obs_test.reset_d" in
  with_obs (fun () ->
      Obs.add c 5;
      Obs.observe d 3.;
      Obs.reset ();
      Tutil.check_int "counter zero" 0 (Obs.counter_value c);
      Tutil.check_int "distribution empty" 0 (Obs.distribution_count d);
      match Obs.find (Obs.snapshot ()) "obs_test.reset_d" with
      | Some { Obs.value = Obs.Distribution s; _ } ->
          Tutil.check_int "summary count" 0 s.Obs.count;
          Alcotest.(check (float 0.)) "summary mean" 0. s.Obs.mean
      | _ -> Alcotest.fail "distribution entry missing")

(* Brute-force reference for the summary: sort and interpolate, written
   out independently of Lams_util.Stats. *)
let brute_summary xs =
  let sorted = List.sort compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let pos = 0.95 *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  let p95 = (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac) in
  let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
  (arr.(0), mean, p95, arr.(n - 1))

let prop_distribution_summary =
  Tutil.qtest ~count:200 "distribution summary matches brute-force reference"
    QCheck2.Gen.(list_size (int_range 1 60) (int_range (-1000) 1000))
    ~print:(fun ns -> String.concat ";" (List.map string_of_int ns))
    (fun ns ->
      let xs = List.map float_of_int ns in
      let d = Obs.distribution "obs_test.quantiles" in
      with_obs (fun () ->
          Obs.reset ();
          List.iter (Obs.observe d) xs;
          match Obs.find (Obs.snapshot ()) "obs_test.quantiles" with
          | Some { Obs.value = Obs.Distribution s; _ } ->
              let min', mean, p95, max' = brute_summary xs in
              let close a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs b) in
              s.Obs.count = List.length xs
              && close s.Obs.min min' && close s.Obs.mean mean
              && close s.Obs.p95 p95 && close s.Obs.max max'
          | _ -> false))

let test_span_records () =
  let sp = Obs.span "obs_test.span" in
  with_obs (fun () ->
      Tutil.check_int "result" 42 (Obs.time sp (fun () -> 42));
      match Obs.find (Obs.snapshot ()) "obs_test.span" with
      | Some { Obs.value = Obs.Span s; Obs.units; _ } ->
          Tutil.check_int "one sample" 1 s.Obs.count;
          Alcotest.(check string) "microseconds" "us" units;
          Tutil.check_bool "non-negative" true (s.Obs.min >= 0.)
      | _ -> Alcotest.fail "span entry missing")

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec at i = i + m <= n && (String.sub s i m = affix || at (i + 1)) in
  at 0

let test_render_and_json () =
  let c = Obs.counter "obs_test.render" ~units:"things" in
  with_obs (fun () ->
      Obs.add c 12;
      let snap = Obs.snapshot () in
      let table = Obs.render snap in
      Tutil.check_bool "table mentions the counter" true
        (contains ~affix:"obs_test.render" table);
      let json = Obs.to_json snap in
      Tutil.check_bool "json prefix" true
        (String.length json > 13 && String.sub json 0 13 = "{\"metrics\": [");
      Tutil.check_bool "json row" true
        (contains
           ~affix:
             "{\"name\": \"obs_test.render\", \"kind\": \"counter\", \
              \"units\": \"things\", \"value\": 12}"
           json))

let test_plan_cache_counters () =
  (* 3 passes x 4 processors over one section: one whole-machine build,
     eleven cache hits. Then a capacity-1 thrash between two sections:
     two more misses, two evictions. *)
  let pr = Lams_core.Problem.make ~p:4 ~k:8 ~l:4 ~s:9 in
  let pr2 = Lams_core.Problem.make ~p:4 ~k:8 ~l:0 ~s:7 in
  Lams_core.Plan_cache.clear ();
  Fun.protect
    ~finally:(fun () ->
      Lams_core.Plan_cache.set_capacity Lams_core.Plan_cache.default_capacity;
      Lams_core.Plan_cache.clear ())
    (fun () ->
      with_obs (fun () ->
          for _pass = 1 to 3 do
            for m = 0 to 3 do
              ignore (Lams_codegen.Plan.build pr ~m ~u:319 : Lams_codegen.Plan.t option)
            done
          done;
          let snap = Obs.snapshot () in
          Alcotest.(check (option int)) "misses" (Some 1)
            (Obs.find_counter snap "plan_cache.misses");
          Alcotest.(check (option int)) "hits" (Some 11)
            (Obs.find_counter snap "plan_cache.hits");
          Alcotest.(check (option int)) "no evictions yet" (Some 0)
            (Obs.find_counter snap "plan_cache.evictions");
          Lams_core.Plan_cache.set_capacity 1;
          ignore (Lams_codegen.Plan.build pr2 ~m:0 ~u:500 : Lams_codegen.Plan.t option);
          ignore (Lams_codegen.Plan.build pr ~m:0 ~u:319 : Lams_codegen.Plan.t option);
          let snap = Obs.snapshot () in
          Alcotest.(check (option int)) "misses after thrash" (Some 3)
            (Obs.find_counter snap "plan_cache.misses");
          Alcotest.(check (option int)) "evictions after thrash" (Some 2)
            (Obs.find_counter snap "plan_cache.evictions")))

let test_spmd_pool_counters () =
  with_obs (fun () ->
      let before =
        Option.value ~default:0
          (Obs.find_counter (Obs.snapshot ()) "spmd.pool.dispatches")
      in
      Lams_sim.Spmd.run_parallel ~domains:2 ~p:8 (fun _ -> ());
      Lams_sim.Spmd.run_parallel ~domains:2 ~p:8 (fun _ -> ());
      (* domains = 1 must bypass the pool entirely. *)
      Lams_sim.Spmd.run_parallel ~domains:1 ~p:8 (fun _ -> ());
      Alcotest.(check (option int)) "two pool dispatches" (Some (before + 2))
        (Obs.find_counter (Obs.snapshot ()) "spmd.pool.dispatches"))

let suite =
  [ Alcotest.test_case "registration is idempotent, kinds are checked" `Quick
      test_registration_idempotent;
    Alcotest.test_case "disabled registry is inert" `Quick
      test_disabled_is_inert;
    Alcotest.test_case "negative add rejected" `Quick test_negative_add_rejected;
    prop_counter_monotonic;
    Alcotest.test_case "snapshots are immutable" `Quick test_snapshot_immutable;
    Alcotest.test_case "reset zeroes everything" `Quick test_reset_zeroes;
    prop_distribution_summary;
    Alcotest.test_case "span timers record" `Quick test_span_records;
    Alcotest.test_case "render + JSON" `Quick test_render_and_json;
    Alcotest.test_case "plan cache hit/miss/eviction counters" `Quick
      test_plan_cache_counters;
    Alcotest.test_case "spmd pool dispatch counter" `Quick
      test_spmd_pool_counters ]
