(* Adaptive-scheduling suite: transfer splitting at packed-buffer
   boundaries, the link-health estimator, cost-aware regrouping, the
   per-link fault profiles, and the adaptive executor's convergence —
   plus the properties the cache rebase must keep under all of it. *)

open Lams_dist
open Lams_sim
open Lams_sched

let c_splits = Lams_obs.Obs.counter "sched.splits"
let c_reweights = Lams_obs.Obs.counter "sched.reweights"

let with_counters f =
  Lams_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Lams_obs.Obs.set_enabled false) f

(* A schedule with real multi-block transfers: the paper machine
   remapped onto a different blocking, strided section. *)
let demo_schedule ?(p = 4) ?(src_k = 3) ?(dst_k = 5) ?(lo = 0) ?(stride = 1)
    ?(count = 60) () =
  let hi = lo + (stride * (count - 1)) in
  let sec = Section.make ~lo ~hi ~stride in
  Schedule.build
    ~src_layout:(Layout.create ~p ~k:src_k)
    ~src_section:sec
    ~dst_layout:(Layout.create ~p ~k:dst_k)
    ~dst_section:sec

let cross_transfers sched =
  List.concat sched.Schedule.rounds

let first_wide sched =
  match
    List.find_opt
      (fun (tr : Schedule.transfer) -> tr.Schedule.elements >= 4)
      (cross_transfers sched)
  with
  | Some tr -> tr
  | None -> Alcotest.fail "no transfer with >= 4 elements"

(* --- Pack.split --- *)

let test_pack_split_partitions () =
  let tr = first_wide (demo_schedule ~stride:3 ~lo:5 ()) in
  let side = tr.Schedule.src_side in
  let all = Pack.local_addresses side in
  for at = 1 to side.Pack.elements - 1 do
    let left, right = Pack.split side ~at in
    Tutil.check_int "left elements" at left.Pack.elements;
    Tutil.check_int "right elements" (side.Pack.elements - at)
      right.Pack.elements;
    Tutil.check_int_array "left ++ right = original walk" all
      (Array.append
         (Pack.local_addresses left)
         (Pack.local_addresses right));
    (* The right side is rebased: its buffer positions restart at 0. *)
    match right.Pack.blocks with
    | { Pack.buf_pos = 0; _ } :: _ -> ()
    | _ -> Alcotest.fail "right side not rebased to buffer position 0"
  done

let test_pack_split_bounds () =
  let tr = first_wide (demo_schedule ()) in
  let side = tr.Schedule.src_side in
  List.iter
    (fun at ->
      match Pack.split side ~at with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "split outside (0, elements) must raise")
    [ 0; side.Pack.elements; -3 ]

(* --- Schedule.split_transfer --- *)

let test_split_transfer_conserves () =
  let tr = first_wide (demo_schedule ~stride:3 ~lo:5 ()) in
  let src_all = Pack.local_addresses tr.Schedule.src_side
  and dst_all = Pack.local_addresses tr.Schedule.dst_side in
  List.iter
    (fun parts ->
      let pieces = Schedule.split_transfer tr ~parts in
      Tutil.check_int "piece count"
        (min parts tr.Schedule.elements)
        (List.length pieces);
      Tutil.check_int "elements conserved" tr.Schedule.elements
        (List.fold_left
           (fun a (piece : Schedule.transfer) -> a + piece.Schedule.elements)
           0 pieces);
      List.iter
        (fun (piece : Schedule.transfer) ->
          Tutil.check_int "src side sized" piece.Schedule.elements
            piece.Schedule.src_side.Pack.elements;
          Tutil.check_int "dst side sized" piece.Schedule.elements
            piece.Schedule.dst_side.Pack.elements;
          Tutil.check_bool "endpoints preserved" true
            (piece.Schedule.src_proc = tr.Schedule.src_proc
            && piece.Schedule.dst_proc = tr.Schedule.dst_proc))
        pieces;
      Tutil.check_int_array "src walk conserved" src_all
        (Array.concat
           (List.map
              (fun (p : Schedule.transfer) ->
                Pack.local_addresses p.Schedule.src_side)
              pieces));
      Tutil.check_int_array "dst walk conserved" dst_all
        (Array.concat
           (List.map
              (fun (p : Schedule.transfer) ->
                Pack.local_addresses p.Schedule.dst_side)
              pieces)))
    [ 2; 3; 5; tr.Schedule.elements; tr.Schedule.elements + 7 ];
  match Schedule.split_transfer tr ~parts:1 with
  | [ same ] -> Tutil.check_bool "parts <= 1 is the identity" true (same == tr)
  | _ -> Alcotest.fail "parts:1 must return the transfer alone"

(* --- regroup --- *)

let test_regroup_conflict_free () =
  (* Synthetic star + chain traffic with colliding endpoints and a tag
     per transfer, weighted by a per-link cost. *)
  let sched = demo_schedule ~p:5 ~src_k:2 ~dst_k:7 ~count:120 () in
  let tagged =
    List.mapi (fun i tr -> (tr, i)) (cross_transfers sched)
  in
  let weight (tr : Schedule.transfer) =
    float_of_int
      (tr.Schedule.elements
      * (1 + ((tr.Schedule.src_proc + (3 * tr.Schedule.dst_proc)) mod 4)))
  in
  let rounds = Schedule.regroup ~weight tagged in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun round ->
      let sends = Hashtbl.create 8 and recvs = Hashtbl.create 8 in
      List.iter
        (fun ((tr : Schedule.transfer), tag) ->
          Tutil.check_bool "no sender twice per round" false
            (Hashtbl.mem sends tr.Schedule.src_proc);
          Tutil.check_bool "no receiver twice per round" false
            (Hashtbl.mem recvs tr.Schedule.dst_proc);
          Hashtbl.replace sends tr.Schedule.src_proc ();
          Hashtbl.replace recvs tr.Schedule.dst_proc ();
          Tutil.check_bool "each tag placed once" false (Hashtbl.mem seen tag);
          Hashtbl.replace seen tag ())
        round)
    rounds;
  Tutil.check_int "every transfer placed" (List.length tagged)
    (Hashtbl.length seen);
  (* Determinism: same input, same grouping (tags included). *)
  Tutil.check_bool "regroup is deterministic" true
    (rounds = Schedule.regroup ~weight tagged)

(* --- reweight --- *)

let test_reweight_neutral_identity () =
  let sched = demo_schedule () in
  let out = Schedule.reweight sched ~cost:(fun ~src:_ ~dst:_ -> 1.0) in
  Tutil.check_bool "all-1.0 costs return the schedule itself" true
    (out == sched);
  Tutil.check_bool "stays unweighted" false out.Schedule.weighted

let test_reweight_sick_link () =
  with_counters @@ fun () ->
  let sched = demo_schedule ~p:4 ~src_k:2 ~dst_k:7 ~count:200 () in
  let tr = first_wide sched in
  let sick_src = tr.Schedule.src_proc and sick_dst = tr.Schedule.dst_proc in
  let cost ~src ~dst = if src = sick_src && dst = sick_dst then 6.0 else 1.0 in
  let r0 = Lams_obs.Obs.counter_value c_reweights
  and s0 = Lams_obs.Obs.counter_value c_splits in
  let out = Schedule.reweight sched ~cost in
  Tutil.check_bool "marked weighted" true out.Schedule.weighted;
  (match Schedule.validate out with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Tutil.check_int "cross elements conserved"
    (Schedule.cross_elements sched)
    (Schedule.cross_elements out);
  Tutil.check_bool "sick transfers were split" true
    (Lams_obs.Obs.counter_value c_splits > s0);
  Tutil.check_int "one reweight recorded" (r0 + 1)
    (Lams_obs.Obs.counter_value c_reweights);
  Tutil.check_bool "weighted critical path no worse" true
    (Schedule.critical_path out ~cost
    <= Schedule.critical_path sched ~cost +. 1e-9)

(* --- Link_health --- *)

let test_health_ewma_and_sickness () =
  Link_health.reset ();
  Tutil.check_bool "unknown link is neutral" true
    (Link_health.cost ~src:0 ~dst:1 = 1.0);
  Tutil.check_bool "unknown link not sick" false
    (Link_health.is_sick ~src:0 ~dst:1);
  Link_health.note_ack ~src:0 ~dst:1 ~attempts:1 ~latency:0 ~elements:10;
  Tutil.check_bool "first-try zero-latency ack stays neutral" true
    (Link_health.cost ~src:0 ~dst:1 = 1.0);
  (* Standing backoff is the early-warning sickness signal... *)
  Link_health.note_retransmit ~src:0 ~dst:1 ~backoff:8;
  Tutil.check_bool "backoff >= 8 is sick" true
    (Link_health.is_sick ~src:0 ~dst:1);
  (* ...and an ack clears it. *)
  Link_health.note_ack ~src:0 ~dst:1 ~attempts:1 ~latency:0 ~elements:10;
  Tutil.check_bool "ack clears the standing backoff" false
    (Link_health.is_sick ~src:0 ~dst:1);
  (* Lossy acks drive the EWMA: attempts=4 is a 0.75 loss sample. *)
  let prev = ref 1.0 in
  for _ = 1 to 12 do
    Link_health.note_ack ~src:2 ~dst:3 ~attempts:4 ~latency:8 ~elements:4;
    let c = Link_health.cost ~src:2 ~dst:3 in
    Tutil.check_bool "cost grows monotonically toward the sample" true
      (c >= !prev);
    prev := c
  done;
  Tutil.check_bool "sustained 0.75 loss turns the link sick" true
    (Link_health.is_sick ~src:2 ~dst:3);
  Link_health.note_downgrade ~src:4 ~dst:0;
  Tutil.check_bool "a downgrade poisons the loss estimate" true
    (Link_health.cost ~src:4 ~dst:0 >= 4.0);
  Tutil.check_bool "report covers the touched links" true
    (List.map fst (Link_health.report ()) = [ (0, 1); (2, 3); (4, 0) ]);
  Link_health.reset ();
  Tutil.check_bool "reset forgets everything" true
    (Link_health.report () = [] && Link_health.cost ~src:2 ~dst:3 = 1.0)

let test_health_rejects_bad_events () =
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "bad health event must raise")
    [ (fun () ->
        Link_health.note_ack ~src:0 ~dst:1 ~attempts:0 ~latency:1 ~elements:1);
      (fun () ->
        Link_health.note_ack ~src:0 ~dst:1 ~attempts:1 ~latency:(-1)
          ~elements:1);
      (fun () ->
        Link_health.note_ack ~src:0 ~dst:1 ~attempts:1 ~latency:1
          ~elements:(-1)) ]

(* --- per-link fault profiles --- *)

let test_parse_link_spec () =
  (match Fault_model.parse_link_spec "0:1:drop=0.2,bw=2.5" with
  | Ok ((0, 1), r, Some bw) ->
      Tutil.check_bool "drop parsed" true (r.Fault_model.drop = 0.2);
      Tutil.check_bool "unset keys zero" true
        (r.Fault_model.duplicate = 0.0 && r.Fault_model.delay = 0.0);
      Tutil.check_bool "bandwidth parsed" true (bw = 2.5)
  | _ -> Alcotest.fail "well-formed spec must parse");
  (match Fault_model.parse_link_spec "3:2:dup=0.1,delay=0.4,reorder=0.05" with
  | Ok ((3, 2), r, None) ->
      Tutil.check_bool "dup/delay/reorder parsed" true
        (r.Fault_model.duplicate = 0.1
        && r.Fault_model.delay = 0.4
        && r.Fault_model.reorder = 0.05)
  | _ -> Alcotest.fail "well-formed spec must parse");
  List.iter
    (fun spec ->
      match Fault_model.parse_link_spec spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" spec))
    [ "0:1"; "x:1:drop=0.2"; "0:-1:drop=0.2"; "0:1:"; "0:1:drop=0";
      "0:1:drop=1.5"; "0:1:bw=0"; "0:1:bw=-2"; "0:1:frobnicate=1";
      "0:1:drop"; "0:1:drop=oops"; "0:1:drop=0.2:extra" ]

let test_link_rates_override () =
  let special = { Fault_model.no_faults with drop = 0.9 } in
  let fm =
    Fault_model.create
      ~rates:{ Fault_model.no_faults with delay = 0.2 }
      ~link_rates:(fun id -> if id = 7 then Some special else None)
      ~seed:3 ()
  in
  Tutil.check_bool "override in force on its link" true
    (Fault_model.rates_for fm ~link:7 = special);
  Tutil.check_bool "global rates elsewhere" true
    ((Fault_model.rates_for fm ~link:6).Fault_model.delay = 0.2)

let test_bandwidth_service () =
  let fm =
    Fault_model.create
      ~bandwidth:(fun id -> if id = 5 then Some 2.0 else None)
      ~seed:1 ()
  in
  Tutil.check_int "ceil(10 / 2.0)" 5
    (Fault_model.service_ticks fm ~link:5 ~payload_len:10);
  Tutil.check_int "ceil(11 / 2.0)" 6
    (Fault_model.service_ticks fm ~link:5 ~payload_len:11);
  Tutil.check_int "acks are exempt" 0
    (Fault_model.service_ticks fm ~link:5 ~payload_len:0);
  Tutil.check_int "no limit, no service" 0
    (Fault_model.service_ticks fm ~link:4 ~payload_len:10);
  (* Every delivered copy is delayed by the service time... *)
  let v = Fault_model.plan_send fm ~link:5 ~payload_len:10 in
  List.iter
    (fun (c : Fault_model.copy) ->
      Tutil.check_bool "copy carries the service delay" true
        (c.Fault_model.delay >= 5))
    v.Fault_model.copies;
  (* ...without perturbing the fault streams: same seed, same verdicts
     modulo the deterministic service offset. *)
  let rates =
    { Fault_model.drop = 0.3; duplicate = 0.2; reorder = 0.2; corrupt = 0.1;
      delay = 0.3 }
  in
  let plain = Fault_model.create ~rates ~seed:11 ()
  and limited =
    Fault_model.create ~rates
      ~bandwidth:(fun id -> if id = 5 then Some 4.0 else None)
      ~seed:11 ()
  in
  for _ = 1 to 60 do
    let a = Fault_model.plan_send plain ~link:5 ~payload_len:8
    and b = Fault_model.plan_send limited ~link:5 ~payload_len:8 in
    Tutil.check_int "same copy count" (List.length a.Fault_model.copies)
      (List.length b.Fault_model.copies);
    Tutil.check_bool "same reorder draw" true
      (a.Fault_model.reorder = b.Fault_model.reorder);
    List.iter2
      (fun (ca : Fault_model.copy) (cb : Fault_model.copy) ->
        Tutil.check_bool "same corrupt draw" true
          (ca.Fault_model.corrupt = cb.Fault_model.corrupt);
        Tutil.check_int "delay shifted by exactly the service time"
          (ca.Fault_model.delay + 2) cb.Fault_model.delay)
      a.Fault_model.copies b.Fault_model.copies
  done

(* --- the adaptive executor --- *)

let test_adaptive_identity_on_perfect_fabric () =
  Link_health.reset ();
  let p = 4 and n = 4 * 3 * 5 in
  let src =
    Darray.of_array ~name:"ai_src" ~p ~dist:(Distribution.Block_cyclic 3)
      (Array.init n (fun g -> float_of_int ((5 * g) + 2)))
  in
  let sec = Section.make ~lo:0 ~hi:(n - 1) ~stride:1 in
  let sched =
    Schedule.build
      ~src_layout:(Darray.layout src)
      ~src_section:sec
      ~dst_layout:(Layout.create ~p ~k:5)
      ~dst_section:sec
  in
  let fresh name =
    Darray.create ~name ~n ~p ~dist:(Distribution.Block_cyclic 5)
  in
  let plain = fresh "ai_plain" and adaptive = fresh "ai_adaptive" in
  let net_plain = Executor.run sched ~src ~dst:plain in
  let net_adaptive = Executor.run ~adaptive:true sched ~src ~dst:adaptive in
  Tutil.check_bool "bit-identical contents" true
    (Darray.equal_contents plain adaptive);
  Tutil.check_int "identical message count"
    (Network.messages_sent net_plain)
    (Network.messages_sent net_adaptive)

let test_adaptive_warm_table_still_exact () =
  (* Poison a link the schedule uses, then run adaptively on a perfect
     fabric: the reweight splits and reorders rounds, the result must
     not move by a bit. *)
  with_counters @@ fun () ->
  Link_health.reset ();
  let p = 4 and n = 4 * 3 * 5 in
  let src =
    Darray.of_array ~name:"aw_src" ~p ~dist:(Distribution.Block_cyclic 3)
      (Array.init n (fun g -> float_of_int ((3 * g) + 1)))
  in
  let sec = Section.make ~lo:0 ~hi:(n - 1) ~stride:1 in
  let sched =
    Schedule.build
      ~src_layout:(Darray.layout src)
      ~src_section:sec
      ~dst_layout:(Layout.create ~p ~k:5)
      ~dst_section:sec
  in
  let tr = first_wide sched in
  for _ = 1 to 10 do
    Link_health.note_ack ~src:tr.Schedule.src_proc ~dst:tr.Schedule.dst_proc
      ~attempts:5 ~latency:40 ~elements:tr.Schedule.elements
  done;
  Tutil.check_bool "link poisoned sick" true
    (Link_health.is_sick ~src:tr.Schedule.src_proc
       ~dst:tr.Schedule.dst_proc);
  let fresh name =
    Darray.create ~name ~n ~p ~dist:(Distribution.Block_cyclic 5)
  in
  let legacy = fresh "aw_legacy" and out = fresh "aw_adaptive" in
  ignore
    (Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
      : Network.t);
  let s0 = Lams_obs.Obs.counter_value c_splits in
  ignore (Executor.run ~adaptive:true sched ~src ~dst:out : Network.t);
  Tutil.check_bool "the sick link forced splits" true
    (Lams_obs.Obs.counter_value c_splits > s0);
  Tutil.check_bool "exact under a warm table" true
    (Darray.equal_contents legacy out);
  Link_health.reset ()

let test_adaptive_round_heterogeneous () =
  (* The check harness's three-way round (cold adaptive, cost-blind,
     warm adaptive on a lossy + bandwidth-limited fabric) on a fixed
     case: any divergence or a non-quiet fabric is a failure. *)
  match
    Lams_check.Check.adaptive_round { Lams_check.Check.p = 4; k = 3; l = 2; s = 3; u = 50 }
  with
  | None -> ()
  | Some mm -> Alcotest.fail (Format.asprintf "%a" Lams_check.Check.pp_mismatch mm)

(* --- properties --- *)

let gen_reweight_case =
  QCheck2.Gen.(
    let* p = int_range 2 5 in
    let* src_k = int_range 1 5 in
    let* dst_k = int_range 1 5 in
    let* count = int_range 2 150 in
    let* stride = int_range 1 3 in
    let* cost_salt = int_range 0 1000 in
    let* shifts = int_range 0 3 in
    return (p, src_k, dst_k, count, stride, cost_salt, shifts))

let print_reweight_case (p, src_k, dst_k, count, stride, cost_salt, shifts) =
  Printf.sprintf "p=%d src_k=%d dst_k=%d count=%d stride=%d salt=%d shifts=%d"
    p src_k dst_k count stride cost_salt shifts

let prop_rebase_of_reweight_validates =
  Tutil.qtest ~count:150 "rebase ∘ reweight validates, bounds kept"
    gen_reweight_case ~print:print_reweight_case
    (fun (p, src_k, dst_k, count, stride, cost_salt, shifts) ->
      let sec =
        Section.make ~lo:0 ~hi:(stride * (count - 1)) ~stride
      in
      let sched =
        Schedule.build
          ~src_layout:(Layout.create ~p ~k:src_k)
          ~src_section:sec
          ~dst_layout:(Layout.create ~p ~k:dst_k)
          ~dst_section:sec
      in
      (* A deterministic per-link cost surface derived from the salt;
         always >= 1 so neutrality can only trigger when it is flat. *)
      let cost ~src ~dst =
        1.0 +. float_of_int (((src * 7) + (dst * 3) + cost_salt) mod 5)
      in
      let budget =
        List.fold_left
          (fun a (tr : Schedule.transfer) ->
            Float.max a (float_of_int tr.Schedule.elements))
          1.0 (cross_transfers sched)
      in
      let out = Schedule.reweight ~budget sched ~cost in
      (match Schedule.validate out with
      | Ok () -> ()
      | Error msg -> QCheck2.Test.fail_reportf "reweight invalid: %s" msg);
      if Schedule.cross_elements out <> Schedule.cross_elements sched then
        QCheck2.Test.fail_reportf "cross elements not conserved";
      (* Split pieces stay within one element of the budget. *)
      List.iter
        (fun (tr : Schedule.transfer) ->
          let w = Schedule.weigh tr ~cost in
          let c = cost ~src:tr.Schedule.src_proc ~dst:tr.Schedule.dst_proc in
          if w > budget +. c +. 1e-9 then
            QCheck2.Test.fail_reportf
              "weight bound broken: %d->%d %d elements, w=%g budget=%g"
              tr.Schedule.src_proc tr.Schedule.dst_proc tr.Schedule.elements
              w budget)
        (cross_transfers out);
      (* The cache-rebase invariant survives the weighted rebuild:
         translating both sides by cycle spans keeps it valid and
         keeps every per-transfer weight. *)
      let src_span = p * src_k and dst_span = p * dst_k in
      let rebased =
        Schedule.rebase out
          ~src_delta:(shifts * src_span)
          ~dst_delta:(shifts * dst_span)
      in
      (match Schedule.validate rebased with
      | Ok () -> ()
      | Error msg ->
          QCheck2.Test.fail_reportf "rebase of reweight invalid: %s" msg);
      let weights s =
        List.map
          (fun round ->
            List.map
              (fun (tr : Schedule.transfer) ->
                ( tr.Schedule.src_proc,
                  tr.Schedule.dst_proc,
                  Schedule.weigh tr ~cost ))
              round)
          s.Schedule.rounds
      in
      if weights rebased <> weights out then
        QCheck2.Test.fail_reportf "rebase changed round weights";
      true)

let test_split_crosses_rebase_pinned () =
  (* Pinned regression: splitting after a rebase must equal rebasing
     the split pieces — on a strided section whose blocks straddle the
     cut. This is what keeps mid-exchange re-planning compatible with
     cache-served (rebased) schedules. *)
  let sched = demo_schedule ~src_k:2 ~dst_k:7 ~lo:5 ~stride:3 ~count:80 () in
  let tr = first_wide sched in
  let src_span = 4 * 2 and dst_span = 4 * 7 in
  let rebased_sched =
    Schedule.rebase sched ~src_delta:(2 * src_span) ~dst_delta:(2 * dst_span)
  in
  let tr' =
    List.find
      (fun (x : Schedule.transfer) ->
        x.Schedule.src_proc = tr.Schedule.src_proc
        && x.Schedule.dst_proc = tr.Schedule.dst_proc
        && x.Schedule.elements = tr.Schedule.elements)
      (cross_transfers rebased_sched)
  in
  let walks pieces =
    ( Array.concat
        (List.map
           (fun (p : Schedule.transfer) ->
             Pack.local_addresses p.Schedule.src_side)
           pieces),
      Array.concat
        (List.map
           (fun (p : Schedule.transfer) ->
             Pack.local_addresses p.Schedule.dst_side)
           pieces) )
  in
  let split_then_rebase =
    walks
      (List.map
         (fun (piece : Schedule.transfer) ->
           {
             piece with
             Schedule.src_side = Pack.shift piece.Schedule.src_side
                 (2 * src_span);
             dst_side = Pack.shift piece.Schedule.dst_side (2 * dst_span);
           })
         (Schedule.split_transfer tr ~parts:3))
  and rebase_then_split = walks (Schedule.split_transfer tr' ~parts:3) in
  Tutil.check_int_array "src walks agree" (fst split_then_rebase)
    (fst rebase_then_split);
  Tutil.check_int_array "dst walks agree" (snd split_then_rebase)
    (snd rebase_then_split)

let suite =
  [ Alcotest.test_case "Pack.split partitions the walk at every cut" `Quick
      test_pack_split_partitions;
    Alcotest.test_case "Pack.split rejects cuts outside (0, n)" `Quick
      test_pack_split_bounds;
    Alcotest.test_case "split_transfer conserves both walks" `Quick
      test_split_transfer_conserves;
    Alcotest.test_case "regroup is conflict-free and deterministic" `Quick
      test_regroup_conflict_free;
    Alcotest.test_case "reweight at cost 1.0 is the identity" `Quick
      test_reweight_neutral_identity;
    Alcotest.test_case "reweight splits around a sick link" `Quick
      test_reweight_sick_link;
    Alcotest.test_case "link health: EWMA, sickness, reset" `Quick
      test_health_ewma_and_sickness;
    Alcotest.test_case "link health rejects malformed events" `Quick
      test_health_rejects_bad_events;
    Alcotest.test_case "parse_link_spec grammar and rejections" `Quick
      test_parse_link_spec;
    Alcotest.test_case "per-link rates override the global ones" `Quick
      test_link_rates_override;
    Alcotest.test_case "bandwidth adds service without perturbing faults"
      `Quick test_bandwidth_service;
    Alcotest.test_case "adaptive on a perfect fabric is bit-identical"
      `Quick test_adaptive_identity_on_perfect_fabric;
    Alcotest.test_case "adaptive with a warm sick table stays exact" `Quick
      test_adaptive_warm_table_still_exact;
    Alcotest.test_case "check adaptive round on a heterogeneous fabric"
      `Quick test_adaptive_round_heterogeneous;
    prop_rebase_of_reweight_validates;
    Alcotest.test_case "split crosses rebase (pinned)" `Quick
      test_split_crosses_rebase_pinned ]
