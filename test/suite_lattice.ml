open Lams_lattice

let point b a = Point.make ~b ~a

let test_point_algebra () =
  let u = point 3 3 and v = point (-1) 2 in
  Alcotest.(check bool) "add" true (Point.equal (Point.add u v) (point 2 5));
  Alcotest.(check bool) "sub" true (Point.equal (Point.sub u v) (point 4 1));
  Alcotest.(check bool) "neg" true (Point.equal (Point.neg u) (point (-3) (-3)));
  Alcotest.(check bool)
    "scale" true
    (Point.equal (Point.scale 2 v) (point (-2) 4));
  Tutil.check_int "det fig2" 9 (Point.det u v);
  Tutil.check_int "memory gap" 27 (Point.memory_gap ~k:8 u)

let lat_32_9 = Section_lattice.create ~row_len:32 ~stride:9

let test_membership_figure2 () =
  (* Figure 2's line segments: (3,3) has 32*3+3 = 99 = 11*9; (-1,2) has
     32*2-1 = 63 = 7*9. *)
  Alcotest.(check bool) "(3,3) in lattice" true
    (Section_lattice.mem lat_32_9 (point 3 3));
  Alcotest.(check bool) "(-1,2) in lattice" true
    (Section_lattice.mem lat_32_9 (point (-1) 2));
  Alcotest.(check bool) "(1,1) not in lattice" false
    (Section_lattice.mem lat_32_9 (point 1 1));
  Alcotest.(check (option int)) "index of (3,3)" (Some 11)
    (Section_lattice.index_of lat_32_9 (point 3 3));
  Alcotest.(check (option int)) "index of (-1,2)" (Some 7)
    (Section_lattice.index_of lat_32_9 (point (-1) 2))

let test_point_of_index () =
  (* The paper's running example: element index 108 has coordinates
     (12, 3) as an absolute element; as section index i with l = 0, s = 9:
     i = 12 gives 108. *)
  let p = Section_lattice.point_of_index lat_32_9 12 in
  Alcotest.(check bool) "i=12 -> (12,3)" true (Point.equal p (point 12 3));
  let q = Section_lattice.point_of_index lat_32_9 (-1) in
  (* -9 = 32*(-1) + 23. *)
  Alcotest.(check bool) "i=-1 -> (23,-1)" true (Point.equal q (point 23 (-1)))

let test_is_basis_figure2 () =
  (* 3*7 - 2*11 = -1 — the paper's unimodularity check for Figure 2. *)
  Alcotest.(check bool) "fig2 basis" true
    (Section_lattice.is_basis lat_32_9 (point 3 3) (point (-1) 2));
  (* R and L of Figures 3-4. *)
  Alcotest.(check bool) "R,L basis" true
    (Section_lattice.is_basis lat_32_9 (point 4 1) (point 5 (-1)));
  (* Two parallel vectors are never a basis. *)
  Alcotest.(check bool) "parallel not basis" false
    (Section_lattice.is_basis lat_32_9 (point 3 3) (point 6 6));
  Alcotest.(check bool) "covolume = stride" true
    (Section_lattice.covolume lat_32_9 = 9)

let test_basis_paper_example () =
  match Basis.construct ~p:4 ~k:8 ~s:9 with
  | None -> Alcotest.fail "basis must exist for p=4 k=8 s=9"
  | Some b ->
      Alcotest.(check bool) "R = (4,1)" true (Point.equal b.Basis.r (point 4 1));
      Alcotest.(check bool) "L = (5,-1)" true
        (Point.equal b.Basis.l (point 5 (-1)));
      Tutil.check_int "index of R (36/9)" 4 (Basis.index_of_r b);
      Tutil.check_int "index of L (-27/9)" (-3) (Basis.index_of_l b);
      Tutil.check_int "gap of R" 12 (Basis.gap b b.Basis.r);
      Tutil.check_int "gap of -L" 3 (Basis.gap b (Point.neg b.Basis.l))

let test_basis_none_when_d_ge_k () =
  (* pk | s: d = pk >= k. *)
  Alcotest.(check bool) "s = pk" true (Basis.construct ~p:4 ~k:8 ~s:32 = None);
  Alcotest.(check bool) "s = 2pk" true (Basis.construct ~p:4 ~k:8 ~s:64 = None);
  (* d = gcd(24, 32) = 8 = k. *)
  Alcotest.(check bool) "d = k" true (Basis.construct ~p:4 ~k:8 ~s:24 = None);
  (* k = 1: no offsets strictly inside (0, 1). *)
  Alcotest.(check bool) "k = 1" true (Basis.construct ~p:4 ~k:1 ~s:3 = None)

let test_next_step_example () =
  (* §5's worked trace for p=4, k=8, s=9, m=1 starting at offset 13:
     visited offsets 13 8 12 11 15 10 14 9 then back to 13. *)
  match Basis.construct ~p:4 ~k:8 ~s:9 with
  | None -> Alcotest.fail "basis must exist"
  | Some b ->
      let expected = [ 13; 8; 12; 11; 15; 10; 14; 9; 13 ] in
      let rec walk acc offset n =
        if n = 0 then List.rev acc
        else begin
          let step = Basis.next_step b ~proc:1 ~offset in
          let next = offset + step.Point.b in
          walk (next :: acc) next (n - 1)
        end
      in
      Tutil.check_int_list "offset walk" expected (13 :: walk [] 13 8);
      Alcotest.check_raises "offset outside window"
        (Invalid_argument "Basis.next_step: offset outside the processor's window")
        (fun () -> ignore (Basis.next_step b ~proc:1 ~offset:7))

let test_fold_region () =
  (* All lattice points with offsets [0, 32) and rows [0, 9) are exactly
     the canonical points of indices 0..31 (one full cycle for s=9,
     rows 0..8). *)
  let pts =
    Section_lattice.fold_region lat_32_9 ~b_lo:0 ~b_hi:32 ~a_lo:0 ~a_hi:9
      ~init:[] ~f:(fun acc p i -> (p, i) :: acc)
  in
  Tutil.check_int "count" 32 (List.length pts);
  List.iter
    (fun (p, i) ->
      Alcotest.(check bool) "member" true (Section_lattice.mem lat_32_9 p);
      Alcotest.(check bool) "canonical" true
        (Point.equal p (Section_lattice.point_of_index lat_32_9 i)))
    pts

let gen_lat =
  QCheck2.Gen.(
    let* p, k, s = Tutil.gen_pks in
    return (p * k, s))

let prop_point_index_roundtrip =
  Tutil.qtest "point_of_index/index_of roundtrip"
    QCheck2.Gen.(tup2 gen_lat (int_range (-500) 500))
    (fun ((row_len, s), i) ->
      let lat = Section_lattice.create ~row_len ~stride:s in
      Section_lattice.index_of lat (Section_lattice.point_of_index lat i)
      = Some i)

let prop_lattice_closed_under_sub =
  Tutil.qtest "lattice closed under subtraction (Theorem 1)"
    QCheck2.Gen.(tup3 gen_lat (int_range (-300) 300) (int_range (-300) 300))
    (fun ((row_len, s), i1, i2) ->
      let lat = Section_lattice.create ~row_len ~stride:s in
      let p1 = Section_lattice.point_of_index lat i1
      and p2 = Section_lattice.point_of_index lat i2 in
      Section_lattice.mem lat (Point.sub p1 p2))

let prop_rl_basis =
  Tutil.qtest "constructed R,L form a basis with |det| = s"
    Tutil.gen_pks
    (fun (p, k, s) ->
      match Basis.construct ~p ~k ~s with
      | None -> Lams_numeric.Euclid.gcd s (p * k) >= k
      | Some b ->
          let lat = Basis.lattice b in
          Section_lattice.is_basis lat b.Basis.r b.Basis.l
          && b.Basis.r.Point.b > 0
          && b.Basis.r.Point.b < k
          && b.Basis.r.Point.a >= 0
          && b.Basis.l.Point.b > 0
          && b.Basis.l.Point.b < k
          && b.Basis.l.Point.a < 0)

let prop_rl_extremal =
  (* R corresponds to the smallest positive section index with offset in
     (0, k); L to the largest in the initial cycle, relative to the next
     cycle's first point — check extremality directly on the lattice. *)
  Tutil.qtest "R minimal / L maximal among offsets in (0,k)" ~count:100
    Tutil.gen_pks
    (fun (p, k, s) ->
      match Basis.construct ~p ~k ~s with
      | None -> true
      | Some b ->
          let d = Lams_numeric.Euclid.gcd s (p * k) in
          let cycle = p * k / d in
          let ir = Basis.index_of_r b and il = Basis.index_of_l b in
          let ok = ref (ir >= 1 && il <= -1) in
          (* Scan all indices in one cycle. *)
          for i = 1 to cycle - 1 do
            let pt = Section_lattice.point_of_index (Basis.lattice b) i in
            if pt.Point.b > 0 && pt.Point.b < k then begin
              if i < ir then ok := false;
              (* As a negative index: i - cycle; L must be the largest. *)
              if i - cycle > il then ok := false
            end
          done;
          !ok)

let prop_primitivity =
  Tutil.qtest "basis members are primitive segments"
    Tutil.gen_pks
    (fun (p, k, s) ->
      match Basis.construct ~p ~k ~s with
      | None -> true
      | Some b ->
          let lat = Basis.lattice b in
          Section_lattice.primitive_of_index lat (Basis.index_of_r b)
          && Section_lattice.primitive_of_index lat (Basis.index_of_l b))

(* --- Lagrange-Gauss reduction --- *)

let test_gauss_known () =
  (* The R/L basis of the running example reduces to shorter vectors. *)
  let r = point 4 1 and l = point 5 (-1) in
  let u, v = Reduction.gauss r l in
  Tutil.check_bool "reduced" true (Reduction.is_reduced u v);
  Tutil.check_int "same covolume" 9 (abs (Point.det u v));
  (* Shortest vector of the s=9, pk=32 lattice: (-1, 2) has norm² 5. *)
  Tutil.check_int "shortest norm2" 5 (Reduction.norm2 u);
  Alcotest.check_raises "dependent rejected"
    (Invalid_argument "Reduction.gauss: vectors are linearly dependent")
    (fun () -> ignore (Reduction.gauss (point 2 4) (point 1 2)))

let prop_gauss_reduces =
  Tutil.qtest ~count:300 "gauss output is reduced and spans the same lattice"
    QCheck2.Gen.(
      tup4 (int_range (-50) 50) (int_range (-50) 50) (int_range (-50) 50)
        (int_range (-50) 50))
    (fun (b1, a1, b2, a2) ->
      let u = point b1 a1 and v = point b2 a2 in
      if Point.det u v = 0 then true
      else begin
        let u', v' = Reduction.gauss u v in
        Reduction.is_reduced u' v'
        && abs (Point.det u' v') = abs (Point.det u v)
        (* Both new vectors are integer combinations of the old and vice
           versa: |det| preserved is necessary and (in rank 2, with both
           inside the original lattice) sufficient; check membership via
           Cramer. *)
        && (let inside w =
              let d = Point.det u v in
              Point.det w v mod d = 0 && Point.det u w mod d = 0
            in
            inside u' && inside v')
      end)

let prop_gauss_shortest =
  Tutil.qtest ~count:100 "gauss finds the shortest vector (small instances)"
    QCheck2.Gen.(
      tup4 (int_range (-8) 8) (int_range (-8) 8) (int_range (-8) 8)
        (int_range (-8) 8))
    (fun (b1, a1, b2, a2) ->
      let u = point b1 a1 and v = point b2 a2 in
      if Point.det u v = 0 then true
      else begin
        let best = ref max_int in
        for x = -12 to 12 do
          for y = -12 to 12 do
            if x <> 0 || y <> 0 then begin
              let w = Point.add (Point.scale x u) (Point.scale y v) in
              let n = Reduction.norm2 w in
              if n < !best then best := n
            end
          done
        done;
        (* The brute scan over a bounded window is a valid upper bound for
           the shortest vector; gauss must match it. *)
        Reduction.shortest_vector_norm2 u v <= !best
        &&
        (* and gauss's vector really is in the lattice, so >= shortest: *)
        Reduction.shortest_vector_norm2 u v >= min !best (Reduction.norm2 u)
      end)

let suite =
  [ Alcotest.test_case "point algebra" `Quick test_point_algebra;
    Alcotest.test_case "Lagrange-Gauss reduction (known)" `Quick
      test_gauss_known;
    prop_gauss_reduces;
    prop_gauss_shortest;
    Alcotest.test_case "membership (Figure 2 vectors)" `Quick
      test_membership_figure2;
    Alcotest.test_case "canonical points" `Quick test_point_of_index;
    Alcotest.test_case "basis test (Figure 2)" `Quick test_is_basis_figure2;
    Alcotest.test_case "R/L on the paper example" `Quick
      test_basis_paper_example;
    Alcotest.test_case "degenerate: no basis when d >= k" `Quick
      test_basis_none_when_d_ge_k;
    Alcotest.test_case "Theorem 3 walk (Figure 6 offsets)" `Quick
      test_next_step_example;
    Alcotest.test_case "fold_region enumerates a full cycle" `Quick
      test_fold_region;
    prop_point_index_roundtrip;
    prop_lattice_closed_under_sub;
    prop_rl_basis;
    prop_rl_extremal;
    prop_primitivity ]
