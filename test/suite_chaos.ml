(* Fault-tolerance suite: the reliable protocol and crash recovery on a
   deterministic lossy fabric, the fault model's replay guarantees, and
   the fabric hygiene the executor promises (buffer release on raise,
   reset_stats between measured runs). *)

open Lams_dist
open Lams_sim
open Lams_sched

let init_src ~n ~p ~k =
  Darray.of_array ~name:"cs" ~p ~dist:(Distribution.Block_cyclic k)
    (Array.init n (fun g -> float_of_int ((2 * g) + 1)))

let fresh_dst ~n ~p ~k =
  Darray.create ~name:"cd" ~n ~p ~dist:(Distribution.Block_cyclic k)

let with_counters f =
  Lams_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Lams_obs.Obs.set_enabled false) f

let c_retransmits = Lams_obs.Obs.counter "sched.reliable.retransmits"
let c_downgrades = Lams_obs.Obs.counter "sched.reliable.downgrades"
let c_dup_drops = Lams_obs.Obs.counter "sched.reliable.dup_drops"
let c_corrupt_drops = Lams_obs.Obs.counter "sched.reliable.corrupt_drops"
let c_crashes = Lams_obs.Obs.counter "spmd.recovery.crashes"
let c_respawns = Lams_obs.Obs.counter "spmd.recovery.respawns"
let c_exhausted = Lams_obs.Obs.counter "spmd.recovery.exhausted"
let c_fallbacks = Lams_obs.Obs.counter "sched.executor.legacy_fallbacks"

(* --- fault model determinism --- *)

let test_fault_model_replay () =
  (* Two models from one seed draw identical verdict sequences on the
     same link, and draws on one link don't perturb another's stream. *)
  let rates =
    { Fault_model.drop = 0.3; duplicate = 0.2; reorder = 0.25;
      corrupt = 0.2; delay = 0.3 }
  in
  let a = Fault_model.create ~rates ~seed:7 ()
  and b = Fault_model.create ~rates ~seed:7 ()
  and c = Fault_model.create ~rates ~seed:7 () in
  let draw fm link = Fault_model.plan_send fm ~link ~payload_len:16 in
  (* Interleave traffic on link 9 into [c] only. *)
  for _ = 1 to 50 do
    let va = draw a 3 and _ = draw c 9 in
    let vb = draw b 3 and vc = draw c 3 in
    Tutil.check_bool "same seed, same link, same verdict" true (va = vb);
    Tutil.check_bool "other links never perturb a stream" true (va = vc)
  done;
  let diff = Fault_model.create ~rates ~seed:8 () in
  let same = ref true in
  for _ = 1 to 50 do
    if draw a 3 <> draw diff 3 then same := false
  done;
  Tutil.check_bool "different seeds diverge" false !same

let test_crash_plan_consumed () =
  let fm = Fault_model.create ~crashes:[ (2, 3) ] ~seed:1 () in
  Tutil.check_int "one planned crash" 1 (Fault_model.crashes_pending fm);
  Tutil.check_bool "1st data send survives" false (Fault_model.crash_now fm ~rank:2);
  Tutil.check_bool "2nd data send survives" false (Fault_model.crash_now fm ~rank:2);
  Tutil.check_bool "other ranks never crash" false (Fault_model.crash_now fm ~rank:0);
  Tutil.check_bool "3rd data send crashes" true (Fault_model.crash_now fm ~rank:2);
  Tutil.check_int "entry consumed" 0 (Fault_model.crashes_pending fm);
  Tutil.check_bool "the respawned rank sails past" false
    (Fault_model.crash_now fm ~rank:2)

let test_acks_do_not_consume_crash_plan () =
  (* Only payload-carrying sends count toward a planned crash: an ack
     (payload [||]) must neither fire it nor eat the countdown. *)
  let fm = Fault_model.create ~crashes:[ (0, 2) ] ~seed:5 () in
  let net = Network.create ~p:2 in
  Network.set_faults net (Some fm);
  let ack () =
    Network.transmit net ~src:0 ~dst:1 ~tag:0 ~header:[| 1 |]
      ~addresses:[||] ~payload:Lams_util.Fbuf.empty
  in
  let data () =
    Network.transmit net ~src:0 ~dst:1 ~tag:0 ~header:[||] ~addresses:[||]
      ~payload:(Lams_util.Fbuf.of_array [| 1.; 2. |])
  in
  ack ();
  data ();
  ack ();
  ack ();
  Tutil.check_int "still pending after acks" 1 (Fault_model.crashes_pending fm);
  Tutil.check_bool "second data send crashes" true
    (try data (); false with Spmd.Crash 0 -> true)

(* --- reliable protocol on a lossy fabric --- *)

let gen_chaos =
  QCheck2.Gen.(
    let* p = int_range 1 8 in
    let* sk = int_range 1 10 in
    let* dk = int_range 1 10 in
    let* lo = int_range 0 20 in
    let* count = int_range 2 120 in
    let* stride = int_range 1 4 in
    let* seed = int_range 0 10_000 in
    let* drop = float_bound_inclusive 0.5 in
    let* dup = float_bound_inclusive 0.4 in
    let* reorder = float_bound_inclusive 0.4 in
    let* corrupt = float_bound_inclusive 0.4 in
    let* delay = float_bound_inclusive 0.5 in
    let* crash = bool in
    return (p, sk, dk, lo, count, stride, seed, (drop, dup, reorder, corrupt, delay), crash))

let print_chaos (p, sk, dk, lo, count, stride, seed, (dr, du, re, co, de), crash) =
  Printf.sprintf
    "p=%d sk=%d dk=%d lo=%d count=%d stride=%d seed=%d rates=(%.2f %.2f \
     %.2f %.2f %.2f) crash=%b"
    p sk dk lo count stride seed dr du re co de crash

let prop_chaos_converges =
  Tutil.qtest ~count:60
    "any sub-unity fault mix converges to the exact legacy result"
    gen_chaos ~print:print_chaos
    (fun (p, sk, dk, lo, count, stride, seed, (drop, dup, reorder, corrupt, delay), crash) ->
      let hi = lo + ((count - 1) * stride) in
      let n = hi + 1 in
      let sec = Section.make ~lo ~hi ~stride in
      let src = init_src ~n ~p ~k:sk in
      let legacy = fresh_dst ~n ~p ~k:dk in
      ignore
        (Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
          : Network.t);
      let sched =
        Schedule.build ~src_layout:(Layout.create ~p ~k:sk) ~src_section:sec
          ~dst_layout:(Layout.create ~p ~k:dk) ~dst_section:sec
      in
      let rates =
        { Fault_model.drop; duplicate = dup; reorder; corrupt; delay }
      in
      let crashes = if crash && p > 1 then [ (lo mod p, 2) ] else [] in
      let fm = Fault_model.create ~rates ~max_delay:3 ~crashes ~seed () in
      let net = Network.create ~p in
      Network.set_faults net (Some fm);
      let dst = fresh_dst ~n ~p ~k:dk in
      ignore (Executor.run ~net ~respawns:4 sched ~src ~dst : Network.t);
      Darray.equal_contents legacy dst && Network.in_flight net = 0)

let chaos_pair ~rates ?(crashes = []) ?(respawns = 0) ~seed () =
  (* One fixed redistribution (p=4, cyclic(8)->cyclic(5), 512 strided
     elements, 3 rounds) run legacy-on-perfect and scheduled-on-faulty. *)
  let count = 512 and lo = 1 and stride = 2 in
  let hi = lo + ((count - 1) * stride) in
  let n = hi + 1 in
  let sec = Section.make ~lo ~hi ~stride in
  let src = init_src ~n ~p:4 ~k:8 in
  let legacy = fresh_dst ~n ~p:4 ~k:5 in
  ignore
    (Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
      : Network.t);
  let sched =
    Schedule.build ~src_layout:(Layout.create ~p:4 ~k:8) ~src_section:sec
      ~dst_layout:(Layout.create ~p:4 ~k:5) ~dst_section:sec
  in
  let net = Network.create ~p:4 in
  Network.set_faults net
    (Some (Fault_model.create ~rates ~crashes ~seed ()));
  let dst = fresh_dst ~n ~p:4 ~k:5 in
  ignore (Executor.run ~net ~respawns sched ~src ~dst : Network.t);
  (legacy, dst, net, sched)

let test_crash_in_round_2_replayed () =
  (* Zero rates, one planned crash: rank 1 dies on its second data send,
     i.e. deterministically inside round 2 of the three-round schedule,
     is respawned once and replays the round from the pre-packed
     buffers. *)
  with_counters (fun () ->
      let cr0 = Lams_obs.Obs.counter_value c_crashes
      and rs0 = Lams_obs.Obs.counter_value c_respawns
      and ex0 = Lams_obs.Obs.counter_value c_exhausted in
      let legacy, dst, net, sched =
        chaos_pair ~rates:Fault_model.no_faults ~crashes:[ (1, 2) ]
          ~respawns:2 ~seed:42 ()
      in
      Tutil.check_bool "three rounds (crash lands mid-run)" true
        (Schedule.rounds_count sched >= 2);
      Tutil.check_int "one crash fired" (cr0 + 1)
        (Lams_obs.Obs.counter_value c_crashes);
      Tutil.check_int "one respawn" (rs0 + 1)
        (Lams_obs.Obs.counter_value c_respawns);
      Tutil.check_int "budget not exhausted" ex0
        (Lams_obs.Obs.counter_value c_exhausted);
      Tutil.check_int "fabric quiet" 0 (Network.in_flight net);
      Tutil.check_int "crash recorded on the fabric" 1
        (Network.fault_counts net).Network.crashes;
      Tutil.check_bool "replayed run = legacy" true
        (Darray.equal_contents legacy dst))

let test_zero_rates_protocol_is_quiet () =
  (* An attached all-zero fault model turns the protocol on (checksums
     verified) but a healthy exchange must never retransmit or
     downgrade. *)
  with_counters (fun () ->
      let rt0 = Lams_obs.Obs.counter_value c_retransmits
      and dg0 = Lams_obs.Obs.counter_value c_downgrades in
      let legacy, dst, net, _ =
        chaos_pair ~rates:Fault_model.no_faults ~seed:42 ()
      in
      Tutil.check_int "no retransmits on a perfect run" rt0
        (Lams_obs.Obs.counter_value c_retransmits);
      Tutil.check_int "no downgrades on a perfect run" dg0
        (Lams_obs.Obs.counter_value c_downgrades);
      Tutil.check_int "fabric quiet" 0 (Network.in_flight net);
      Tutil.check_bool "protocol run = legacy" true
        (Darray.equal_contents legacy dst))

let test_total_loss_downgrades_every_transfer () =
  (* drop = 1.0: nothing ever arrives, the retry budget runs dry and
     every cross transfer completes from its pre-packed buffer — the
     bottom rung still reproduces the legacy result exactly. *)
  with_counters (fun () ->
      let dg0 = Lams_obs.Obs.counter_value c_downgrades in
      let legacy, dst, net, sched =
        chaos_pair
          ~rates:{ Fault_model.no_faults with Fault_model.drop = 1.0 }
          ~seed:42 ()
      in
      let cross =
        List.fold_left (fun a r -> a + List.length r) 0 sched.Schedule.rounds
      in
      Tutil.check_bool "some cross transfers exist" true (cross > 0);
      Tutil.check_int "every cross transfer downgraded" (dg0 + cross)
        (Lams_obs.Obs.counter_value c_downgrades);
      Tutil.check_int "fabric quiet" 0 (Network.in_flight net);
      Tutil.check_bool "total loss still = legacy" true
        (Darray.equal_contents legacy dst))

let test_corrupt_and_dup_are_dropped () =
  with_counters (fun () ->
      let cd0 = Lams_obs.Obs.counter_value c_corrupt_drops
      and dd0 = Lams_obs.Obs.counter_value c_dup_drops in
      let legacy, dst, _, _ =
        chaos_pair
          ~rates:
            { Fault_model.no_faults with
              Fault_model.corrupt = 0.5; duplicate = 0.5 }
          ~seed:9 ()
      in
      Tutil.check_bool "corrupt copies were detected" true
        (Lams_obs.Obs.counter_value c_corrupt_drops > cd0);
      Tutil.check_bool "duplicates were deduplicated" true
        (Lams_obs.Obs.counter_value c_dup_drops > dd0);
      Tutil.check_bool "still = legacy" true
        (Darray.equal_contents legacy dst))

let test_redistribute_degrades_to_legacy_fallback () =
  (* Crash with no respawn budget on a non-aliasing run: [redistribute]
     must absorb the Crash, fall back to the oracle exchange and record
     it — never raise. *)
  with_counters (fun () ->
      let fb0 = Lams_obs.Obs.counter_value c_fallbacks in
      let n = 600 in
      let sec = Section.make ~lo:0 ~hi:(n - 1) ~stride:1 in
      let src = init_src ~n ~p:4 ~k:8 in
      let legacy = fresh_dst ~n ~p:4 ~k:5 in
      ignore
        (Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
          : Network.t);
      let net = Network.create ~p:4 in
      Network.set_faults net
        (Some (Fault_model.create ~crashes:[ (0, 1); (2, 1) ] ~seed:3 ()));
      let dst = fresh_dst ~n ~p:4 ~k:5 in
      ignore
        (Executor.redistribute ~net ~src ~src_section:sec ~dst
           ~dst_section:sec ()
          : Network.t);
      Tutil.check_int "fallback recorded" (fb0 + 1)
        (Lams_obs.Obs.counter_value c_fallbacks);
      Tutil.check_int "crashed fabric left quiet" 0 (Network.in_flight net);
      Tutil.check_bool "fallback result = legacy" true
        (Darray.equal_contents legacy dst))

let test_aliasing_crash_replays_in_run () =
  (* src == dst (an in-array shift) with a crash and no respawns: the
     legacy fallback would re-read overwritten memory, so the executor
     finishes from the pre-packed buffers in-run instead. *)
  let n = 200 in
  let expect = Array.init n (fun g -> float_of_int g) in
  let oracle = Array.copy expect in
  Array.blit expect 0 oracle 1 (n - 1);
  let a =
    Darray.of_array ~name:"alias" ~p:4 ~dist:(Distribution.Block_cyclic 7)
      expect
  in
  let src_section = Section.make ~lo:0 ~hi:(n - 2) ~stride:1 in
  let dst_section = Section.make ~lo:1 ~hi:(n - 1) ~stride:1 in
  let net = Network.create ~p:4 in
  Network.set_faults net
    (Some (Fault_model.create ~crashes:[ (1, 1) ] ~seed:11 ()));
  ignore
    (Executor.redistribute ~net ~src:a ~src_section ~dst:a ~dst_section ()
      : Network.t);
  Tutil.check_bool "shift completed exactly" true
    (Darray.gather a = oracle);
  Tutil.check_int "fabric quiet" 0 (Network.in_flight net)

(* --- fabric hygiene --- *)

let test_purge_on_unscheduled_message () =
  (* A bogus message makes the recv phase raise; the executor must purge
     the fabric on the way out so its packed buffers are not pinned by
     undrained traffic. *)
  let n = 240 in
  let sec = Section.make ~lo:0 ~hi:(n - 1) ~stride:1 in
  let src = init_src ~n ~p:4 ~k:8 in
  let dst = fresh_dst ~n ~p:4 ~k:5 in
  let sched =
    Schedule.build ~src_layout:(Layout.create ~p:4 ~k:8) ~src_section:sec
      ~dst_layout:(Layout.create ~p:4 ~k:5) ~dst_section:sec
  in
  let victim =
    match sched.Schedule.rounds with
    | (tr :: _) :: _ -> tr.Schedule.dst_proc
    | _ -> Alcotest.fail "expected a cross transfer"
  in
  let net = Network.create ~p:4 in
  (* An unscheduled sender for round 0's first receiver. *)
  Network.send net ~src:victim ~dst:victim ~tag:0 ~addresses:[||]
    ~payload:(Lams_util.Fbuf.of_array [| 1. |]);
  (try
     ignore (Executor.run ~net sched ~src ~dst : Network.t);
     Alcotest.fail "expected the unscheduled message to be rejected"
   with Invalid_argument _ -> ());
  Tutil.check_int "fabric purged after the raise" 0 (Network.in_flight net)

let test_reset_stats () =
  let net = Network.create ~p:2 in
  Network.send net ~src:0 ~dst:1 ~tag:0 ~addresses:[||] ~payload:(Lams_util.Fbuf.of_array [| 1.; 2. |]);
  Network.send net ~src:0 ~dst:1 ~tag:0 ~addresses:[||] ~payload:(Lams_util.Fbuf.of_array [| 3. |]);
  ignore (Network.receive_all net ~dst:1 : Network.message list);
  Tutil.check_int "traffic recorded" 2 (Network.messages_sent net);
  Tutil.check_int "peak congestion recorded" 2 (Network.max_congestion net);
  (* One message still queued across the reset. *)
  Network.send net ~src:1 ~dst:0 ~tag:0 ~addresses:[||] ~payload:(Lams_util.Fbuf.of_array [| 4. |]);
  Network.reset_stats net;
  Tutil.check_int "sent zeroed" 0 (Network.messages_sent net);
  Tutil.check_int "elements zeroed" 0 (Network.elements_moved net);
  Tutil.check_int "peaks zeroed" 0 (Network.max_congestion net);
  Tutil.check_int "in-flight link peaks zeroed" 0
    (Network.max_link_in_flight net);
  Tutil.check_int "link accounting zeroed" 0
    (Network.link_messages net ~src:0 ~dst:1);
  Tutil.check_int "queued message survives" 1 (Network.in_flight net);
  (match Network.receive_all net ~dst:0 with
  | [ m ] -> Tutil.check_bool "payload intact" true
        (Lams_util.Fbuf.equal m.Network.payload
           (Lams_util.Fbuf.of_array [| 4. |]))
  | _ -> Alcotest.fail "expected exactly one queued message");
  (* Fresh accounting accrues normally after the reset. *)
  Network.send net ~src:0 ~dst:1 ~tag:0 ~addresses:[||] ~payload:(Lams_util.Fbuf.of_array [| 5. |]);
  Tutil.check_int "fresh traffic counted" 1 (Network.messages_sent net);
  Tutil.check_int "fresh peak counted" 1 (Network.max_congestion net)

let test_cache_debug_validate () =
  let was = Cache.debug_validate_enabled () in
  Fun.protect
    ~finally:(fun () -> Cache.set_debug_validate was)
    (fun () ->
      Cache.set_debug_validate true;
      Tutil.check_bool "flag on" true (Cache.debug_validate_enabled ());
      Cache.clear ();
      (* Two cycle-span-translated lookups: the second is a hit whose
         rebased schedule now goes through the full validator. *)
      let n = 300 in
      let src = init_src ~n ~p:4 ~k:3 in
      let run lo =
        let sec = Section.make ~lo ~hi:(lo + 35) ~stride:1 in
        let dst = fresh_dst ~n ~p:3 ~k:5 in
        ignore
          (Executor.redistribute ~src ~src_section:sec ~dst ~dst_section:sec ()
            : Network.t);
        let legacy = fresh_dst ~n ~p:3 ~k:5 in
        ignore
          (Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
            : Network.t);
        Tutil.check_bool "validated rebase = legacy" true
          (Darray.equal_contents legacy dst)
      in
      run 0;
      run 60)

let suite =
  [ Alcotest.test_case "fault model replays from its seed" `Quick
      test_fault_model_replay;
    Alcotest.test_case "crash plan counts down and is consumed" `Quick
      test_crash_plan_consumed;
    Alcotest.test_case "acks neither fire nor eat the crash plan" `Quick
      test_acks_do_not_consume_crash_plan;
    prop_chaos_converges;
    Alcotest.test_case "crash in round 2 is respawned and replayed" `Quick
      test_crash_in_round_2_replayed;
    Alcotest.test_case "zero-rate protocol: no retransmits, same result"
      `Quick test_zero_rates_protocol_is_quiet;
    Alcotest.test_case "total loss downgrades every transfer" `Quick
      test_total_loss_downgrades_every_transfer;
    Alcotest.test_case "corrupt and duplicate copies are dropped" `Quick
      test_corrupt_and_dup_are_dropped;
    Alcotest.test_case "redistribute degrades to the legacy fallback" `Quick
      test_redistribute_degrades_to_legacy_fallback;
    Alcotest.test_case "aliasing crash replays from packed buffers" `Quick
      test_aliasing_crash_replays_in_run;
    Alcotest.test_case "executor purges the fabric when a round raises"
      `Quick test_purge_on_unscheduled_message;
    Alcotest.test_case "reset_stats clears accounting, keeps traffic" `Quick
      test_reset_stats;
    Alcotest.test_case "cache debug-validate covers the hit path" `Quick
      test_cache_debug_validate ]
