open Lams_dist

(* --- Section --- *)

let test_section_basics () =
  let s = Section.make ~lo:0 ~hi:319 ~stride:9 in
  Tutil.check_int "count" 36 (Section.count s);
  Tutil.check_int "nth 0" 0 (Section.nth s 0);
  Tutil.check_int "nth 12" 108 (Section.nth s 12);
  Tutil.check_int "last" 315 (Section.last s);
  Tutil.check_bool "mem 108" true (Section.mem s 108);
  Tutil.check_bool "mem 109" false (Section.mem s 109);
  Tutil.check_bool "mem 316" false (Section.mem s 316)

let test_section_negative_stride () =
  let s = Section.make ~lo:20 ~hi:2 ~stride:(-3) in
  Tutil.check_int "count" 7 (Section.count s);
  Tutil.check_int_list "elements" [ 20; 17; 14; 11; 8; 5; 2 ]
    (Section.to_list s);
  Tutil.check_bool "mem 5" true (Section.mem s 5);
  Tutil.check_bool "mem 4" false (Section.mem s 4);
  let n = Section.normalize s in
  Tutil.check_int "normalized lo" 2 n.Section.lo;
  Tutil.check_int "normalized hi" 20 n.Section.hi;
  Tutil.check_int "normalized stride" 3 n.Section.stride;
  Tutil.check_bool "same set" true (Section.equal_sets s n)

let test_section_empty () =
  let s = Section.make ~lo:10 ~hi:5 ~stride:2 in
  Tutil.check_bool "empty" true (Section.is_empty s);
  Tutil.check_int "count" 0 (Section.count s);
  Tutil.check_int_list "elements" [] (Section.to_list s);
  Alcotest.check_raises "last of empty"
    (Invalid_argument "Section.last: empty section") (fun () ->
      ignore (Section.last s));
  Alcotest.check_raises "zero stride"
    (Invalid_argument "Section.make: zero stride") (fun () ->
      ignore (Section.make ~lo:0 ~hi:5 ~stride:0))

let prop_section_reverse =
  Tutil.qtest "reverse preserves the index set"
    QCheck2.Gen.(
      tup3 (int_range 0 100) (int_range 0 100)
        (oneof [ int_range (-10) (-1); int_range 1 10 ]))
    (fun (lo, hi, stride) ->
      let s = Section.make ~lo ~hi ~stride in
      List.sort compare (Section.to_list s)
      = List.sort compare (Section.to_list (Section.reverse s)))

let prop_section_nth_mem =
  Tutil.qtest "every nth element is a member"
    QCheck2.Gen.(
      tup3 (int_range 0 50) (int_range 1 20) (int_range 1 10))
    (fun (lo, n, stride) ->
      let s = Section.make ~lo ~hi:(lo + (n * stride)) ~stride in
      List.for_all (fun j -> Section.mem s (Section.nth s j))
        (List.init (Section.count s) Fun.id))

(* --- Layout (Figure 1 golden facts) --- *)

let fig1 = Layout.create ~p:4 ~k:8

let test_layout_figure1 () =
  (* §2: "array element A(108) has offset 4 in block 3 of processor 1". *)
  Tutil.check_int "owner of 108" 1 (Layout.owner fig1 108);
  Tutil.check_int "block of 108" 3 (Layout.block fig1 108);
  Tutil.check_int "block offset of 108" 4 (Layout.block_offset fig1 108);
  (* §3: element 108 is at coordinates (12, 3): row-offset 12, row 3. *)
  Tutil.check_int "row of 108" 3 (Layout.row fig1 108);
  Tutil.check_int "row offset of 108" 12 (Layout.row_offset fig1 108);
  Tutil.check_int "local address of 108" 28 (Layout.local_address fig1 108);
  Tutil.check_int "row length" 32 (Layout.row_len fig1)

let test_layout_roundtrip_known () =
  Alcotest.(check (option int)) "on owner" (Some 28)
    (Layout.local_address_on fig1 ~proc:1 108);
  Alcotest.(check (option int)) "not on others" None
    (Layout.local_address_on fig1 ~proc:2 108);
  Tutil.check_int "global_of_local" 108
    (Layout.global_of_local fig1 ~proc:1 28)

let test_local_count () =
  (* 320 elements over 4 procs, cyclic(8): 80 each. *)
  for m = 0 to 3 do
    Tutil.check_int
      (Printf.sprintf "count m=%d" m)
      80
      (Layout.local_count fig1 ~n:320 ~proc:m)
  done;
  (* Uneven tail: n = 20 = 8 + 8 + 4: proc 0 gets 8, proc 1 8, proc 2 4. *)
  let l2 = Layout.create ~p:4 ~k:8 in
  List.iter
    (fun (m, want) ->
      Tutil.check_int
        (Printf.sprintf "uneven m=%d" m)
        want
        (Layout.local_count l2 ~n:20 ~proc:m))
    [ (0, 8); (1, 8); (2, 4); (3, 0) ]

let prop_layout_roundtrip =
  Tutil.qtest "global -> local -> global roundtrip"
    QCheck2.Gen.(tup3 (int_range 1 12) (int_range 1 24) (int_range 0 5000))
    (fun (p, k, g) ->
      let lay = Layout.create ~p ~k in
      let m = Layout.owner lay g in
      Layout.global_of_local lay ~proc:m (Layout.local_address lay g) = g)

let prop_layout_owner_partition =
  Tutil.qtest "owned_globals partitions [0, n)"
    QCheck2.Gen.(tup3 (int_range 1 8) (int_range 1 12) (int_range 0 300))
    (fun (p, k, n) ->
      let lay = Layout.create ~p ~k in
      let all =
        List.concat (List.init p (fun m -> Layout.owned_globals lay ~n ~proc:m))
      in
      List.sort compare all = List.init n Fun.id)

let prop_local_count_matches =
  Tutil.qtest "local_count = |owned_globals|"
    QCheck2.Gen.(tup4 (int_range 1 8) (int_range 1 12) (int_range 0 300) (int_range 0 7))
    (fun (p, k, n, m) ->
      let m = m mod p in
      let lay = Layout.create ~p ~k in
      Layout.local_count lay ~n ~proc:m
      = List.length (Layout.owned_globals lay ~n ~proc:m))

let prop_local_addresses_dense =
  Tutil.qtest "local addresses are 0..count-1"
    QCheck2.Gen.(tup4 (int_range 1 8) (int_range 1 12) (int_range 1 300) (int_range 0 7))
    (fun (p, k, n, m) ->
      let m = m mod p in
      let lay = Layout.create ~p ~k in
      let addrs =
        List.map (Layout.local_address lay) (Layout.owned_globals lay ~n ~proc:m)
      in
      List.sort compare addrs = List.init (List.length addrs) Fun.id)

(* --- Distribution --- *)

let test_distribution () =
  Tutil.check_int "block k" 25
    (Distribution.block_size Distribution.Block ~n:100 ~p:4);
  Tutil.check_int "block k uneven" 26
    (Distribution.block_size Distribution.Block ~n:101 ~p:4);
  Tutil.check_int "cyclic k" 1
    (Distribution.block_size Distribution.Cyclic ~n:100 ~p:4);
  Tutil.check_int "cyclic(8)" 8
    (Distribution.block_size (Distribution.Block_cyclic 8) ~n:100 ~p:4)

let test_distribution_parse () =
  let check s want =
    match (Distribution.of_string s, want) with
    | Some d, Some w -> Tutil.check_bool s true (Distribution.equal d w)
    | None, None -> ()
    | _ -> Alcotest.fail (Printf.sprintf "parse %S" s)
  in
  check "block" (Some Distribution.Block);
  check "cyclic" (Some Distribution.Cyclic);
  check "CYCLIC(8)" (Some (Distribution.Block_cyclic 8));
  check " cyclic(16) " (Some (Distribution.Block_cyclic 16));
  check "cyclic(0)" None;
  check "cyclic(-3)" None;
  check "scatter" None;
  check "cyclic()" None

(* --- Alignment --- *)

let test_alignment () =
  let al = Alignment.make ~scale:2 ~offset:1 in
  Tutil.check_int "apply" 9 (Alignment.apply al 4);
  Alcotest.(check (option int)) "preimage hit" (Some 4) (Alignment.preimage al 9);
  Alcotest.(check (option int)) "preimage miss" None (Alignment.preimage al 8);
  Tutil.check_bool "identity" true (Alignment.is_identity Alignment.identity);
  let sec = Section.make ~lo:0 ~hi:10 ~stride:2 in
  let img = Alignment.section_image al sec in
  Tutil.check_int_list "image" [ 1; 5; 9; 13; 17; 21 ] (Section.to_list img)

let prop_alignment_compose =
  Tutil.qtest "compose applies inner first"
    QCheck2.Gen.(
      tup5
        (oneof [ int_range (-5) (-1); int_range 1 5 ])
        (int_range (-10) 10)
        (oneof [ int_range (-5) (-1); int_range 1 5 ])
        (int_range (-10) 10) (int_range (-100) 100))
    (fun (a1, b1, a2, b2, i) ->
      let outer = Alignment.make ~scale:a1 ~offset:b1
      and inner = Alignment.make ~scale:a2 ~offset:b2 in
      Alignment.apply (Alignment.compose outer inner) i
      = Alignment.apply outer (Alignment.apply inner i))

let prop_alignment_section_image =
  Tutil.qtest "section image = pointwise image"
    QCheck2.Gen.(
      tup4
        (oneof [ int_range (-4) (-1); int_range 1 4 ])
        (int_range (-20) 20) (int_range 0 30) (int_range 1 6))
    (fun (scale, offset, lo, stride) ->
      let al = Alignment.make ~scale ~offset in
      let sec = Section.make ~lo ~hi:(lo + (stride * 9)) ~stride in
      let img = Alignment.section_image al sec in
      Section.to_list img
      = List.map (Alignment.apply al) (Section.to_list sec))

(* --- Proc_grid --- *)

let test_proc_grid () =
  let g = Proc_grid.create [| 3; 4 |] in
  Tutil.check_int "size" 12 (Proc_grid.size g);
  Tutil.check_int "ndims" 2 (Proc_grid.ndims g);
  Tutil.check_int "rank of (2,3)" 11 (Proc_grid.rank_of_coords g [| 2; 3 |]);
  Tutil.check_int_array "coords of 11" [| 2; 3 |] (Proc_grid.coords_of_rank g 11);
  Tutil.check_int "rank of (1,2)" 6 (Proc_grid.rank_of_coords g [| 1; 2 |])

let prop_grid_roundtrip =
  Tutil.qtest "rank/coords roundtrip"
    QCheck2.Gen.(
      tup2
        (array_size (int_range 1 3) (int_range 1 5))
        (int_range 0 1000))
    (fun (dims, r) ->
      if Array.length dims = 0 then true
      else begin
        let g = Proc_grid.create dims in
        let r = r mod Proc_grid.size g in
        Proc_grid.rank_of_coords g (Proc_grid.coords_of_rank g r) = r
      end)

(* --- Render --- *)

let test_render_golden () =
  (* Pin the exact Figure-1-style rendering for a small instance so the
     format stays stable. *)
  let lay = Layout.create ~p:2 ~k:3 in
  let sec = Section.make ~lo:0 ~hi:11 ~stride:5 in
  let got =
    Render.layout lay ~n:12 ~mark:(fun g -> Section.mem sec g)
      ~highlight:(fun g -> g = 0) ()
  in
  let want =
    "Processor 0  |Processor 1 \n\
    \ (0)  1   2  |  3   4  [5]\n\
    \  6   7   8  |  9 [10] 11 \n"
  in
  Alcotest.(check string) "figure" want got;
  Alcotest.(check string) "legend" "cyclic(3) on 2 procs; row = 6 elements"
    (Render.legend lay)

let test_render_smoke () =
  let s =
    Render.layout fig1 ~n:64
      ~mark:(fun g -> g mod 9 = 0)
      ~highlight:(fun g -> g = 0)
      ()
  in
  Tutil.check_bool "mentions processors" true
    (String.length s > 0
    && String.length (List.hd (String.split_on_char '\n' s)) > 0);
  Tutil.check_bool "marks element 9" true
    (let re = "[9]" in
     let rec contains i =
       i + String.length re <= String.length s
       && (String.sub s i (String.length re) = re || contains (i + 1))
     in
     contains 0);
  let lm = Render.local_memory fig1 ~n:64 ~proc:1 () in
  Tutil.check_bool "local memory non-empty" true (String.length lm > 0)

let suite =
  [ Alcotest.test_case "section basics" `Quick test_section_basics;
    Alcotest.test_case "section negative stride" `Quick
      test_section_negative_stride;
    Alcotest.test_case "section empty / errors" `Quick test_section_empty;
    Alcotest.test_case "layout Figure 1 facts" `Quick test_layout_figure1;
    Alcotest.test_case "layout roundtrip known" `Quick
      test_layout_roundtrip_known;
    Alcotest.test_case "local counts" `Quick test_local_count;
    Alcotest.test_case "distribution block sizes" `Quick test_distribution;
    Alcotest.test_case "distribution parsing" `Quick test_distribution_parse;
    Alcotest.test_case "alignment basics" `Quick test_alignment;
    Alcotest.test_case "processor grid" `Quick test_proc_grid;
    Alcotest.test_case "layout rendering" `Quick test_render_smoke;
    Alcotest.test_case "layout rendering golden" `Quick test_render_golden;
    prop_section_reverse;
    prop_section_nth_mem;
    prop_layout_roundtrip;
    prop_layout_owner_partition;
    prop_local_count_matches;
    prop_local_addresses_dense;
    prop_alignment_compose;
    prop_alignment_section_image;
    prop_grid_roundtrip ]
