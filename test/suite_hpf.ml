open Lams_hpf

(* --- Lexer --- *)

let test_lexer_basics () =
  let toks = Lexer.tokenize "real A(320) ! comment\nA(0:9:2) = 1.5" in
  let kinds = List.map (fun { Lexer.token; _ } -> token) toks in
  Alcotest.(check bool) "tokens" true
    (kinds
    = [ Lexer.Kw_real; Lexer.Ident "A"; Lexer.Lparen; Lexer.Int 320;
        Lexer.Rparen; Lexer.Newline; Lexer.Ident "A"; Lexer.Lparen;
        Lexer.Int 0; Lexer.Colon; Lexer.Int 9; Lexer.Colon; Lexer.Int 2;
        Lexer.Rparen; Lexer.Equals; Lexer.Float 1.5; Lexer.Newline; Lexer.Eof ])

let test_lexer_positions () =
  let toks = Lexer.tokenize "real A(1)\n  align" in
  let align = List.find (fun { Lexer.token; _ } -> token = Lexer.Kw_align) toks in
  Tutil.check_int "line" 2 align.Lexer.pos.Ast.line;
  Tutil.check_int "col" 3 align.Lexer.pos.Ast.column

let test_lexer_errors () =
  (match Lexer.tokenize "real A(1) @" with
  | exception Lexer.Lex_error (_, pos) -> Tutil.check_int "col" 11 pos.Ast.column
  | _ -> Alcotest.fail "expected lex error")

(* --- Parser --- *)

let paper_program =
  "! the paper's running example\n\
   real A(320)\n\
   distribute A (cyclic(8)) onto 4\n\
   A(4:319:9) = 100.0\n\
   print sum A(4:319:9)\n"

let test_parser_paper_program () =
  let prog = Parser.parse paper_program in
  Tutil.check_int "statements" 4 (List.length prog);
  match prog with
  | [ Ast.Decl { name = "A"; sizes = [ 320 ]; _ };
      Ast.Distribute { name = "A"; formats = [ Ast.Cyclic_k 8 ]; onto = [ 4 ]; _ };
      Ast.Assign
        { lhs = { array = "A"; triplets = [ { t_lo = 4; t_hi = 319; t_stride = 9 } ]; _ };
          rhs = Ast.Const 100.;
          _ };
      Ast.Print_sum _ ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parser_align_forms () =
  let prog =
    Parser.parse
      "real B(10)\ntemplate T(40)\nalign B(i) with T(2*i+1)\n\
       real C(10)\nalign C(j) with T(j-3)\n\
       real D(10)\nalign D(i) with T(i)\n"
  in
  let aligns =
    List.filter_map
      (function Ast.Align { array; map; _ } -> Some (array, map) | _ -> None)
      prog
  in
  Alcotest.(check bool) "maps" true
    (aligns
    = [ ("B", { Ast.scale = 2; offset = 1 });
        ("C", { Ast.scale = 1; offset = -3 });
        ("D", { Ast.scale = 1; offset = 0 }) ])

let test_parser_exprs () =
  let prog =
    Parser.parse
      "real A(9)\nreal B(9)\ndistribute A (block) onto 2\n\
       distribute B (cyclic) onto 2\n\
       A(0:8) = B(0:8) + 1.0\nA(0:8) = 2.0 * B(0:8)\nA(0:8) = A(0:8) / 4\n\
       A(0:8:1) = B(8:0:-1)\nA(0:8) = A(0:8) - B(0:8)\n"
  in
  let rhss =
    List.filter_map
      (function Ast.Assign { rhs; _ } -> Some rhs | _ -> None)
      prog
  in
  Tutil.check_int "5 assigns" 5 (List.length rhss);
  match rhss with
  | [ Ast.Ref_op_const (_, Ast.Add, 1.0);
      Ast.Const_op_ref (2.0, Ast.Mul, _);
      Ast.Ref_op_const (_, Ast.Div, 4.0);
      Ast.Ref { triplets = [ { t_lo = 8; t_hi = 0; t_stride = -1 } ]; _ };
      Ast.Ref_op_ref (_, Ast.Sub, _) ] ->
      ()
  | _ -> Alcotest.fail "unexpected expression parses"

let expect_syntax_error src =
  match Parser.parse src with
  | exception Parser.Parse_error _ -> ()
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail ("expected syntax error in: " ^ src)

let test_parser_errors () =
  List.iter expect_syntax_error
    [ "real A"; "real A(320"; "A(0:9) ="; "distribute A (scatter) onto 4";
      "align A(i) with"; "A(1:2:3:4) = 1.0"; "real A(320) junk";
      "A(0:9) = B(0:9) +"; "distribute A (cyclic(8)) 4" ]

let test_parse_triplet_cli () =
  let t = Parser.parse_triplet "4:319:9" in
  Alcotest.(check bool) "triplet" true
    (t = { Ast.t_lo = 4; t_hi = 319; t_stride = 9 });
  let t2 = Parser.parse_triplet "0:99" in
  Tutil.check_int "default stride" 1 t2.Ast.t_stride

(* --- Sema --- *)

let analyze_ok src =
  match Sema.analyze (Parser.parse src) with
  | Ok checked -> checked
  | Error errs ->
      Alcotest.failf "unexpected sema errors: %s"
        (String.concat "; "
           (List.map (fun e -> Format.asprintf "%a" Sema.pp_error e) errs))

let analyze_err src =
  match Sema.analyze (Parser.parse src) with
  | Ok _ -> Alcotest.fail ("expected sema error in: " ^ src)
  | Error errs -> errs

let test_sema_accepts_paper () =
  let checked = analyze_ok paper_program in
  Tutil.check_int "arrays" 1 (List.length checked.Sema.arrays);
  Tutil.check_int "actions" 2 (List.length checked.Sema.actions);
  let info = List.hd checked.Sema.arrays in
  (match info.Sema.mapping with
  | Sema.Grid { grid; _ } -> Tutil.check_int "p" 4 grid.(0)
  | Sema.Aligned_1d _ -> Alcotest.fail "expected a direct distribution")

let test_sema_alignment_resolution () =
  let checked =
    analyze_ok
      "real B(100)\ntemplate T(400)\nalign B(i) with T(3*i+2)\n\
       distribute T (cyclic(5)) onto 4\nB(0:99:7) = 1.0\n"
  in
  let info = List.hd checked.Sema.arrays in
  (match info.Sema.mapping with
  | Sema.Aligned_1d { template_size; align; _ } ->
      Tutil.check_int "template size" 400 template_size;
      Alcotest.(check bool) "alignment" false
        (Lams_dist.Alignment.is_identity align)
  | Sema.Grid _ -> Alcotest.fail "expected an aligned mapping")

let test_sema_rejections () =
  let cases =
    [ ("real A(320)\nA(0:9) = 1.0\n", "no mapping");
      ("A(0:9) = 1.0\n", "undeclared");
      ("real A(10)\nreal A(10)\n", "duplicate");
      ("real A(10)\ndistribute A (block) onto 2\nA(0:20) = 1.0\n", "outside");
      ("real A(10)\ndistribute A (block) onto 0\nA(0:9) = 1.0\n", "onto 0");
      ("real A(10)\ndistribute A (cyclic(0)) onto 2\nA(0:9) = 1.0\n", "cyclic(0)");
      ("real A(10)\ndistribute A (block) onto 2\nA(0:9:0) = 1.0\n", "zero stride");
      ("real A(10)\ndistribute A (block) onto 2\nA(9:0) = 1.0\n", "empty");
      ("real A(10)\nreal B(10)\ndistribute A (block) onto 2\n\
        distribute B (block) onto 2\nA(0:9) = B(0:8)\n",
       "shape mismatch");
      ("real A(10)\ntemplate T(5)\nalign A(i) with T(i)\n\
        distribute T (block) onto 2\nA(0:9) = 1.0\n",
       "alignment outside template");
      ("real A(10)\nalign A(i) with T(i)\nA(0:9) = 1.0\n", "unknown template");
      ("real A(10)\ntemplate T(100)\nalign A(i) with T(i)\nA(0:9) = 1.0\n",
       "template not distributed");
      ("real A(10)\ndistribute A (block) onto 2\ntemplate T(50)\n\
        distribute T (block) onto 2\nalign A(i) with T(i)\nA(0:9) = 1.0\n",
       "both distributed and aligned") ]
  in
  List.iter (fun (src, why) -> ignore (analyze_err src : Sema.error list) |> fun () -> ignore why) cases

let test_sema_collects_multiple_errors () =
  let errs = analyze_err "real A(10)\nA(0:20) = 1.0\nB(0:5) = 2.0\n" in
  Tutil.check_bool "at least two" true (List.length errs >= 2)

(* --- Runtime vs Reference --- *)

let crosscheck_ok src =
  match Driver.crosscheck src with
  | Ok outcome -> outcome
  | Error (`Failure f) ->
      Alcotest.failf "compile failure: %a" Driver.pp_failure f
  | Error (`Diverged d) ->
      Alcotest.failf "diverged: %a" Driver.pp_divergence d

let test_run_paper_program () =
  let outcome = crosscheck_ok paper_program in
  (* 36 elements of value 100 -> sum 3600. *)
  Alcotest.(check (list string)) "outputs" [ "3600" ] outcome.Driver.outputs

let test_run_copy_with_redistribution () =
  let outcome =
    crosscheck_ok
      "real A(60)\nreal B(100)\n\
       distribute A (cyclic) onto 4\ndistribute B (cyclic(5)) onto 3\n\
       B(0:99:1) = 2.0\nB(0:99:2) = 7.0\nA(0:59:3) = B(0:95:5)\n\
       print A(0:59:3)\nprint sum B(0:99:1)\n"
  in
  Tutil.check_int "two outputs" 2 (List.length outcome.Driver.outputs);
  (* B(0:95:5) values: index 5j: even indices -> 7, odd*5 -> odd j gives index
     ending in 5 -> odd -> 2? index 5j is even iff j even. So values
     alternate 7,2,7,2,... 20 of them. *)
  Alcotest.(check string) "copied values"
    (String.concat " "
       (List.init 20 (fun j -> if j mod 2 = 0 then "7" else "2")))
    (List.hd outcome.Driver.outputs);
  Tutil.check_bool "network was used" true
    (outcome.Driver.runtime.Runtime.network <> None)

let test_run_aliasing_shift () =
  (* Overlapping source and destination: Fortran semantics require the rhs
     to be read before any write. *)
  let outcome =
    crosscheck_ok
      "real A(12)\ndistribute A (cyclic(2)) onto 3\n\
       A(0:11:1) = 5.0\nA(0:5:1) = 9.0\nA(1:11:2) = A(0:10:2) + 1.0\n\
       print A(0:11:1)\n"
  in
  ignore outcome

let test_run_reversal () =
  let outcome =
    crosscheck_ok
      "real A(10)\nreal B(10)\n\
       distribute A (cyclic) onto 2\ndistribute B (block) onto 5\n\
       B(0:9:1) = 0.0\nB(0:9:3) = 3.0\nA(9:0:-1) = B(0:9:1)\nprint A(0:9:1)\n"
  in
  (* B = [3 0 0 3 0 0 3 0 0 3]; A reversed = [3 0 0 3 0 0 3 0 0 3]
     (palindrome!) — fine, semantics checked by crosscheck anyway. *)
  Alcotest.(check string) "reversed" "3 0 0 3 0 0 3 0 0 3"
    (List.hd outcome.Driver.outputs)

let test_run_aligned_array () =
  let outcome =
    crosscheck_ok
      "real B(100)\ntemplate T(400)\nalign B(i) with T(3*i+2)\n\
       distribute T (cyclic(8)) onto 4\n\
       B(0:99:1) = 1.0\nB(4:99:9) = 100.0\nprint sum B(0:99:1)\n\
       print B(0:30:1)\n"
  in
  (* 100 ones, 11 of them (4,13,...,94) overwritten by 100: 89 + 1100. *)
  Alcotest.(check string) "sum" "1189" (List.nth outcome.Driver.outputs 0)

let test_run_all_shapes_agree () =
  List.iter
    (fun shape ->
      let outcome =
        match Driver.crosscheck ~shape paper_program with
        | Ok o -> o
        | Error _ -> Alcotest.fail "must succeed"
      in
      Alcotest.(check (list string)) "outputs" [ "3600" ] outcome.Driver.outputs)
    Lams_codegen.Shapes.all

(* --- Printer round trip --- *)

let test_pp_roundtrip () =
  (* pp_statement output re-parses to the same statement (modulo
     positions), so the printer is a faithful surface form. *)
  let src =
    "real A(320)\nreal M(16, 12)\ntemplate T(400)\n\
     align A(i) with T(2*i+1)\n\
     distribute T (cyclic(8)) onto 4\n\
     distribute M (cyclic(2), block) onto (2, 2)\n\
     A(4:319:9) = 100.0\nA(0:9:1) = A(0:9:1) * 0.5\n\
     M(0:15:2, 1:11:3) = 5.0\n\
     forall i = 0:20:2 do A(3*i+1) = 8.0\n\
     print A(0:9:1)\nprint sum M(0:15:1, 0:11:1)\n"
  in
  let strip_positions stmts =
    List.map (fun s -> Format.asprintf "%a" Ast.pp_statement s) stmts
  in
  let once = Parser.parse src in
  let printed =
    String.concat "\n" (strip_positions once) ^ "\n"
  in
  let twice = Parser.parse printed in
  Alcotest.(check (list string)) "round trip" (strip_positions once)
    (strip_positions twice)

(* --- C backend --- *)

let c_backend_programs =
  [ ( "fills",
      "real A(320)\ndistribute A (cyclic(8)) onto 4\n\
       A(0:319:1) = 0.0\nA(4:319:9) = 100.0\n\
       print sum A(0:319:1)\nprint A(0:31:1)\n" );
    ( "copy + in-place",
      "real A(120)\nreal B(90)\n\
       distribute A (cyclic(4)) onto 3\ndistribute B (block) onto 5\n\
       A(0:119:1) = 1.0\nA(0:119:7) = 6.0\n\
       B(0:89:1) = 0.0\nB(89:2:-3) = A(0:87:3)\n\
       B(0:89:2) = B(0:89:2) * 0.5\nB(1:89:2) = 2.0 + B(1:89:2)\n\
       print B(0:29:1)\nprint sum B(0:89:1)\nprint sum A(0:119:1)\n" );
    ( "forall lowered",
      "real A(64)\ndistribute A (cyclic(2)) onto 4\n\
       A(0:63:1) = 3.0\nforall i = 0:20 do A(3*i+1) = 8.0\n\
       A(1:61:3) = A(1:61:3) / 2.0\nprint A(0:63:1)\n" );
    ( "cross-array expressions",
      "real A(60)\nreal B(60)\nreal C(60)\n\
       distribute A (cyclic(3)) onto 4\ndistribute B (block) onto 3\n\
       distribute C (cyclic) onto 5\n\
       B(0:59:1) = 2.0\nC(0:59:1) = 10.0\nC(0:59:4) = 50.0\n\
       A(0:59:1) = B(0:59:1) * 3.0\n\
       A(0:59:2) = 1.0 - B(59:1:-2)\n\
       A(0:59:1) = A(0:59:1) + C(0:59:1)\n\
       A(0:29:1) = B(0:29:1) - C(30:59:1)\n\
       print sum A(0:59:1)\nprint A(0:19:1)\n" );
    ( "overlapping in-array shift",
      "real A(40)\ndistribute A (cyclic(4)) onto 2\n\
       A(0:39:1) = 1.0\nA(0:39:5) = 9.0\n\
       A(1:39:1) = A(0:38:1)      ! overlapping shift, staging required\n\
       A(0:19:1) = A(0:19:1) + A(20:39:1)\n\
       print A(0:39:1)\nprint sum A(0:39:1)\n" ) ]

let test_c_backend_matches_runtime () =
  if Sys.command "cc --version > /dev/null 2>&1" <> 0 then ()
  else
    List.iter
      (fun (label, src) ->
        match (Driver.compile_and_run src, Emit_program.emit_source src) with
        | Ok outcome, Ok c_text ->
            let dir = Filename.temp_dir "lams_prog" "" in
            let c_file = Filename.concat dir "prog.c"
            and exe = Filename.concat dir "prog.exe" in
            Out_channel.with_open_text c_file (fun oc ->
                output_string oc c_text);
            Tutil.check_int (label ^ ": cc") 0
              (Sys.command (Printf.sprintf "cc -O2 -o %s %s" exe c_file));
            let ic = Unix.open_process_in exe in
            let rec lines acc =
              match input_line ic with
              | l -> lines (l :: acc)
              | exception End_of_file ->
                  ignore (Unix.close_process_in ic);
                  List.rev acc
            in
            Alcotest.(check (list string))
              (label ^ ": outputs")
              outcome.Driver.outputs (lines [])
        | Error f, _ ->
            Alcotest.failf "%s: runtime failed: %a" label Driver.pp_failure f
        | _, Error (`Failure f) ->
            Alcotest.failf "%s: emission compile failed: %a" label
              Driver.pp_failure f
        | _, Error (`Unsupported u) ->
            Alcotest.failf "%s: unexpectedly unsupported: %a" label
              Emit_program.pp_unsupported u)
      c_backend_programs

(* Deterministic fuzz over the C backend: generated programs with fills,
   copies, cross-array expressions and prints, each compiled with cc and
   byte-compared against the runtime. *)
let test_c_backend_fuzz () =
  if Sys.command "cc --version > /dev/null 2>&1" <> 0 then ()
  else begin
    let rng = Lams_util.Prng.create 20260704L in
    for case = 1 to 6 do
      let p1 = Lams_util.Prng.int_in rng 1 5
      and p2 = Lams_util.Prng.int_in rng 1 5
      and k1 = Lams_util.Prng.int_in rng 1 8
      and k2 = Lams_util.Prng.int_in rng 1 8
      and n = Lams_util.Prng.int_in rng 30 120 in
      let sec () =
        let s = Lams_util.Prng.int_in rng 1 6 in
        let lo = Lams_util.Prng.int_in rng 0 (n / 4) in
        let count = Lams_util.Prng.int_in rng 2 ((n - lo) / s) in
        let hi = lo + ((count - 1) * s) in
        if Lams_util.Prng.bool rng then Printf.sprintf "%d:%d:%d" lo hi s
        else Printf.sprintf "%d:%d:-%d" hi lo s
      in
      let equal_count_pair () =
        let s1 = Lams_util.Prng.int_in rng 1 5
        and s2 = Lams_util.Prng.int_in rng 1 5 in
        let max_count = min ((n - 1) / s1) ((n - 1) / s2) in
        let count = Lams_util.Prng.int_in rng 2 (max 2 max_count) in
        let count = min count max_count in
        ( Printf.sprintf "0:%d:%d" ((count - 1) * s1) s1,
          Printf.sprintf "0:%d:%d" ((count - 1) * s2) s2 )
      in
      let sa, sb = equal_count_pair () in
      let sa2, sb2 = equal_count_pair () in
      let src =
        Printf.sprintf
          "real A(%d)\nreal B(%d)\n\
           distribute A (cyclic(%d)) onto %d\ndistribute B (cyclic(%d)) onto %d\n\
           A(0:%d:1) = 1.5\nB(0:%d:1) = 4.0\n\
           A(%s) = 2.0\nB(%s) = A(%s) * 3.0\n\
           A(%s) = A(%s) + B(%s)\n\
           print sum A(0:%d:1)\nprint sum B(0:%d:1)\nprint A(%s)\n"
          n n k1 p1 k2 p2 (n - 1) (n - 1) (sec ()) sb sa sa2 sa2 sb2 (n - 1)
          (n - 1) (sec ())
      in
      match (Driver.crosscheck src, Emit_program.emit_source src) with
      | Ok outcome, Ok c_text ->
          let dir = Filename.temp_dir "lams_fuzz" "" in
          let c_file = Filename.concat dir "prog.c"
          and exe = Filename.concat dir "prog.exe" in
          Out_channel.with_open_text c_file (fun oc -> output_string oc c_text);
          Tutil.check_int
            (Printf.sprintf "case %d: cc" case)
            0
            (Sys.command (Printf.sprintf "cc -O1 -o %s %s" exe c_file));
          let ic = Unix.open_process_in exe in
          let rec lines acc =
            match input_line ic with
            | l -> lines (l :: acc)
            | exception End_of_file ->
                ignore (Unix.close_process_in ic);
                List.rev acc
          in
          Alcotest.(check (list string))
            (Printf.sprintf "case %d: outputs (src=\n%s)" case src)
            outcome.Driver.outputs (lines [])
      | Error (`Failure f), _ ->
          Alcotest.failf "case %d runtime: %a (src=\n%s)" case Driver.pp_failure
            f src
      | Error (`Diverged d), _ ->
          Alcotest.failf "case %d diverged: %a" case Driver.pp_divergence d
      | _, Error (`Failure f) ->
          Alcotest.failf "case %d emit: %a" case Driver.pp_failure f
      | _, Error (`Unsupported u) ->
          Alcotest.failf "case %d unsupported: %a" case
            Emit_program.pp_unsupported u
    done
  end

let test_c_backend_unsupported () =
  let expect_unsupported src =
    match Emit_program.emit_source src with
    | Error (`Unsupported _) -> ()
    | Ok _ -> Alcotest.fail "expected Unsupported"
    | Error (`Failure f) -> Alcotest.failf "compile failure: %a" Driver.pp_failure f
  in
  (* 2-D array. *)
  expect_unsupported
    "real M(8, 8)\ndistribute M (block, block) onto (2, 2)\n\
     M(0:7:1, 0:7:1) = 1.0\n";
  (* Non-identity alignment. *)
  expect_unsupported
    "real B(10)\ntemplate T(40)\nalign B(i) with T(2*i+1)\n\
     distribute T (block) onto 2\nB(0:9:1) = 1.0\n";
  (* Copy beyond the static-schedule cap. *)
  expect_unsupported
    "real A(100000)\nreal B(100000)\ndistribute A (block) onto 2\n\
     distribute B (block) onto 2\nA(0:99999:1) = 0.0\n\
     A(0:99999:1) = B(0:99999:1)\n"

(* The static-schedule cap bail must be actionable: it names the
   offending copy's element count, both arrays, and the cap itself. *)
let test_c_backend_copy_cap_message () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let src =
    "real SRC(100000)\nreal DST(100000)\ndistribute SRC (block) onto 2\n\
     distribute DST (block) onto 2\nSRC(0:99999:1) = 0.0\n\
     DST(0:99999:1) = SRC(0:99999:1)\n"
  in
  match Emit_program.emit_source src with
  | Error (`Unsupported u) ->
      let what = u.Emit_program.what and hint = u.Emit_program.hint in
      List.iter
        (fun (label, hay, needle) ->
          if not (contains hay needle) then
            Alcotest.failf "bail %s %S does not mention %S" label hay needle)
        [ ("what", what, "100000-element");
          ("what", what, "SRC");
          ("what", what, "DST");
          ("hint", hint, "65536") ]
  | Ok _ -> Alcotest.fail "expected the copy cap to bail"
  | Error (`Failure f) ->
      Alcotest.failf "compile failure: %a" Driver.pp_failure f

(* --- Forall --- *)

let test_parse_forall () =
  let prog =
    Parser.parse "real A(100)\ndistribute A (cyclic(4)) onto 4\n\
                  forall i = 0:49:1 do A(2*i+1) = 3.5\n"
  in
  match prog with
  | [ _; _;
      Ast.Forall
        { var = "I";
          range = { t_lo = 0; t_hi = 49; t_stride = 1 };
          lhs = { f_array = "A"; f_sub = { scale = 2; offset = 1 }; _ };
          rhs = Ast.F_const 3.5;
          _ } ] ->
      ()
  | _ -> Alcotest.fail "unexpected forall parse"

let test_parse_forall_errors () =
  (* Subscript must use the declared loop variable. *)
  List.iter expect_syntax_error
    [ "forall i = 0:9 do A(j) = 1.0\n";
      "forall i = 0:9 do A(2*j+1) = 1.0\n";
      "forall i = 0:9 A(i) = 1.0\n";
      "forall i = 0:9 do A(i) =\n" ]

let test_sema_forall_lowering () =
  let checked =
    analyze_ok
      "real A(100)\nreal B(100)\ndistribute A (cyclic(4)) onto 4\n\
       distribute B (block) onto 2\n\
       forall i = 0:24:1 do A(2*i+1) = B(96-3*i) + 0.5\n"
  in
  match checked.Sema.actions with
  | [ Sema.Assign { lhs; rhs = Sema.Ref_op_const (r, Ast.Add, 0.5) } ] ->
      let lsec = lhs.Sema.sections.(0) and rsec = r.Sema.sections.(0) in
      Tutil.check_int "lhs lo" 1 lsec.Lams_dist.Section.lo;
      Tutil.check_int "lhs stride" 2 lsec.Lams_dist.Section.stride;
      Tutil.check_int "lhs hi" 49 lsec.Lams_dist.Section.hi;
      Tutil.check_int "rhs lo" 96 rsec.Lams_dist.Section.lo;
      Tutil.check_int "rhs stride" (-3) rsec.Lams_dist.Section.stride;
      Tutil.check_int "rhs hi" 24 rsec.Lams_dist.Section.hi
  | _ -> Alcotest.fail "unexpected lowering"

let test_sema_forall_errors () =
  (* Constant subscript (no loop variable). *)
  ignore
    (analyze_err
       "real A(10)\ndistribute A (block) onto 2\nforall i = 0:9 do A(3) = 1.0\n");
  (* Out of bounds image. *)
  ignore
    (analyze_err
       "real A(10)\ndistribute A (block) onto 2\nforall i = 0:9 do A(2*i) = 1.0\n");
  (* Rank-2 array. *)
  ignore
    (analyze_err
       "real M(8, 8)\ndistribute M (block, block) onto (2, 2)\n\
        forall i = 0:7 do M(i) = 1.0\n");
  (* Empty range. *)
  ignore
    (analyze_err
       "real A(10)\ndistribute A (block) onto 2\nforall i = 9:0 do A(i) = 1.0\n")

let test_run_forall () =
  let outcome =
    crosscheck_ok
      "real A(40)\nreal B(40)\n\
       distribute A (cyclic(3)) onto 4\ndistribute B (cyclic) onto 2\n\
       B(0:39:1) = 2.0\nforall i = 0:19:1 do B(2*i) = 7.0\n\
       forall i = 0:9:1 do A(3*i+2) = B(39-2*i) * 10.0\n\
       print A(2:29:3)\nprint sum B(0:39:1)\n"
  in
  (* B(39-2i) for i=0..9: odd indices -> 2.0; so A(3i+2) = 20. *)
  Alcotest.(check string) "forall result" "20 20 20 20 20 20 20 20 20 20"
    (List.hd outcome.Driver.outputs)

let prop_random_forall =
  Tutil.qtest ~count:60 "random forall programs crosscheck"
    QCheck2.Gen.(
      let* p = int_range 1 5 in
      let* k = int_range 1 7 in
      let* count = int_range 1 20 in
      let* a = oneof [ int_range (-4) (-1); int_range 1 4 ] in
      let* s_iter = int_range 1 3 in
      let* v = int_range 1 50 in
      return (p, k, count, a, s_iter, v))
    ~print:(fun (p, k, count, a, s_iter, v) ->
      Printf.sprintf "p=%d k=%d count=%d a=%d s=%d v=%d" p k count a s_iter v)
    (fun (p, k, count, a, s_iter, v) ->
      (* Choose the offset so the image stays inside [0, n). *)
      let last_i = (count - 1) * s_iter in
      let b = if a > 0 then 0 else -a * last_i in
      let n = (abs a * last_i) + b + 1 in
      let src =
        Printf.sprintf
          "real A(%d)\ndistribute A (cyclic(%d)) onto %d\n\
           A(0:%d:1) = 1.0\nforall i = 0:%d:%d do A(%d*i+%d) = %d.0\n\
           print sum A(0:%d:1)\n"
          n k p (n - 1) last_i s_iter a b v (n - 1)
      in
      match Driver.crosscheck src with Ok _ -> true | Error _ -> false)

(* --- Multidimensional programs --- *)

let test_parse_2d () =
  let prog =
    Parser.parse
      "real M(64, 64)\ndistribute M (cyclic(4), block) onto (2, 2)\n\
       M(0:63:2, 1:63:3) = 5.0\n"
  in
  match prog with
  | [ Ast.Decl { sizes = [ 64; 64 ]; _ };
      Ast.Distribute { formats = [ Ast.Cyclic_k 4; Ast.Block ]; onto = [ 2; 2 ]; _ };
      Ast.Assign
        { lhs =
            { triplets =
                [ { t_lo = 0; t_hi = 63; t_stride = 2 };
                  { t_lo = 1; t_hi = 63; t_stride = 3 } ];
              _ };
          rhs = Ast.Const 5.;
          _ } ] ->
      ()
  | _ -> Alcotest.fail "unexpected 2-D parse"

let test_sema_2d_rank_checks () =
  (* Wrong subscript arity. *)
  ignore
    (analyze_err
       "real M(8, 8)\ndistribute M (block, block) onto (2, 2)\nM(0:7) = 1.0\n");
  (* Wrong format arity. *)
  ignore
    (analyze_err "real M(8, 8)\ndistribute M (block) onto (2, 2)\nM(0:7, 0:7) = 1.0\n");
  (* Grid rank mismatch. *)
  ignore
    (analyze_err
       "real M(8, 8)\ndistribute M (block, block) onto 4\nM(0:7, 0:7) = 1.0\n");
  (* Shape mismatch between 2-D operands. *)
  ignore
    (analyze_err
       "real M(8, 8)\nreal N(8, 8)\ndistribute M (block, block) onto (2, 2)\n\
        distribute N (block, block) onto (2, 2)\nM(0:7, 0:7) = N(0:7, 0:6)\n");
  (* Aligning a 2-D array is rejected. *)
  ignore
    (analyze_err
       "real M(8, 8)\ntemplate T(100)\nalign M(i) with T(i)\n\
        distribute T (block) onto 2\nM(0:7, 0:7) = 1.0\n")

let test_run_2d_fill_and_sum () =
  let outcome =
    crosscheck_ok
      "real M(16, 12)\ndistribute M (cyclic(2), cyclic(3)) onto (2, 2)\n\
       M(0:15:1, 0:11:1) = 1.0\nM(0:15:2, 1:11:3) = 10.0\n\
       print sum M(0:15:1, 0:11:1)\nprint M(0:3:1, 0:3:1)\n"
  in
  (* 192 ones; 8*4 = 32 of them overwritten by 10: 160 + 320 = 480. *)
  Alcotest.(check string) "sum" "480" (List.hd outcome.Driver.outputs)

let test_run_2d_band_copy () =
  (* Copy a row band into a column band: exercises the general
     materialise/store path with different per-dimension strides. *)
  let outcome =
    crosscheck_ok
      "real M(10, 10)\nreal N(10, 10)\n\
       distribute M (cyclic(2), cyclic(2)) onto (2, 2)\n\
       distribute N (block, cyclic) onto (2, 2)\n\
       N(0:9:1, 0:9:1) = 3.0\nN(2:2:1, 0:9:2) = 7.0\n\
       M(4:4:1, 0:9:1) = N(2:2:1, 9:0:-1)\n\
       print M(4:4:1, 0:9:1)\nprint sum M(0:9:1, 0:9:1)\n"
  in
  (* N row 2 is [7 3 7 3 7 3 7 3 7 3]; reversed it is [3 7 3 7 3 7 3 7 3 7]. *)
  Alcotest.(check string) "row" "3 7 3 7 3 7 3 7 3 7"
    (List.hd outcome.Driver.outputs)

let test_run_2d_elementwise_ops () =
  ignore
    (crosscheck_ok
       "real M(12, 9)\nreal N(12, 9)\n\
        distribute M (cyclic(2), block) onto (3, 1)\n\
        distribute N (cyclic, cyclic(2)) onto (2, 2)\n\
        M(0:11:1, 0:8:1) = 2.0\nN(0:11:1, 0:8:1) = 5.0\n\
        M(0:11:2, 0:8:2) = N(0:11:2, 0:8:2) * 3.0\n\
        M(1:11:2, 1:8:2) = M(1:11:2, 1:8:2) + N(1:11:2, 1:8:2)\n\
        print sum M(0:11:1, 0:8:1)\n")

let test_runtime_2d_read () =
  match Driver.compile_and_run
          "real M(6, 4)\ndistribute M (cyclic(2), cyclic) onto (2, 2)\n\
           M(0:5:1, 0:3:1) = 1.0\nM(2:4:2, 1:3:2) = 9.0\n"
  with
  | Error _ -> Alcotest.fail "must run"
  | Ok o ->
      Alcotest.(check (float 0.)) "M(2,1)" 9. (Runtime.read o.Driver.runtime "M" [| 2; 1 |]);
      Alcotest.(check (float 0.)) "M(2,2)" 1. (Runtime.read o.Driver.runtime "M" [| 2; 2 |]);
      Alcotest.(check (float 0.)) "M(4,3)" 9. (Runtime.read o.Driver.runtime "M" [| 4; 3 |]);
      Alcotest.check_raises "rank mismatch" (Invalid_argument "Runtime: rank mismatch")
        (fun () -> ignore (Runtime.read o.Driver.runtime "M" [| 2 |]))

let prop_random_2d_programs =
  Tutil.qtest ~count:60 "random 2-D fill programs crosscheck"
    QCheck2.Gen.(
      let* p0 = int_range 1 3 and* p1 = int_range 1 3 in
      let* k0 = int_range 1 5 and* k1 = int_range 1 5 in
      let* n0 = int_range 4 20 and* n1 = int_range 4 20 in
      let* s0 = int_range 1 5 and* s1 = int_range 1 5 in
      let* v = int_range 1 50 in
      return (p0, p1, k0, k1, n0, n1, s0, s1, v))
    ~print:(fun (p0, p1, k0, k1, n0, n1, s0, s1, v) ->
      Printf.sprintf "grid=(%d,%d) k=(%d,%d) n=(%d,%d) s=(%d,%d) v=%d" p0 p1 k0
        k1 n0 n1 s0 s1 v)
    (fun (p0, p1, k0, k1, n0, n1, s0, s1, v) ->
      let src =
        Printf.sprintf
          "real M(%d, %d)\ndistribute M (cyclic(%d), cyclic(%d)) onto (%d, %d)\n\
           M(0:%d:1, 0:%d:1) = 1.0\nM(1:%d:%d, 0:%d:%d) = %d.0\n\
           print sum M(0:%d:1, 0:%d:1)\n"
          n0 n1 k0 k1 p0 p1 (n0 - 1) (n1 - 1) (n0 - 1) s0 (n1 - 1) s1 v
          (n0 - 1) (n1 - 1)
      in
      match Driver.crosscheck src with Ok _ -> true | Error _ -> false)

let prop_random_fill_programs =
  Tutil.qtest ~count:100 "random fill/print programs crosscheck"
    QCheck2.Gen.(
      let* p = int_range 1 6 in
      let* k = int_range 1 9 in
      let* n = int_range 10 200 in
      let* s1 = int_range 1 11 in
      let* s2 = int_range 1 11 in
      let* v1 = int_range 1 99 in
      let* v2 = int_range 1 99 in
      return (p, k, n, s1, s2, v1, v2))
    ~print:(fun (p, k, n, s1, s2, v1, v2) ->
      Printf.sprintf "p=%d k=%d n=%d s1=%d s2=%d v1=%d v2=%d" p k n s1 s2 v1 v2)
    (fun (p, k, n, s1, s2, v1, v2) ->
      let src =
        Printf.sprintf
          "real A(%d)\ndistribute A (cyclic(%d)) onto %d\n\
           A(0:%d:%d) = %d.0\nA(1:%d:%d) = %d.0\nprint sum A(0:%d:1)\n"
          n k p (n - 1) s1 v1 (n - 1) s2 v2 (n - 1)
      in
      match Driver.crosscheck src with Ok _ -> true | Error _ -> false)

let prop_random_copy_programs =
  Tutil.qtest ~count:60 "random copy programs crosscheck"
    QCheck2.Gen.(
      let* p1 = int_range 1 4 and* p2 = int_range 1 4 in
      let* k1 = int_range 1 6 and* k2 = int_range 1 6 in
      let* count = int_range 1 15 in
      let* s1 = int_range 1 4 and* s2 = int_range 1 4 in
      return (p1, k1, p2, k2, count, s1, s2))
    (fun (p1, k1, p2, k2, count, s1, s2) ->
      let n1 = 1 + (s1 * count) and n2 = 1 + (s2 * count) in
      let src =
        Printf.sprintf
          "real A(%d)\nreal B(%d)\n\
           distribute A (cyclic(%d)) onto %d\ndistribute B (cyclic(%d)) onto %d\n\
           B(0:%d:1) = 3.0\nB(0:%d:%d) = 8.0\n\
           A(0:%d:%d) = B(0:%d:%d)\nprint A(0:%d:1)\n"
          n1 n2 k1 p1 k2 p2 (n2 - 1) (n2 - 1) s2
          (s1 * (count - 1)) s1 (s2 * (count - 1)) s2 (n1 - 1)
      in
      match Driver.crosscheck src with Ok _ -> true | Error _ -> false)

(* --- REDISTRIBUTE directive --- *)

let test_lexer_redistribute () =
  (* The !HPF$ sentinel lexes the rest of the line as statement tokens;
     a plain ! comment is still skipped to end of line. *)
  let toks =
    Lexer.tokenize "!HPF$ REDISTRIBUTE A (cyclic(4)) onto 2 ! tail\n! gone\nreal A(8)"
  in
  let kinds = List.map (fun { Lexer.token; _ } -> token) toks in
  Alcotest.(check bool) "tokens" true
    (kinds
    = [ Lexer.Kw_redistribute; Lexer.Ident "A"; Lexer.Lparen; Lexer.Kw_cyclic;
        Lexer.Lparen; Lexer.Int 4; Lexer.Rparen; Lexer.Rparen; Lexer.Kw_onto;
        Lexer.Int 2; Lexer.Newline; Lexer.Kw_real; Lexer.Ident "A";
        Lexer.Lparen; Lexer.Int 8; Lexer.Rparen; Lexer.Newline; Lexer.Eof ])

let test_parser_redistribute () =
  (* Parenthesized and bare single-format forms, case-insensitive. *)
  let prog =
    Parser.parse
      "real A(100)\ndistribute A (cyclic(2)) onto 4\n\
       !HPF$ REDISTRIBUTE A (cyclic(16)) onto (2)\n\
       !hpf$ redistribute A cyclic(5) onto 6\n"
  in
  (match prog with
  | [ _; _;
      Ast.Redistribute { name = "A"; formats = [ Ast.Cyclic_k 16 ]; onto = [ 2 ]; _ };
      Ast.Redistribute { name = "A"; formats = [ Ast.Cyclic_k 5 ]; onto = [ 6 ]; _ } ] ->
      ()
  | _ -> Alcotest.fail "unexpected redistribute parse");
  (* A directive with junk after it is a syntax error, not a comment. *)
  expect_syntax_error "real A(8)\n!HPF$ REDISTRIBUTE A (cyclic(2)) onto\n"

let test_sema_redistribute_errors () =
  let cases =
    [ ("!HPF$ REDISTRIBUTE A (cyclic(2)) onto 2\n", "undeclared");
      ("real A(10)\n!HPF$ REDISTRIBUTE A (cyclic(2)) onto 2\n", "unmapped");
      ("real M(4, 4)\ndistribute M (block, block) onto (2, 2)\n\
        !HPF$ REDISTRIBUTE M (cyclic(2)) onto 2\nM(0:3:1, 0:3:1) = 1.0\n",
       "rank 2");
      ("real A(10)\ntemplate T(10)\nalign A(i) with T(i)\n\
        distribute T (block) onto 2\n!HPF$ REDISTRIBUTE A (cyclic(2)) onto 2\n\
        A(0:9:1) = 1.0\n",
       "aligned");
      ("real A(10)\ndistribute A (cyclic(2)) onto 2\n\
        !HPF$ REDISTRIBUTE A (cyclic(0)) onto 2\nA(0:9:1) = 1.0\n",
       "cyclic(0)");
      ("real A(10)\ndistribute A (cyclic(2)) onto 2\n\
        !HPF$ REDISTRIBUTE A (cyclic(2)) onto 0\nA(0:9:1) = 1.0\n",
       "onto 0");
      ("real A(10)\ndistribute A (cyclic(2)) onto 2\n\
        !HPF$ REDISTRIBUTE A (cyclic(2), cyclic(2)) onto (2, 2)\n\
        A(0:9:1) = 1.0\n",
       "format count") ]
  in
  List.iter
    (fun (src, why) -> ignore (analyze_err src : Sema.error list) |> fun () -> ignore why)
    cases

let test_sema_redistribute_flow () =
  (* Mappings are flow-sensitive: references after the directive resolve
     against the new mapping, while [checked.arrays] keeps the initial one. *)
  let checked =
    analyze_ok
      "real A(24)\ndistribute A (cyclic(2)) onto 4\nA(0:23:1) = 1.0\n\
       !HPF$ REDISTRIBUTE A (cyclic(3)) onto 2\nA(0:23:1) = 2.0\n"
  in
  let grid_of = function
    | Sema.Grid { grid; _ } -> grid
    | Sema.Aligned_1d _ -> Alcotest.fail "expected a grid mapping"
  in
  (match checked.Sema.arrays with
  | [ info ] -> Alcotest.(check bool) "initial" true (grid_of info.Sema.mapping = [| 4 |])
  | _ -> Alcotest.fail "expected one array");
  match checked.Sema.actions with
  | [ Sema.Assign { lhs = before; _ };
      Sema.Redistribute { from_; to_ };
      Sema.Assign { lhs = after; _ } ] ->
      Alcotest.(check bool) "before" true
        (grid_of before.Sema.info.Sema.mapping = [| 4 |]);
      Alcotest.(check bool) "from" true (grid_of from_.Sema.mapping = [| 4 |]);
      Alcotest.(check bool) "to" true (grid_of to_.Sema.mapping = [| 2 |]);
      Alcotest.(check bool) "after" true
        (after.Sema.info.Sema.mapping = to_.Sema.mapping)
  | _ -> Alcotest.fail "unexpected action shape"

let test_run_redistribute () =
  let outcome =
    crosscheck_ok
      "real A(48)\ndistribute A (cyclic(1)) onto 4\n\
       A(0:47:1) = 1.0\nA(0:47:2) = 4.0\n\
       !HPF$ REDISTRIBUTE A (cyclic(6)) onto 3\n\
       A(1:47:2) = A(0:46:2) + 0.5\n\
       !HPF$ redistribute A cyclic(4) onto 5\n\
       print sum A(0:47:1)\nprint A(0:7:1)\n"
  in
  (* Evens 4.0, odds become 4.5: sum = 24*4 + 24*4.5 = 204. *)
  Alcotest.(check (list string)) "outputs" [ "204"; "4 4.5 4 4.5 4 4.5 4 4.5" ]
    outcome.Driver.outputs;
  Tutil.check_bool "network was used" true
    (outcome.Driver.runtime.Runtime.network <> None)

let test_c_backend_rejects_redistribute () =
  match
    Emit_program.emit_source
      "real A(10)\ndistribute A (cyclic(2)) onto 2\nA(0:9:1) = 1.0\n\
       !HPF$ REDISTRIBUTE A (cyclic(5)) onto 2\nprint sum A(0:9:1)\n"
  with
  | Error (`Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "expected Unsupported"
  | Error (`Failure f) -> Alcotest.failf "compile failure: %a" Driver.pp_failure f

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse the paper program" `Quick
      test_parser_paper_program;
    Alcotest.test_case "parse alignment forms" `Quick test_parser_align_forms;
    Alcotest.test_case "parse expressions" `Quick test_parser_exprs;
    Alcotest.test_case "parse errors" `Quick test_parser_errors;
    Alcotest.test_case "parse bare triplets" `Quick test_parse_triplet_cli;
    Alcotest.test_case "sema accepts the paper program" `Quick
      test_sema_accepts_paper;
    Alcotest.test_case "sema resolves alignment" `Quick
      test_sema_alignment_resolution;
    Alcotest.test_case "sema rejections" `Quick test_sema_rejections;
    Alcotest.test_case "sema collects multiple errors" `Quick
      test_sema_collects_multiple_errors;
    Alcotest.test_case "run the paper program" `Quick test_run_paper_program;
    Alcotest.test_case "run copy with redistribution" `Quick
      test_run_copy_with_redistribution;
    Alcotest.test_case "run aliasing shift" `Quick test_run_aliasing_shift;
    Alcotest.test_case "lexer REDISTRIBUTE directive" `Quick
      test_lexer_redistribute;
    Alcotest.test_case "parse REDISTRIBUTE forms" `Quick
      test_parser_redistribute;
    Alcotest.test_case "sema REDISTRIBUTE rejections" `Quick
      test_sema_redistribute_errors;
    Alcotest.test_case "sema REDISTRIBUTE is flow-sensitive" `Quick
      test_sema_redistribute_flow;
    Alcotest.test_case "run program with REDISTRIBUTE" `Quick
      test_run_redistribute;
    Alcotest.test_case "C backend rejects REDISTRIBUTE" `Quick
      test_c_backend_rejects_redistribute;
    Alcotest.test_case "run reversal" `Quick test_run_reversal;
    Alcotest.test_case "run aligned array" `Quick test_run_aligned_array;
    Alcotest.test_case "all node-code shapes agree end-to-end" `Quick
      test_run_all_shapes_agree;
    Alcotest.test_case "printer round trip" `Quick test_pp_roundtrip;
    Alcotest.test_case "C backend matches the runtime" `Quick
      test_c_backend_matches_runtime;
    Alcotest.test_case "C backend copy-cap bail names the copy" `Quick
      test_c_backend_copy_cap_message;
    Alcotest.test_case "C backend unsupported forms" `Quick
      test_c_backend_unsupported;
    Alcotest.test_case "C backend fuzz (6 random programs)" `Quick
      test_c_backend_fuzz;
    Alcotest.test_case "parse forall" `Quick test_parse_forall;
    Alcotest.test_case "forall parse errors" `Quick test_parse_forall_errors;
    Alcotest.test_case "forall lowering" `Quick test_sema_forall_lowering;
    Alcotest.test_case "forall sema errors" `Quick test_sema_forall_errors;
    Alcotest.test_case "run forall programs" `Quick test_run_forall;
    prop_random_forall;
    Alcotest.test_case "parse 2-D declarations and sections" `Quick
      test_parse_2d;
    Alcotest.test_case "sema 2-D rank checks" `Quick test_sema_2d_rank_checks;
    Alcotest.test_case "run 2-D fill and sum" `Quick test_run_2d_fill_and_sum;
    Alcotest.test_case "run 2-D band copy with reversal" `Quick
      test_run_2d_band_copy;
    Alcotest.test_case "run 2-D elementwise ops" `Quick
      test_run_2d_elementwise_ops;
    Alcotest.test_case "2-D runtime reads" `Quick test_runtime_2d_read;
    prop_random_2d_programs;
    prop_random_fill_programs;
    prop_random_copy_programs ]
