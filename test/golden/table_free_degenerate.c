void node_code(double *local, double value)
{
  /* single reachable offset: constant gap of 4 cells */
  for (int base = 0; base <= 28; base += 4)
    local[base] = value;
}
