void node_code(double *local, double value)
{
  /* R = (4, 1), L = (5, -1); no gap tables stored */
  enum { startmem = 5, lastmem = 77, startoff = 13,
         window_lo = 8, window_hi = 16 };
  int base = startmem, off = startoff;
  while (base <= lastmem) {
    local[base] = value;
    if (off + 4 < window_hi) {
      off += 4; base += 12;   /* step R */
    } else if (off - 5 >= window_lo) {
      off -= 5; base += 3;   /* step -L */
    } else {
      off += -1; base += 15;   /* step R - L */
    }
  }
}
