void node_code(double *local, double value)
{
enum { startmem = 5, lastmem = 77, length = 8, startoffset = 5 };
static const int deltaM[8] = { 3, 12, 15, 12, 3, 12, 3, 12 };
static const int deltaOff[8] = { 12, 12, 12, 12, 15, 3, 3, 3 };
static const int NextOffset[8] = { 4, 5, 6, 7, 3, 0, 1, 2 };
  int base = startmem, i;
  while (1) {
    for (i = 0; i < length; i++) {
      local[base] = value;
      base += deltaM[i];
      if (base > lastmem) goto done;
    }
  }
  done: ;
}
