open Lams_numeric

let test_emod_ediv () =
  Tutil.check_int "emod 7 3" 1 (Modular.emod 7 3);
  Tutil.check_int "emod (-7) 3" 2 (Modular.emod (-7) 3);
  Tutil.check_int "emod 7 (-3)" 1 (Modular.emod 7 (-3));
  Tutil.check_int "emod (-7) (-3)" 2 (Modular.emod (-7) (-3));
  Tutil.check_int "ediv (-7) 3" (-3) (Modular.ediv (-7) 3);
  Tutil.check_int "ediv 7 3" 2 (Modular.ediv 7 3);
  Alcotest.check_raises "emod by zero" Division_by_zero (fun () ->
      ignore (Modular.emod 5 0))

let test_floor_ceil_div () =
  Tutil.check_int "floor_div 7 2" 3 (Modular.floor_div 7 2);
  Tutil.check_int "floor_div (-7) 2" (-4) (Modular.floor_div (-7) 2);
  Tutil.check_int "floor_div 7 (-2)" (-4) (Modular.floor_div 7 (-2));
  Tutil.check_int "ceil_div 7 2" 4 (Modular.ceil_div 7 2);
  Tutil.check_int "ceil_div (-7) 2" (-3) (Modular.ceil_div (-7) 2);
  Tutil.check_int "ceil_div 6 2" 3 (Modular.ceil_div 6 2)

let test_pow () =
  Tutil.check_int "2^10" 1024 (Modular.pow 2 10);
  Tutil.check_int "3^0" 1 (Modular.pow 3 0);
  Tutil.check_int "7^3" 343 (Modular.pow 7 3);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Modular.pow: negative exponent") (fun () ->
      ignore (Modular.pow 2 (-1)))

let test_gcd_known () =
  Tutil.check_int "gcd 12 18" 6 (Euclid.gcd 12 18);
  Tutil.check_int "gcd 9 32*4" 1 (Euclid.gcd 9 128);
  Tutil.check_int "gcd 0 5" 5 (Euclid.gcd 0 5);
  Tutil.check_int "gcd 5 0" 5 (Euclid.gcd 5 0);
  Tutil.check_int "gcd 0 0" 0 (Euclid.gcd 0 0);
  Tutil.check_int "gcd (-12) 18" 6 (Euclid.gcd (-12) 18);
  Tutil.check_int "lcm 4 6" 12 (Euclid.lcm 4 6);
  Tutil.check_int "lcm 0 6" 0 (Euclid.lcm 0 6)

let test_egcd_paper_example () =
  (* Figure 5 trace with p = 4, k = 8, s = 9: EXTENDED-EUCLID(9, 32)
     returns d = 1 and x = -7 (9 * -7 + 32 * 2 = -63 + 64 = 1). *)
  let d, x, y = Euclid.egcd 9 32 in
  Tutil.check_int "d" 1 d;
  Tutil.check_int "bezout" 1 ((9 * x) + (32 * y));
  Tutil.check_int "x" (-7) x;
  Tutil.check_int "y" 2 y

let test_modular_inverse () =
  (match Euclid.modular_inverse 3 7 with
  | Some x -> Tutil.check_int "3 * inv mod 7" 1 (3 * x mod 7)
  | None -> Alcotest.fail "inverse of 3 mod 7 must exist");
  Alcotest.(check (option int)) "no inverse of 4 mod 8" None
    (Euclid.modular_inverse 4 8)

let prop_gcd =
  Tutil.qtest "gcd divides both and bezout holds"
    QCheck2.Gen.(tup2 (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let d, x, y = Euclid.egcd a b in
      let g = Euclid.gcd a b in
      d = g
      && (a * x) + (b * y) = d
      && (d = 0 || (a mod d = 0 && b mod d = 0)))

let prop_gcd_linearity =
  Tutil.qtest "gcd(a+b, b) = gcd(a, b)"
    QCheck2.Gen.(tup2 (int_range (-5000) 5000) (int_range (-5000) 5000))
    (fun (a, b) -> Euclid.gcd (a + b) b = Euclid.gcd a b)

let prop_euclid_steps_log =
  (* Textbook bound: the number of division steps is at most
     ~ log_phi(min(a,b)) + 2; we check a loose 3*log2 + 3 envelope. *)
  Tutil.qtest "euclid step count is logarithmic"
    QCheck2.Gen.(tup2 (int_range 1 1000000) (int_range 1 1000000))
    (fun (a, b) ->
      let steps = Euclid.steps a b in
      let bound =
        (3. *. (log (float_of_int (min a b)) /. log 2.)) +. 3.
      in
      float_of_int steps <= bound)

let prop_emod_ediv =
  Tutil.qtest "a = ediv*m + emod, 0 <= emod < |m|"
    QCheck2.Gen.(
      tup2 (int_range (-100000) 100000)
        (oneof [ int_range (-500) (-1); int_range 1 500 ]))
    (fun (a, m) ->
      let q = Modular.ediv a m and r = Modular.emod a m in
      a = (q * m) + r && r >= 0 && r < abs m)

let prop_floor_ceil =
  Tutil.qtest "floor_div <= exact <= ceil_div"
    QCheck2.Gen.(
      tup2 (int_range (-100000) 100000)
        (oneof [ int_range (-500) (-1); int_range 1 500 ]))
    (fun (a, b) ->
      let f = Modular.floor_div a b and c = Modular.ceil_div a b in
      let exact = float_of_int a /. float_of_int b in
      float_of_int f <= exact && exact <= float_of_int c && c - f <= 1)

let test_solve_known () =
  (* 9j ≡ i (mod 32): for i = 13 the smallest j is 5 (9*5 = 45 = 32+13). *)
  (match Diophantine.solve ~a:9 ~m:32 13 with
  | Some { Diophantine.x0; period } ->
      Tutil.check_int "x0" 5 x0;
      Tutil.check_int "period" 32 period
  | None -> Alcotest.fail "9j = 13 mod 32 must be solvable");
  (* 6j ≡ 3 (mod 9): gcd 3 divides 3, solutions j = 2 + 3t. *)
  (match Diophantine.solve ~a:6 ~m:9 3 with
  | Some { Diophantine.x0; period } ->
      Tutil.check_int "x0" 2 x0;
      Tutil.check_int "period" 3 period
  | None -> Alcotest.fail "6j = 3 mod 9 must be solvable");
  Alcotest.(check bool)
    "6j = 2 mod 9 unsolvable" true
    (Diophantine.solve ~a:6 ~m:9 2 = None)

let prop_solve =
  Tutil.qtest "solve returns the least non-negative solution"
    QCheck2.Gen.(
      tup3 (int_range (-200) 200) (int_range 1 300) (int_range (-400) 400))
    (fun (a, m, c) ->
      match Diophantine.solve ~a ~m c with
      | None ->
          (* No x in [0, m) satisfies the congruence. *)
          let ok = ref true in
          for x = 0 to m - 1 do
            if Modular.emod ((a * x) - c) m = 0 then ok := false
          done;
          !ok
      | Some { Diophantine.x0; period } ->
          Modular.emod ((a * x0) - c) m = 0
          && x0 >= 0
          && (x0 = 0
             || not (Modular.emod ((a * (x0 - period)) - c) m = 0 && x0 - period >= 0))
          && Modular.emod ((a * (x0 + period)) - c) m = 0)

let prop_solve_bounds =
  Tutil.qtest "smallest_at_least / largest_at_most bracket correctly"
    QCheck2.Gen.(
      tup4 (int_range 1 100) (int_range 1 200) (int_range (-300) 300)
        (int_range 0 500))
    (fun (a, m, c, bound) ->
      match Diophantine.solve ~a ~m c with
      | None -> true
      | Some sol ->
          let lo = Diophantine.smallest_at_least sol bound in
          lo >= bound
          && Modular.emod ((a * lo) - c) m = 0
          && (lo - sol.Diophantine.period < bound)
          &&
          match Diophantine.largest_at_most sol bound with
          | None -> sol.Diophantine.x0 > bound
          | Some hi ->
              hi <= bound && hi >= 0
              && Modular.emod ((a * hi) - c) m = 0
              && hi + sol.Diophantine.period > bound)

let test_count_multiples () =
  Tutil.check_int "multiples of 3 in [0,10)" 4
    (Diophantine.count_multiples ~d:3 ~lo:0 ~hi:10);
  Tutil.check_int "multiples of 3 in [1,10)" 3
    (Diophantine.count_multiples ~d:3 ~lo:1 ~hi:10);
  Tutil.check_int "multiples of 5 in [-7,3)" 2
    (Diophantine.count_multiples ~d:5 ~lo:(-7) ~hi:3);
  Tutil.check_int "empty interval" 0
    (Diophantine.count_multiples ~d:2 ~lo:5 ~hi:5);
  Tutil.check_int "reversed interval" 0
    (Diophantine.count_multiples ~d:2 ~lo:9 ~hi:3)

let prop_count_multiples =
  Tutil.qtest "count_multiples agrees with direct enumeration"
    QCheck2.Gen.(
      tup3 (int_range 1 40) (int_range (-200) 200) (int_range (-200) 200))
    (fun (d, a, b) ->
      let lo = min a b and hi = max a b in
      let direct = ref 0 in
      for x = lo to hi - 1 do
        if Modular.emod x d = 0 then incr direct
      done;
      Diophantine.count_multiples ~d ~lo ~hi = !direct)

let prop_solve_linear =
  Tutil.qtest "solve_linear solutions satisfy the equation"
    QCheck2.Gen.(
      tup3 (int_range (-100) 100) (int_range (-100) 100) (int_range (-500) 500))
    (fun (a, b, c) ->
      match Diophantine.solve_linear ~a ~b ~c with
      | Some (x, y) -> (a * x) + (b * y) = c
      | None ->
          let d = Euclid.gcd a b in
          (d = 0 && c <> 0) || (d <> 0 && c mod d <> 0))

let suite =
  [ Alcotest.test_case "emod/ediv basics" `Quick test_emod_ediv;
    Alcotest.test_case "floor/ceil division" `Quick test_floor_ceil_div;
    Alcotest.test_case "binary power" `Quick test_pow;
    Alcotest.test_case "gcd/lcm known values" `Quick test_gcd_known;
    Alcotest.test_case "egcd on the paper's example" `Quick
      test_egcd_paper_example;
    Alcotest.test_case "modular inverse" `Quick test_modular_inverse;
    Alcotest.test_case "congruence solver known values" `Quick
      test_solve_known;
    Alcotest.test_case "count_multiples known values" `Quick
      test_count_multiples;
    prop_gcd;
    prop_gcd_linearity;
    prop_euclid_steps_log;
    prop_emod_ediv;
    prop_floor_ceil;
    prop_solve;
    prop_solve_bounds;
    prop_count_multiples;
    prop_solve_linear ]
