open Lams_serve
module Problem = Lams_core.Problem
module Plan = Lams_codegen.Plan

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)
(* ------------------------------------------------------------------ *)

let gen_plan_req =
  QCheck2.Gen.(
    let* p = int_range 1 64 in
    let* k = int_range 1 64 in
    let* s = int_range 1 4096 in
    let* l = int_range 0 100_000 in
    let* span = int_range 0 1_000_000 in
    return { Wire.p; k; s; l; u = l + span })

let gen_sched_req =
  QCheck2.Gen.(
    let* src_p = int_range 1 32 in
    let* src_k = int_range 1 32 in
    let* src_lo = int_range 0 10_000 in
    let* src_hi = int_range 0 10_000 in
    let* src_stride = int_range 1 64 in
    let* dst_p = int_range 1 32 in
    let* dst_k = int_range 1 32 in
    let* dst_lo = int_range 0 10_000 in
    let* dst_hi = int_range 0 10_000 in
    let* dst_stride = int_range 1 64 in
    return
      {
        Wire.src_p;
        src_k;
        src_lo;
        src_hi;
        src_stride;
        dst_p;
        dst_k;
        dst_lo;
        dst_hi;
        dst_stride;
      })

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map (fun r -> Wire.Plan r) gen_plan_req;
        map (fun r -> Wire.Schedule r) gen_sched_req;
        map (fun r -> Wire.Redist r) gen_sched_req;
        return Wire.Stats;
      ])

let gen_proc_digest =
  QCheck2.Gen.(
    let* owned = bool in
    let* start_local = int_range (-1) 100_000 in
    let* last_local = int_range (-1) 100_000 in
    let* length = int_range 0 4096 in
    let* count = int_range 0 100_000 in
    let* h = int_range 0 max_int in
    return
      {
        Wire.owned;
        start_local;
        last_local;
        length;
        count;
        table_hash = Int64.of_int h;
      })

let gen_response =
  QCheck2.Gen.(
    let small_string = string_size ~gen:printable (int_range 0 40) in
    oneof
      [
        (let* plan_hit = bool in
         let* procs = array_size (int_range 0 8) gen_proc_digest in
         return (Wire.Plan_digest { plan_hit; procs }));
        (let* sched_hit = bool in
         let* rounds = int_range 0 64 in
         let* max_degree = int_range 0 64 in
         let* total = int_range 0 1_000_000 in
         let* cross = int_range 0 1_000_000 in
         let* locals = int_range 0 64 in
         let* h = int_range 0 max_int in
         return
           (Wire.Sched_digest
              {
                sched_hit;
                rounds;
                max_degree;
                total;
                cross;
                locals;
                shape_hash = Int64.of_int h;
              }));
        (let* redist_hit = bool in
         let* r_total = int_range 0 1_000_000 in
         let* r_cross = int_range 0 1_000_000 in
         let* pairs =
           array_size (int_range 0 12)
             (tup3 (int_range 0 31) (int_range 0 31) (int_range 1 10_000))
         in
         return (Wire.Redist_digest { redist_hit; r_total; r_cross; pairs }));
        (let* s_counters =
           list_size (int_range 0 6)
             (tup2 small_string (int_range 0 1_000_000))
         in
         let* s_dists =
           list_size (int_range 0 3)
             (tup2 small_string
                (let* d_count = int_range 0 10_000 in
                 let* d_min = float_bound_inclusive 100. in
                 let* d_mean = float_bound_inclusive 100. in
                 let* d_p95 = float_bound_inclusive 100. in
                 let* d_max = float_bound_inclusive 100. in
                 return { Wire.d_count; d_min; d_mean; d_p95; d_max }))
         in
         return (Wire.Stats_reply { s_counters; s_dists }));
        (let* code =
           oneofl
             [
               Wire.E_bad_magic;
               Wire.E_bad_version;
               Wire.E_bad_frame;
               Wire.E_bad_tag;
               Wire.E_invalid_request;
               Wire.E_internal;
             ]
         in
         let* msg = small_string in
         return (Wire.Error (code, msg)));
        return Wire.Overloaded;
      ])

let prop_request_roundtrip =
  Tutil.qtest "wire: request encode/decode roundtrip"
    QCheck2.Gen.(tup2 (int_range 0 1_000_000) gen_request)
    (fun (id, req) ->
      match Wire.decode_request (Wire.encode_request ~id req) with
      | Ok (id', req') -> id' = id && req' = req
      | Error _ -> false)

let prop_response_roundtrip =
  Tutil.qtest "wire: response encode/decode roundtrip"
    QCheck2.Gen.(tup2 (int_range 0 1_000_000) gen_response)
    (fun (id, resp) ->
      match Wire.decode_response (Wire.encode_response ~id resp) with
      | Ok (id', resp') -> id' = id && resp' = resp
      | Error _ -> false)

let prop_garbage_never_raises =
  Tutil.qtest "wire: decoding arbitrary bytes never raises"
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      let b = Bytes.of_string s in
      (match Wire.decode_request b with Ok _ | Error _ -> ());
      (match Wire.decode_response b with Ok _ | Error _ -> ());
      true)

let patch_u8 b pos v = Bytes.set_uint8 b pos v

let test_bad_frames () =
  let valid () = Wire.encode_request ~id:7 (Wire.Plan { p = 4; k = 8; s = 9; l = 4; u = 400 }) in
  (* Header shorter than the fixed 15 bytes. *)
  (match Wire.decode_request (Bytes.sub (valid ()) 0 9) with
  | Error Wire.Truncated -> ()
  | _ -> Alcotest.fail "short header must be Truncated");
  (* Body shorter than the tag demands. *)
  (match Wire.decode_request (Bytes.sub (valid ()) 0 20) with
  | Error (Wire.Truncated | Wire.Bad_payload _) -> ()
  | _ -> Alcotest.fail "short body must be a typed error");
  (* Corrupt magic. *)
  let b = valid () in
  patch_u8 b 0 0xde;
  (match Wire.decode_request b with
  | Error (Wire.Bad_magic _) -> ()
  | _ -> Alcotest.fail "corrupt magic must be Bad_magic");
  (* Wrong version. *)
  let b = valid () in
  patch_u8 b 5 (Wire.version + 9);
  (match Wire.decode_request b with
  | Error (Wire.Bad_version v) ->
      Tutil.check_int "version echoed" (Wire.version + 9) v
  | _ -> Alcotest.fail "wrong version must be Bad_version");
  (* Unknown tag. *)
  let b = valid () in
  patch_u8 b 6 0xee;
  (match Wire.decode_request b with
  | Error (Wire.Bad_tag 0xee) -> ()
  | _ -> Alcotest.fail "unknown tag must be Bad_tag");
  (* Every frame error maps to a typed error code. *)
  List.iter
    (fun fe -> ignore (Wire.error_of_frame_error fe : Wire.error_code * string))
    [
      Wire.Truncated;
      Wire.Oversized 99;
      Wire.Bad_magic 1;
      Wire.Bad_version 2;
      Wire.Bad_tag 3;
      Wire.Bad_payload "x";
    ]

let test_read_frame_limits () =
  let with_pipe f =
    let r, w = Unix.pipe () in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        try Unix.close w with Unix.Unix_error _ -> ())
      (fun () -> f r w)
  in
  (* A declared length beyond max_frame is rejected unread. *)
  with_pipe (fun r w ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.max_frame + 1));
      ignore (Unix.write w hdr 0 4);
      match Wire.read_frame r with
      | `Error (Wire.Oversized n) ->
          Tutil.check_int "oversized length echoed" (Wire.max_frame + 1) n
      | _ -> Alcotest.fail "oversized frame must be rejected");
  (* EOF mid-frame is Truncated, not a clean Eof. *)
  with_pipe (fun r w ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 10l;
      ignore (Unix.write w hdr 0 4);
      ignore (Unix.write w (Bytes.make 3 'x') 0 3);
      Unix.close w;
      match Wire.read_frame r with
      | `Error Wire.Truncated -> ()
      | _ -> Alcotest.fail "EOF mid-frame must be Truncated");
  (* EOF at a frame boundary is clean. *)
  with_pipe (fun r w ->
      Unix.close w;
      match Wire.read_frame r with
      | `Eof -> ()
      | _ -> Alcotest.fail "EOF at boundary must be Eof")

(* ------------------------------------------------------------------ *)
(* Batching helper                                                     *)
(* ------------------------------------------------------------------ *)

let prop_group_by =
  Tutil.qtest "server: group_by partitions and preserves order"
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 5))
    (fun xs ->
      let groups = Server.group_by (fun x -> x mod 3) xs in
      (* Concatenating the groups is a permutation of the input... *)
      List.sort compare (List.concat_map snd groups) = List.sort compare xs
      (* ...each group is key-homogeneous and non-empty... *)
      && List.for_all
           (fun (key, members) ->
             members <> [] && List.for_all (fun x -> x mod 3 = key) members)
           groups
      (* ...and group keys appear in first-seen order. *)
      && List.map fst groups
         = List.fold_left
             (fun seen x ->
               let key = x mod 3 in
               if List.mem key seen then seen else seen @ [ key ])
             [] xs)

(* ------------------------------------------------------------------ *)
(* Sharded LRU                                                         *)
(* ------------------------------------------------------------------ *)

module Int_lru = Lams_util.Sharded_lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = Hashtbl.hash x
end)

let lru_invariants t ~lookups =
  Tutil.check_int "hits + misses = lookups" lookups
    (Int_lru.hits t + Int_lru.misses t);
  Tutil.check_int "insertions - evictions - removals = size"
    (Int_lru.size t)
    (Int_lru.insertions t - Int_lru.evictions t - Int_lru.removals t);
  Tutil.check_bool "size within capacity slack" true
    (Int_lru.size t <= Int_lru.capacity t + Int_lru.shards t)

let test_lru_accounting () =
  let t = Int_lru.create ~shards:2 ~capacity:4 () in
  let build k = k * 10 in
  (* 10 distinct keys through a 4-entry cache: all misses, evictions. *)
  for key = 0 to 9 do
    let v, hit = Int_lru.find_or_build t key ~build in
    Tutil.check_int "built value" (key * 10) v;
    Tutil.check_bool "cold lookup is a miss" false hit
  done;
  lru_invariants t ~lookups:10;
  Tutil.check_bool "eviction happened" true (Int_lru.evictions t > 0);
  (* Re-touch whatever survived: every lookup counted, hit or miss. *)
  let live = ref [] in
  Int_lru.iter_keys t (fun key -> live := key :: !live);
  List.iter
    (fun key ->
      let _, hit = Int_lru.find_or_build t key ~build in
      Tutil.check_bool "live key hits" true hit)
    !live;
  lru_invariants t ~lookups:(10 + List.length !live);
  (* remove is counted under removals, not evictions. *)
  (match !live with
  | key :: _ ->
      let ev = Int_lru.evictions t in
      Int_lru.remove t key;
      Tutil.check_int "removals" 1 (Int_lru.removals t);
      Tutil.check_int "evictions unchanged" ev (Int_lru.evictions t);
      Tutil.check_bool "removed key gone" true
        (Int_lru.find_opt t key = None)
  | [] -> Alcotest.fail "cache unexpectedly empty");
  Int_lru.clear t;
  Tutil.check_int "clear empties" 0 (Int_lru.size t);
  Tutil.check_int "clear resets accounting" 0
    (Int_lru.hits t + Int_lru.misses t)

let test_lru_zero_capacity () =
  let t = Int_lru.create ~capacity:0 () in
  for key = 0 to 5 do
    let v, hit = Int_lru.find_or_build t key ~build:(fun k -> k + 1) in
    Tutil.check_int "still built" (key + 1) v;
    Tutil.check_bool "never cached" false hit
  done;
  Tutil.check_int "size stays 0" 0 (Int_lru.size t);
  Tutil.check_int "no insertions" 0 (Int_lru.insertions t)

(* The hammer: several domains pound one Plan_store over a mixed
   hot/cold key population small enough to force evictions, then the
   accounting must balance exactly and the served plans must match the
   uncached per-processor oracle bit for bit. *)
let test_store_hammer () =
  let domains = 4 and per_domain = 1500 and population = 48 in
  let store = Store.Plan_store.create ~shards:8 ~capacity:24 () in
  let req_of_rank r =
    let p = 1 + (r mod 7) in
    let k = 1 + (r mod 9) in
    let s = 1 + (r mod 31) in
    let l = 3 * r in
    { Wire.p; k; s; l; u = l + (s * (10 + (r mod 50))) }
  in
  let errors = Atomic.make 0 in
  let work seed () =
    for i = 0 to per_domain - 1 do
      let r = ((i * 17) + (seed * 5)) mod population in
      match Store.Plan_store.key_of_req (req_of_rank r) with
      | Error _ -> Atomic.incr errors
      | Ok (key, _, _) ->
          let v, _hit = Store.Plan_store.find_key store key in
          ignore (Store.Plan_store.digest v ~local_shift:0 ~hit:true)
    done
  in
  let ds = Array.init domains (fun d -> Domain.spawn (work d)) in
  Array.iter Domain.join ds;
  Tutil.check_int "no invalid keys" 0 (Atomic.get errors);
  let st = Store.Plan_store.stats store in
  Tutil.check_int "hits + misses = lookups" (domains * per_domain)
    (st.hits + st.misses);
  Tutil.check_int "insertions - evictions - removals = size" st.size
    (st.insertions - st.evictions - st.removals);
  Tutil.check_bool "evictions under pressure" true (st.evictions > 0);
  (* Oracle check on a sample of the population, through the public
     find (canonicalize + rebase), against the seed-path build. *)
  List.iter
    (fun r ->
      let { Wire.p; k; s; l; u } = req_of_rank r in
      let pr = Problem.make ~p ~k ~l ~s in
      let view, _hit = Store.Plan_store.find store pr ~u in
      for m = 0 to p - 1 do
        let table = Lams_core.Plan_cache.table view ~m in
        match Plan.build_uncached pr ~m ~u with
        | None ->
            Tutil.check_bool "oracle: unowned" true (table.start_local = None)
        | Some oracle ->
            Tutil.check_int "oracle: start_local" oracle.Plan.start_local
              (Option.get table.start_local);
            Tutil.check_int "oracle: period" oracle.Plan.length table.length
      done)
    [ 0; 7; 13; 29; 41 ]

(* ------------------------------------------------------------------ *)
(* Digest rebase                                                       *)
(* ------------------------------------------------------------------ *)

let test_digest_rebase () =
  let p = 4 and k = 8 and s = 9 and l = 4 in
  let pr = Problem.make ~p ~k ~l ~s in
  let span = Problem.cycle_span pr in
  let u = l + (s * 100) in
  let shifted =
    { Wire.p; k; s; l = l + (3 * span); u = u + (3 * span) }
  in
  let key0, _, shift0 = Result.get_ok (Store.Plan_store.key_of_req { p; k; s; l; u }) in
  let key1, _, shift1 = Result.get_ok (Store.Plan_store.key_of_req shifted) in
  Tutil.check_bool "translated sections share one canonical key" true
    (key0 = key1);
  let store = Store.Plan_store.create ~capacity:8 () in
  let v, hit0 = Store.Plan_store.find_key store key0 in
  Tutil.check_bool "first lookup misses" false hit0;
  let d0 = Store.Plan_store.digest v ~local_shift:shift0 ~hit:false in
  let d1 = Store.Plan_store.digest v ~local_shift:shift1 ~hit:true in
  Tutil.check_bool "hit flag carried" true
    ((not d0.Wire.plan_hit) && d1.Wire.plan_hit);
  let delta = shift1 - shift0 in
  Tutil.check_bool "some processor owns elements" true
    (Array.exists (fun pd -> pd.Wire.owned) d0.Wire.procs);
  Array.iteri
    (fun m (pd0 : Wire.proc_digest) ->
      let pd1 = d1.Wire.procs.(m) in
      Tutil.check_bool "table_hash is shift-invariant" true
        (Int64.equal pd0.table_hash pd1.table_hash);
      Tutil.check_int "count is shift-invariant" pd0.count pd1.count;
      if pd0.owned then begin
        Tutil.check_int "start_local rebased" (pd0.start_local + delta)
          pd1.start_local;
        Tutil.check_int "last_local rebased" (pd0.last_local + delta)
          pd1.last_local
      end)
    d0.Wire.procs

(* ------------------------------------------------------------------ *)
(* Zipf sampler                                                        *)
(* ------------------------------------------------------------------ *)

let test_zipf () =
  let z = Zipf.create ~n:1000 ~theta:1.2 in
  Tutil.check_bool "mass 0 = 0" true (Zipf.mass z 0 = 0.);
  Tutil.check_bool "mass n = 1" true (abs_float (Zipf.mass z 1000 -. 1.) < 1e-9);
  let prev = ref 0. in
  for r = 1 to 1000 do
    let m = Zipf.mass z r in
    Tutil.check_bool "mass monotone" true (m >= !prev);
    prev := m
  done;
  let rng = Lams_util.Prng.create 42L in
  let top = ref 0 in
  let draws = 5000 in
  for _ = 1 to draws do
    let r = Zipf.sample z rng in
    Tutil.check_bool "sample in range" true (r >= 0 && r < 1000);
    if r < 10 then incr top
  done;
  (* theta = 1.2: the 10 hottest keys carry well over a third of the
     mass; a uniform sampler would put 1% there. *)
  Tutil.check_bool "skew concentrates on hot ranks" true
    (float_of_int !top /. float_of_int draws > 0.3);
  Alcotest.check_raises "n must be positive"
    (Invalid_argument "Zipf.create: n must be positive") (fun () ->
      ignore (Zipf.create ~n:0 ~theta:1.))

(* ------------------------------------------------------------------ *)
(* Plan log                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "lams_serve_test" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let plan_key ~p ~k ~s ~l ~u =
  let pr = Problem.make ~p ~k ~l ~s in
  let key, _, _ = Store.Plan_store.canonical_key pr ~u in
  key

let test_plan_log_roundtrip () =
  with_temp_file (fun path ->
      Sys.remove path;
      (* A missing file warms nothing and is not an error. *)
      let plans = Store.Plan_store.create ~capacity:64 () in
      let scheds = Store.Sched_store.create ~capacity:64 () in
      Tutil.check_int "missing log replays 0" 0
        (Plan_log.replay path ~plans ~scheds);
      let log = Plan_log.open_log path in
      let keys =
        [
          plan_key ~p:4 ~k:8 ~s:9 ~l:4 ~u:400;
          plan_key ~p:2 ~k:3 ~s:5 ~l:0 ~u:200;
          plan_key ~p:8 ~k:4 ~s:7 ~l:11 ~u:900;
        ]
      in
      List.iter (Plan_log.append_plan log) keys;
      let sched_key, _, _ =
        Result.get_ok
          (Store.Sched_store.key_of_req
             {
               Wire.src_p = 4;
               src_k = 3;
               src_lo = 0;
               src_hi = 59;
               src_stride = 1;
               dst_p = 4;
               dst_k = 5;
               dst_lo = 0;
               dst_hi = 59;
               dst_stride = 1;
             })
      in
      Plan_log.append_sched log sched_key;
      Tutil.check_int "appended counts both kinds" 4 (Plan_log.appended log);
      Plan_log.close log;
      (* Garbage and a torn tail must be skipped, not fatal. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "not a log line\nP 3 bogus\nP 1 1 1 0";
      close_out oc;
      let warmed = Plan_log.replay path ~plans ~scheds in
      Tutil.check_int "replay warms exactly the valid entries" 4 warmed;
      List.iter
        (fun key ->
          let _, hit = Store.Plan_store.find_key plans key in
          Tutil.check_bool "replayed plan key hits" true hit)
        keys;
      let _, hit = Store.Sched_store.find_key scheds sched_key in
      Tutil.check_bool "replayed sched key hits" true hit)

let test_plan_log_rotate () =
  with_temp_file (fun path ->
      let plans = Store.Plan_store.create ~capacity:64 () in
      let scheds = Store.Sched_store.create ~capacity:64 () in
      let log = Plan_log.open_log path in
      (* Log the same canonical key repeatedly: rotation compacts to the
         one live store entry. *)
      let key = plan_key ~p:4 ~k:8 ~s:9 ~l:4 ~u:400 in
      ignore (Store.Plan_store.find_key plans key);
      for _ = 1 to 10 do
        Plan_log.append_plan log key
      done;
      Plan_log.flush log;
      Plan_log.rotate log ~plans ~scheds;
      Tutil.check_int "rotation resets the append counter" 0
        (Plan_log.appended log);
      Plan_log.close log;
      let plans' = Store.Plan_store.create ~capacity:64 () in
      let scheds' = Store.Sched_store.create ~capacity:64 () in
      Tutil.check_int "compacted log holds one key" 1
        (Plan_log.replay path ~plans:plans' ~scheds:scheds');
      let _, hit = Store.Plan_store.find_key plans' key in
      Tutil.check_bool "compacted key still replays" true hit)

(* ------------------------------------------------------------------ *)
(* End-to-end over a Unix socket                                       *)
(* ------------------------------------------------------------------ *)

let temp_sock () =
  let path = Filename.temp_file "lams_serve" ".sock" in
  Sys.remove path;
  path

let with_server ?(cfg = Server.default_config) f =
  let path = temp_sock () in
  let t = Server.start cfg (`Unix path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f t (`Unix path))

let small_cfg =
  {
    Server.default_config with
    shards = 4;
    plan_capacity = 64;
    sched_capacity = 64;
    workers = 2;
  }

let sched_req_60 =
  {
    Wire.src_p = 4;
    src_k = 3;
    src_lo = 0;
    src_hi = 59;
    src_stride = 1;
    dst_p = 4;
    dst_k = 5;
    dst_lo = 0;
    dst_hi = 59;
    dst_stride = 1;
  }

let test_server_e2e () =
  with_server ~cfg:small_cfg (fun t addr ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let preq = { Wire.p = 4; k = 8; s = 9; l = 4; u = 400 } in
          (match Client.plan c preq with
          | Wire.Plan_digest d ->
              Tutil.check_bool "cold plan misses" false d.plan_hit;
              Tutil.check_int "one digest per processor" 4
                (Array.length d.procs)
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
          (match Client.plan c preq with
          | Wire.Plan_digest d ->
              Tutil.check_bool "warm plan hits" true d.plan_hit
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
          (* A translated section must hit the same entry. *)
          let pr = Problem.make ~p:4 ~k:8 ~l:4 ~s:9 in
          let span = Problem.cycle_span pr in
          (match
             Client.plan c
               { preq with l = preq.l + span; u = preq.u + span }
           with
          | Wire.Plan_digest d ->
              Tutil.check_bool "translated section hits" true d.plan_hit
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
          (match Client.schedule c sched_req_60 with
          | Wire.Sched_digest d ->
              Tutil.check_bool "cold schedule misses" false d.sched_hit;
              Tutil.check_int "total elements" 60 d.total;
              Tutil.check_bool "coloring meets the Konig bound" true
                (d.rounds <= d.max_degree)
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
          (* Redist shares the schedule store: same key, now a hit. *)
          (match Client.redist c sched_req_60 with
          | Wire.Redist_digest d ->
              Tutil.check_bool "redist reuses the sched entry" true
                d.redist_hit;
              Tutil.check_int "redist total" 60 d.r_total;
              Tutil.check_int "pair counts sum to total" 60
                (Array.fold_left (fun a (_, _, e) -> a + e) 0 d.pairs)
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
          (* Invalid argument: typed error, connection stays up. *)
          (match Client.plan c { preq with u = preq.l - 1 } with
          | Wire.Error (Wire.E_invalid_request, _) -> ()
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
          (match Client.stats c with
          | Wire.Stats_reply { s_counters; s_dists } ->
              let counter name = List.assoc name s_counters in
              Tutil.check_bool "requests counted" true
                (counter "serve.requests" >= 6);
              Tutil.check_bool "hits counted" true (counter "serve.hits" >= 2);
              Tutil.check_bool "latency summary present" true
                (List.mem_assoc "serve.latency_us" s_dists)
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r)));
      let ctr = Server.counters t in
      Tutil.check_bool "connection counted" true (ctr.connections >= 1);
      Tutil.check_int "no protocol errors" 0 ctr.protocol_errors)

let test_server_protocol_error () =
  with_server ~cfg:small_cfg (fun t addr ->
      let c = Client.connect addr in
      (* Garbage payload: one typed Error back, then the daemon closes
         this connection (the stream cannot be resynchronised). *)
      Client.send_payload c (Bytes.of_string "definitely not a frame");
      (match Client.receive c with
      | `Response (_, Wire.Error (code, _)) ->
          Tutil.check_bool "typed protocol error" true
            (code = Wire.E_bad_magic || code = Wire.E_bad_frame)
      | _ -> Alcotest.fail "expected a typed Error response");
      (match Client.receive c with
      | `Eof -> ()
      | _ -> Alcotest.fail "daemon must close after a framing error");
      Client.close c;
      (* The daemon itself survives: a fresh connection is served. *)
      let c2 = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c2) (fun () ->
          match Client.plan c2 { Wire.p = 2; k = 2; s = 3; l = 0; u = 60 } with
          | Wire.Plan_digest _ -> ()
          | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
      let ctr = Server.counters t in
      Tutil.check_bool "protocol error counted" true (ctr.protocol_errors >= 1))

let test_server_shedding () =
  with_server ~cfg:{ small_cfg with high_water = 0 } (fun t addr ->
      let c = Client.connect addr in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          for _ = 1 to 5 do
            match Client.plan c { Wire.p = 2; k = 2; s = 3; l = 0; u = 60 } with
            | Wire.Overloaded -> ()
            | r -> Alcotest.fail (Format.asprintf "%a" Wire.pp_response r)
          done);
      let ctr = Server.counters t in
      Tutil.check_int "every request shed" 5 ctr.shed;
      Tutil.check_int "nothing served" 0 ctr.hits)

let test_server_warm_restart () =
  with_temp_file (fun log_path ->
      let cfg = { small_cfg with log_path = Some log_path } in
      let path = temp_sock () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let preq = { Wire.p = 4; k = 8; s = 9; l = 4; u = 400 } in
          (* First incarnation: serve a plan and a schedule, then stop —
             which must flush the log. *)
          let t1 = Server.start cfg (`Unix path) in
          let c = Client.connect (`Unix path) in
          ignore (Client.plan c preq);
          ignore (Client.schedule c sched_req_60);
          Client.close c;
          Server.stop t1;
          (* Second incarnation on the same log: both keys replay and
             the very first query is already a hit. *)
          let t2 = Server.start cfg (`Unix path) in
          Fun.protect
            ~finally:(fun () -> Server.stop t2)
            (fun () ->
              Tutil.check_int "both keys replayed" 2
                (Server.counters t2).replayed;
              let c2 = Client.connect (`Unix path) in
              Fun.protect ~finally:(fun () -> Client.close c2) (fun () ->
                  (match Client.plan c2 preq with
                  | Wire.Plan_digest d ->
                      Tutil.check_bool "warm restart serves a hit" true
                        d.plan_hit
                  | r ->
                      Alcotest.fail (Format.asprintf "%a" Wire.pp_response r));
                  match Client.schedule c2 sched_req_60 with
                  | Wire.Sched_digest d ->
                      Tutil.check_bool "warm restart hits schedules too" true
                        d.sched_hit
                  | r ->
                      Alcotest.fail (Format.asprintf "%a" Wire.pp_response r)))))

let suite =
  [
    prop_request_roundtrip;
    prop_response_roundtrip;
    prop_garbage_never_raises;
    ("wire bad frames", `Quick, test_bad_frames);
    ("wire read_frame limits", `Quick, test_read_frame_limits);
    prop_group_by;
    ("sharded LRU accounting", `Quick, test_lru_accounting);
    ("sharded LRU zero capacity", `Quick, test_lru_zero_capacity);
    ("plan store hammer", `Slow, test_store_hammer);
    ("digest rebase", `Quick, test_digest_rebase);
    ("zipf sampler", `Quick, test_zipf);
    ("plan log roundtrip", `Quick, test_plan_log_roundtrip);
    ("plan log rotation", `Quick, test_plan_log_rotate);
    ("server end-to-end", `Quick, test_server_e2e);
    ("server protocol error", `Quick, test_server_protocol_error);
    ("server load shedding", `Quick, test_server_shedding);
    ("server warm restart", `Quick, test_server_warm_restart);
  ]
