(* The differential fuzzing harness (lib/check) and the boundary
   invariants it pins: the corner-biased oracle matrix stays clean, the
   d < k invariant holds in both directions, plan-cache accounting is
   exact under capacity churn, and the domain pool surfaces injected
   faults deterministically. *)

open Lams_core
open Lams_check

let check_int = Tutil.check_int
let check_bool = Tutil.check_bool

(* --- The differential matrix on corner-biased cases --------------- *)

(* Drive Check's own corner-biased generator from a QCheck-chosen seed:
   every generated case must sail through the full oracle matrix. The
   sim checks are exercised by the dedicated run test below; skipping
   them here keeps 200 QCheck cases fast. *)
let gen_corner_case =
  QCheck2.Gen.(
    let* seed = int_range 0 1_000_000 in
    let rng = Lams_util.Prng.create (Int64.of_int seed) in
    return (Check.gen_case rng ~max_p:10 ~max_k:32 ~max_s:2048))

let print_case (c : Check.case) = Format.asprintf "%a" Check.pp_case c

let corner_matrix_agrees =
  Tutil.qtest "corner-biased case: oracle matrix agrees" gen_corner_case
    ~print:print_case (fun case ->
      match Check.check_case case with
      | None -> true
      | Some mm ->
          QCheck2.Test.fail_reportf "%a" Check.pp_mismatch mm)

(* A deterministic mini-campaign through the public entry point,
   including sim checks and fault rounds. *)
let run_campaign_clean () =
  let cfg = { Check.default_config with budget = 150 } in
  let report = Check.run cfg in
  check_int "cases" 150 report.Check.cases;
  check_int "fault rounds" 3 report.Check.fault_rounds;
  (match report.Check.failure with
  | None -> ()
  | Some (mm, _) ->
      Alcotest.failf "campaign found %a" Check.pp_mismatch mm);
  (* Same seed, same campaign: determinism is what makes a repro line
     worth printing. *)
  let again = Check.run cfg in
  check_int "deterministic cases" report.Check.cases again.Check.cases;
  check_bool "deterministic verdict" true (again.Check.failure = None)

let repro_line_format () =
  let mm =
    { Check.case = { p = 2; k = 3; l = 5; s = 7; u = 19 };
      m = 1;
      oracle = "brute";
      candidate = "kns";
      detail = "" }
  in
  Alcotest.(check string)
    "repro" "lams explain -p 2 -k 3 -l 5 -s 7 -m 1 -n 20"
    (Check.repro_line mm);
  (* Machine-wide mismatches (m = -1) clamp the processor argument. *)
  Alcotest.(check string)
    "machine-wide repro" "lams explain -p 2 -k 3 -l 5 -s 7 -m 0 -n 20"
    (Check.repro_line { mm with m = -1 })

(* A machine-wide mismatch that does not reproduce through check_case
   must come back unshrunk rather than loop or morph. *)
let shrink_irreproducible_unshrunk () =
  let mm =
    { Check.case = { p = 2; k = 2; l = 0; s = 1; u = 7 };
      m = -1;
      oracle = "injected fault";
      candidate = "spmd.pool";
      detail = "synthetic" }
  in
  let sh = Check.shrink mm in
  check_int "steps" 0 sh.Check.steps;
  check_bool "unchanged" true (sh.Check.minimal = mm)

(* --- Satellite 1: short-section whole-machine plans --------------- *)

(* p=2 k=2 s=3: pk=4, d=1, cycle span 12. l=13 starts beyond one span,
   so the cache canonicalizes to l0=1 with g_shift=12; with u=13 the
   section is the singleton {13}, owned by processor 0 — processor 1
   owns nothing. This is the corner where a view rebase must shift a
   singleton last location and leave an absent one absent. *)
let short_section_rebase () =
  let pr = Problem.make ~p:2 ~k:2 ~l:13 ~s:3 in
  Plan_cache.clear ();
  let view = Plan_cache.find pr ~u:13 in
  check_int "g_shift" 12 (Plan_cache.g_shift view);
  for m = 0 to 1 do
    check_bool
      (Printf.sprintf "table m=%d" m)
      true
      (Access_table.equal (Plan_cache.table view ~m) (Brute.gap_table pr ~m))
  done;
  (match Plan_cache.last_location view ~m:0 with
  | Some 13 -> ()
  | other ->
      Alcotest.failf "proc 0 last: expected Some 13, got %s"
        (match other with None -> "None" | Some g -> string_of_int g));
  check_bool "proc 1 last" true (Plan_cache.last_location view ~m:1 = None);
  (* Cached and uncached whole-machine plans must be indistinguishable,
     including the owns-nothing processor. *)
  for m = 0 to 1 do
    let u = Lams_codegen.Plan.build_uncached pr ~m ~u:13 in
    let c = Lams_codegen.Plan.build pr ~m ~u:13 in
    match (u, c) with
    | None, None -> check_int "owns nothing" 1 m
    | Some a, Some b ->
        check_int "owner" 0 m;
        check_int "start_local" a.Lams_codegen.Plan.start_local
          b.Lams_codegen.Plan.start_local;
        check_int "last_local" a.Lams_codegen.Plan.last_local
          b.Lams_codegen.Plan.last_local;
        check_int "length" a.Lams_codegen.Plan.length
          b.Lams_codegen.Plan.length;
        List.iter
          (fun shape ->
            Tutil.check_int_array
              (Lams_codegen.Shapes.name shape)
              (Lams_codegen.Shapes.addresses shape a)
              (Lams_codegen.Shapes.addresses shape b))
          Lams_codegen.Shapes.all
    | _ -> Alcotest.failf "cached/uncached disagree on presence for m=%d" m
  done

(* --- Satellite 2: the d < k invariant, both directions ------------ *)

let d_lt_k_invariant =
  Tutil.qtest "d < k iff basis exists iff every window is non-empty"
    Tutil.gen_problem ~print:Tutil.print_problem (fun ((p, k, _, s) as q) ->
      let pr = Tutil.problem_of q in
      let d = Lams_numeric.Euclid.gcd s (p * k) in
      let lengths =
        List.init p (fun m -> (Start_finder.find pr ~m).Start_finder.length)
      in
      if d < k then
        Kns.basis pr <> None && List.for_all (fun n -> n >= 1) lengths
      else
        (* Degenerate regime: at most one reachable offset per window,
           and no basis is ever constructed. *)
        Kns.basis pr = None && List.for_all (fun n -> n <= 1) lengths)

(* The replacements for the old `assert false` arms: a hand-built FSM
   with an unreachable start must raise Invalid_argument from walk, not
   crash with Assert_failure. *)
let fsm_walk_unreachable () =
  let t =
    { Fsm.start_offset = 0;
      delta = [| Fsm.unreachable_delta |];
      next_offset = [| -1 |];
      length = 0 }
  in
  match Fsm.walk t ~steps:1 with
  | exception Invalid_argument _ -> ()
  | exception e ->
      Alcotest.failf "expected Invalid_argument, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Invalid_argument, got a gap sequence"

(* --- Satellite 3: plan-cache accounting --------------------------- *)

let with_obs f =
  Lams_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Lams_obs.Obs.set_enabled false) f

let evictions () =
  match Lams_obs.Obs.find_counter (Lams_obs.Obs.snapshot ())
          "plan_cache.evictions"
  with
  | Some n -> n
  | None -> Alcotest.fail "plan_cache.evictions not registered"

let distinct_problems n =
  List.init n (fun i -> Problem.make ~p:2 ~k:3 ~l:0 ~s:(5 + (2 * i)))

let set_capacity_evicts () =
  let saved = Plan_cache.capacity () in
  Fun.protect ~finally:(fun () -> Plan_cache.set_capacity saved) @@ fun () ->
  with_obs @@ fun () ->
  Plan_cache.set_capacity 8;
  Plan_cache.clear ();
  List.iter
    (fun pr -> ignore (Plan_cache.find pr ~u:100 : Plan_cache.view))
    (distinct_problems 5);
  check_int "populated" 5 (Plan_cache.size ());
  let before = evictions () in
  (* Shrinking the capacity below the population must evict immediately
     (not lazily on the next insert) and account for every entry. *)
  Plan_cache.set_capacity 2;
  check_int "evicted down to capacity" 2 (Plan_cache.size ());
  check_int "evictions counted" (before + 3) (evictions ());
  (* Growing the capacity evicts nothing. *)
  Plan_cache.set_capacity 8;
  check_int "grow is free" 2 (Plan_cache.size ());
  check_int "grow evicts nothing" (before + 3) (evictions ())

let clear_resets_lru_clock () =
  let saved = Plan_cache.capacity () in
  Fun.protect ~finally:(fun () -> Plan_cache.set_capacity saved) @@ fun () ->
  Plan_cache.set_capacity 8;
  List.iter
    (fun pr -> ignore (Plan_cache.find pr ~u:100 : Plan_cache.view))
    (distinct_problems 3);
  check_bool "clock advanced" true (Plan_cache.lru_tick () > 0);
  Plan_cache.clear ();
  check_int "empty" 0 (Plan_cache.size ());
  check_int "clock reset" 0 (Plan_cache.lru_tick ());
  (* Re-populating after a clear starts a fresh history: the first
     re-insert observes tick 1, not a continuation of the old clock. *)
  ignore (Plan_cache.find (List.hd (distinct_problems 1)) ~u:100
           : Plan_cache.view);
  check_int "fresh history" 1 (Plan_cache.lru_tick ())

(* --- Spmd: deterministic fault surfacing -------------------------- *)

let pool_lowest_rank_wins () =
  let failing = [ 3; 7; 11 ] in
  match
    Lams_sim.Spmd.run_parallel ~domains:4 ~p:16 (fun m ->
        if List.mem m failing then failwith (Printf.sprintf "fault %d" m))
  with
  | () -> Alcotest.fail "expected a Failure to surface"
  | exception Failure msg -> Alcotest.(check string) "lowest rank" "fault 3" msg
  | exception e ->
      Alcotest.failf "expected Failure, got %s" (Printexc.to_string e)

let pool_survives_fault () =
  (try
     Lams_sim.Spmd.run_parallel ~domains:4 ~p:8 (fun m ->
         if m = 2 then failwith "boom")
   with Failure _ -> ());
  let hits = Array.make 24 0 in
  Lams_sim.Spmd.run_parallel ~domains:4 ~p:24 (fun m ->
      hits.(m) <- hits.(m) + 1);
  Array.iteri
    (fun m h -> check_int (Printf.sprintf "rank %d runs once" m) 1 h)
    hits

(* --- Observability ------------------------------------------------ *)

let counters_flow () =
  with_obs @@ fun () ->
  let snap name = Lams_obs.Obs.find_counter (Lams_obs.Obs.snapshot ()) name in
  let cases0 = Option.value ~default:0 (snap "check.cases") in
  (match Check.check_case { p = 3; k = 4; l = 2; s = 5; u = 40 } with
  | None -> ()
  | Some mm -> Alcotest.failf "clean case failed: %a" Check.pp_mismatch mm);
  check_int "check.cases incremented" (cases0 + 1)
    (Option.value ~default:0 (snap "check.cases"));
  check_int "no mismatches" 0
    (Option.value ~default:(-1) (snap "check.mismatches"))

let suite =
  [ corner_matrix_agrees;
    Alcotest.test_case "run: clean deterministic campaign" `Quick
      run_campaign_clean;
    Alcotest.test_case "repro line format" `Quick repro_line_format;
    Alcotest.test_case "shrink: irreproducible stays unshrunk" `Quick
      shrink_irreproducible_unshrunk;
    Alcotest.test_case "short section: cache view rebases None/singleton \
                        lasts"
      `Quick short_section_rebase;
    d_lt_k_invariant;
    Alcotest.test_case "Fsm.walk: unreachable start raises Invalid_argument"
      `Quick fsm_walk_unreachable;
    Alcotest.test_case "Plan_cache.set_capacity evicts immediately" `Quick
      set_capacity_evicts;
    Alcotest.test_case "Plan_cache.clear resets the LRU clock" `Quick
      clear_resets_lru_clock;
    Alcotest.test_case "Spmd pool: lowest failing rank wins" `Quick
      pool_lowest_rank_wins;
    Alcotest.test_case "Spmd pool: reusable after a fault" `Quick
      pool_survives_fault;
    Alcotest.test_case "check.* counters flow" `Quick counters_flow ]
