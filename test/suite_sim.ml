open Lams_dist
open Lams_sim

let test_local_store () =
  let s = Local_store.create 8 in
  Tutil.check_int "extent" 8 (Local_store.extent s);
  Local_store.set s 3 42.;
  Alcotest.(check (float 0.)) "get" 42. (Local_store.get s 3);
  Tutil.check_int "reads" 1 (Local_store.reads s);
  Tutil.check_int "writes" 1 (Local_store.writes s);
  Local_store.reset_counters s;
  Tutil.check_int "reset" 0 (Local_store.reads s);
  Alcotest.check_raises "oob get" (Invalid_argument "Local_store.get: out of bounds")
    (fun () -> ignore (Local_store.get s 8));
  Alcotest.check_raises "oob set" (Invalid_argument "Local_store.set: out of bounds")
    (fun () -> Local_store.set s (-1) 0.)

let test_network () =
  let net = Network.create ~p:3 in
  Network.send net ~src:0 ~dst:2 ~tag:7 ~addresses:[| 1; 2 |] ~payload:(Lams_util.Fbuf.of_array [| 1.5; 2.5 |]);
  Network.send net ~src:1 ~dst:2 ~tag:8 ~addresses:[| 0 |] ~payload:(Lams_util.Fbuf.of_array [| 9. |]);
  Tutil.check_int "pending" 2 (Network.pending net ~dst:2);
  Tutil.check_int "sent" 2 (Network.messages_sent net);
  Tutil.check_int "moved" 3 (Network.elements_moved net);
  let msgs = Network.receive_all net ~dst:2 in
  Tutil.check_int "drained" 2 (List.length msgs);
  Tutil.check_int "fifo src" 0 (List.hd msgs).Network.src;
  Tutil.check_int "now empty" 0 (Network.pending net ~dst:2);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Network.send: addresses/payload length mismatch")
    (fun () ->
      Network.send net ~src:0 ~dst:1 ~tag:0 ~addresses:[| 1 |] ~payload:Lams_util.Fbuf.empty)

let test_network_link_accounting () =
  let net = Network.create ~p:4 in
  (* Two messages on one link, undrained: the link and the mailbox both
     peak at 2. A packed message (empty addresses) carries any payload
     length. *)
  Network.send net ~src:0 ~dst:3 ~tag:0 ~addresses:[| 1; 2; 3 |]
    ~payload:(Lams_util.Fbuf.of_array [| 1.; 2.; 3. |]);
  Network.send net ~src:0 ~dst:3 ~tag:1 ~addresses:[||]
    ~payload:(Lams_util.Fbuf.of_array [| 4.; 5. |]);
  Network.send net ~src:1 ~dst:2 ~tag:0 ~addresses:[||] ~payload:(Lams_util.Fbuf.of_array [| 9. |]);
  Tutil.check_int "link messages" 2 (Network.link_messages net ~src:0 ~dst:3);
  Tutil.check_int "link elements" 5 (Network.link_elements net ~src:0 ~dst:3);
  Tutil.check_int "quiet link" 0 (Network.link_messages net ~src:2 ~dst:0);
  Tutil.check_int "congestion at 3" 2 (Network.congestion net ~dst:3);
  Tutil.check_int "congestion at 2" 1 (Network.congestion net ~dst:2);
  Tutil.check_int "max congestion" 2 (Network.max_congestion net);
  Tutil.check_int "max link in flight" 2 (Network.max_link_in_flight net);
  ignore (Network.receive_all net ~dst:3 : Network.message list);
  (* Peaks are high-water marks: draining does not lower them. *)
  Tutil.check_int "peak survives drain" 2 (Network.max_congestion net);
  Alcotest.check_raises "non-packed mismatch still rejected"
    (Invalid_argument "Network.send: addresses/payload length mismatch")
    (fun () ->
      Network.send net ~src:0 ~dst:1 ~tag:0 ~addresses:[| 1; 2 |]
        ~payload:(Lams_util.Fbuf.of_array [| 1. |]))

let test_darray_global_ops () =
  let a = Darray.create ~name:"A" ~n:320 ~p:4 ~dist:(Distribution.Block_cyclic 8) in
  Darray.set a 108 3.25;
  Alcotest.(check (float 0.)) "get back" 3.25 (Darray.get a 108);
  (* It must have landed at local address 28 of proc 1 (Figure 1). *)
  Alcotest.(check (float 0.)) "local placement" 3.25
    (Local_store.get (Darray.local a 1) 28);
  Alcotest.check_raises "oob" (Invalid_argument "Darray.get: index out of range")
    (fun () -> ignore (Darray.get a 320))

let test_darray_of_array_gather () =
  let values = Array.init 100 float_of_int in
  List.iter
    (fun dist ->
      let a = Darray.of_array ~name:"A" ~p:3 ~dist values in
      Alcotest.(check (array (float 0.))) "gather roundtrip" values (Darray.gather a))
    [ Distribution.Block; Distribution.Cyclic; Distribution.Block_cyclic 7 ]

let test_spmd_parallel () =
  (* Parallel fill over domains produces the same state as sequential. *)
  let sec = Section.make ~lo:4 ~hi:4095 ~stride:9 in
  let make () =
    Darray.create ~name:"A" ~n:4096 ~p:16 ~dist:(Distribution.Block_cyclic 8)
  in
  let seq = make () and par = make () in
  Section_ops.fill seq sec 3.;
  Section_ops.fill ~parallel:true par sec 3.;
  Alcotest.(check (array (float 0.))) "same contents" (Darray.gather seq)
    (Darray.gather par);
  (* run_parallel covers every rank exactly once. *)
  let hits = Array.make 37 0 in
  Spmd.run_parallel ~domains:4 ~p:37 (fun m -> hits.(m) <- hits.(m) + 1);
  Tutil.check_int_array "all ranks once" (Array.make 37 1) hits

let test_spmd_pool_reuse () =
  (* Repeated dispatches reuse the parked worker domains; dynamic rank
     chunking must still cover every rank exactly once, including the
     chunk-boundary edge cases. *)
  List.iter
    (fun p ->
      let hits = Array.make p 0 in
      Spmd.run_parallel ~domains:3 ~p (fun m -> hits.(m) <- hits.(m) + 1);
      Tutil.check_int_array
        (Printf.sprintf "all ranks once, p=%d" p)
        (Array.make p 1) hits)
    [ 2; 3; 5; 16; 64; 257 ];
  (* An exception in a rank surfaces in the caller, after the sweep. *)
  match Spmd.run_parallel ~domains:4 ~p:17 (fun m -> if m = 11 then failwith "rank 11") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure msg -> Alcotest.(check string) "error surfaces" "rank 11" msg

let test_spmd_timing () =
  let t = Spmd.run_timed ~p:4 ~f:(fun _ -> ()) in
  Tutil.check_int "per-proc entries" 4 (Array.length t.Spmd.per_proc_us);
  Tutil.check_bool "max >= 0" true (t.Spmd.max_us >= 0.);
  Tutil.check_bool "max <= total" true (t.Spmd.max_us <= t.Spmd.total_us +. 1e-9);
  let ranks = Spmd.run_collect ~p:5 ~f:Fun.id in
  Tutil.check_int_array "collect" [| 0; 1; 2; 3; 4 |] ranks

let test_fill_matches_reference () =
  let sec = Section.make ~lo:4 ~hi:319 ~stride:9 in
  List.iter
    (fun shape ->
      let a =
        Darray.create ~name:"A" ~n:320 ~p:4 ~dist:(Distribution.Block_cyclic 8)
      in
      Section_ops.fill ~shape a sec 100.;
      let got = Darray.gather a in
      Array.iteri
        (fun g v ->
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s g=%d" (Lams_codegen.Shapes.name shape) g)
            (if Section.mem sec g then 100. else 0.)
            v)
        got)
    Lams_codegen.Shapes.all

let test_map_and_sum () =
  let a = Darray.of_array ~name:"A" ~p:4 ~dist:(Distribution.Block_cyclic 8)
      (Array.init 320 float_of_int) in
  let sec = Section.make ~lo:0 ~hi:319 ~stride:10 in
  (* sum of 0,10,...,310 = 10 * (0+..+31) = 4960 *)
  Alcotest.(check (float 1e-9)) "sum" 4960. (Section_ops.sum a sec);
  Section_ops.map_section a sec ~f:(fun v -> v *. 2.);
  Alcotest.(check (float 1e-9)) "sum after doubling" 9920. (Section_ops.sum a sec);
  (* Elements off the section untouched. *)
  Alcotest.(check (float 0.)) "off-section" 7. (Darray.get a 7)

let test_copy_same_distribution () =
  let src = Darray.of_array ~name:"B" ~p:4 ~dist:(Distribution.Block_cyclic 8)
      (Array.init 320 float_of_int) in
  let dst = Darray.create ~name:"A" ~n:320 ~p:4 ~dist:(Distribution.Block_cyclic 8) in
  let sec = Section.make ~lo:4 ~hi:319 ~stride:9 in
  let net =
    Section_ops.copy ~src ~src_section:sec ~dst ~dst_section:sec ()
  in
  Tutil.check_bool "some traffic" true (Network.elements_moved net > 0);
  Array.iteri
    (fun g v ->
      Alcotest.(check (float 0.)) (Printf.sprintf "g=%d" g)
        (if Section.mem sec g then float_of_int g else 0.) v)
    (Darray.gather dst)

let test_copy_network_counters () =
  (* Paper worked example (p=4, cyclic(8), A(4:319:9)): 36 elements, 9
     owned by each processor. Source and destination layouts are
     identical, so each processor sends exactly one (self-)message of 9
     elements: 4 messages, 36 elements, 36 * 8 = 288 payload bytes, and
     one mailbox drain per destination processor. *)
  let c_msgs = Lams_obs.Obs.counter "sim.network.messages"
  and c_bytes = Lams_obs.Obs.counter "sim.network.bytes"
  and c_elems = Lams_obs.Obs.counter "sim.network.elements"
  and c_drains = Lams_obs.Obs.counter "sim.network.drains" in
  let grab () =
    ( Lams_obs.Obs.counter_value c_msgs,
      Lams_obs.Obs.counter_value c_bytes,
      Lams_obs.Obs.counter_value c_elems,
      Lams_obs.Obs.counter_value c_drains )
  in
  Lams_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Lams_obs.Obs.set_enabled false)
  @@ fun () ->
  let m0, b0, e0, d0 = grab () in
  let src = Darray.of_array ~name:"B" ~p:4 ~dist:(Distribution.Block_cyclic 8)
      (Array.init 320 float_of_int) in
  let dst = Darray.create ~name:"A" ~n:320 ~p:4 ~dist:(Distribution.Block_cyclic 8) in
  let sec = Section.make ~lo:4 ~hi:319 ~stride:9 in
  let net = Section_ops.copy ~src ~src_section:sec ~dst ~dst_section:sec () in
  let m1, b1, e1, d1 = grab () in
  Tutil.check_int "messages" 4 (m1 - m0);
  Tutil.check_int "payload bytes" 288 (b1 - b0);
  Tutil.check_int "elements" 36 (e1 - e0);
  Tutil.check_int "drains" 4 (d1 - d0);
  (* The obs counters must agree with the network's own bookkeeping. *)
  Tutil.check_int "vs messages_sent" (Network.messages_sent net) (m1 - m0);
  Tutil.check_int "vs elements_moved" (Network.elements_moved net) (e1 - e0)

let test_copy_redistribution_and_reversal () =
  (* Different p, k and a reversed destination triplet. *)
  let src = Darray.of_array ~name:"B" ~p:3 ~dist:(Distribution.Block_cyclic 5)
      (Array.init 100 float_of_int) in
  let dst = Darray.create ~name:"A" ~n:60 ~p:4 ~dist:Distribution.Cyclic in
  let src_section = Section.make ~lo:0 ~hi:99 ~stride:5 (* 0,5,...,95: 20 elems *)
  and dst_section = Section.make ~lo:57 ~hi:0 ~stride:(-3) (* 57,54,...,0: 20 elems *) in
  let _net = Section_ops.copy ~src ~src_section ~dst ~dst_section () in
  (* dst(57 - 3j) = src(5j). *)
  for j = 0 to 19 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "j=%d" j)
      (float_of_int (5 * j))
      (Darray.get dst (57 - (3 * j)))
  done

let test_copy_count_mismatch () =
  let src = Darray.create ~name:"B" ~n:100 ~p:2 ~dist:Distribution.Block in
  let dst = Darray.create ~name:"A" ~n:100 ~p:2 ~dist:Distribution.Block in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Section_ops.copy: section element counts differ")
    (fun () ->
      ignore
        (Section_ops.copy ~src ~src_section:(Section.make ~lo:0 ~hi:9 ~stride:1)
           ~dst ~dst_section:(Section.make ~lo:0 ~hi:10 ~stride:1) ()))

let prop_fill_matches_semantics =
  Tutil.qtest ~count:150 "fill = sequential semantics for random instances"
    QCheck2.Gen.(
      let* p = int_range 1 6 in
      let* k = int_range 1 10 in
      let* n = int_range 1 200 in
      let* lo = int_range 0 (n - 1) in
      let* stride = int_range 1 12 in
      let* hi = int_range lo (n - 1) in
      return (p, k, n, lo, hi, stride))
    ~print:(fun (p, k, n, lo, hi, stride) ->
      Printf.sprintf "p=%d k=%d n=%d sec=%d:%d:%d" p k n lo hi stride)
    (fun (p, k, n, lo, hi, stride) ->
      let sec = Section.make ~lo ~hi ~stride in
      if Section.is_empty sec then true
      else begin
        let a =
          Darray.create ~name:"A" ~n ~p ~dist:(Distribution.Block_cyclic k)
        in
        Section_ops.fill a sec 1.;
        let got = Darray.gather a in
        let ok = ref true in
        Array.iteri
          (fun g v ->
            let want = if Section.mem sec g then 1. else 0. in
            if v <> want then ok := false)
          got;
        !ok
      end)

let prop_copy_matches_semantics =
  Tutil.qtest ~count:100 "copy = sequential semantics across redistributions"
    QCheck2.Gen.(
      let* p1 = int_range 1 5 and* p2 = int_range 1 5 in
      let* k1 = int_range 1 8 and* k2 = int_range 1 8 in
      let* count = int_range 1 20 in
      let* s1 = int_range 1 6 and* s2 = int_range 1 6 in
      let* l1 = int_range 0 10 and* l2 = int_range 0 10 in
      return (p1, k1, p2, k2, count, s1, l1, s2, l2))
    (fun (p1, k1, p2, k2, count, s1, l1, s2, l2) ->
      let n1 = l1 + (s1 * count) + 1 and n2 = l2 + (s2 * count) + 1 in
      let src =
        Darray.of_array ~name:"B" ~p:p1 ~dist:(Distribution.Block_cyclic k1)
          (Array.init n1 (fun g -> float_of_int (g * 3)))
      in
      let dst =
        Darray.create ~name:"A" ~n:n2 ~p:p2 ~dist:(Distribution.Block_cyclic k2)
      in
      let src_section = Section.make ~lo:l1 ~hi:(l1 + (s1 * (count - 1))) ~stride:s1
      and dst_section = Section.make ~lo:l2 ~hi:(l2 + (s2 * (count - 1))) ~stride:s2 in
      let _ = Section_ops.copy ~src ~src_section ~dst ~dst_section () in
      let ok = ref true in
      for j = 0 to count - 1 do
        if Darray.get dst (Section.nth dst_section j)
           <> float_of_int (Section.nth src_section j * 3)
        then ok := false
      done;
      !ok)

(* --- Comm_sets --- *)

(* Brute-force oracle: position -> (src owner, dst owner). *)
let brute_pairs ~src_layout ~src_section ~dst_layout ~dst_section =
  let total = Section.count src_section in
  List.init total (fun j ->
      ( Layout.owner src_layout (Section.nth src_section j),
        Layout.owner dst_layout (Section.nth dst_section j) ))

let check_schedule ~src_layout ~src_section ~dst_layout ~dst_section =
  let sched =
    Comm_sets.build ~src_layout ~src_section ~dst_layout ~dst_section
  in
  let oracle = brute_pairs ~src_layout ~src_section ~dst_layout ~dst_section in
  let total = List.length oracle in
  Tutil.check_int "total" total sched.Comm_sets.total;
  (* Every position appears in exactly one transfer, under the right pair. *)
  let seen = Array.make total 0 in
  List.iter
    (fun (tr : Comm_sets.transfer) ->
      List.iter
        (fun run ->
          List.iter
            (fun j ->
              Tutil.check_bool "in range" true (j >= 0 && j < total);
              seen.(j) <- seen.(j) + 1;
              let src_owner, dst_owner = List.nth oracle j in
              Tutil.check_int "src owner" src_owner tr.Comm_sets.src_proc;
              Tutil.check_int "dst owner" dst_owner tr.Comm_sets.dst_proc)
            (Comm_sets.positions run))
        tr.Comm_sets.runs)
    sched.Comm_sets.transfers;
  Array.iter (fun c -> Tutil.check_int "covered once" 1 c) seen;
  sched

let test_comm_sets_basic () =
  let src_layout = Layout.create ~p:3 ~k:5
  and dst_layout = Layout.create ~p:4 ~k:2 in
  let sched =
    check_schedule ~src_layout
      ~src_section:(Section.make ~lo:0 ~hi:95 ~stride:5)
      ~dst_layout
      ~dst_section:(Section.make ~lo:57 ~hi:0 ~stride:(-3))
  in
  Tutil.check_bool "some cross traffic" true
    (Comm_sets.cross_processor_elements sched > 0);
  (* find agrees with membership. *)
  List.iter
    (fun (tr : Comm_sets.transfer) ->
      match
        Comm_sets.find sched ~src_proc:tr.Comm_sets.src_proc
          ~dst_proc:tr.Comm_sets.dst_proc
      with
      | Some found -> Tutil.check_int "same" tr.Comm_sets.elements found.Comm_sets.elements
      | None -> Alcotest.fail "transfer must be findable")
    sched.Comm_sets.transfers

let test_comm_sets_same_layout_stride1 () =
  (* Identity copy on one layout: everything stays on-processor. *)
  let lay = Layout.create ~p:4 ~k:8 in
  let sec = Section.make ~lo:0 ~hi:255 ~stride:1 in
  let sched =
    check_schedule ~src_layout:lay ~src_section:sec ~dst_layout:lay
      ~dst_section:sec
  in
  Tutil.check_int "no cross traffic" 0 (Comm_sets.cross_processor_elements sched)

(* The transfer list order and the pp rendering are part of the
   contract: schedule lowering and golden tests rely on them. The
   paper-style machine (p=4, k=3) remapped onto cyclic(5). *)
let test_comm_sets_golden_table () =
  let sec = Section.make ~lo:0 ~hi:59 ~stride:1 in
  let cs =
    Comm_sets.build
      ~src_layout:(Layout.create ~p:4 ~k:3)
      ~src_section:sec
      ~dst_layout:(Layout.create ~p:4 ~k:5)
      ~dst_section:sec
  in
  Alcotest.(check string)
    "pp golden"
    "60 elements, 16 active pairs\n\
    \  0 -> 0: 4 elements in 4 runs\n\
    \  0 -> 1: 4 elements in 4 runs\n\
    \  0 -> 2: 4 elements in 4 runs\n\
    \  0 -> 3: 3 elements in 3 runs\n\
    \  1 -> 0: 4 elements in 4 runs\n\
    \  1 -> 1: 4 elements in 4 runs\n\
    \  1 -> 2: 3 elements in 3 runs\n\
    \  1 -> 3: 4 elements in 4 runs\n\
    \  2 -> 0: 4 elements in 4 runs\n\
    \  2 -> 1: 3 elements in 3 runs\n\
    \  2 -> 2: 4 elements in 4 runs\n\
    \  2 -> 3: 4 elements in 4 runs\n\
    \  3 -> 0: 3 elements in 3 runs\n\
    \  3 -> 1: 4 elements in 4 runs\n\
    \  3 -> 2: 4 elements in 4 runs\n\
    \  3 -> 3: 4 elements in 4 runs\n"
    (Format.asprintf "%a" Comm_sets.pp cs);
  (* Ordering pin: ascending lexicographic (src_proc, dst_proc). *)
  let pairs =
    List.map
      (fun (tr : Comm_sets.transfer) ->
        (tr.Comm_sets.src_proc, tr.Comm_sets.dst_proc))
      cs.Comm_sets.transfers
  in
  Tutil.check_bool "transfers sorted by (src, dst)" true
    (List.sort compare pairs = pairs);
  Tutil.check_int "cross-processor elements" 44
    (Comm_sets.cross_processor_elements cs)

let test_comm_sets_errors () =
  let lay = Layout.create ~p:2 ~k:4 in
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Comm_sets.build: section element counts differ")
    (fun () ->
      ignore
        (Comm_sets.build ~src_layout:lay
           ~src_section:(Section.make ~lo:0 ~hi:9 ~stride:1) ~dst_layout:lay
           ~dst_section:(Section.make ~lo:0 ~hi:8 ~stride:1)))

(* --- Md_comm --- *)

let md_of ~dims ~ks ~grid =
  Lams_multidim.Md_array.create ~dims
    ~dists:(Array.map (fun k -> Distribution.Block_cyclic k) ks)
    ~grid:(Proc_grid.create grid)

let test_md_comm_matches_brute () =
  let src = md_of ~dims:[| 20; 18 |] ~ks:[| 3; 2 |] ~grid:[| 2; 3 |] in
  let dst = md_of ~dims:[| 24; 20 |] ~ks:[| 2; 4 |] ~grid:[| 3; 2 |] in
  let src_sections =
    [| Section.make ~lo:0 ~hi:19 ~stride:2; Section.make ~lo:1 ~hi:17 ~stride:3 |]
  and dst_sections =
    [| Section.make ~lo:2 ~hi:20 ~stride:2 (* 10 rows, like the source *);
       Section.make ~lo:16 ~hi:1 ~stride:(-3) (* 6 columns, reversed *) |]
  in
  let sched =
    Md_comm.build ~src ~src_sections ~dst ~dst_sections
  in
  let shape = Array.map Section.count src_sections in
  Tutil.check_int "total" (shape.(0) * shape.(1)) sched.Md_comm.total;
  (* Every (j0, j1) position covered exactly once, under the right node
     pair. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (tr : Md_comm.transfer) ->
      let counted = ref 0 in
      Md_comm.iter_positions tr ~f:(fun pos ->
          incr counted;
          let key = (pos.(0), pos.(1)) in
          Tutil.check_bool "fresh" false (Hashtbl.mem seen key);
          Hashtbl.add seen key ();
          let src_idx =
            [| Section.nth src_sections.(0) pos.(0);
               Section.nth src_sections.(1) pos.(1) |]
          and dst_idx =
            [| Section.nth dst_sections.(0) pos.(0);
               Section.nth dst_sections.(1) pos.(1) |]
          in
          Alcotest.(check (array int)) "src owner" tr.Md_comm.src_coords
            (Lams_multidim.Md_array.owner_coords src src_idx);
          Alcotest.(check (array int)) "dst owner" tr.Md_comm.dst_coords
            (Lams_multidim.Md_array.owner_coords dst dst_idx));
      Tutil.check_int "elements field" tr.Md_comm.elements !counted)
    sched.Md_comm.transfers;
  Tutil.check_int "all covered" sched.Md_comm.total (Hashtbl.length seen)

let test_md_comm_conformance () =
  let a = md_of ~dims:[| 8; 8 |] ~ks:[| 2; 2 |] ~grid:[| 2; 2 |] in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Md_comm.build: per-dimension element counts differ")
    (fun () ->
      ignore
        (Md_comm.build ~src:a
           ~src_sections:[| Section.whole ~n:8; Section.whole ~n:8 |]
           ~dst:a
           ~dst_sections:[| Section.whole ~n:8; Section.make ~lo:0 ~hi:6 ~stride:1 |]))

let prop_md_comm_partition =
  Tutil.qtest ~count:60 "md comm schedule partitions the position grid"
    QCheck2.Gen.(
      let* p0 = int_range 1 3 and* p1 = int_range 1 3 in
      let* k0 = int_range 1 4 and* k1 = int_range 1 4 in
      let* c0 = int_range 1 8 and* c1 = int_range 1 8 in
      let* s0 = int_range 1 3 and* s1 = int_range 1 3 in
      return (p0, p1, k0, k1, c0, c1, s0, s1))
    (fun (p0, p1, k0, k1, c0, c1, s0, s1) ->
      let n0 = 1 + (s0 * c0) and n1 = 1 + (s1 * c1) in
      let src = md_of ~dims:[| n0; n1 |] ~ks:[| k0; k1 |] ~grid:[| p0; p1 |] in
      let dst = md_of ~dims:[| n0; n1 |] ~ks:[| k1; k0 |] ~grid:[| p1; p0 |] in
      let secs =
        [| Section.make ~lo:0 ~hi:(s0 * (c0 - 1)) ~stride:s0;
           Section.make ~lo:0 ~hi:(s1 * (c1 - 1)) ~stride:s1 |]
      in
      let sched = Md_comm.build ~src ~src_sections:secs ~dst ~dst_sections:secs in
      let covered = ref 0 in
      List.iter
        (fun (tr : Md_comm.transfer) ->
          Md_comm.iter_positions tr ~f:(fun _ -> incr covered))
        sched.Md_comm.transfers;
      !covered = c0 * c1)

let prop_copy_scheduled_equals_copy =
  Tutil.qtest ~count:80 "copy_scheduled produces identical contents to copy"
    QCheck2.Gen.(
      let* p1 = int_range 1 5 and* p2 = int_range 1 5 in
      let* k1 = int_range 1 7 and* k2 = int_range 1 7 in
      let* count = int_range 1 25 in
      let* s1 = int_range 1 5 and* s2 = int_range 1 5 in
      let* rev = bool in
      return (p1, k1, p2, k2, count, s1, s2, rev))
    (fun (p1, k1, p2, k2, count, s1, s2, rev) ->
      let n1 = 1 + (s1 * count) and n2 = 1 + (s2 * count) in
      let values = Array.init n1 (fun g -> float_of_int ((g * 7) + 1)) in
      let src_section = Section.make ~lo:0 ~hi:(s1 * (count - 1)) ~stride:s1 in
      let dst_section =
        if rev then Section.make ~lo:(s2 * (count - 1)) ~hi:0 ~stride:(-s2)
        else Section.make ~lo:0 ~hi:(s2 * (count - 1)) ~stride:s2
      in
      let run copier =
        let src =
          Darray.of_array ~name:"B" ~p:p1 ~dist:(Distribution.Block_cyclic k1) values
        in
        let dst =
          Darray.create ~name:"A" ~n:n2 ~p:p2 ~dist:(Distribution.Block_cyclic k2)
        in
        let _ = copier ~src ~src_section ~dst ~dst_section () in
        Darray.gather dst
      in
      run (Section_ops.copy ?net:None) = run (Section_ops.copy_scheduled ?net:None))

let prop_comm_sets_match_brute =
  Tutil.qtest ~count:100 "comm sets = brute enumeration"
    QCheck2.Gen.(
      let* p1 = int_range 1 5 and* p2 = int_range 1 5 in
      let* k1 = int_range 1 7 and* k2 = int_range 1 7 in
      let* count = int_range 1 40 in
      let* s1 = int_range 1 6 and* s2 = int_range 1 6 in
      let* l1 = int_range 0 9 and* l2 = int_range 0 9 in
      let* rev = bool in
      return (p1, k1, p2, k2, count, s1, l1, s2, l2, rev))
    (fun (p1, k1, p2, k2, count, s1, l1, s2, l2, rev) ->
      let src_layout = Layout.create ~p:p1 ~k:k1
      and dst_layout = Layout.create ~p:p2 ~k:k2 in
      let src_section = Section.make ~lo:l1 ~hi:(l1 + (s1 * (count - 1))) ~stride:s1 in
      let dst_section =
        if rev then
          Section.make ~lo:(l2 + (s2 * (count - 1))) ~hi:l2 ~stride:(-s2)
        else Section.make ~lo:l2 ~hi:(l2 + (s2 * (count - 1))) ~stride:s2
      in
      let sched =
        Comm_sets.build ~src_layout ~src_section ~dst_layout ~dst_section
      in
      let oracle = brute_pairs ~src_layout ~src_section ~dst_layout ~dst_section in
      let from_sched = Array.make count (-1, -1) in
      List.iter
        (fun (tr : Comm_sets.transfer) ->
          List.iter
            (fun run ->
              List.iter
                (fun j -> from_sched.(j) <- (tr.Comm_sets.src_proc, tr.Comm_sets.dst_proc))
                (Comm_sets.positions run))
            tr.Comm_sets.runs)
        sched.Comm_sets.transfers;
      Array.to_list from_sched = oracle)

(* The linear joint-cycle walk must be structurally indistinguishable
   from the all-pairs CRT oracle it replaced: same transfers, same runs,
   same order. Generation is biased so that both stride signs, d | k and
   d ∤ k on each side, p_src <> p_dst, and sections shorter than one
   joint cycle all occur. *)
let prop_comm_sets_build_equals_crt =
  Tutil.qtest ~count:300 "comm sets: linear walk = all-pairs CRT"
    QCheck2.Gen.(
      let* p1 = int_range 1 6 and* p2 = int_range 1 6 in
      let* k1 = int_range 1 9 and* k2 = int_range 1 9 in
      (* Multiples of k force d >= k (degenerate classes); free strides
         keep d ∤ k alive. *)
      let* s1 =
        oneof [ int_range 1 12; map (fun x -> k1 * (x + 1)) (int_range 0 2) ]
      and* s2 =
        oneof [ int_range 1 12; map (fun x -> k2 * (x + 1)) (int_range 0 2) ]
      in
      let* count = oneof [ int_range 1 4; int_range 1 80 ] in
      let* l1 = int_range 0 9 and* l2 = int_range 0 9 in
      let* rev1 = bool and* rev2 = bool in
      return (p1, k1, p2, k2, s1, s2, count, l1, l2, rev1, rev2))
    (fun (p1, k1, p2, k2, s1, s2, count, l1, l2, rev1, rev2) ->
      let sec lo s rev =
        if rev then
          Section.make ~lo:(lo + (s * (count - 1))) ~hi:lo ~stride:(-s)
        else Section.make ~lo ~hi:(lo + (s * (count - 1))) ~stride:s
      in
      let src_layout = Layout.create ~p:p1 ~k:k1
      and dst_layout = Layout.create ~p:p2 ~k:k2 in
      let src_section = sec l1 s1 rev1 and dst_section = sec l2 s2 rev2 in
      Comm_sets.build ~src_layout ~src_section ~dst_layout ~dst_section
      = Comm_sets.build_crt ~src_layout ~src_section ~dst_layout ~dst_section)

let test_comm_sets_by_src () =
  let src_layout = Layout.create ~p:3 ~k:5
  and dst_layout = Layout.create ~p:4 ~k:2 in
  let cs =
    Comm_sets.build ~src_layout
      ~src_section:(Section.make ~lo:0 ~hi:95 ~stride:5)
      ~dst_layout
      ~dst_section:(Section.make ~lo:57 ~hi:0 ~stride:(-3))
  in
  let by_src = Comm_sets.by_src cs ~p_src:3 in
  Tutil.check_int "slots" 3 (Array.length by_src);
  (* Concatenating the slots in rank order recovers the transfer list
     exactly: grouping loses neither transfers nor their order. *)
  Tutil.check_bool "regrouped = original" true
    (List.concat (Array.to_list by_src) = cs.Comm_sets.transfers);
  Array.iteri
    (fun m trs ->
      List.iter
        (fun (tr : Comm_sets.transfer) ->
          Tutil.check_int "right slot" m tr.Comm_sets.src_proc)
        trs)
    by_src

let suite =
  [ Alcotest.test_case "local store" `Quick test_local_store;
    Alcotest.test_case "comm sets: mixed layouts + reversal" `Quick
      test_comm_sets_basic;
    Alcotest.test_case "comm sets: identity copy stays local" `Quick
      test_comm_sets_same_layout_stride1;
    Alcotest.test_case "comm sets: golden table + pinned order" `Quick
      test_comm_sets_golden_table;
    Alcotest.test_case "comm sets: validation" `Quick test_comm_sets_errors;
    prop_comm_sets_match_brute;
    prop_comm_sets_build_equals_crt;
    Alcotest.test_case "comm sets: by_src regroups losslessly" `Quick
      test_comm_sets_by_src;
    prop_copy_scheduled_equals_copy;
    Alcotest.test_case "md comm sets vs brute (mixed grids + reversal)" `Quick
      test_md_comm_matches_brute;
    Alcotest.test_case "md comm conformance" `Quick test_md_comm_conformance;
    prop_md_comm_partition;
    Alcotest.test_case "network mailboxes" `Quick test_network;
    Alcotest.test_case "network link + congestion accounting" `Quick
      test_network_link_accounting;
    Alcotest.test_case "darray global ops (Figure 1 placement)" `Quick
      test_darray_global_ops;
    Alcotest.test_case "scatter/gather roundtrip" `Quick
      test_darray_of_array_gather;
    Alcotest.test_case "spmd timing" `Quick test_spmd_timing;
    Alcotest.test_case "spmd parallel domains" `Quick test_spmd_parallel;
    Alcotest.test_case "spmd pool reuse + error propagation" `Quick
      test_spmd_pool_reuse;
    Alcotest.test_case "fill matches reference (all shapes)" `Quick
      test_fill_matches_reference;
    Alcotest.test_case "map + sum" `Quick test_map_and_sum;
    Alcotest.test_case "copy, same distribution" `Quick
      test_copy_same_distribution;
    Alcotest.test_case "copy network counters (paper example)" `Quick
      test_copy_network_counters;
    Alcotest.test_case "copy with redistribution + reversal" `Quick
      test_copy_redistribution_and_reversal;
    Alcotest.test_case "copy shape mismatch rejected" `Quick
      test_copy_count_mismatch;
    prop_fill_matches_semantics;
    prop_copy_matches_semantics ]
