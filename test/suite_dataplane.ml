(* The Bigarray data plane: Fbuf blit semantics, the blit executor
   against its element-loop twin and the legacy oracle (differential,
   including descending sections and aliasing shifts), copy-before-
   mutate under corrupt+duplicate faults, the payload buffer pool's
   steady-state zero-allocation contract, and the access-accounting
   boundary (counted element ops vs raw bulk paths). *)

open Lams_util
open Lams_dist
open Lams_sim
open Lams_sched

let with_counters f =
  Lams_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Lams_obs.Obs.set_enabled false) f

let c_pool_hits = Lams_obs.Obs.counter "sched.pool.hits"
let c_pool_misses = Lams_obs.Obs.counter "sched.pool.misses"

let init_src ~n ~p ~k =
  Darray.of_array ~name:"dps" ~p ~dist:(Distribution.Block_cyclic k)
    (Array.init n (fun g -> float_of_int ((2 * g) + 1)))

let fresh_dst ~n ~p ~k =
  Darray.create ~name:"dpd" ~n ~p ~dist:(Distribution.Block_cyclic k)

(* --- Fbuf primitive pins ------------------------------------------- *)

let test_fbuf_blit_semantics () =
  let a = Fbuf.init 10 float_of_int in
  let b = Fbuf.create 10 in
  Fbuf.blit ~src:a ~src_pos:2 ~dst:b ~dst_pos:1 ~len:5;
  for i = 0 to 4 do
    Alcotest.(check (float 0.)) "forward" (float_of_int (2 + i))
      (Fbuf.get b (1 + i))
  done;
  (* rev_blit: dst.(dst_pos + i) = src.(src_pos + len - 1 - i). *)
  Fbuf.rev_blit ~src:a ~src_pos:2 ~dst:b ~dst_pos:0 ~len:5;
  for i = 0 to 4 do
    Alcotest.(check (float 0.)) "reversed" (float_of_int (6 - i))
      (Fbuf.get b i)
  done;
  (* Overlapping forward blit has memmove semantics. *)
  Fbuf.blit ~src:a ~src_pos:0 ~dst:a ~dst_pos:1 ~len:9;
  Alcotest.(check (float 0.)) "overlap kept head" 0. (Fbuf.get a 1);
  Alcotest.(check (float 0.)) "overlap kept tail" 8. (Fbuf.get a 9);
  Fbuf.fill_range b ~pos:2 ~len:3 (-2.);
  Alcotest.(check (float 0.)) "fill_range in" (-2.) (Fbuf.get b 4);
  Tutil.check_bool "fill_range out" true (Fbuf.get b 5 <> -2.)

let test_fbuf_bounds () =
  let a = Fbuf.create 4 and b = Fbuf.create 8 in
  Alcotest.check_raises "blit src oob" (Invalid_argument "Fbuf.blit")
    (fun () -> Fbuf.blit ~src:a ~src_pos:1 ~dst:b ~dst_pos:0 ~len:4);
  Alcotest.check_raises "blit dst oob" (Invalid_argument "Fbuf.blit")
    (fun () -> Fbuf.blit ~src:b ~src_pos:0 ~dst:a ~dst_pos:2 ~len:3);
  Alcotest.check_raises "rev_blit oob" (Invalid_argument "Fbuf.rev_blit")
    (fun () -> Fbuf.rev_blit ~src:a ~src_pos:0 ~dst:b ~dst_pos:6 ~len:3);
  Alcotest.check_raises "fill_range oob" (Invalid_argument "Fbuf.fill_range")
    (fun () -> Fbuf.fill_range a ~pos:3 ~len:2 0.);
  (* NaN-transparent equality: bit-pattern comparison. *)
  Tutil.check_bool "nan = nan" true
    (Fbuf.equal (Fbuf.of_array [| nan |]) (Fbuf.of_array [| nan |]))

(* --- Differential: blit executor = element executor = legacy -------- *)

let gen_redistribution =
  QCheck2.Gen.(
    let* sp = int_range 1 8 in
    let* sk = int_range 1 12 in
    let* dp = int_range 1 8 in
    let* dk = int_range 1 12 in
    let* lo = int_range 0 40 in
    let* count = int_range 1 120 in
    let* stride = int_range 1 5 in
    let* reversed = bool in
    return (sp, sk, dp, dk, lo, count, stride, reversed))

let print_redistribution (sp, sk, dp, dk, lo, count, stride, reversed) =
  Printf.sprintf "sp=%d sk=%d dp=%d dk=%d lo=%d count=%d stride=%d rev=%b" sp
    sk dp dk lo count stride reversed

let sections_of (_, _, _, _, lo, count, stride, reversed) =
  let hi = lo + ((count - 1) * stride) in
  let src_section = Section.make ~lo ~hi ~stride in
  let dst_section =
    if reversed then Section.make ~lo:hi ~hi:lo ~stride:(-stride)
    else src_section
  in
  (src_section, dst_section, hi + 1)

let prop_blit_equals_elementwise_equals_legacy =
  Tutil.qtest "blit executor = element-loop executor = legacy copy"
    gen_redistribution ~print:print_redistribution
    (fun ((sp, sk, dp, dk, _, _, _, _) as case) ->
      let src_section, dst_section, n = sections_of case in
      let src = init_src ~n ~p:sp ~k:sk in
      let legacy = fresh_dst ~n ~p:dp ~k:dk in
      ignore
        (Section_ops.copy ~src ~src_section ~dst:legacy ~dst_section ()
          : Network.t);
      let blit = fresh_dst ~n ~p:dp ~k:dk in
      ignore
        (Executor.redistribute ~src ~src_section ~dst:blit ~dst_section ()
          : Network.t);
      let element = fresh_dst ~n ~p:dp ~k:dk in
      ignore
        (Executor.redistribute ~packing:Executor.Elementwise ~src
           ~src_section ~dst:element ~dst_section ()
          : Network.t);
      Darray.equal_contents legacy blit
      && Darray.equal_contents legacy element)

let prop_aliasing_shift_both_packings =
  (* A(dst_sec) = A(src_sec) with src == dst: packing must read
     everything before any unpack writes, in both packing modes. *)
  Tutil.qtest "aliasing shift: blit = element-loop = positional oracle"
    QCheck2.Gen.(
      let* p = int_range 1 6 in
      let* k = int_range 1 9 in
      let* count = int_range 2 90 in
      let* delta = int_range 1 5 in
      let* descending = bool in
      return (p, k, count, delta, descending))
    ~print:(fun (p, k, count, delta, descending) ->
      Printf.sprintf "p=%d k=%d count=%d delta=%d desc=%b" p k count delta
        descending)
    (fun (p, k, count, delta, descending) ->
      let n = count + delta in
      let mk () =
        Darray.of_array ~name:"alias" ~p
          ~dist:(Distribution.Block_cyclic k)
          (Array.init n (fun g -> float_of_int ((3 * g) + 2)))
      in
      let src_section, dst_section =
        if descending then
          ( Section.make ~lo:(count - 1) ~hi:0 ~stride:(-1),
            Section.make ~lo:(n - 1) ~hi:delta ~stride:(-1) )
        else
          ( Section.make ~lo:0 ~hi:(count - 1) ~stride:1,
            Section.make ~lo:delta ~hi:(n - 1) ~stride:1 )
      in
      let run packing =
        let a = mk () in
        ignore
          (Executor.redistribute ~packing ~src:a ~src_section ~dst:a
             ~dst_section ()
            : Network.t);
        Darray.gather a
      in
      let got_blit = run Executor.Blit in
      let got_el = run Executor.Elementwise in
      let want =
        Array.init n (fun g ->
            if g < delta then float_of_int ((3 * g) + 2)
            else float_of_int ((3 * (g - delta)) + 2))
      in
      got_blit = want && got_el = want)

(* --- Chaos: corrupt + duplicate against the Fbuf payloads ----------- *)

let test_chaos_corrupt_duplicate () =
  (* Corrupt mutates a *copy* of the in-flight bigarray payload and
     duplicate re-delivers the original buffer: if the representation
     change broke copy-before-mutate, the sender's retransmit buffer (or
     the duplicate's contents) would be poisoned and the result would
     diverge from the legacy copy on a perfect fabric. *)
  let count = 512 and lo = 1 and stride = 2 in
  let hi = lo + ((count - 1) * stride) in
  let n = hi + 1 in
  let sec = Section.make ~lo ~hi ~stride in
  let src = init_src ~n ~p:4 ~k:8 in
  let legacy = fresh_dst ~n ~p:4 ~k:5 in
  ignore
    (Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
      : Network.t);
  let sched =
    Schedule.build ~src_layout:(Layout.create ~p:4 ~k:8) ~src_section:sec
      ~dst_layout:(Layout.create ~p:4 ~k:5) ~dst_section:sec
  in
  List.iter
    (fun seed ->
      let net = Network.create ~p:4 in
      Network.set_faults net
        (Some
           (Fault_model.create
              ~rates:
                { Fault_model.no_faults with
                  Fault_model.corrupt = 0.35;
                  duplicate = 0.35 }
              ~seed ()));
      let dst = fresh_dst ~n ~p:4 ~k:5 in
      ignore (Executor.run ~net sched ~src ~dst : Network.t);
      Tutil.check_bool
        (Printf.sprintf "corrupt+dup converges (seed %d)" seed) true
        (Darray.equal_contents legacy dst);
      Tutil.check_int "fabric drained" 0 (Network.in_flight net);
      let faults = Network.fault_counts net in
      Tutil.check_bool "faults actually fired" true
        (faults.Network.corrupted > 0 && faults.Network.duplicated > 0))
    [ 7; 42; 1234 ]

(* --- Pool: steady state allocates no payload buffers ---------------- *)

let test_pool_steady_state_zero_allocations () =
  with_counters (fun () ->
      let src_section = Section.make ~lo:3 ~hi:962 ~stride:3 in
      let n = 963 in
      let src = init_src ~n ~p:6 ~k:4 in
      let sched =
        Schedule.build
          ~src_layout:(Layout.create ~p:6 ~k:4)
          ~src_section
          ~dst_layout:(Layout.create ~p:5 ~k:7)
          ~dst_section:src_section
      in
      let transfers =
        List.length sched.Schedule.locals
        + List.fold_left
            (fun acc round -> acc + List.length round)
            0 sched.Schedule.rounds
      in
      let run () =
        let dst = fresh_dst ~n ~p:5 ~k:7 in
        ignore (Executor.run sched ~src ~dst : Network.t)
      in
      (* Warm-up: populates the pool (any mix of hits and misses). *)
      run ();
      let h0 = Lams_obs.Obs.counter_value c_pool_hits
      and m0 = Lams_obs.Obs.counter_value c_pool_misses in
      run ();
      let hits = Lams_obs.Obs.counter_value c_pool_hits - h0
      and misses = Lams_obs.Obs.counter_value c_pool_misses - m0 in
      Tutil.check_int "steady state: every transfer buffer is a pool hit"
        transfers hits;
      Tutil.check_int "steady state: zero payload allocations" 0 misses;
      Tutil.check_bool "pool retains the released bytes" true
        (Pool.retained_bytes () > 0))

let test_pool_released_on_failure () =
  (* The executor releases its buffers even when the run raises (here:
     a schedule built for a different machine size). *)
  with_counters (fun () ->
      let n = 64 in
      let sec = Section.make ~lo:0 ~hi:(n - 1) ~stride:1 in
      let sched =
        Schedule.build
          ~src_layout:(Layout.create ~p:4 ~k:4)
          ~src_section:sec
          ~dst_layout:(Layout.create ~p:4 ~k:6)
          ~dst_section:sec
      in
      let src = init_src ~n ~p:4 ~k:4 in
      let dst = fresh_dst ~n ~p:4 ~k:6 in
      (* Two identical runs: the second's acquires must all hit, which
         can only happen if the first released everything. *)
      ignore (Executor.run sched ~src ~dst : Network.t);
      let h0 = Lams_obs.Obs.counter_value c_pool_hits
      and m0 = Lams_obs.Obs.counter_value c_pool_misses in
      ignore (Executor.run sched ~src ~dst : Network.t);
      Tutil.check_int "no fresh allocations on rerun" 0
        (Lams_obs.Obs.counter_value c_pool_misses - m0);
      Tutil.check_bool "rerun served from pool" true
        (Lams_obs.Obs.counter_value c_pool_hits - h0 > 0))

(* --- Accounting boundary ------------------------------------------- *)

let test_accounting_boundary () =
  (* Counted element ops still count; bulk/raw paths don't. *)
  let n = 120 and p = 4 and k = 5 in
  let a = init_src ~n ~p ~k in
  let total_reads t =
    let acc = ref 0 in
    for m = 0 to Darray.procs t - 1 do
      acc := !acc + Local_store.reads (Darray.local t m)
    done;
    !acc
  and total_writes t =
    let acc = ref 0 in
    for m = 0 to Darray.procs t - 1 do
      acc := !acc + Local_store.writes (Darray.local t m)
    done;
    !acc
  in
  (* of_array went through the raw backing. *)
  Tutil.check_int "of_array writes uncounted" 0 (total_writes a);
  (* Counted per-element API still counts. *)
  Darray.set a 17 9.5;
  ignore (Darray.get a 17 : float);
  Tutil.check_int "Darray.set counted" 1 (total_writes a);
  Tutil.check_int "Darray.get counted" 1 (total_reads a);
  (* gather (verification path) is raw. *)
  ignore (Darray.gather a : float array);
  Tutil.check_int "gather uncounted" 1 (total_reads a);
  (* The scheduled executor moves payloads entirely through blits. *)
  let sec = Section.make ~lo:0 ~hi:(n - 1) ~stride:1 in
  let dst = fresh_dst ~n ~p:3 ~k:7 in
  ignore
    (Executor.redistribute ~src:a ~src_section:sec ~dst ~dst_section:sec ()
      : Network.t);
  Tutil.check_int "executor reads uncounted" 1 (total_reads a);
  Tutil.check_int "executor writes uncounted" 0 (total_writes dst);
  (* map_section is a user-facing element op: it stays counted. *)
  Section_ops.map_section a sec ~f:(fun v -> v +. 1.);
  Tutil.check_int "map_section reads counted" (1 + n) (total_reads a);
  Tutil.check_int "map_section writes counted" (1 + n) (total_writes a)

let suite =
  [ Alcotest.test_case "fbuf blit/rev_blit/fill_range semantics" `Quick
      test_fbuf_blit_semantics;
    Alcotest.test_case "fbuf bounds and bit equality" `Quick
      test_fbuf_bounds;
    prop_blit_equals_elementwise_equals_legacy;
    prop_aliasing_shift_both_packings;
    Alcotest.test_case "chaos: corrupt+duplicate on bigarray payloads"
      `Quick test_chaos_corrupt_duplicate;
    Alcotest.test_case "pool: steady state allocates zero payloads" `Quick
      test_pool_steady_state_zero_allocations;
    Alcotest.test_case "pool: buffers released and reused across runs"
      `Quick test_pool_released_on_failure;
    Alcotest.test_case "accounting: counted ops vs raw bulk paths" `Quick
      test_accounting_boundary ]
