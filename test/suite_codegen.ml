open Lams_core
open Lams_codegen
open Lams_dist

let paper = Problem.make ~p:4 ~k:8 ~l:4 ~s:9

let expected_locals pr ~m ~u =
  let lay = Problem.layout pr in
  Array.map (Layout.local_address lay) (Brute.owned_up_to pr ~m ~u)

let test_plan_paper () =
  match Plan.build paper ~m:1 ~u:319 with
  | None -> Alcotest.fail "plan must exist"
  | Some p ->
      Tutil.check_int "start" 5 p.Plan.start_local;
      Tutil.check_int "length" 8 p.Plan.length;
      Tutil.check_int_array "AM" [| 3; 12; 15; 12; 3; 12; 3; 12 |] p.Plan.delta_m;
      Tutil.check_int "start_offset" 5 p.Plan.start_offset;
      (* Last owned element <= 319 on proc 1. *)
      let locals = expected_locals paper ~m:1 ~u:319 in
      Tutil.check_int "last" locals.(Array.length locals - 1) p.Plan.last_local;
      Tutil.check_int "access count" (Array.length locals) (Plan.access_count p)

let test_plan_none_cases () =
  (* u below the start location. *)
  Alcotest.(check bool) "u < start" true (Plan.build paper ~m:1 ~u:12 = None);
  (* Processor owning nothing at all. *)
  let pr = Problem.make ~p:2 ~k:4 ~l:0 ~s:16 in
  Alcotest.(check bool) "owns nothing" true (Plan.build pr ~m:1 ~u:1000 = None)

let test_all_shapes_agree_paper () =
  match Plan.build paper ~m:1 ~u:319 with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      let want = expected_locals paper ~m:1 ~u:319 in
      List.iter
        (fun shape ->
          Tutil.check_int_array (Shapes.name shape) want
            (Shapes.addresses shape plan))
        Shapes.all

let test_assign_writes_exactly_the_section () =
  let pr = paper in
  let u = 319 in
  let lay = Problem.layout pr in
  List.iter
    (fun shape ->
      for m = 0 to 3 do
        match Plan.build pr ~m ~u with
        | None -> ()
        | Some plan ->
            let extent = Layout.local_extent lay ~n:320 ~proc:m in
            let mem = Lams_util.Fbuf.create extent in
            Shapes.assign shape plan mem 100.;
            (* Exactly the owned section elements are 100, others 0. *)
            let owned = expected_locals pr ~m ~u in
            let owned_set = Array.to_list owned in
            for addr = 0 to extent - 1 do
              let should = List.mem addr owned_set in
              Alcotest.(check (float 0.))
                (Printf.sprintf "%s m=%d addr=%d" (Shapes.name shape) m addr)
                (if should then 100. else 0.)
                (Lams_util.Fbuf.get mem addr)
            done
      done)
    Shapes.all

let test_memory_too_small_rejected () =
  match Plan.build paper ~m:1 ~u:319 with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      Alcotest.check_raises "short memory"
        (Invalid_argument "Shapes: local memory shorter than the plan's extent")
        (fun () -> Shapes.assign Shapes.Shape_a plan (Lams_util.Fbuf.create 3) 1.)

let test_op_stats () =
  match Plan.build paper ~m:1 ~u:319 with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      let n = Plan.access_count plan in
      let a = Shapes.op_stats Shapes.Shape_a plan in
      Tutil.check_int "a writes" n a.Shapes.writes;
      Tutil.check_int "a mods" n a.Shapes.mods;
      let d = Shapes.op_stats Shapes.Shape_d plan in
      Tutil.check_int "d mods" 0 d.Shapes.mods;
      Tutil.check_int "d loads" (2 * n) d.Shapes.table_loads

let test_shape_parsing () =
  List.iter
    (fun (s, want) ->
      Alcotest.(check bool) s true (Shapes.of_string s = want))
    [ ("a", Some Shapes.Shape_a); ("8(b)", Some Shapes.Shape_b);
      ("8c", Some Shapes.Shape_c); ("LOOKUP", Some Shapes.Shape_d);
      ("mod", Some Shapes.Shape_a); ("z", None) ]

let test_emit_c_contains_tables () =
  match Plan.build paper ~m:1 ~u:319 with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      let src = Emit_c.full_function Shapes.Shape_d plan ~name:"node_assign" in
      let contains needle =
        let n = String.length needle and h = String.length src in
        let rec go i = i + n <= h && (String.sub src i n = needle || go (i + 1)) in
        go 0
      in
      Tutil.check_bool "has function" true (contains "void node_assign");
      Tutil.check_bool "has deltaM" true (contains "deltaM");
      Tutil.check_bool "has NextOffset" true (contains "NextOffset");
      Tutil.check_bool "has AM values" true (contains "3, 12, 15, 12");
      List.iter
        (fun shape ->
          Tutil.check_bool (Shapes.name shape) true
            (String.length (Emit_c.kernel shape) > 0))
        Shapes.all

let test_table_free_emission () =
  match Plan.build paper ~m:1 ~u:319 with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      let src = Emit_c.table_free_function plan ~name:"tf" in
      let contains needle =
        let n = String.length needle and h = String.length src in
        let rec go i = i + n <= h && (String.sub src i n = needle || go (i + 1)) in
        go 0
      in
      Tutil.check_bool "mentions R" true (contains "R = (4, 1)");
      Tutil.check_bool "step R gap 12" true (contains "base += 12");
      Tutil.check_bool "step -L gap 3" true (contains "base += 3");
      Tutil.check_bool "no deltaM table" false (contains "deltaM")

(* Compile the emitted C with the system compiler and execute it: the
   memory image it produces must match the OCaml kernels exactly. *)
let test_emitted_c_compiles_and_runs () =
  match Sys.command "cc --version > /dev/null 2>&1" with
  | 0 -> begin
      match Plan.build paper ~m:1 ~u:319 with
      | None -> Alcotest.fail "plan must exist"
      | Some plan ->
          let extent = Plan.local_extent_needed plan in
          let dir = Filename.temp_dir "lams_emit" "" in
          let c_file = Filename.concat dir "kernels.c"
          and exe = Filename.concat dir "kernels.exe" in
          let oc = open_out c_file in
          output_string oc "#include <stdio.h>\n#include <string.h>\n";
          (* One shape is enough here (the table initialisers share
             file-scope names across shapes): 8(b) represents the
             table-driven family, plus the table-free variant. *)
          output_string oc (Emit_c.full_function Shapes.Shape_b plan ~name:"shape_b");
          output_string oc "\n";
          output_string oc (Emit_c.table_free_function plan ~name:"table_free");
          output_string oc
            (Printf.sprintf
               "\nint main(int argc, char **argv) {\n\
               \  static double mem[%d];\n\
               \  memset(mem, 0, sizeof mem);\n\
               \  if (argv[1][0] == 'b') shape_b(mem, 1.0); else table_free(mem, 1.0);\n\
               \  for (int i = 0; i < %d; i++) if (mem[i] == 1.0) printf(\"%%d\\n\", i);\n\
               \  return 0;\n\
                }\n"
               extent extent);
          close_out oc;
          let cmd = Printf.sprintf "cc -O2 -o %s %s" exe c_file in
          Tutil.check_int "cc exit" 0 (Sys.command cmd);
          let run arg =
            let ic = Unix.open_process_in (Printf.sprintf "%s %s" exe arg) in
            let rec go acc =
              match input_line ic with
              | line -> go (int_of_string line :: acc)
              | exception End_of_file ->
                  ignore (Unix.close_process_in ic);
                  List.rev acc
            in
            go []
          in
          let want =
            Array.to_list (Shapes.addresses Shapes.Shape_b plan)
            |> List.sort_uniq compare
          in
          Tutil.check_int_list "C shape b output" want (run "b");
          Tutil.check_int_list "C table-free output" want (run "t")
    end
  | _ -> () (* no C compiler on this host: skip silently *)

let prop_shapes_agree =
  Tutil.qtest ~count:300 "all four shapes visit the brute-force addresses"
    QCheck2.Gen.(
      let* ((p, k, l, s) as pksl) = Tutil.gen_problem in
      let* m = int_range 0 (p - 1) in
      let* extra = int_range 0 (3 * p * k * s) in
      return (pksl, m, l + extra))
    ~print:(fun ((pksl, m, u)) ->
      Printf.sprintf "%s m=%d u=%d" (Tutil.print_problem pksl) m u)
    (fun (pksl, m, u) ->
      let pr = Tutil.problem_of pksl in
      let want = expected_locals pr ~m ~u in
      match Plan.build pr ~m ~u with
      | None -> Array.length want = 0
      | Some plan ->
          List.for_all (fun shape -> Shapes.addresses shape plan = want) Shapes.all)

let prop_plan_extent_safe =
  Tutil.qtest "assign never writes out of the declared extent"
    QCheck2.Gen.(
      let* ((p, k, l, s) as pksl) = Tutil.gen_problem in
      let* m = int_range 0 (p - 1) in
      let* extra = int_range 0 (2 * p * k * s) in
      return (pksl, m, l + extra))
    (fun (pksl, m, u) ->
      let pr = Tutil.problem_of pksl in
      match Plan.build pr ~m ~u with
      | None -> true
      | Some plan ->
          let mem = Lams_util.Fbuf.create (Plan.local_extent_needed plan) in
          List.for_all
            (fun shape ->
              Shapes.assign shape plan mem 1.;
              true)
            Shapes.all)

(* --- Runs --- *)

let test_runs_stride1 () =
  (* Stride-1 whole-array traversal on cyclic(8): local storage is fully
     contiguous, so there is exactly one run covering everything. *)
  let pr = Problem.make ~p:4 ~k:8 ~l:0 ~s:1 in
  match Plan.build pr ~m:1 ~u:319 with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      let runs = Runs.of_plan plan in
      Tutil.check_int "one run" 1 (List.length runs);
      let r = List.hd runs in
      Tutil.check_int "start" 0 r.Runs.start_local;
      Tutil.check_int "length" 80 r.Runs.length;
      Alcotest.(check (float 1e-9)) "avg" 80. (Runs.average_run_length plan)

let test_runs_cover_addresses () =
  List.iter
    (fun (p, k, l, s, m, u) ->
      let pr = Problem.make ~p ~k ~l ~s in
      match Plan.build pr ~m ~u with
      | None -> ()
      | Some plan ->
          let want = Shapes.addresses Shapes.Shape_b plan in
          let flattened =
            Runs.of_plan plan
            |> List.concat_map (fun { Runs.start_local; length } ->
                   List.init length (fun t -> start_local + t))
            |> Array.of_list
          in
          Tutil.check_int_array "runs flatten to addresses" want flattened;
          Tutil.check_int "count" (List.length (Runs.of_plan plan))
            (Runs.count plan);
          (* Runs are maximal: consecutive runs never adjacent. *)
          let rec check_maximal = function
            | a :: (b :: _ as rest) ->
                Tutil.check_bool "maximal" false
                  (b.Runs.start_local = a.Runs.start_local + a.Runs.length);
                check_maximal rest
            | _ -> ()
          in
          check_maximal (Runs.of_plan plan);
          (* fill_by_runs = assign. *)
          let m1 = Lams_util.Fbuf.create (Plan.local_extent_needed plan)
          and m2 = Lams_util.Fbuf.create (Plan.local_extent_needed plan) in
          Shapes.assign Shapes.Shape_d plan m1 5.;
          Runs.fill_by_runs plan m2 5.;
          Tutil.check_bool "same memory" true (Lams_util.Fbuf.equal m1 m2))
    [ (4, 8, 4, 9, 1, 319); (4, 8, 0, 1, 2, 319); (2, 4, 0, 3, 0, 100);
      (1, 5, 0, 2, 0, 57); (8, 16, 3, 5, 5, 2000) ]

(* Descending (stride < 0) sections reach the emitter through
   normalization: [Problem.of_section] reverses them to positive
   stride, and plan, runs and emitted loops all walk the ascending
   normalized addresses. The pack layer mirrors these runs into
   [step = -1] blocks for buffer traversal order; this pins the emit
   side as the exact ascending complement, and — when a C compiler is
   present — compiles the emitted loops and checks they visit the same
   addresses bit-for-bit. *)
let test_runs_descending_sections () =
  List.iter
    (fun (p, k, lo, hi, stride) ->
      let lay = Layout.create ~p ~k in
      let sec = Section.make ~lo ~hi ~stride in
      let pr = Problem.of_section lay sec in
      let u = (Section.normalize sec).Section.hi in
      for m = 0 to p - 1 do
        match Plan.build_uncached pr ~m ~u with
        | None -> ()
        | Some plan ->
            let want = expected_locals pr ~m ~u in
            let flattened =
              Runs.fold_runs plan ~init:[] ~f:(fun acc r -> r :: acc)
              |> List.rev
              |> List.concat_map (fun { Runs.start_local; length } ->
                     List.init length (fun t -> start_local + t))
              |> Array.of_list
            in
            Tutil.check_int_array
              (Printf.sprintf "descending runs flatten (m=%d)" m)
              want flattened
      done;
      match Lams_native.Harness.check_problem pr ~u with
      | Lams_native.Harness.Agree _ | Lams_native.Harness.No_cc -> ()
      | o ->
          Alcotest.failf "descending emit (p=%d k=%d %d:%d:%d): %a" p k lo hi
            stride Lams_native.Harness.pp_outcome o)
    [ (3, 5, 88, 4, -7); (4, 8, 319, 4, -9); (2, 3, 50, 0, -1);
      (5, 2, 99, 1, -14) ]

let prop_runs_flatten =
  Tutil.qtest ~count:150 "runs always flatten back to the address sequence"
    QCheck2.Gen.(
      let* ((p, k, l, s) as pksl) = Tutil.gen_problem in
      let* m = int_range 0 (p - 1) in
      let* extra = int_range 0 (2 * p * k * s) in
      return (pksl, m, l + extra))
    (fun (pksl, m, u) ->
      let pr = Tutil.problem_of pksl in
      match Plan.build pr ~m ~u with
      | None -> true
      | Some plan ->
          let want = Array.to_list (Shapes.addresses Shapes.Shape_b plan) in
          let got =
            Runs.of_plan plan
            |> List.concat_map (fun { Runs.start_local; length } ->
                   List.init length (fun t -> start_local + t))
          in
          want = got)

(* The shape-(d) traversal a plan drives: gaps read by chasing
   next_offset from the start state. Cached plans may share wider
   delta_by_offset arrays (extra residue classes filled for other
   processors), so equivalence is over the driven walk, not raw arrays. *)
let shape_d_gaps (pl : Plan.t) =
  let o = ref pl.Plan.start_offset in
  Array.init
    (2 * pl.Plan.length)
    (fun _ ->
      let g = pl.Plan.delta_by_offset.(!o) in
      o := pl.Plan.next_offset.(!o);
      g)

let prop_plan_cached_equals_uncached =
  Tutil.qtest ~count:250 "Plan.build (cached) = Plan.build_uncached"
    QCheck2.Gen.(
      let* ((p, k, l, s) as pksl) = Tutil.gen_problem in
      let* m = int_range 0 (p - 1) in
      let* extra = int_range 0 (3 * p * k * s) in
      return (pksl, m, l + extra))
    ~print:(fun (pksl, m, u) ->
      Printf.sprintf "%s m=%d u=%d" (Tutil.print_problem pksl) m u)
    (fun (pksl, m, u) ->
      let pr = Tutil.problem_of pksl in
      match (Plan.build pr ~m ~u, Plan.build_uncached pr ~m ~u) with
      | None, None -> true
      | Some a, Some b ->
          a.Plan.start_local = b.Plan.start_local
          && a.Plan.last_local = b.Plan.last_local
          && a.Plan.length = b.Plan.length
          && a.Plan.delta_m = b.Plan.delta_m
          && a.Plan.start_offset = b.Plan.start_offset
          && shape_d_gaps a = shape_d_gaps b
          && Plan.local_extent_needed a = Plan.local_extent_needed b
      | _ -> false)

let suite =
  [ Alcotest.test_case "plan on the paper example" `Quick test_plan_paper;
    prop_plan_cached_equals_uncached;
    Alcotest.test_case "runs: stride-1 collapses to one block" `Quick
      test_runs_stride1;
    Alcotest.test_case "runs: coverage, maximality, fill" `Quick
      test_runs_cover_addresses;
    Alcotest.test_case "runs: descending sections normalize and emit" `Quick
      test_runs_descending_sections;
    prop_runs_flatten;
    Alcotest.test_case "plan absence cases" `Quick test_plan_none_cases;
    Alcotest.test_case "shapes agree on the paper example" `Quick
      test_all_shapes_agree_paper;
    Alcotest.test_case "assign touches exactly the section" `Quick
      test_assign_writes_exactly_the_section;
    Alcotest.test_case "bounds checking" `Quick test_memory_too_small_rejected;
    Alcotest.test_case "operation statistics" `Quick test_op_stats;
    Alcotest.test_case "shape name parsing" `Quick test_shape_parsing;
    Alcotest.test_case "C emission" `Quick test_emit_c_contains_tables;
    Alcotest.test_case "table-free C emission" `Quick test_table_free_emission;
    Alcotest.test_case "emitted C compiles and runs" `Quick
      test_emitted_c_compiles_and_runs;
    prop_shapes_agree;
    prop_plan_extent_safe ]
