open Lams_sort

let sorters =
  [ ("insertion", Sorting.insertion);
    ("quicksort", Sorting.quicksort);
    ("merge", Sorting.merge);
    ("radix_lsd", Sorting.radix_lsd ?bits_per_pass:None);
    ("for_baseline", Sorting.for_baseline) ]

let oracle a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let check_sorter name sort a =
  let want = oracle a in
  let got = Array.copy a in
  sort got;
  Alcotest.(check (array int)) name want got

let test_known_inputs () =
  let inputs =
    [ [||]; [| 1 |]; [| 2; 1 |]; [| 5; 5; 5 |];
      [| 9; 8; 7; 6; 5; 4; 3; 2; 1; 0 |];
      [| 0; 1; 2; 3; 4; 5 |];
      [| 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8; 9; 7; 9; 3; 2; 3; 8; 4 |];
      Array.init 200 (fun i -> (i * 7919) mod 257);
      Array.init 100 (fun i -> 100 - i) ]
  in
  List.iter
    (fun (name, sort) ->
      List.iteri
        (fun i a -> check_sorter (Printf.sprintf "%s #%d" name i) sort a)
        inputs)
    sorters

let test_radix_negative_rejected () =
  Alcotest.check_raises "negative key"
    (Invalid_argument "Sorting.radix_lsd: negative key") (fun () ->
      Sorting.radix_lsd [| 3; -1; 2 |]);
  Alcotest.check_raises "bad bits"
    (Invalid_argument "Sorting.radix_lsd: bits_per_pass outside [1, 24]")
    (fun () -> Sorting.radix_lsd ~bits_per_pass:0 [| 1; 2 |])

let test_is_sorted () =
  Tutil.check_bool "empty" true (Sorting.is_sorted [||]);
  Tutil.check_bool "single" true (Sorting.is_sorted [| 5 |]);
  Tutil.check_bool "sorted" true (Sorting.is_sorted [| 1; 2; 2; 3 |]);
  Tutil.check_bool "unsorted" false (Sorting.is_sorted [| 2; 1 |])

let gen_array =
  QCheck2.Gen.(array_size (int_range 0 500) (int_range 0 100000))

let prop_sorts sort_name sort =
  Tutil.qtest
    (Printf.sprintf "%s sorts correctly" sort_name)
    gen_array
    (fun a ->
      let got = Array.copy a in
      sort got;
      got = oracle a)

let prop_radix_few_bits =
  Tutil.qtest "radix with 4-bit digits" gen_array (fun a ->
      let got = Array.copy a in
      Sorting.radix_lsd ~bits_per_pass:4 got;
      got = oracle a)

let prop_merge_permutation =
  Tutil.qtest "sorting preserves multiset" gen_array (fun a ->
      let got = Array.copy a in
      Sorting.merge got;
      List.sort compare (Array.to_list got)
      = List.sort compare (Array.to_list a))

let suite =
  [ Alcotest.test_case "known inputs, all sorters" `Quick test_known_inputs;
    Alcotest.test_case "radix input validation" `Quick
      test_radix_negative_rejected;
    Alcotest.test_case "is_sorted" `Quick test_is_sorted;
    prop_radix_few_bits;
    prop_merge_permutation ]
  @ List.map (fun (name, sort) -> prop_sorts name sort) sorters
