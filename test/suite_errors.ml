(* Failure injection: every public validation path raises the documented
   Invalid_argument with a meaningful message, and never a confusing
   downstream error. *)

open Lams_dist
open Lams_core

let raises_invalid name f =
  Alcotest.test_case name `Quick (fun () ->
      match f () with
      | exception Invalid_argument _ -> ()
      | exception e ->
          Alcotest.failf "%s: expected Invalid_argument, got %s" name
            (Printexc.to_string e)
      | _ -> Alcotest.failf "%s: expected Invalid_argument, got a value" name)

let lay = Layout.create ~p:4 ~k:8
let pr = Problem.make ~p:4 ~k:8 ~l:4 ~s:9

let suite =
  [ (* numeric *)
    raises_invalid "Diophantine.solve bad modulus" (fun () ->
        Lams_numeric.Diophantine.solve ~a:3 ~m:0 1);
    raises_invalid "Diophantine.count_multiples bad d" (fun () ->
        Lams_numeric.Diophantine.count_multiples ~d:0 ~lo:0 ~hi:10);
    raises_invalid "Euclid.modular_inverse bad modulus" (fun () ->
        Lams_numeric.Euclid.modular_inverse 3 0);
    (* lattice *)
    raises_invalid "Section_lattice zero stride" (fun () ->
        Lams_lattice.Section_lattice.create ~row_len:8 ~stride:0);
    raises_invalid "Section_lattice zero row" (fun () ->
        Lams_lattice.Section_lattice.create ~row_len:0 ~stride:3);
    raises_invalid "Basis bad p" (fun () ->
        Lams_lattice.Basis.construct ~p:0 ~k:8 ~s:9);
    raises_invalid "Basis bad s" (fun () ->
        Lams_lattice.Basis.construct ~p:4 ~k:8 ~s:0);
    (* dist *)
    raises_invalid "Section zero stride" (fun () ->
        Section.make ~lo:0 ~hi:9 ~stride:0);
    raises_invalid "Section.whole bad n" (fun () -> Section.whole ~n:0);
    raises_invalid "Layout bad p" (fun () -> Layout.create ~p:0 ~k:8);
    raises_invalid "Layout negative index" (fun () -> Layout.owner lay (-1));
    raises_invalid "Layout.global_of_local negative" (fun () ->
        Layout.global_of_local lay ~proc:0 (-1));
    raises_invalid "Distribution cyclic(0)" (fun () ->
        Distribution.block_size (Distribution.Block_cyclic 0) ~n:10 ~p:2);
    raises_invalid "Alignment zero scale" (fun () ->
        Alignment.make ~scale:0 ~offset:1);
    raises_invalid "Proc_grid empty" (fun () -> Proc_grid.create [||]);
    raises_invalid "Proc_grid bad dim" (fun () -> Proc_grid.create [| 2; 0 |]);
    raises_invalid "Proc_grid bad rank" (fun () ->
        Proc_grid.coords_of_rank (Proc_grid.create [| 2; 2 |]) 4);
    (* core *)
    raises_invalid "Problem bad p" (fun () -> Problem.make ~p:0 ~k:8 ~l:0 ~s:9);
    raises_invalid "Problem bad l" (fun () -> Problem.make ~p:4 ~k:8 ~l:(-1) ~s:9);
    raises_invalid "Problem bad s" (fun () -> Problem.make ~p:4 ~k:8 ~l:0 ~s:0);
    raises_invalid "Problem.of_section empty" (fun () ->
        Problem.of_section lay (Section.make ~lo:9 ~hi:0 ~stride:1));
    raises_invalid "Start_finder bad m" (fun () -> Start_finder.find pr ~m:4);
    raises_invalid "Brute bad m" (fun () -> Brute.gap_table pr ~m:(-1));
    raises_invalid "Brute.owned_prefix on empty proc" (fun () ->
        Brute.owned_prefix (Problem.make ~p:2 ~k:4 ~l:0 ~s:16) ~m:1 ~count:1);
    raises_invalid "Enumerate bad m" (fun () -> Enumerate.start pr ~m:99);
    (* codegen *)
    raises_invalid "Plan bad m" (fun () ->
        Lams_codegen.Plan.build pr ~m:12 ~u:319);
    (* sim *)
    raises_invalid "Local_store negative size" (fun () ->
        Lams_sim.Local_store.create (-1));
    raises_invalid "Network bad p" (fun () -> Lams_sim.Network.create ~p:0);
    raises_invalid "Network bad rank" (fun () ->
        Lams_sim.Network.send (Lams_sim.Network.create ~p:2) ~src:2 ~dst:0
          ~tag:0 ~addresses:[||] ~payload:Lams_util.Fbuf.empty);
    raises_invalid "Darray bad n" (fun () ->
        Lams_sim.Darray.create ~name:"A" ~n:0 ~p:2 ~dist:Distribution.Block);
    raises_invalid "Darray.local bad rank" (fun () ->
        Lams_sim.Darray.local
          (Lams_sim.Darray.create ~name:"A" ~n:10 ~p:2 ~dist:Distribution.Block)
          5);
    raises_invalid "Spmd bad p" (fun () -> Lams_sim.Spmd.run ~p:0 ~f:ignore);
    raises_invalid "Section_ops fill outside" (fun () ->
        let a =
          Lams_sim.Darray.create ~name:"A" ~n:10 ~p:2 ~dist:Distribution.Block
        in
        Lams_sim.Section_ops.fill a (Section.make ~lo:0 ~hi:10 ~stride:1) 1.);
    raises_invalid "Comm_sets negative section" (fun () ->
        Lams_sim.Comm_sets.build ~src_layout:lay
          ~src_section:(Section.make ~lo:(-1) ~hi:8 ~stride:1) ~dst_layout:lay
          ~dst_section:(Section.make ~lo:0 ~hi:9 ~stride:1));
    (* multidim *)
    raises_invalid "Md_array rank mismatch" (fun () ->
        Lams_multidim.Md_array.create ~dims:[| 4; 4 |]
          ~dists:[| Distribution.Block |]
          ~grid:(Proc_grid.create [| 2; 2 |]));
    raises_invalid "Md_array not owned" (fun () ->
        let md =
          Lams_multidim.Md_array.create ~dims:[| 8; 8 |]
            ~dists:[| Distribution.Block_cyclic 2; Distribution.Block_cyclic 2 |]
            ~grid:(Proc_grid.create [| 2; 2 |])
        in
        Lams_multidim.Md_array.local_address md ~coords:[| 0; 0 |] [| 2; 2 |]);
    raises_invalid "Aligned below zero" (fun () ->
        Lams_multidim.Aligned.create ~p:2 ~k:4
          ~align:(Alignment.make ~scale:(-1) ~offset:0)
          ~array_size:5);
    raises_invalid "Trapezoid zero stride" (fun () ->
        Lams_multidim.Trapezoid.make ~rows:(Section.whole ~n:4)
          ~col_lo:(Lams_multidim.Trapezoid.const 0)
          ~col_hi:(Lams_multidim.Trapezoid.const 3)
          ~col_stride:0 ());
    raises_invalid "Diagonal count" (fun () ->
        Lams_multidim.Diagonal.make ~start:[| 0 |] ~steps:[| 1 |] ~count:0);
    (* util *)
    raises_invalid "Prng.pick empty" (fun () ->
        Lams_util.Prng.pick (Lams_util.Prng.create 1L) [||]);
    raises_invalid "Timer.best_of bad repeats" (fun () ->
        Lams_util.Timer.best_of ~repeats:0 (fun () -> ()));
    raises_invalid "Stats.summarize empty" (fun () ->
        Lams_util.Stats.summarize [||]) ]
