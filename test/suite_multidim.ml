open Lams_dist
open Lams_multidim

(* --- Md_array --- *)

let grid_2x2 = Proc_grid.create [| 2; 2 |]

let md_16x12 =
  Md_array.create ~dims:[| 16; 12 |]
    ~dists:[| Distribution.Block_cyclic 2; Distribution.Block_cyclic 3 |]
    ~grid:grid_2x2

let test_md_ownership () =
  (* dim 0: cyclic(2) on 2 procs: index 5 -> (5 mod 4)/2 = 0;
     dim 1: cyclic(3) on 2 procs: index 7 -> (7 mod 6)/3 = 0. *)
  Tutil.check_int_array "coords of (5,7)" [| 0; 0 |]
    (Md_array.owner_coords md_16x12 [| 5; 7 |]);
  Tutil.check_int "rank" 0 (Md_array.owner_rank md_16x12 [| 5; 7 |]);
  Tutil.check_int_array "coords of (2,3)" [| 1; 1 |]
    (Md_array.owner_coords md_16x12 [| 2; 3 |])

let test_md_extents () =
  (* dim 0: 16 elements cyclic(2) over 2 procs -> 8 each;
     dim 1: 12 elements cyclic(3) over 2 procs -> 6 each. *)
  Array.iter
    (fun coords ->
      Tutil.check_int_array "extents" [| 8; 6 |]
        (Md_array.local_extents md_16x12 ~coords);
      Tutil.check_int "size" 48 (Md_array.local_size md_16x12 ~coords))
    [| [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] |]

let test_md_local_address_bijective () =
  (* Across each node, local addresses of owned elements are exactly
     0 .. local_size-1. *)
  for c0 = 0 to 1 do
    for c1 = 0 to 1 do
      let coords = [| c0; c1 |] in
      let seen = Hashtbl.create 64 in
      for i = 0 to 15 do
        for j = 0 to 11 do
          let idx = [| i; j |] in
          if Md_array.owner_coords md_16x12 idx = coords then begin
            let a = Md_array.local_address md_16x12 ~coords idx in
            Tutil.check_bool "fresh" false (Hashtbl.mem seen a);
            Hashtbl.add seen a ()
          end
        done
      done;
      Tutil.check_int "covered" 48 (Hashtbl.length seen)
    done
  done

let test_md_traverse_against_filter () =
  let sections =
    [| Section.make ~lo:1 ~hi:14 ~stride:3; Section.make ~lo:0 ~hi:11 ~stride:2 |]
  in
  for c0 = 0 to 1 do
    for c1 = 0 to 1 do
      let coords = [| c0; c1 |] in
      (* Expected: row-major filter of the Cartesian product. *)
      let expected = ref [] in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              let idx = [| i; j |] in
              if Md_array.owner_coords md_16x12 idx = coords then
                expected :=
                  (i, j, Md_array.local_address md_16x12 ~coords idx)
                  :: !expected)
            (Section.to_list sections.(1)))
        (Section.to_list sections.(0));
      let expected = List.rev !expected in
      let got = ref [] in
      Md_array.traverse_owned md_16x12 ~sections ~coords
        ~f:(fun ~global ~local ->
          got := (global.(0), global.(1), local) :: !got);
      let got = List.rev !got in
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "node (%d,%d)" c0 c1)
        expected got
    done
  done

let test_md_inner_gap_table () =
  let sections =
    [| Section.make ~lo:0 ~hi:15 ~stride:1; Section.make ~lo:0 ~hi:11 ~stride:2 |]
  in
  let t = Md_array.inner_gap_table md_16x12 ~sections ~coords:[| 0; 0 |] in
  Tutil.check_bool "non-empty" true (t.Lams_core.Access_table.length > 0)

let test_md_rank_mismatch () =
  Alcotest.check_raises "bad rank"
    (Invalid_argument "Md_array.owner_coords: rank mismatch") (fun () ->
      ignore (Md_array.owner_coords md_16x12 [| 1 |]))

let prop_md_traverse_count =
  Tutil.qtest ~count:60 "traverse visits each owned element exactly once"
    QCheck2.Gen.(
      let* p0 = int_range 1 3 and* p1 = int_range 1 3 in
      let* k0 = int_range 1 4 and* k1 = int_range 1 4 in
      let* s0 = int_range 1 4 and* s1 = int_range 1 4 in
      return (p0, p1, k0, k1, s0, s1))
    (fun (p0, p1, k0, k1, s0, s1) ->
      let dims = [| 12; 10 |] in
      let md =
        Md_array.create ~dims
          ~dists:[| Distribution.Block_cyclic k0; Distribution.Block_cyclic k1 |]
          ~grid:(Proc_grid.create [| p0; p1 |])
      in
      let sections =
        [| Section.make ~lo:0 ~hi:11 ~stride:s0;
           Section.make ~lo:1 ~hi:9 ~stride:s1 |]
      in
      if Section.is_empty sections.(1) then true
      else begin
        let total = ref 0 in
        for c0 = 0 to p0 - 1 do
          for c1 = 0 to p1 - 1 do
            Md_array.traverse_owned md ~sections ~coords:[| c0; c1 |]
              ~f:(fun ~global:_ ~local:_ -> incr total)
          done
        done;
        !total = Section.count sections.(0) * Section.count sections.(1)
      end)

(* --- Md_store --- *)

let test_md_store_roundtrip () =
  let t =
    Md_store.create ~dims:[| 9; 7 |]
      ~dists:[| Distribution.Block_cyclic 2; Distribution.Cyclic |]
      ~grid:(Proc_grid.create [| 2; 3 |])
  in
  Md_store.init t ~f:(fun idx -> float_of_int ((idx.(0) * 100) + idx.(1)));
  for i = 0 to 8 do
    for j = 0 to 6 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "(%d,%d)" i j)
        (float_of_int ((i * 100) + j))
        (Md_store.get t [| i; j |])
    done
  done;
  (* gather is row-major. *)
  let g = Md_store.gather t in
  Alcotest.(check (float 0.)) "gather idx" 203. g.((2 * 7) + 3)

let test_md_store_section_ops () =
  let t =
    Md_store.create ~dims:[| 12; 10 |]
      ~dists:[| Distribution.Block_cyclic 3; Distribution.Block_cyclic 2 |]
      ~grid:(Proc_grid.create [| 2; 2 |])
  in
  let sections =
    [| Section.make ~lo:0 ~hi:11 ~stride:2; Section.make ~lo:1 ~hi:9 ~stride:3 |]
  in
  Md_store.fill_section t ~sections 5.;
  (* 6 rows x 3 cols = 18 cells at 5. *)
  Alcotest.(check (float 1e-9)) "sum" 90. (Md_store.sum_section t ~sections);
  Md_store.map_section t ~sections ~f:(fun v -> v +. 1.);
  Alcotest.(check (float 1e-9)) "sum after map" 108.
    (Md_store.sum_section t ~sections);
  (* Off-section cells untouched. *)
  Alcotest.(check (float 0.)) "off" 0. (Md_store.get t [| 1; 1 |]);
  (* Reference check against a dense model. *)
  let model = Array.make_matrix 12 10 0. in
  Section.iter (Section.normalize sections.(0)) ~f:(fun i ->
      Section.iter (Section.normalize sections.(1)) ~f:(fun j ->
          model.(i).(j) <- 6.));
  for i = 0 to 11 do
    for j = 0 to 9 do
      Alcotest.(check (float 0.))
        (Printf.sprintf "model (%d,%d)" i j)
        model.(i).(j)
        (Md_store.get t [| i; j |])
    done
  done

(* --- Aligned --- *)

let test_aligned_identity_matches_plain () =
  (* With the identity alignment, packed addresses are ordinary local
     addresses. *)
  let t =
    Aligned.create ~p:4 ~k:8 ~align:Alignment.identity ~array_size:320
  in
  let lay = Layout.create ~p:4 ~k:8 in
  for i = 0 to 319 do
    let m = Aligned.owner t i in
    Tutil.check_int "owner" (Layout.owner lay i) m;
    Alcotest.(check (option int))
      (Printf.sprintf "addr %d" i)
      (Some (Layout.local_address lay i))
      (Aligned.packed_address t ~m i)
  done

let brute_packed t ~m =
  (* All array indices owned by m, in template-cell order, so position in
     this list = packed address. *)
  let cells = ref [] in
  for i = 0 to t.Aligned.array_size - 1 do
    if Aligned.owner t i = m then cells := i :: !cells
  done;
  (* Ascending template-cell order = ascending cell value. *)
  List.sort
    (fun i1 i2 ->
      compare (Alignment.apply t.Aligned.align i1) (Alignment.apply t.Aligned.align i2))
    (List.rev !cells)

let test_aligned_packed_addresses () =
  let align = Alignment.make ~scale:2 ~offset:1 in
  let t = Aligned.create ~p:4 ~k:8 ~align ~array_size:150 in
  Tutil.check_int "template extent" 300 (Aligned.template_extent t);
  for m = 0 to 3 do
    let owned = brute_packed t ~m in
    Tutil.check_int "packed count" (List.length owned) (Aligned.packed_count t ~m);
    List.iteri
      (fun rank i ->
        Alcotest.(check (option int))
          (Printf.sprintf "m=%d i=%d" m i)
          (Some rank)
          (Aligned.packed_address t ~m i))
      owned
  done

let test_aligned_traverse_and_gaps () =
  let align = Alignment.make ~scale:3 ~offset:2 in
  let t = Aligned.create ~p:3 ~k:4 ~align ~array_size:100 in
  let section = Section.make ~lo:1 ~hi:97 ~stride:4 in
  for m = 0 to 2 do
    (* Reference: section elements owned by m in ascending cell order with
       their packed ranks. *)
    let want =
      List.filter (Section.mem section) (brute_packed t ~m)
      |> List.map (fun i -> (i, Option.get (Aligned.packed_address t ~m i)))
    in
    let got = List.of_seq (Aligned.traverse t ~section ~m) in
    Alcotest.(check (list (pair int int))) (Printf.sprintf "traverse m=%d" m)
      want got;
    (* Gap table periodicity: gaps over the first two periods match. *)
    let table = Aligned.gap_table t ~section ~m in
    let len = table.Lams_core.Access_table.length in
    if len > 0 && List.length got > len + 1 then begin
      let arr = Array.of_list (List.map snd got) in
      for j = 0 to min (len + 3) (Array.length arr - 2) do
        Tutil.check_int
          (Printf.sprintf "gap m=%d j=%d" m j)
          table.Lams_core.Access_table.gaps.(j mod len)
          (arr.(j + 1) - arr.(j))
      done
    end
  done

let prop_aligned_consistent =
  Tutil.qtest ~count:60 "aligned traversal matches brute force"
    QCheck2.Gen.(
      let* p = int_range 1 5 in
      let* k = int_range 1 6 in
      let* scale = int_range 1 4 in
      let* offset = int_range 0 6 in
      let* n = int_range 2 60 in
      let* s = int_range 1 5 in
      let* m = int_range 0 (p - 1) in
      return (p, k, scale, offset, n, s, m))
    ~print:(fun (p, k, scale, offset, n, s, m) ->
      Printf.sprintf "p=%d k=%d align=%d*i+%d n=%d s=%d m=%d" p k scale offset n s m)
    (fun (p, k, scale, offset, n, s, m) ->
      let align = Alignment.make ~scale ~offset in
      let t = Aligned.create ~p ~k ~align ~array_size:n in
      let section = Section.make ~lo:0 ~hi:(n - 1) ~stride:s in
      let want =
        List.filter (Section.mem section) (brute_packed t ~m)
        |> List.map (fun i -> (i, Option.get (Aligned.packed_address t ~m i)))
      in
      List.of_seq (Aligned.traverse t ~section ~m) = want)

let test_aligned_create_validation () =
  Alcotest.check_raises "negative cells"
    (Invalid_argument "Aligned.create: alignment maps below template cell 0")
    (fun () ->
      ignore
        (Aligned.create ~p:2 ~k:4
           ~align:(Alignment.make ~scale:1 ~offset:(-5))
           ~array_size:10))

(* --- Diagonal sections (§8 future work) --- *)

let diag_brute md spec ~coords =
  (* Positions j where every dimension is owned by coords. *)
  let rank = Array.length coords in
  List.filter
    (fun j ->
      let idx =
        Array.init rank (fun d ->
            spec.Diagonal.start.(d) + (j * spec.Diagonal.steps.(d)))
      in
      Md_array.owner_coords md idx = coords)
    (List.init spec.Diagonal.count Fun.id)

let test_diagonal_main () =
  let spec = Diagonal.make ~start:[| 0; 0 |] ~steps:[| 1; 1 |] ~count:12 in
  Tutil.check_bool "in bounds" true (Diagonal.in_bounds md_16x12 spec);
  let total = ref 0 in
  for c0 = 0 to 1 do
    for c1 = 0 to 1 do
      let coords = [| c0; c1 |] in
      let want = diag_brute md_16x12 spec ~coords in
      let got =
        List.concat_map Diagonal.positions (Diagonal.owned_runs md_16x12 spec ~coords)
        |> List.sort compare
      in
      Tutil.check_int_list (Printf.sprintf "node (%d,%d)" c0 c1) want got;
      Tutil.check_int "count" (List.length want)
        (Diagonal.count_owned md_16x12 spec ~coords);
      total := !total + List.length want;
      (* iter_owned agrees with local addressing. *)
      Diagonal.iter_owned md_16x12 spec ~coords ~f:(fun ~j ~global ~local ->
          Tutil.check_bool "j owned" true (List.mem j want);
          Tutil.check_int "local" (Md_array.local_address md_16x12 ~coords global) local)
    done
  done;
  Tutil.check_int "partition" 12 !total

let test_diagonal_validation () =
  Alcotest.check_raises "zero step" (Invalid_argument "Diagonal.make: zero step")
    (fun () -> ignore (Diagonal.make ~start:[| 0; 0 |] ~steps:[| 1; 0 |] ~count:3));
  let off = Diagonal.make ~start:[| 10; 0 |] ~steps:[| 1; 1 |] ~count:12 in
  Tutil.check_bool "out of bounds detected" false (Diagonal.in_bounds md_16x12 off);
  Alcotest.check_raises "runs reject oob"
    (Invalid_argument "Diagonal.owned_runs: diagonal leaves the array")
    (fun () -> ignore (Diagonal.owned_runs md_16x12 off ~coords:[| 0; 0 |]))

let prop_diagonal_matches_brute =
  Tutil.qtest ~count:80 "diagonal runs = brute force"
    QCheck2.Gen.(
      let* p0 = int_range 1 3 and* p1 = int_range 1 3 in
      let* k0 = int_range 1 4 and* k1 = int_range 1 4 in
      let* u0 = oneof [ int_range (-3) (-1); int_range 1 3 ] in
      let* u1 = oneof [ int_range (-3) (-1); int_range 1 3 ] in
      let* count = int_range 1 15 in
      return (p0, p1, k0, k1, u0, u1, count))
    ~print:(fun (p0, p1, k0, k1, u0, u1, count) ->
      Printf.sprintf "grid=(%d,%d) k=(%d,%d) u=(%d,%d) count=%d" p0 p1 k0 k1 u0
        u1 count)
    (fun (p0, p1, k0, k1, u0, u1, count) ->
      let dim0 = 1 + (abs u0 * count) and dim1 = 1 + (abs u1 * count) in
      let md =
        Md_array.create ~dims:[| dim0; dim1 |]
          ~dists:[| Distribution.Block_cyclic k0; Distribution.Block_cyclic k1 |]
          ~grid:(Proc_grid.create [| p0; p1 |])
      in
      let r0 = if u0 > 0 then 0 else dim0 - 1
      and r1 = if u1 > 0 then 0 else dim1 - 1 in
      let spec = Diagonal.make ~start:[| r0; r1 |] ~steps:[| u0; u1 |] ~count in
      let ok = ref (Diagonal.in_bounds md spec) in
      for c0 = 0 to p0 - 1 do
        for c1 = 0 to p1 - 1 do
          let coords = [| c0; c1 |] in
          let want = diag_brute md spec ~coords in
          let got =
            List.concat_map Diagonal.positions (Diagonal.owned_runs md spec ~coords)
            |> List.sort compare
          in
          if want <> got then ok := false
        done
      done;
      !ok)

(* --- Trapezoidal sections (§8 future work) --- *)

let trap_brute md spec ~coords =
  let cells = ref [] in
  Section.iter (Section.normalize spec.Trapezoid.rows) ~f:(fun row ->
      match Trapezoid.row_columns spec row with
      | None -> ()
      | Some cols ->
          Section.iter (Section.normalize cols) ~f:(fun col ->
              if Md_array.owner_coords md [| row; col |] = coords then
                cells := (row, col) :: !cells));
  List.rev !cells

let square_md ~n ~k0 ~k1 ~p0 ~p1 =
  Md_array.create ~dims:[| n; n |]
    ~dists:[| Distribution.Block_cyclic k0; Distribution.Block_cyclic k1 |]
    ~grid:(Proc_grid.create [| p0; p1 |])

let test_trapezoid_triangles () =
  let n = 12 in
  let md = square_md ~n ~k0:2 ~k1:3 ~p0:2 ~p1:2 in
  List.iter
    (fun (name, spec) ->
      Tutil.check_bool (name ^ " bounds") true (Trapezoid.in_bounds md spec);
      Tutil.check_int
        (name ^ " cells")
        (n * (n + 1) / 2)
        (Trapezoid.total_cells spec);
      let covered = ref 0 in
      for c0 = 0 to 1 do
        for c1 = 0 to 1 do
          let coords = [| c0; c1 |] in
          let want = trap_brute md spec ~coords in
          let got = ref [] in
          Trapezoid.iter_owned md spec ~coords ~f:(fun ~row ~col ~local ->
              Tutil.check_int "local" (Md_array.local_address md ~coords [| row; col |]) local;
              got := (row, col) :: !got);
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s node (%d,%d)" name c0 c1)
            want (List.rev !got);
          Tutil.check_int (name ^ " count") (List.length want)
            (Trapezoid.count_owned md spec ~coords);
          covered := !covered + List.length want
        done
      done;
      Tutil.check_int (name ^ " partition") (Trapezoid.total_cells spec) !covered)
    [ ("lower", Trapezoid.lower_triangle ~n); ("upper", Trapezoid.upper_triangle ~n) ]

let test_trapezoid_strided_band () =
  (* A tilted band with stride 2 columns: rows 2..10 step 2,
     columns from i-2 to i+3 step 2. *)
  let md = square_md ~n:16 ~k0:3 ~k1:2 ~p0:2 ~p1:3 in
  let spec =
    Trapezoid.make
      ~rows:(Section.make ~lo:2 ~hi:10 ~stride:2)
      ~col_lo:(Trapezoid.bound ~scale:1 ~offset:(-2))
      ~col_hi:(Trapezoid.bound ~scale:1 ~offset:3)
      ~col_stride:2 ()
  in
  Tutil.check_bool "bounds" true (Trapezoid.in_bounds md spec);
  let covered = ref 0 in
  for c0 = 0 to 1 do
    for c1 = 0 to 2 do
      let coords = [| c0; c1 |] in
      let want = trap_brute md spec ~coords in
      let got = ref [] in
      Trapezoid.iter_owned md spec ~coords ~f:(fun ~row ~col ~local:_ ->
          got := (row, col) :: !got);
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "node (%d,%d)" c0 c1)
        want (List.rev !got);
      covered := !covered + List.length want
    done
  done;
  Tutil.check_int "partition" (Trapezoid.total_cells spec) !covered

let prop_trapezoid_matches_brute =
  Tutil.qtest ~count:50 "trapezoid traversal = brute force"
    QCheck2.Gen.(
      let* n = int_range 4 16 in
      let* k0 = int_range 1 4 and* k1 = int_range 1 4 in
      let* p0 = int_range 1 3 and* p1 = int_range 1 3 in
      let* stride = int_range 1 3 in
      let* lower = bool in
      return (n, k0, k1, p0, p1, stride, lower))
    (fun (n, k0, k1, p0, p1, stride, lower) ->
      let md = square_md ~n ~k0 ~k1 ~p0 ~p1 in
      let spec =
        if lower then
          Trapezoid.make ~rows:(Section.whole ~n)
            ~col_lo:(Trapezoid.const 0)
            ~col_hi:(Trapezoid.bound ~scale:1 ~offset:0)
            ~col_stride:stride ()
        else
          Trapezoid.make ~rows:(Section.whole ~n)
            ~col_lo:(Trapezoid.bound ~scale:1 ~offset:0)
            ~col_hi:(Trapezoid.const (n - 1))
            ~col_stride:stride ()
      in
      let ok = ref true in
      for c0 = 0 to p0 - 1 do
        for c1 = 0 to p1 - 1 do
          let coords = [| c0; c1 |] in
          let want = trap_brute md spec ~coords in
          let got = ref [] in
          Trapezoid.iter_owned md spec ~coords ~f:(fun ~row ~col ~local:_ ->
              got := (row, col) :: !got);
          if want <> List.rev !got then ok := false;
          if List.length want <> Trapezoid.count_owned md spec ~coords then
            ok := false
        done
      done;
      !ok)

let suite =
  [ Alcotest.test_case "md ownership" `Quick test_md_ownership;
    Alcotest.test_case "diagonal: main diagonal over 2x2 grid" `Quick
      test_diagonal_main;
    Alcotest.test_case "diagonal: validation" `Quick test_diagonal_validation;
    Alcotest.test_case "trapezoid: triangles" `Quick test_trapezoid_triangles;
    Alcotest.test_case "trapezoid: strided tilted band" `Quick
      test_trapezoid_strided_band;
    prop_diagonal_matches_brute;
    prop_trapezoid_matches_brute;
    Alcotest.test_case "md local extents" `Quick test_md_extents;
    Alcotest.test_case "md local addressing is bijective" `Quick
      test_md_local_address_bijective;
    Alcotest.test_case "md traversal vs row-major filter" `Quick
      test_md_traverse_against_filter;
    Alcotest.test_case "md inner gap table" `Quick test_md_inner_gap_table;
    Alcotest.test_case "md rank validation" `Quick test_md_rank_mismatch;
    Alcotest.test_case "md store roundtrip" `Quick test_md_store_roundtrip;
    Alcotest.test_case "md store section ops" `Quick test_md_store_section_ops;
    Alcotest.test_case "aligned: identity = plain layout" `Quick
      test_aligned_identity_matches_plain;
    Alcotest.test_case "aligned: packed addresses" `Quick
      test_aligned_packed_addresses;
    Alcotest.test_case "aligned: traversal and gap periodicity" `Quick
      test_aligned_traverse_and_gaps;
    Alcotest.test_case "aligned: validation" `Quick
      test_aligned_create_validation;
    prop_md_traverse_count;
    prop_aligned_consistent ]
