open Lams_core
open Lams_dist

(* --- Golden tests from the paper's worked example (Figures 1-6, §5) --- *)

let paper_problem = Problem.make ~p:4 ~k:8 ~l:4 ~s:9

let test_paper_am_table () =
  (* §5: p=4, k=8, l=4, s=9, m=1 gives start = 13 (global element 13,
     offset 13) and AM = [3; 12; 15; 12; 3; 12; 3; 12]. Note the paper's
     "start = 13" is the global index of the first element on processor 1
     (A(13) = A(4 + 1*9)). *)
  let t = Kns.gap_table paper_problem ~m:1 in
  Alcotest.(check (option int)) "start" (Some 13) t.Access_table.start;
  Tutil.check_int "length" 8 t.Access_table.length;
  Tutil.check_int_array "AM"
    [| 3; 12; 15; 12; 3; 12; 3; 12 |]
    t.Access_table.gaps

let test_paper_start_locations () =
  (* Figure 1 has l = 0, s = 9: first elements per processor are
     0 (p0), 9 (p1), 18 (p2), 27 (p3). *)
  let pr = Problem.make ~p:4 ~k:8 ~l:0 ~s:9 in
  List.iter
    (fun (m, want) ->
      let { Start_finder.start; _ } = Start_finder.find pr ~m in
      Alcotest.(check (option int))
        (Printf.sprintf "start m=%d" m)
        (Some want) start)
    [ (0, 0); (1, 9); (2, 18); (3, 27) ]

let test_paper_min_max () =
  (* §5: lines 19-26 find min = 36 and max = 261 for p=4 k=8 s=9, l=0,
     proc 0 (offsets (0,k)). min/max are over the smallest positive index
     per offset in (0, 8). *)
  let pr = Problem.make ~p:4 ~k:8 ~l:0 ~s:9 in
  let locs = Start_finder.first_cycle_locations pr ~m:0 in
  (* Processor 0's window includes offset 0; min/max in the basis scan
     exclude it, so filter multiples of 32*9 (offset-0 locations). *)
  let nonzero = Array.to_list locs |> List.filter (fun g -> g mod 288 <> 0) in
  Tutil.check_int "min" 36 (List.fold_left min max_int nonzero);
  Tutil.check_int "max" 261 (List.fold_left max 0 nonzero)

let test_paper_visited_global_indices () =
  (* Figure 6 marks the points visited for processor 1: the owned elements
     13, 40, 76, 103->139, 175, 202->238, 265->301... the owned sequence on
     processor 1 is 13, 40, 76, 139, 175, 238, 274(?), ... let's check the
     actual owned prefix instead against brute force; the golden facts we
     pin are start=13 and the wrap 301 = 13 + 288. *)
  let elems = Brute.owned_prefix paper_problem ~m:1 ~count:9 in
  Tutil.check_int "first" 13 elems.(0);
  Tutil.check_int "wrap to next cycle" (13 + 288) elems.(8);
  (* Gaps in local memory must match the AM table. *)
  let lay = Problem.layout paper_problem in
  let t = Kns.gap_table paper_problem ~m:1 in
  Array.iteri
    (fun j gap ->
      Tutil.check_int
        (Printf.sprintf "gap %d" j)
        gap
        (Layout.local_address lay elems.(j + 1) - Layout.local_address lay elems.(j)))
    t.Access_table.gaps

let test_special_case_length1 () =
  (* pk | s: every element lands on one offset; owning processor sees a
     constant gap of k*s/d (line 16). p=4 k=8 s=32: d=32, owner of l=5 is
     proc 0. *)
  let pr = Problem.make ~p:4 ~k:8 ~l:5 ~s:32 in
  let t = Kns.gap_table pr ~m:0 in
  Tutil.check_int "length" 1 t.Access_table.length;
  Tutil.check_int_array "AM" [| 8 |] t.Access_table.gaps;
  Alcotest.(check (option int)) "start" (Some 5) t.Access_table.start;
  (* Other processors own nothing. *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "empty m=%d" m)
        true
        (Access_table.equal (Kns.gap_table pr ~m) Access_table.empty))
    [ 1; 2; 3 ]

let test_empty_processor () =
  (* s = 2*pk hits a single offset; processors away from it own nothing. *)
  let pr = Problem.make ~p:2 ~k:4 ~l:0 ~s:16 in
  Tutil.check_int "length p0" 1 (Kns.gap_table pr ~m:0).Access_table.length;
  Tutil.check_int "length p1" 0 (Kns.gap_table pr ~m:1).Access_table.length

let test_start_local_address () =
  (* start=13 on proc 1 of cyclic(8): row 0, block offset 5 -> local 5. *)
  let t = Kns.gap_table paper_problem ~m:1 in
  Alcotest.(check (option int)) "start_local" (Some 5) t.Access_table.start_local

let test_last_location_and_count () =
  let pr = paper_problem in
  (* Owned on proc 1: 13, 40, 76, ... check last <= u against brute. *)
  List.iter
    (fun u ->
      let brute = Brute.owned_up_to pr ~m:1 ~u in
      let want_last =
        if Array.length brute = 0 then None
        else Some brute.(Array.length brute - 1)
      in
      Alcotest.(check (option int))
        (Printf.sprintf "last u=%d" u)
        want_last
        (Start_finder.last_location pr ~m:1 ~u);
      Tutil.check_int
        (Printf.sprintf "count u=%d" u)
        (Array.length brute)
        (Start_finder.count_owned pr ~m:1 ~u))
    [ 0; 12; 13; 14; 100; 288; 301; 1000 ]

let test_hiranandani_applicability () =
  Alcotest.(check bool) "s=9 pk=32 k=8: 9 mod 32 = 9 >= 8" false
    (Hiranandani.applicable paper_problem);
  Alcotest.(check bool) "s=7 applicable" true
    (Hiranandani.applicable (Problem.make ~p:4 ~k:8 ~l:0 ~s:7));
  Alcotest.(check bool) "s=pk+1 applicable" true
    (Hiranandani.applicable (Problem.make ~p:4 ~k:8 ~l:0 ~s:33));
  Alcotest.check_raises "raises outside domain"
    (Invalid_argument "Hiranandani.gap_table: requires s mod pk < k")
    (fun () -> ignore (Hiranandani.gap_table paper_problem ~m:0))

let test_fsm_paper_example () =
  match Fsm.build paper_problem ~m:1 with
  | None -> Alcotest.fail "fsm must exist"
  | Some fsm ->
      Tutil.check_int "start state" 5 fsm.Fsm.start_offset;
      Tutil.check_int "states" 8 fsm.Fsm.length;
      (* Walking 16 steps reproduces AM twice. *)
      Tutil.check_int_array "two periods"
        [| 3; 12; 15; 12; 3; 12; 3; 12; 3; 12; 15; 12; 3; 12; 3; 12 |]
        (Fsm.walk fsm ~steps:16);
      (* All 8 local offsets are reachable here (d=1). *)
      for o = 0 to 7 do
        Alcotest.(check bool) (Printf.sprintf "state %d" o) true
          (Fsm.reachable fsm o)
      done

let test_enumerate_bounded () =
  (* A(4:319:9) on proc 1 must produce exactly the owned elements <= 319. *)
  let want = Brute.owned_up_to paper_problem ~m:1 ~u:319 in
  let got =
    Enumerate.seq paper_problem ~m:1 ~u:319
    |> Seq.map fst |> List.of_seq |> Array.of_list
  in
  Tutil.check_int_array "globals" want got;
  (* And the locals must match the layout map. *)
  let lay = Problem.layout paper_problem in
  Enumerate.iter_bounded paper_problem ~m:1 ~u:319 ~f:(fun g local ->
      Tutil.check_int "local" (Layout.local_address lay g) local)

(* --- Cross-validation properties --- *)

let prop_kns_equals_brute =
  Tutil.qtest ~count:500 "KNS = brute force" Tutil.gen_problem_with_proc
    ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      Access_table.equal (Kns.gap_table pr ~m) (Brute.gap_table pr ~m))

let prop_chatterjee_equals_brute =
  Tutil.qtest ~count:500 "Chatterjee = brute force" Tutil.gen_problem_with_proc
    ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      Access_table.equal (Chatterjee.gap_table pr ~m) (Brute.gap_table pr ~m))

let prop_hiranandani_equals_brute =
  Tutil.qtest ~count:500 "Hiranandani = brute force (on its domain)"
    Tutil.gen_problem_with_proc ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      (not (Hiranandani.applicable pr))
      || Access_table.equal (Hiranandani.gap_table pr ~m) (Brute.gap_table pr ~m))

let prop_gap_positive =
  Tutil.qtest "gaps are strictly positive" Tutil.gen_problem_with_proc
    ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      let t = Kns.gap_table pr ~m in
      Array.for_all (fun g -> g > 0) t.Access_table.gaps)

let prop_cycle_sum_invariant =
  (* One period advances local memory by exactly k * (cycle span / row
     length) = k * s / d cells. *)
  Tutil.qtest "sum of AM over a period = k*s/d" Tutil.gen_problem_with_proc
    ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      let t = Kns.gap_table pr ~m in
      t.Access_table.length = 0
      || Access_table.global_step_sum t
         = Tutil.k_of pksl * Tutil.s_of pksl / Problem.gcd pr)

let prop_points_visited_bound =
  (* §5.1 (Theorem 3) as an executable invariant: at most 2k+1 lattice
     points are examined, the step classes account for every point the
     walk consumes (one per table entry, plus one wasted per eq3 step and
     the final closing point), and the obs counters agree with the
     returned stats. *)
  Tutil.qtest "KNS examines at most 2k+1 points (stats = obs counters)"
    Tutil.gen_problem_with_proc ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      let c_points = Lams_obs.Obs.counter "kns.points_visited" in
      let c_eq1 = Lams_obs.Obs.counter "kns.eq1_steps" in
      let c_eq2 = Lams_obs.Obs.counter "kns.eq2_steps" in
      let c_eq3 = Lams_obs.Obs.counter "kns.eq3_steps" in
      let read () =
        ( Lams_obs.Obs.counter_value c_points,
          Lams_obs.Obs.counter_value c_eq1,
          Lams_obs.Obs.counter_value c_eq2,
          Lams_obs.Obs.counter_value c_eq3 )
      in
      Lams_obs.Obs.set_enabled true;
      Fun.protect ~finally:(fun () -> Lams_obs.Obs.set_enabled false)
      @@ fun () ->
      let p0, e1, e2, e3 = read () in
      let table, stats = Kns.gap_table_with_stats pr ~m in
      let p0', e1', e2', e3' = read () in
      let len = table.Access_table.length in
      stats.Kns.points_visited <= (2 * Tutil.k_of pksl) + 1
      && (len < 2 || stats.Kns.eq1 + stats.Kns.eq2 + stats.Kns.eq3 = len)
      && (len < 2
         || stats.Kns.points_visited = len + 1 + stats.Kns.eq3)
      && p0' - p0 = stats.Kns.points_visited
      && e1' - e1 = stats.Kns.eq1
      && e2' - e2 = stats.Kns.eq2
      && e3' - e3 = stats.Kns.eq3)

let prop_length_bound_and_total =
  (* Each processor's period is <= k, and the periods over all processors
     sum to the cycle's element count pk/d. *)
  Tutil.qtest "per-proc lengths sum to pk/d" Tutil.gen_problem
    ~print:Tutil.print_problem
    (fun pksl ->
      let pr = Tutil.problem_of pksl in
      let total = ref 0 and ok = ref true in
      for m = 0 to pr.Problem.p - 1 do
        let { Start_finder.length; _ } = Start_finder.find pr ~m in
        if length > pr.Problem.k then ok := false;
        total := !total + length
      done;
      !ok && !total = Problem.cycle_indices pr)

let prop_theorem3_steps =
  (* Every consecutive pair of owned elements differs by R, -L or R-L. *)
  Tutil.qtest "Theorem 3 step classification" Tutil.gen_problem_with_proc
    ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      match Kns.basis pr with
      | None -> true
      | Some b ->
          let { Start_finder.length; _ } = Start_finder.find pr ~m in
          if length < 1 then true
          else begin
            let lay = Problem.layout pr in
            let pk = Problem.row_len pr in
            let elems = Brute.owned_prefix pr ~m ~count:(length + 1) in
            let ok = ref true in
            for j = 0 to length - 1 do
              let db =
                (elems.(j + 1) mod pk) - (elems.(j) mod pk)
              and da =
                (elems.(j + 1) / pk) - (elems.(j) / pk)
              in
              let step = Lams_lattice.Point.make ~b:db ~a:da in
              let r = b.Lams_lattice.Basis.r
              and l = b.Lams_lattice.Basis.l in
              let open Lams_lattice.Point in
              if
                not
                  (equal step r || equal step (neg l) || equal step (sub r l))
              then ok := false;
              (* And the memory gap equals the step cost. *)
              if
                Layout.local_address lay elems.(j + 1)
                - Layout.local_address lay elems.(j)
                <> memory_gap ~k:pr.Problem.k step
              then ok := false
            done;
            !ok
          end)

let prop_validate_instances =
  Tutil.qtest ~count:200 "Validate.check_instance finds no mismatch"
    Tutil.gen_problem ~print:Tutil.print_problem
    (fun pksl -> Validate.check_instance (Tutil.problem_of pksl) = [])

let prop_differential_random_seeds =
  (* Differential check Auto = KNS = Chatterjee = Brute (plus enumerator
     and FSM) over random instances for every processor, driven through
     Validate.check_random so a failure reports a seed the CLI can
     replay: lams verify --seed SEED. *)
  Tutil.qtest ~count:12 "Validate.check_random: all algorithms agree"
    QCheck2.Gen.(int_range 1 0x3FFFFFFF)
    ~print:(fun seed ->
      Printf.sprintf "seed=%d (replay: lams verify --seed %d)" seed seed)
    (fun seed ->
      match
        Validate.check_random ~seed:(Int64.of_int seed) ~trials:25 ~max_p:8
          ~max_k:24 ~max_s:512
      with
      | None -> true
      | Some (pr, mm) ->
          QCheck2.Test.fail_reportf "seed %d: %a — %a" seed
            Lams_core.Problem.pp pr Validate.pp_mismatch mm)

let prop_negative_stride_normalisation =
  (* A section with negative stride denotes the same index set; its
     normalised problem must produce the same owned elements. *)
  Tutil.qtest "negative strides normalise correctly" Tutil.gen_problem
    ~print:Tutil.print_problem
    (fun (p, k, l, s) ->
      let lay = Layout.create ~p ~k in
      let count = 7 in
      let hi = l + (s * (count - 1)) in
      let fwd = Section.make ~lo:l ~hi ~stride:s in
      let bwd = Section.make ~lo:hi ~hi:l ~stride:(-s) in
      let pr_f = Problem.of_section lay fwd and pr_b = Problem.of_section lay bwd in
      pr_f = pr_b)

(* --- Shared FSM (the gcd = 1 compile-time specialisation, §6.1) --- *)

let test_shared_fsm_paper () =
  match Shared_fsm.build paper_problem with
  | None -> Alcotest.fail "gcd(9, 32) = 1, shared FSM must exist"
  | Some shared ->
      for m = 0 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "table m=%d" m)
          true
          (Access_table.equal (Shared_fsm.gap_table shared ~m)
             (Kns.gap_table paper_problem ~m))
      done;
      let g, state = Shared_fsm.start shared ~m:1 in
      Tutil.check_int "start" 13 g;
      Tutil.check_int "state" 5 state;
      (* The derived FSM must behave like the directly-built one. *)
      let direct = Option.get (Fsm.build paper_problem ~m:2) in
      let derived = Shared_fsm.fsm_for shared ~m:2 in
      Tutil.check_int_array "walks agree" (Fsm.walk direct ~steps:16)
        (Fsm.walk derived ~steps:16)

let test_shared_fsm_domain () =
  (* d >= k: no FSM (the closed forms win); every d < k: shared tables. *)
  Alcotest.(check bool) "d = pk" true
    (Shared_fsm.build (Problem.make ~p:4 ~k:8 ~l:0 ~s:32) = None);
  Alcotest.(check bool) "d = k" true
    (Shared_fsm.build (Problem.make ~p:4 ~k:8 ~l:0 ~s:24) = None);
  let check_all pr =
    match Shared_fsm.build pr with
    | None -> Alcotest.failf "1 < d < k must build a shared FSM: %a" Problem.pp pr
    | Some shared ->
        for m = 0 to pr.Problem.p - 1 do
          Alcotest.(check bool)
            (Format.asprintf "table %a m=%d" Problem.pp pr m)
            true
            (Access_table.equal (Shared_fsm.gap_table shared ~m)
               (Kns.gap_table pr ~m))
        done
  in
  (* gcd(6, 32) = 2 divides k = 8: all processors share one residue
     class of k/d = 4 states. *)
  check_all (Problem.make ~p:4 ~k:8 ~l:3 ~s:6);
  (* gcd(3, 24) = 3 does not divide k = 8: processors live in different
     residue classes, exercising the lazy class fills. *)
  check_all (Problem.make ~p:3 ~k:8 ~l:1 ~s:3)

let prop_shared_fsm_equals_kns =
  Tutil.qtest ~count:300 "shared FSM = KNS across all d regimes"
    Tutil.gen_problem_with_proc ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      match Shared_fsm.build pr with
      | None -> Problem.gcd pr >= pr.Problem.k
      | Some shared ->
          Access_table.equal (Shared_fsm.gap_table shared ~m) (Kns.gap_table pr ~m))

(* --- Plan cache (process-wide whole-machine table cache) --- *)

let with_clean_cache f =
  Plan_cache.clear ();
  Fun.protect f ~finally:(fun () ->
      Plan_cache.set_capacity Plan_cache.default_capacity;
      Plan_cache.clear ())

let gen_bounded_problem =
  QCheck2.Gen.(
    let* ((p, k, l, s) as pksl) = Tutil.gen_problem in
    let* m = int_range 0 (p - 1) in
    let* extra = int_range 0 (3 * p * k * s) in
    return (pksl, m, l + extra))

let print_bounded_problem (pksl, m, u) =
  Printf.sprintf "%s m=%d u=%d" (Tutil.print_problem pksl) m u

let fsm_agrees a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
      (* The shared delta array may carry extra filled classes, so compare
         behaviour (the walk), not the raw tables. *)
      a.Fsm.start_offset = b.Fsm.start_offset
      && a.Fsm.length = b.Fsm.length
      && Fsm.walk a ~steps:24 = Fsm.walk b ~steps:24
  | _ -> false

let prop_plan_cache_matches_fresh =
  Tutil.qtest ~count:200 "plan cache = fresh construction"
    gen_bounded_problem ~print:print_bounded_problem
    (fun (pksl, m, u) ->
      let pr = Tutil.problem_of pksl in
      let miss = Plan_cache.find pr ~u in
      let hit = Plan_cache.find pr ~u in
      let fresh = Kns.gap_table pr ~m in
      Access_table.equal (Plan_cache.table miss ~m) fresh
      && Access_table.equal (Plan_cache.table hit ~m) fresh
      && Plan_cache.last_location hit ~m = Start_finder.last_location pr ~m ~u
      && fsm_agrees (Plan_cache.fsm hit ~m) (Fsm.build pr ~m))

let test_plan_cache_eviction () =
  (* A capacity-2 cache thrashed by 5 problems must keep answering
     exactly like fresh construction: eviction never changes results. *)
  with_clean_cache (fun () ->
      Plan_cache.set_capacity 2;
      let prs =
        List.map (fun s -> Problem.make ~p:4 ~k:8 ~l:0 ~s) [ 3; 5; 6; 7; 9 ]
      in
      for _round = 1 to 3 do
        List.iter
          (fun pr ->
            let v = Plan_cache.find pr ~u:500 in
            for m = 0 to 3 do
              Alcotest.(check bool)
                (Format.asprintf "thrashed %a m=%d" Problem.pp pr m)
                true
                (Access_table.equal (Plan_cache.table v ~m)
                   (Kns.gap_table pr ~m))
            done)
          prs
      done;
      Alcotest.(check bool) "capacity respected" true (Plan_cache.size () <= 2))

let test_plan_cache_canonicalization () =
  (* Shifting l (and u) by a multiple of cycle_span must hit the same
     entry and rebase correctly. *)
  with_clean_cache (fun () ->
      let span = Problem.cycle_span paper_problem in
      let shift = 2 * span in
      let pr2 =
        Problem.make ~p:4 ~k:8 ~l:(paper_problem.Problem.l + shift) ~s:9
      in
      let v1 = Plan_cache.find paper_problem ~u:319 in
      let v2 = Plan_cache.find pr2 ~u:(319 + shift) in
      Tutil.check_int "v1 unshifted" 0 (Plan_cache.g_shift v1);
      Tutil.check_int "v2 shift" shift (Plan_cache.g_shift v2);
      Tutil.check_int "one shared entry" 1 (Plan_cache.size ());
      for m = 0 to 3 do
        Alcotest.(check bool)
          (Printf.sprintf "rebased table m=%d" m)
          true
          (Access_table.equal (Plan_cache.table v2 ~m) (Kns.gap_table pr2 ~m));
        Alcotest.(check (option int))
          (Printf.sprintf "rebased last m=%d" m)
          (Start_finder.last_location pr2 ~m ~u:(319 + shift))
          (Plan_cache.last_location v2 ~m)
      done)

let test_indexed_random_access () =
  let t = Kns.gap_table paper_problem ~m:1 in
  let it = Access_table.index t in
  let want = Access_table.local_addresses t ~count:50 in
  Array.iteri
    (fun j addr ->
      Tutil.check_int (Printf.sprintf "nth %d" j) addr (Access_table.nth_local it j))
    want;
  Alcotest.check_raises "negative"
    (Invalid_argument "Access_table.nth_local: negative index") (fun () ->
      ignore (Access_table.nth_local it (-1)));
  Alcotest.check_raises "empty"
    (Invalid_argument "Access_table.index: empty table") (fun () ->
      ignore (Access_table.index Access_table.empty))

let prop_indexed_random_access =
  Tutil.qtest "indexed nth_local = sequential replay"
    Tutil.gen_problem_with_proc ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      let t = Kns.gap_table pr ~m in
      t.Access_table.length = 0
      ||
      let it = Access_table.index t in
      let want = Access_table.local_addresses t ~count:40 in
      Array.for_all Fun.id
        (Array.mapi (fun j addr -> Access_table.nth_local it j = addr) want))

(* --- Auto dispatch --- *)

let test_auto_classification () =
  let name pr = Auto.strategy_name (Auto.create pr) in
  Alcotest.(check string) "paper example" "shared FSM (gcd = 1)"
    (name paper_problem);
  Alcotest.(check string) "pk | s" "degenerate (d >= k)"
    (name (Problem.make ~p:4 ~k:8 ~l:0 ~s:32));
  Alcotest.(check string) "d = k" "degenerate (d >= k)"
    (name (Problem.make ~p:4 ~k:8 ~l:0 ~s:24));
  (* gcd(6, 32) = 2: 1 < d < k now also shares tables. *)
  Alcotest.(check string) "1 < d < k" "shared FSM (1 < d < k)"
    (name (Problem.make ~p:4 ~k:8 ~l:0 ~s:6))

let test_auto_lazy () =
  (* Classification must be side-effect-free: the shared FSM is built by
     the first gap_table call, not by create/strategy_name. *)
  let auto = Auto.create paper_problem in
  let forced () =
    match Auto.strategy auto with
    | Auto.Shared l -> Lazy.is_val l
    | Auto.Degenerate -> Alcotest.fail "paper example must classify Shared"
  in
  Alcotest.(check bool) "create builds nothing" false (forced ());
  ignore (Auto.strategy_name auto : string);
  Alcotest.(check bool) "strategy_name builds nothing" false (forced ());
  ignore (Auto.gap_table auto ~m:1 : Access_table.t);
  Alcotest.(check bool) "gap_table forces the build" true (forced ())

let prop_auto_equals_kns =
  Tutil.qtest ~count:400 "Auto dispatch = KNS on every path"
    Tutil.gen_problem_with_proc ~print:Tutil.print_problem_with_proc
    (fun (pksl, m) ->
      let pr = Tutil.problem_of pksl in
      let auto = Auto.create pr in
      Access_table.equal (Auto.gap_table auto ~m) (Kns.gap_table pr ~m))

(* --- Alternative enumeration orders (§7 related work) --- *)

let test_virtual_cyclic_order () =
  let pr = paper_problem in
  let inc = Orders.increasing pr ~m:1 ~u:319
  and vc = Orders.virtual_cyclic pr ~m:1 ~u:319 in
  Tutil.check_bool "same element set" true (Orders.same_set inc vc);
  Tutil.check_bool "increasing really increases" true (Orders.is_increasing inc);
  (* The virtual-cyclic order is NOT increasing here (multiple offset
     classes interleave) — the deficiency §7 points out. *)
  Tutil.check_bool "virtual-cyclic is out of order" false
    (Orders.is_increasing vc);
  (* Classes ascend by offset (8..15); within a class, indices ascend by
     the cycle span (13 then 301). The true start, 13, sits mid-sequence —
     the orders genuinely differ. *)
  Tutil.check_int_array "full virtual-cyclic order"
    [| 40; 265; 202; 139; 76; 13; 301; 238; 175 |]
    vc

let prop_orders_same_set =
  Tutil.qtest "virtual-cyclic = increasing as a set"
    QCheck2.Gen.(
      let* ((p, k, l, s) as pksl) = Tutil.gen_problem in
      let* m = int_range 0 (p - 1) in
      let* extra = int_range 0 (3 * p * k * s) in
      return (pksl, m, l + extra))
    ~print:(fun (pksl, m, u) ->
      Printf.sprintf "%s m=%d u=%d" (Tutil.print_problem pksl) m u)
    (fun (pksl, m, u) ->
      let pr = Tutil.problem_of pksl in
      let inc = Orders.increasing pr ~m ~u
      and vc = Orders.virtual_cyclic pr ~m ~u in
      Orders.same_set inc vc && Orders.is_increasing inc)

let suite =
  [ Alcotest.test_case "paper AM table (p=4 k=8 l=4 s=9 m=1)" `Quick
      test_paper_am_table;
    Alcotest.test_case "indexed random access" `Quick
      test_indexed_random_access;
    prop_indexed_random_access;
    Alcotest.test_case "auto dispatch classification" `Quick
      test_auto_classification;
    Alcotest.test_case "auto classification is lazy" `Quick test_auto_lazy;
    prop_auto_equals_kns;
    prop_plan_cache_matches_fresh;
    Alcotest.test_case "plan cache eviction is invisible" `Quick
      test_plan_cache_eviction;
    Alcotest.test_case "plan cache canonicalization" `Quick
      test_plan_cache_canonicalization;
    Alcotest.test_case "virtual-cyclic order (Gupta et al.)" `Quick
      test_virtual_cyclic_order;
    prop_orders_same_set;
    Alcotest.test_case "shared FSM on the paper example" `Quick
      test_shared_fsm_paper;
    Alcotest.test_case "shared FSM domain" `Quick test_shared_fsm_domain;
    prop_shared_fsm_equals_kns;
    Alcotest.test_case "paper start locations (Figure 1)" `Quick
      test_paper_start_locations;
    Alcotest.test_case "paper min/max of initial cycle" `Quick
      test_paper_min_max;
    Alcotest.test_case "paper visited elements & gaps (Figure 6)" `Quick
      test_paper_visited_global_indices;
    Alcotest.test_case "special case length = 1" `Quick
      test_special_case_length1;
    Alcotest.test_case "processors owning nothing" `Quick test_empty_processor;
    Alcotest.test_case "start local address" `Quick test_start_local_address;
    Alcotest.test_case "last location / count vs brute" `Quick
      test_last_location_and_count;
    Alcotest.test_case "Hiranandani applicability" `Quick
      test_hiranandani_applicability;
    Alcotest.test_case "FSM tables on the paper example" `Quick
      test_fsm_paper_example;
    Alcotest.test_case "bounded enumeration" `Quick test_enumerate_bounded;
    prop_kns_equals_brute;
    prop_chatterjee_equals_brute;
    prop_hiranandani_equals_brute;
    prop_gap_positive;
    prop_cycle_sum_invariant;
    prop_points_visited_bound;
    prop_length_bound_and_total;
    prop_theorem3_steps;
    prop_validate_instances;
    prop_differential_random_seeds;
    prop_negative_stride_normalisation ]
