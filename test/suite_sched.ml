open Lams_dist
open Lams_sim
open Lams_sched

(* Brute-force local-address oracle for one side of a transfer: the
   pack buffer holds the transfer's elements in traversal order, so
   collect every position the progressions name, sort, and place each
   with Layout.local_address. *)
let oracle_addresses ~layout ~section runs =
  let positions =
    List.concat_map Comm_sets.positions runs |> List.sort compare
  in
  Array.of_list
    (List.map
       (fun j -> Layout.local_address layout (Section.nth section j))
       positions)

let init_src ~n ~p ~k =
  Darray.of_array ~name:"ss" ~p ~dist:(Distribution.Block_cyclic k)
    (Array.init n (fun g -> float_of_int ((2 * g) + 1)))

let fresh_dst ~n ~p ~k =
  Darray.create ~name:"sd" ~n ~p ~dist:(Distribution.Block_cyclic k)

let test_build_golden () =
  (* The paper-style machine (p=4, k=3) remapped onto cyclic(5). *)
  let src_layout = Layout.create ~p:4 ~k:3
  and dst_layout = Layout.create ~p:4 ~k:5 in
  let sec = Section.make ~lo:0 ~hi:59 ~stride:1 in
  let sched =
    Schedule.build ~src_layout ~src_section:sec ~dst_layout ~dst_section:sec
  in
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Tutil.check_int "total" 60 sched.Schedule.total;
  Tutil.check_bool "coloring meets the Konig bound" true
    (Schedule.rounds_count sched <= sched.Schedule.max_degree);
  Tutil.check_int "local + cross = total" 60
    (Schedule.cross_elements sched
    + List.fold_left
        (fun a (tr : Schedule.transfer) -> a + tr.Schedule.elements)
        0 sched.Schedule.locals)

let test_pp_golden () =
  let src_layout = Layout.create ~p:2 ~k:2
  and dst_layout = Layout.create ~p:2 ~k:3 in
  let sec = Section.make ~lo:0 ~hi:11 ~stride:1 in
  let sched =
    Schedule.build ~src_layout ~src_section:sec ~dst_layout ~dst_section:sec
  in
  Alcotest.(check string)
    "deterministic rendering"
    "12 elements (6 local in 2 pairs), 1 rounds, max degree 1\n\
    \  round 0: 0->1 (3 el, 2+2 blk) 1->0 (3 el, 2+2 blk)\n"
    (Format.asprintf "%a" Schedule.pp sched)

(* Both section strides (descending → step = -1 blocks, ascending →
   step = 1), each across all three marshalling paths: the blit/rev-blit
   Fbuf path, its element-at-a-time twin, and the legacy [float array]
   oracle with the hoisted-bounds reversed loop. All must agree with the
   positional address oracle and with each other. *)
let pack_roundtrip ~section ~n =
  let layout = Layout.create ~p:3 ~k:4 in
  let cs =
    Comm_sets.build ~src_layout:layout ~src_section:section
      ~dst_layout:(Layout.create ~p:2 ~k:5)
      ~dst_section:(Section.make ~lo:0 ~hi:(Section.count section - 1) ~stride:1)
  in
  List.iter
    (fun (tr : Comm_sets.transfer) ->
      let side =
        Pack.build_side ~layout ~section ~proc:tr.Comm_sets.src_proc
          tr.Comm_sets.runs
      in
      Tutil.check_int "side elements" tr.Comm_sets.elements
        side.Pack.elements;
      Tutil.check_int_array "block walk = positional oracle"
        (oracle_addresses ~layout ~section tr.Comm_sets.runs)
        (Pack.local_addresses side);
      Tutil.check_bool "both strides appear in this fixture somewhere" true
        (List.for_all
           (fun (b : Pack.block) -> b.Pack.step = 1 || b.Pack.step = -1)
           side.Pack.blocks);
      (* pack into a buffer, unpack into a scratch store: the blocks
         must move exactly the values the addresses name. *)
      let extent = Layout.local_extent layout ~n ~proc:tr.Comm_sets.src_proc in
      let data_f = Array.init extent (fun a -> float_of_int (1000 + a)) in
      let data = Lams_util.Fbuf.of_array data_f in
      let buf = Lams_util.Fbuf.create side.Pack.elements in
      Pack.pack side ~data ~buf;
      let buf_el = Lams_util.Fbuf.create side.Pack.elements in
      Pack.pack_elementwise side ~data ~buf:buf_el;
      let buf_f = Array.make side.Pack.elements 0. in
      Pack.pack_floats side ~data:data_f ~buf:buf_f;
      Tutil.check_bool "blit pack = elementwise pack" true
        (Lams_util.Fbuf.equal buf buf_el);
      Tutil.check_bool "blit pack = float-array pack" true
        (Lams_util.Fbuf.equal buf (Lams_util.Fbuf.of_array buf_f));
      let back = Lams_util.Fbuf.init extent (fun _ -> -1.) in
      Pack.unpack side ~buf ~data:back;
      let back_f = Array.make extent (-1.) in
      Pack.unpack_floats side ~buf:buf_f ~data:back_f;
      Array.iter
        (fun a ->
          Alcotest.(check (float 0.))
            "roundtrip value" data_f.(a)
            (Lams_util.Fbuf.get back a);
          Alcotest.(check (float 0.))
            "float-array roundtrip value" data_f.(a) back_f.(a))
        (Pack.local_addresses side))
    cs.Comm_sets.transfers

let test_pack_roundtrip_negative_stride () =
  pack_roundtrip ~section:(Section.make ~lo:70 ~hi:1 ~stride:(-3)) ~n:71

let test_pack_roundtrip_positive_stride () =
  pack_roundtrip ~section:(Section.make ~lo:1 ~hi:70 ~stride:3) ~n:71

let gen_redistribution =
  QCheck2.Gen.(
    let* sp = int_range 1 8 in
    let* sk = int_range 1 12 in
    let* dp = int_range 1 8 in
    let* dk = int_range 1 12 in
    let* lo = int_range 0 40 in
    let* count = int_range 1 120 in
    let* stride = int_range 1 5 in
    let* reversed = bool in
    return (sp, sk, dp, dk, lo, count, stride, reversed))

let print_redistribution (sp, sk, dp, dk, lo, count, stride, reversed) =
  Printf.sprintf "sp=%d sk=%d dp=%d dk=%d lo=%d count=%d stride=%d rev=%b" sp
    sk dp dk lo count stride reversed

let sections_of (_, _, _, _, lo, count, stride, reversed) =
  let hi = lo + ((count - 1) * stride) in
  let src_section = Section.make ~lo ~hi ~stride in
  let dst_section =
    if reversed then Section.make ~lo:hi ~hi:lo ~stride:(-stride)
    else src_section
  in
  (src_section, dst_section, hi + 1)

let prop_executor_equals_legacy =
  Tutil.qtest "scheduled redistribution = legacy copy" gen_redistribution
    ~print:print_redistribution
    (fun ((sp, sk, dp, dk, _, _, _, _) as case) ->
      let src_section, dst_section, n = sections_of case in
      let src = init_src ~n ~p:sp ~k:sk in
      let legacy = fresh_dst ~n ~p:dp ~k:dk in
      let scheduled = fresh_dst ~n ~p:dp ~k:dk in
      ignore
        (Section_ops.copy ~src ~src_section ~dst:legacy ~dst_section ()
          : Network.t);
      ignore
        (Executor.redistribute ~src ~src_section ~dst:scheduled ~dst_section
           ()
          : Network.t);
      Darray.equal_contents legacy scheduled)

let prop_rounds_contention_free =
  Tutil.qtest "rounds are valid and execute contention-free"
    gen_redistribution ~print:print_redistribution
    (fun ((sp, sk, dp, dk, _, _, _, _) as case) ->
      let src_section, dst_section, n = sections_of case in
      let sched =
        Schedule.build
          ~src_layout:(Layout.create ~p:sp ~k:sk)
          ~src_section
          ~dst_layout:(Layout.create ~p:dp ~k:dk)
          ~dst_section
      in
      (match Schedule.validate sched with
      | Ok () -> ()
      | Error msg -> QCheck2.Test.fail_report msg);
      let src = init_src ~n ~p:sp ~k:sk in
      let dst = fresh_dst ~n ~p:dp ~k:dk in
      let net = Executor.run sched ~src ~dst in
      Schedule.rounds_count sched <= sched.Schedule.max_degree
      && Network.max_congestion net <= 1
      && Network.max_link_in_flight net <= 1)

let test_parallel_equals_sequential () =
  let src_section = Section.make ~lo:3 ~hi:402 ~stride:3 in
  let n = 403 in
  let src = init_src ~n ~p:6 ~k:4 in
  let seq = fresh_dst ~n ~p:5 ~k:7 in
  let par = fresh_dst ~n ~p:5 ~k:7 in
  ignore
    (Executor.redistribute ~src ~src_section ~dst:seq
       ~dst_section:src_section ()
      : Network.t);
  ignore
    (Executor.redistribute ~parallel:true ~src ~src_section ~dst:par
       ~dst_section:src_section ()
      : Network.t);
  Tutil.check_bool "parallel executor = sequential" true
    (Darray.equal_contents seq par)

let test_overlapping_shift () =
  (* src and dst alias: A(1:99) = A(0:98) must read everything before
     writing anything, like the legacy two-phase exchange. *)
  let n = 100 in
  let a = init_src ~n ~p:4 ~k:3 in
  let want =
    Array.init n (fun g ->
        if g = 0 then float_of_int ((2 * g) + 1)
        else float_of_int ((2 * (g - 1)) + 1))
  in
  ignore
    (Executor.redistribute ~src:a
       ~src_section:(Section.make ~lo:0 ~hi:(n - 2) ~stride:1)
       ~dst:a
       ~dst_section:(Section.make ~lo:1 ~hi:(n - 1) ~stride:1)
       ()
      : Network.t);
  Alcotest.(check (array (float 0.))) "shifted in place" want (Darray.gather a)

let test_congestion_scheduled_vs_legacy () =
  (* cyclic(1) -> cyclic(32) on p=8: every destination drains messages
     from many sources. The unscheduled exchange piles them up in the
     mailbox; the round schedule never exceeds depth 1. *)
  let n = 512 in
  let sec = Section.whole ~n in
  let src = init_src ~n ~p:8 ~k:1 in
  let legacy = fresh_dst ~n ~p:8 ~k:32 in
  let scheduled = fresh_dst ~n ~p:8 ~k:32 in
  let legacy_net =
    Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
  in
  let sched_net =
    Executor.redistribute ~src ~src_section:sec ~dst:scheduled
      ~dst_section:sec ()
  in
  Tutil.check_bool "legacy congests" true
    (Network.max_congestion legacy_net > 1);
  Tutil.check_int "scheduled stays at depth 1" 1
    (Network.max_congestion sched_net)

let with_counters f =
  Lams_obs.Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Lams_obs.Obs.set_enabled false) f

let test_validate_rejects_excess_rounds () =
  (* A cross swap on p=2, k=1: 0->1 and 1->0, each rank sending and
     receiving once, so Δ = 1 and the coloring packs both transfers
     into one round. Splitting them into singleton rounds delivers the
     same elements conflict-free in 2 rounds > Δ — exactly the slack the
     old Δ+1 tolerance let through and validate must now reject. *)
  let lay = Layout.create ~p:2 ~k:1 in
  let sched =
    Schedule.build ~src_layout:lay
      ~src_section:(Section.make ~lo:0 ~hi:1 ~stride:1) ~dst_layout:lay
      ~dst_section:(Section.make ~lo:1 ~hi:0 ~stride:(-1))
  in
  Tutil.check_int "max degree" 1 sched.Schedule.max_degree;
  (match sched.Schedule.rounds with
  | [ [ t1; t2 ] ] -> begin
      let split = { sched with Schedule.rounds = [ [ t1 ]; [ t2 ] ] } in
      match Schedule.validate split with
      | Error msg ->
          Alcotest.(check string)
            "names the Konig bound" "2 rounds exceed max degree 1" msg
      | Ok () -> Alcotest.fail "validate accepted rounds > max degree"
    end
  | _ -> Alcotest.fail "expected one round of two cross transfers");
  match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_cache_hit_on_translation () =
  Cache.clear ();
  (* A translation is invisible to the cache iff it is a common multiple
     of both sides' cycle spans: lcm(4*3, 3*5) = 60. *)
  let shift = 60 in
  let n = 200 in
  let c_hits = Lams_obs.Obs.counter "sched.cache.hits" in
  let c_misses = Lams_obs.Obs.counter "sched.cache.misses" in
  with_counters (fun () ->
      let hits0 = Lams_obs.Obs.counter_value c_hits
      and misses0 = Lams_obs.Obs.counter_value c_misses in
      let src = init_src ~n ~p:4 ~k:3 in
      let run lo =
        let sec = Section.make ~lo ~hi:(lo + 35) ~stride:1 in
        let dst = fresh_dst ~n ~p:3 ~k:5 in
        ignore
          (Executor.redistribute ~src ~src_section:sec ~dst ~dst_section:sec
             ()
            : Network.t);
        (* The rebased schedule must still place values correctly. *)
        for g = lo to lo + 35 do
          Alcotest.(check (float 0.))
            "rebased placement"
            (float_of_int ((2 * g) + 1))
            (Darray.get dst g)
        done
      in
      run 0;
      run shift;
      Tutil.check_int "second lookup hits" (hits0 + 1)
        (Lams_obs.Obs.counter_value c_hits);
      Tutil.check_int "one inspector run" (misses0 + 1)
        (Lams_obs.Obs.counter_value c_misses))

let test_cache_eviction () =
  Cache.clear ();
  let saved = Cache.capacity () in
  Fun.protect ~finally:(fun () ->
      Cache.set_capacity saved;
      Cache.clear ())
  @@ fun () ->
  Cache.set_capacity 2;
  let src_layout = Layout.create ~p:2 ~k:3 in
  let find k' =
    let sec = Section.make ~lo:0 ~hi:29 ~stride:1 in
    ignore
      (Cache.find ~src_layout ~src_section:sec
         ~dst_layout:(Layout.create ~p:2 ~k:k')
         ~dst_section:sec
        : Schedule.t)
  in
  let c_evictions = Lams_obs.Obs.counter "sched.cache.evictions" in
  with_counters (fun () ->
      let ev0 = Lams_obs.Obs.counter_value c_evictions in
      find 1;
      find 2;
      Tutil.check_int "at capacity" 2 (Cache.size ());
      find 4;
      Tutil.check_int "still at capacity" 2 (Cache.size ());
      Tutil.check_int "one eviction" (ev0 + 1)
        (Lams_obs.Obs.counter_value c_evictions));
  Cache.clear ();
  Tutil.check_int "cleared" 0 (Cache.size ())

let suite =
  [ Alcotest.test_case "schedule golden (p=4 k=3 -> k=5)" `Quick
      test_build_golden;
    Alcotest.test_case "schedule pp golden" `Quick test_pp_golden;
    Alcotest.test_case "pack roundtrip, negative stride" `Quick
      test_pack_roundtrip_negative_stride;
    Alcotest.test_case "pack roundtrip, positive stride" `Quick
      test_pack_roundtrip_positive_stride;
    prop_executor_equals_legacy;
    prop_rounds_contention_free;
    Alcotest.test_case "parallel executor = sequential" `Quick
      test_parallel_equals_sequential;
    Alcotest.test_case "overlapping in-array shift" `Quick
      test_overlapping_shift;
    Alcotest.test_case "congestion: scheduled 1 vs legacy > 1" `Quick
      test_congestion_scheduled_vs_legacy;
    Alcotest.test_case "validate: rounds > max degree rejected" `Quick
      test_validate_rejects_excess_rounds;
    Alcotest.test_case "cache hit on translated sections" `Quick
      test_cache_hit_on_translation;
    Alcotest.test_case "cache eviction accounting" `Quick
      test_cache_eviction ]
