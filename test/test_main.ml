let () =
  Alcotest.run "lams"
    [ ("util", Suite_util.suite);
      ("obs", Suite_obs.suite);
      ("numeric", Suite_numeric.suite);
      ("lattice", Suite_lattice.suite);
      ("sort", Suite_sort.suite);
      ("dist", Suite_dist.suite);
      ("core", Suite_core.suite);
      ("codegen", Suite_codegen.suite);
      ("golden", Suite_golden.suite);
      ("native", Suite_native.suite);
      ("sim", Suite_sim.suite);
      ("sched", Suite_sched.suite);
      ("dataplane", Suite_dataplane.suite);
      ("multidim", Suite_multidim.suite);
      ("hpf", Suite_hpf.suite);
      ("check", Suite_check.suite);
      ("serve", Suite_serve.suite);
      ("chaos", Suite_chaos.suite);
      ("adaptive", Suite_adaptive.suite);
      ("stress", Suite_stress.suite);
      ("errors", Suite_errors.suite) ]
