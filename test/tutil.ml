(* Shared helpers for the test suites. *)

let qtest ?(count = 200) name gen ?print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))
let check_int_array = Alcotest.(check (array int))

(* Generators for problem-shaped inputs. Sizes stay modest so the
   brute-force oracles remain fast, but cover the degenerate corners the
   paper calls out: p = 1, k = 1, pk | s, d >= k, s > pk, l > pk, ... *)
let gen_pks =
  QCheck2.Gen.(
    let* p = int_range 1 12 in
    let* k = int_range 1 24 in
    let* s = int_range 1 (4 * p * k) in
    return (p, k, s))

let gen_problem =
  QCheck2.Gen.(
    let* p, k, s = gen_pks in
    let* l = int_range 0 (3 * p * k) in
    return (p, k, l, s))

let gen_problem_with_proc =
  QCheck2.Gen.(
    let* ((p, _, _, _) as pksl) = gen_problem in
    let* m = int_range 0 (p - 1) in
    return (pksl, m))

let print_problem (p, k, l, s) = Printf.sprintf "p=%d k=%d l=%d s=%d" p k l s

let print_problem_with_proc (pksl, m) =
  Printf.sprintf "%s m=%d" (print_problem pksl) m

let problem_of (p, k, l, s) = Lams_core.Problem.make ~p ~k ~l ~s
let k_of (_, k, _, _) = k
let s_of (_, _, _, s) = s
