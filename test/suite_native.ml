(* The native C conformance harness (Lams_native.Harness): toolchain
   probing and its clean degradation, the deterministic fill stream,
   and the differential checks themselves — compiled node code and
   whole programs diffed bit-for-bit against the interpreter. Every
   test that needs a C compiler accepts [No_cc] as a pass, so the
   suite skips (never fails) on hosts without one. *)

open Lams_dist
module H = Lams_native.Harness
module Problem = Lams_core.Problem

let outcome_line o = Format.asprintf "%a" H.pp_outcome o

(* [Agree] with any count, or a clean skip; anything else fails with
   the harness's own diagnosis. *)
let expect_agreement what o =
  match o with
  | H.Agree _ | H.No_cc -> ()
  | o -> Alcotest.failf "%s: %s" what (outcome_line o)

let test_probe_disabled () =
  Tutil.check_bool "empty LAMS_CC disables the probe"
    true
    (H.probe ~env:(Some "") [ "cc"; "gcc" ] = None)

let test_probe_missing () =
  Tutil.check_bool "nonexistent candidates probe to None" true
    (H.probe ~env:None [ "lams-definitely-not-a-compiler" ] = None)

let test_fill_deterministic () =
  let a = Lams_util.Fbuf.create 257 and b = Lams_util.Fbuf.create 257 in
  H.fill_array ~seed:77L a;
  H.fill_array ~seed:77L b;
  Tutil.check_bool "same seed, same stream" true (Lams_util.Fbuf.equal a b);
  H.fill_array ~seed:78L b;
  Tutil.check_bool "different seed, different stream" true
    (not (Lams_util.Fbuf.equal a b));
  Array.iter
    (fun v ->
      Tutil.check_bool "fill values stay in [1, 1024]" true
        (v >= 1.0 && v <= 1024.0);
      Tutil.check_bool "fill values never collide with the sentinel" true
        (v <> H.sentinel))
    (Lams_util.Fbuf.to_array a)

(* The paper's running example: every processor, all five variants. *)
let test_paper_instance () =
  let pr = Problem.make ~p:4 ~k:8 ~l:4 ~s:9 in
  expect_agreement "paper instance" (H.check_problem pr ~u:319)

(* u < l: nobody owns anything, so there is nothing to compile. *)
let test_empty_section () =
  let pr = Problem.make ~p:4 ~k:8 ~l:100 ~s:3 in
  match H.check_problem pr ~u:42 with
  | H.Agree { compared } -> Tutil.check_int "no cases" 0 compared
  | H.No_cc -> ()
  | o -> Alcotest.failf "empty section: %s" (outcome_line o)

(* Degenerate-basis regime (d >= k): the table-free variant emits a
   single constant-gap loop — make sure that C path runs too. *)
let test_degenerate_basis () =
  let pr = Problem.make ~p:2 ~k:4 ~l:0 ~s:8 in
  expect_agreement "degenerate basis" (H.check_problem pr ~u:63)

(* A descending section: the plan is built on the normalized (reversed,
   positive-stride) sequence, and the compiled loops must walk exactly
   those addresses. This is the emit-side closure of the step = -1
   block path that Runs/Pack cover in-process. *)
let test_descending_section () =
  let lay = Layout.create ~p:3 ~k:5 in
  let sec = Section.make ~lo:88 ~hi:4 ~stride:(-7) in
  let pr = Problem.of_section lay sec in
  let u = (Section.normalize sec).Section.hi in
  expect_agreement "descending section" (H.check_problem pr ~u)

(* Whole program with a descending forall reference (A(319-2*i)): the
   staged copy loops the program emitter generates from the descending
   progression must produce the interpreter's exact final state. *)
let descending_program =
  "real A(64)\n\
   real B(64)\n\
   distribute A (cyclic(4)) onto 4\n\
   distribute B (block) onto 4\n\
   A(0:63:1) = 2.0\n\
   A(1:63:3) = 7.0\n\
   forall i = 0:20 do B(3*i) = A(62-3*i) + 0.25\n\
   print sum B(0:63:1)\n\
   print B(0:31:1)\n"

let test_descending_program () =
  expect_agreement "descending forall program"
    (H.check_program ~name:"descending" descending_program)

let test_program_outputs () =
  let source =
    "real A(320)\n\
     distribute A (cyclic(8)) onto 4\n\
     A(0:319:1) = 0.0\n\
     A(4:319:9) = 100.0\n\
     A(2:200:5) = A(2:200:5) + 1.5\n\
     print sum A(0:319:1)\n\
     print A(0:31:1)\n"
  in
  expect_agreement "program outputs" (H.check_program ~name:"outputs" source)

(* The emitter's unsupported subset must surface as [Unsupported], not
   as an error (and not run anything). *)
let test_program_unsupported () =
  let source =
    "real M(8, 6)\n\
     distribute M (cyclic(2), block) onto (2, 2)\n\
     M(0:7:1, 0:5:1) = 1.0\n\
     print sum M(0:7:1, 0:5:1)\n"
  in
  match H.check_program ~name:"matrix" source with
  | H.Unsupported _ | H.No_cc -> ()
  | o -> Alcotest.failf "2-D program: %s" (outcome_line o)

(* Broken source is a tool error (the harness never invents a verdict
   for a program the pipeline rejects). *)
let test_program_syntax_error () =
  match H.check_program ~name:"broken" "real A(\n" with
  | H.Tool_error _ | H.No_cc -> ()
  | o -> Alcotest.failf "syntax error: %s" (outcome_line o)

(* Corner instances mirroring the fuzz generator's bias, pinned so the
   suite exercises them even with the CLI campaign budget at zero. *)
let test_corner_instances () =
  List.iter
    (fun (p, k, l, s, u) ->
      let pr = Problem.make ~p ~k ~l ~s in
      expect_agreement
        (Printf.sprintf "corner p=%d k=%d l=%d s=%d u=%d" p k l s u)
        (H.check_problem pr ~u))
    [
      (1, 1, 0, 1, 63);  (* single processor, unit everything *)
      (1, 7, 3, 5, 200);  (* p = 1 *)
      (5, 1, 2, 3, 97);  (* k = 1 *)
      (4, 8, 4, 32, 319);  (* pk | s: one element per period *)
      (3, 6, 10, 9, 10);  (* singleton section *)
      (2, 4, 7, 6, 300);  (* d | k, start past one block *)
    ]

let suite =
  [
    Alcotest.test_case "probe: empty LAMS_CC disables" `Quick
      test_probe_disabled;
    Alcotest.test_case "probe: missing candidates" `Quick test_probe_missing;
    Alcotest.test_case "fill stream deterministic" `Quick
      test_fill_deterministic;
    Alcotest.test_case "kernels: paper instance" `Quick test_paper_instance;
    Alcotest.test_case "kernels: empty section" `Quick test_empty_section;
    Alcotest.test_case "kernels: degenerate basis" `Quick
      test_degenerate_basis;
    Alcotest.test_case "kernels: descending section" `Quick
      test_descending_section;
    Alcotest.test_case "kernels: corner instances" `Quick
      test_corner_instances;
    Alcotest.test_case "program: descending forall" `Quick
      test_descending_program;
    Alcotest.test_case "program: outputs and arrays" `Quick
      test_program_outputs;
    Alcotest.test_case "program: unsupported subset" `Quick
      test_program_unsupported;
    Alcotest.test_case "program: syntax error" `Quick
      test_program_syntax_error;
  ]
