(* Larger and adversarial instances: parameter corners the small random
   generators rarely reach — big block sizes, strides straddling pk, huge
   strides, many processors. Brute force stays affordable because its cost
   is O(pk/d) per processor, not O(u). *)

open Lams_core

let check_instance_subset pr ~procs =
  List.iter
    (fun m ->
      let expected = Brute.gap_table pr ~m in
      Alcotest.(check bool)
        (Printf.sprintf "kns m=%d" m)
        true
        (Access_table.equal (Kns.gap_table pr ~m) expected);
      Alcotest.(check bool)
        (Printf.sprintf "chatterjee m=%d" m)
        true
        (Access_table.equal (Chatterjee.gap_table pr ~m) expected);
      if Hiranandani.applicable pr then
        Alcotest.(check bool)
          (Printf.sprintf "hiranandani m=%d" m)
          true
          (Access_table.equal (Hiranandani.gap_table pr ~m) expected))
    procs

let test_large_block_sizes () =
  List.iter
    (fun (k, s) ->
      let pr = Problem.make ~p:32 ~k ~l:17 ~s in
      check_instance_subset pr ~procs:[ 0; 1; 31 ])
    [ (512, 7); (1024, 99); (2048, 12345); (512, 511); (1024, 1025) ]

let test_stride_straddles_pk () =
  (* s = pk - 1, pk, pk + 1, 2pk - 1, 2pk + 1: the sortedness corners of
     §6.1 plus degenerate multiples. *)
  let p = 32 and k = 64 in
  let pk = p * k in
  List.iter
    (fun s ->
      let pr = Problem.make ~p ~k ~l:3 ~s in
      check_instance_subset pr ~procs:[ 0; 7; 31 ])
    [ pk - 1; pk; pk + 1; (2 * pk) - 1; (2 * pk) + 1 ]

let test_huge_strides () =
  (* s far beyond pk: d governs everything. *)
  List.iter
    (fun s ->
      let pr = Problem.make ~p:16 ~k:32 ~l:100 ~s in
      check_instance_subset pr ~procs:[ 0; 5; 15 ])
    [ 1_000_003 (* prime *); 1 lsl 20 (* huge power of two *); 999_424 ]

let test_many_processors () =
  List.iter
    (fun p ->
      let pr = Problem.make ~p ~k:16 ~l:0 ~s:37 in
      check_instance_subset pr ~procs:[ 0; p / 2; p - 1 ])
    [ 64; 128; 256 ]

let test_k1_and_p1_corners () =
  (* cyclic(1) and single-processor layouts at size. *)
  check_instance_subset (Problem.make ~p:97 ~k:1 ~l:5 ~s:13) ~procs:[ 0; 50; 96 ];
  check_instance_subset (Problem.make ~p:1 ~k:4096 ~l:9 ~s:313) ~procs:[ 0 ]

let test_shapes_at_scale () =
  (* 100k accesses through each node-code shape, verified by checksum
     against the expected count. *)
  let pr = Problem.make ~p:32 ~k:256 ~l:0 ~s:17 in
  let u = 17 * ((32 * 100_000) - 1) in
  match Lams_codegen.Plan.build pr ~m:3 ~u with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      let expected = Lams_codegen.Plan.access_count plan in
      Alcotest.(check bool) "plausible count" true (expected > 90_000);
      List.iter
        (fun shape ->
          let mem =
            Lams_util.Fbuf.create
              (Lams_codegen.Plan.local_extent_needed plan)
          in
          Lams_codegen.Shapes.assign shape plan mem 1.;
          let written = ref 0 in
          for i = 0 to Lams_util.Fbuf.length mem - 1 do
            if Lams_util.Fbuf.get mem i = 1. then incr written
          done;
          let written = !written in
          Tutil.check_int (Lams_codegen.Shapes.name shape) expected written)
        Lams_codegen.Shapes.all

let test_enumerate_long_traversal () =
  (* The table-free enumerator over a long bounded traversal agrees with
     the closed-form count and the AM-table replay. *)
  let pr = Problem.make ~p:8 ~k:128 ~l:11 ~s:1023 in
  let u = 11 + (1023 * 200_000) in
  for m = 0 to 7 do
    let count = ref 0 and last = ref min_int in
    Enumerate.iter_bounded pr ~m ~u ~f:(fun g _local ->
        Alcotest.(check bool) "ascending" true (g > !last);
        last := g;
        incr count);
    Tutil.check_int
      (Printf.sprintf "count m=%d" m)
      (Start_finder.count_owned pr ~m ~u)
      !count
  done

let test_points_bound_at_scale () =
  List.iter
    (fun (k, s) ->
      let pr = Problem.make ~p:32 ~k ~l:0 ~s in
      for m = 0 to 3 do
        let _, stats = Kns.gap_table_with_stats pr ~m in
        Alcotest.(check bool)
          (Printf.sprintf "bound k=%d s=%d m=%d" k s m)
          true
          (stats.Kns.points_visited <= (2 * k) + 1)
      done)
    [ (4096, 8191); (4096, 4097); (2048, 3); (2048, 65535) ]

let test_randomized_validation () =
  (* The CLI's verify path: random instances, every algorithm against
     brute force, larger parameter space than the qcheck generators. *)
  match
    Validate.check_random ~seed:77L ~trials:300 ~max_p:24 ~max_k:48
      ~max_s:100_000
  with
  | None -> ()
  | Some (pr, mm) ->
      Alcotest.failf "mismatch on %a: %a" Problem.pp pr Validate.pp_mismatch mm

let suite =
  [ Alcotest.test_case "large block sizes" `Quick test_large_block_sizes;
    Alcotest.test_case "randomized validation sweep" `Quick
      test_randomized_validation;
    Alcotest.test_case "strides straddling pk" `Quick test_stride_straddles_pk;
    Alcotest.test_case "huge strides" `Quick test_huge_strides;
    Alcotest.test_case "many processors" `Quick test_many_processors;
    Alcotest.test_case "k=1 and p=1 corners" `Quick test_k1_and_p1_corners;
    Alcotest.test_case "node code with 100k accesses" `Quick
      test_shapes_at_scale;
    Alcotest.test_case "long bounded enumeration" `Quick
      test_enumerate_long_traversal;
    Alcotest.test_case "2k+1 bound at k=4096" `Quick test_points_bound_at_scale ]
