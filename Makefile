# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test bench bench-json bench-dataplane-quick \
	bench-inspector-quick smoke fuzz-quick chaos-quick native-quick \
	serve-quick adaptive-quick doc clean

all:
	dune build @all

test:
	dune runtest

# CI entry point: full build, full test suite, then the metrics smoke
# (an instrumented `lams metrics` / `lams verify --metrics` run, see
# bin/dune) so the observability path is exercised end to end, the
# quick differential fuzz campaign (bin/dune @fuzz), and the quick
# chaos runs (bin/dune @chaos: scheduled-under-faults vs legacy).
check:
	dune build @all
	dune runtest
	dune build @smoke
	dune build @fuzz
	dune build @chaos
	dune build @native
	dune build @dataplane
	dune build @inspector
	dune build @serve
	dune build @adaptive

smoke:
	dune build @smoke

# Quick deterministic fuzz campaign (seed 42, 400 cases); the full
# acceptance run is `dune exec -- lams fuzz --seed 42 --budget 5000`.
fuzz-quick:
	dune build @fuzz

# Data-plane smoke: blit vs element-at-a-time packing at reduced size;
# the bench itself asserts the steady-state pool contract (hits =
# transfers, zero misses after warm-up) and spot-checks the delivered
# contents, so a broken blit path fails the build, not just the numbers.
bench-dataplane-quick:
	dune build @dataplane

# Inspector smoke: the linear joint-cycle walk vs the retired all-pairs
# CRT oracle at reduced size; the bench asserts the two build
# structurally identical communication sets and the >= 10x separation
# on the block-sized rows, so a wrong or slow walk fails the build.
bench-inspector-quick:
	dune build @inspector

# Quick chaos runs: a lossy fabric with planned crashes (fixed seed,
# small budget) plus an all-rates-zero run that must stay bit-identical
# to the plain executor; any scheduled/legacy divergence fails the
# build. The heavier acceptance sweep is
# `dune exec -- lams fuzz --seed 42 --budget 1000` (chaos rounds included).
chaos-quick:
	dune build @chaos

# Native conformance acceptance sweep: 500 corner-biased instances
# compiled with the system cc and diffed bit-for-bit against the
# interpreter, plus every supported example program. Skips cleanly
# (exit 0) on hosts without a C compiler; the smaller always-on pass
# is `dune build @native` (see bin/dune).
native-quick:
	dune exec -- lams native-check --seed 42 --budget 500

# Serving gate: fork a `lams serve` daemon on a Unix socket, drive the
# quick Zipf load through it twice (cold, then warmed), SIGTERM it, and
# fail on any protocol error or a warmed hit rate below 90%. The full
# acceptance run is `dune exec bench/main.exe -- serve --json
# BENCH_serve.json`.
serve-quick:
	dune build @serve

# Adaptive-scheduling gate: cost-aware rounds vs the cost-blind baseline
# on heterogeneous fabrics at reduced size. The bench asserts every gate
# inside: perfect-fabric neutrality (bit-identical messages), the
# sick-pair tick speedup (>= 1.3x), the one-slow-link model speedup
# (>= 1.3x weighted critical path at p = 32), and a zero-divergence
# convergence sweep against the legacy oracle. The committed
# BENCH_adaptive.json comes from the full run,
# `dune exec bench/main.exe -- adaptive --json BENCH_adaptive.json`.
adaptive-quick:
	dune build @adaptive

bench:
	dune exec bench/main.exe

# Regenerate the bench artifacts with quick parameters (the committed
# BENCH_amortize.json / BENCH_redistribute.json were produced by the
# full sweeps, e.g.
# `dune exec bench/main.exe -- redistribute --json BENCH_redistribute.json`).
bench-json:
	dune exec bench/main.exe -- amortize --quick --json BENCH_amortize.json
	dune exec bench/main.exe -- redistribute --quick --json BENCH_redistribute.json
	dune exec bench/main.exe -- codegen --quick --json BENCH_codegen.json
	dune exec bench/main.exe -- dataplane --quick --json BENCH_dataplane.json
	dune exec bench/main.exe -- inspector --quick --json BENCH_inspector.json
	dune exec bench/main.exe -- serve --quick --json BENCH_serve.json
	dune exec bench/main.exe -- adaptive --quick --json BENCH_adaptive.json

doc:
	dune build @doc

clean:
	dune clean
