# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test bench bench-json smoke doc clean

all:
	dune build @all

test:
	dune runtest

# CI entry point: full build, full test suite, then the metrics smoke
# (an instrumented `lams metrics` / `lams verify --metrics` run, see
# bin/dune) so the observability path is exercised end to end.
check:
	dune build @all
	dune runtest
	dune build @smoke

smoke:
	dune build @smoke

bench:
	dune exec bench/main.exe

# Regenerate the amortization bench artifact with quick parameters
# (the committed BENCH_amortize.json was produced by the full sweep:
# `dune exec bench/main.exe -- amortize --json BENCH_amortize.json`).
bench-json:
	dune exec bench/main.exe -- amortize --quick --json BENCH_amortize.json

doc:
	dune build @doc

clean:
	dune clean
