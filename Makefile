# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test bench smoke doc clean

all:
	dune build @all

test:
	dune runtest

# CI entry point: full build, full test suite, then the metrics smoke
# (an instrumented `lams metrics` / `lams verify --metrics` run, see
# bin/dune) so the observability path is exercised end to end.
check:
	dune build @all
	dune runtest
	dune build @smoke

smoke:
	dune build @smoke

bench:
	dune exec bench/main.exe

doc:
	dune build @doc

clean:
	dune clean
