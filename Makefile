# Convenience entry points; everything is plain dune underneath.

.PHONY: all check test bench bench-json smoke fuzz-quick doc clean

all:
	dune build @all

test:
	dune runtest

# CI entry point: full build, full test suite, then the metrics smoke
# (an instrumented `lams metrics` / `lams verify --metrics` run, see
# bin/dune) so the observability path is exercised end to end, and the
# quick differential fuzz campaign (bin/dune @fuzz).
check:
	dune build @all
	dune runtest
	dune build @smoke
	dune build @fuzz

smoke:
	dune build @smoke

# Quick deterministic fuzz campaign (seed 42, 400 cases); the full
# acceptance run is `dune exec -- lams fuzz --seed 42 --budget 5000`.
fuzz-quick:
	dune build @fuzz

bench:
	dune exec bench/main.exe

# Regenerate the bench artifacts with quick parameters (the committed
# BENCH_amortize.json / BENCH_redistribute.json were produced by the
# full sweeps, e.g.
# `dune exec bench/main.exe -- redistribute --json BENCH_redistribute.json`).
bench-json:
	dune exec bench/main.exe -- amortize --quick --json BENCH_amortize.json
	dune exec bench/main.exe -- redistribute --quick --json BENCH_redistribute.json

doc:
	dune build @doc

clean:
	dune clean
