(** Pack/unpack marshalling for one transfer of a communication
    schedule.

    A transfer's element set is a union of arithmetic progressions of
    traversal positions ({!Lams_sim.Comm_sets}); on each side those
    positions land on one processor's local memory as a short list of
    {e contiguous blocks} — the same run structure the node-code
    generator exploits ({!Lams_codegen.Runs}). Marshalling is therefore
    a handful of [Array.blit]s over gap runs instead of one address
    computation per element. *)

type block = {
  buf_pos : int;  (** first position in the packed buffer *)
  start_local : int;  (** first local address *)
  length : int;
  step : int;  (** [+1] ascending locals, [-1] descending (negative
                   section stride) *)
}

type side = {
  blocks : block list;  (** sorted by [buf_pos]; they partition
                            [\[0, elements)] *)
  elements : int;
}

val build_side :
  layout:Lams_dist.Layout.t ->
  section:Lams_dist.Section.t ->
  proc:int ->
  Lams_sim.Comm_sets.progression list ->
  side
(** Lower one side of a transfer (its owner [proc]'s view) to blocks.
    Buffer positions follow the transfer's traversal order: progressions
    in list order, positions ascending within each.
    @raise Invalid_argument if some position is not owned by [proc]
    (a schedule/ownership inconsistency). *)

val pack : side -> data:float array -> buf:float array -> unit
(** Gather the side's elements from local memory into the packed
    buffer. *)

val unpack : side -> buf:float array -> data:float array -> unit
(** Scatter the packed buffer into local memory. *)

val shift : side -> int -> side
(** Translate every block's [start_local] (schedule-cache rebase). *)

val block_count : side -> int

val local_addresses : side -> int array
(** Local address of each buffer position (test/debug helper). *)
