(** Pack/unpack marshalling for one transfer of a communication
    schedule.

    A transfer's element set is a union of arithmetic progressions of
    traversal positions ({!Lams_sim.Comm_sets}); on each side those
    positions land on one processor's local memory as a short list of
    {e contiguous blocks} — the same run structure the node-code
    generator exploits ({!Lams_codegen.Runs}). Marshalling is therefore
    a handful of [Array.blit]s over gap runs instead of one address
    computation per element. *)

type block = {
  buf_pos : int;  (** first position in the packed buffer *)
  start_local : int;  (** first local address *)
  length : int;
  step : int;  (** [+1] ascending locals, [-1] descending (negative
                   section stride) *)
}

type side = {
  blocks : block list;  (** sorted by [buf_pos]; they partition
                            [\[0, elements)] *)
  elements : int;
}

val build_side :
  layout:Lams_dist.Layout.t ->
  section:Lams_dist.Section.t ->
  proc:int ->
  Lams_sim.Comm_sets.progression list ->
  side
(** Lower one side of a transfer (its owner [proc]'s view) to blocks.
    The packed buffer holds the transfer's elements in {e traversal
    order} (ascending position). The comm-set residue classes are first
    re-enumerated as maximal contiguous traversal segments —
    class-major packing would put consecutive buffer cells one whole
    period apart in memory and collapse every block to a single
    element — and each segment is lowered through the AM-table run
    machinery into blocks with real lengths. Both sides of a transfer
    are built from the same runs list, so they agree on the buffer
    permutation by construction.
    @raise Invalid_argument if some position is not owned by [proc]
    (a schedule/ownership inconsistency). *)

val pack : side -> data:Lams_util.Fbuf.t -> buf:Lams_util.Fbuf.t -> unit
(** Gather the side's elements from local memory into the packed
    buffer. Every block is a single blit: [memmove] for [step = 1], the
    reversed blit for [step = -1]. *)

val unpack : side -> buf:Lams_util.Fbuf.t -> data:Lams_util.Fbuf.t -> unit
(** Scatter the packed buffer into local memory (same blit structure as
    {!pack}). *)

val pack_elementwise :
  side -> data:Lams_util.Fbuf.t -> buf:Lams_util.Fbuf.t -> unit
(** Element-at-a-time {!pack} on the same buffers — the pre-blit data
    plane, kept as the adjacent baseline for [bench/dataplane.ml] and
    the differential tests. *)

val unpack_elementwise :
  side -> buf:Lams_util.Fbuf.t -> data:Lams_util.Fbuf.t -> unit

val pack_floats : side -> data:float array -> buf:float array -> unit
(** Legacy [float array] marshalling (oracles, traces). The [step = -1]
    arm hoists its bounds checks and runs the same reversed fast loop as
    the blit path. @raise Invalid_argument if a block escapes either
    array. *)

val unpack_floats : side -> buf:float array -> data:float array -> unit

val shift : side -> int -> side
(** Translate every block's [start_local] (schedule-cache rebase). *)

val split : side -> at:int -> side * side
(** [split side ~at] cuts the side at buffer position [at]
    ([0 < at < elements]) into two well-formed sides: the left covers
    buffer positions [\[0, at)], the right covers [\[at, elements)]
    rebased to start at 0. A block straddling the cut is divided — both
    halves remain single arithmetic runs. Splitting both sides of a
    transfer at the same [at] yields two transfers that move the same
    elements (the sides share one buffer order by construction).
    @raise Invalid_argument if [at] is outside [(0, elements)]. *)

val block_count : side -> int

val local_addresses : side -> int array
(** Local address of each buffer position (test/debug helper). *)
