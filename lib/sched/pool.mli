(** Per-domain payload-buffer pool.

    The executor's packed payloads are exact-size {!Lams_util.Fbuf.t}
    buffers whose sizes repeat from exchange to exchange (the schedule
    cache hands back the same transfer sizes every time). Pooling them
    per domain makes a steady-state redistribution allocate zero payload
    garbage: after one warm-up run, every acquire is a hit.

    Buffers come back with unspecified contents — safe for packed
    payloads only because a side's blocks partition [0, elements), so
    {!Pack.pack} overwrites every cell before anything reads one.

    Counters (registered under [sched.pool.*], visible via [--metrics]):
    [sched.pool.hits], [sched.pool.misses], [sched.pool.releases]. *)

val acquire : int -> Lams_util.Fbuf.t
(** [acquire n] returns a buffer of exactly [n] floats, reusing a
    released one of the same size when the calling domain's pool has
    one ([sched.pool.hits]) and allocating otherwise
    ([sched.pool.misses]). Contents are unspecified. *)

val release : Lams_util.Fbuf.t -> unit
(** Return a buffer to the calling domain's pool. The caller must not
    touch it afterwards, and nothing else may still reference it (the
    executor releases only after the fabric is drained or purged). *)

val clear : unit -> unit
(** Drop every buffer retained by the calling domain's pool (benches use
    this between configurations so retained buffers don't accumulate
    across problem sizes). *)

val retained_bytes : unit -> int
(** Total payload bytes currently parked in the calling domain's pool. *)
