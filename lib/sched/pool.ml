open Lams_util

let c_hits =
  Lams_obs.Obs.counter "sched.pool.hits" ~units:"buffers"
    ~doc:"payload buffers reused from the per-domain pool"

let c_misses =
  Lams_obs.Obs.counter "sched.pool.misses" ~units:"buffers"
    ~doc:"payload buffers freshly allocated (no pooled buffer of the size)"

let c_releases =
  Lams_obs.Obs.counter "sched.pool.releases" ~units:"buffers"
    ~doc:"payload buffers returned to the per-domain pool"

(* Exact-size freelists. Keying on the exact element count keeps
   [acquire] O(1) with zero waste: the schedule cache re-issues the same
   transfer sizes run after run, which is precisely when pooling pays. *)
type pool = {
  by_size : (int, Fbuf.t list ref) Hashtbl.t;
  mutable retained : int;  (** elements parked across all freelists *)
}

let key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { by_size = Hashtbl.create 64; retained = 0 })

let acquire n =
  if n < 0 then invalid_arg "Pool.acquire: negative size";
  let pool = Domain.DLS.get key in
  match Hashtbl.find_opt pool.by_size n with
  | Some ({ contents = buf :: rest } as cell) ->
      cell := rest;
      pool.retained <- pool.retained - n;
      Lams_obs.Obs.incr c_hits;
      buf
  | Some { contents = [] } | None ->
      Lams_obs.Obs.incr c_misses;
      Fbuf.uninit n

let release buf =
  let pool = Domain.DLS.get key in
  let n = Fbuf.length buf in
  (match Hashtbl.find_opt pool.by_size n with
  | Some cell -> cell := buf :: !cell
  | None -> Hashtbl.replace pool.by_size n (ref [ buf ]));
  pool.retained <- pool.retained + n;
  Lams_obs.Obs.incr c_releases

let clear () =
  let pool = Domain.DLS.get key in
  Hashtbl.reset pool.by_size;
  pool.retained <- 0

let retained_bytes () =
  let pool = Domain.DLS.get key in
  pool.retained * 8
