(* Process-global per-link health estimator. See link_health.mli. *)

open Lams_obs

let c_acks = Obs.counter "sched.health.acks" ~doc:"acked transfers absorbed into link health"
let c_retransmits =
  Obs.counter "sched.health.retransmits" ~doc:"retransmit events absorbed into link health"
let c_downgrades =
  Obs.counter "sched.health.downgrades" ~doc:"downgrade events absorbed into link health"
let d_latency =
  Obs.distribution "sched.health.latency" ~units:"ticks"
    ~doc:"per-ack round-trip latency samples (simulated ticks)"
let d_cost =
  Obs.distribution "sched.health.cost" ~units:"x"
    ~doc:"per-link cost factors at ack time (1.0 = healthy)"

(* EWMA weight for new samples. High enough that a handful of acks on a
   sick link move the estimate decisively, low enough that one delayed
   message doesn't condemn a healthy link. *)
let alpha = 0.25

(* A link is billed as sick when its current retransmit backoff reaches
   this many ticks (two doublings of the default base backoff), or when
   its cost factor reaches [sick_cost]. *)
let sick_backoff = 8
let sick_cost = 4.

type stats = {
  acks : int;
  retransmits : int;
  downgrades : int;
  loss : float;
  ticks_per_element : float;
  latency : float;
  cost : float;
  sick : bool;
  elements : int;
  messages : int;
}

type link_state = {
  mutable s_acks : int;
  mutable s_retransmits : int;
  mutable s_downgrades : int;
  (* EWMA of per-ack loss samples (1 - 1/attempts): 0. on a link that
     always acks first try. *)
  mutable s_loss : float;
  (* EWMA of per-ack (latency ticks / elements): 0. on a link that
     delivers within the tick it was sent. *)
  mutable s_tpe : float;
  (* EWMA of per-ack round-trip latency in ticks (reporting only). *)
  mutable s_latency : float;
  (* Current backoff (ticks) of the oldest unacked retransmit; cleared
     by the next ack. Drives mid-exchange sickness before the loss
     estimate has converged. *)
  mutable s_backoff : int;
  (* Cumulative delivered traffic from [absorb_network] (reporting). *)
  mutable s_elements : int;
  mutable s_messages : int;
}

let table : (int * int, link_state) Hashtbl.t = Hashtbl.create 64
let mutex = Mutex.create ()

let fresh () =
  { s_acks = 0; s_retransmits = 0; s_downgrades = 0; s_loss = 0.;
    s_tpe = 0.; s_latency = 0.; s_backoff = 0; s_elements = 0;
    s_messages = 0 }

(* Callers hold [mutex]. *)
let state src dst =
  let key = (src, dst) in
  match Hashtbl.find_opt table key with
  | Some s -> s
  | None ->
      let s = fresh () in
      Hashtbl.add table key s;
      s

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let ewma prev sample n =
  (* Seed the estimator with the first sample instead of decaying up
     from 0 — a link's first ack is the best estimate we have. *)
  if n = 0 then sample else prev +. (alpha *. (sample -. prev))

let cost_of s =
  let loss_factor = 1. /. (1. -. Float.min s.s_loss 0.9) in
  loss_factor *. (1. +. s.s_tpe)

let note_ack ~src ~dst ~attempts ~latency ~elements =
  if attempts < 1 || latency < 0 || elements < 0 then
    invalid_arg "Link_health.note_ack";
  locked (fun () ->
      let s = state src dst in
      let loss_sample = 1. -. (1. /. float_of_int attempts) in
      let tpe_sample =
        if elements = 0 then 0.
        else float_of_int latency /. float_of_int elements
      in
      s.s_loss <- ewma s.s_loss loss_sample s.s_acks;
      s.s_tpe <- ewma s.s_tpe tpe_sample s.s_acks;
      s.s_latency <- ewma s.s_latency (float_of_int latency) s.s_acks;
      s.s_acks <- s.s_acks + 1;
      s.s_backoff <- 0;
      Obs.incr c_acks;
      Obs.observe d_latency (float_of_int latency);
      Obs.observe d_cost (cost_of s))

let note_retransmit ~src ~dst ~backoff =
  locked (fun () ->
      let s = state src dst in
      s.s_retransmits <- s.s_retransmits + 1;
      if backoff > s.s_backoff then s.s_backoff <- backoff;
      Obs.incr c_retransmits)

let note_downgrade ~src ~dst =
  locked (fun () ->
      let s = state src dst in
      s.s_downgrades <- s.s_downgrades + 1;
      (* A downgrade means the retry budget died on this link: poison
         the loss estimate so the next plan routes around it. *)
      s.s_loss <- ewma s.s_loss 1.0 s.s_acks;
      Obs.incr c_downgrades)

let absorb_network net =
  let p = Lams_sim.Network.procs net in
  locked (fun () ->
      for src = 0 to p - 1 do
        for dst = 0 to p - 1 do
          let msgs = Lams_sim.Network.link_messages net ~src ~dst in
          if msgs > 0 then begin
            let s = state src dst in
            s.s_messages <- s.s_messages + msgs;
            s.s_elements <-
              s.s_elements + Lams_sim.Network.link_elements net ~src ~dst
          end
        done
      done)

let known ~src ~dst =
  locked (fun () ->
      match Hashtbl.find_opt table (src, dst) with
      | Some s -> s.s_acks > 0 || s.s_downgrades > 0
      | None -> false)

let cost ~src ~dst =
  locked (fun () ->
      match Hashtbl.find_opt table (src, dst) with
      | None -> 1.0
      | Some s -> cost_of s)

let is_sick ~src ~dst =
  locked (fun () ->
      match Hashtbl.find_opt table (src, dst) with
      | None -> false
      | Some s -> s.s_backoff >= sick_backoff || cost_of s >= sick_cost)

let stats_of s =
  { acks = s.s_acks; retransmits = s.s_retransmits;
    downgrades = s.s_downgrades; loss = s.s_loss;
    ticks_per_element = s.s_tpe; latency = s.s_latency;
    cost = cost_of s;
    sick = s.s_backoff >= sick_backoff || cost_of s >= sick_cost;
    elements = s.s_elements; messages = s.s_messages }

let report () =
  locked (fun () ->
      Hashtbl.fold (fun (src, dst) s acc -> ((src, dst), stats_of s) :: acc)
        table []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let reset () = locked (fun () -> Hashtbl.reset table)
