(** Executor: run a communication schedule on the simulated machine.

    A single pack phase gathers every outgoing buffer — all reads —
    before any delivery writes, so source and destination may alias
    (overlapping in-array shifts behave like the legacy two-phase
    exchange). Self-transfers then unpack locally (no network) and each
    round becomes a send phase and a receive phase separated by a
    barrier ({!Lams_sim.Spmd.run} per phase, or domain-parallel with
    [~parallel:true]). A round's transfers are contention-free, so every
    mailbox sees at most one message per round
    ({!Lams_sim.Network.max_congestion} stays at 1) and phase order is
    the only synchronization needed. Messages are packed: sent with
    [addresses = [||]], placement recovered from the receiver's half of
    the schedule.

    {b Fault tolerance.} On a fabric with an attached
    {!Lams_sim.Fault_model} the rounds run through the {!Reliable}
    protocol (enabled automatically, or explicitly with [~reliable]),
    and crashed ranks are respawned from the [respawns] budget
    ({!Lams_sim.Spmd.run_protected}). The degradation ladder, top to
    bottom:

    + retransmit with backoff until the per-transfer retry budget runs
      out, then unpack the transfer straight from its pre-packed buffer
      ([sched.reliable.downgrades]);
    + a crash outliving the respawn budget on an {e aliasing} run
      ([src == dst]) replays every undelivered transfer from the
      pre-packed buffers in-run;
    + on a non-aliasing run it propagates to {!redistribute}, which
      falls back to the legacy {!Lams_sim.Section_ops.copy} oracle on a
      perfect fabric ([sched.executor.legacy_fallbacks]) instead of
      raising.

    Every rung preserves the exact legacy result. On any exit —
    normal or raising — posted-but-undrained messages are purged from
    the fabric, so a reused network neither pins this run's packed
    buffers nor leaks protocol stragglers into the next exchange.

    {b Payload buffers} come from the per-domain {!Pool} and are
    released on every exit path, so a steady-state exchange (schedule
    cached, pool warm) performs zero payload allocations —
    [sched.pool.hits] advances by exactly the transfer count.

    {b Adaptive planning} ([~adaptive:true]). Before any buffer is
    acquired the schedule is passed through {!Schedule.reweight} with
    {!Link_health.cost}: transfers on links the estimator has seen
    struggle are weighted up, oversized ones split, and rounds rebuilt
    to minimize the weighted critical path. With no health data the
    reweight is the identity and the run is bit-identical to the
    cost-blind path. Mid-exchange, whenever the reliable protocol's
    backoff pushes a link over the sickness threshold
    ({!Link_health.is_sick}) on a link still carrying pending
    transfers, the remaining rounds are re-planned
    ([sched.executor.replans]): never-sent transfers are re-split
    against current costs (pieces reuse sub-views of the already-packed
    buffers) and regrouped under fresh sequence numbers, so
    exactly-once delivery and the full degradation ladder
    (re-plan → downgrade → legacy fallback) are preserved. *)

type packing =
  | Blit  (** contiguous runs move as [memmove]-speed blits (default) *)
  | Elementwise
      (** element-at-a-time marshalling on the same buffers — the
          pre-blit data plane, kept as an adjacent baseline for benches
          and differential tests *)

val run :
  ?net:Lams_sim.Network.t ->
  ?parallel:bool ->
  ?reliable:Reliable.config ->
  ?respawns:int ->
  ?packing:packing ->
  ?adaptive:bool ->
  Schedule.t ->
  src:Lams_sim.Darray.t ->
  dst:Lams_sim.Darray.t ->
  Lams_sim.Network.t
(** Execute [sched], copying the scheduled elements of [src] into
    [dst]. Returns the network used (created at machine size when [net]
    is absent) so callers can reuse it and read its accounting. With no
    fault model and no [reliable] config this is the plain seed path —
    bit-identical results, phases and messages.
    @raise Invalid_argument if the schedule was built for different
    machine sizes or [net] is too small.
    @raise Lams_sim.Spmd.Crash when the respawn budget is exhausted on
    a non-aliasing run (callers wanting graceful degradation go through
    {!redistribute}). *)

val redistribute :
  ?net:Lams_sim.Network.t ->
  ?parallel:bool ->
  ?reliable:Reliable.config ->
  ?respawns:int ->
  ?packing:packing ->
  ?adaptive:bool ->
  src:Lams_sim.Darray.t ->
  src_section:Lams_dist.Section.t ->
  dst:Lams_sim.Darray.t ->
  dst_section:Lams_dist.Section.t ->
  unit ->
  Lams_sim.Network.t
(** Scheduled replacement for {!Lams_sim.Section_ops.copy}: look the
    schedule up in the {!Cache} and run it. Element [j] of [src_section]
    lands on element [j] of [dst_section]. Never raises
    {!Lams_sim.Spmd.Crash}: an exhausted respawn budget degrades to the
    legacy copy on a perfect replacement fabric (whose network is then
    the one returned) and bumps [sched.executor.legacy_fallbacks].
    @raise Invalid_argument on empty, out-of-bounds or count-mismatched
    sections. *)
