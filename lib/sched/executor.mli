(** Executor: run a communication schedule on the simulated machine.

    A single pack phase gathers every outgoing buffer — all reads —
    before any delivery writes, so source and destination may alias
    (overlapping in-array shifts behave like the legacy two-phase
    exchange). Self-transfers then unpack locally (no network) and each
    round becomes a send phase and a receive phase separated by a
    barrier ({!Lams_sim.Spmd.run} per phase, or domain-parallel with
    [~parallel:true]). A round's transfers are contention-free, so every
    mailbox sees at most one message per round
    ({!Lams_sim.Network.max_congestion} stays at 1) and phase order is
    the only synchronization needed. Messages are packed: sent with
    [addresses = [||]], placement recovered from the receiver's half of
    the schedule. *)

val run :
  ?net:Lams_sim.Network.t ->
  ?parallel:bool ->
  Schedule.t ->
  src:Lams_sim.Darray.t ->
  dst:Lams_sim.Darray.t ->
  Lams_sim.Network.t
(** Execute [sched], copying the scheduled elements of [src] into
    [dst]. Returns the network used (created at machine size when [net]
    is absent) so callers can reuse it and read its accounting.
    @raise Invalid_argument if the schedule was built for different
    machine sizes or [net] is too small. *)

val redistribute :
  ?net:Lams_sim.Network.t ->
  ?parallel:bool ->
  src:Lams_sim.Darray.t ->
  src_section:Lams_dist.Section.t ->
  dst:Lams_sim.Darray.t ->
  dst_section:Lams_dist.Section.t ->
  unit ->
  Lams_sim.Network.t
(** Scheduled replacement for {!Lams_sim.Section_ops.copy}: look the
    schedule up in the {!Cache} and run it. Element [j] of [src_section]
    lands on element [j] of [dst_section].
    @raise Invalid_argument on empty, out-of-bounds or count-mismatched
    sections. *)
