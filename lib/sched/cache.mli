(** Process-wide LRU cache of communication schedules.

    Keys are canonicalized like {!Lams_core.Plan_cache}: each side's
    section is translated down by the largest multiple of its cycle
    span ([s·p·k / gcd(s, p·k)] of the normalized per-side problem) not
    exceeding its lower bound. Such translations permute nothing — the
    comm sets, rounds and block shapes are identical — they only shift
    every local address on that side by a fixed amount, so a hit is a
    cheap {!Schedule.rebase} instead of a full inspector run.

    Thread-safe; misses build outside the lock. Hits, misses and
    evictions are observable as [sched.cache.*] counters. *)

val find :
  src_layout:Lams_dist.Layout.t ->
  src_section:Lams_dist.Section.t ->
  dst_layout:Lams_dist.Layout.t ->
  dst_section:Lams_dist.Section.t ->
  Schedule.t
(** Serve the schedule for the given redistribution, building and
    inserting it on a miss. *)

val canonicalize :
  src_layout:Lams_dist.Layout.t ->
  src_section:Lams_dist.Section.t ->
  dst_layout:Lams_dist.Layout.t ->
  dst_section:Lams_dist.Section.t ->
  (Lams_dist.Section.t * int) * (Lams_dist.Section.t * int)
(** [(canonical_src, src_local_shift), (canonical_dst, dst_local_shift)]:
    each side normalized and translated down by its cycle span, with the
    local-address delta that {!Schedule.rebase} needs on the way out.
    Exposed for external caches (the serving daemon's sharded LRU keys
    schedules on the canonical pair without taking this module's global
    mutex). *)

val size : unit -> int
val capacity : unit -> int
val default_capacity : int

val set_capacity : int -> unit
(** Clamped below at [0]; [0] disables caching. Evicts down to the new
    capacity immediately. *)

val clear : unit -> unit

val set_debug_validate : bool -> unit
(** Debug builds only: when on (also via the [LAMS_DEBUG=1]
    environment variable), every hit re-runs {!Schedule.validate} on
    the rebased schedule and raises [Invalid_argument] on a violation,
    so a canonicalization bug surfaces at the cache boundary instead of
    as silent data corruption downstream. Off by default — the rebase
    is a pure uniform translation. *)

val debug_validate_enabled : unit -> bool
