open Lams_util
open Lams_sim

type config = {
  max_attempts : int;
  base_backoff : int;
  max_backoff : int;
}

let default_config = { max_attempts = 8; base_backoff = 2; max_backoff = 16 }

let config_of_budget budget =
  { default_config with max_attempts = max 1 budget }

let c_retransmits =
  Lams_obs.Obs.counter "sched.reliable.retransmits" ~units:"messages"
    ~doc:"data messages resent after an ack timeout"

let c_acks =
  Lams_obs.Obs.counter "sched.reliable.acks" ~units:"messages"
    ~doc:"transfers acknowledged (first ack per transfer)"

let c_dup_drops =
  Lams_obs.Obs.counter "sched.reliable.dup_drops" ~units:"messages"
    ~doc:"data copies dropped by sequence-number dedup (and re-acked)"

let c_corrupt_drops =
  Lams_obs.Obs.counter "sched.reliable.corrupt_drops" ~units:"messages"
    ~doc:"data copies dropped on a checksum mismatch"

let c_stale_drops =
  Lams_obs.Obs.counter "sched.reliable.stale_drops" ~units:"messages"
    ~doc:"messages from another run (or malformed) dropped on arrival"

let c_downgrades =
  Lams_obs.Obs.counter "sched.reliable.downgrades" ~units:"transfers"
    ~doc:"transfers completed from their pre-packed buffer after the \
          retry budget ran out"

let d_backoff =
  Lams_obs.Obs.distribution "sched.reliable.backoff" ~units:"ticks"
    ~doc:"retransmit backoff intervals in simulated time"

let note_downgrade () = Lams_obs.Obs.incr c_downgrades

(* Header layout. *)
let magic = 0x1A5C
let kind_data = 0
let kind_ack = 1

(* FNV-1a over the run/seq identity and the payload's float images,
   folded straight off the unboxed buffer (no float boxing per element).
   A flipped mantissa bit anywhere changes the folded value. *)
let checksum ~run ~seq (payload : Fbuf.t) =
  let fnv_prime = 0x100000001B3L in
  let h =
    ref
      (Int64.logxor 0xCBF29CE484222325L
         (Int64.of_int ((run * 8191) + seq + 1)))
  in
  for i = 0 to Fbuf.length payload - 1 do
    let bits = Int64.bits_of_float (Fbuf.unsafe_get payload i) in
    h := Int64.mul (Int64.logxor !h bits) fnv_prime
  done;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let exchange cfg ~net ~p ~run_id ~tag ~transfers ~seqs ~bufs ~dst_data
    ~delivered ~run_phase =
  let nt = Array.length transfers in
  if nt > 0 then begin
    (* On a perfect fabric a checksum can never fail; skip the two
       payload passes and pay only for sequence/ack bookkeeping. *)
    let verify = Network.has_faults net in
    let acked = Array.make nt false in
    let attempts = Array.make nt 0 in
    let next_send = Array.make nt min_int in
    (* Simulated instant of each transfer's first send: the ack latency
       sample fed to {!Link_health} is (ack arrival - first send). *)
    let first_send = Array.make nt 0 in
    let index_of_seq = Hashtbl.create (2 * nt) in
    Array.iteri (fun i s -> Hashtbl.replace index_of_seq s i) seqs;
    (* Acks collected during the drain phase, posted one phase later so
       sequential and domain-parallel phase interleavings see the same
       message timeline (nothing sent in a phase is drained in it). *)
    let to_ack = Array.make p [] in
    let all_acked () = Array.for_all Fun.id acked in
    let live i = (not acked.(i)) && attempts.(i) < cfg.max_attempts in
    let any_live () =
      let rec go i = i < nt && (live i || go (i + 1)) in
      go 0
    in
    let drain_phase m =
      List.iter
        (fun (msg : Network.message) ->
          let h = msg.Network.header in
          if Array.length h <> 5 || h.(0) <> magic then
            Lams_obs.Obs.incr c_stale_drops
          else if h.(1) <> run_id then Lams_obs.Obs.incr c_stale_drops
          else if h.(2) = kind_ack then begin
            match Hashtbl.find_opt index_of_seq h.(3) with
            | Some i
              when transfers.(i).Schedule.src_proc = m && not acked.(i) ->
                acked.(i) <- true;
                Lams_obs.Obs.incr c_acks;
                if attempts.(i) > 0 then
                  Link_health.note_ack ~src:m
                    ~dst:transfers.(i).Schedule.dst_proc
                    ~attempts:attempts.(i)
                    ~latency:(max 0 (Network.now net - first_send.(i)))
                    ~elements:transfers.(i).Schedule.elements
            | _ -> () (* duplicate ack, or an earlier round's — done *)
          end
          else if
            verify
            && h.(4) <> checksum ~run:run_id ~seq:h.(3) msg.Network.payload
          then Lams_obs.Obs.incr c_corrupt_drops
          else begin
            let seq = h.(3) in
            if Hashtbl.mem delivered.(m) seq then
              (* Already unpacked (possibly in an earlier round, or via a
                 downgrade): the duplicate usually means the ack died, so
                 re-ack it. *)
              Lams_obs.Obs.incr c_dup_drops
            else begin
              match Hashtbl.find_opt index_of_seq seq with
              | Some i when transfers.(i).Schedule.dst_proc = m ->
                  Hashtbl.add delivered.(m) seq ();
                  Pack.unpack transfers.(i).Schedule.dst_side
                    ~buf:msg.Network.payload ~data:(dst_data m)
              | _ ->
                  (* A sound data message this run never sent to us:
                     defensive — nothing to unpack. *)
                  Lams_obs.Obs.incr c_stale_drops
            end;
            to_ack.(m) <- (msg.Network.src, seq) :: to_ack.(m)
          end)
        (Network.receive_all net ~dst:m)
    in
    let ack_phase m =
      List.iter
        (fun (dst, seq) ->
          Network.transmit net ~src:m ~dst ~tag
            ~header:[| magic; run_id; kind_ack; seq; 0 |] ~addresses:[||]
            ~payload:Fbuf.empty)
        (List.rev to_ack.(m));
      to_ack.(m) <- []
    in
    let send_phase m =
      Array.iteri
        (fun i (tr : Schedule.transfer) ->
          if
            tr.Schedule.src_proc = m && live i
            && next_send.(i) <= Network.now net
          then begin
            let payload = bufs.(i) in
            let sum =
              if verify then checksum ~run:run_id ~seq:seqs.(i) payload
              else 0
            in
            let retransmit = attempts.(i) > 0 in
            if not retransmit then first_send.(i) <- Network.now net;
            (* The planned-crash check inside [transmit] fires before
               anything is enqueued and before the bookkeeping below, so
               a respawned rank resends this transfer. *)
            Network.transmit net ~src:m ~dst:tr.Schedule.dst_proc ~tag
              ~header:[| magic; run_id; kind_data; seqs.(i); sum |]
              ~addresses:[||] ~payload;
            attempts.(i) <- attempts.(i) + 1;
            let backoff =
              min cfg.max_backoff (cfg.base_backoff lsl (attempts.(i) - 1))
            in
            if retransmit then begin
              Lams_obs.Obs.incr c_retransmits;
              Lams_obs.Obs.observe d_backoff (float_of_int backoff);
              Link_health.note_retransmit ~src:m ~dst:tr.Schedule.dst_proc
                ~backoff
            end;
            next_send.(i) <- Network.now net + backoff
          end)
        transfers
    in
    (* Generous backstop: every attempt can wait out a full backoff and
       a full delay horizon before the next one fires. *)
    let iter_cap = (cfg.max_attempts * (cfg.max_backoff + 2)) + 32 in
    let iters = ref 0 in
    let finished = ref false in
    while not !finished do
      incr iters;
      run_phase drain_phase;
      run_phase ack_phase;
      if all_acked () then finished := true
      else if ((not (any_live ())) && Network.in_flight net = 0)
              || !iters > iter_cap
      then finished := true
      else begin
        run_phase send_phase;
        (* Advance simulated time only when the fabric has nothing
           deliverable: jump to the earliest retransmit deadline or
           delayed-delivery instant, so the loop neither livelocks nor
           fires spurious retransmits on a healthy exchange. *)
        let deliverable = ref 0 in
        for m = 0 to p - 1 do
          deliverable := !deliverable + Network.pending net ~dst:m
        done;
        if !deliverable = 0 then begin
          let now = Network.now net in
          let target = ref None in
          let consider at =
            if at > now then
              match !target with
              | Some b when b <= at -> ()
              | _ -> target := Some at
          in
          for i = 0 to nt - 1 do
            if live i then consider next_send.(i)
          done;
          (match Network.horizon net with Some at -> consider at | None -> ());
          let ticks =
            match !target with Some at -> at - now | None -> 1
          in
          Network.advance net ~ticks
        end
      end
    done;
    (* Degradation: whatever the protocol could not get acknowledged is
       completed from its pre-packed buffer — correct because packing
       precedes every write and [delivered] makes replay idempotent. *)
    Array.iteri
      (fun i (tr : Schedule.transfer) ->
        if not acked.(i) then begin
          let m = tr.Schedule.dst_proc in
          if not (Hashtbl.mem delivered.(m) seqs.(i)) then begin
            Hashtbl.add delivered.(m) seqs.(i) ();
            Pack.unpack tr.Schedule.dst_side ~buf:bufs.(i)
              ~data:(dst_data m)
          end;
          note_downgrade ();
          Link_health.note_downgrade ~src:tr.Schedule.src_proc
            ~dst:tr.Schedule.dst_proc
        end)
      transfers
  end
