(** Reliable delivery for scheduled rounds over a lossy fabric.

    Sits between {!Pack} and {!Executor}: each cross-processor transfer
    of a round becomes a {e sequence-numbered} packed message with a
    payload checksum; the receiver drops corrupt copies, deduplicates by
    sequence number, unpacks first deliveries and acknowledges every
    sound copy (re-acking duplicates, since a duplicate usually means
    the first ack died). Senders retransmit on timeout with bounded
    exponential backoff in the fabric's simulated time, up to a retry
    budget.

    {b Wire format.} A protocol message's header is
    [[| magic; run_id; kind; seq; checksum |]]: [run_id] isolates runs
    sharing a fabric (stragglers from a previous run are dropped, not
    misdelivered), [kind] is data or ack, [seq] is unique per transfer
    per run, and [checksum] folds [run_id], [seq] and the payload bits
    (FNV-1a over the 64-bit float images). Checksums are computed and
    verified only when the fabric [has_faults] — on a perfect fabric
    they could never fail, so the reliable layer skips the two extra
    payload passes and costs only acks and phases.

    {b Exchange loop.} Each iteration is three barrier phases — drain
    (verify, dedup, unpack, collect acks; senders absorb acks), ack
    (post the collected acks), send (retransmit every unacked
    undelivered transfer whose backoff expired) — after which the
    orchestrator advances simulated time, jumping straight to the next
    retransmit deadline or delayed-delivery instant when the fabric has
    nothing deliverable. Acks posted in one iteration are drained in
    the next, so the loop behaves identically under sequential and
    domain-parallel phases.

    {b Degradation.} A transfer whose retry budget is exhausted is
    {e downgraded}: its pre-packed buffer is unpacked directly into the
    destination rank's memory — always correct (packing precedes every
    write; dedup makes replay idempotent), so convergence to the exact
    legacy result is unconditional and a divergence under chaos testing
    always means a protocol bug, never bad luck.

    Counters: [sched.reliable.retransmits], [.acks], [.dup_drops],
    [.corrupt_drops], [.stale_drops], [.downgrades] and the
    [sched.reliable.backoff] distribution (p95 of retransmit backoff
    ticks).

    {b Health feedback.} Every first ack (attempt count, first-send to
    ack latency, payload size), every retransmit (with its backoff) and
    every downgrade is also fed to {!Link_health}, the process-global
    per-link estimator the adaptive executor plans from. *)

type config = {
  max_attempts : int;  (** sends per transfer before downgrading *)
  base_backoff : int;  (** ticks before the first retransmit *)
  max_backoff : int;  (** backoff cap (exponential doubling below it) *)
}

val default_config : config
(** 8 attempts, backoff 2 doubling to a cap of 16. *)

val config_of_budget : int -> config
(** {!default_config} with [max_attempts] clamped to [>= 1]. *)

val checksum : run:int -> seq:int -> Lams_util.Fbuf.t -> int
(** The header checksum: FNV-1a over [run], [seq] and the payload's
    64-bit float images, masked positive. *)

val note_downgrade : unit -> unit
(** Record one transfer completed from its pre-packed buffer instead of
    the protocol ({!Executor} uses this for crash-exhaustion replay). *)

val exchange :
  config ->
  net:Lams_sim.Network.t ->
  p:int ->
  run_id:int ->
  tag:int ->
  transfers:Schedule.transfer array ->
  seqs:int array ->
  bufs:Lams_util.Fbuf.t array ->
  dst_data:(int -> Lams_util.Fbuf.t) ->
  delivered:(int, unit) Hashtbl.t array ->
  run_phase:((int -> unit) -> unit) ->
  unit
(** Run one round's transfers to completion: every transfer is either
    acknowledged or downgraded when this returns. [seqs.(i)]/[bufs.(i)]
    are transfer [i]'s sequence number and pre-packed buffer;
    [delivered.(m)] is rank [m]'s cross-round dedup set (seq present =
    already unpacked), shared across the run's rounds so late
    stragglers of earlier rounds are recognized; [run_phase] executes a
    phase over all ranks (the executor's sequential or domain-parallel
    barrier step). May raise {!Lams_sim.Spmd.Crash} if [run_phase]
    propagates one — the executor handles the recovery ladder. *)
