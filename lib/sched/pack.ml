open Lams_util
open Lams_dist
open Lams_core
open Lams_codegen

type block = { buf_pos : int; start_local : int; length : int; step : int }
type side = { blocks : block list; elements : int }

(* One arithmetic progression of traversal positions maps to the global
   indices g(t) = sec.lo + (first + t*period)*sec.stride — itself an
   arithmetic sequence with stride period*|sec.stride|, every element
   owned by [proc] (Comm_sets guarantees it). That is exactly a
   (p, k, l, s) access-sequence sub-problem, so the contiguous
   local-address blocks fall out of the AM-table machinery: build the
   plan for the sub-section and merge its traversal into runs.

   The sub-problems' (l, s) vary per transfer, so routing them through
   the process {!Lams_core.Plan_cache} would thrash it (and evict the
   whole-array entries the fill path lives on); schedules are cached one
   level up ({!Cache}), so the uncached per-processor build is the right
   cost here. *)
let blocks_of_progression ~layout ~section ~proc ~buf_pos
    (run : Lams_sim.Comm_sets.progression) =
  let nth t =
    Section.nth section
      (run.Lams_sim.Comm_sets.first + (t * run.Lams_sim.Comm_sets.period))
  in
  let count = run.Lams_sim.Comm_sets.count in
  let g0 = nth 0 in
  if count = 1 then
    [ { buf_pos; start_local = Layout.local_address layout g0; length = 1;
        step = 1 } ]
  else begin
    let gl = nth (count - 1) in
    (* The pack buffer is filled in traversal order; a negative section
       stride makes the globals descend, so the plan (which always walks
       ascending) is built on the reversed sequence and its runs are
       emitted as step = -1 blocks at mirrored buffer positions. *)
    let ascending = gl > g0 in
    let lo = if ascending then g0 else gl in
    let hi = if ascending then gl else g0 in
    let stride = (hi - lo) / (count - 1) in
    let pr =
      Problem.make ~p:layout.Layout.p ~k:layout.Layout.k ~l:lo ~s:stride
    in
    match Plan.build_uncached pr ~m:proc ~u:hi with
    | None -> invalid_arg "Pack: progression not owned by its processor"
    | Some plan ->
        let visited = ref 0 in
        let blocks =
          Runs.fold_runs plan ~init:[]
            ~f:(fun acc { Runs.start_local; length } ->
              let b =
                if ascending then
                  { buf_pos = buf_pos + !visited; start_local; length;
                    step = 1 }
                else
                  { buf_pos = buf_pos + count - !visited - length;
                    start_local = start_local + length - 1;
                    length;
                    step = -1 }
              in
              visited := !visited + length;
              b :: acc)
        in
        if !visited <> count then
          invalid_arg "Pack: progression escapes its processor";
        blocks
  end

(* {!Lams_sim.Comm_sets} describes a transfer as residue classes of
   traversal positions modulo the lcm of the two cycle periods. Packing
   one class at a time walks the data class-major — consecutive buffer
   cells sit one whole period apart in memory, so every block collapses
   to a single element and the blit data plane never gets a run to
   move. The buffer layout is private to the schedule (both sides are
   lowered from the same runs list), which leaves us free to
   re-enumerate the same position set differently: consecutive residues
   fuse into intervals, and one interval at one period offset is a
   contiguous traversal segment — exactly an (l:h:s) sub-problem whose
   access sequence the AM table lowers to runs with real lengths.

   Classes arrive sorted by [first] and share one period; counts along
   a fused interval are non-increasing (count = 1 + (total-1-first)/P),
   so the residues still alive at period offset [t] are a prefix of the
   interval — the guard below splits the interval wherever either
   assumption fails, which only costs block length, never correctness.
   Returns [None] (caller falls back to class-major packing) when the
   classes disagree on the period. *)
let traversal_segments (runs : Lams_sim.Comm_sets.progression list) =
  match runs with
  | [] -> Some []
  | { Lams_sim.Comm_sets.period; _ } :: _
    when List.exists
           (fun r -> r.Lams_sim.Comm_sets.period <> period)
           runs ->
      None
  | { Lams_sim.Comm_sets.period; _ } :: _ when period = 1 ->
      (* A period-1 class is already one contiguous segment. *)
      Some
        (List.map
           (fun r ->
             (r.Lams_sim.Comm_sets.first, r.Lams_sim.Comm_sets.count))
           runs)
  | { Lams_sim.Comm_sets.period; _ } :: _ ->
      let arr = Array.of_list runs in
      let n = Array.length arr in
      let first i = arr.(i).Lams_sim.Comm_sets.first in
      let count i = arr.(i).Lams_sim.Comm_sets.count in
      let segs = ref [] in
      let i = ref 0 in
      while !i < n do
        let j = ref (!i + 1) in
        while
          !j < n
          && first !j = first (!j - 1) + 1
          && count !j <= count (!j - 1)
        do
          incr j
        done;
        let base = first !i and width = !j - !i in
        let t = ref 0 and len = ref width in
        while !len > 0 do
          while !len > 0 && count (!i + !len - 1) <= !t do
            decr len
          done;
          if !len > 0 then segs := (base + (!t * period), !len) :: !segs;
          incr t
        done;
        i := !j
      done;
      (* Traversal order: segments of different intervals interleave
         across periods, so sort by position, then fuse any that turn
         out adjacent (intervals as wide as the period tile the
         traversal seamlessly). *)
      let sorted =
        List.sort (fun (a, _) (b, _) -> compare a b) !segs
      in
      Some
        (List.fold_left
           (fun acc (j0, len) ->
             match acc with
             | (pj, pl) :: rest when pj + pl = j0 -> (pj, pl + len) :: rest
             | _ -> (j0, len) :: acc)
           [] sorted
        |> List.rev)

let build_side ~layout ~section ~proc runs =
  let progressions =
    match traversal_segments runs with
    | Some segs ->
        List.map
          (fun (j0, len) ->
            { Lams_sim.Comm_sets.first = j0; period = 1; count = len })
          segs
    | None -> runs
  in
  let buf_pos = ref 0 in
  let blocks =
    List.concat_map
      (fun (run : Lams_sim.Comm_sets.progression) ->
        let bs =
          blocks_of_progression ~layout ~section ~proc ~buf_pos:!buf_pos run
        in
        buf_pos := !buf_pos + run.Lams_sim.Comm_sets.count;
        bs)
      progressions
  in
  let blocks =
    List.sort (fun a b -> compare a.buf_pos b.buf_pos) blocks
  in
  { blocks; elements = !buf_pos }

(* Both strides are single blits: step = 1 is a straight memmove; a
   step = -1 block covers local addresses [start_local - length + 1,
   start_local] read (or written) descending, which the reversed blit
   maps onto an ascending buffer span in one pass. *)
let pack side ~data ~buf =
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      if step = 1 then
        Fbuf.blit ~src:data ~src_pos:start_local ~dst:buf ~dst_pos:buf_pos
          ~len:length
      else
        Fbuf.rev_blit ~src:data ~src_pos:(start_local - length + 1) ~dst:buf
          ~dst_pos:buf_pos ~len:length)
    side.blocks

let unpack side ~buf ~data =
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      if step = 1 then
        Fbuf.blit ~src:buf ~src_pos:buf_pos ~dst:data ~dst_pos:start_local
          ~len:length
      else
        Fbuf.rev_blit ~src:buf ~src_pos:buf_pos ~dst:data
          ~dst_pos:(start_local - length + 1) ~len:length)
    side.blocks

(* Element-at-a-time variants on the same buffers: the adjacent
   before/after baseline for `bench/dataplane.ml` (what the data plane
   did before the blit conversion, minus boxing). *)
let pack_elementwise side ~data ~buf =
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      if step = 1 then
        for i = 0 to length - 1 do
          Fbuf.set buf (buf_pos + i) (Fbuf.get data (start_local + i))
        done
      else
        for i = 0 to length - 1 do
          Fbuf.set buf (buf_pos + i) (Fbuf.get data (start_local - i))
        done)
    side.blocks

let unpack_elementwise side ~buf ~data =
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      if step = 1 then
        for i = 0 to length - 1 do
          Fbuf.set data (start_local + i) (Fbuf.get buf (buf_pos + i))
        done
      else
        for i = 0 to length - 1 do
          Fbuf.set data (start_local - i) (Fbuf.get buf (buf_pos + i))
        done)
    side.blocks

(* Legacy [float array] marshalling (kept for oracles and traces). The
   step = -1 arm hoists the bounds checks out of the loop — the block
   extremes cover every access — and runs unsafe, mirroring the reversed
   blit. *)
let check_floats_block name ~data_len ~buf_len { buf_pos; start_local; length; step } =
  let lo_local = if step = 1 then start_local else start_local - length + 1 in
  if
    buf_pos < 0 || length < 0
    || buf_pos > buf_len - length
    || lo_local < 0
    || lo_local > data_len - length
  then invalid_arg name

let pack_floats side ~data ~buf =
  List.iter
    (fun ({ buf_pos; start_local; length; step } as b) ->
      check_floats_block "Pack.pack_floats" ~data_len:(Array.length data)
        ~buf_len:(Array.length buf) b;
      if step = 1 then Array.blit data start_local buf buf_pos length
      else
        for i = 0 to length - 1 do
          Array.unsafe_set buf (buf_pos + i)
            (Array.unsafe_get data (start_local - i))
        done)
    side.blocks

let unpack_floats side ~buf ~data =
  List.iter
    (fun ({ buf_pos; start_local; length; step } as b) ->
      check_floats_block "Pack.unpack_floats" ~data_len:(Array.length data)
        ~buf_len:(Array.length buf) b;
      if step = 1 then Array.blit buf buf_pos data start_local length
      else
        for i = 0 to length - 1 do
          Array.unsafe_set data (start_local - i)
            (Array.unsafe_get buf (buf_pos + i))
        done)
    side.blocks

let shift side delta =
  if delta = 0 then side
  else
    { side with
      blocks =
        List.map
          (fun b -> { b with start_local = b.start_local + delta })
          side.blocks }

(* Cut a side at a buffer position. Blocks are sorted by [buf_pos] and
   partition [0, elements), so exactly one block can straddle the cut;
   both halves of a straddling block stay one arithmetic run
   (start_local advances [step] per buffer cell). Right-side positions
   are rebased to 0 so each half is a well-formed side over its own
   (smaller) payload buffer. *)
let split side ~at =
  if at <= 0 || at >= side.elements then invalid_arg "Pack.split";
  let left = ref [] and right = ref [] in
  List.iter
    (fun ({ buf_pos; start_local; length; step } as b) ->
      if buf_pos + length <= at then left := b :: !left
      else if buf_pos >= at then
        right := { b with buf_pos = buf_pos - at } :: !right
      else begin
        let l1 = at - buf_pos in
        left := { b with length = l1 } :: !left;
        right :=
          { buf_pos = 0; start_local = start_local + (step * l1);
            length = length - l1; step }
          :: !right
      end)
    side.blocks;
  ( { blocks = List.rev !left; elements = at },
    { blocks = List.rev !right; elements = side.elements - at } )

let block_count side = List.length side.blocks

let local_addresses side =
  let out = Array.make side.elements (-1) in
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      for i = 0 to length - 1 do
        out.(buf_pos + i) <- start_local + (step * i)
      done)
    side.blocks;
  out
