open Lams_dist
open Lams_core
open Lams_codegen

type block = { buf_pos : int; start_local : int; length : int; step : int }
type side = { blocks : block list; elements : int }

(* One arithmetic progression of traversal positions maps to the global
   indices g(t) = sec.lo + (first + t*period)*sec.stride — itself an
   arithmetic sequence with stride period*|sec.stride|, every element
   owned by [proc] (Comm_sets guarantees it). That is exactly a
   (p, k, l, s) access-sequence sub-problem, so the contiguous
   local-address blocks fall out of the AM-table machinery: build the
   plan for the sub-section and merge its traversal into runs.

   The sub-problems' (l, s) vary per transfer, so routing them through
   the process {!Lams_core.Plan_cache} would thrash it (and evict the
   whole-array entries the fill path lives on); schedules are cached one
   level up ({!Cache}), so the uncached per-processor build is the right
   cost here. *)
let blocks_of_progression ~layout ~section ~proc ~buf_pos
    (run : Lams_sim.Comm_sets.progression) =
  let nth t =
    Section.nth section
      (run.Lams_sim.Comm_sets.first + (t * run.Lams_sim.Comm_sets.period))
  in
  let count = run.Lams_sim.Comm_sets.count in
  let g0 = nth 0 in
  if count = 1 then
    [ { buf_pos; start_local = Layout.local_address layout g0; length = 1;
        step = 1 } ]
  else begin
    let gl = nth (count - 1) in
    (* The pack buffer is filled in traversal order; a negative section
       stride makes the globals descend, so the plan (which always walks
       ascending) is built on the reversed sequence and its runs are
       emitted as step = -1 blocks at mirrored buffer positions. *)
    let ascending = gl > g0 in
    let lo = if ascending then g0 else gl in
    let hi = if ascending then gl else g0 in
    let stride = (hi - lo) / (count - 1) in
    let pr =
      Problem.make ~p:layout.Layout.p ~k:layout.Layout.k ~l:lo ~s:stride
    in
    match Plan.build_uncached pr ~m:proc ~u:hi with
    | None -> invalid_arg "Pack: progression not owned by its processor"
    | Some plan ->
        let visited = ref 0 in
        let blocks =
          Runs.fold_runs plan ~init:[]
            ~f:(fun acc { Runs.start_local; length } ->
              let b =
                if ascending then
                  { buf_pos = buf_pos + !visited; start_local; length;
                    step = 1 }
                else
                  { buf_pos = buf_pos + count - !visited - length;
                    start_local = start_local + length - 1;
                    length;
                    step = -1 }
              in
              visited := !visited + length;
              b :: acc)
        in
        if !visited <> count then
          invalid_arg "Pack: progression escapes its processor";
        blocks
  end

let build_side ~layout ~section ~proc runs =
  let buf_pos = ref 0 in
  let blocks =
    List.concat_map
      (fun (run : Lams_sim.Comm_sets.progression) ->
        let bs =
          blocks_of_progression ~layout ~section ~proc ~buf_pos:!buf_pos run
        in
        buf_pos := !buf_pos + run.Lams_sim.Comm_sets.count;
        bs)
      runs
  in
  let blocks =
    List.sort (fun a b -> compare a.buf_pos b.buf_pos) blocks
  in
  { blocks; elements = !buf_pos }

let pack side ~data ~buf =
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      if step = 1 then Array.blit data start_local buf buf_pos length
      else
        for i = 0 to length - 1 do
          buf.(buf_pos + i) <- data.(start_local - i)
        done)
    side.blocks

let unpack side ~buf ~data =
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      if step = 1 then Array.blit buf buf_pos data start_local length
      else
        for i = 0 to length - 1 do
          data.(start_local - i) <- buf.(buf_pos + i)
        done)
    side.blocks

let shift side delta =
  if delta = 0 then side
  else
    { side with
      blocks =
        List.map
          (fun b -> { b with start_local = b.start_local + delta })
          side.blocks }

let block_count side = List.length side.blocks

let local_addresses side =
  let out = Array.make side.elements (-1) in
  List.iter
    (fun { buf_pos; start_local; length; step } ->
      for i = 0 to length - 1 do
        out.(buf_pos + i) <- start_local + (step * i)
      done)
    side.blocks;
  out
