open Lams_dist
open Lams_core

let c_hits =
  Lams_obs.Obs.counter "sched.cache.hits" ~units:"lookups"
    ~doc:"communication schedules served from the cache"

let c_misses =
  Lams_obs.Obs.counter "sched.cache.misses" ~units:"lookups"
    ~doc:"communication-schedule lookups that ran the inspector"

let c_evictions =
  Lams_obs.Obs.counter "sched.cache.evictions" ~units:"entries"
    ~doc:"least-recently-used schedules dropped at capacity"

(* Canonicalization mirrors Plan_cache: translating a section by a
   multiple of its side's cycle span (s·pk/d of the normalised problem)
   leaves every traversal-position residue class — hence the comm sets,
   the rounds and the block structure — unchanged; only local addresses
   shift, uniformly, by (g_shift / pk)·k. One side's shift is
   independent of the other's, so the key is the pair of canonical
   (p, k, lo, hi, stride) triplets and a hit is a cheap block rebase. *)
let canonical_side layout (sec : Section.t) =
  let norm = Section.normalize sec in
  let pr = Problem.of_section layout norm in
  let span = Problem.cycle_span pr in
  let g_shift = norm.Section.lo - (norm.Section.lo mod span) in
  let local_shift = g_shift / Problem.row_len pr * pr.Problem.k in
  let sec0 =
    if g_shift = 0 then sec
    else
      Section.make ~lo:(sec.Section.lo - g_shift)
        ~hi:(sec.Section.hi - g_shift) ~stride:sec.Section.stride
  in
  (sec0, local_shift)

let canonicalize ~src_layout ~src_section ~dst_layout ~dst_section =
  let src0, src_shift = canonical_side src_layout src_section in
  let dst0, dst_shift = canonical_side dst_layout dst_section in
  ((src0, src_shift), (dst0, dst_shift))

(* Debug re-validation of rebased schedules served from the hit path:
   off in normal runs (the rebase is a pure uniform translation), on
   under LAMS_DEBUG=1 or Cache.set_debug_validate, where every hit
   re-runs the full structural validator so a canonicalization bug
   surfaces at the cache boundary instead of as silent data corruption
   downstream. *)
let debug_validate =
  ref
    (match Sys.getenv_opt "LAMS_DEBUG" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let set_debug_validate b = debug_validate := b
let debug_validate_enabled () = !debug_validate

let checked_rebase sched ~src_delta ~dst_delta =
  let rebased = Schedule.rebase sched ~src_delta ~dst_delta in
  if !debug_validate then
    (match Schedule.validate rebased with
    | Ok () -> ()
    | Error msg ->
        invalid_arg
          ("Sched.Cache: rebased schedule failed validation: " ^ msg));
  rebased

type key = {
  sp : int;
  sk : int;
  ssec : int * int * int;
  dp : int;
  dk : int;
  dsec : int * int * int;
}

type slot = { sched : Schedule.t; mutable last_used : int }

let default_capacity = 32
let cap = ref default_capacity
let tick = ref 0
let table_mutex = Mutex.create ()
let cache : (key, slot) Hashtbl.t = Hashtbl.create 32

(* Callers hold [table_mutex]. *)
let evict_down_to target =
  while Hashtbl.length cache > target do
    let victim = ref None in
    Hashtbl.iter
      (fun key slot ->
        match !victim with
        | Some (_, age) when age <= slot.last_used -> ()
        | _ -> victim := Some (key, slot.last_used))
      cache;
    match !victim with
    | None -> ()
    | Some (key, _) ->
        Hashtbl.remove cache key;
        Lams_obs.Obs.incr c_evictions
  done

let triplet (s : Section.t) = (s.Section.lo, s.Section.hi, s.Section.stride)

let find ~src_layout ~src_section ~dst_layout ~dst_section =
  let src0, src_shift = canonical_side src_layout src_section in
  let dst0, dst_shift = canonical_side dst_layout dst_section in
  let key =
    { sp = src_layout.Layout.p;
      sk = src_layout.Layout.k;
      ssec = triplet src0;
      dp = dst_layout.Layout.p;
      dk = dst_layout.Layout.k;
      dsec = triplet dst0 }
  in
  Mutex.lock table_mutex;
  match Hashtbl.find_opt cache key with
  | Some slot ->
      incr tick;
      slot.last_used <- !tick;
      Mutex.unlock table_mutex;
      Lams_obs.Obs.incr c_hits;
      checked_rebase slot.sched ~src_delta:src_shift ~dst_delta:dst_shift
  | None ->
      Mutex.unlock table_mutex;
      Lams_obs.Obs.incr c_misses;
      (* Build outside the lock; a racing double-build of the same key
         is harmless (both schedules are correct, first insert wins). *)
      let sched =
        Schedule.build ~src_layout ~src_section:src0 ~dst_layout
          ~dst_section:dst0
      in
      Mutex.lock table_mutex;
      (if !cap > 0 && not (Hashtbl.mem cache key) then begin
         evict_down_to (!cap - 1);
         incr tick;
         Hashtbl.add cache key { sched; last_used = !tick }
       end);
      Mutex.unlock table_mutex;
      Schedule.rebase sched ~src_delta:src_shift ~dst_delta:dst_shift

let size () =
  Mutex.lock table_mutex;
  let n = Hashtbl.length cache in
  Mutex.unlock table_mutex;
  n

let capacity () = !cap

let set_capacity n =
  Mutex.lock table_mutex;
  cap := max 0 n;
  evict_down_to !cap;
  Mutex.unlock table_mutex

let clear () =
  Mutex.lock table_mutex;
  Hashtbl.reset cache;
  tick := 0;
  Mutex.unlock table_mutex
