open Lams_dist
open Lams_sim

let c_packed_bytes =
  Lams_obs.Obs.counter "sched.packed_bytes" ~units:"bytes"
    ~doc:"payload bytes moved through packed round messages"

let c_executions =
  Lams_obs.Obs.counter "sched.executions" ~units:"schedules"
    ~doc:"schedules executed on the simulated machine"

let run_phase ~parallel ~p f =
  if parallel then Spmd.run_parallel ~p f else Spmd.run ~p ~f

(* Execute a schedule. One pack phase gathers every outgoing buffer —
   all the reads — before any delivery writes, so [src] and [dst] may
   alias (overlapping in-array shifts), exactly like the legacy
   two-phase exchange. Then the self-transfers unpack locally and each
   round becomes a send phase (post one pre-packed message per
   transfer, tag = round index) and a recv phase (drain + unpack) with
   a barrier between them. Rounds are contention-free, so within a
   round every mailbox holds at most one message —
   Network.max_congestion stays at 1 — and arrival order is
   immaterial, which is what makes the [parallel] phases
   deterministic. *)
let run ?net ?(parallel = false) (sched : Schedule.t) ~src ~dst =
  if Darray.procs src <> sched.Schedule.src_procs
     || Darray.procs dst <> sched.Schedule.dst_procs
  then invalid_arg "Executor.run: schedule built for other layouts";
  let p = max sched.Schedule.src_procs sched.Schedule.dst_procs in
  let net =
    match net with
    | None -> Network.create ~p
    | Some n ->
        if Network.procs n < p then
          invalid_arg "Executor.run: network smaller than the machine";
        n
  in
  Lams_obs.Obs.incr c_executions;
  let locals = Array.of_list sched.Schedule.locals in
  let rounds = Array.of_list (List.map Array.of_list sched.Schedule.rounds) in
  let buf_for (tr : Schedule.transfer) = Array.make tr.Schedule.elements 0. in
  let local_bufs = Array.map buf_for locals in
  let round_bufs = Array.map (Array.map buf_for) rounds in
  let pack_from m (tr : Schedule.transfer) buf =
    if tr.Schedule.src_proc = m then
      Pack.pack tr.Schedule.src_side
        ~data:(Local_store.data (Darray.local src m))
        ~buf
  in
  let pack_phase m =
    Array.iteri (fun i tr -> pack_from m tr local_bufs.(i)) locals;
    Array.iteri
      (fun r round ->
        Array.iteri (fun i tr -> pack_from m tr round_bufs.(r).(i)) round)
      rounds
  in
  let locals_phase m =
    Array.iteri
      (fun i (tr : Schedule.transfer) ->
        if tr.Schedule.src_proc = m then
          Pack.unpack tr.Schedule.dst_side ~buf:local_bufs.(i)
            ~data:(Local_store.data (Darray.local dst m)))
      locals
  in
  let send_phase r round m =
    Array.iteri
      (fun i (tr : Schedule.transfer) ->
        if tr.Schedule.src_proc = m then begin
          Network.send net ~src:m ~dst:tr.Schedule.dst_proc ~tag:r
            ~addresses:[||] ~payload:round_bufs.(r).(i);
          Lams_obs.Obs.add c_packed_bytes
            (Network.bytes_per_element * tr.Schedule.elements)
        end)
      round
  in
  let recv_phase round m =
    if Array.exists (fun tr -> tr.Schedule.dst_proc = m) round then
      List.iter
        (fun (msg : Network.message) ->
          match
            Array.find_opt
              (fun tr ->
                tr.Schedule.src_proc = msg.Network.src
                && tr.Schedule.dst_proc = m)
              round
          with
          | None ->
              invalid_arg "Executor.run: unscheduled message in round"
          | Some tr ->
              Pack.unpack tr.Schedule.dst_side ~buf:msg.Network.payload
                ~data:(Local_store.data (Darray.local dst m)))
        (Network.receive_all net ~dst:m)
  in
  run_phase ~parallel ~p pack_phase;
  run_phase ~parallel ~p locals_phase;
  Array.iteri
    (fun r round ->
      run_phase ~parallel ~p (send_phase r round);
      run_phase ~parallel ~p (recv_phase round))
    rounds;
  net

let check_section (a : Darray.t) sec =
  if Section.is_empty sec then invalid_arg "Executor: empty section";
  let norm = Section.normalize sec in
  if norm.Section.lo < 0 || norm.Section.hi >= Darray.size a then
    invalid_arg "Executor: section outside the array"

let redistribute ?net ?parallel ~src ~src_section ~dst ~dst_section () =
  check_section src src_section;
  check_section dst dst_section;
  if Section.count src_section <> Section.count dst_section then
    invalid_arg "Executor.redistribute: section element counts differ";
  let sched =
    Cache.find ~src_layout:(Darray.layout src) ~src_section
      ~dst_layout:(Darray.layout dst) ~dst_section
  in
  run ?net ?parallel sched ~src ~dst
