open Lams_dist
open Lams_sim

type packing = Blit | Elementwise

let c_packed_bytes =
  Lams_obs.Obs.counter "sched.packed_bytes" ~units:"bytes"
    ~doc:"payload bytes moved through packed round messages"

let c_executions =
  Lams_obs.Obs.counter "sched.executions" ~units:"schedules"
    ~doc:"schedules executed on the simulated machine"

let c_legacy_fallbacks =
  Lams_obs.Obs.counter "sched.executor.legacy_fallbacks" ~units:"runs"
    ~doc:"scheduled runs abandoned to the legacy Section_ops.copy path \
          after the crash-respawn budget ran out"

let c_adaptive_runs =
  Lams_obs.Obs.counter "sched.executor.adaptive_runs" ~units:"runs"
    ~doc:"scheduled runs planned with link-health costs"

let c_replans =
  Lams_obs.Obs.counter "sched.executor.replans" ~units:"replans"
    ~doc:"mid-exchange re-plans of the remaining rounds after a link \
          turned sick"

(* Distinguishes concurrent and back-to-back runs sharing one fabric:
   protocol messages carry the run id, so a straggler from a previous
   run is dropped instead of misdelivered. *)
let run_counter = Atomic.make 1

(* Execute a schedule. One pack phase gathers every outgoing buffer —
   all the reads — before any delivery writes, so [src] and [dst] may
   alias (overlapping in-array shifts), exactly like the legacy
   two-phase exchange. Then the self-transfers unpack locally and each
   round becomes a send phase (post one pre-packed message per
   transfer, tag = round index) and a recv phase (drain + unpack) with
   a barrier between them. Rounds are contention-free, so within a
   round every mailbox holds at most one message —
   Network.max_congestion stays at 1 — and arrival order is
   immaterial, which is what makes the [parallel] phases
   deterministic.

   On a faulty fabric the rounds run through the {!Reliable} protocol
   instead (sequence numbers, checksums, ack/retransmit); crashed ranks
   are respawned from the [respawns] budget, and when that is spent the
   degradation ladder applies: an aliasing run ([src == dst]) replays
   every undelivered transfer from the pre-packed buffers (always
   correct — packing happened before any write), a non-aliasing run
   re-raises so {!redistribute} can fall back to the legacy oracle
   exchange. Whatever happens, posted-but-undrained messages are purged
   before control leaves, so a reused fabric never pins this run's
   packed buffers. *)
let run ?net ?(parallel = false) ?reliable ?(respawns = 0) ?(packing = Blit)
    ?(adaptive = false) (sched : Schedule.t) ~src ~dst =
  if Darray.procs src <> sched.Schedule.src_procs
     || Darray.procs dst <> sched.Schedule.dst_procs
  then invalid_arg "Executor.run: schedule built for other layouts";
  let health_cost ~src ~dst = Link_health.cost ~src ~dst in
  (* Cost-aware planning happens before any buffer is acquired: the
     reweighted schedule's (possibly split) transfers are what gets
     packed. With no health data every cost is exactly 1.0 and
     [reweight] returns the schedule physically unchanged, so the
     adaptive path is bit-identical to the cost-blind one. *)
  let sched =
    if adaptive then begin
      Lams_obs.Obs.incr c_adaptive_runs;
      Schedule.reweight sched ~cost:health_cost
    end
    else sched
  in
  let p = max sched.Schedule.src_procs sched.Schedule.dst_procs in
  let net =
    match net with
    | None -> Network.create ~p
    | Some n ->
        if Network.procs n < p then
          invalid_arg "Executor.run: network smaller than the machine";
        n
  in
  Lams_obs.Obs.incr c_executions;
  (* A faulty fabric silently enables the protocol; without faults the
     seed path below stays bit-identical to the plain executor. *)
  let rel =
    match reliable with
    | Some _ as r -> r
    | None -> if Network.has_faults net then Some Reliable.default_config else None
  in
  let budget = if respawns > 0 then Some (Spmd.respawn_budget respawns) else None in
  let run_phase f = Spmd.run_protected ?budget ~parallel ~p f in
  let pack_side, unpack_side =
    match packing with
    | Blit -> (Pack.pack, Pack.unpack)
    | Elementwise -> (Pack.pack_elementwise, Pack.unpack_elementwise)
  in
  let locals = Array.of_list sched.Schedule.locals in
  let rounds = Array.of_list (List.map Array.of_list sched.Schedule.rounds) in
  (* Payload buffers come from the per-domain pool: packing overwrites
     every cell (a side's blocks partition [0, elements)), so reuse
     needs no zeroing, and a steady-state exchange allocates no payload
     garbage at all. They are released in the [finally] below, after the
     fabric has been drained or purged — nothing can still reference
     them. *)
  let buf_for (tr : Schedule.transfer) = Pool.acquire tr.Schedule.elements in
  let local_bufs = Array.map buf_for locals in
  let round_bufs = Array.map (Array.map buf_for) rounds in
  let release_bufs () =
    Array.iter Pool.release local_bufs;
    Array.iter (Array.iter Pool.release) round_bufs
  in
  Fun.protect ~finally:release_bufs @@ fun () ->
  let pack_from m (tr : Schedule.transfer) buf =
    if tr.Schedule.src_proc = m then
      pack_side tr.Schedule.src_side
        ~data:(Local_store.data (Darray.local src m))
        ~buf
  in
  let pack_phase m =
    Array.iteri (fun i tr -> pack_from m tr local_bufs.(i)) locals;
    Array.iteri
      (fun r round ->
        Array.iteri (fun i tr -> pack_from m tr round_bufs.(r).(i)) round)
      rounds
  in
  let locals_phase m =
    Array.iteri
      (fun i (tr : Schedule.transfer) ->
        if tr.Schedule.src_proc = m then
          unpack_side tr.Schedule.dst_side ~buf:local_bufs.(i)
            ~data:(Local_store.data (Darray.local dst m)))
      locals
  in
  run_phase pack_phase;
  run_phase locals_phase;
  (match rel with
  | None ->
      (* The seed path, unchanged: one send and one recv phase per
         round, bare (headerless) packed messages. *)
      let send_phase r round m =
        Array.iteri
          (fun i (tr : Schedule.transfer) ->
            if tr.Schedule.src_proc = m then begin
              Network.send net ~src:m ~dst:tr.Schedule.dst_proc ~tag:r
                ~addresses:[||] ~payload:round_bufs.(r).(i);
              Lams_obs.Obs.add c_packed_bytes
                (Network.bytes_per_element * tr.Schedule.elements)
            end)
          round
      in
      let recv_phase round m =
        if Array.exists (fun tr -> tr.Schedule.dst_proc = m) round then
          List.iter
            (fun (msg : Network.message) ->
              match
                Array.find_opt
                  (fun tr ->
                    tr.Schedule.src_proc = msg.Network.src
                    && tr.Schedule.dst_proc = m)
                  round
              with
              | None ->
                  invalid_arg "Executor.run: unscheduled message in round"
              | Some tr ->
                  unpack_side tr.Schedule.dst_side ~buf:msg.Network.payload
                    ~data:(Local_store.data (Darray.local dst m)))
            (Network.receive_all net ~dst:m)
      in
      (try
         Array.iteri
           (fun r round ->
             run_phase (send_phase r round);
             run_phase (recv_phase round))
           rounds
       with e ->
         (* Don't leak this run's packed buffers (still referenced by
            posted-but-undrained messages) into a reused fabric. *)
         ignore (Network.purge net : int);
         raise e)
  | Some cfg ->
      let run_id = Atomic.fetch_and_add run_counter 1 in
      let delivered = Array.init p (fun _ -> Hashtbl.create 16) in
      let dst_data m = Local_store.data (Darray.local dst m) in
      (* Sequence numbers are a monotone per-run counter: re-planning
         mints fresh seqs for split pieces, and a fresh seq can never
         collide with one a receiver already recorded in [delivered]. *)
      let next_seq = ref 0 in
      let fresh_seq () =
        let s = !next_seq in
        incr next_seq;
        s
      in
      (* The live plan: rounds of (transfer, seq, pre-packed buffer)
         triples. [completed] collects rounds the protocol has finished;
         together they always cover exactly the authoritative transfer
         set (a re-plan replaces pending triples wholesale — the
         replaced seqs were never sent). *)
      let pending =
        ref
          (Array.to_list
             (Array.mapi
                (fun r round ->
                  Array.mapi
                    (fun i tr -> (tr, fresh_seq (), round_bufs.(r).(i)))
                    round)
                rounds))
      in
      let completed = ref [] in
      (* The bottom rung that is always available in-run: any transfer
         not yet delivered is unpacked straight from its pre-packed
         buffer. Packing happened before any write, so this is correct
         even when [src] and [dst] alias. *)
      let replay_undelivered () =
        let replay ((tr : Schedule.transfer), seq, buf) =
          let m = tr.Schedule.dst_proc in
          if not (Hashtbl.mem delivered.(m) seq) then begin
            Hashtbl.add delivered.(m) seq ();
            Pack.unpack tr.Schedule.dst_side ~buf ~data:(dst_data m);
            Reliable.note_downgrade ()
          end
        in
        List.iter (Array.iter replay) !completed;
        List.iter (Array.iter replay) !pending
      in
      (* Links currently billed sick among the not-yet-sent transfers.
         A re-plan fires when this set grows past what the current plan
         was built around — backoff on a link crossing the sickness
         threshold mid-exchange is exactly the signal. *)
      let sick_now () =
        List.fold_left
          (fun acc round ->
            Array.fold_left
              (fun acc ((tr : Schedule.transfer), _, _) ->
                let key = (tr.Schedule.src_proc, tr.Schedule.dst_proc) in
                if
                  (not (List.mem key acc))
                  && Link_health.is_sick ~src:tr.Schedule.src_proc
                       ~dst:tr.Schedule.dst_proc
                then key :: acc
                else acc)
              acc round)
          [] !pending
      in
      let planned_sick = ref (if adaptive then sick_now () else []) in
      (* Re-plan the remaining rounds against current link costs:
         re-split any transfer now over budget (its pieces are sub-views
         of the already-packed buffer — the data plane is untouched) and
         regroup everything heaviest-first. Only never-sent transfers
         are touched, so exactly-once delivery is preserved. *)
      let replan () =
        Lams_obs.Obs.incr c_replans;
        let triples = List.concat_map Array.to_list !pending in
        let budget =
          List.fold_left
            (fun a ((tr : Schedule.transfer), _, _) ->
              Float.max a (float_of_int tr.Schedule.elements))
            1. triples
        in
        let pieces =
          List.concat_map
            (fun (((tr : Schedule.transfer), _, buf) as triple) ->
              let w = Schedule.weigh tr ~cost:health_cost in
              if w > budget && tr.Schedule.elements > 1 then begin
                match
                  Schedule.split_transfer tr
                    ~parts:(int_of_float (ceil (w /. budget)))
                with
                | [ _ ] -> [ triple ]
                | parts ->
                    let off = ref 0 in
                    List.map
                      (fun (piece : Schedule.transfer) ->
                        let pb =
                          Lams_util.Fbuf.sub buf ~pos:!off
                            ~len:piece.Schedule.elements
                        in
                        off := !off + piece.Schedule.elements;
                        (piece, fresh_seq (), pb))
                      parts
              end
              else [ triple ])
            triples
        in
        pending :=
          Schedule.regroup
            ~weight:(fun tr -> Schedule.weigh tr ~cost:health_cost)
            (List.map (fun ((tr, _, _) as triple) -> (tr, triple)) pieces)
          |> List.map (fun round -> Array.of_list (List.map snd round))
      in
      (try
         let tag = ref 0 in
         let rec drive () =
           match !pending with
           | [] -> ()
           | round :: rest ->
               let transfers = Array.map (fun (tr, _, _) -> tr) round in
               let seqs = Array.map (fun (_, s, _) -> s) round in
               let bufs = Array.map (fun (_, _, b) -> b) round in
               Reliable.exchange cfg ~net ~p ~run_id ~tag:!tag ~transfers
                 ~seqs ~bufs ~dst_data ~delivered ~run_phase;
               incr tag;
               completed := round :: !completed;
               pending := rest;
               Array.iter
                 (fun (tr : Schedule.transfer) ->
                   Lams_obs.Obs.add c_packed_bytes
                     (Network.bytes_per_element * tr.Schedule.elements))
                 transfers;
               if adaptive && !pending <> [] then begin
                 let sick = sick_now () in
                 if
                   List.exists
                     (fun l -> not (List.mem l !planned_sick))
                     sick
                 then begin
                   planned_sick := sick;
                   replan ()
                 end
               end;
               drive ()
         in
         drive ();
         (* Protocol stragglers (delayed duplicates, late acks) must not
            greet the caller's next exchange on this fabric. *)
         ignore (Network.purge net : int)
       with
      | Spmd.Crash _ when src == dst ->
          (* Crash budget exhausted mid-protocol on an aliasing run: the
             legacy fallback would re-read partially overwritten source
             memory, so finish from the pre-packed buffers instead. *)
          ignore (Network.purge net : int);
          replay_undelivered ()
      | e ->
          ignore (Network.purge net : int);
          raise e));
  net

let check_section (a : Darray.t) sec =
  if Section.is_empty sec then invalid_arg "Executor: empty section";
  let norm = Section.normalize sec in
  if norm.Section.lo < 0 || norm.Section.hi >= Darray.size a then
    invalid_arg "Executor: section outside the array"

let redistribute ?net ?parallel ?reliable ?respawns ?packing ?adaptive ~src
    ~src_section ~dst ~dst_section () =
  check_section src src_section;
  check_section dst dst_section;
  if Section.count src_section <> Section.count dst_section then
    invalid_arg "Executor.redistribute: section element counts differ";
  (* The cache stays cost-blind: entries are canonical unweighted
     schedules, and the adaptive reweight is applied per run inside
     [run] — health changes between two hits on the same entry. *)
  let sched =
    Cache.find ~src_layout:(Darray.layout src) ~src_section
      ~dst_layout:(Darray.layout dst) ~dst_section
  in
  try run ?net ?parallel ?reliable ?respawns ?packing ?adaptive sched ~src ~dst
  with Spmd.Crash _ ->
    (* The respawn budget ran out and the run could not finish in
       place: degrade to the legacy oracle exchange on a perfect
       replacement fabric (re-reading [src] is safe here — the aliasing
       case was already handled inside [run]) and record the downgrade
       instead of raising. *)
    Lams_obs.Obs.incr c_legacy_fallbacks;
    Section_ops.copy ~src ~src_section ~dst ~dst_section ()
