open Lams_dist
open Lams_sim

type packing = Blit | Elementwise

let c_packed_bytes =
  Lams_obs.Obs.counter "sched.packed_bytes" ~units:"bytes"
    ~doc:"payload bytes moved through packed round messages"

let c_executions =
  Lams_obs.Obs.counter "sched.executions" ~units:"schedules"
    ~doc:"schedules executed on the simulated machine"

let c_legacy_fallbacks =
  Lams_obs.Obs.counter "sched.executor.legacy_fallbacks" ~units:"runs"
    ~doc:"scheduled runs abandoned to the legacy Section_ops.copy path \
          after the crash-respawn budget ran out"

(* Distinguishes concurrent and back-to-back runs sharing one fabric:
   protocol messages carry the run id, so a straggler from a previous
   run is dropped instead of misdelivered. *)
let run_counter = Atomic.make 1

(* Execute a schedule. One pack phase gathers every outgoing buffer —
   all the reads — before any delivery writes, so [src] and [dst] may
   alias (overlapping in-array shifts), exactly like the legacy
   two-phase exchange. Then the self-transfers unpack locally and each
   round becomes a send phase (post one pre-packed message per
   transfer, tag = round index) and a recv phase (drain + unpack) with
   a barrier between them. Rounds are contention-free, so within a
   round every mailbox holds at most one message —
   Network.max_congestion stays at 1 — and arrival order is
   immaterial, which is what makes the [parallel] phases
   deterministic.

   On a faulty fabric the rounds run through the {!Reliable} protocol
   instead (sequence numbers, checksums, ack/retransmit); crashed ranks
   are respawned from the [respawns] budget, and when that is spent the
   degradation ladder applies: an aliasing run ([src == dst]) replays
   every undelivered transfer from the pre-packed buffers (always
   correct — packing happened before any write), a non-aliasing run
   re-raises so {!redistribute} can fall back to the legacy oracle
   exchange. Whatever happens, posted-but-undrained messages are purged
   before control leaves, so a reused fabric never pins this run's
   packed buffers. *)
let run ?net ?(parallel = false) ?reliable ?(respawns = 0) ?(packing = Blit)
    (sched : Schedule.t) ~src ~dst =
  if Darray.procs src <> sched.Schedule.src_procs
     || Darray.procs dst <> sched.Schedule.dst_procs
  then invalid_arg "Executor.run: schedule built for other layouts";
  let p = max sched.Schedule.src_procs sched.Schedule.dst_procs in
  let net =
    match net with
    | None -> Network.create ~p
    | Some n ->
        if Network.procs n < p then
          invalid_arg "Executor.run: network smaller than the machine";
        n
  in
  Lams_obs.Obs.incr c_executions;
  (* A faulty fabric silently enables the protocol; without faults the
     seed path below stays bit-identical to the plain executor. *)
  let rel =
    match reliable with
    | Some _ as r -> r
    | None -> if Network.has_faults net then Some Reliable.default_config else None
  in
  let budget = if respawns > 0 then Some (Spmd.respawn_budget respawns) else None in
  let run_phase f = Spmd.run_protected ?budget ~parallel ~p f in
  let pack_side, unpack_side =
    match packing with
    | Blit -> (Pack.pack, Pack.unpack)
    | Elementwise -> (Pack.pack_elementwise, Pack.unpack_elementwise)
  in
  let locals = Array.of_list sched.Schedule.locals in
  let rounds = Array.of_list (List.map Array.of_list sched.Schedule.rounds) in
  (* Payload buffers come from the per-domain pool: packing overwrites
     every cell (a side's blocks partition [0, elements)), so reuse
     needs no zeroing, and a steady-state exchange allocates no payload
     garbage at all. They are released in the [finally] below, after the
     fabric has been drained or purged — nothing can still reference
     them. *)
  let buf_for (tr : Schedule.transfer) = Pool.acquire tr.Schedule.elements in
  let local_bufs = Array.map buf_for locals in
  let round_bufs = Array.map (Array.map buf_for) rounds in
  let release_bufs () =
    Array.iter Pool.release local_bufs;
    Array.iter (Array.iter Pool.release) round_bufs
  in
  Fun.protect ~finally:release_bufs @@ fun () ->
  let pack_from m (tr : Schedule.transfer) buf =
    if tr.Schedule.src_proc = m then
      pack_side tr.Schedule.src_side
        ~data:(Local_store.data (Darray.local src m))
        ~buf
  in
  let pack_phase m =
    Array.iteri (fun i tr -> pack_from m tr local_bufs.(i)) locals;
    Array.iteri
      (fun r round ->
        Array.iteri (fun i tr -> pack_from m tr round_bufs.(r).(i)) round)
      rounds
  in
  let locals_phase m =
    Array.iteri
      (fun i (tr : Schedule.transfer) ->
        if tr.Schedule.src_proc = m then
          unpack_side tr.Schedule.dst_side ~buf:local_bufs.(i)
            ~data:(Local_store.data (Darray.local dst m)))
      locals
  in
  run_phase pack_phase;
  run_phase locals_phase;
  (match rel with
  | None ->
      (* The seed path, unchanged: one send and one recv phase per
         round, bare (headerless) packed messages. *)
      let send_phase r round m =
        Array.iteri
          (fun i (tr : Schedule.transfer) ->
            if tr.Schedule.src_proc = m then begin
              Network.send net ~src:m ~dst:tr.Schedule.dst_proc ~tag:r
                ~addresses:[||] ~payload:round_bufs.(r).(i);
              Lams_obs.Obs.add c_packed_bytes
                (Network.bytes_per_element * tr.Schedule.elements)
            end)
          round
      in
      let recv_phase round m =
        if Array.exists (fun tr -> tr.Schedule.dst_proc = m) round then
          List.iter
            (fun (msg : Network.message) ->
              match
                Array.find_opt
                  (fun tr ->
                    tr.Schedule.src_proc = msg.Network.src
                    && tr.Schedule.dst_proc = m)
                  round
              with
              | None ->
                  invalid_arg "Executor.run: unscheduled message in round"
              | Some tr ->
                  unpack_side tr.Schedule.dst_side ~buf:msg.Network.payload
                    ~data:(Local_store.data (Darray.local dst m)))
            (Network.receive_all net ~dst:m)
      in
      (try
         Array.iteri
           (fun r round ->
             run_phase (send_phase r round);
             run_phase (recv_phase round))
           rounds
       with e ->
         (* Don't leak this run's packed buffers (still referenced by
            posted-but-undrained messages) into a reused fabric. *)
         ignore (Network.purge net : int);
         raise e)
  | Some cfg ->
      let run_id = Atomic.fetch_and_add run_counter 1 in
      let delivered = Array.init p (fun _ -> Hashtbl.create 16) in
      let dst_data m = Local_store.data (Darray.local dst m) in
      let width =
        Array.fold_left (fun acc r -> max acc (Array.length r)) 1 rounds
      in
      let seqs =
        Array.mapi
          (fun r round -> Array.mapi (fun i _ -> (r * width) + i) round)
          rounds
      in
      (* The bottom rung that is always available in-run: any transfer
         not yet delivered is unpacked straight from its pre-packed
         buffer. Packing happened before any write, so this is correct
         even when [src] and [dst] alias. *)
      let replay_undelivered () =
        Array.iteri
          (fun r round ->
            Array.iteri
              (fun i (tr : Schedule.transfer) ->
                let seq = seqs.(r).(i) in
                let m = tr.Schedule.dst_proc in
                if not (Hashtbl.mem delivered.(m) seq) then begin
                  Hashtbl.add delivered.(m) seq ();
                  Pack.unpack tr.Schedule.dst_side ~buf:round_bufs.(r).(i)
                    ~data:(dst_data m);
                  Reliable.note_downgrade ()
                end)
              round)
          rounds
      in
      (try
         Array.iteri
           (fun r round ->
             Reliable.exchange cfg ~net ~p ~run_id ~tag:r ~transfers:round
               ~seqs:seqs.(r) ~bufs:round_bufs.(r) ~dst_data ~delivered
               ~run_phase;
             Array.iter
               (fun (tr : Schedule.transfer) ->
                 Lams_obs.Obs.add c_packed_bytes
                   (Network.bytes_per_element * tr.Schedule.elements))
               round)
           rounds;
         (* Protocol stragglers (delayed duplicates, late acks) must not
            greet the caller's next exchange on this fabric. *)
         ignore (Network.purge net : int)
       with
      | Spmd.Crash _ when src == dst ->
          (* Crash budget exhausted mid-protocol on an aliasing run: the
             legacy fallback would re-read partially overwritten source
             memory, so finish from the pre-packed buffers instead. *)
          ignore (Network.purge net : int);
          replay_undelivered ()
      | e ->
          ignore (Network.purge net : int);
          raise e));
  net

let check_section (a : Darray.t) sec =
  if Section.is_empty sec then invalid_arg "Executor: empty section";
  let norm = Section.normalize sec in
  if norm.Section.lo < 0 || norm.Section.hi >= Darray.size a then
    invalid_arg "Executor: section outside the array"

let redistribute ?net ?parallel ?reliable ?respawns ?packing ~src
    ~src_section ~dst ~dst_section () =
  check_section src src_section;
  check_section dst dst_section;
  if Section.count src_section <> Section.count dst_section then
    invalid_arg "Executor.redistribute: section element counts differ";
  let sched =
    Cache.find ~src_layout:(Darray.layout src) ~src_section
      ~dst_layout:(Darray.layout dst) ~dst_section
  in
  try run ?net ?parallel ?reliable ?respawns ?packing sched ~src ~dst
  with Spmd.Crash _ ->
    (* The respawn budget ran out and the run could not finish in
       place: degrade to the legacy oracle exchange on a perfect
       replacement fabric (re-reading [src] is safe here — the aliasing
       case was already handled inside [run]) and record the downgrade
       instead of raising. *)
    Lams_obs.Obs.incr c_legacy_fallbacks;
    Section_ops.copy ~src ~src_section ~dst ~dst_section ()
