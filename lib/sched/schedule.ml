open Lams_dist
open Lams_sim

type transfer = {
  src_proc : int;
  dst_proc : int;
  elements : int;
  src_side : Pack.side;
  dst_side : Pack.side;
}

type round = transfer list

type t = {
  src_procs : int;
  dst_procs : int;
  total : int;
  locals : transfer list;
  rounds : round list;
  max_degree : int;
}

let c_builds =
  Lams_obs.Obs.counter "sched.builds" ~units:"schedules"
    ~doc:"communication schedules lowered from comm sets"

let c_rounds =
  Lams_obs.Obs.counter "sched.rounds" ~units:"rounds"
    ~doc:"contention-free rounds emitted by the inspector"

let d_congestion =
  Lams_obs.Obs.distribution "sched.max_congestion" ~units:"messages"
    ~doc:
      "per-schedule max transfer degree: messages the busiest processor \
       must serialize (lower bound on rounds, met by the coloring)"

(* Bipartite edge coloring with at most Δ colors (König's theorem,
   constructive form). Senders and receivers are the two vertex sets —
   a rank may both send and receive in the same round. For each edge
   (u, v): take α = smallest color free at u, β = smallest free at v.
   If one color is free at both, use it; otherwise flip the maximal
   α/β-alternating path starting at v — in a proper partial coloring
   the α/β subgraph has max degree 2, so the walk is a simple path, and
   it cannot end at u (it would have to arrive there on an α edge, but
   α is free at u) — after which α is free at both ends. Every edge
   therefore gets a color < Δ, i.e. rounds <= max degree. *)
let color_edges ~n_src ~n_dst (edges : (int * int) array) =
  let ne = Array.length edges in
  let deg_s = Array.make (max 1 n_src) 0 in
  let deg_d = Array.make (max 1 n_dst) 0 in
  Array.iter
    (fun (u, v) ->
      deg_s.(u) <- deg_s.(u) + 1;
      deg_d.(v) <- deg_d.(v) + 1)
    edges;
  let delta =
    max (Array.fold_left max 0 deg_s) (Array.fold_left max 0 deg_d)
  in
  let width = max 1 delta in
  (* src_at.(u).(c) / dst_at.(v).(c): edge id colored [c] at that
     vertex, or -1. *)
  let src_at = Array.make_matrix (max 1 n_src) width (-1) in
  let dst_at = Array.make_matrix (max 1 n_dst) width (-1) in
  let colors = Array.make (max 1 ne) (-1) in
  let free_at mat x =
    let c = ref 0 in
    while mat.(x).(!c) >= 0 do
      incr c
    done;
    !c
  in
  Array.iteri
    (fun e (u, v) ->
      let a = free_at src_at u in
      let b = free_at dst_at v in
      let c =
        if a = b || dst_at.(v).(a) < 0 then a
        else begin
          (* Walk the α/β path from v: α-edge at a receiver, β-edge at
             a sender, alternating. Collect, then flip in two passes
             (clear-then-set avoids ordering hazards at shared
             vertices). *)
          let path = ref [] in
          let continue_ = ref true in
          let at_dst = ref true in
          let vertex = ref v in
          while !continue_ do
            let edge =
              if !at_dst then dst_at.(!vertex).(a)
              else src_at.(!vertex).(b)
            in
            if edge < 0 then continue_ := false
            else begin
              path := edge :: !path;
              let eu, ev = edges.(edge) in
              vertex := (if !at_dst then eu else ev);
              at_dst := not !at_dst
            end
          done;
          let path = List.rev !path in
          List.iter
            (fun e' ->
              let eu, ev = edges.(e') in
              let c' = colors.(e') in
              if src_at.(eu).(c') = e' then src_at.(eu).(c') <- -1;
              if dst_at.(ev).(c') = e' then dst_at.(ev).(c') <- -1)
            path;
          List.iter
            (fun e' ->
              let eu, ev = edges.(e') in
              let c' = if colors.(e') = a then b else a in
              colors.(e') <- c';
              src_at.(eu).(c') <- e';
              dst_at.(ev).(c') <- e')
            path;
          a
        end
      in
      colors.(e) <- c;
      src_at.(u).(c) <- e;
      dst_at.(v).(c) <- e)
    edges;
  (colors, delta)

let build ~src_layout ~src_section ~dst_layout ~dst_section =
  let cs = Comm_sets.build ~src_layout ~src_section ~dst_layout ~dst_section in
  let lower (tr : Comm_sets.transfer) =
    { src_proc = tr.Comm_sets.src_proc;
      dst_proc = tr.Comm_sets.dst_proc;
      elements = tr.Comm_sets.elements;
      src_side =
        Pack.build_side ~layout:src_layout ~section:src_section
          ~proc:tr.Comm_sets.src_proc tr.Comm_sets.runs;
      dst_side =
        Pack.build_side ~layout:dst_layout ~section:dst_section
          ~proc:tr.Comm_sets.dst_proc tr.Comm_sets.runs }
  in
  let locals, cross =
    List.partition
      (fun (tr : Comm_sets.transfer) ->
        tr.Comm_sets.src_proc = tr.Comm_sets.dst_proc)
      cs.Comm_sets.transfers
  in
  let locals = List.map lower locals in
  let cross = Array.of_list (List.map lower cross) in
  let edges = Array.map (fun tr -> (tr.src_proc, tr.dst_proc)) cross in
  let colors, delta =
    color_edges ~n_src:src_layout.Layout.p ~n_dst:dst_layout.Layout.p edges
  in
  (* Bucket edges by color in one pass (the Δ·E rescans this replaces
     were quadratic in the transfer count); cons-then-reverse keeps each
     round in the deterministic edge order the filteri produced. *)
  let rounds =
    let buckets = Array.make (max 1 delta) [] in
    Array.iteri (fun e tr -> buckets.(colors.(e)) <- tr :: buckets.(colors.(e))) cross;
    Array.to_list buckets
    |> List.filter_map (function [] -> None | r -> Some (List.rev r))
  in
  let t =
    { src_procs = src_layout.Layout.p;
      dst_procs = dst_layout.Layout.p;
      total = cs.Comm_sets.total;
      locals;
      rounds;
      max_degree = delta }
  in
  Lams_obs.Obs.incr c_builds;
  Lams_obs.Obs.add c_rounds (List.length rounds);
  Lams_obs.Obs.observe d_congestion (float_of_int delta);
  t

let rounds_count t = List.length t.rounds

let cross_elements t =
  List.fold_left
    (fun acc round ->
      List.fold_left (fun acc tr -> acc + tr.elements) acc round)
    0 t.rounds

let rebase t ~src_delta ~dst_delta =
  if src_delta = 0 && dst_delta = 0 then t
  else begin
    let shift tr =
      { tr with
        src_side = Pack.shift tr.src_side src_delta;
        dst_side = Pack.shift tr.dst_side dst_delta }
    in
    { t with
      locals = List.map shift t.locals;
      rounds = List.map (List.map shift) t.rounds }
  end

let validate t =
  let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  let check_round i round =
    let seen_src = Hashtbl.create 8 and seen_dst = Hashtbl.create 8 in
    List.fold_left
      (fun acc tr ->
        match acc with
        | Error _ as e -> e
        | Ok () ->
            if tr.src_proc = tr.dst_proc then
              fail "round %d contains self-transfer on %d" i tr.src_proc
            else if Hashtbl.mem seen_src tr.src_proc then
              fail "round %d: processor %d sends twice" i tr.src_proc
            else if Hashtbl.mem seen_dst tr.dst_proc then
              fail "round %d: processor %d receives twice" i tr.dst_proc
            else begin
              Hashtbl.add seen_src tr.src_proc ();
              Hashtbl.add seen_dst tr.dst_proc ();
              Ok ()
            end)
      (Ok ()) round
  in
  let check_sides tr acc =
    match acc with
    | Error _ as e -> e
    | Ok () ->
        if tr.src_side.Pack.elements <> tr.elements then
          fail "transfer %d->%d: src side has %d of %d elements" tr.src_proc
            tr.dst_proc tr.src_side.Pack.elements tr.elements
        else if tr.dst_side.Pack.elements <> tr.elements then
          fail "transfer %d->%d: dst side has %d of %d elements" tr.src_proc
            tr.dst_proc tr.dst_side.Pack.elements tr.elements
        else Ok ()
  in
  let rec rounds_ok i = function
    | [] -> Ok ()
    | r :: rest -> begin
        match check_round i r with
        | Error _ as e -> e
        | Ok () -> rounds_ok (i + 1) rest
      end
  in
  match rounds_ok 0 t.rounds with
  | Error _ as e -> e
  | Ok () ->
      let all = t.locals @ List.concat t.rounds in
      let delivered = List.fold_left (fun a tr -> a + tr.elements) 0 all in
      if delivered <> t.total then
        fail "schedule delivers %d of %d elements" delivered t.total
      else if List.length t.rounds > t.max_degree then
        (* The constructive König coloring guarantees <= Δ colors; a
           schedule needing more is a coloring bug, not slack to allow. *)
        fail "%d rounds exceed max degree %d" (List.length t.rounds)
          t.max_degree
      else List.fold_left (fun acc tr -> check_sides tr acc) (Ok ()) all

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d elements (%d local in %d pairs), %d rounds, max degree %d@,"
    t.total
    (List.fold_left (fun a tr -> a + tr.elements) 0 t.locals)
    (List.length t.locals) (List.length t.rounds) t.max_degree;
  List.iteri
    (fun i round ->
      Format.fprintf ppf "  round %d:" i;
      List.iter
        (fun tr ->
          Format.fprintf ppf " %d->%d (%d el, %d+%d blk)" tr.src_proc
            tr.dst_proc tr.elements
            (Pack.block_count tr.src_side)
            (Pack.block_count tr.dst_side))
        round;
      Format.fprintf ppf "@,")
    t.rounds;
  Format.fprintf ppf "@]"
