open Lams_dist
open Lams_sim

type transfer = {
  src_proc : int;
  dst_proc : int;
  elements : int;
  src_side : Pack.side;
  dst_side : Pack.side;
}

type round = transfer list

type t = {
  src_procs : int;
  dst_procs : int;
  total : int;
  locals : transfer list;
  rounds : round list;
  max_degree : int;
  weighted : bool;
}

let c_builds =
  Lams_obs.Obs.counter "sched.builds" ~units:"schedules"
    ~doc:"communication schedules lowered from comm sets"

let c_rounds =
  Lams_obs.Obs.counter "sched.rounds" ~units:"rounds"
    ~doc:"contention-free rounds emitted by the inspector"

let d_congestion =
  Lams_obs.Obs.distribution "sched.max_congestion" ~units:"messages"
    ~doc:
      "per-schedule max transfer degree: messages the busiest processor \
       must serialize (lower bound on rounds, met by the coloring)"

(* Bipartite edge coloring with at most Δ colors (König's theorem,
   constructive form). Senders and receivers are the two vertex sets —
   a rank may both send and receive in the same round. For each edge
   (u, v): take α = smallest color free at u, β = smallest free at v.
   If one color is free at both, use it; otherwise flip the maximal
   α/β-alternating path starting at v — in a proper partial coloring
   the α/β subgraph has max degree 2, so the walk is a simple path, and
   it cannot end at u (it would have to arrive there on an α edge, but
   α is free at u) — after which α is free at both ends. Every edge
   therefore gets a color < Δ, i.e. rounds <= max degree. *)
let color_edges ~n_src ~n_dst (edges : (int * int) array) =
  let ne = Array.length edges in
  let deg_s = Array.make (max 1 n_src) 0 in
  let deg_d = Array.make (max 1 n_dst) 0 in
  Array.iter
    (fun (u, v) ->
      deg_s.(u) <- deg_s.(u) + 1;
      deg_d.(v) <- deg_d.(v) + 1)
    edges;
  let delta =
    max (Array.fold_left max 0 deg_s) (Array.fold_left max 0 deg_d)
  in
  let width = max 1 delta in
  (* src_at.(u).(c) / dst_at.(v).(c): edge id colored [c] at that
     vertex, or -1. *)
  let src_at = Array.make_matrix (max 1 n_src) width (-1) in
  let dst_at = Array.make_matrix (max 1 n_dst) width (-1) in
  let colors = Array.make (max 1 ne) (-1) in
  let free_at mat x =
    let c = ref 0 in
    while mat.(x).(!c) >= 0 do
      incr c
    done;
    !c
  in
  Array.iteri
    (fun e (u, v) ->
      let a = free_at src_at u in
      let b = free_at dst_at v in
      let c =
        if a = b || dst_at.(v).(a) < 0 then a
        else begin
          (* Walk the α/β path from v: α-edge at a receiver, β-edge at
             a sender, alternating. Collect, then flip in two passes
             (clear-then-set avoids ordering hazards at shared
             vertices). *)
          let path = ref [] in
          let continue_ = ref true in
          let at_dst = ref true in
          let vertex = ref v in
          while !continue_ do
            let edge =
              if !at_dst then dst_at.(!vertex).(a)
              else src_at.(!vertex).(b)
            in
            if edge < 0 then continue_ := false
            else begin
              path := edge :: !path;
              let eu, ev = edges.(edge) in
              vertex := (if !at_dst then eu else ev);
              at_dst := not !at_dst
            end
          done;
          let path = List.rev !path in
          List.iter
            (fun e' ->
              let eu, ev = edges.(e') in
              let c' = colors.(e') in
              if src_at.(eu).(c') = e' then src_at.(eu).(c') <- -1;
              if dst_at.(ev).(c') = e' then dst_at.(ev).(c') <- -1)
            path;
          List.iter
            (fun e' ->
              let eu, ev = edges.(e') in
              let c' = if colors.(e') = a then b else a in
              colors.(e') <- c';
              src_at.(eu).(c') <- e';
              dst_at.(ev).(c') <- e')
            path;
          a
        end
      in
      colors.(e) <- c;
      src_at.(u).(c) <- e;
      dst_at.(v).(c) <- e)
    edges;
  (colors, delta)

let build ~src_layout ~src_section ~dst_layout ~dst_section =
  let cs = Comm_sets.build ~src_layout ~src_section ~dst_layout ~dst_section in
  let lower (tr : Comm_sets.transfer) =
    { src_proc = tr.Comm_sets.src_proc;
      dst_proc = tr.Comm_sets.dst_proc;
      elements = tr.Comm_sets.elements;
      src_side =
        Pack.build_side ~layout:src_layout ~section:src_section
          ~proc:tr.Comm_sets.src_proc tr.Comm_sets.runs;
      dst_side =
        Pack.build_side ~layout:dst_layout ~section:dst_section
          ~proc:tr.Comm_sets.dst_proc tr.Comm_sets.runs }
  in
  let locals, cross =
    List.partition
      (fun (tr : Comm_sets.transfer) ->
        tr.Comm_sets.src_proc = tr.Comm_sets.dst_proc)
      cs.Comm_sets.transfers
  in
  let locals = List.map lower locals in
  let cross = Array.of_list (List.map lower cross) in
  let edges = Array.map (fun tr -> (tr.src_proc, tr.dst_proc)) cross in
  let colors, delta =
    color_edges ~n_src:src_layout.Layout.p ~n_dst:dst_layout.Layout.p edges
  in
  (* Bucket edges by color in one pass (the Δ·E rescans this replaces
     were quadratic in the transfer count); cons-then-reverse keeps each
     round in the deterministic edge order the filteri produced. *)
  let rounds =
    let buckets = Array.make (max 1 delta) [] in
    Array.iteri (fun e tr -> buckets.(colors.(e)) <- tr :: buckets.(colors.(e))) cross;
    Array.to_list buckets
    |> List.filter_map (function [] -> None | r -> Some (List.rev r))
  in
  let t =
    { src_procs = src_layout.Layout.p;
      dst_procs = dst_layout.Layout.p;
      total = cs.Comm_sets.total;
      locals;
      rounds;
      max_degree = delta;
      weighted = false }
  in
  Lams_obs.Obs.incr c_builds;
  Lams_obs.Obs.add c_rounds (List.length rounds);
  Lams_obs.Obs.observe d_congestion (float_of_int delta);
  t

let rounds_count t = List.length t.rounds

(* ------------------------------------------------------------------ *)
(* Cost-aware rounds.                                                  *)

let c_reweights =
  Lams_obs.Obs.counter "sched.reweights" ~units:"schedules"
    ~doc:"schedules rebuilt into cost-aware weighted rounds"

let c_splits =
  Lams_obs.Obs.counter "sched.splits" ~units:"transfers"
    ~doc:"transfers split across rounds by the per-round budget"

let weigh tr ~cost =
  float_of_int tr.elements *. cost ~src:tr.src_proc ~dst:tr.dst_proc

let critical_path t ~cost =
  List.fold_left
    (fun acc round ->
      acc
      +. List.fold_left (fun m tr -> Float.max m (weigh tr ~cost)) 0. round)
    0. t.rounds

(* Cut one transfer into [parts] near-equal pieces at buffer-position
   boundaries. Both sides share the buffer order by construction, so
   cutting them at the same positions yields transfers that move the
   same elements. Clamped so every piece keeps at least one element. *)
let split_transfer tr ~parts =
  let parts = max 1 (min parts tr.elements) in
  if parts = 1 then [ tr ]
  else begin
    let n = tr.elements in
    let rec go tr i acc =
      if i = parts - 1 then List.rev (tr :: acc)
      else begin
        let len = ((i + 1) * n / parts) - (i * n / parts) in
        let src_l, src_r = Pack.split tr.src_side ~at:len in
        let dst_l, dst_r = Pack.split tr.dst_side ~at:len in
        let piece =
          { tr with elements = len; src_side = src_l; dst_side = dst_l }
        in
        go
          { tr with
            elements = tr.elements - len;
            src_side = src_r;
            dst_side = dst_r }
          (i + 1) (piece :: acc)
      end
    in
    Lams_obs.Obs.incr c_splits;
    go tr 0 []
  end

(* Greedy weighted grouping: place transfers heaviest-first into
   conflict-free rounds, minimizing the schedule's critical path
   (sum over rounds of the heaviest transfer in the round). Best-fit
   order: a round whose current maximum already dominates the new
   weight costs nothing (prefer the tightest such fit, keeping roomy
   rounds available for heavy transfers); otherwise the round with the
   largest maximum minimizes the increase; otherwise open a new round.
   Scanning in creation order with first-wins ties keeps the result
   deterministic. *)
type 'tag group = {
  mutable members : (transfer * 'tag) list;
  srcs : (int, unit) Hashtbl.t;
  dsts : (int, unit) Hashtbl.t;
  mutable max_w : float;
}

let regroup ~weight items =
  let weighted = List.map (fun ((tr, _) as it) -> (it, weight tr)) items in
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare b a) weighted
  in
  let groups : 'tag group list ref = ref [] in
  List.iter
    (fun (((tr : transfer), _) as item, w) ->
      let fits g =
        (not (Hashtbl.mem g.srcs tr.src_proc))
        && not (Hashtbl.mem g.dsts tr.dst_proc)
      in
      let best =
        List.fold_left
          (fun best g ->
            if not (fits g) then best
            else
              match best with
              | None -> Some g
              | Some b ->
                  (* Dominating rounds beat non-dominating; among
                     dominating prefer the smallest max, among
                     non-dominating the largest. *)
                  let dom g = g.max_w >= w in
                  if dom g && ((not (dom b)) || g.max_w < b.max_w) then Some g
                  else if (not (dom g)) && (not (dom b)) && g.max_w > b.max_w
                  then Some g
                  else best)
          None !groups
      in
      let g =
        match best with
        | Some g -> g
        | None ->
            let g =
              { members = []; srcs = Hashtbl.create 8;
                dsts = Hashtbl.create 8; max_w = 0. }
            in
            groups := !groups @ [ g ];
            g
      in
      g.members <- item :: g.members;
      Hashtbl.add g.srcs tr.src_proc ();
      Hashtbl.add g.dsts tr.dst_proc ();
      if w > g.max_w then g.max_w <- w)
    sorted;
  List.map (fun g -> List.rev g.members) !groups

let reweight ?budget t ~cost =
  let cross = List.concat t.rounds in
  if cross = [] then t
  else begin
    let neutral_budget =
      List.fold_left (fun a tr -> Float.max a (float_of_int tr.elements)) 1.
        cross
    in
    let budget =
      match budget with
      | Some b -> if b <= 0. then invalid_arg "Schedule.reweight: budget <= 0" else b
      | None -> neutral_budget
    in
    let neutral =
      List.for_all
        (fun tr -> cost ~src:tr.src_proc ~dst:tr.dst_proc = 1.0)
        cross
    in
    if neutral && List.for_all (fun tr -> weigh tr ~cost <= budget) cross then
      (* No health signal and nothing over budget: the unweighted König
         schedule is already optimal; hand it back untouched so the
         adaptive path is bit-identical to the cost-blind one. *)
      t
    else begin
      let pieces =
        List.concat_map
          (fun tr ->
            let w = weigh tr ~cost in
            if w > budget then
              split_transfer tr
                ~parts:(int_of_float (ceil (w /. budget)))
            else [ tr ])
          cross
      in
      let rounds =
        regroup ~weight:(fun tr -> weigh tr ~cost)
          (List.map (fun tr -> (tr, ())) pieces)
        |> List.map (List.map fst)
      in
      Lams_obs.Obs.incr c_reweights;
      { t with rounds; weighted = true }
    end
  end

let cross_elements t =
  List.fold_left
    (fun acc round ->
      List.fold_left (fun acc tr -> acc + tr.elements) acc round)
    0 t.rounds

let rebase t ~src_delta ~dst_delta =
  if src_delta = 0 && dst_delta = 0 then t
  else begin
    let shift tr =
      { tr with
        src_side = Pack.shift tr.src_side src_delta;
        dst_side = Pack.shift tr.dst_side dst_delta }
    in
    { t with
      locals = List.map shift t.locals;
      rounds = List.map (List.map shift) t.rounds }
  end

let validate t =
  let fail fmt = Format.kasprintf (fun msg -> Error msg) fmt in
  let check_round i round =
    let seen_src = Hashtbl.create 8 and seen_dst = Hashtbl.create 8 in
    List.fold_left
      (fun acc tr ->
        match acc with
        | Error _ as e -> e
        | Ok () ->
            if tr.src_proc = tr.dst_proc then
              fail "round %d contains self-transfer on %d" i tr.src_proc
            else if Hashtbl.mem seen_src tr.src_proc then
              fail "round %d: processor %d sends twice" i tr.src_proc
            else if Hashtbl.mem seen_dst tr.dst_proc then
              fail "round %d: processor %d receives twice" i tr.dst_proc
            else begin
              Hashtbl.add seen_src tr.src_proc ();
              Hashtbl.add seen_dst tr.dst_proc ();
              Ok ()
            end)
      (Ok ()) round
  in
  let check_sides tr acc =
    match acc with
    | Error _ as e -> e
    | Ok () ->
        if tr.src_side.Pack.elements <> tr.elements then
          fail "transfer %d->%d: src side has %d of %d elements" tr.src_proc
            tr.dst_proc tr.src_side.Pack.elements tr.elements
        else if tr.dst_side.Pack.elements <> tr.elements then
          fail "transfer %d->%d: dst side has %d of %d elements" tr.src_proc
            tr.dst_proc tr.dst_side.Pack.elements tr.elements
        else Ok ()
  in
  let rec rounds_ok i = function
    | [] -> Ok ()
    | r :: rest -> begin
        match check_round i r with
        | Error _ as e -> e
        | Ok () -> rounds_ok (i + 1) rest
      end
  in
  match rounds_ok 0 t.rounds with
  | Error _ as e -> e
  | Ok () ->
      let all = t.locals @ List.concat t.rounds in
      let delivered = List.fold_left (fun a tr -> a + tr.elements) 0 all in
      if delivered <> t.total then
        fail "schedule delivers %d of %d elements" delivered t.total
      else if (not t.weighted) && List.length t.rounds > t.max_degree then
        (* The constructive König coloring guarantees <= Δ colors; an
           unweighted schedule needing more is a coloring bug, not slack
           to allow. Weighted schedules may trade extra rounds for a
           shorter critical path (split transfers serialize their
           pieces), so only the conflict-freedom and delivery checks
           bind there. *)
        fail "%d rounds exceed max degree %d" (List.length t.rounds)
          t.max_degree
      else List.fold_left (fun acc tr -> check_sides tr acc) (Ok ()) all

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d elements (%d local in %d pairs), %d rounds, max degree %d%s@,"
    t.total
    (List.fold_left (fun a tr -> a + tr.elements) 0 t.locals)
    (List.length t.locals) (List.length t.rounds) t.max_degree
    (if t.weighted then " (weighted)" else "");
  List.iteri
    (fun i round ->
      Format.fprintf ppf "  round %d:" i;
      List.iter
        (fun tr ->
          Format.fprintf ppf " %d->%d (%d el, %d+%d blk)" tr.src_proc
            tr.dst_proc tr.elements
            (Pack.block_count tr.src_side)
            (Pack.block_count tr.dst_side))
        round;
      Format.fprintf ppf "@,")
    t.rounds;
  Format.fprintf ppf "@]"
