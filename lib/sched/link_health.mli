(** Per-link health estimation, persisted across exchanges.

    The König-colored schedule treats every link as equal; the fabric
    does not. This module is the process-global memory that closes the
    loop: {!Reliable} feeds it ack / retransmit / downgrade events, the
    adaptive {!Executor} reads back a per-link {e cost factor} and a
    {e sickness} bit, and {!Schedule.reweight} turns those into
    cost-aware rounds and split transfers.

    Estimates are EWMAs, so they track a changing fabric; they persist
    across exchanges (the whole point — exchange [n] learns from
    exchange [n-1]), and they key on [(src, dst)] rank pairs so they
    survive changes of machine size.

    Neutrality: a link with no recorded events (and a link whose every
    ack came on the first attempt with zero latency) has cost exactly
    [1.0]. {!Schedule.reweight} relies on this to leave schedules
    untouched on a fabric with no observed trouble.

    Everything is surfaced as [sched.health.*] Obs metrics. Thread-safe.
*)

type stats = {
  acks : int;
  retransmits : int;
  downgrades : int;
  loss : float;  (** EWMA of per-ack loss samples [1 - 1/attempts] *)
  ticks_per_element : float;  (** EWMA of [latency / elements] *)
  latency : float;  (** EWMA of ack round-trip ticks *)
  cost : float;  (** current {!cost} factor *)
  sick : bool;  (** current {!is_sick} verdict *)
  elements : int;  (** delivered traffic via {!absorb_network} *)
  messages : int;
}

val note_ack :
  src:int -> dst:int -> attempts:int -> latency:int -> elements:int -> unit
(** An ack for a transfer [src -> dst] that took [attempts] sends and
    [latency] simulated ticks from first send to ack, carrying
    [elements] payload elements. Feeds the loss, latency and
    ticks-per-element EWMAs and clears the link's standing backoff.
    @raise Invalid_argument on [attempts < 1], negative [latency] or
    negative [elements]. *)

val note_retransmit : src:int -> dst:int -> backoff:int -> unit
(** A retransmit fired on [src -> dst] with the protocol now backing
    off [backoff] ticks. Raises the link's standing backoff — the
    early-warning signal {!is_sick} uses before loss estimates
    converge. *)

val note_downgrade : src:int -> dst:int -> unit
(** The retry budget died on [src -> dst] and the exchange downgraded.
    Poisons the loss estimate toward 1. *)

val absorb_network : Lams_sim.Network.t -> unit
(** Fold the network's per-link delivered-traffic counters into the
    table (reporting only; does not move estimates). Call after an
    exchange, before [Network.reset_stats]. *)

val cost : src:int -> dst:int -> float
(** The link's cost factor:
    [1 / (1 - min(loss, 0.9)) * (1 + ticks_per_element)]. Exactly [1.0]
    for unknown and perfectly healthy links; grows with observed loss
    and slowness. *)

val is_sick : src:int -> dst:int -> bool
(** [true] when the link's standing backoff has reached 8 ticks or its
    cost factor has reached 4 — the re-planning trigger. *)

val known : src:int -> dst:int -> bool
(** Has this link recorded at least one ack or downgrade? *)

val report : unit -> ((int * int) * stats) list
(** Snapshot of every tracked link, sorted by [(src, dst)]. *)

val reset : unit -> unit
(** Forget everything (deterministic test and fuzz runs). *)
