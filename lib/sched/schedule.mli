(** Inspector: lower comm sets into a contention-free communication
    schedule.

    {!Lams_sim.Comm_sets} says {e what} moves between every processor
    pair; a schedule says {e when} and {e in what form}. Cross-processor
    transfers are grouped into rounds by bipartite edge coloring
    (senders and receivers as the two vertex sets, one color class per
    round) so that within a round no processor sends twice or receives
    twice, and König's theorem — in its constructive alternating-path
    form — bounds the number of rounds by the maximum transfer degree.
    Each transfer carries pre-computed pack/unpack block lists
    ({!Pack.side}) so the executor moves one packed buffer per (src,
    dst) pair per round. *)

type transfer = {
  src_proc : int;
  dst_proc : int;
  elements : int;
  src_side : Pack.side;  (** gather blocks in [src_proc]'s memory *)
  dst_side : Pack.side;  (** scatter blocks in [dst_proc]'s memory *)
}

type round = transfer list

type t = {
  src_procs : int;
  dst_procs : int;
  total : int;  (** elements moved, including processor-local ones *)
  locals : transfer list;  (** self-transfers, kept out of the rounds *)
  rounds : round list;
  max_degree : int;  (** max transfers touching one processor — the
                         contention lower bound on rounds *)
  weighted : bool;  (** rebuilt by {!reweight}: rounds minimize the
                        weighted critical path and may exceed
                        [max_degree] (split transfers serialize) *)
}

val build :
  src_layout:Lams_dist.Layout.t ->
  src_section:Lams_dist.Section.t ->
  dst_layout:Lams_dist.Layout.t ->
  dst_section:Lams_dist.Section.t ->
  t
(** Build the schedule for copying [src_section] (under [src_layout])
    onto [dst_section] (under [dst_layout]), element [j] to element [j].
    @raise Invalid_argument on empty or count-mismatched sections
    (propagated from {!Lams_sim.Comm_sets.build}). *)

val rounds_count : t -> int

val cross_elements : t -> int
(** Elements that actually cross processors (sum over rounds). *)

val weigh : transfer -> cost:(src:int -> dst:int -> float) -> float
(** A transfer's weight: [elements * cost src dst] — payload volume
    scaled by the link's observed cost factor
    ({!Link_health.cost}-shaped; [1.0] = healthy). *)

val critical_path : t -> cost:(src:int -> dst:int -> float) -> float
(** Sum over rounds of the heaviest transfer in the round — the
    weighted makespan model the cost-aware builder minimizes (rounds
    are barriers; within a round transfers run in parallel). *)

val split_transfer : transfer -> parts:int -> transfer list
(** Cut a transfer into [parts] near-equal pieces at packed-buffer
    boundaries ({!Pack.split} on both sides at the same positions), so
    the pieces together move exactly the original element set. Clamped
    to one element per piece minimum; [parts <= 1] returns the transfer
    unchanged. *)

val regroup :
  weight:(transfer -> float) ->
  (transfer * 'tag) list ->
  (transfer * 'tag) list list
(** The weighted grouping heart of {!reweight}, exposed over tagged
    transfers so the executor can re-plan mid-exchange while carrying
    each transfer's sequence number and pre-packed buffer along:
    heaviest-first best-fit into conflict-free rounds (no sender or
    receiver twice per round), minimizing the summed per-round maximum
    weight. Deterministic for a given input order. *)

val reweight : ?budget:float -> t -> cost:(src:int -> dst:int -> float) -> t
(** Rebuild the cross-processor rounds cost-aware: weight every
    transfer by {!weigh}, split any whose weight exceeds [budget]
    (default: the largest transfer's element count, i.e. the heaviest
    neutral-cost edge) into [ceil (weight / budget)] pieces, then
    regroup greedily heaviest-first into conflict-free rounds
    minimizing {!critical_path}. The result moves exactly the same
    elements; only round membership changes, so it interoperates with
    the executor, reliable protocol and cache rebase unchanged.

    Neutrality: when every cost is exactly [1.0] and nothing exceeds
    the budget, the schedule is returned {e physically unchanged}
    ([weighted] stays [false]) — with no health data the adaptive path
    is bit-identical to the cost-blind one, and the unweighted König
    build stays the oracle.
    @raise Invalid_argument if [budget <= 0]. *)

val rebase : t -> src_delta:int -> dst_delta:int -> t
(** Shift all local addresses on the source / destination side.
    Schedules are translation-invariant per side in steps of the cycle
    span; {!Cache} uses this to serve translated sections from one
    canonical entry. *)

val validate : t -> (unit, string) result
(** Structural invariants: every round free of send and receive
    conflicts and of self-transfers, every element delivered exactly
    once, rounds bounded by [max_degree] (the constructive König
    coloring guarantees <= Δ colors, so the bound is exact, not Δ+1 —
    relaxed for [weighted] schedules, where split transfers may trade
    extra rounds for a shorter critical path), and both sides of every
    transfer sized to its element count. *)

val pp : Format.formatter -> t -> unit
(** Deterministic rendering: a summary line, then one line per round
    listing [src->dst (elements, src+dst blocks)]. *)
