(** Inspector: lower comm sets into a contention-free communication
    schedule.

    {!Lams_sim.Comm_sets} says {e what} moves between every processor
    pair; a schedule says {e when} and {e in what form}. Cross-processor
    transfers are grouped into rounds by bipartite edge coloring
    (senders and receivers as the two vertex sets, one color class per
    round) so that within a round no processor sends twice or receives
    twice, and König's theorem — in its constructive alternating-path
    form — bounds the number of rounds by the maximum transfer degree.
    Each transfer carries pre-computed pack/unpack block lists
    ({!Pack.side}) so the executor moves one packed buffer per (src,
    dst) pair per round. *)

type transfer = {
  src_proc : int;
  dst_proc : int;
  elements : int;
  src_side : Pack.side;  (** gather blocks in [src_proc]'s memory *)
  dst_side : Pack.side;  (** scatter blocks in [dst_proc]'s memory *)
}

type round = transfer list

type t = {
  src_procs : int;
  dst_procs : int;
  total : int;  (** elements moved, including processor-local ones *)
  locals : transfer list;  (** self-transfers, kept out of the rounds *)
  rounds : round list;
  max_degree : int;  (** max transfers touching one processor — the
                         contention lower bound on rounds *)
}

val build :
  src_layout:Lams_dist.Layout.t ->
  src_section:Lams_dist.Section.t ->
  dst_layout:Lams_dist.Layout.t ->
  dst_section:Lams_dist.Section.t ->
  t
(** Build the schedule for copying [src_section] (under [src_layout])
    onto [dst_section] (under [dst_layout]), element [j] to element [j].
    @raise Invalid_argument on empty or count-mismatched sections
    (propagated from {!Lams_sim.Comm_sets.build}). *)

val rounds_count : t -> int

val cross_elements : t -> int
(** Elements that actually cross processors (sum over rounds). *)

val rebase : t -> src_delta:int -> dst_delta:int -> t
(** Shift all local addresses on the source / destination side.
    Schedules are translation-invariant per side in steps of the cycle
    span; {!Cache} uses this to serve translated sections from one
    canonical entry. *)

val validate : t -> (unit, string) result
(** Structural invariants: every round free of send and receive
    conflicts and of self-transfers, every element delivered exactly
    once, rounds bounded by [max_degree] (the constructive König
    coloring guarantees <= Δ colors, so the bound is exact, not Δ+1),
    and both sides of every transfer sized to its element count. *)

val pp : Format.formatter -> t -> unit
(** Deterministic rendering: a summary line, then one line per round
    listing [src->dst (elements, src+dst blocks)]. *)
