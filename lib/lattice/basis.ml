open Lams_numeric

type t = { p : int; k : int; s : int; d : int; r : Point.t; l : Point.t }

let construct ~p ~k ~s =
  if p <= 0 then invalid_arg "Basis.construct: p <= 0";
  if k <= 0 then invalid_arg "Basis.construct: k <= 0";
  if s <= 0 then invalid_arg "Basis.construct: s <= 0";
  let pk = p * k in
  let d, x, _ = Euclid.egcd s pk in
  if d >= k then None
  else begin
    (* Scan offsets i = d, 2d, ... < k. For each, the smallest positive
       section element with that offset is s*j where j is the smallest
       solution of s*j ≡ i (mod pk). With x the Bézout coefficient
       (s*x ≡ d mod pk), j steps by x_unit (mod pk/d) as i steps by d,
       which removes the divisibility conditional from the loop (§5). *)
    let period = pk / d in
    let x_unit = Modular.emod x period in
    let min_loc = ref max_int and max_loc = ref 0 in
    let j = ref 0 in
    let i = ref d in
    while !i < k do
      j := !j + x_unit;
      if !j >= period then j := !j - period;
      let loc = s * !j in
      if loc < !min_loc then min_loc := loc;
      if loc > !max_loc then max_loc := loc;
      i := !i + d
    done;
    let r = Point.make ~b:(!min_loc mod pk) ~a:(!min_loc / pk) in
    let l =
      Point.make ~b:(!max_loc mod pk) ~a:((!max_loc / pk) - (s / d))
    in
    assert (0 < r.Point.b && r.Point.b < k && r.Point.a >= 0);
    assert (0 < l.Point.b && l.Point.b < k && l.Point.a < 0);
    Some { p; k; s; d; r; l }
  end

let lattice t = Section_lattice.create ~row_len:(t.p * t.k) ~stride:t.s

let next_step t ~proc ~offset =
  let window_lo = proc * t.k and window_hi = (proc + 1) * t.k in
  if offset < window_lo || offset >= window_hi then
    invalid_arg "Basis.next_step: offset outside the processor's window";
  if offset + t.r.Point.b < window_hi then t.r
  else if offset - t.l.Point.b >= window_lo then Point.neg t.l
  else Point.sub t.r t.l

let gap t step = Point.memory_gap ~k:t.k step

let index_of_point t pt =
  match Section_lattice.index_of (lattice t) pt with
  | Some i -> i
  | None -> assert false (* R and L are constructed as lattice members *)

let index_of_r t = index_of_point t t.r
let index_of_l t = index_of_point t t.l

let pp ppf t =
  Format.fprintf ppf "R=%a L=%a (p=%d k=%d s=%d d=%d)" Point.pp t.r Point.pp
    t.l t.p t.k t.s t.d
