(** Points of the two-dimensional integer plane used throughout the paper's
    §3: the x-axis is the {e offset} within a row of the block-cyclic
    layout (the paper's [b]), the y-axis is the {e row} number (the
    paper's [a]). A step [(b, a)] between two elements owned by the same
    processor costs [a*k + b] in local memory. *)

type t = { b : int;  (** offset component (x) *) a : int  (** row component (y) *) }

val make : b:int -> a:int -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic on [(a, b)] — an arbitrary total order for containers. *)

val det : t -> t -> int
(** [det u v = u.b * v.a - v.b * u.a], the (signed) area of the
    parallelogram spanned by [u] and [v]. *)

val memory_gap : k:int -> t -> int
(** [memory_gap ~k step] is the local-memory distance [step.a * k + step.b]
    induced by moving by [step] inside one processor's slice of a
    [cyclic(k)] layout. *)

val pp : Format.formatter -> t -> unit
(** Prints [(b, a)] in the paper's coordinate order. *)

val to_string : t -> string
