let norm2 (p : Point.t) = (p.Point.b * p.Point.b) + (p.Point.a * p.Point.a)

let dot (u : Point.t) (v : Point.t) =
  (u.Point.b * v.Point.b) + (u.Point.a * v.Point.a)

let is_reduced u v = norm2 u <= norm2 v && 2 * abs (dot u v) <= norm2 u

(* Nearest integer to the rational dot(u,v)/norm2(u). *)
let nearest_quotient num den =
  (* den > 0; round half away from zero is fine for the reduction. *)
  let twice = 2 * num in
  if twice >= 0 then (twice + den) / (2 * den)
  else -(((-twice) + den) / (2 * den))

let gauss u v =
  if Point.det u v = 0 then
    invalid_arg "Reduction.gauss: vectors are linearly dependent";
  (* Lagrange's algorithm: repeatedly subtract the rounded projection. *)
  let rec loop u v =
    let u, v = if norm2 u > norm2 v then (v, u) else (u, v) in
    let q = nearest_quotient (dot u v) (norm2 u) in
    let v' = Point.sub v (Point.scale q u) in
    if norm2 v' >= norm2 v then (u, v) else loop u v'
  in
  let u, v = loop u v in
  if norm2 u > norm2 v then (v, u) else (u, v)

let shortest_vector_norm2 u v =
  let u', _ = gauss u v in
  norm2 u'
