type t = { b : int; a : int }

let make ~b ~a = { b; a }
let zero = { b = 0; a = 0 }
let add u v = { b = u.b + v.b; a = u.a + v.a }
let sub u v = { b = u.b - v.b; a = u.a - v.a }
let neg u = { b = -u.b; a = -u.a }
let scale c u = { b = c * u.b; a = c * u.a }
let equal u v = u.b = v.b && u.a = v.a

let compare u v =
  let c = Int.compare u.a v.a in
  if c <> 0 then c else Int.compare u.b v.b

let det u v = (u.b * v.a) - (v.b * u.a)
let memory_gap ~k step = (step.a * k) + step.b
let pp ppf { b; a } = Format.fprintf ppf "(%d, %d)" b a
let to_string p = Format.asprintf "%a" pp p
