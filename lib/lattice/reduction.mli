(** Lagrange–Gauss basis reduction for rank-2 integer lattices.

    The paper's [R]/[L] basis is chosen for {e traversal} (extremal
    section indices with offsets inside one block), not for geometry; the
    classical reduced basis minimises Euclidean lengths instead. This
    module provides the textbook reduction as lattice substrate: tests use
    it to confirm that [{R, L}] and the reduced basis generate the same
    lattice, and it gives the shortest-vector yardstick for the geometry
    of §3. *)

val norm2 : Point.t -> int
(** Squared Euclidean length. *)

val is_reduced : Point.t -> Point.t -> bool
(** Lagrange-reduced: [|u| <= |v|] and [2*|<u,v>| <= |u|²]. *)

val gauss : Point.t -> Point.t -> Point.t * Point.t
(** [gauss u v] reduces the basis [{u, v}] (both non-zero, linearly
    independent). The result [(u', v')] is Lagrange-reduced, spans the
    same lattice (an unimodular transform of the input), and [u'] attains
    the lattice's shortest non-zero vector length.
    @raise Invalid_argument if [u], [v] are dependent or zero. *)

val shortest_vector_norm2 : Point.t -> Point.t -> int
(** Squared length of a shortest non-zero lattice vector of the lattice
    spanned by the (independent) arguments. *)
