open Lams_numeric

type t = { row_len : int; stride : int }

let create ~row_len ~stride =
  if row_len <= 0 then invalid_arg "Section_lattice.create: row_len <= 0";
  if stride <= 0 then invalid_arg "Section_lattice.create: stride <= 0";
  { row_len; stride }

let value t (p : Point.t) = (t.row_len * p.a) + p.b

let mem t p = Modular.emod (value t p) t.stride = 0

let index_of t p =
  let v = value t p in
  if Modular.emod v t.stride = 0 then Some (v / t.stride) else None

let point_of_index t i =
  let v = i * t.stride in
  Point.make ~b:(Modular.emod v t.row_len) ~a:(Modular.ediv v t.row_len)

let covolume t = t.stride

let is_basis t u v =
  match (index_of t u, index_of t v) with
  | Some _, Some _ -> abs (Point.det u v) = t.stride
  | _ -> false

let primitive_of_index t i =
  if i = 0 then false
  else begin
    let p = point_of_index t i in
    Euclid.gcd p.a i = 1
  end

let fold_region t ~b_lo ~b_hi ~a_lo ~a_hi ~init ~f =
  (* Within row [a], members are the [b] with
     b ≡ -row_len*a (mod gcd-structure): solve stride | (row_len*a + b),
     i.e. b ≡ -row_len*a (mod stride). *)
  let acc = ref init in
  for a = a_lo to a_hi - 1 do
    let residue = Modular.emod (-t.row_len * a) t.stride in
    (* First b >= b_lo with b ≡ residue (mod stride). *)
    let first =
      residue + (t.stride * Modular.ceil_div (b_lo - residue) t.stride)
    in
    let b = ref first in
    while !b < b_hi do
      let p = Point.make ~b:!b ~a in
      let i = value t p / t.stride in
      acc := f !acc p i;
      b := !b + t.stride
    done
  done;
  !acc
