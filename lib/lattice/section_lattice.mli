(** The regular-section lattice of the paper's Theorem 1.

    For a [cyclic(k)] distribution over [p] processors ([row_len = p*k]
    elements per layout row) and a section stride [s > 0], the set

    {[ Λ = { (b, a) ∈ ℤ² | row_len*a + b = i*s for some i ∈ ℤ } ]}

    is an integer lattice: the translates of section elements to the origin.
    It is independent of the section's lower bound (§3). Each lattice point
    corresponds to exactly one section index [i = (row_len*a + b) / s]. *)

type t = private { row_len : int; stride : int }

val create : row_len:int -> stride:int -> t
(** @raise Invalid_argument unless [row_len > 0] and [stride > 0]. *)

val mem : t -> Point.t -> bool
(** Lattice membership: does [row_len*a + b] land on a multiple of
    [stride]? *)

val index_of : t -> Point.t -> int option
(** The section index [i] of a lattice point, [None] for non-members. *)

val point_of_index : t -> int -> Point.t
(** [point_of_index t i] is the canonical point of section index [i]:
    [( (i*s) emod row_len, (i*s) ediv row_len )] — offsets in
    [\[0, row_len)]. Its image is exactly the members with
    [0 <= b < row_len]. *)

val covolume : t -> int
(** The lattice determinant (index of [Λ] in [ℤ²]), which equals
    [stride]. *)

val is_basis : t -> Point.t -> Point.t -> bool
(** [is_basis t u v]: do two lattice members generate [Λ]?
    Equivalent characterisations (both checked by the test suite):
    [|det u v| = covolume t], and the paper's [|a₁i₂ − a₂i₁| = 1].
    Returns [false] if either point is not a member. *)

val primitive_of_index : t -> int -> bool
(** The paper's segment condition: the segment from the origin to
    [point_of_index t i] contains no interior lattice point iff
    [gcd (point_of_index t i).a i = 1] — i.e. the point may belong to a
    basis. ([i <> 0] required; [primitive_of_index t 0 = false].) *)

val fold_region :
  t -> b_lo:int -> b_hi:int -> a_lo:int -> a_hi:int ->
  init:'acc -> f:('acc -> Point.t -> int -> 'acc) -> 'acc
(** Fold [f acc point index] over every lattice member in the half-open box
    [\[b_lo, b_hi) × \[a_lo, a_hi)], in row-major order (increasing [a],
    then [b]). Used by figure rendering and brute-force tests; cost is
    proportional to the box area divided by stride (per row it solves one
    congruence and steps through solutions). *)
