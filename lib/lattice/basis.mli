(** The specific lattice basis of the paper's §4: vectors [R] and [L].

    [R = (b_r, a_r)] is the lattice point of the {e smallest positive}
    section index whose offset lies in [(0, k)];
    [L = (b_l, a_l)] is the point of the {e largest} index in the initial
    cycle with offset in [(0, k)], taken relative to the first point of the
    next cycle — so its section index is negative, [b_l ∈ (0, k)] and
    [a_l < 0]. Theorem 2 proves [{R, L}] is a basis of the section lattice;
    Theorem 3 proves the step between consecutive owned elements is always
    [R], [−L], or [R − L]. *)

type t = private {
  p : int;  (** number of processors *)
  k : int;  (** block size *)
  s : int;  (** section stride *)
  d : int;  (** [gcd s (p*k)] *)
  r : Point.t;  (** [R]: [0 < r.b < k], [r.a >= 0] *)
  l : Point.t;  (** [L]: [0 < l.b < k], [l.a < 0] *)
}

val construct : p:int -> k:int -> s:int -> t option
(** Builds [R] and [L] in [O(k/d + log min(s, pk))] time by scanning the
    solvable offsets [d, 2d, …] below [k], exactly as lines 19–30 of the
    paper's Figure 5 (with the conditional-free refinement of §5).

    Returns [None] iff [d >= k], i.e. when fewer than two offsets per
    window are reachable, in which case every processor's gap table has
    length [<= 1] and the callers handle it as the paper's special cases
    (lines 12–18). @raise Invalid_argument unless [p, k, s > 0]. *)

val lattice : t -> Section_lattice.t
(** The underlying section lattice (for membership checks in tests). *)

val next_step : t -> proc:int -> offset:int -> Point.t
(** Theorem 3. [next_step t ~proc ~offset] is the lattice step from the
    owned element at row-offset [offset] (which must satisfy
    [proc*k <= offset < (proc+1)*k]) to the next owned element on processor
    [proc]: [R] when [offset + r.b] stays inside the window, otherwise
    [−L] when [offset - l.b] does not undershoot it, otherwise [R − L].
    @raise Invalid_argument if [offset] is outside the processor's
    window. *)

val gap : t -> Point.t -> int
(** Local-memory distance of a step: [step.a * k + step.b]. *)

val index_of_r : t -> int
(** The (positive) section index corresponding to [R]. *)

val index_of_l : t -> int
(** The (negative) section index corresponding to [L]. *)

val pp : Format.formatter -> t -> unit
