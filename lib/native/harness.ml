(* Native C conformance harness: compile and run the emitted node code,
   then diff its observable behaviour (visited addresses, final memory,
   program output) against the interpreter oracles. See harness.mli. *)

open Lams_codegen
module Problem = Lams_core.Problem
module Enumerate = Lams_core.Enumerate
module Driver = Lams_hpf.Driver
module Runtime = Lams_hpf.Runtime
module Emit_program = Lams_hpf.Emit_program
module Sema = Lams_hpf.Sema
module Obs = Lams_obs.Obs

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let c_cases =
  Obs.counter "native.cases" ~units:"cases" ~doc:"conformance checks attempted"

let c_compiles =
  Obs.counter "native.compiles" ~units:"invocations" ~doc:"cc invocations"

let c_execs =
  Obs.counter "native.execs" ~units:"runs" ~doc:"compiled binaries executed"

let c_divergences =
  Obs.counter "native.divergences" ~units:"divergences"
    ~doc:"compiled C disagreed with interpreter"

let c_skips =
  Obs.counter "native.skips" ~units:"checks"
    ~doc:"checks skipped (no cc / unsupported)"

let sp_compile = Obs.span "native.compile_us" ~doc:"cc wall time"
let sp_exec = Obs.span "native.exec_us" ~doc:"compiled binary wall time"

(* ------------------------------------------------------------------ *)
(* Toolchain probe                                                    *)

let probe ?env candidates =
  let env = match env with Some e -> e | None -> Sys.getenv_opt "LAMS_CC" in
  let works cand =
    cand <> ""
    && Sys.command
         (Filename.quote_command cand ~stdout:"/dev/null" ~stderr:"/dev/null"
            [ "--version" ])
       = 0
  in
  match env with
  | Some cand -> if works cand then Some cand else None
  | None -> List.find_opt works candidates

let default_candidates = [ "cc"; "gcc"; "clang" ]
let cc_memo = lazy (probe default_candidates)
let cc () = Lazy.force cc_memo

(* ------------------------------------------------------------------ *)
(* Workspace and process control                                      *)

let workspace ~prefix = Filename.temp_dir prefix ""

let cleanup dir =
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let write_file path text =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)

let read_file path =
  try In_channel.with_open_text path In_channel.input_all
  with Sys_error _ -> ""

let compile ~cc ~src ~exe =
  Obs.incr c_compiles;
  let log = exe ^ ".cc.log" in
  let cmd =
    Filename.quote_command cc ~stdout:log ~stderr:log
      [ "-O2"; "-std=c99"; "-o"; exe; src ]
  in
  Obs.time sp_compile (fun () ->
      if Sys.command cmd = 0 then Ok ()
      else
        Error
          (Printf.sprintf "C compilation failed (%s):\n%s" cmd
             (read_file log)))

let run_exe ?(timeout = 60.) exe =
  Obs.incr c_execs;
  let out_file = exe ^ ".out" in
  Obs.time sp_exec (fun () ->
      let out_fd =
        Unix.openfile out_file [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644
      in
      let null = Unix.openfile "/dev/null" [ O_RDONLY ] 0 in
      let pid =
        Unix.create_process exe [| exe |] null out_fd Unix.stderr
      in
      Unix.close out_fd;
      Unix.close null;
      let deadline = Unix.gettimeofday () +. timeout in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then (
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid);
              Error (Printf.sprintf "timeout after %.1fs" timeout))
            else (
              Unix.sleepf 0.002;
              wait ())
        | _, Unix.WEXITED 0 -> Ok (read_file out_file)
        | _, Unix.WEXITED code -> Error (Printf.sprintf "exit code %d" code)
        | _, Unix.WSIGNALED sg -> Error (Printf.sprintf "killed by signal %d" sg)
        | _, Unix.WSTOPPED _ -> Error "stopped"
      in
      wait ())

(* ------------------------------------------------------------------ *)
(* Deterministic memory images: SplitMix64, mirrored OCaml <-> C.     *)
(* OCaml Int64 add/mul wrap exactly like C unsigned long long, so the *)
(* two streams are bit-identical for equal seeds.                     *)

let sentinel = -5.0
let sentinel_lit = "-5.0"

let fill_array ~seed (arr : Lams_util.Fbuf.t) =
  let state = ref seed in
  for i = 0 to Lams_util.Fbuf.length arr - 1 do
    state := Int64.add !state 0x9e3779b97f4a7c15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xbf58476d1ce4e5b9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94d049bb133111ebL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Lams_util.Fbuf.set arr i (Int64.to_float (Int64.logand z 1023L) +. 1.0)
  done

let c_prelude =
  "static unsigned long long lams_rng;\n\
   static double lams_fill(void)\n\
   {\n\
  \  lams_rng += 0x9e3779b97f4a7c15ULL;\n\
  \  unsigned long long z = lams_rng;\n\
  \  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;\n\
  \  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;\n\
  \  z = z ^ (z >> 31);\n\
  \  return (double)(z & 1023ULL) + 1.0;\n\
   }\n\n"

let seed_for m = Int64.of_int (0x5eed0000 + m)

(* ------------------------------------------------------------------ *)
(* Variants                                                           *)

type variant = Shape of Shapes.t | Table_free

let variants =
  [
    Shape Shapes.Shape_a;
    Shape Shapes.Shape_b;
    Shape Shapes.Shape_c;
    Shape Shapes.Shape_d;
    Table_free;
  ]

let variant_id = function
  | Shape Shapes.Shape_a -> "a"
  | Shape Shapes.Shape_b -> "b"
  | Shape Shapes.Shape_c -> "c"
  | Shape Shapes.Shape_d -> "d"
  | Table_free -> "tf"

let variant_name = function
  | Shape sh -> Shapes.name sh
  | Table_free -> "table-free"

(* ------------------------------------------------------------------ *)
(* Outcomes                                                           *)

type divergence = { m : int; variant : string; what : string; detail : string }

type outcome =
  | Agree of { compared : int }
  | No_cc
  | Unsupported of string
  | Diverged of divergence
  | Tool_error of string

let pp_outcome ppf = function
  | Agree { compared } -> Format.fprintf ppf "agree (%d cases)" compared
  | No_cc -> Format.fprintf ppf "skipped: no C compiler"
  | Unsupported what -> Format.fprintf ppf "unsupported: %s" what
  | Diverged d ->
      Format.fprintf ppf "DIVERGED m=%d variant=%s %s: %s" d.m d.variant
        d.what d.detail
  | Tool_error e -> Format.fprintf ppf "tool error: %s" e

let float_eq a b = a = b || (a <> a && b <> b)

(* ------------------------------------------------------------------ *)
(* Kernel conformance                                                 *)

(* One C translation unit holding, for every owning processor, all five
   node-code variants, plus a driver main() that for each (m, variant)
   case resets the memory image from the processor's seed, runs the
   kernel with the sentinel value, and dumps the canonical text:

     case m=<m> variant=<id>
     addrs <count>: a0 a1 ...
     mem <extent>: v0 v1 ...            (%.17g, bit-exact round trip)
     ...
     done

   Gaps are positive, so the kernel visits strictly ascending local
   addresses: an ascending scan of the final memory for the sentinel
   recovers the exact visited sequence, not just the set. *)
let kernel_source pr ~u plans =
  let b = Buffer.create 8192 in
  let add = Buffer.add_string b in
  let addf fmt = Printf.ksprintf add fmt in
  addf
    "/* Generated by Lams_native.Harness: kernel conformance driver.\n\
    \   p=%d k=%d l=%d s=%d u=%d */\n"
    pr.Problem.p pr.Problem.k pr.Problem.l pr.Problem.s u;
  add "#include <stdio.h>\n\n";
  add c_prelude;
  let max_ext =
    List.fold_left
      (fun acc (_, pl) -> max acc (Plan.local_extent_needed pl))
      1 plans
  in
  addf "static double mem[%d];\n\n" max_ext;
  addf
    "static void lams_reset(unsigned long long seed, int extent)\n\
     {\n\
    \  lams_rng = seed;\n\
    \  for (int i = 0; i < extent; i++)\n\
    \    mem[i] = lams_fill();\n\
     }\n\n";
  addf
    "static void lams_dump(int extent)\n\
     {\n\
    \  int count = 0;\n\
    \  for (int i = 0; i < extent; i++)\n\
    \    if (mem[i] == %s) count++;\n\
    \  printf(\"addrs %%d:\", count);\n\
    \  for (int i = 0; i < extent; i++)\n\
    \    if (mem[i] == %s) printf(\" %%d\", i);\n\
    \  printf(\"\\nmem %%d:\", extent);\n\
    \  for (int i = 0; i < extent; i++)\n\
    \    printf(\" %%.17g\", mem[i]);\n\
    \  printf(\"\\n\");\n\
     }\n\n"
    sentinel_lit sentinel_lit;
  List.iter
    (fun (m, plan) ->
      List.iter
        (fun v ->
          let name = Printf.sprintf "kernel_m%d_%s" m (variant_id v) in
          (match v with
          | Shape sh -> add (Emit_c.full_function sh plan ~name)
          | Table_free -> add (Emit_c.table_free_function plan ~name));
          add "\n")
        variants)
    plans;
  add "int main(void)\n{\n";
  List.iter
    (fun (m, plan) ->
      let ext = Plan.local_extent_needed plan in
      List.iter
        (fun v ->
          addf "  printf(\"case m=%d variant=%s\\n\");\n" m (variant_id v);
          addf "  lams_reset(%LdULL, %d);\n" (seed_for m) ext;
          addf "  kernel_m%d_%s(mem, %s);\n" m (variant_id v) sentinel_lit;
          addf "  lams_dump(%d);\n" ext)
        variants)
    plans;
  add "  printf(\"done\\n\");\n  return 0;\n}\n";
  Buffer.contents b

type kernel_case = {
  km : int;
  kvariant : string;
  kaddrs : int array;
  kmem : float array;
}

exception Parse of string

let fields_after_colon line =
  match String.index_opt line ':' with
  | None -> raise (Parse (Printf.sprintf "missing ':' in %S" line))
  | Some i ->
      String.sub line (i + 1) (String.length line - i - 1)
      |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")

let parse_counted ~tag line of_string =
  let n =
    try Scanf.sscanf line (Scanf.format_from_string (tag ^ " %d:") "%d") Fun.id
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      raise (Parse (Printf.sprintf "bad %s line %S" tag line))
  in
  let vals =
    try List.map of_string (fields_after_colon line)
    with Failure _ -> raise (Parse (Printf.sprintf "bad %s values %S" tag line))
  in
  if List.length vals <> n then
    raise (Parse (Printf.sprintf "%s count %d <> %d values" tag n
                    (List.length vals)));
  Array.of_list vals

let parse_kernel_output out =
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  let rec go acc = function
    | [ "done" ] -> Ok (List.rev acc)
    | case_line :: addrs_line :: mem_line :: rest -> (
        try
          let km, kvariant =
            try
              Scanf.sscanf case_line "case m=%d variant=%s" (fun m v -> (m, v))
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              raise (Parse (Printf.sprintf "bad case line %S" case_line))
          in
          let kaddrs = parse_counted ~tag:"addrs" addrs_line int_of_string in
          let kmem = parse_counted ~tag:"mem" mem_line float_of_string in
          go ({ km; kvariant; kaddrs; kmem } :: acc) rest
        with Parse msg -> Error msg)
    | rest ->
        Error
          (Printf.sprintf "truncated output near %S"
             (match rest with l :: _ -> l | [] -> "<eof>"))
  in
  go [] lines

let pp_int_array ppf a =
  Array.iteri (fun i x -> Format.fprintf ppf "%s%d" (if i > 0 then " " else "") x) a

let ints_summary a =
  let n = Array.length a in
  if n <= 16 then Format.asprintf "[%a]" pp_int_array a
  else
    Format.asprintf "[%a ... (%d total)]" pp_int_array (Array.sub a 0 16) n

(* Expected behaviour of one (processor, variant) case, from the
   interpreter side. Returns the first divergence, if any. *)
let compare_case pr ~u (m, plan) v (got : kernel_case) =
  let diverged what detail = Some { m; variant = variant_id v; what; detail } in
  let ext = Plan.local_extent_needed plan in
  let locs = ref [] in
  Enumerate.iter_bounded pr ~m ~u ~f:(fun _g local -> locs := local :: !locs);
  let enum = Array.of_list (List.rev !locs) in
  (* Interpreter-internal cross-check: the FSM-table walk of this shape
     must itself agree with the closed-form enumeration. *)
  let oracle_clash =
    match v with
    | Shape sh ->
        let fsm = Shapes.addresses sh plan in
        if fsm <> enum then
          diverged "oracle"
            (Printf.sprintf "Fsm walk %s <> Enumerate %s" (ints_summary fsm)
               (ints_summary enum))
        else None
    | Table_free -> None
  in
  match oracle_clash with
  | Some _ as d -> d
  | None ->
      if got.kaddrs <> enum then
        diverged "addresses"
          (Printf.sprintf "compiled %s <> interpreter %s"
             (ints_summary got.kaddrs) (ints_summary enum))
      else if Array.length got.kmem <> ext then
        diverged "memory"
          (Printf.sprintf "compiled extent %d <> %d"
             (Array.length got.kmem) ext)
      else begin
        let expected = Lams_util.Fbuf.create ext in
        fill_array ~seed:(seed_for m) expected;
        (match v with
        | Shape sh -> Shapes.assign sh plan expected sentinel
        | Table_free ->
            Array.iter (fun a -> Lams_util.Fbuf.set expected a sentinel) enum);
        let bad = ref None in
        (try
           for i = 0 to ext - 1 do
             if not (float_eq got.kmem.(i) (Lams_util.Fbuf.get expected i))
             then begin
               bad := Some i;
               raise Exit
             end
           done
         with Exit -> ());
        match !bad with
        | None -> None
        | Some i ->
            diverged "memory"
              (Printf.sprintf "local[%d]: compiled %.17g <> interpreter %.17g"
                 i got.kmem.(i) (Lams_util.Fbuf.get expected i))
      end

let check_problem ?(timeout = 60.) ?(max_extent = 200_000) pr ~u =
  Obs.incr c_cases;
  match cc () with
  | None ->
      Obs.incr c_skips;
      No_cc
  | Some compiler -> (
      let plans =
        List.filter_map
          (fun m ->
            match Plan.build pr ~m ~u with
            | Some pl when Plan.local_extent_needed pl <= max_extent ->
                Some (m, pl)
            | _ -> None)
          (List.init pr.Problem.p Fun.id)
      in
      if plans = [] then Agree { compared = 0 }
      else
        let dir = workspace ~prefix:"lams-native-kernel" in
        let src = Filename.concat dir "kernels.c" in
        let exe = Filename.concat dir "kernels" in
        let kept fmt =
          Printf.ksprintf (fun s -> s ^ "\nworkspace kept: " ^ dir) fmt
        in
        write_file src (kernel_source pr ~u plans);
        match compile ~cc:compiler ~src ~exe with
        | Error e -> Tool_error (kept "%s" e)
        | Ok () -> (
            match run_exe ~timeout exe with
            | Error e -> Tool_error (kept "execution failed: %s" e)
            | Ok out -> (
                match parse_kernel_output out with
                | Error e -> Tool_error (kept "unparseable output: %s" e)
                | Ok cases ->
                    let schedule =
                      List.concat_map
                        (fun (m, pl) ->
                          List.map (fun v -> (m, pl, v)) variants)
                        plans
                    in
                    if List.length cases <> List.length schedule then
                      Tool_error
                        (kept "expected %d cases, parsed %d"
                           (List.length schedule) (List.length cases))
                    else
                      let rec go = function
                        | [] ->
                            cleanup dir;
                            Agree { compared = List.length schedule }
                        | ((m, pl, v), got) :: rest ->
                            if
                              got.km <> m || got.kvariant <> variant_id v
                            then
                              Tool_error
                                (kept "case order mismatch: m=%d/%s vs m=%d/%s"
                                   m (variant_id v) got.km got.kvariant)
                            else (
                              match compare_case pr ~u (m, pl) v got with
                              | None -> go rest
                              | Some d ->
                                  Obs.incr c_divergences;
                                  Diverged
                                    {
                                      d with
                                      detail =
                                        d.detail ^ "; workspace kept: " ^ dir;
                                    })
                      in
                      go (List.combine schedule cases))))

(* ------------------------------------------------------------------ *)
(* Whole-program conformance                                          *)

let parse_program_output out =
  let lines = String.split_on_char '\n' out in
  let lines =
    match List.rev lines with "" :: r -> List.rev r | _ -> lines
  in
  let is_header l = String.length l >= 7 && String.sub l 0 7 = "=array " in
  let rec split_outputs acc = function
    | [] -> (List.rev acc, [])
    | l :: _ as rest when is_header l -> (List.rev acc, rest)
    | l :: tl -> split_outputs (l :: acc) tl
  in
  let outputs, rest = split_outputs [] lines in
  let rec arrays acc = function
    | [] -> Ok (outputs, List.rev acc)
    | hdr :: vals :: tl when is_header hdr -> (
        try
          let name, n =
            Scanf.sscanf hdr "=array %s %d" (fun name n -> (name, n))
          in
          let fs =
            String.split_on_char ' ' vals
            |> List.filter (fun s -> s <> "")
            |> List.map float_of_string
            |> Array.of_list
          in
          if Array.length fs <> n then
            Error
              (Printf.sprintf "array %s: %d values, header says %d" name
                 (Array.length fs) n)
          else arrays ((name, fs) :: acc) tl
        with
        | Scanf.Scan_failure _ | Failure _ | End_of_file ->
            Error (Printf.sprintf "bad array dump near %S" hdr))
    | l :: _ -> Error (Printf.sprintf "bad array dump near %S" l)
  in
  arrays [] rest

let check_program ?(timeout = 60.) ?(name = "program") source =
  Obs.incr c_cases;
  match cc () with
  | None ->
      Obs.incr c_skips;
      No_cc
  | Some compiler -> (
      match Emit_program.emit_source ~dump_arrays:true source with
      | Error (`Failure f) ->
          Tool_error (Format.asprintf "%a" Driver.pp_failure f)
      | Error (`Unsupported un) ->
          Obs.incr c_skips;
          Unsupported (Format.asprintf "%a" Emit_program.pp_unsupported un)
      | Ok ctext -> (
          match Driver.compile_and_run source with
          | Error f -> Tool_error (Format.asprintf "%a" Driver.pp_failure f)
          | Ok oc -> (
              let dir = workspace ~prefix:"lams-native-program" in
              let src = Filename.concat dir "program.c" in
              let exe = Filename.concat dir "program" in
              let kept fmt =
                Printf.ksprintf (fun s -> s ^ "\nworkspace kept: " ^ dir) fmt
              in
              let diverged what detail =
                Obs.incr c_divergences;
                Diverged
                  {
                    m = -1;
                    variant = name;
                    what;
                    detail = detail ^ "; workspace kept: " ^ dir;
                  }
              in
              write_file src ctext;
              match compile ~cc:compiler ~src ~exe with
              | Error e -> Tool_error (kept "%s" e)
              | Ok () -> (
                  match run_exe ~timeout exe with
                  | Error e -> Tool_error (kept "execution failed: %s" e)
                  | Ok out -> (
                      match parse_program_output out with
                      | Error e -> Tool_error (kept "unparseable output: %s" e)
                      | Ok (got_outputs, got_arrays) ->
                          let expected_outputs = oc.Driver.outputs in
                          if got_outputs <> expected_outputs then
                            diverged "output"
                              (Printf.sprintf
                                 "compiled printed %d lines %s, interpreter \
                                  %d lines %s"
                                 (List.length got_outputs)
                                 (String.concat " | " got_outputs)
                                 (List.length expected_outputs)
                                 (String.concat " | " expected_outputs))
                          else
                            let rec check_arrays = function
                              | [] ->
                                  cleanup dir;
                                  Agree
                                    {
                                      compared =
                                        List.length expected_outputs
                                        + List.length got_arrays;
                                    }
                              | (a : Sema.array_info) :: rest -> (
                                  match
                                    List.assoc_opt a.Sema.name got_arrays
                                  with
                                  | None ->
                                      diverged
                                        (Printf.sprintf "array %s" a.Sema.name)
                                        "missing from compiled dump"
                                  | Some got ->
                                      let expected =
                                        Runtime.gather oc.Driver.runtime
                                          a.Sema.name
                                      in
                                      if Array.length got <> Array.length expected
                                      then
                                        diverged
                                          (Printf.sprintf "array %s" a.Sema.name)
                                          (Printf.sprintf
                                             "compiled size %d <> %d"
                                             (Array.length got)
                                             (Array.length expected))
                                      else begin
                                        let bad = ref None in
                                        (try
                                           for i = 0 to Array.length got - 1 do
                                             if
                                               not
                                                 (float_eq got.(i) expected.(i))
                                             then begin
                                               bad := Some i;
                                               raise Exit
                                             end
                                           done
                                         with Exit -> ());
                                        match !bad with
                                        | None -> check_arrays rest
                                        | Some i ->
                                            diverged
                                              (Printf.sprintf "array %s"
                                                 a.Sema.name)
                                              (Printf.sprintf
                                                 "%s(%d): compiled %.17g <> \
                                                  interpreter %.17g"
                                                 a.Sema.name i got.(i)
                                                 expected.(i))
                                      end)
                            in
                            check_arrays oc.Driver.checked.Sema.arrays)))))
