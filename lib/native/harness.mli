(** Native C conformance harness: close the codegen loop by {e running}
    the emitted node code.

    {!Lams_codegen.Emit_c} and {!Lams_hpf.Emit_program} produce C99
    text; until this module existed that text was only ever inspected,
    never executed. The harness writes the emitted code to a temp
    workspace together with a generated [main()] that fills the local
    memories from a deterministic seed (a SplitMix64 stream mirrored
    bit-for-bit in OCaml and C, {!fill_array}), compiles it with the
    system C compiler (probed once, {!cc}), executes it under a
    timeout, parses the canonical text output back, and differentially
    checks it against the interpreter oracles:

    - {e kernels} ({!check_problem}): for every processor of an
      instance and every node-code variant (the four Figure 8 shapes
      plus the table-free R/L form), the compiled kernel's visited
      address set and final memory image must be bit-identical to
      {!Lams_codegen.Shapes.assign} / the {!Lams_core.Enumerate}
      closed form (which itself must agree with the FSM-table walk the
      plan encodes);
    - {e whole programs} ({!check_program}): a mini-HPF program
      compiled by {!Lams_hpf.Emit_program} must print the same [print]
      lines and leave the same final array contents as the simulated
      runtime ({!Lams_hpf.Driver.compile_and_run} /
      {!Lams_hpf.Runtime.gather}), via [~dump_arrays:true] dumps.

    Without a C compiler every check degrades to {!No_cc} — callers
    skip, they never fail. Progress is observable through [native.*]
    {!Lams_obs.Obs} counters ([native.cases], [native.compiles],
    [native.execs], [native.divergences], [native.skips]) and the
    [native.compile_us] / [native.exec_us] span timers. *)

(** {1 Toolchain probe} *)

val probe : ?env:string option -> string list -> string option
(** [probe candidates] returns the first candidate compiler whose
    [--version] exits 0. [?env] (default [Sys.getenv_opt "LAMS_CC"])
    overrides the candidate list entirely: [Some cc] probes only [cc]
    (so [LAMS_CC=] — the empty string — disables native checking, and
    [LAMS_CC=clang] pins a compiler). *)

val cc : unit -> string option
(** The system C compiler, probed once per process from
    [LAMS_CC] / [cc] / [gcc] / [clang] and memoized. *)

(** {1 Workspace and process control} *)

val workspace : prefix:string -> string
(** A fresh private temp directory. Kept on divergence or tool error
    (its path is embedded in the outcome detail, as the repro
    artifact); removed on agreement. *)

val compile : cc:string -> src:string -> exe:string -> (unit, string) result
(** [cc -O2 -std=c99 -o exe src], compiler diagnostics captured into
    the error on failure. Counted by [native.compiles], timed by
    [native.compile_us]. *)

val run_exe : ?timeout:float -> string -> (string, string) result
(** Execute [exe] with stdout captured, polling for exit; after
    [timeout] seconds (default 60) the process is killed and an error
    returned. [Ok stdout] only for exit code 0. Counted by
    [native.execs], timed by [native.exec_us]. *)

(** {1 Deterministic memory images} *)

val sentinel : float
(** The value every kernel is invoked with ([-5.0]) — distinct from
    every fill value, so the visited address set is recoverable from
    the final memory image. *)

val fill_array : seed:int64 -> Lams_util.Fbuf.t -> unit
(** Overwrite the array with the seeded SplitMix64 fill stream:
    doubles in [[1., 1024.]], identical to what the generated C
    [reset()] produces for the same seed. *)

val c_prelude : string
(** The C side of the stream: [lams_rng] state and [lams_fill()]. *)

(** {1 Node-code variants} *)

type variant =
  | Shape of Lams_codegen.Shapes.t  (** one of the Figure 8 shapes *)
  | Table_free  (** the R/L two-test form, no gap tables *)

val variants : variant list
(** All five, shapes (a)–(d) first. *)

val variant_name : variant -> string

(** {1 Outcomes} *)

type divergence = {
  m : int;  (** processor; [-1] for whole-program checks *)
  variant : string;  (** variant or program name *)
  what : string;  (** which artifact diverged: ["addresses"], ["memory"],
                      ["output"], ["array A"] *)
  detail : string;  (** expected-vs-got, with the kept workspace path *)
}

type outcome =
  | Agree of { compared : int }
      (** every compiled (processor × variant) case — or every program
          output line and array cell — matched the interpreter;
          [compared] counts the kernel cases diffed (0 when no
          processor owns anything or all were over the extent cap) *)
  | No_cc  (** no C compiler on this host: skipped, not failed *)
  | Unsupported of string
      (** the program emitter bailed ({!Lams_hpf.Emit_program}) *)
  | Diverged of divergence  (** compiled C disagrees with the interpreter *)
  | Tool_error of string
      (** the harness itself failed: C compile error, crash, timeout,
          unparseable output — never a semantic verdict *)

val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Differential checks} *)

val check_problem :
  ?timeout:float -> ?max_extent:int -> Lams_core.Problem.t -> u:int -> outcome
(** Kernel conformance for one instance: build the (cached) plan of
    every processor owning part of [A(l:u:s)], emit all five variants
    per processor into one C translation unit with a seeded driver
    [main()], compile, run, and diff addresses + final memory per case
    against the interpreter. Processors whose local extent exceeds
    [max_extent] (default [200_000]) are left out of the unit (the
    static memory image and its dump stay bounded). *)

val check_program : ?timeout:float -> ?name:string -> string -> outcome
(** Whole-program conformance for one mini-HPF source: emit with
    [~dump_arrays:true], compile, run, and diff every [print] line and
    every array's final contents against the simulated runtime.
    [name] labels the outcome (default ["program"]). Sources the
    emitter cannot express return {!Unsupported}; sources that fail to
    parse/analyse return {!Tool_error}. *)
