(** Hand-written lexer for the mini-HPF language. Line-oriented:
    a [Newline] token separates statements; ["!"] starts a comment that
    runs to end of line (Fortran style) — except the directive sentinel
    ["!HPF$"], which is skipped and the rest of the line lexed as
    statement tokens. Keywords are case-insensitive. *)

type token =
  | Ident of string  (** uppercased *)
  | Int of int
  | Float of float
  | Lparen
  | Rparen
  | Colon
  | Comma
  | Equals
  | Plus
  | Minus
  | Star
  | Slash
  | Newline
  | Eof
  | Kw_real
  | Kw_template
  | Kw_align
  | Kw_with
  | Kw_distribute
  | Kw_onto
  | Kw_block
  | Kw_cyclic
  | Kw_print
  | Kw_sum
  | Kw_forall
  | Kw_do
  | Kw_redistribute

type located = { token : token; pos : Ast.position }

exception Lex_error of string * Ast.position

val tokenize : string -> located list
(** Whole-input tokenisation, ending with [Eof]. Consecutive newlines are
    collapsed. @raise Lex_error on an unexpected character or malformed
    number. *)

val token_to_string : token -> string
