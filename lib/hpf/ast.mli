(** Abstract syntax for the mini-HPF input language.

    The language covers the fragment the paper's compilation problem
    concerns: [REAL] arrays of rank 1 or more, optional [TEMPLATE]s,
    affine [ALIGN]ments (rank-1 arrays), [DISTRIBUTE] directives with
    [BLOCK] / [CYCLIC] / [CYCLIC(k)] formats per dimension, and
    array-section assignment statements. Dimensions are mapped
    independently (§2), so a multidimensional distribute takes one format
    per dimension and a processor-grid shape.

    {[
      real A(320)
      template T(400)
      align A(i) with T(2*i+1)
      distribute T (cyclic(8)) onto 4
      A(4:319:9) = 100.0

      real M(64, 64)
      distribute M (cyclic(4), cyclic(4)) onto (2, 2)
      M(0:63:2, 1:63:3) = 5.0
      print sum M(0:63:1, 0:63:1)
    ]} *)

type position = { line : int; column : int }

type triplet = { t_lo : int; t_hi : int; t_stride : int  (** default 1 *) }

type section_ref = {
  array : string;
  triplets : triplet list;  (** one per dimension *)
  ref_pos : position;
}

type binop = Add | Sub | Mul | Div

type expr =
  | Const of float
  | Ref of section_ref
  | Ref_op_const of section_ref * binop * float
  | Const_op_ref of float * binop * section_ref
  | Ref_op_ref of section_ref * binop * section_ref

type dist_format = Block | Cyclic | Cyclic_k of int

type affine = { scale : int; offset : int }
(** [scale*i + offset]; identity is [{scale = 1; offset = 0}]. *)

type forall_ref = {
  f_array : string;
  f_sub : affine;  (** subscript [scale*var + offset] in the loop variable *)
  f_pos : position;
}
(** An element reference inside a [forall] body, e.g. [B(2*i+1)]. *)

type forall_expr =
  | F_const of float
  | F_ref of forall_ref
  | F_ref_op_const of forall_ref * binop * float
  | F_const_op_ref of float * binop * forall_ref
  | F_ref_op_ref of forall_ref * binop * forall_ref

type statement =
  | Decl of { name : string; sizes : int list; pos : position }
  | Template of { name : string; size : int; pos : position }
  | Align of { array : string; target : string; map : affine; pos : position }
  | Distribute of {
      name : string;
      formats : dist_format list;  (** one per dimension *)
      onto : int list;  (** processor-grid shape; one per dimension *)
      pos : position;
    }
  | Redistribute of {
      name : string;
      formats : dist_format list;
      onto : int list;
      pos : position;
    }  (** [!HPF$ REDISTRIBUTE A (cyclic(k')) onto p'] — remap an
          already-distributed array at this point in the statement
          sequence *)
  | Assign of { lhs : section_ref; rhs : expr; pos : position }
  | Forall of {
      var : string;
      range : triplet;  (** loop index values *)
      lhs : forall_ref;
      rhs : forall_expr;
      pos : position;
    }  (** [forall i = lo:hi:s do A(a*i+b) = expr], HPF's single-statement
          FORALL; lowered to a section assignment during analysis *)
  | Print of { arg : section_ref; pos : position }
  | Print_sum of { arg : section_ref; pos : position }

type program = statement list

val statement_pos : statement -> position
val pp_triplet : Format.formatter -> triplet -> unit
val pp_statement : Format.formatter -> statement -> unit
val pp_binop : Format.formatter -> binop -> unit
