open Lams_dist
open Lams_core
open Lams_codegen

type unsupported = { what : string; hint : string }

let pp_unsupported ppf { what; hint } =
  Format.fprintf ppf "cannot emit C for %s (%s)" what hint

exception Bail of unsupported

let bail what hint = raise (Bail { what; hint })

(* The static-schedule arrays for copies are embedded in the program text;
   keep them bounded. *)
let max_copy_elements = 65_536

type carray = {
  name : string;
  n : int;
  p : int;
  layout : Layout.t;
  extents : int array;  (** per processor, >= 1 so the symbol exists *)
}

let resolve_arrays (checked : Sema.checked) =
  List.map
    (fun (info : Sema.array_info) ->
      let plain n p dist =
        let layout = Distribution.to_layout dist ~n ~p in
        { name = info.Sema.name;
          n;
          p;
          layout;
          extents =
            Array.init p (fun m -> max 1 (Layout.local_extent layout ~n ~proc:m)) }
      in
      match info.Sema.mapping with
      | Sema.Grid { dists; grid } when Array.length info.Sema.sizes = 1 ->
          plain info.Sema.sizes.(0) grid.(0) dists.(0)
      | Sema.Grid _ ->
          bail
            (Printf.sprintf "multidimensional array %s" info.Sema.name)
            "C emission supports rank-1 arrays"
      | Sema.Aligned_1d { align; _ } when not (Alignment.is_identity align) ->
          bail
            (Printf.sprintf "aligned array %s" info.Sema.name)
            "C emission supports identity mappings only"
      | Sema.Aligned_1d { p; dist; _ } -> plain info.Sema.sizes.(0) p dist)
    checked.Sema.arrays

let find_array arrays name = List.find (fun a -> a.name = name) arrays

let buf_add = Buffer.add_string

(* Owner-computes read expression for a global index held in C variable
   [g]. *)
let emit_read_expr a ~g =
  let pk = Layout.row_len a.layout and k = a.layout.Layout.k in
  Printf.sprintf
    "%s_stores[(%s %% %d) / %d][((%s / %d) * %d) + (%s %% %d) - (((%s %% %d) / %d) * %d)]"
    a.name g pk k g pk k g pk g pk k k

let section_of (r : Sema.ref_info) = r.Sema.sections.(0)

let same_ref (a : Sema.ref_info) (b : Sema.ref_info) =
  a.Sema.info.Sema.name = b.Sema.info.Sema.name
  && section_of a = section_of b

let plan_of arrays (r : Sema.ref_info) ~m =
  let a = find_array arrays r.Sema.info.Sema.name in
  let norm = Section.normalize (section_of r) in
  let pr = Problem.of_section a.layout norm in
  Plan.build pr ~m ~u:norm.Section.hi

(* In-place pointwise kernel: local[base] = <rhs_expr over local[base]>,
   walking the plan with shape 8(b). *)
let inplace_function plan ~name ~rhs_expr =
  String.concat "\n"
    [ Printf.sprintf "static void %s(double *local)" name;
      "{";
      Emit_c.tables plan;
      "  int base = startmem, i = 0;";
      "  while (base <= lastmem) {";
      Printf.sprintf "    local[base] = %s;" rhs_expr;
      "    base += deltaM[i++];";
      "    if (i == length) i = 0;";
      "  }";
      "  (void)deltaOff; (void)NextOffset;";
      "}";
      "" ]

let op_c_text op lhs rhs =
  match (op : Ast.binop) with
  | Ast.Add -> Printf.sprintf "%s + %s" lhs rhs
  | Ast.Sub -> Printf.sprintf "%s - %s" lhs rhs
  | Ast.Mul -> Printf.sprintf "%s * %s" lhs rhs
  | Ast.Div -> Printf.sprintf "%s / %s" lhs rhs

let float_c v = Printf.sprintf "%.17g" v

type emitter = {
  decls : Buffer.t;
  funcs : Buffer.t;
  main : Buffer.t;
  mutable staged : int;  (** size of the staging buffer needed *)
}

(* A staged data movement: gather src values (as transformed by
   [gather_expr], which receives the raw source read text) into the staging
   buffer by traversal position, barrier, then scatter into dst (as
   combined by [scatter_expr], which receives the dst lvalue and the staged
   read). This is the message structure of the two-phase exchange and is
   aliasing-safe by construction. *)
let emit_movement em arrays ~idx ~sub ~(dst : Sema.ref_info)
    ~(src : Sema.ref_info) ~gather_expr ~scatter_expr =
  let dst_a = find_array arrays dst.Sema.info.Sema.name
  and src_a = find_array arrays src.Sema.info.Sema.name in
  let dst_section = section_of dst and src_section = section_of src in
  let count = Section.count src_section in
  if count > max_copy_elements then
    bail
      (Printf.sprintf "a %d-element copy from %s into %s" count src_a.name
         dst_a.name)
      (Printf.sprintf "static schedules are capped at %d elements"
         max_copy_elements);
  em.staged <- max em.staged count;
  let sched =
    Lams_sim.Comm_sets.build ~src_layout:src_a.layout ~src_section
      ~dst_layout:dst_a.layout ~dst_section
  in
  buf_add em.main
    (Printf.sprintf "  /* move %s(...) -> %s(...): %d transfers */\n"
       src_a.name dst_a.name
       (List.length sched.Lams_sim.Comm_sets.transfers));
  let transfer_arrays =
    List.mapi
      (fun tnum (tr : Lams_sim.Comm_sets.transfer) ->
        let positions =
          List.concat_map Lams_sim.Comm_sets.positions tr.Lams_sim.Comm_sets.runs
        in
        let base = Printf.sprintf "stmt%d_%s_t%d" idx sub tnum in
        let dump suffix values =
          buf_add em.funcs
            (Printf.sprintf "static const int %s_%s[%d] = { %s };\n" base
               suffix (List.length values)
               (String.concat ", " (List.map string_of_int values)))
        in
        dump "pos" positions;
        dump "src"
          (List.map
             (fun j -> Layout.local_address src_a.layout (Section.nth src_section j))
             positions);
        dump "dst"
          (List.map
             (fun j -> Layout.local_address dst_a.layout (Section.nth dst_section j))
             positions);
        (base, tr, List.length positions))
      sched.Lams_sim.Comm_sets.transfers
  in
  (* Gather phase (the "sends"). *)
  List.iter
    (fun (base, (tr : Lams_sim.Comm_sets.transfer), n) ->
      buf_add em.main
        (Printf.sprintf
           "  for (int i = 0; i < %d; i++)  /* gather on proc %d */\n\
           \    staged[%s_pos[i]] = %s;\n"
           n tr.Lams_sim.Comm_sets.src_proc base
           (gather_expr
              (Printf.sprintf "%s_%d[%s_src[i]]" src_a.name
                 tr.Lams_sim.Comm_sets.src_proc base))))
    transfer_arrays;
  (* Scatter phase (the "receives"). *)
  List.iter
    (fun (base, (tr : Lams_sim.Comm_sets.transfer), n) ->
      let dst_lvalue =
        Printf.sprintf "%s_%d[%s_dst[i]]" dst_a.name
          tr.Lams_sim.Comm_sets.dst_proc base
      in
      buf_add em.main
        (Printf.sprintf
           "  for (int i = 0; i < %d; i++)  /* scatter on proc %d */\n\
           \    %s = %s;\n"
           n tr.Lams_sim.Comm_sets.dst_proc dst_lvalue
           (scatter_expr dst_lvalue (Printf.sprintf "staged[%s_pos[i]]" base))))
    transfer_arrays

let plain_gather e = e
let plain_scatter _dst staged = staged

let emit ?(dump_arrays = false) (checked : Sema.checked) =
  try
    let arrays = resolve_arrays checked in
    let em =
      { decls = Buffer.create 1024;
        funcs = Buffer.create 4096;
        main = Buffer.create 4096;
        staged = 0 }
    in
    (* --- Per-array local stores + pointer tables --- *)
    List.iter
      (fun a ->
        Array.iteri
          (fun m extent ->
            buf_add em.decls
              (Printf.sprintf "static double %s_%d[%d];\n" a.name m extent))
          a.extents;
        buf_add em.decls
          (Printf.sprintf "static double *%s_stores[%d] = { %s };\n" a.name a.p
             (String.concat ", "
                (List.init a.p (fun m -> Printf.sprintf "%s_%d" a.name m)))))
      arrays;
    (* --- Statement helpers --- *)
    let fill idx (lhs : Sema.ref_info) v =
      let a = find_array arrays lhs.Sema.info.Sema.name in
      buf_add em.main
        (Printf.sprintf "  /* %s(%s) = %s */\n" a.name
           (Format.asprintf "%a" Section.pp (section_of lhs))
           (float_c v));
      for m = 0 to a.p - 1 do
        match plan_of arrays lhs ~m with
        | None -> ()
        | Some plan ->
            let fname = Printf.sprintf "stmt%d_proc%d" idx m in
            buf_add em.funcs
              ("static " ^ Emit_c.full_function Shapes.Shape_b plan ~name:fname);
            buf_add em.funcs "\n";
            buf_add em.main
              (Printf.sprintf "  %s(%s_%d, %s);\n" fname a.name m (float_c v))
      done
    in
    let inplace idx ~sub (lhs : Sema.ref_info) rhs_expr =
      let a = find_array arrays lhs.Sema.info.Sema.name in
      buf_add em.main (Printf.sprintf "  /* in-place update of %s */\n" a.name);
      for m = 0 to a.p - 1 do
        match plan_of arrays lhs ~m with
        | None -> ()
        | Some plan ->
            let fname = Printf.sprintf "stmt%d_%s_proc%d" idx sub m in
            buf_add em.funcs (inplace_function plan ~name:fname ~rhs_expr);
            buf_add em.main (Printf.sprintf "  %s(%s_%d);\n" fname a.name m)
      done
    in
    (* --- Statements --- *)
    List.iteri
      (fun idx action ->
        match action with
        | Sema.Assign { lhs; rhs = Sema.Const v } -> fill idx lhs v
        | Sema.Assign { lhs; rhs = Sema.Copy src } ->
            emit_movement em arrays ~idx ~sub:"cp" ~dst:lhs ~src
              ~gather_expr:plain_gather ~scatter_expr:plain_scatter
        | Sema.Assign { lhs; rhs = Sema.Ref_op_const (r, op, v) } ->
            if same_ref lhs r then
              inplace idx ~sub:"op" lhs (op_c_text op "local[base]" (float_c v))
            else
              emit_movement em arrays ~idx ~sub:"opc" ~dst:lhs ~src:r
                ~gather_expr:(fun e -> op_c_text op e (float_c v))
                ~scatter_expr:plain_scatter
        | Sema.Assign { lhs; rhs = Sema.Const_op_ref (v, op, r) } ->
            if same_ref lhs r then
              inplace idx ~sub:"op" lhs (op_c_text op (float_c v) "local[base]")
            else
              emit_movement em arrays ~idx ~sub:"cop" ~dst:lhs ~src:r
                ~gather_expr:(fun e -> op_c_text op (float_c v) e)
                ~scatter_expr:plain_scatter
        | Sema.Assign { lhs; rhs = Sema.Ref_op_ref (r1, op, r2) } ->
            if same_ref lhs r1 then
              (* A = A op B: accumulate B into A through the schedule. *)
              emit_movement em arrays ~idx ~sub:"acc" ~dst:lhs ~src:r2
                ~gather_expr:plain_gather
                ~scatter_expr:(fun dst staged -> op_c_text op dst staged)
            else if same_ref lhs r2 then
              emit_movement em arrays ~idx ~sub:"acc" ~dst:lhs ~src:r1
                ~gather_expr:plain_gather
                ~scatter_expr:(fun dst staged -> op_c_text op staged dst)
            else begin
              (* A = B op C: copy B into A, then accumulate C. *)
              emit_movement em arrays ~idx ~sub:"s1" ~dst:lhs ~src:r1
                ~gather_expr:plain_gather ~scatter_expr:plain_scatter;
              emit_movement em arrays ~idx ~sub:"s2" ~dst:lhs ~src:r2
                ~gather_expr:plain_gather
                ~scatter_expr:(fun dst staged -> op_c_text op dst staged)
            end
        | Sema.Redistribute { from_; _ } ->
            bail
              (Printf.sprintf "REDISTRIBUTE of %s" from_.Sema.name)
              "the C emitter keeps one static mapping per array; run the \
               program on the simulated runtime instead"
        | Sema.Print r ->
            let a = find_array arrays r.Sema.info.Sema.name in
            let sec = section_of r in
            buf_add em.main
              (Printf.sprintf
                 "  for (int j = 0; j < %d; j++) {\n\
                 \    int g = %d + j * %d;\n\
                 \    printf(\"%%s%%g\", j ? \" \" : \"\", %s);\n\
                 \  }\n\
                 \  printf(\"\\n\");\n"
                 (Section.count sec) sec.Section.lo sec.Section.stride
                 (emit_read_expr a ~g:"g"))
        | Sema.Print_sum r ->
            let a = find_array arrays r.Sema.info.Sema.name in
            let sec = section_of r in
            buf_add em.main
              (Printf.sprintf
                 "  {\n\
                 \    double sum = 0.0;\n\
                 \    for (int j = 0; j < %d; j++) {\n\
                 \      int g = %d + j * %d;\n\
                 \      sum += %s;\n\
                 \    }\n\
                 \    printf(\"%%g\\n\", sum);\n\
                 \  }\n"
                 (Section.count sec) sec.Section.lo sec.Section.stride
                 (emit_read_expr a ~g:"g")))
      checked.Sema.actions;
    (* Final-state dumps for the native conformance harness: one
       [=array NAME N] header per array followed by its full global
       contents, read owner-computes like the prints. %.17g round-trips
       doubles exactly, so the harness can compare bit-for-bit. *)
    if dump_arrays then
      List.iter
        (fun a ->
          buf_add em.main
            (Printf.sprintf "  printf(\"=array %s %d\\n\");\n" a.name a.n);
          buf_add em.main
            (Printf.sprintf
               "  for (int g = 0; g < %d; g++)\n\
               \    printf(\"%%s%%.17g\", g ? \" \" : \"\", %s);\n\
               \  printf(\"\\n\");\n"
               a.n (emit_read_expr a ~g:"g")))
        arrays;
    let out = Buffer.create 8192 in
    buf_add out "/* Generated by lams compile-c: SPMD node programs for a\n";
    buf_add out "   mini-HPF source, sequentialised per processor. */\n";
    buf_add out "#include <stdio.h>\n\n";
    Buffer.add_buffer out em.decls;
    if em.staged > 0 then
      buf_add out
        (Printf.sprintf "\n/* message staging buffer */\nstatic double staged[%d];\n"
           em.staged);
    buf_add out "\n";
    Buffer.add_buffer out em.funcs;
    buf_add out "int main(void)\n{\n";
    Buffer.add_buffer out em.main;
    buf_add out "  return 0;\n}\n";
    Ok (Buffer.contents out)
  with Bail u -> Error u

let emit_source ?dump_arrays source =
  match Driver.compile source with
  | Error f -> Error (`Failure f)
  | Ok checked -> begin
      match emit ?dump_arrays checked with
      | Ok text -> Ok text
      | Error u -> Error (`Unsupported u)
    end
