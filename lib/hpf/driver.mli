(** One-call pipeline: source text → parse → analyse → execute.

    [compile_and_run] executes on the simulated distributed machine;
    [crosscheck] additionally runs the sequential reference and reports
    the first divergence (the end-to-end correctness gate used by tests
    and the [lams run] CLI). *)

type outcome = {
  checked : Sema.checked;
  runtime : Runtime.t;
  outputs : string list;
}

type failure =
  | Syntax of string * Ast.position
  | Semantic of Sema.error list

val compile : string -> (Sema.checked, failure) result
val compile_and_run :
  ?shape:Lams_codegen.Shapes.t -> ?parallel:bool -> string ->
  (outcome, failure) result
(** [parallel] runs rank-1 constant fills on the {!Lams_sim.Spmd} domain
    pool (default [false]). *)

type divergence =
  | Output_differs of { index : int; simulated : string; reference : string }
  | Contents_differ of { array : string; index : int; simulated : float; reference : float }

val crosscheck :
  ?shape:Lams_codegen.Shapes.t -> ?parallel:bool -> string ->
  (outcome, [ `Failure of failure | `Diverged of divergence ]) result

val pp_failure : Format.formatter -> failure -> unit
val pp_divergence : Format.formatter -> divergence -> unit
