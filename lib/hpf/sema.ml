open Lams_dist

type mapping =
  | Grid of { dists : Distribution.t array; grid : int array }
  | Aligned_1d of {
      p : int;
      dist : Distribution.t;
      align : Alignment.t;
      template_size : int;
    }

type array_info = { name : string; sizes : int array; mapping : mapping }
type ref_info = { info : array_info; sections : Section.t array }

type action =
  | Assign of { lhs : ref_info; rhs : rhs }
  | Redistribute of { from_ : array_info; to_ : array_info }
  | Print of ref_info
  | Print_sum of ref_info

and rhs =
  | Const of float
  | Copy of ref_info
  | Ref_op_const of ref_info * Ast.binop * float
  | Const_op_ref of float * Ast.binop * ref_info
  | Ref_op_ref of ref_info * Ast.binop * ref_info

type checked = { arrays : array_info list; actions : action list }
type error = { msg : string; pos : Ast.position }

let pp_error ppf { msg; pos } =
  Format.fprintf ppf "line %d, col %d: %s" pos.Ast.line pos.Ast.column msg

let rank info = Array.length info.sizes
let ref_shape r = Array.map Section.count r.sections
let ref_count r = Array.fold_left ( * ) 1 (ref_shape r)

(* First pass: collect declarations and directives. *)
type entry = {
  e_sizes : int array;
  e_is_template : bool;
  mutable e_dist : (Ast.dist_format list * int list * Ast.position) option;
  mutable e_align : (string * Ast.affine * Ast.position) option;
}

let dist_of_format = function
  | Ast.Block -> Distribution.Block
  | Ast.Cyclic -> Distribution.Cyclic
  | Ast.Cyclic_k k -> Distribution.Block_cyclic k

let analyze program =
  let errors = ref [] in
  let err pos fmt =
    Format.kasprintf (fun msg -> errors := { msg; pos } :: !errors) fmt
  in
  let table : (string, entry) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  (* --- Pass 1: declarations and directives --- *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Decl { name; sizes; pos } -> begin
          if Hashtbl.mem table name then err pos "duplicate declaration of %s" name
          else if List.exists (fun n -> n <= 0) sizes then
            err pos "%s declared with a non-positive extent" name
          else begin
            Hashtbl.add table name
              { e_sizes = Array.of_list sizes;
                e_is_template = false;
                e_dist = None;
                e_align = None };
            order := name :: !order
          end
        end
      | Ast.Template { name; size; pos } -> begin
          if Hashtbl.mem table name then err pos "duplicate declaration of %s" name
          else if size <= 0 then
            err pos "%s declared with non-positive size %d" name size
          else begin
            Hashtbl.add table name
              { e_sizes = [| size |];
                e_is_template = true;
                e_dist = None;
                e_align = None };
            order := name :: !order
          end
        end
      | Ast.Align { array; target; map; pos } -> begin
          match Hashtbl.find_opt table array with
          | None -> err pos "align of undeclared array %s" array
          | Some e ->
              if e.e_align <> None then err pos "%s aligned twice" array
              else if Array.length e.e_sizes <> 1 then
                err pos "align of %s: only rank-1 arrays can be aligned" array
              else if map.Ast.scale = 0 then
                err pos "alignment scale must be non-zero"
              else e.e_align <- Some (target, map, pos)
        end
      | Ast.Distribute { name; formats; onto; pos } -> begin
          match Hashtbl.find_opt table name with
          | None -> err pos "distribute of undeclared name %s" name
          | Some e ->
              if e.e_dist <> None then err pos "%s distributed twice" name
              else begin
                let r = Array.length e.e_sizes in
                if List.length formats <> r then
                  err pos
                    "distribute %s: %d formats for a rank-%d array" name
                    (List.length formats) r
                else if List.length onto <> r then
                  err pos
                    "distribute %s: processor grid has rank %d, array has \
                     rank %d"
                    name (List.length onto) r
                else begin
                  List.iter
                    (fun p ->
                      if p <= 0 then
                        err pos "onto %d: processor count must be positive" p)
                    onto;
                  List.iter
                    (function
                      | Ast.Cyclic_k k when k <= 0 ->
                          err pos "cyclic(%d): block size must be positive" k
                      | Ast.Block | Ast.Cyclic | Ast.Cyclic_k _ -> ())
                    formats;
                  e.e_dist <- Some (formats, onto, pos)
                end
              end
        end
      | Ast.Redistribute _ | Ast.Assign _ | Ast.Forall _ | Ast.Print _
      | Ast.Print_sum _ ->
          ())
    program;
  (* --- Pass 2: resolve mappings --- *)
  let resolved : (string, array_info) Hashtbl.t = Hashtbl.create 16 in
  let resolve name =
    match Hashtbl.find_opt table name with
    | None -> ()
    | Some e when e.e_is_template -> () (* templates are not value arrays *)
    | Some e -> begin
        match (e.e_dist, e.e_align) with
        | Some _, Some (_, _, pos) ->
            err pos "%s is both distributed and aligned; pick one" name
        | Some (formats, onto, _), None ->
            Hashtbl.replace resolved name
              { name;
                sizes = e.e_sizes;
                mapping =
                  Grid
                    { dists = Array.of_list (List.map dist_of_format formats);
                      grid = Array.of_list onto } }
        | None, Some (target, map, pos) -> begin
            match Hashtbl.find_opt table target with
            | None -> err pos "%s aligned with undeclared template %s" name target
            | Some te when not te.e_is_template ->
                err pos "%s aligned with %s, which is not a template" name target
            | Some te -> begin
                match te.e_dist with
                | None -> err pos "template %s is not distributed" target
                | Some ([ format ], [ onto ], _) ->
                    let align =
                      Alignment.make ~scale:map.Ast.scale ~offset:map.Ast.offset
                    in
                    let size = e.e_sizes.(0) in
                    let c0 = Alignment.apply align 0
                    and c1 = Alignment.apply align (size - 1) in
                    let cmin = min c0 c1 and cmax = max c0 c1 in
                    if cmin < 0 || cmax >= te.e_sizes.(0) then
                      err pos
                        "alignment maps %s onto template cells [%d, %d], \
                         outside %s(%d)"
                        name cmin cmax target te.e_sizes.(0)
                    else
                      Hashtbl.replace resolved name
                        { name;
                          sizes = e.e_sizes;
                          mapping =
                            Aligned_1d
                              { p = onto;
                                dist = dist_of_format format;
                                align;
                                template_size = te.e_sizes.(0) } }
                | Some _ ->
                    err pos "template %s must be rank-1" target
              end
          end
        | None, None -> () (* only an error if the array is used *)
      end
  in
  List.iter resolve (List.rev !order);
  (* --- Pass 3: actions --- *)
  (* [REDISTRIBUTE] makes mappings flow-sensitive: [current] tracks the
     mapping in effect at each statement, starting from the resolved
     declarations (which [checked.arrays] keeps for array creation). *)
  let current = Hashtbl.copy resolved in
  let resolve_ref (r : Ast.section_ref) =
    match Hashtbl.find_opt current r.Ast.array with
    | None ->
        (if Hashtbl.mem table r.Ast.array then
           err r.Ast.ref_pos "%s has no mapping (distribute it or align it)"
             r.Ast.array
         else err r.Ast.ref_pos "undeclared array %s" r.Ast.array);
        None
    | Some info ->
        let given = List.length r.Ast.triplets in
        if given <> rank info then begin
          err r.Ast.ref_pos "%s has rank %d, reference has %d subscripts"
            r.Ast.array (rank info) given;
          None
        end
        else begin
          let ok = ref true in
          let sections =
            Array.of_list
              (List.mapi
                 (fun d { Ast.t_lo; t_hi; t_stride } ->
                   if t_stride = 0 then begin
                     err r.Ast.ref_pos "zero stride in subscript %d of %s"
                       d r.Ast.array;
                     ok := false;
                     Section.make ~lo:0 ~hi:0 ~stride:1
                   end
                   else begin
                     let section = Section.make ~lo:t_lo ~hi:t_hi ~stride:t_stride in
                     if Section.is_empty section then begin
                       err r.Ast.ref_pos "empty subscript %d:%d:%d of %s"
                         t_lo t_hi t_stride r.Ast.array;
                       ok := false;
                       section
                     end
                     else begin
                       let norm = Section.normalize section in
                       if norm.Section.lo < 0 || norm.Section.hi >= info.sizes.(d)
                       then begin
                         err r.Ast.ref_pos
                           "subscript %d:%d:%d outside dimension %d of %s(%d)"
                           t_lo t_hi t_stride d r.Ast.array info.sizes.(d);
                         ok := false
                       end;
                       section
                     end
                   end)
                 r.Ast.triplets)
          in
          if !ok then Some { info; sections } else None
        end
  in
  let same_shape pos (a : ref_info) (b : ref_info) =
    if ref_shape a <> ref_shape b then
      err pos "operand sections have shapes (%s) and (%s)"
        (String.concat ","
           (Array.to_list (Array.map string_of_int (ref_shape a))))
        (String.concat ","
           (Array.to_list (Array.map string_of_int (ref_shape b))))
  in
  let actions = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Decl _ | Ast.Template _ | Ast.Align _ | Ast.Distribute _ -> ()
      | Ast.Redistribute { name; formats; onto; pos } -> begin
          match Hashtbl.find_opt current name with
          | None ->
              if Hashtbl.mem table name then
                err pos "redistribute of unmapped array %s" name
              else err pos "redistribute of undeclared array %s" name
          | Some info when rank info <> 1 ->
              err pos "redistribute %s: only rank-1 arrays can be redistributed"
                name
          | Some info -> begin
              match (info.mapping, formats, onto) with
              | Grid _, [ format ], [ p ] ->
                  if p <= 0 then
                    err pos "onto %d: processor count must be positive" p
                  else begin
                    (match format with
                    | Ast.Cyclic_k k when k <= 0 ->
                        err pos "cyclic(%d): block size must be positive" k
                    | Ast.Block | Ast.Cyclic | Ast.Cyclic_k _ -> ());
                    let to_ =
                      { info with
                        mapping =
                          Grid
                            { dists = [| dist_of_format format |];
                              grid = [| p |] } }
                    in
                    actions := Redistribute { from_ = info; to_ } :: !actions;
                    Hashtbl.replace current name to_
                  end
              | Grid _, _, _ ->
                  err pos
                    "redistribute %s: expected one format and one processor \
                     count for a rank-1 array"
                    name
              | Aligned_1d _, _, _ ->
                  err pos
                    "redistribute %s: aligned arrays cannot be redistributed"
                    name
            end
        end
      | Ast.Forall { var = _; range; lhs; rhs; pos } -> begin
          (* Lower the single-statement FORALL to a section assignment:
             subscript a*i+b over the iteration range lo:hi:s touches the
             section (a*lo+b : a*last+b : a*s), in iteration order. *)
          if range.Ast.t_stride = 0 then err pos "zero stride in forall range"
          else begin
            let iter =
              Section.make ~lo:range.Ast.t_lo ~hi:range.Ast.t_hi
                ~stride:range.Ast.t_stride
            in
            if Section.is_empty iter then err pos "empty forall range"
            else begin
              let resolve_fref (r : Ast.forall_ref) =
                if r.Ast.f_sub.Ast.scale = 0 then begin
                  err r.Ast.f_pos
                    "forall subscript of %s must use the loop variable"
                    r.Ast.f_array;
                  None
                end
                else begin
                  let at i = (r.Ast.f_sub.Ast.scale * i) + r.Ast.f_sub.Ast.offset in
                  resolve_ref
                    { Ast.array = r.Ast.f_array;
                      triplets =
                        [ { Ast.t_lo = at iter.Section.lo;
                            t_hi = at (Section.last iter);
                            t_stride = r.Ast.f_sub.Ast.scale * iter.Section.stride } ];
                      ref_pos = r.Ast.f_pos }
                end
              in
              match resolve_fref lhs with
              | None -> ()
              | Some l -> begin
                  let rhs_resolved =
                    match rhs with
                    | Ast.F_const v -> Some (Const v)
                    | Ast.F_ref r ->
                        Option.map (fun ri -> Copy ri) (resolve_fref r)
                    | Ast.F_ref_op_const (r, op, v) ->
                        Option.map
                          (fun ri -> Ref_op_const (ri, op, v))
                          (resolve_fref r)
                    | Ast.F_const_op_ref (v, op, r) ->
                        Option.map
                          (fun ri -> Const_op_ref (v, op, ri))
                          (resolve_fref r)
                    | Ast.F_ref_op_ref (r1, op, r2) -> begin
                        match (resolve_fref r1, resolve_fref r2) with
                        | Some a, Some b -> Some (Ref_op_ref (a, op, b))
                        | _ -> None
                      end
                  in
                  match rhs_resolved with
                  | Some rhs -> actions := Assign { lhs = l; rhs } :: !actions
                  | None -> ()
                end
            end
          end
        end
      | Ast.Print { arg; _ } -> begin
          match resolve_ref arg with
          | Some r -> actions := Print r :: !actions
          | None -> ()
        end
      | Ast.Print_sum { arg; _ } -> begin
          match resolve_ref arg with
          | Some r -> actions := Print_sum r :: !actions
          | None -> ()
        end
      | Ast.Assign { lhs; rhs; pos } -> begin
          match resolve_ref lhs with
          | None -> ()
          | Some l -> begin
              let rhs_resolved =
                match rhs with
                | Ast.Const v -> Some (Const v)
                | Ast.Ref r -> begin
                    match resolve_ref r with
                    | Some ri ->
                        same_shape pos l ri;
                        Some (Copy ri)
                    | None -> None
                  end
                | Ast.Ref_op_const (r, op, v) -> begin
                    match resolve_ref r with
                    | Some ri ->
                        same_shape pos l ri;
                        Some (Ref_op_const (ri, op, v))
                    | None -> None
                  end
                | Ast.Const_op_ref (v, op, r) -> begin
                    match resolve_ref r with
                    | Some ri ->
                        same_shape pos l ri;
                        Some (Const_op_ref (v, op, ri))
                    | None -> None
                  end
                | Ast.Ref_op_ref (r1, op, r2) -> begin
                    match (resolve_ref r1, resolve_ref r2) with
                    | Some a, Some b ->
                        same_shape pos l a;
                        same_shape pos a b;
                        Some (Ref_op_ref (a, op, b))
                    | _ -> None
                  end
              in
              match rhs_resolved with
              | Some rhs -> actions := Assign { lhs = l; rhs } :: !actions
              | None -> ()
            end
        end)
    program;
  match List.rev !errors with
  | [] ->
      let arrays =
        List.filter_map (Hashtbl.find_opt resolved) (List.rev !order)
      in
      Ok { arrays; actions = List.rev !actions }
  | errs -> Error errs
