(** SPMD execution of checked mini-HPF programs on the simulated machine.

    Rank-1 identity-mapped arrays live in {!Lams_sim.Darray} stores; their
    constant fills run through the Figure 8 node code and their inter-array
    copies through the schedule-driven two-phase network exchange.
    Multidimensional arrays live in per-grid-node stores addressed through
    {!Lams_multidim.Md_array}; their constant fills use the per-dimension
    traversal (multiple applications of the 1-D algorithm, §2).
    Non-identity alignments use packed per-processor stores addressed
    through {!Lams_multidim.Aligned}. Fortran array-statement semantics
    hold throughout: the right-hand side is fully fetched before any
    store. *)

type value_array =
  | Direct of Lams_sim.Darray.t
  | Packed of {
      desc : Lams_multidim.Aligned.t;
      stores : Lams_sim.Local_store.t array;
      size : int;
    }
  | Md of {
      md : Lams_multidim.Md_array.t;
      stores : Lams_sim.Local_store.t array;  (** indexed by grid rank *)
      sizes : int array;
    }

type t = {
  arrays : (string * value_array) list;
  outputs : string list;  (** one entry per executed [print], in order *)
  network : Lams_sim.Network.t option;  (** present iff any copy communicated *)
}

val run : ?shape:Lams_codegen.Shapes.t -> ?parallel:bool -> Sema.checked -> t
(** Execute all actions. [shape] selects the node code used for constant
    fills of rank-1 identity-mapped arrays (default [Shape_d]);
    [parallel] (default [false]) runs those fills' ranks on the
    {!Lams_sim.Spmd} domain pool. Plans are served by the process-wide
    {!Lams_core.Plan_cache}, so repeated statements over the same section
    skip table construction. *)

val read : t -> string -> int array -> float
(** Element read from the final state, by multi-index.
    @raise Not_found for unknown arrays;
    @raise Invalid_argument for rank mismatch or out-of-range indices. *)

val gather : t -> string -> float array
(** Full contents in row-major order. @raise Not_found. *)
