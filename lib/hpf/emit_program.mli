(** Whole-program C emission: compile a checked mini-HPF program into one
    self-contained C translation unit — the artifact an HPF compiler of the
    paper's era ultimately produced.

    The generated program declares one local store per (array, processor),
    runs the node programs of every statement in order (sequential
    simulation of the SPMD schedule, like the library runtime), and prints
    the same lines as {!Runtime.run}. Constant fills and in-place pointwise
    updates use the Figure 8 node code with embedded [deltaM] tables;
    inter-array copies use statically computed communication schedules
    (address/source pairs per processor pair); prints use owner-computes
    address resolution.

    Data movement is staged: every copy or cross-array expression gathers
    source values into a per-statement staging buffer (the "message") and
    scatters after a barrier, which makes overlapping-section statements
    aliasing-safe exactly like the runtime's two-phase exchange.

    Supported subset: every statement form of the language over rank-1
    identity-mapped arrays — [Const] fills, copies, pointwise expressions
    (in-place when source and destination coincide, staged otherwise,
    including two-operand [A = B op C]), [forall] (already lowered by
    [Sema]), [print] and [print sum]. Multidimensional and non-identity-
    aligned arrays, and copies beyond the static-schedule cap, yield
    [Error (Unsupported _)] — the OCaml runtime remains the reference
    executor for the full language. *)

type unsupported = { what : string; hint : string }

val emit : ?dump_arrays:bool -> Sema.checked -> (string, unsupported) result
(** The complete C program text ([main] included). With
    [~dump_arrays:true] (default [false]) the program additionally
    prints, after its last statement, one [=array NAME N] header per
    array followed by the array's full global contents as
    space-separated [%.17g] values — the canonical final-state format
    the native conformance harness ({!Lams_native.Harness}) diffs
    against {!Runtime.gather}. *)

val emit_source : ?dump_arrays:bool -> string -> (string, [ `Failure of Driver.failure | `Unsupported of unsupported ]) result
(** Convenience: parse + analyse + emit from source text. *)

val pp_unsupported : Format.formatter -> unsupported -> unit
