type token =
  | Ident of string
  | Int of int
  | Float of float
  | Lparen
  | Rparen
  | Colon
  | Comma
  | Equals
  | Plus
  | Minus
  | Star
  | Slash
  | Newline
  | Eof
  | Kw_real
  | Kw_template
  | Kw_align
  | Kw_with
  | Kw_distribute
  | Kw_onto
  | Kw_block
  | Kw_cyclic
  | Kw_print
  | Kw_sum
  | Kw_forall
  | Kw_do
  | Kw_redistribute

type located = { token : token; pos : Ast.position }

exception Lex_error of string * Ast.position

let keyword_of = function
  | "REAL" -> Some Kw_real
  | "TEMPLATE" -> Some Kw_template
  | "ALIGN" -> Some Kw_align
  | "WITH" -> Some Kw_with
  | "DISTRIBUTE" -> Some Kw_distribute
  | "ONTO" -> Some Kw_onto
  | "BLOCK" -> Some Kw_block
  | "CYCLIC" -> Some Kw_cyclic
  | "PRINT" -> Some Kw_print
  | "SUM" -> Some Kw_sum
  | "FORALL" -> Some Kw_forall
  | "DO" -> Some Kw_do
  | "REDISTRIBUTE" -> Some Kw_redistribute
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let out = ref [] in
  let pos () = { Ast.line = !line; column = !col } in
  let advance () =
    if !i < n && input.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let push token p = out := { token; pos = p } :: !out in
  let last_was_newline () =
    match !out with
    | { token = Newline; _ } :: _ | [] -> true
    | _ -> false
  in
  while !i < n do
    let c = input.[!i] in
    let p = pos () in
    if c = '!' then begin
      (* "!HPF$" is a directive sentinel, not a comment: skip the
         sentinel and lex the rest of the line as statement tokens. *)
      let is_hpf_sentinel =
        !i + 4 < n
        && String.uppercase_ascii (String.sub input (!i + 1) 4) = "HPF$"
      in
      if is_hpf_sentinel then
        for _ = 1 to 5 do
          advance ()
        done
      else
        while !i < n && input.[!i] <> '\n' do
          advance ()
        done
    end
    else if c = '\n' then begin
      if not (last_was_newline ()) then push Newline p;
      advance ()
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance ()
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        advance ()
      done;
      let word = String.uppercase_ascii (String.sub input start (!i - start)) in
      match keyword_of word with
      | Some kw -> push kw p
      | None -> push (Ident word) p
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        advance ()
      done;
      let is_float =
        !i < n && input.[!i] = '.'
        && not (!i + 1 < n && input.[!i + 1] = '.') (* future-proof ranges *)
      in
      if is_float then begin
        advance ();
        while !i < n && is_digit input.[!i] do
          advance ()
        done;
        if !i < n && (input.[!i] = 'e' || input.[!i] = 'E') then begin
          advance ();
          if !i < n && (input.[!i] = '+' || input.[!i] = '-') then advance ();
          while !i < n && is_digit input.[!i] do
            advance ()
          done
        end;
        let text = String.sub input start (!i - start) in
        match float_of_string_opt text with
        | Some f -> push (Float f) p
        | None -> raise (Lex_error (Printf.sprintf "malformed number %S" text, p))
      end
      else begin
        let text = String.sub input start (!i - start) in
        match int_of_string_opt text with
        | Some v -> push (Int v) p
        | None -> raise (Lex_error (Printf.sprintf "malformed integer %S" text, p))
      end
    end
    else begin
      let simple t =
        push t p;
        advance ()
      in
      match c with
      | '(' -> simple Lparen
      | ')' -> simple Rparen
      | ':' -> simple Colon
      | ',' -> simple Comma
      | '=' -> simple Equals
      | '+' -> simple Plus
      | '-' -> simple Minus
      | '*' -> simple Star
      | '/' -> simple Slash
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, p))
    end
  done;
  (if not (last_was_newline ()) then push Newline (pos ()));
  push Eof (pos ());
  List.rev !out

let token_to_string = function
  | Ident s -> s
  | Int v -> string_of_int v
  | Float v -> Printf.sprintf "%g" v
  | Lparen -> "("
  | Rparen -> ")"
  | Colon -> ":"
  | Comma -> ","
  | Equals -> "="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Newline -> "<newline>"
  | Eof -> "<eof>"
  | Kw_real -> "real"
  | Kw_template -> "template"
  | Kw_align -> "align"
  | Kw_with -> "with"
  | Kw_distribute -> "distribute"
  | Kw_onto -> "onto"
  | Kw_block -> "block"
  | Kw_cyclic -> "cyclic"
  | Kw_print -> "print"
  | Kw_sum -> "sum"
  | Kw_forall -> "forall"
  | Kw_do -> "do"
  | Kw_redistribute -> "redistribute"
