open Lexer

exception Parse_error of string * Ast.position

type state = { mutable tokens : located list }

let peek st =
  match st.tokens with
  | [] -> { token = Eof; pos = { Ast.line = 0; column = 0 } }
  | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let next st =
  let t = peek st in
  advance st;
  t

let fail st msg =
  let t = peek st in
  raise
    (Parse_error
       (Printf.sprintf "%s (found %s)" msg (token_to_string t.token), t.pos))

let expect st want msg =
  let t = next st in
  if t.token <> want then
    raise
      (Parse_error
         (Printf.sprintf "%s: expected %s, found %s" msg
            (token_to_string want) (token_to_string t.token), t.pos))

let expect_ident st msg =
  match next st with
  | { token = Ident name; _ } -> name
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "%s: expected identifier, found %s" msg
              (token_to_string t.token), t.pos))

let expect_int st msg =
  match next st with
  | { token = Int v; _ } -> v
  | { token = Minus; _ } -> begin
      match next st with
      | { token = Int v; _ } -> -v
      | t ->
          raise
            (Parse_error
               (Printf.sprintf "%s: expected integer after '-'" msg, t.pos))
    end
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "%s: expected integer, found %s" msg
              (token_to_string t.token), t.pos))

let parse_triplet_body st =
  let lo = expect_int st "section lower bound" in
  expect st Colon "section";
  let hi = expect_int st "section upper bound" in
  let stride =
    if (peek st).token = Colon then begin
      advance st;
      expect_int st "section stride"
    end
    else 1
  in
  { Ast.t_lo = lo; t_hi = hi; t_stride = stride }

let rec comma_separated st parse_item =
  let item = parse_item st in
  if (peek st).token = Comma then begin
    advance st;
    item :: comma_separated st parse_item
  end
  else [ item ]

let parse_ref st =
  let pos = (peek st).pos in
  let array = expect_ident st "array reference" in
  expect st Lparen "array reference";
  let triplets = comma_separated st parse_triplet_body in
  expect st Rparen "array reference";
  { Ast.array; triplets; ref_pos = pos }

(* affine ::= [INT "*"] IDENT [("+"|"-") INT] | INT *)
let parse_affine st =
  match (peek st).token with
  | Int _ | Minus -> begin
      let v = expect_int st "alignment" in
      match (peek st).token with
      | Star ->
          advance st;
          let _ = expect_ident st "alignment index variable" in
          let offset =
            match (peek st).token with
            | Plus ->
                advance st;
                expect_int st "alignment offset"
            | Minus ->
                advance st;
                -expect_int st "alignment offset"
            | _ -> 0
          in
          if v = 0 then fail st "alignment scale must be non-zero";
          { Ast.scale = v; offset }
      | _ ->
          (* A constant alignment collapses the array onto one cell — not
             a meaningful mapping for a whole array. *)
          fail st "constant alignment is not supported"
    end
  | Ident _ ->
      let _ = expect_ident st "alignment index variable" in
      let offset =
        match (peek st).token with
        | Plus ->
            advance st;
            expect_int st "alignment offset"
        | Minus ->
            advance st;
            -expect_int st "alignment offset"
        | _ -> 0
      in
      { Ast.scale = 1; offset }
  | _ -> fail st "malformed alignment expression"

let parse_format st =
  match next st with
  | { token = Kw_block; _ } -> Ast.Block
  | { token = Kw_cyclic; _ } ->
      if (peek st).token = Lparen then begin
        advance st;
        let k = expect_int st "cyclic block size" in
        expect st Rparen "cyclic block size";
        Ast.Cyclic_k k
      end
      else Ast.Cyclic
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected distribution format, found %s"
              (token_to_string t.token), t.pos))

let float_like st msg =
  match next st with
  | { token = Float v; _ } -> v
  | { token = Int v; _ } -> float_of_int v
  | { token = Minus; _ } -> begin
      match next st with
      | { token = Float v; _ } -> -.v
      | { token = Int v; _ } -> float_of_int (-v)
      | t ->
          raise
            (Parse_error (Printf.sprintf "%s: expected number after '-'" msg, t.pos))
    end
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "%s: expected number, found %s" msg
              (token_to_string t.token), t.pos))

let parse_binop st =
  match next st with
  | { token = Plus; _ } -> Ast.Add
  | { token = Minus; _ } -> Ast.Sub
  | { token = Star; _ } -> Ast.Mul
  | { token = Slash; _ } -> Ast.Div
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected operator, found %s"
              (token_to_string t.token), t.pos))

let parse_expr st =
  match (peek st).token with
  | Ident _ -> begin
      let r = parse_ref st in
      match (peek st).token with
      | Newline | Eof -> Ast.Ref r
      | Plus | Minus | Star | Slash -> begin
          let op = parse_binop st in
          match (peek st).token with
          | Ident _ -> Ast.Ref_op_ref (r, op, parse_ref st)
          | _ -> Ast.Ref_op_const (r, op, float_like st "expression")
        end
      | _ -> fail st "malformed expression"
    end
  | _ -> begin
      let v = float_like st "expression" in
      match (peek st).token with
      | Newline | Eof -> Ast.Const v
      | Plus | Minus | Star | Slash ->
          let op = parse_binop st in
          Ast.Const_op_ref (v, op, parse_ref st)
      | _ -> fail st "malformed expression"
    end

(* Subscript expression in a forall body: an affine form in the loop
   variable [var]; a bare integer is the constant form (scale 0), whose
   legality the analyser decides. *)
let parse_forall_sub st ~var =
  let check_var st =
    let t = peek st in
    let name = expect_ident st "forall subscript" in
    if name <> var then
      raise
        (Parse_error
           (Printf.sprintf "forall subscript uses %s, loop variable is %s"
              name var, t.pos))
  in
  let tail_offset () =
    match (peek st).token with
    | Plus ->
        advance st;
        expect_int st "forall subscript offset"
    | Minus ->
        advance st;
        -expect_int st "forall subscript offset"
    | _ -> 0
  in
  match (peek st).token with
  | Int _ | Minus -> begin
      let v = expect_int st "forall subscript" in
      match (peek st).token with
      | Star ->
          (* scale*var [+- offset] *)
          advance st;
          check_var st;
          { Ast.scale = v; offset = tail_offset () }
      | Plus | Minus -> begin
          (* offset +- [scale*]var *)
          let sign = if (peek st).token = Plus then 1 else -1 in
          advance st;
          match (peek st).token with
          | Int _ ->
              let m = expect_int st "forall subscript" in
              expect st Star "forall subscript";
              check_var st;
              { Ast.scale = sign * m; offset = v }
          | Ident _ ->
              check_var st;
              { Ast.scale = sign; offset = v }
          | _ -> fail st "malformed forall subscript"
        end
      | _ -> { Ast.scale = 0; offset = v }
    end
  | Ident _ ->
      check_var st;
      { Ast.scale = 1; offset = tail_offset () }
  | _ -> fail st "malformed forall subscript"

let parse_forall_ref st ~var =
  let pos = (peek st).pos in
  let f_array = expect_ident st "forall reference" in
  expect st Lparen "forall reference";
  let f_sub = parse_forall_sub st ~var in
  expect st Rparen "forall reference";
  { Ast.f_array; f_sub; f_pos = pos }

let parse_forall_expr st ~var =
  match (peek st).token with
  | Ident _ -> begin
      let r = parse_forall_ref st ~var in
      match (peek st).token with
      | Newline | Eof -> Ast.F_ref r
      | Plus | Minus | Star | Slash -> begin
          let op = parse_binop st in
          match (peek st).token with
          | Ident _ -> Ast.F_ref_op_ref (r, op, parse_forall_ref st ~var)
          | _ -> Ast.F_ref_op_const (r, op, float_like st "forall expression")
        end
      | _ -> fail st "malformed forall expression"
    end
  | _ -> begin
      let v = float_like st "forall expression" in
      match (peek st).token with
      | Newline | Eof -> Ast.F_const v
      | Plus | Minus | Star | Slash ->
          let op = parse_binop st in
          Ast.F_const_op_ref (v, op, parse_forall_ref st ~var)
      | _ -> fail st "malformed forall expression"
    end

(* Shared tail of DISTRIBUTE / REDISTRIBUTE: the format list may also
   appear without parentheses when it is a single format
   ([redistribute A cyclic(2) onto 8]). *)
let parse_distribution st ~what =
  let name = expect_ident st what in
  let formats =
    if (peek st).token = Lparen then begin
      advance st;
      let fs = comma_separated st parse_format in
      expect st Rparen what;
      fs
    end
    else [ parse_format st ]
  in
  expect st Kw_onto what;
  let onto =
    if (peek st).token = Lparen then begin
      advance st;
      let shape =
        comma_separated st (fun st -> expect_int st "processor count")
      in
      expect st Rparen "processor grid";
      shape
    end
    else [ expect_int st "processor count" ]
  in
  (name, formats, onto)

let parse_statement st =
  let { token; pos } = peek st in
  match token with
  | Kw_real ->
      advance st;
      let name = expect_ident st "declaration" in
      expect st Lparen "declaration";
      let sizes =
        comma_separated st (fun st -> expect_int st "declaration size")
      in
      expect st Rparen "declaration";
      Ast.Decl { name; sizes; pos }
  | Kw_template ->
      advance st;
      let name = expect_ident st "template" in
      expect st Lparen "template";
      let size = expect_int st "template size" in
      expect st Rparen "template";
      Ast.Template { name; size; pos }
  | Kw_align ->
      advance st;
      let array = expect_ident st "align" in
      expect st Lparen "align";
      let _ = expect_ident st "align index variable" in
      expect st Rparen "align";
      expect st Kw_with "align";
      let target = expect_ident st "align target" in
      expect st Lparen "align target";
      let map = parse_affine st in
      expect st Rparen "align target";
      Ast.Align { array; target; map; pos }
  | Kw_distribute ->
      advance st;
      let name, formats, onto = parse_distribution st ~what:"distribute" in
      Ast.Distribute { name; formats; onto; pos }
  | Kw_redistribute ->
      advance st;
      let name, formats, onto = parse_distribution st ~what:"redistribute" in
      Ast.Redistribute { name; formats; onto; pos }
  | Kw_forall ->
      advance st;
      let var = expect_ident st "forall" in
      expect st Equals "forall";
      let range = parse_triplet_body st in
      expect st Kw_do "forall";
      let lhs = parse_forall_ref st ~var in
      expect st Equals "forall assignment";
      let rhs = parse_forall_expr st ~var in
      Ast.Forall { var; range; lhs; rhs; pos }
  | Kw_print ->
      advance st;
      if (peek st).token = Kw_sum then begin
        advance st;
        Ast.Print_sum { arg = parse_ref st; pos }
      end
      else Ast.Print { arg = parse_ref st; pos }
  | Ident _ ->
      let lhs = parse_ref st in
      expect st Equals "assignment";
      let rhs = parse_expr st in
      Ast.Assign { lhs; rhs; pos }
  | _ -> fail st "expected a statement"

let parse input =
  let st = { tokens = Lexer.tokenize input } in
  let rec statements acc =
    match (peek st).token with
    | Eof -> List.rev acc
    | Newline ->
        advance st;
        statements acc
    | _ ->
        let stmt = parse_statement st in
        (match (peek st).token with
        | Newline | Eof -> ()
        | _ -> fail st "trailing tokens after statement");
        statements (stmt :: acc)
  in
  statements []

let parse_triplet text =
  let st = { tokens = Lexer.tokenize text } in
  let t = parse_triplet_body st in
  (match (peek st).token with
  | Newline | Eof -> ()
  | _ -> fail st "trailing tokens after triplet");
  t
