open Lams_dist

type t = { arrays : (string * float array) list; outputs : string list }

let apply_op op a b =
  match op with
  | Ast.Add -> a +. b
  | Ast.Sub -> a -. b
  | Ast.Mul -> a *. b
  | Ast.Div -> a /. b

(* Row-major linearisation of a multi-index over the array's extents. *)
let linear sizes idx =
  let flat = ref 0 in
  Array.iteri (fun d i -> flat := (!flat * sizes.(d)) + i) idx;
  !flat

(* Global flat position of traversal element j of a section reference. *)
let element_at (r : Sema.ref_info) j =
  let shape = Sema.ref_shape r in
  let sizes = r.Sema.info.Sema.sizes in
  let rank = Array.length shape in
  let idx = Array.make rank 0 in
  let rest = ref j in
  for d = rank - 1 downto 0 do
    let jd = !rest mod shape.(d) in
    rest := !rest / shape.(d);
    idx.(d) <- Section.nth r.Sema.sections.(d) jd
  done;
  linear sizes idx

let fetch lookup (r : Sema.ref_info) =
  let arr = lookup r.Sema.info.Sema.name in
  Array.init (Sema.ref_count r) (fun j -> arr.(element_at r j))

let run (checked : Sema.checked) =
  let arrays =
    List.map
      (fun (info : Sema.array_info) ->
        (info.Sema.name, Array.make (Array.fold_left ( * ) 1 info.Sema.sizes) 0.))
      checked.Sema.arrays
  in
  let lookup name = List.assoc name arrays in
  let outputs = ref [] in
  List.iter
    (fun action ->
      match action with
      | Sema.Redistribute _ ->
          (* Contents are mapping-independent in the dense model. *)
          ()
      | Sema.Print r ->
          let values = fetch lookup r in
          outputs :=
            String.concat " "
              (Array.to_list (Array.map (Printf.sprintf "%g") values))
            :: !outputs
      | Sema.Print_sum r ->
          let values = fetch lookup r in
          outputs :=
            Printf.sprintf "%g" (Array.fold_left ( +. ) 0. values) :: !outputs
      | Sema.Assign { lhs; rhs } ->
          let dst = lookup lhs.Sema.info.Sema.name in
          let count = Sema.ref_count lhs in
          let values =
            match rhs with
            | Sema.Const v -> Array.make count v
            | Sema.Copy r -> fetch lookup r
            | Sema.Ref_op_const (r, op, v) ->
                Array.map (fun x -> apply_op op x v) (fetch lookup r)
            | Sema.Const_op_ref (v, op, r) ->
                Array.map (fun x -> apply_op op v x) (fetch lookup r)
            | Sema.Ref_op_ref (r1, op, r2) ->
                let a = fetch lookup r1 and b = fetch lookup r2 in
                Array.init count (fun j -> apply_op op a.(j) b.(j))
          in
          for j = 0 to count - 1 do
            dst.(element_at lhs j) <- values.(j)
          done)
    checked.Sema.actions;
  { arrays; outputs = List.rev !outputs }

let find t name =
  match List.assoc_opt name t.arrays with
  | Some a -> a
  | None -> raise Not_found

let read t name flat =
  let a = find t name in
  if flat < 0 || flat >= Array.length a then
    invalid_arg "Reference.read: index out of range";
  a.(flat)

let gather t name = Array.copy (find t name)
