(** Recursive-descent parser for the mini-HPF language.

    Grammar (one statement per line):
    {[
      decl       ::= "real" IDENT "(" INT ")"
      template   ::= "template" IDENT "(" INT ")"
      align      ::= "align" IDENT "(" IDENT ")" "with" IDENT "(" affine ")"
      affine     ::= [INT "*"] IDENT [("+" | "-") INT] | INT
      distribute ::= "distribute" IDENT "(" format ")" "onto" INT
      format     ::= "block" | "cyclic" [ "(" INT ")" ]
      assign     ::= ref "=" expr
      print      ::= "print" ["sum"] ref
      ref        ::= IDENT "(" triplet ")"
      triplet    ::= int ":" int [":" int]          (ints may be negative)
      expr       ::= FLOATLIKE | ref
                   | ref op FLOATLIKE | FLOATLIKE op ref | ref op ref
      op         ::= "+" | "-" | "*" | "/"
    ]} *)

exception Parse_error of string * Ast.position

val parse : string -> Ast.program
(** @raise Parse_error / [Lexer.Lex_error] on malformed input. *)

val parse_triplet : string -> Ast.triplet
(** Parse just an ["l:u:s"] triplet (CLI convenience).
    @raise Parse_error on malformed input. *)
