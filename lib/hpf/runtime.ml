open Lams_dist
open Lams_sim
open Lams_multidim

type value_array =
  | Direct of Darray.t
  | Packed of { desc : Aligned.t; stores : Local_store.t array; size : int }
  | Md of { md : Md_array.t; stores : Local_store.t array; sizes : int array }

type t = {
  arrays : (string * value_array) list;
  outputs : string list;
  network : Network.t option;
}

let make_array (info : Sema.array_info) =
  match info.Sema.mapping with
  | Sema.Grid { dists; grid } when Array.length info.Sema.sizes = 1 ->
      Direct
        (Darray.create ~name:info.Sema.name ~n:info.Sema.sizes.(0)
           ~p:grid.(0) ~dist:dists.(0))
  | Sema.Grid { dists; grid } ->
      let pgrid = Proc_grid.create grid in
      let md = Md_array.create ~dims:info.Sema.sizes ~dists ~grid:pgrid in
      let stores =
        Array.init (Proc_grid.size pgrid) (fun r ->
            let coords = Proc_grid.coords_of_rank pgrid r in
            Local_store.create (Md_array.local_size md ~coords))
      in
      Md { md; stores; sizes = info.Sema.sizes }
  | Sema.Aligned_1d { p; dist; align; template_size } ->
      if Alignment.is_identity align then
        Direct
          (Darray.create ~name:info.Sema.name ~n:info.Sema.sizes.(0) ~p ~dist)
      else begin
        let k = Distribution.block_size dist ~n:template_size ~p in
        let desc =
          Aligned.create ~p ~k ~align ~array_size:info.Sema.sizes.(0)
        in
        let stores =
          Array.init p (fun proc ->
              Local_store.create (Aligned.packed_count desc ~m:proc))
        in
        Packed { desc; stores; size = info.Sema.sizes.(0) }
      end

let sizes_of = function
  | Direct d -> [| Darray.size d |]
  | Packed { size; _ } -> [| size |]
  | Md { sizes; _ } -> sizes

let check_idx arr idx =
  let sizes = sizes_of arr in
  if Array.length idx <> Array.length sizes then
    invalid_arg "Runtime: rank mismatch";
  Array.iteri
    (fun d i ->
      if i < 0 || i >= sizes.(d) then invalid_arg "Runtime: index out of range")
    idx

let get arr idx =
  check_idx arr idx;
  match arr with
  | Direct d -> Darray.get d idx.(0)
  | Packed { desc; stores; _ } ->
      let m = Aligned.owner desc idx.(0) in
      let addr = Option.get (Aligned.packed_address desc ~m idx.(0)) in
      Local_store.get stores.(m) addr
  | Md { md; stores; _ } ->
      let coords = Md_array.owner_coords md idx in
      let r = Proc_grid.rank_of_coords md.Md_array.grid coords in
      Local_store.get stores.(r) (Md_array.local_address md ~coords idx)

let set arr idx v =
  check_idx arr idx;
  match arr with
  | Direct d -> Darray.set d idx.(0) v
  | Packed { desc; stores; _ } ->
      let m = Aligned.owner desc idx.(0) in
      let addr = Option.get (Aligned.packed_address desc ~m idx.(0)) in
      Local_store.set stores.(m) addr v
  | Md { md; stores; _ } ->
      let coords = Md_array.owner_coords md idx in
      let r = Proc_grid.rank_of_coords md.Md_array.grid coords in
      Local_store.set stores.(r) (Md_array.local_address md ~coords idx) v

let apply_op op a b =
  match op with
  | Ast.Add -> a +. b
  | Ast.Sub -> a -. b
  | Ast.Mul -> a *. b
  | Ast.Div -> a /. b

(* Multi-index of flat traversal position j (row-major, last dim fastest). *)
let multi_index (r : Sema.ref_info) j =
  let shape = Sema.ref_shape r in
  let rank = Array.length shape in
  let idx = Array.make rank 0 in
  let rest = ref j in
  for d = rank - 1 downto 0 do
    let jd = !rest mod shape.(d) in
    rest := !rest / shape.(d);
    idx.(d) <- Section.nth r.Sema.sections.(d) jd
  done;
  idx

(* Fetch a section into a dense buffer, in traversal order. *)
let fetch lookup (r : Sema.ref_info) =
  let arr = lookup r.Sema.info.Sema.name in
  Array.init (Sema.ref_count r) (fun j -> get arr (multi_index r j))

let store lookup (r : Sema.ref_info) values =
  let arr = lookup r.Sema.info.Sema.name in
  let n = Sema.ref_count r in
  assert (Array.length values = n);
  for j = 0 to n - 1 do
    set arr (multi_index r j) values.(j)
  done

let eval_rhs (rhs : Sema.rhs) lookup count =
  match rhs with
  | Sema.Const v -> Array.make count v
  | Sema.Copy r -> fetch lookup r
  | Sema.Ref_op_const (r, op, v) ->
      Array.map (fun x -> apply_op op x v) (fetch lookup r)
  | Sema.Const_op_ref (v, op, r) ->
      Array.map (fun x -> apply_op op v x) (fetch lookup r)
  | Sema.Ref_op_ref (r1, op, r2) ->
      let a = fetch lookup r1 and b = fetch lookup r2 in
      Array.init count (fun j -> apply_op op a.(j) b.(j))

let format_values values =
  String.concat " "
    (Array.to_list (Array.map (fun v -> Printf.sprintf "%g" v) values))

(* Owner-computes constant fill of a multidimensional section: every grid
   node traverses its share with the per-dimension 1-D machinery. *)
let md_fill md stores sections v =
  let grid = md.Md_array.grid in
  let normalized = Array.map Section.normalize sections in
  for r = 0 to Proc_grid.size grid - 1 do
    let coords = Proc_grid.coords_of_rank grid r in
    let data = Local_store.data stores.(r) in
    Md_array.traverse_owned md ~sections:normalized ~coords
      ~f:(fun ~global:_ ~local -> Lams_util.Fbuf.set data local v)
  done

let c_statements =
  Lams_obs.Obs.counter "hpf.statements" ~units:"statements"
    ~doc:"program statements executed by the simulated runtime"

let c_fills =
  Lams_obs.Obs.counter "hpf.fills" ~units:"statements"
    ~doc:"owner-computes constant fills (node-code kernels)"

let c_copies =
  Lams_obs.Obs.counter "hpf.copies" ~units:"statements"
    ~doc:"schedule-driven section copies (data exchange)"

let c_redistributes =
  Lams_obs.Obs.counter "hpf.redistributes" ~units:"statements"
    ~doc:"REDISTRIBUTE directives executed (whole-array remappings)"

let run ?(shape = Lams_codegen.Shapes.Shape_d) ?(parallel = false)
    (checked : Sema.checked) =
  (* REDISTRIBUTE rebinds a name to a freshly-mapped array mid-program,
     so bindings live in a table; [names] keeps declaration order for
     the final listing. *)
  let bindings : (string, value_array) Hashtbl.t = Hashtbl.create 16 in
  let names =
    List.map
      (fun (info : Sema.array_info) ->
        Hashtbl.replace bindings info.Sema.name (make_array info);
        info.Sema.name)
      checked.Sema.arrays
  in
  let lookup name = Hashtbl.find bindings name in
  let outputs = ref [] in
  let network = ref None in
  let reusable_network needed =
    match !network with
    | Some n when Network.procs n >= needed -> Some n
    | Some _ | None -> None
  in
  List.iter
    (fun action ->
      Lams_obs.Obs.incr c_statements;
      match action with
      | Sema.Print r -> outputs := format_values (fetch lookup r) :: !outputs
      | Sema.Print_sum r -> begin
          let arr = lookup r.Sema.info.Sema.name in
          let total =
            match arr with
            | Direct d -> Section_ops.sum d r.Sema.sections.(0)
            | Packed _ | Md _ ->
                Array.fold_left ( +. ) 0. (fetch lookup r)
          in
          outputs := Printf.sprintf "%g" total :: !outputs
        end
      | Sema.Redistribute { from_; to_ } -> begin
          match lookup from_.Sema.name with
          | Direct s ->
              Lams_obs.Obs.incr c_redistributes;
              let dst =
                match make_array to_ with
                | Direct d -> d
                | Packed _ | Md _ -> assert false (* sema: rank-1 Grid *)
              in
              let whole = Section.whole ~n:(Darray.size s) in
              let needed = max (Darray.procs s) (Darray.procs dst) in
              let net =
                Lams_sched.Executor.redistribute
                  ?net:(reusable_network needed) ~parallel ~src:s
                  ~src_section:whole ~dst ~dst_section:whole ()
              in
              network := Some net;
              Hashtbl.replace bindings from_.Sema.name (Direct dst)
          | Packed _ | Md _ -> assert false (* sema: rank-1 Grid *)
        end
      | Sema.Assign { lhs; rhs } -> begin
          let dst = lookup lhs.Sema.info.Sema.name in
          match (dst, rhs) with
          | Direct d, Sema.Const v ->
              (* The paper's measured kernel: node code over local memory. *)
              Lams_obs.Obs.incr c_fills;
              Section_ops.fill ~shape ~parallel d lhs.Sema.sections.(0) v
          | Md { md; stores; _ }, Sema.Const v ->
              Lams_obs.Obs.incr c_fills;
              md_fill md stores lhs.Sema.sections v
          | Direct d, Sema.Copy src_ref
            when (match lookup src_ref.Sema.info.Sema.name with
                 | Direct _ -> true
                 | Packed _ | Md _ -> false) -> begin
              (* Schedule-driven two-phase exchange. *)
              match lookup src_ref.Sema.info.Sema.name with
              | Direct s ->
                  Lams_obs.Obs.incr c_copies;
                  let needed = max (Darray.procs s) (Darray.procs d) in
                  let net =
                    Lams_sched.Executor.redistribute
                      ?net:(reusable_network needed) ~parallel ~src:s
                      ~src_section:src_ref.Sema.sections.(0) ~dst:d
                      ~dst_section:lhs.Sema.sections.(0) ()
                  in
                  network := Some net
              | Packed _ | Md _ -> assert false
            end
          | Md { md = dmd; stores = dstores; _ }, Sema.Copy src_ref
            when (match lookup src_ref.Sema.info.Sema.name with
                 | Md _ -> true
                 | Direct _ | Packed _ -> false) -> begin
              (* Multidimensional two-phase exchange driven by the
                 factorised (per-dimension) communication schedule. *)
              match lookup src_ref.Sema.info.Sema.name with
              | Md { md = smd; stores = sstores; _ } ->
                  Lams_obs.Obs.incr c_copies;
                  let sched =
                    Md_comm.build ~src:smd ~src_sections:src_ref.Sema.sections
                      ~dst:dmd ~dst_sections:lhs.Sema.sections
                  in
                  let src_grid = smd.Md_array.grid
                  and dst_grid = dmd.Md_array.grid in
                  let needed =
                    max (Proc_grid.size src_grid) (Proc_grid.size dst_grid)
                  in
                  let net =
                    match !network with
                    | Some n when Network.procs n >= needed -> n
                    | Some _ | None -> Network.create ~p:needed
                  in
                  let rank = Array.length smd.Md_array.dims in
                  let src_idx = Array.make rank 0
                  and dst_idx = Array.make rank 0 in
                  (* Phase 1: senders gather and post one message per
                     transfer — rank-major over the pre-indexed groups,
                     so each sender touches only its own transfers (and
                     its local store is fetched once per rank, not once
                     per node pair). *)
                  Array.iteri
                    (fun src_rank transfers ->
                      match transfers with
                      | [] -> ()
                      | _ :: _ ->
                          let sdata = Local_store.data sstores.(src_rank) in
                          List.iter
                            (fun (tr : Md_comm.transfer) ->
                              let dst_rank =
                                Proc_grid.rank_of_coords dst_grid
                                  tr.Md_comm.dst_coords
                              in
                              let n = tr.Md_comm.elements in
                              let addresses = Array.make n 0
                              and payload = Lams_util.Fbuf.uninit n in
                              let at = ref 0 in
                              Md_comm.iter_positions tr ~f:(fun pos ->
                                  for d = 0 to rank - 1 do
                                    src_idx.(d) <-
                                      Section.nth src_ref.Sema.sections.(d)
                                        pos.(d);
                                    dst_idx.(d) <-
                                      Section.nth lhs.Sema.sections.(d)
                                        pos.(d)
                                  done;
                                  addresses.(!at) <-
                                    Md_array.local_address dmd
                                      ~coords:tr.Md_comm.dst_coords dst_idx;
                                  Lams_util.Fbuf.unsafe_set payload !at
                                    (Lams_util.Fbuf.get sdata
                                       (Md_array.local_address smd
                                          ~coords:tr.Md_comm.src_coords
                                          src_idx));
                                  incr at);
                              Network.send net ~src:src_rank ~dst:dst_rank
                                ~tag:2 ~addresses ~payload)
                            transfers)
                    (Md_comm.by_src_rank sched ~grid:src_grid);
                  (* Phase 2: receivers drain. *)
                  for r = 0 to Proc_grid.size dst_grid - 1 do
                    let ddata = Local_store.data dstores.(r) in
                    List.iter
                      (fun (msg : Network.message) ->
                        Array.iteri
                          (fun idx addr ->
                            Lams_util.Fbuf.set ddata addr
                              (Lams_util.Fbuf.unsafe_get msg.Network.payload
                                 idx))
                          msg.Network.addresses)
                      (Network.receive_all net ~dst:r)
                  done;
                  network := Some net
              | Direct _ | Packed _ -> assert false
            end
          | _, _ ->
              let count = Sema.ref_count lhs in
              store lookup lhs (eval_rhs rhs lookup count)
        end)
    checked.Sema.actions;
  { arrays = List.map (fun n -> (n, Hashtbl.find bindings n)) names;
    outputs = List.rev !outputs;
    network = !network }

let find t name =
  match List.assoc_opt name t.arrays with
  | Some a -> a
  | None -> raise Not_found

let read t name idx = get (find t name) idx

let gather t name =
  let arr = find t name in
  let sizes = sizes_of arr in
  let rank = Array.length sizes in
  let total = Array.fold_left ( * ) 1 sizes in
  Array.init total (fun flat ->
      let idx = Array.make rank 0 in
      let rest = ref flat in
      for d = rank - 1 downto 0 do
        idx.(d) <- !rest mod sizes.(d);
        rest := !rest / sizes.(d)
      done;
      get arr idx)
