type outcome = {
  checked : Sema.checked;
  runtime : Runtime.t;
  outputs : string list;
}

type failure =
  | Syntax of string * Ast.position
  | Semantic of Sema.error list

let c_compiles =
  Lams_obs.Obs.counter "hpf.compiles" ~units:"programs"
    ~doc:"mini-HPF sources compiled (parse + semantic analysis)"

let c_crosschecks =
  Lams_obs.Obs.counter "hpf.crosschecks" ~units:"programs"
    ~doc:"runs diffed against the sequential reference"

let sp_run =
  Lams_obs.Obs.span "hpf.run_us"
    ~doc:"wall-clock per simulated program execution"

let compile source =
  Lams_obs.Obs.incr c_compiles;
  match Parser.parse source with
  | exception Lexer.Lex_error (msg, pos) -> Error (Syntax (msg, pos))
  | exception Parser.Parse_error (msg, pos) -> Error (Syntax (msg, pos))
  | program -> begin
      match Sema.analyze program with
      | Ok checked -> Ok checked
      | Error errs -> Error (Semantic errs)
    end

let compile_and_run ?shape ?parallel source =
  match compile source with
  | Error f -> Error f
  | Ok checked ->
      let runtime =
        Lams_obs.Obs.time sp_run (fun () -> Runtime.run ?shape ?parallel checked)
      in
      Ok { checked; runtime; outputs = runtime.Runtime.outputs }

type divergence =
  | Output_differs of { index : int; simulated : string; reference : string }
  | Contents_differ of {
      array : string;
      index : int;
      simulated : float;
      reference : float;
    }

let first_divergence (checked : Sema.checked) (runtime : Runtime.t)
    (reference : Reference.t) =
  let rec outputs i = function
    | [], [] -> None
    | s :: ss, r :: rs ->
        if s = r then outputs (i + 1) (ss, rs)
        else Some (Output_differs { index = i; simulated = s; reference = r })
    | s :: _, [] -> Some (Output_differs { index = i; simulated = s; reference = "<missing>" })
    | [], r :: _ -> Some (Output_differs { index = i; simulated = "<missing>"; reference = r })
  in
  match outputs 0 (runtime.Runtime.outputs, reference.Reference.outputs) with
  | Some d -> Some d
  | None ->
      List.find_map
        (fun (info : Sema.array_info) ->
          let name = info.Sema.name in
          let sim = Runtime.gather runtime name
          and want = Reference.gather reference name in
          let rec scan g =
            if g = Array.length want then None
            else if sim.(g) <> want.(g) then
              Some
                (Contents_differ
                   { array = name; index = g; simulated = sim.(g); reference = want.(g) })
            else scan (g + 1)
          in
          scan 0)
        checked.Sema.arrays

let crosscheck ?shape ?parallel source =
  match compile source with
  | Error f -> Error (`Failure f)
  | Ok checked -> begin
      Lams_obs.Obs.incr c_crosschecks;
      let runtime =
        Lams_obs.Obs.time sp_run (fun () -> Runtime.run ?shape ?parallel checked)
      in
      let reference = Reference.run checked in
      match first_divergence checked runtime reference with
      | Some d -> Error (`Diverged d)
      | None -> Ok { checked; runtime; outputs = runtime.Runtime.outputs }
    end

let pp_failure ppf = function
  | Syntax (msg, pos) ->
      Format.fprintf ppf "syntax error at line %d, col %d: %s" pos.Ast.line
        pos.Ast.column msg
  | Semantic errs ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list Sema.pp_error)
        errs

let pp_divergence ppf = function
  | Output_differs { index; simulated; reference } ->
      Format.fprintf ppf "output %d differs: simulated %S, reference %S" index
        simulated reference
  | Contents_differ { array; index; simulated; reference } ->
      Format.fprintf ppf "%s(%d) differs: simulated %g, reference %g" array
        index simulated reference
