(** Sequential reference executor: runs a checked program on plain global
    [float array]s with textbook semantics — no distributions, no node
    code, no network. The test suite requires {!Runtime.run} to produce
    byte-identical outputs and final array contents. *)

type t = {
  arrays : (string * float array) list;
  outputs : string list;
}

val run : Sema.checked -> t
val read : t -> string -> int -> float
(** @raise Not_found / Invalid_argument as in {!Runtime}. *)

val gather : t -> string -> float array
(** Copy of the final contents. @raise Not_found. *)
