(** Semantic analysis: name resolution, mapping resolution and shape
    checking for mini-HPF programs.

    A usable array must end up with exactly one {e mapping}: either a
    direct [DISTRIBUTE] (one format per dimension, onto a processor grid
    of the same rank), or — for rank-1 arrays — an [ALIGN] to a template
    that is itself distributed. All section references are bounds-,
    rank- and shape-checked. *)

type mapping =
  | Grid of {
      dists : Lams_dist.Distribution.t array;  (** one per dimension *)
      grid : int array;  (** processor-grid shape, same rank *)
    }
  | Aligned_1d of {
      p : int;
      dist : Lams_dist.Distribution.t;
      align : Lams_dist.Alignment.t;  (** non-identity possible *)
      template_size : int;
    }

type array_info = {
  name : string;
  sizes : int array;  (** global extent per dimension *)
  mapping : mapping;
}

type ref_info = {
  info : array_info;
  sections : Lams_dist.Section.t array;  (** one per dimension *)
}

type action =
  | Assign of { lhs : ref_info; rhs : rhs }
  | Redistribute of { from_ : array_info; to_ : array_info }
      (** remap [from_.name] from [from_.mapping] to [to_.mapping] at
          this point; mappings are flow-sensitive, so references after
          this action resolve against [to_]. Rank-1 [Grid] arrays
          only. *)
  | Print of ref_info
  | Print_sum of ref_info

and rhs =
  | Const of float
  | Copy of ref_info
  | Ref_op_const of ref_info * Ast.binop * float
  | Const_op_ref of float * Ast.binop * ref_info
  | Ref_op_ref of ref_info * Ast.binop * ref_info

type checked = {
  arrays : array_info list;
      (** declaration order, with each array's {e initial} mapping;
          later [Redistribute] actions carry the remappings *)
  actions : action list;  (** statement order *)
}

type error = { msg : string; pos : Ast.position }

val analyze : Ast.program -> (checked, error list) result
(** All detectable errors are collected (not just the first). *)

val rank : array_info -> int
val ref_shape : ref_info -> int array
(** Per-dimension element counts of a section reference. *)

val ref_count : ref_info -> int
(** Total element count (product of {!ref_shape}). *)

val pp_error : Format.formatter -> error -> unit
