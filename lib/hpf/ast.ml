type position = { line : int; column : int }
type triplet = { t_lo : int; t_hi : int; t_stride : int }

type section_ref = {
  array : string;
  triplets : triplet list;
  ref_pos : position;
}

type binop = Add | Sub | Mul | Div

type expr =
  | Const of float
  | Ref of section_ref
  | Ref_op_const of section_ref * binop * float
  | Const_op_ref of float * binop * section_ref
  | Ref_op_ref of section_ref * binop * section_ref

type dist_format = Block | Cyclic | Cyclic_k of int
type affine = { scale : int; offset : int }

type forall_ref = { f_array : string; f_sub : affine; f_pos : position }

type forall_expr =
  | F_const of float
  | F_ref of forall_ref
  | F_ref_op_const of forall_ref * binop * float
  | F_const_op_ref of float * binop * forall_ref
  | F_ref_op_ref of forall_ref * binop * forall_ref

type statement =
  | Decl of { name : string; sizes : int list; pos : position }
  | Template of { name : string; size : int; pos : position }
  | Align of { array : string; target : string; map : affine; pos : position }
  | Distribute of {
      name : string;
      formats : dist_format list;
      onto : int list;
      pos : position;
    }
  | Redistribute of {
      name : string;
      formats : dist_format list;
      onto : int list;
      pos : position;
    }
  | Assign of { lhs : section_ref; rhs : expr; pos : position }
  | Forall of {
      var : string;
      range : triplet;
      lhs : forall_ref;
      rhs : forall_expr;
      pos : position;
    }
  | Print of { arg : section_ref; pos : position }
  | Print_sum of { arg : section_ref; pos : position }

type program = statement list

let statement_pos = function
  | Decl { pos; _ } | Template { pos; _ } | Align { pos; _ }
  | Distribute { pos; _ } | Redistribute { pos; _ } | Assign { pos; _ }
  | Forall { pos; _ } | Print { pos; _ } | Print_sum { pos; _ } ->
      pos

let pp_triplet ppf { t_lo; t_hi; t_stride } =
  if t_stride = 1 then Format.fprintf ppf "%d:%d" t_lo t_hi
  else Format.fprintf ppf "%d:%d:%d" t_lo t_hi t_stride

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/")

let pp_list pp ppf xs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp ppf xs

let pp_ref ppf { array; triplets; _ } =
  Format.fprintf ppf "%s(%a)" array (pp_list pp_triplet) triplets

let pp_expr ppf = function
  | Const v -> Format.fprintf ppf "%g" v
  | Ref r -> pp_ref ppf r
  | Ref_op_const (r, op, v) ->
      Format.fprintf ppf "%a %a %g" pp_ref r pp_binop op v
  | Const_op_ref (v, op, r) ->
      Format.fprintf ppf "%g %a %a" v pp_binop op pp_ref r
  | Ref_op_ref (r1, op, r2) ->
      Format.fprintf ppf "%a %a %a" pp_ref r1 pp_binop op pp_ref r2

let pp_affine ppf { scale; offset } =
  if scale = 1 && offset = 0 then Format.pp_print_string ppf "i"
  else if offset = 0 then Format.fprintf ppf "%d*i" scale
  else if offset >= 0 then Format.fprintf ppf "%d*i+%d" scale offset
  else Format.fprintf ppf "%d*i%d" scale offset

let pp_format ppf = function
  | Block -> Format.pp_print_string ppf "block"
  | Cyclic -> Format.pp_print_string ppf "cyclic"
  | Cyclic_k k -> Format.fprintf ppf "cyclic(%d)" k

let pp_int ppf = Format.fprintf ppf "%d"

let pp_forall_ref ppf { f_array; f_sub; _ } =
  Format.fprintf ppf "%s(%a)" f_array pp_affine f_sub

let pp_forall_expr ppf = function
  | F_const v -> Format.fprintf ppf "%g" v
  | F_ref r -> pp_forall_ref ppf r
  | F_ref_op_const (r, op, v) ->
      Format.fprintf ppf "%a %a %g" pp_forall_ref r pp_binop op v
  | F_const_op_ref (v, op, r) ->
      Format.fprintf ppf "%g %a %a" v pp_binop op pp_forall_ref r
  | F_ref_op_ref (r1, op, r2) ->
      Format.fprintf ppf "%a %a %a" pp_forall_ref r1 pp_binop op
        pp_forall_ref r2

let pp_statement ppf = function
  | Decl { name; sizes; _ } ->
      Format.fprintf ppf "real %s(%a)" name (pp_list pp_int) sizes
  | Template { name; size; _ } ->
      Format.fprintf ppf "template %s(%d)" name size
  | Align { array; target; map; _ } ->
      Format.fprintf ppf "align %s(i) with %s(%a)" array target pp_affine map
  | Distribute { name; formats; onto; _ } ->
      Format.fprintf ppf "distribute %s (%a) onto (%a)" name
        (pp_list pp_format) formats (pp_list pp_int) onto
  | Redistribute { name; formats; onto; _ } ->
      Format.fprintf ppf "!HPF$ redistribute %s (%a) onto (%a)" name
        (pp_list pp_format) formats (pp_list pp_int) onto
  | Assign { lhs; rhs; _ } ->
      Format.fprintf ppf "%a = %a" pp_ref lhs pp_expr rhs
  | Forall { var; range; lhs; rhs; _ } ->
      Format.fprintf ppf "forall %s = %a do %a = %a" var pp_triplet range
        pp_forall_ref lhs pp_forall_expr rhs
  | Print { arg; _ } -> Format.fprintf ppf "print %a" pp_ref arg
  | Print_sum { arg; _ } -> Format.fprintf ppf "print sum %a" pp_ref arg
