open Lams_numeric

type t = Block | Cyclic | Block_cyclic of int

let block_size t ~n ~p =
  if n <= 0 then invalid_arg "Distribution.block_size: n <= 0";
  if p <= 0 then invalid_arg "Distribution.block_size: p <= 0";
  match t with
  | Block -> Modular.ceil_div n p
  | Cyclic -> 1
  | Block_cyclic k ->
      if k <= 0 then invalid_arg "Distribution.block_size: k <= 0";
      k

let to_layout t ~n ~p = Layout.create ~p ~k:(block_size t ~n ~p)

let of_string str =
  let str = String.trim (String.lowercase_ascii str) in
  match str with
  | "block" -> Some Block
  | "cyclic" -> Some Cyclic
  | _ ->
      let n = String.length str in
      if n > 8 && String.sub str 0 7 = "cyclic(" && str.[n - 1] = ')' then
        match int_of_string_opt (String.sub str 7 (n - 8)) with
        | Some k when k > 0 -> Some (Block_cyclic k)
        | _ -> None
      else None

let pp ppf = function
  | Block -> Format.pp_print_string ppf "block"
  | Cyclic -> Format.pp_print_string ppf "cyclic"
  | Block_cyclic k -> Format.fprintf ppf "cyclic(%d)" k

let equal a b =
  match (a, b) with
  | Block, Block | Cyclic, Cyclic -> true
  | Block_cyclic k1, Block_cyclic k2 -> k1 = k2
  | (Block | Cyclic | Block_cyclic _), _ -> false
