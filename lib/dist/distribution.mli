(** HPF distribution formats. [block] and [cyclic] are the special cases of
    [cyclic(k)] noted in §1: [cyclic = cyclic(1)] and
    [block = cyclic(ceil(n/p))]. *)

type t =
  | Block  (** contiguous chunks of [ceil (n/p)] *)
  | Cyclic  (** round-robin single elements *)
  | Block_cyclic of int  (** [cyclic(k)] *)

val block_size : t -> n:int -> p:int -> int
(** The effective [k] for an array of [n] elements on [p] processors.
    @raise Invalid_argument if [n <= 0], [p <= 0], or [Block_cyclic k]
    with [k <= 0]. *)

val to_layout : t -> n:int -> p:int -> Layout.t
(** Normalise to the concrete [cyclic(k)] layout. *)

val of_string : string -> t option
(** Parses ["block"], ["cyclic"], ["cyclic(8)"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
