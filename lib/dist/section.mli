(** Regular array sections [A(l : u : s)] in Fortran-90 subscript-triplet
    notation: indices [l, l+s, l+2s, …] not beyond [u].

    The paper assumes [s > 0] (negative strides "can be treated
    analogously", §2); we support them by normalisation: a section with
    [s < 0] contains the same index set as its reversed positive-stride
    section, and address-sequence computations are performed on the
    normalised form. *)

type t = private {
  lo : int;  (** lower bound [l] *)
  hi : int;  (** upper bound [u] (inclusive, as in Fortran) *)
  stride : int;  (** non-zero [s]; may be negative *)
}

val make : lo:int -> hi:int -> stride:int -> t
(** @raise Invalid_argument if [stride = 0]. Empty sections (e.g.
    [lo > hi] with positive stride) are allowed. *)

val whole : n:int -> t
(** [whole ~n] = [0 : n-1 : 1]. @raise Invalid_argument if [n <= 0]. *)

val count : t -> int
(** Number of elements. *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** Is a global index an element of the section? *)

val nth : t -> int -> int
(** [nth t j] is the [j]-th element in {e traversal} order ([l + j*s]).
    @raise Invalid_argument if [j] is out of range. *)

val last : t -> int
(** The final element in traversal order. @raise Invalid_argument on an
    empty section. *)

val normalize : t -> t
(** Same index set, positive stride. For [s > 0] trims [hi] to the last
    actual element; for [s < 0] reverses the triplet. Identity on empty
    sections up to representation. *)

val reverse : t -> t
(** Same index set, opposite traversal order. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over elements in traversal order. *)

val iter : t -> f:(int -> unit) -> unit
val to_list : t -> int list
val elements : t -> int array

val equal_sets : t -> t -> bool
(** Do two sections denote the same index set? (Used by tests.) *)

val pp : Format.formatter -> t -> unit
(** Prints [l:u:s]. *)
