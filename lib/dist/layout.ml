type t = { p : int; k : int }

let create ~p ~k =
  if p <= 0 then invalid_arg "Layout.create: p <= 0";
  if k <= 0 then invalid_arg "Layout.create: k <= 0";
  { p; k }

let row_len t = t.p * t.k

let check_index g = if g < 0 then invalid_arg "Layout: negative global index"

let owner t g =
  check_index g;
  g mod row_len t / t.k

let row t g =
  check_index g;
  g / row_len t

let row_offset t g =
  check_index g;
  g mod row_len t

let block = row

let block_offset t g =
  check_index g;
  g mod row_len t mod t.k

let local_address t g = (row t g * t.k) + block_offset t g

let local_address_on t ~proc g =
  if owner t g = proc then Some (local_address t g) else None

let global_of_local t ~proc addr =
  if addr < 0 then invalid_arg "Layout.global_of_local: negative address";
  ((addr / t.k) * row_len t) + (proc * t.k) + (addr mod t.k)

let local_count t ~n ~proc =
  if n < 0 then invalid_arg "Layout.local_count: n < 0";
  let pk = row_len t in
  let full_rows = n / pk and rest = n mod pk in
  let partial = min t.k (max 0 (rest - (proc * t.k))) in
  (full_rows * t.k) + partial

let local_extent = local_count

let owned_globals t ~n ~proc =
  let rec go acc g =
    if g < 0 then acc
    else go (if owner t g = proc then g :: acc else acc) (g - 1)
  in
  go [] (n - 1)

let pp ppf t = Format.fprintf ppf "cyclic(%d) on %d procs" t.k t.p
