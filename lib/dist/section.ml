open Lams_numeric

type t = { lo : int; hi : int; stride : int }

let make ~lo ~hi ~stride =
  if stride = 0 then invalid_arg "Section.make: zero stride";
  { lo; hi; stride }

let whole ~n =
  if n <= 0 then invalid_arg "Section.whole: n <= 0";
  { lo = 0; hi = n - 1; stride = 1 }

let count t =
  if t.stride > 0 then
    if t.lo > t.hi then 0 else ((t.hi - t.lo) / t.stride) + 1
  else if t.lo < t.hi then 0
  else ((t.lo - t.hi) / -t.stride) + 1

let is_empty t = count t = 0

let mem t i =
  if t.stride > 0 then
    i >= t.lo && i <= t.hi && Modular.emod (i - t.lo) t.stride = 0
  else i <= t.lo && i >= t.hi && Modular.emod (t.lo - i) (-t.stride) = 0

let nth t j =
  if j < 0 || j >= count t then invalid_arg "Section.nth: out of range";
  t.lo + (j * t.stride)

let last t =
  let n = count t in
  if n = 0 then invalid_arg "Section.last: empty section";
  t.lo + ((n - 1) * t.stride)

let normalize t =
  let n = count t in
  if n = 0 then { lo = 0; hi = -1; stride = 1 }
  else if t.stride > 0 then { t with hi = last t }
  else { lo = last t; hi = t.lo; stride = -t.stride }

let reverse t =
  let n = count t in
  if n = 0 then { lo = 0; hi = 1; stride = -1 } (* an empty descending triplet *)
  else { lo = last t; hi = t.lo; stride = -t.stride }

let fold t ~init ~f =
  let n = count t in
  let rec go acc j = if j = n then acc else go (f acc (t.lo + (j * t.stride))) (j + 1) in
  go init 0

let iter t ~f = fold t ~init:() ~f:(fun () i -> f i)
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc i -> i :: acc))
let elements t = Array.init (count t) (fun j -> t.lo + (j * t.stride))

let equal_sets t1 t2 =
  let n1 = normalize t1 and n2 = normalize t2 in
  count n1 = count n2
  && (count n1 = 0 || (n1.lo = n2.lo && n1.stride = n2.stride || count n1 = 1 && n1.lo = n2.lo))

let pp ppf t = Format.fprintf ppf "%d:%d:%d" t.lo t.hi t.stride
