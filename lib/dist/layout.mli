(** The concrete [cyclic(k)] data layout of §2 (the paper's Figure 1).

    Global index space is viewed as a matrix whose rows hold [p*k]
    elements: row [i div pk], row-offset [i mod pk]. Row-offset range
    [\[m*k, (m+1)*k)] belongs to processor [m]. Each processor stores its
    blocks contiguously, one [k]-wide block per layout row, so the local
    address of an owned element is [row * k + (row_offset - m*k)]. *)

type t = private { p : int;  (** processors *) k : int  (** block size *) }

val create : p:int -> k:int -> t
(** @raise Invalid_argument unless [p > 0] and [k > 0]. *)

val row_len : t -> int
(** [p * k], the layout-row length. *)

val owner : t -> int -> int
(** Processor owning a global index ([>= 0]). *)

val row : t -> int -> int
(** Layout row of a global index. *)

val row_offset : t -> int -> int
(** Offset within the layout row, in [\[0, p*k)] — the paper's "offset"
    coordinate (x-axis of the lattice plane). *)

val block : t -> int -> int
(** Block number within the owning processor (equals {!row} here since
    each processor gets one block per row). *)

val block_offset : t -> int -> int
(** Offset within the owning block, in [\[0, k)]. *)

val local_address : t -> int -> int
(** Packed local address of a global index {e on its owning processor}:
    [row * k + block_offset]. *)

val local_address_on : t -> proc:int -> int -> int option
(** [local_address_on t ~proc g] is [Some (local_address t g)] when
    [owner t g = proc], else [None]. *)

val global_of_local : t -> proc:int -> int -> int
(** Inverse of {!local_address} for a given processor.
    @raise Invalid_argument on a negative address. *)

val local_count : t -> n:int -> proc:int -> int
(** Number of elements of a global array of size [n] stored on [proc]. *)

val local_extent : t -> n:int -> proc:int -> int
(** Size of the local allocation needed for a global array of size [n]:
    one more than the largest local address used, i.e.
    [local_address] of the last owned element [+ 1]; [0] if none owned.
    (Equals {!local_count} plus the holes left by a partial last row —
    with this packed layout there are none, so it equals
    {!local_count}.) *)

val owned_globals : t -> n:int -> proc:int -> int list
(** All global indices owned by [proc], ascending (test helper; [O(n)]). *)

val pp : Format.formatter -> t -> unit
