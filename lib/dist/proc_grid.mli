(** Multidimensional processor grids, the [PROCESSORS] arrangements onto
    which templates are distributed. Dimensions of a multidimensional
    distribution are independent of one another (§2), so a grid is just a
    shape with row-major rank/coordinate conversions. *)

type t = private { dims : int array }

val create : int array -> t
(** @raise Invalid_argument if empty or any dimension [<= 0]. *)

val linear : int -> t
(** One-dimensional grid of [p] processors. *)

val size : t -> int
(** Total processor count (product of dims). *)

val ndims : t -> int
val dim : t -> int -> int

val rank_of_coords : t -> int array -> int
(** Row-major linearisation. @raise Invalid_argument on shape mismatch or
    out-of-range coordinate. *)

val coords_of_rank : t -> int -> int array
(** Inverse of {!rank_of_coords}. @raise Invalid_argument if out of
    range. *)

val pp : Format.formatter -> t -> unit
