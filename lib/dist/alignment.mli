(** Affine alignments between arrays and templates (§2).

    HPF aligns array element [A(i)] with template cell [a*i + b]. Identity
    alignment is [a = 1, b = 0]. The paper shows that the memory access
    problem under any affine alignment reduces to two applications of the
    identity-alignment algorithm; that reduction lives in
    [Lams_multidim.Aligned] — this module is just the affine-map algebra. *)

type t = private { scale : int;  (** [a], non-zero *) offset : int  (** [b] *) }

val identity : t
val make : scale:int -> offset:int -> t
(** @raise Invalid_argument if [scale = 0]. *)

val apply : t -> int -> int
(** Template cell of an array index. *)

val preimage : t -> int -> int option
(** [preimage t c] is the array index aligned to template cell [c], if
    any ([c - b] must be divisible by [a]). *)

val compose : t -> t -> t
(** [compose outer inner] applies [inner] first: the map
    [i ↦ outer (inner i)]. *)

val section_image : t -> Section.t -> Section.t
(** The template cells touched by an array section: [A(l:u:s)] maps to
    cells [(a*l+b : a*u+b : a*s)].
    @raise Invalid_argument on an empty section. *)

val is_identity : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints e.g. [3*i+1]. *)
