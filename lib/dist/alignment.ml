open Lams_numeric

type t = { scale : int; offset : int }

let identity = { scale = 1; offset = 0 }

let make ~scale ~offset =
  if scale = 0 then invalid_arg "Alignment.make: zero scale";
  { scale; offset }

let apply t i = (t.scale * i) + t.offset

let preimage t c =
  let v = c - t.offset in
  if Modular.emod v t.scale = 0 then Some (v / t.scale) else None

let compose outer inner =
  { scale = outer.scale * inner.scale;
    offset = (outer.scale * inner.offset) + outer.offset }

let section_image t (sec : Section.t) =
  if Section.is_empty sec then
    invalid_arg "Alignment.section_image: empty section";
  Section.make ~lo:(apply t sec.Section.lo) ~hi:(apply t sec.Section.hi)
    ~stride:(t.scale * sec.Section.stride)

let is_identity t = t.scale = 1 && t.offset = 0
let equal t1 t2 = t1.scale = t2.scale && t1.offset = t2.offset

let pp ppf t =
  if is_identity t then Format.pp_print_string ppf "i"
  else if t.offset = 0 then Format.fprintf ppf "%d*i" t.scale
  else if t.offset > 0 then Format.fprintf ppf "%d*i+%d" t.scale t.offset
  else Format.fprintf ppf "%d*i%d" t.scale t.offset
