let cell_width n = max 3 (String.length (string_of_int (max 0 (n - 1))) + 2)

let render_cell ~width ~mark ~highlight g =
  let txt = string_of_int g in
  let deco =
    if highlight g then "(" ^ txt ^ ")"
    else if mark g then "[" ^ txt ^ "]"
    else " " ^ txt ^ " "
  in
  let padding = width - String.length deco in
  if padding <= 0 then deco else String.make padding ' ' ^ deco

let layout (lay : Layout.t) ~n ?(mark = fun _ -> false)
    ?(highlight = fun _ -> false) () =
  if n <= 0 then invalid_arg "Render.layout: n <= 0";
  let pk = Layout.row_len lay in
  let k = lay.Layout.k in
  let width = cell_width n in
  let buf = Buffer.create (n * (width + 1)) in
  (* Header naming each processor over its column group. *)
  for m = 0 to lay.Layout.p - 1 do
    if m > 0 then Buffer.add_string buf " |";
    let label = Printf.sprintf "Processor %d" m in
    let span = k * width in
    let pad = max 0 (span - String.length label) in
    let left = pad / 2 in
    Buffer.add_string buf (String.make left ' ');
    Buffer.add_string buf label;
    Buffer.add_string buf (String.make (pad - left) ' ')
  done;
  Buffer.add_char buf '\n';
  let rows = (n + pk - 1) / pk in
  for r = 0 to rows - 1 do
    for off = 0 to pk - 1 do
      let g = (r * pk) + off in
      if off > 0 && off mod k = 0 then Buffer.add_string buf " |";
      if g < n then
        Buffer.add_string buf (render_cell ~width ~mark ~highlight g)
      else Buffer.add_string buf (String.make width ' ')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let local_memory (lay : Layout.t) ~n ~proc ?(mark = fun _ -> false) () =
  if n <= 0 then invalid_arg "Render.local_memory: n <= 0";
  if proc < 0 || proc >= lay.Layout.p then
    invalid_arg "Render.local_memory: bad processor";
  let k = lay.Layout.k in
  let extent = Layout.local_extent lay ~n ~proc in
  let width = cell_width n in
  let buf = Buffer.create ((extent * (width + 1)) + 64) in
  Buffer.add_string buf (Printf.sprintf "Processor %d local memory:\n" proc);
  let rows = (extent + k - 1) / k in
  for r = 0 to rows - 1 do
    for c = 0 to k - 1 do
      let addr = (r * k) + c in
      if addr < extent then begin
        let g = Layout.global_of_local lay ~proc addr in
        Buffer.add_string buf
          (render_cell ~width ~mark ~highlight:(fun _ -> false) g)
      end
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let legend (lay : Layout.t) =
  Printf.sprintf "cyclic(%d) on %d procs; row = %d elements" lay.Layout.k
    lay.Layout.p (Layout.row_len lay)
