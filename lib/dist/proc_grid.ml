type t = { dims : int array }

let create dims =
  if Array.length dims = 0 then invalid_arg "Proc_grid.create: no dimensions";
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Proc_grid.create: dimension <= 0")
    dims;
  { dims = Array.copy dims }

let linear p = create [| p |]
let size t = Array.fold_left ( * ) 1 t.dims
let ndims t = Array.length t.dims
let dim t i = t.dims.(i)

let rank_of_coords t coords =
  if Array.length coords <> Array.length t.dims then
    invalid_arg "Proc_grid.rank_of_coords: arity mismatch";
  Array.iteri
    (fun i c ->
      if c < 0 || c >= t.dims.(i) then
        invalid_arg "Proc_grid.rank_of_coords: coordinate out of range")
    coords;
  Array.fold_left (fun acc i -> (acc * t.dims.(i)) + coords.(i)) 0
    (Array.init (Array.length t.dims) Fun.id)

let coords_of_rank t rank =
  if rank < 0 || rank >= size t then
    invalid_arg "Proc_grid.coords_of_rank: rank out of range";
  let n = Array.length t.dims in
  let coords = Array.make n 0 in
  let rest = ref rank in
  for i = n - 1 downto 0 do
    coords.(i) <- !rest mod t.dims.(i);
    rest := !rest / t.dims.(i)
  done;
  coords

let pp ppf t =
  Format.fprintf ppf "procs(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int t.dims)))
