(** ASCII rendering of block-cyclic layouts in the style of the paper's
    Figures 1, 2, 4 and 6: one line per layout row, processors separated by
    [|], marked elements (e.g. the members of a regular section, or the
    points visited by the algorithm) shown in brackets. *)

val layout :
  Layout.t ->
  n:int ->
  ?mark:(int -> bool) ->
  ?highlight:(int -> bool) ->
  unit ->
  string
(** [layout lay ~n ~mark ()] draws global indices [0 .. n-1].
    [mark g = true] renders [g] as [\[g\]] (the paper's rectangles);
    [highlight g = true] renders it as [(g)] (the paper's circled lower
    bound). [highlight] wins when both apply. *)

val local_memory :
  Layout.t -> n:int -> proc:int -> ?mark:(int -> bool) -> unit -> string
(** Draws processor [proc]'s local store, one line per local block row;
    each cell shows the {e global} index held at that local address.
    [mark] takes the global index. *)

val legend : Layout.t -> string
(** One-line description, e.g. "cyclic(8) on 4 procs; row = 32 elements". *)
