(** The paper's linear-time algorithm (Figure 5): Kennedy–Nedeljković–Sethi.

    Complexity [O(k + min(log s, log p))]: one extended Euclid, an [O(k/d)]
    scan for the start location, an [O(k/d)] scan for the basis vectors
    [R] and [L], and an [O(k)] lattice walk that applies Theorem 3 — at
    most [2k + 1] lattice points are examined (§5.1), which
    {!gap_table_with_stats} lets tests verify.

    The paper's worked example:
    {[
      let pr = Problem.make ~p:4 ~k:8 ~l:4 ~s:9 in
      let t = Kns.gap_table pr ~m:1 in
      (* t.start       = Some 13
         t.start_local = Some 5
         t.gaps        = [| 3; 12; 15; 12; 3; 12; 3; 12 |] *)
    ]} *)

type stats = {
  points_visited : int;
      (** lattice points examined by the gap walk, [<= 2k+1] *)
  eq1 : int;  (** steps by [R] (Equation 1) *)
  eq2 : int;  (** steps by [−L] (Equation 2) *)
  eq3 : int;  (** steps by [R − L] (Equation 3, one wasted point each) *)
}

val gap_table : Problem.t -> m:int -> Access_table.t
(** The [AM] table for processor [m].
    @raise Invalid_argument unless [0 <= m < p]. *)

val gap_table_with_stats : Problem.t -> m:int -> Access_table.t * stats

val basis : Problem.t -> Lams_lattice.Basis.t option
(** The [R]/[L] basis used, when it exists ([d < k]); independent of [m]
    and [l] (§4) — exposed for reuse, tests and the table-free
    enumerator. *)

val iter_gaps :
  Problem.t ->
  m:int ->
  f:(idx:int -> row_offset:int -> gap:int -> next_row_offset:int -> unit) ->
  Start_finder.t
(** The underlying walk: calls [f] once per gap-table entry with the
    row-offset of the current element, the local-memory gap to the next
    element, and the next element's row-offset. Returns the start/length
    record. Used to build the offset-indexed tables of code shape 8(d)
    ({!Fsm.build}) without re-deriving the walk. *)
