(** The sorting-based baseline of Chatterjee, Gilbert, Long, Schreiber &
    Teng (PPOPP'93), as described in §2 and §6.1 and reimplemented for the
    head-to-head comparison of Table 1.

    Identical Diophantine front end to {!Kns} (the paper made the shared
    segments identical code, and so do we — both call {!Start_finder});
    then the initial-cycle locations are {e sorted} ([O(k log k)]
    comparison sort below 64 elements, linear LSD radix sort at 64 and
    above, matching the paper's implementation note) and a linear scan
    turns sorted locations into local-memory gaps. *)

val gap_table : Problem.t -> m:int -> Access_table.t
(** Produces a result identical to [Kns.gap_table] (a property the test
    suite checks exhaustively); only the construction cost differs.
    @raise Invalid_argument unless [0 <= m < p]. *)

val gap_table_with_sort :
  sort:(int array -> unit) -> Problem.t -> m:int -> Access_table.t
(** Same with a caller-chosen sorting routine (used by the ablation bench
    comparing quicksort / merge / radix policies). *)
