type t = {
  start_offset : int;
  delta : int array;
  next_offset : int array;
  length : int;
}

let unreachable_delta = min_int

let c_tables =
  Lams_obs.Obs.counter "fsm.tables_built" ~units:"tables"
    ~doc:"per-processor transition tables built"

let d_states =
  Lams_obs.Obs.distribution "fsm.states" ~units:"states"
    ~doc:"reachable states per transition table"

let build pr ~m =
  let k = pr.Problem.k in
  let delta = Array.make k unreachable_delta in
  let next_offset = Array.make k (-1) in
  let window_lo = m * k in
  let found =
    Kns.iter_gaps pr ~m ~f:(fun ~idx:_ ~row_offset ~gap ~next_row_offset ->
        let state = row_offset - window_lo in
        delta.(state) <- gap;
        next_offset.(state) <- next_row_offset - window_lo)
  in
  match found.Start_finder.start with
  | None -> None
  | Some start ->
      Lams_obs.Obs.incr c_tables;
      Lams_obs.Obs.observe d_states (float_of_int found.Start_finder.length);
      Some
        { start_offset = start mod k;
          delta;
          next_offset;
          length = found.Start_finder.length }

let reachable t o = o >= 0 && o < Array.length t.delta && t.delta.(o) <> unreachable_delta

let walk t ~steps =
  let out = Array.make steps 0 in
  let state = ref t.start_offset in
  for j = 0 to steps - 1 do
    if not (reachable t !state) then
      invalid_arg
        (Printf.sprintf
           "Fsm.walk: offset %d is not a reachable state (transition \
            tables are only defined on the offsets the lattice walk \
            visits)"
           !state);
    out.(j) <- t.delta.(!state);
    state := t.next_offset.(!state)
  done;
  out

let pp ppf t =
  Format.fprintf ppf "start state %d@." t.start_offset;
  Array.iteri
    (fun o gap ->
      if gap <> unreachable_delta then
        Format.fprintf ppf "%d -> %d (gap %d)@." o t.next_offset.(o) gap)
    t.delta
