open Lams_numeric
open Lams_dist

let applicable (pr : Problem.t) =
  pr.Problem.s mod Problem.row_len pr < pr.Problem.k

let gap_table pr ~m =
  if not (applicable pr) then
    invalid_arg "Hiranandani.gap_table: requires s mod pk < k";
  let { Start_finder.start; length } = Start_finder.find pr ~m in
  match start with
  | None -> Access_table.empty
  | Some start ->
      let pk = Problem.row_len pr in
      let k = pr.Problem.k and s = pr.Problem.s in
      let sigma = s mod pk in
      let lay = Problem.layout pr in
      let local g = Layout.local_address lay g in
      let window_lo = m * k in
      let gaps = Array.make length 0 in
      let g = ref start in
      for idx = 0 to length - 1 do
        (* Offset relative to the window start, in [0, k). *)
        let rel = (!g mod pk) - window_lo in
        let hops =
          if sigma = 0 then 1
          else if rel + sigma < k then 1
          else begin
            (* Offsets leave the window and march by σ until wrapping past
               the row end; the wrap necessarily lands in [0, σ) ⊆ [0, k).
               (For p = 1 the first branch may still miss — then the wrap
               happens on the very next hop and this ceiling is 1.) *)
            let t = Modular.ceil_div (pk - rel) sigma in
            if (rel + sigma) mod pk < k then 1 else t
          end
        in
        let next = !g + (hops * s) in
        gaps.(idx) <- local next - local !g;
        g := next
      done;
      { Access_table.start = Some start;
        start_local = Some (local start);
        length;
        gaps }
