(** Brute-force reference implementation: walk [l, l+s, l+2s, …] element by
    element, keep the ones the processor owns, and difference their local
    addresses. [O(pk/d)] per processor — used as ground truth by the test
    suite and the [verify] CLI, never by benchmarks. *)

val gap_table : Problem.t -> m:int -> Access_table.t
(** Same contract as [Kns.gap_table]. *)

val owned_prefix : Problem.t -> m:int -> count:int -> int array
(** First [count] owned section elements (global indices) in increasing
    order. @raise Invalid_argument if the processor owns none and
    [count > 0]. *)

val owned_up_to : Problem.t -> m:int -> u:int -> int array
(** All owned section elements [<= u], ascending. *)
