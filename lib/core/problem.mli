(** A memory-access-sequence problem instance (§2): an array distributed
    [cyclic(k)] over [p] processors, traversed through the regular section
    with lower bound [l] and stride [s].

    The upper bound [u] plays no role in the gap sequence (it only
    determines where each processor stops), so — like the paper — problem
    instances carry only [(p, k, l, s)]; bounded traversals take [u]
    separately. [s] must be positive: negative-stride sections are
    normalised by the callers ({!Problem.of_section}). *)

type t = private {
  p : int;  (** processors, [>= 1] *)
  k : int;  (** block size, [>= 1] *)
  l : int;  (** section lower bound, [>= 0] *)
  s : int;  (** section stride, [>= 1] *)
}

val make : p:int -> k:int -> l:int -> s:int -> t
(** @raise Invalid_argument on any violated bound above. *)

val of_section : Lams_dist.Layout.t -> Lams_dist.Section.t -> t
(** Normalises the section to a positive stride first.
    @raise Invalid_argument on an empty section. *)

val layout : t -> Lams_dist.Layout.t
val row_len : t -> int
(** [p * k]. *)

val gcd : t -> int
(** [d = gcd s (p*k)], the solvability modulus of §2. *)

val cycle_indices : t -> int
(** [p*k / d]: number of section elements in one full period of the access
    pattern (across all processors). *)

val cycle_span : t -> int
(** [s * p*k / d]: the global-index length of one period. *)

val pp : Format.formatter -> t -> unit
