open Lams_dist

(* Everything here is deliberately independent of [Start_finder]: the only
   facts used are the ownership test and the periodicity of the access
   pattern (offsets repeat after pk/d section elements), so this module can
   serve as ground truth for the closed-form algorithms. *)

let owned_in_first_cycle (pr : Problem.t) ~m =
  let lay = Problem.layout pr in
  let cycle = Problem.cycle_indices pr in
  let acc = ref [] and n = ref 0 in
  for j = cycle - 1 downto 0 do
    let g = pr.Problem.l + (j * pr.Problem.s) in
    if Layout.owner lay g = m then begin
      acc := g :: !acc;
      incr n
    end
  done;
  (!acc, !n)

let owned_prefix pr ~m ~count =
  if count < 0 then invalid_arg "Brute.owned_prefix: negative count";
  if m < 0 || m >= pr.Problem.p then invalid_arg "Brute.owned_prefix: bad m";
  if count = 0 then [||]
  else begin
    let cycle_elems, per_cycle = owned_in_first_cycle pr ~m in
    if per_cycle = 0 then
      invalid_arg "Brute.owned_prefix: processor owns no section element";
    let span = Problem.cycle_span pr in
    let base = Array.of_list cycle_elems in
    Array.init count (fun j ->
        base.(j mod per_cycle) + (span * (j / per_cycle)))
  end

let owned_up_to pr ~m ~u =
  if m < 0 || m >= pr.Problem.p then invalid_arg "Brute.owned_up_to: bad m";
  let lay = Problem.layout pr in
  let acc = ref [] and n = ref 0 in
  let g = ref pr.Problem.l in
  while !g <= u do
    if Layout.owner lay !g = m then begin
      acc := !g :: !acc;
      incr n
    end;
    g := !g + pr.Problem.s
  done;
  let out = Array.make !n 0 in
  List.iteri (fun i v -> out.(!n - 1 - i) <- v) !acc;
  out

let gap_table pr ~m =
  if m < 0 || m >= pr.Problem.p then invalid_arg "Brute.gap_table: bad m";
  let _, length = owned_in_first_cycle pr ~m in
  if length = 0 then Access_table.empty
  else begin
    let lay = Problem.layout pr in
    let elems = owned_prefix pr ~m ~count:(length + 1) in
    let local g = Layout.local_address lay g in
    let gaps = Array.init length (fun j -> local elems.(j + 1) - local elems.(j)) in
    { Access_table.start = Some elems.(0);
      start_local = Some (local elems.(0));
      length;
      gaps }
  end
