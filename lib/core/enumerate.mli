(** Table-free address enumeration — the memory-lean variant the paper
    points to at the end of §6.2 (detailed in the authors' ICS'95 paper):
    keep only the vectors [R] and [L] and regenerate each local address on
    the fly with the two Theorem 3 tests, instead of materialising the
    [AM]/[NextOffset] tables. Trades a small per-access cost for [O(1)]
    table space. *)

type cursor
(** A position in processor [m]'s access sequence. Immutable. *)

val start : Problem.t -> m:int -> cursor option
(** Cursor at the processor's first owned element ([None] if it owns
    nothing). @raise Invalid_argument unless [0 <= m < p]. *)

val global : cursor -> int
(** Global index of the current element. *)

val local : cursor -> int
(** Packed local address of the current element. *)

val next : cursor -> cursor
(** Cursor at the following owned element (always exists: the pattern is
    periodic and unbounded). *)

val seq : Problem.t -> m:int -> u:int -> (int * int) Seq.t
(** All [(global, local)] pairs for owned elements of [A(l:u:s)], in
    access order, generated lazily with O(1) state. *)

val iter_bounded : Problem.t -> m:int -> u:int -> f:(int -> int -> unit) -> unit
(** [iter_bounded pr ~m ~u ~f] applies [f global local] to every owned
    element of [A(l:u:s)] — the allocation-free loop shape a compiler
    would emit. *)
