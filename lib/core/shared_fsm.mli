(** The compile-time specialisation of §6.1: when [gcd(s, pk) = 1] the
    local [AM] sequences of all processors are cyclic shifts of one
    another, so the transition tables can be computed {e once} and every
    processor only needs its starting location.

    This works because the state transitions of the access FSM (§2)
    depend only on [(p, k, s)]: the Theorem 3 tests compare the {e local}
    offset [o = row_offset − m*k] against [k], so the [delta]/[NextOffset]
    tables indexed by local offset are identical on every processor.
    With [d = 1] every one of the [k] states is reachable on every
    processor, hence the full table is shared verbatim. *)

type t = private {
  problem : Problem.t;
  delta : int array;  (** size [k]: gap leaving each local offset *)
  next_offset : int array;  (** size [k]: successor local offset *)
}

val build : Problem.t -> t option
(** [None] unless [gcd (s, p*k) = 1]. Cost: one ordinary table
    construction ([O(k + log min(s, pk))]), paid once for all
    processors. *)

val start : t -> m:int -> int * int
(** [(global start element, start state)] for a processor — the only
    per-processor work left. *)

val gap_table : t -> m:int -> Access_table.t
(** Processor [m]'s table, derived by walking the shared FSM from its
    start state: no extended Euclid, no Diophantine scan, no basis
    construction per processor. Identical to [Kns.gap_table] (tested). *)

val fsm_for : t -> m:int -> Fsm.t
(** The shared tables repackaged with processor [m]'s start state —
    directly consumable by code shape 8(d). *)
