(** The compile-time specialisation of §6.1, generalized to every
    [d = gcd(s, pk) < k]: the transition tables of the access FSM (§2)
    depend only on the {e local} offset [o = row_offset − m*k] — the
    Theorem 3 tests compare [o] against [k] — so the [delta]/[NextOffset]
    tables indexed by local offset are identical on every processor.

    The offsets reachable on processor [m] are exactly the [k/d]
    multiples of [d] congruent to [(l − m·k) mod d] in [0, k): one
    residue class of the state space. Both basis vectors have
    [b ≡ 0 (mod d)], so transitions stay inside a class and one
    [O(k/d)] linear pass over a class — a single generalized lattice
    walk, with no per-state [Basis.next_step] search — fills every state
    any processor of that class will ever visit. With [d = 1] this
    degenerates to the original single shared table of [k] states; with
    [d ∤ k] different processors live in different classes, which are
    filled lazily (mutex-protected, safe under parallel SPMD fills).

    Whole-machine table construction therefore costs
    [O(k + p·(k/d))] — the shared fill plus [p] replays — instead of the
    seed's [O(p·k)] per-processor walks. *)

type t = private {
  problem : Problem.t;
  d : int;  (** [gcd(s, pk)]; states live in residue classes mod [d] *)
  basis : Lams_lattice.Basis.t;
  delta : int array;
      (** size [k]: gap leaving each local offset; [Fsm.unreachable_delta]
          where the offset's class has not been filled *)
  next_offset : int array;  (** size [k]: successor local offset *)
  filled : bool array;  (** size [d]: which residue classes are filled *)
  fill_mutex : Mutex.t;
}

val build : Problem.t -> t option
(** [None] iff [d >= k] (the degenerate regime, where closed forms beat
    any table). Cost: one basis construction plus one [O(k/d)] class
    fill, paid once for all processors. *)

val start : t -> m:int -> int * int
(** [(global start element, start state)] for a processor — the only
    per-processor work left. *)

val gap_table : t -> m:int -> Access_table.t
(** Processor [m]'s table, derived by replaying the shared FSM from its
    start state: no extended Euclid, no Diophantine scan, no basis
    construction, no Theorem 3 branching per processor. Identical to
    [Kns.gap_table] (tested across all [d] regimes). *)

val fsm_for : t -> m:int -> Fsm.t
(** The shared tables repackaged with processor [m]'s start state —
    directly consumable by code shape 8(d). The [delta]/[next_offset]
    arrays are shared with [t] (and with every other processor's view):
    treat them as read-only. *)
