(** The Diophantine front end shared by every algorithm (lines 3–11 of the
    paper's Figure 5, after Chatterjee et al.).

    Processor [m] owns section element [l + s*j] iff
    [(l + s*j) mod pk ∈ [k*m, k*(m+1))], i.e. iff [s*j ≡ i (mod pk)] for
    some [i ∈ [k*m − l, k*m − l + k)]. Each congruence is solvable iff
    [d = gcd(s, pk)] divides [i]; one extended Euclid plus a stride-[d]
    scan (no per-iteration conditional, §5) yields everything below in
    [O(k/d + log min(s, pk))]. *)

type t = {
  start : int option;
      (** global index of the first section element on the processor *)
  length : int;
      (** number of reachable offsets in the processor's window — the
          period of the gap table *)
}

val find : Problem.t -> m:int -> t
(** @raise Invalid_argument unless [0 <= m < p]. *)

val first_cycle_locations : Problem.t -> m:int -> int array
(** For each reachable offset in [m]'s window (ascending offset order),
    the {e smallest} section element with that offset — the paper's
    initial-cycle locations, which the Chatterjee baseline sorts. All lie
    in [\[l, l + cycle_span)]. Length equals [(find t ~m).length]. *)

val last_location : Problem.t -> m:int -> u:int -> int option
(** Largest owned section element [<= u] (the bounded-section endpoint
    determined by the upper bound, §2), or [None] if the processor owns
    nothing in [\[l, u\]]. *)

val count_owned : Problem.t -> m:int -> u:int -> int
(** Number of owned section elements in [\[l, u\]]. *)
