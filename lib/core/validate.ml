type mismatch = {
  m : int;
  algorithm : string;
  expected : Access_table.t;
  got : Access_table.t;
}

let table_checks pr ~m ~expected =
  let candidates =
    [ ("kns", fun () -> Kns.gap_table pr ~m);
      ("auto", fun () -> Auto.gap_table (Auto.create pr) ~m);
      ("chatterjee", fun () -> Chatterjee.gap_table pr ~m) ]
    @
    if Hiranandani.applicable pr then
      [ ("hiranandani", fun () -> Hiranandani.gap_table pr ~m) ]
    else []
  in
  List.filter_map
    (fun (algorithm, run) ->
      let got = run () in
      if Access_table.equal got expected then None
      else Some { m; algorithm; expected; got })
    candidates

(* Replay [steps] addresses out of an access table; empty table -> [||]. *)
let addresses_of_table (t : Access_table.t) ~steps =
  if t.Access_table.length = 0 then [||]
  else Access_table.local_addresses t ~count:steps

let enumerate_checks pr ~m ~(expected : Access_table.t) =
  let steps = max 1 (2 * expected.Access_table.length) in
  let want = addresses_of_table expected ~steps in
  let got =
    match Enumerate.start pr ~m with
    | None -> [||]
    | Some c ->
        let out = Array.make steps 0 in
        let cur = ref c in
        for j = 0 to steps - 1 do
          out.(j) <- Enumerate.local !cur;
          cur := Enumerate.next !cur
        done;
        out
  in
  if want = got then []
  else
    [ { m;
        algorithm = "enumerate";
        expected;
        got =
          { expected with
            Access_table.gaps =
              Array.init
                (max 0 (Array.length got - 1))
                (fun j -> got.(j + 1) - got.(j)) } } ]

let fsm_checks pr ~m ~(expected : Access_table.t) =
  match Fsm.build pr ~m with
  | None ->
      if expected.Access_table.length = 0 then []
      else [ { m; algorithm = "fsm"; expected; got = Access_table.empty } ]
  | Some fsm ->
      let steps = 2 * expected.Access_table.length in
      let got_gaps = Fsm.walk fsm ~steps in
      let want_gaps =
        Array.init steps (fun j ->
            expected.Access_table.gaps.(j mod expected.Access_table.length))
      in
      if got_gaps = want_gaps then []
      else
        [ { m;
            algorithm = "fsm";
            expected;
            got = { expected with Access_table.gaps = got_gaps } } ]

let check_instance pr =
  let p = pr.Problem.p in
  List.concat
    (List.init p (fun m ->
         let expected = Brute.gap_table pr ~m in
         table_checks pr ~m ~expected
         @ enumerate_checks pr ~m ~expected
         @ fsm_checks pr ~m ~expected))

let check_random ~seed ~trials ~max_p ~max_k ~max_s =
  (* Tiny deterministic LCG to avoid a dependency on lams_util here. *)
  let state = ref seed in
  let rand bound =
    state := Int64.(add (mul !state 6364136223846793005L) 1442695040888963407L);
    let v = Int64.to_int (Int64.shift_right_logical !state 33) in
    1 + (v mod bound)
  in
  let rec go trial =
    if trial >= trials then None
    else begin
      let p = rand max_p and k = rand max_k and s = rand max_s in
      let l = rand (4 * p * k) - 1 in
      let pr = Problem.make ~p ~k ~l ~s in
      match check_instance pr with
      | [] -> go (trial + 1)
      | mm :: _ -> Some (pr, mm)
    end
  in
  go 0

let pp_mismatch ppf { m; algorithm; expected; got } =
  Format.fprintf ppf "proc %d, %s:@ expected %a@ got %a" m algorithm
    Access_table.pp expected Access_table.pp got
