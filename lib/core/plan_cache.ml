let c_hits =
  Lams_obs.Obs.counter "plan_cache.hits" ~units:"lookups"
    ~doc:"whole-machine plan lookups served from the cache"

let c_misses =
  Lams_obs.Obs.counter "plan_cache.misses" ~units:"lookups"
    ~doc:"whole-machine plan lookups that had to build tables"

let c_evictions =
  Lams_obs.Obs.counter "plan_cache.evictions" ~units:"entries"
    ~doc:"least-recently-used entries dropped at capacity"

type entry = {
  problem : Problem.t;  (* canonical: 0 <= l < cycle_span *)
  u : int;  (* canonical upper bound, u - g_shift *)
  tables : Access_table.t array;
  fsms : Fsm.t option array;
  lasts : int option array;
}

type view = { entry : entry; g_shift : int; local_shift : int }

(* Shifting a problem's [l] by a multiple of cycle_span = pk·s/d leaves
   offsets, owners, gap tables and the FSM untouched: the shift is a
   whole number of allocation rows (cycle_span = (s/d)·pk), so every
   global index moves by g_shift, every local address by
   (g_shift/pk)·k, and all differences — the gaps — are unchanged.
   Canonicalizing to l mod cycle_span (and u - g_shift) lets sections
   that differ only by where they start in the array share one entry. *)
let canonical pr ~u =
  let span = Problem.cycle_span pr in
  let l0 = pr.Problem.l mod span in
  let g_shift = pr.Problem.l - l0 in
  let pr0 =
    if g_shift = 0 then pr
    else Problem.make ~p:pr.Problem.p ~k:pr.Problem.k ~l:l0 ~s:pr.Problem.s
  in
  let local_shift = g_shift / Problem.row_len pr * pr.Problem.k in
  (pr0, u - g_shift, g_shift, local_shift)

let canonicalize pr ~u = canonical pr ~u

let build_entry pr ~u =
  let p = pr.Problem.p in
  let tables, fsms =
    match Shared_fsm.build pr with
    | Some shared ->
        (* d < k: every window is non-empty; one shared fill, p replays. *)
        ( Array.init p (fun m -> Shared_fsm.gap_table shared ~m),
          Array.init p (fun m -> Some (Shared_fsm.fsm_for shared ~m)) )
    | None ->
        (* d >= k: the per-processor paths already short-circuit to
           closed forms, so there is nothing to share. *)
        ( Array.init p (fun m -> Kns.gap_table pr ~m),
          Array.init p (fun m -> Fsm.build pr ~m) )
  in
  let lasts = Array.init p (fun m -> Start_finder.last_location pr ~m ~u) in
  { problem = pr; u; tables; fsms; lasts }

type slot = { entry : entry; mutable last_used : int }

let default_capacity = 64
let cap = ref default_capacity
let tick = ref 0
let table_mutex = Mutex.create ()

let cache : (int * int * int * int * int, slot) Hashtbl.t = Hashtbl.create 64

(* Callers hold [table_mutex]. *)
let evict_down_to target =
  while Hashtbl.length cache > target do
    let victim = ref None in
    Hashtbl.iter
      (fun key slot ->
        match !victim with
        | Some (_, age) when age <= slot.last_used -> ()
        | _ -> victim := Some (key, slot.last_used))
      cache;
    match !victim with
    | None -> ()
    | Some (key, _) ->
        Hashtbl.remove cache key;
        Lams_obs.Obs.incr c_evictions
  done

let find pr ~u =
  let pr0, u0, g_shift, local_shift = canonical pr ~u in
  let key = (pr0.Problem.p, pr0.Problem.k, pr0.Problem.s, pr0.Problem.l, u0) in
  Mutex.lock table_mutex;
  match Hashtbl.find_opt cache key with
  | Some slot ->
      incr tick;
      slot.last_used <- !tick;
      Mutex.unlock table_mutex;
      Lams_obs.Obs.incr c_hits;
      { entry = slot.entry; g_shift; local_shift }
  | None ->
      Mutex.unlock table_mutex;
      Lams_obs.Obs.incr c_misses;
      (* Build outside the lock so parallel fills of different problems
         never serialize; a racing double-build of the same key is
         harmless (both entries are correct, first insert wins). *)
      let entry = build_entry pr0 ~u:u0 in
      Mutex.lock table_mutex;
      (if !cap > 0 && not (Hashtbl.mem cache key) then begin
         evict_down_to (!cap - 1);
         incr tick;
         Hashtbl.add cache key { entry; last_used = !tick }
       end);
      Mutex.unlock table_mutex;
      { entry; g_shift; local_shift }

let view_of_entry entry ~g_shift ~local_shift = { entry; g_shift; local_shift }

let entry_problem (e : entry) = e.problem
let entry_u (e : entry) = e.u

let table (v : view) ~m =
  let t = v.entry.tables.(m) in
  if v.g_shift = 0 then t
  else
    match (t.Access_table.start, t.Access_table.start_local) with
    | Some g, Some sl ->
        { t with
          Access_table.start = Some (g + v.g_shift);
          start_local = Some (sl + v.local_shift) }
    | _ -> t

(* The FSM is indexed by local offset, which is invariant under
   cycle_span shifts (g_shift is a multiple of pk), so no rebasing. *)
let fsm (v : view) ~m = v.entry.fsms.(m)

let last_location (v : view) ~m =
  Option.map (fun g -> g + v.g_shift) v.entry.lasts.(m)

let g_shift (v : view) = v.g_shift

let size () =
  Mutex.lock table_mutex;
  let n = Hashtbl.length cache in
  Mutex.unlock table_mutex;
  n

let capacity () = !cap

let set_capacity n =
  Mutex.lock table_mutex;
  cap := max 0 n;
  evict_down_to !cap;
  Mutex.unlock table_mutex

let clear () =
  Mutex.lock table_mutex;
  Hashtbl.reset cache;
  (* Restart the LRU clock with the entries: a cleared cache that kept
     ticking would hand new entries [last_used] stamps incomparable with
     a later wrap or snapshot, and tests that reason about eviction
     order after [clear] would depend on everything run before them. *)
  tick := 0;
  Mutex.unlock table_mutex

let lru_tick () =
  Mutex.lock table_mutex;
  let t = !tick in
  Mutex.unlock table_mutex;
  t
