open Lams_dist

let gap_table_with_sort ~sort pr ~m =
  let locs = Start_finder.first_cycle_locations pr ~m in
  let length = Array.length locs in
  if length = 0 then Access_table.empty
  else begin
    sort locs;
    let lay = Problem.layout pr in
    let local g = Layout.local_address lay g in
    let start = locs.(0) in
    let gaps = Array.make length 0 in
    for j = 0 to length - 2 do
      gaps.(j) <- local locs.(j + 1) - local locs.(j)
    done;
    (* Wrap-around: from the cycle's last access to the first access of the
       next cycle, which sits one cycle_span later in global indices and
       hence k * s/d cells later in local memory. *)
    let next_cycle_first = start + Problem.cycle_span pr in
    gaps.(length - 1) <- local next_cycle_first - local locs.(length - 1);
    { Access_table.start = Some start;
      start_local = Some (local start);
      length;
      gaps }
  end

let gap_table pr ~m = gap_table_with_sort ~sort:Lams_sort.Sorting.for_baseline pr ~m
