(** A process-wide, capacity-bounded LRU cache of {e whole-machine}
    access plans: for one bounded section [(p, k, l, s, u)] it holds all
    [p] gap tables, offset-indexed FSMs and last locations at once —
    built through the generalized {!Shared_fsm} ([O(k + p·k/d)]) when
    [d < k] — so repeated statements over the same section (the common
    case in a [forall]-heavy program) pay table construction once per
    process instead of once per statement per processor.

    Keys are canonicalized: shifting [l] by a multiple of
    [cycle_span = pk·s/d] shifts every global index by the same amount
    and every local address by [(shift/pk)·k] while leaving offsets,
    owners and gaps untouched, so entries are keyed on
    [(p, k, s, l mod cycle_span, u - shift)] and views rebase on the way
    out. Lookups and fills are mutex-safe for parallel SPMD use; entry
    construction happens outside the lock.

    Hits, misses and evictions are {!Lams_obs.Obs} counters
    ([plan_cache.*]), visible in [lams stats --metrics]. *)

type view
(** A cache entry rebased to the caller's original [l]: read-only access
    to one processor's slice of the whole-machine plan. The arrays
    reachable through a view are shared with the cache and with other
    views — treat them as immutable. *)

(** {2 Canonicalization and entry construction}

    Exposed for external caches — the serving daemon's sharded LRU
    ({!Lams_serve}) keys entries on the canonical tuple and builds them
    through {!build_entry}, bypassing this module's single global mutex
    entirely while reusing its construction and rebase logic. *)

type entry
(** One whole-machine plan at canonical [l]: all [p] gap tables,
    offset-indexed FSMs and last locations. Immutable once built. *)

val canonicalize : Problem.t -> u:int -> Problem.t * int * int * int
(** [canonicalize pr ~u] is [(pr0, u0, g_shift, local_shift)]: the
    problem translated down to [l mod cycle_span], the correspondingly
    shifted upper bound, and the global/local rebase deltas a view needs
    on the way back out. [(pr0.p, pr0.k, pr0.s, pr0.l, u0)] is the
    cache key under which translated sections collide. *)

val build_entry : Problem.t -> u:int -> entry
(** Build the whole-machine plan for an (already canonical) problem —
    the generalized shared FSM when [d < k], per-processor tables
    otherwise. Pure; does not touch the process-wide cache. *)

val view_of_entry : entry -> g_shift:int -> local_shift:int -> view
(** Rebase an entry with the deltas from {!canonicalize} ([0]/[0] for a
    canonical query). *)

val entry_problem : entry -> Problem.t
val entry_u : entry -> int
(** The canonical problem / upper bound an entry was built for
    (log-replay and test plumbing). *)

val find : Problem.t -> u:int -> view
(** Lookup-or-build. Never raises on well-formed problems; the result is
    independent of cache state (hit, miss and eviction all yield the
    same tables — tested). *)

val table : view -> m:int -> Access_table.t
(** Processor [m]'s gap table, equal to [Kns.gap_table] on the original
    problem. Precondition: [0 <= m < p]. *)

val fsm : view -> m:int -> Fsm.t option
(** Processor [m]'s offset-indexed FSM ([None] only in the [d >= k]
    regime when the processor owns nothing). Offsets are shift-invariant,
    so this needs no rebasing. *)

val last_location : view -> m:int -> int option
(** Largest owned section element [<= u], as [Start_finder.last_location]. *)

val g_shift : view -> int
(** The global-index rebase applied to this view ([l - l mod cycle_span];
    exposed for tests). *)

val size : unit -> int
(** Number of live entries. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Clamp to [>= 0]; [0] disables caching. Evicts down immediately. *)

val clear : unit -> unit
(** Drop every entry (does not count as evictions) and reset the LRU
    clock, so [last_used] ordering after reuse never depends on history
    from before the clear. *)

val lru_tick : unit -> int
(** The LRU clock's current value: bumped on every hit and insert, [0]
    right after {!clear}. Exposed for the accounting tests. *)

val default_capacity : int
