type strategy =
  | Degenerate
  | Shared of Shared_fsm.t Lazy.t

type t = { problem : Problem.t; strategy : strategy }

let c_degenerate =
  Lams_obs.Obs.counter "auto.strategy.degenerate" ~units:"dispatches"
    ~doc:"instances classified d >= k (closed forms)"

let c_shared =
  Lams_obs.Obs.counter "auto.strategy.shared_fsm" ~units:"dispatches"
    ~doc:"instances classified gcd = 1 (shared FSM, one class of k states)"

let c_shared_general =
  Lams_obs.Obs.counter "auto.strategy.shared_fsm_general" ~units:"dispatches"
    ~doc:"instances classified 1 < d < k (shared FSM, classes of k/d states)"

let c_tables =
  Lams_obs.Obs.counter "auto.tables_built" ~units:"tables"
    ~doc:"gap tables served through the dispatcher"

(* Classification is a gcd comparison and nothing else: the shared FSM
   is built lazily on the first table request, so inspecting the
   strategy (`lams explain`) never pays the O(k) fill. *)
let create problem =
  let d = Problem.gcd problem in
  let strategy =
    if d >= problem.Problem.k then begin
      Lams_obs.Obs.incr c_degenerate;
      Degenerate
    end
    else begin
      Lams_obs.Obs.incr (if d = 1 then c_shared else c_shared_general);
      Shared
        (lazy
          (match Shared_fsm.build problem with
          | Some shared -> shared
          | None ->
              invalid_arg
                "Auto: Shared_fsm.build refused an instance classified \
                 d < k (violates the d < k invariant: the shared FSM \
                 exists exactly when gcd(s,pk) < k)"))
    end
  in
  { problem; strategy }

let strategy t = t.strategy

let degenerate_table pr ~m =
  (* d >= k: at most one reachable offset per window. *)
  match (Start_finder.find pr ~m).Start_finder.start with
  | None -> Access_table.empty
  | Some start ->
      let lay = Problem.layout pr in
      Access_table.singleton ~start
        ~start_local:(Lams_dist.Layout.local_address lay start)
        ~gap:(pr.Problem.k * pr.Problem.s / Problem.gcd pr)

let gap_table t ~m =
  Lams_obs.Obs.incr c_tables;
  match t.strategy with
  | Degenerate -> degenerate_table t.problem ~m
  | Shared shared -> Shared_fsm.gap_table (Lazy.force shared) ~m

let strategy_name t =
  match t.strategy with
  | Degenerate -> "degenerate (d >= k)"
  | Shared _ ->
      if Problem.gcd t.problem = 1 then "shared FSM (gcd = 1)"
      else "shared FSM (1 < d < k)"
