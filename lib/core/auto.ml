type strategy =
  | Degenerate
  | Shared of Shared_fsm.t
  | General

type t = { problem : Problem.t; strategy : strategy }

let create problem =
  let d = Problem.gcd problem in
  let strategy =
    if d >= problem.Problem.k then Degenerate
    else if d = 1 then begin
      match Shared_fsm.build problem with
      | Some shared -> Shared shared
      | None -> assert false (* d = 1 *)
    end
    else General
  in
  { problem; strategy }

let strategy t = t.strategy

let degenerate_table pr ~m =
  (* d >= k: at most one reachable offset per window. *)
  match (Start_finder.find pr ~m).Start_finder.start with
  | None -> Access_table.empty
  | Some start ->
      let lay = Problem.layout pr in
      Access_table.singleton ~start
        ~start_local:(Lams_dist.Layout.local_address lay start)
        ~gap:(pr.Problem.k * pr.Problem.s / Problem.gcd pr)

let gap_table t ~m =
  match t.strategy with
  | Degenerate -> degenerate_table t.problem ~m
  | Shared shared -> Shared_fsm.gap_table shared ~m
  | General -> Kns.gap_table t.problem ~m

let strategy_name t =
  match t.strategy with
  | Degenerate -> "degenerate (d >= k)"
  | Shared _ -> "shared FSM (gcd = 1)"
  | General -> "general lattice walk"
