open Lams_numeric
open Lams_dist

type t = { p : int; k : int; l : int; s : int }

let make ~p ~k ~l ~s =
  if p < 1 then invalid_arg "Problem.make: p < 1";
  if k < 1 then invalid_arg "Problem.make: k < 1";
  if l < 0 then invalid_arg "Problem.make: l < 0";
  if s < 1 then invalid_arg "Problem.make: s < 1";
  { p; k; l; s }

let of_section (lay : Layout.t) section =
  if Section.is_empty section then
    invalid_arg "Problem.of_section: empty section";
  let norm = Section.normalize section in
  make ~p:lay.Layout.p ~k:lay.Layout.k ~l:norm.Section.lo
    ~s:norm.Section.stride

let layout t = Layout.create ~p:t.p ~k:t.k
let row_len t = t.p * t.k
let gcd t = Euclid.gcd t.s (row_len t)
let cycle_indices t = row_len t / gcd t
let cycle_span t = t.s * cycle_indices t

let pp ppf t =
  Format.fprintf ppf "p=%d k=%d l=%d s=%d" t.p t.k t.l t.s
