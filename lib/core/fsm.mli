(** The finite-state-machine view of the access pattern (§2, after
    Chatterjee et al.) and the offset-indexed tables required by node-code
    shape 8(d).

    States are the {e local offsets} [0 .. k-1] of a processor's block.
    Reachable states carry the local-memory gap to the next access
    ([delta]) and the successor state ([next_offset]) — the paper's
    modified lines 36–38, which index [AM] by local offset instead of by
    access order. Transitions depend only on [(p, k, s)]; the start state
    additionally depends on [l] and [m]. *)

type t = {
  start_offset : int;  (** local offset of the start location, [start mod k] *)
  delta : int array;  (** size [k]; [delta.(o)] = gap leaving state [o];
                          [min_int] marks unreachable states *)
  next_offset : int array;  (** size [k]; successor state; [-1] when
                                unreachable *)
  length : int;  (** number of reachable states *)
}

val unreachable_delta : int
(** The sentinel stored in [delta] for unreachable states ([min_int]). *)

val build : Problem.t -> m:int -> t option
(** [None] iff the processor owns no section element.
    @raise Invalid_argument unless [0 <= m < p]. *)

val reachable : t -> int -> bool
(** Is local offset [o] a state of the machine? *)

val walk : t -> steps:int -> int array
(** Gap sequence of [steps] transitions starting from [start_offset]
    (test helper: must reproduce the [AM] table cyclically). *)

val pp : Format.formatter -> t -> unit
(** Transition-diagram rendering, one [state -> state (gap g)] line per
    reachable state. *)
