(** Strategy dispatch: pick the cheapest correct table-construction path
    for an instance, the way a production runtime would.

    Chatterjee et al. "describe several special cases that can be handled
    more efficiently", detected from the same quantities the general
    algorithm computes anyway (§6.1); this module packages that dispatch:

    - [d >= k] (in particular [pk | s]): every processor's table has
      period 0 or 1 — closed forms, no basis, no walk;
    - [d < k]: transition tables are shared across processors — one
      [O(k/d)]-state residue class is built once and replayed per
      processor ({!Shared_fsm}). With [d = 1] that is the classic §6.1
      whole-table sharing; with [1 < d < k] it is the generalized form.

    Classification itself is side-effect-free: [create] only compares
    [gcd(s, pk)] against [k], and the shared FSM is built lazily on the
    first {!gap_table} call, so strategy inspection ([lams explain])
    costs [O(log)], not [O(k)].

    ({!Hiranandani} is {e not} in the chain: on its domain it is
    asymptotically equal to and practically slower than the lattice walk —
    see the ablation bench — so a dispatcher gains nothing from it.) *)

type strategy =
  | Degenerate  (** [d >= k]: periods 0/1 everywhere *)
  | Shared of Shared_fsm.t Lazy.t
      (** [d < k]: shared tables, built on first use *)

type t
(** A dispatcher for one problem instance; reusable across processors. *)

val create : Problem.t -> t
(** Classifies in [O(log)]; never builds tables. *)

val strategy : t -> strategy

val gap_table : t -> m:int -> Access_table.t
(** Identical result to [Kns.gap_table] (tested), via the cheapest path.
    First call on a [Shared] instance forces the shared-table build. *)

val strategy_name : t -> string
