(** Strategy dispatch: pick the cheapest correct table-construction path
    for an instance, the way a production runtime would.

    Chatterjee et al. "describe several special cases that can be handled
    more efficiently", detected from the same quantities the general
    algorithm computes anyway (§6.1); this module packages that dispatch:

    - [d >= k] (in particular [pk | s]): every processor's table has
      period 0 or 1 — closed forms, no basis, no walk;
    - [gcd(s, pk) = 1]: transition tables are shared across processors —
      build once, per-processor start only ({!Shared_fsm});
    - otherwise: the general lattice walk ({!Kns}).

    ({!Hiranandani} is {e not} in the chain: on its domain it is
    asymptotically equal to and practically slower than the lattice walk —
    see the ablation bench — so a dispatcher gains nothing from it.) *)

type strategy =
  | Degenerate  (** [d >= k]: periods 0/1 everywhere *)
  | Shared of Shared_fsm.t  (** [d = 1]: tables built once *)
  | General  (** the lattice walk per processor *)

type t
(** A dispatcher for one problem instance; reusable across processors. *)

val create : Problem.t -> t
(** Classifies once ([O(k + log)] in the [Shared] case, [O(log)]
    otherwise). *)

val strategy : t -> strategy

val gap_table : t -> m:int -> Access_table.t
(** Identical result to [Kns.gap_table] (tested), via the cheapest path. *)

val strategy_name : t -> string
