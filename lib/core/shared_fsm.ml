type t = {
  problem : Problem.t;
  delta : int array;
  next_offset : int array;
}

let c_builds =
  Lams_obs.Obs.counter "shared_fsm.builds" ~units:"builds"
    ~doc:"shared transition tables built (once per gcd = 1 instance)"

let c_tables =
  Lams_obs.Obs.counter "shared_fsm.tables_built" ~units:"tables"
    ~doc:"per-processor gap tables replayed from a shared FSM"

let build pr =
  if Problem.gcd pr <> 1 then None
  else begin
    Lams_obs.Obs.incr c_builds;
    (* With d = 1 every processor reaches all k states and processor 0 is
       never empty; build the tables once from processor 0. *)
    match Fsm.build pr ~m:0 with
    | None -> assert false (* d = 1 means every processor owns elements *)
    | Some fsm ->
        assert (fsm.Fsm.length = pr.Problem.k);
        Some
          { problem = pr;
            delta = fsm.Fsm.delta;
            next_offset = fsm.Fsm.next_offset }
  end

let start t ~m =
  match (Start_finder.find t.problem ~m).Start_finder.start with
  | Some g -> (g, g mod t.problem.Problem.k)
  | None -> assert false (* d = 1: every processor owns elements *)

let gap_table t ~m =
  Lams_obs.Obs.incr c_tables;
  let g, state0 = start t ~m in
  let k = t.problem.Problem.k in
  let gaps = Array.make k 0 in
  let state = ref state0 in
  for j = 0 to k - 1 do
    gaps.(j) <- t.delta.(!state);
    state := t.next_offset.(!state)
  done;
  let lay = Problem.layout t.problem in
  { Access_table.start = Some g;
    start_local = Some (Lams_dist.Layout.local_address lay g);
    length = k;
    gaps }

let fsm_for t ~m =
  let _, state0 = start t ~m in
  { Fsm.start_offset = state0;
    delta = t.delta;
    next_offset = t.next_offset;
    length = t.problem.Problem.k }
