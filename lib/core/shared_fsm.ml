open Lams_lattice

type t = {
  problem : Problem.t;
  d : int;
  basis : Basis.t;
  delta : int array;
  next_offset : int array;
  filled : bool array;
  fill_mutex : Mutex.t;
}

let c_builds =
  Lams_obs.Obs.counter "shared_fsm.builds" ~units:"builds"
    ~doc:"shared transition tables built (once per d < k instance)"

let c_class_fills =
  Lams_obs.Obs.counter "shared_fsm.class_fills" ~units:"classes"
    ~doc:"residue classes of k/d states filled into a shared table"

let c_tables =
  Lams_obs.Obs.counter "shared_fsm.tables_built" ~units:"tables"
    ~doc:"per-processor gap tables replayed from a shared FSM"

(* Fill the states of residue class [c]: the local offsets o = c, c+d, ...
   < k. Every one of them is a reachable state of any processor whose
   window offsets fall in class c (Start_finder visits each multiple of d
   in the window), and Theorem 3's step choice depends only on the local
   offset, so a single linear pass — the one lattice walk of §6.1,
   generalized — serves every such processor. The mutex makes concurrent
   fills from parallel SPMD domains safe: readers call [fill_class]
   before replaying, and the acquire/release pair orders the table writes
   before their loads. *)
let fill_class t c =
  Mutex.lock t.fill_mutex;
  if not t.filled.(c) then begin
    Lams_obs.Obs.incr c_class_fills;
    let k = t.problem.Problem.k in
    let o = ref c in
    while !o < k do
      let step = Basis.next_step t.basis ~proc:0 ~offset:!o in
      t.delta.(!o) <- Basis.gap t.basis step;
      t.next_offset.(!o) <- !o + step.Point.b;
      o := !o + t.d
    done;
    t.filled.(c) <- true
  end;
  Mutex.unlock t.fill_mutex

let build pr =
  match Basis.construct ~p:pr.Problem.p ~k:pr.Problem.k ~s:pr.Problem.s with
  | None -> None (* d >= k: degenerate closed forms, no FSM needed *)
  | Some basis ->
      Lams_obs.Obs.incr c_builds;
      let k = pr.Problem.k in
      let d = Problem.gcd pr in
      let t =
        { problem = pr;
          d;
          basis;
          delta = Array.make k Fsm.unreachable_delta;
          next_offset = Array.make k (-1);
          filled = Array.make d false;
          fill_mutex = Mutex.create () }
      in
      (* Processor 0's class is filled eagerly; other classes (they exist
         only when d does not divide k) are filled on first use. *)
      fill_class t (pr.Problem.l mod d);
      Some t

(* A shared FSM only exists when d = gcd(s, pk) < k, and then every
   window contains at least one reachable offset (the window spans k
   consecutive offsets and reachable offsets sit d < k apart), so an
   empty Start_finder result can only mean the invariant was broken. *)
let empty_window_error fn =
  invalid_arg
    (fn
    ^ ": processor window holds no access, which is impossible under the \
       d < k invariant (gcd(s,pk) < k implies every window holds >= 1 \
       element)")

let start t ~m =
  match (Start_finder.find t.problem ~m).Start_finder.start with
  | Some g -> (g, g mod t.problem.Problem.k)
  | None -> empty_window_error "Shared_fsm.start"

let gap_table t ~m =
  Lams_obs.Obs.incr c_tables;
  let { Start_finder.start; length } = Start_finder.find t.problem ~m in
  match start with
  | None -> empty_window_error "Shared_fsm.gap_table"
  | Some g ->
      let state0 = g mod t.problem.Problem.k in
      fill_class t (state0 mod t.d);
      let gaps = Array.make length 0 in
      let state = ref state0 in
      for j = 0 to length - 1 do
        gaps.(j) <- t.delta.(!state);
        state := t.next_offset.(!state)
      done;
      let lay = Problem.layout t.problem in
      { Access_table.start = Some g;
        start_local = Some (Lams_dist.Layout.local_address lay g);
        length;
        gaps }

let fsm_for t ~m =
  let { Start_finder.start; length } = Start_finder.find t.problem ~m in
  match start with
  | None -> empty_window_error "Shared_fsm.fsm_for"
  | Some g ->
      let state0 = g mod t.problem.Problem.k in
      fill_class t (state0 mod t.d);
      { Fsm.start_offset = state0;
        delta = t.delta;
        next_offset = t.next_offset;
        length }
