(** Cross-validation utilities shared by the test suite and the CLI's
    [verify] subcommand: run every algorithm on the same instance and
    diff the results against the brute-force reference. *)

type mismatch = {
  m : int;  (** processor *)
  algorithm : string;
  expected : Access_table.t;  (** brute-force result *)
  got : Access_table.t;
}

val check_instance : Problem.t -> mismatch list
(** Runs Kns, the Auto dispatcher, Chatterjee and (when applicable)
    Hiranandani on every processor of the instance and returns all
    disagreements with {!Brute.gap_table} (empty list = fully
    consistent). Also checks the table-free enumerator against the
    expected address stream and the FSM walk against the [AM] table. *)

val check_random :
  seed:int64 -> trials:int -> max_p:int -> max_k:int -> max_s:int ->
  (Problem.t * mismatch) option
(** Random instances until a mismatch is found; [None] = all passed. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
