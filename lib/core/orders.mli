(** Alternative enumeration orders from the related work (§7).

    Gupta et al.'s {e virtual-cyclic} scheme assigns one virtual processor
    per offset class: elements sharing an offset are accessed in
    increasing index order, but the order {e across} offsets follows the
    offsets, not the indices. That order is cheap to produce yet wrong
    for loops that must see indices increase — which is exactly why the
    paper's increasing-order enumeration matters. This module materialises
    both orders so tests and ablations can compare them. *)

val increasing : Problem.t -> m:int -> u:int -> int array
(** Owned elements of [A(l:u:s)] in increasing index order (the paper's
    order; produced by the table-free enumerator). *)

val virtual_cyclic : Problem.t -> m:int -> u:int -> int array
(** The same element {e set}, ordered by (ascending offset class,
    ascending index) — Gupta et al.'s virtual-cyclic visit order. *)

val same_set : int array -> int array -> bool
(** Order-insensitive equality (test helper). *)

val is_increasing : int array -> bool
