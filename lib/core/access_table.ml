type t = {
  start : int option;
  start_local : int option;
  length : int;
  gaps : int array;
}

let empty = { start = None; start_local = None; length = 0; gaps = [||] }

let singleton ~start ~start_local ~gap =
  { start = Some start; start_local = Some start_local; length = 1; gaps = [| gap |] }

let equal t1 t2 =
  t1.start = t2.start && t1.start_local = t2.start_local
  && t1.length = t2.length && t1.gaps = t2.gaps

let local_addresses t ~count =
  if count = 0 then [||]
  else
    match t.start_local with
    | None -> invalid_arg "Access_table.local_addresses: empty table"
    | Some first ->
        let out = Array.make count first in
        for j = 1 to count - 1 do
          out.(j) <- out.(j - 1) + t.gaps.((j - 1) mod t.length)
        done;
        out

let global_step_sum t = Array.fold_left ( + ) 0 t.gaps

type indexed = {
  i_start : int;
  i_length : int;
  i_period_sum : int;
  i_prefix : int array;  (* i_prefix.(i) = sum of gaps.(0..i-1) *)
}

let index t =
  match t.start_local with
  | None -> invalid_arg "Access_table.index: empty table"
  | Some i_start ->
      let i_prefix = Array.make (t.length + 1) 0 in
      for i = 0 to t.length - 1 do
        i_prefix.(i + 1) <- i_prefix.(i) + t.gaps.(i)
      done;
      { i_start;
        i_length = t.length;
        i_period_sum = i_prefix.(t.length);
        i_prefix }

let nth_local it j =
  if j < 0 then invalid_arg "Access_table.nth_local: negative index";
  it.i_start
  + (j / it.i_length * it.i_period_sum)
  + it.i_prefix.(j mod it.i_length)

let pp ppf t =
  match t.start with
  | None -> Format.pp_print_string ppf "<no elements>"
  | Some g ->
      Format.fprintf ppf "start=%d local=%d AM=[%s]" g
        (Option.get t.start_local)
        (String.concat "; " (Array.to_list (Array.map string_of_int t.gaps)))
