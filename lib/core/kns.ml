open Lams_lattice
open Lams_dist

type stats = { points_visited : int; eq1 : int; eq2 : int; eq3 : int }

let basis (pr : Problem.t) =
  Basis.construct ~p:pr.Problem.p ~k:pr.Problem.k ~s:pr.Problem.s

let singleton_gap (pr : Problem.t) =
  (* Line 16: with one reachable offset, consecutive owned elements are one
     full pattern period apart, which is k*s/d local cells. *)
  pr.Problem.k * pr.Problem.s / Problem.gcd pr

let iter_gaps pr ~m ~f =
  let ({ Start_finder.start; length } as found) = Start_finder.find pr ~m in
  (match start with
  | None -> ()
  | Some start ->
      let pk = Problem.row_len pr in
      if length = 1 then
        let off = start mod pk in
        f ~idx:0 ~row_offset:off ~gap:(singleton_gap pr) ~next_row_offset:off
      else begin
        let b =
          match basis pr with
          | Some b -> b
          | None -> assert false (* length >= 2 implies d < k *)
        in
        let offset = ref (start mod pk) in
        for idx = 0 to length - 1 do
          let step = Basis.next_step b ~proc:m ~offset:!offset in
          let next = !offset + step.Point.b in
          f ~idx ~row_offset:!offset ~gap:(Basis.gap b step)
            ~next_row_offset:next;
          offset := next
        done
      end);
  found

let gap_table_with_stats pr ~m =
  let { Start_finder.start; length } = Start_finder.find pr ~m in
  match start with
  | None -> (Access_table.empty, { points_visited = 0; eq1 = 0; eq2 = 0; eq3 = 0 })
  | Some start ->
      let lay = Problem.layout pr in
      let start_local = Layout.local_address lay start in
      if length = 1 then
        ( Access_table.singleton ~start ~start_local ~gap:(singleton_gap pr),
          { points_visited = 2; eq1 = 0; eq2 = 0; eq3 = 0 } )
      else begin
        let b =
          match basis pr with Some b -> b | None -> assert false
        in
        let gaps = Array.make length 0 in
        let eq1 = ref 0 and eq2 = ref 0 and eq3 = ref 0 in
        let r = b.Basis.r and l_vec = b.Basis.l in
        let offset = ref (start mod Problem.row_len pr) in
        for idx = 0 to length - 1 do
          let step = Basis.next_step b ~proc:m ~offset:!offset in
          gaps.(idx) <- Basis.gap b step;
          (if Point.equal step r then incr eq1
           else if Point.equal step (Point.neg l_vec) then incr eq2
           else incr eq3);
          offset := !offset + step.Point.b
        done;
        ( { Access_table.start = Some start;
            start_local = Some start_local;
            length;
            gaps },
          { points_visited = length + 1 + !eq3;
            eq1 = !eq1;
            eq2 = !eq2;
            eq3 = !eq3 } )
      end

let gap_table pr ~m = fst (gap_table_with_stats pr ~m)
