open Lams_lattice
open Lams_dist

type stats = { points_visited : int; eq1 : int; eq2 : int; eq3 : int }

(* Observability (all no-ops until [Lams_obs.Obs.set_enabled true]). *)
let c_tables =
  Lams_obs.Obs.counter "kns.tables_built" ~units:"tables"
    ~doc:"AM tables built by the lattice walk"

let c_walks =
  Lams_obs.Obs.counter "kns.walks" ~units:"walks"
    ~doc:"raw gap walks (iter_gaps), incl. FSM table construction"

let c_points =
  Lams_obs.Obs.counter "kns.points_visited" ~units:"points"
    ~doc:"lattice points examined (Theorem 3 bounds this by 2k+1 per table)"

let c_eq1 =
  Lams_obs.Obs.counter "kns.eq1_steps" ~units:"steps" ~doc:"steps by R"

let c_eq2 =
  Lams_obs.Obs.counter "kns.eq2_steps" ~units:"steps" ~doc:"steps by -L"

let c_eq3 =
  Lams_obs.Obs.counter "kns.eq3_steps" ~units:"steps" ~doc:"steps by R-L"

let d_length =
  Lams_obs.Obs.distribution "kns.table_length" ~units:"entries"
    ~doc:"AM table period (<= k)"

let record_stats st =
  Lams_obs.Obs.incr c_tables;
  Lams_obs.Obs.add c_points st.points_visited;
  Lams_obs.Obs.add c_eq1 st.eq1;
  Lams_obs.Obs.add c_eq2 st.eq2;
  Lams_obs.Obs.add c_eq3 st.eq3

let basis (pr : Problem.t) =
  Basis.construct ~p:pr.Problem.p ~k:pr.Problem.k ~s:pr.Problem.s

let singleton_gap (pr : Problem.t) =
  (* Line 16: with one reachable offset, consecutive owned elements are one
     full pattern period apart, which is k*s/d local cells. *)
  pr.Problem.k * pr.Problem.s / Problem.gcd pr

let iter_gaps pr ~m ~f =
  Lams_obs.Obs.incr c_walks;
  let ({ Start_finder.start; length } as found) = Start_finder.find pr ~m in
  (match start with
  | None -> ()
  | Some start ->
      let pk = Problem.row_len pr in
      if length = 1 then
        let off = start mod pk in
        f ~idx:0 ~row_offset:off ~gap:(singleton_gap pr) ~next_row_offset:off
      else begin
        let b =
          match basis pr with
          | Some b -> b
          | None ->
              invalid_arg
                "Kns.iter_gaps: no basis for a window with >= 2 accesses \
                 (violates the d < k invariant: length >= 2 implies \
                 gcd(s,pk) < k)"
        in
        let offset = ref (start mod pk) in
        for idx = 0 to length - 1 do
          let step = Basis.next_step b ~proc:m ~offset:!offset in
          let next = !offset + step.Point.b in
          f ~idx ~row_offset:!offset ~gap:(Basis.gap b step)
            ~next_row_offset:next;
          offset := next
        done
      end);
  found

let gap_table_with_stats pr ~m =
  let { Start_finder.start; length } = Start_finder.find pr ~m in
  match start with
  | None ->
      let st = { points_visited = 0; eq1 = 0; eq2 = 0; eq3 = 0 } in
      record_stats st;
      Lams_obs.Obs.observe d_length 0.;
      (Access_table.empty, st)
  | Some start ->
      let lay = Problem.layout pr in
      let start_local = Layout.local_address lay start in
      if length = 1 then begin
        let st = { points_visited = 2; eq1 = 0; eq2 = 0; eq3 = 0 } in
        record_stats st;
        Lams_obs.Obs.observe d_length 1.;
        (Access_table.singleton ~start ~start_local ~gap:(singleton_gap pr), st)
      end
      else begin
        let b =
          match basis pr with
          | Some b -> b
          | None ->
              invalid_arg
                "Kns.gap_table: no basis for a window with >= 2 accesses \
                 (violates the d < k invariant: length >= 2 implies \
                 gcd(s,pk) < k)"
        in
        let gaps = Array.make length 0 in
        let eq1 = ref 0 and eq2 = ref 0 and eq3 = ref 0 in
        let r = b.Basis.r and l_vec = b.Basis.l in
        let offset = ref (start mod Problem.row_len pr) in
        for idx = 0 to length - 1 do
          let step = Basis.next_step b ~proc:m ~offset:!offset in
          gaps.(idx) <- Basis.gap b step;
          (if Point.equal step r then incr eq1
           else if Point.equal step (Point.neg l_vec) then incr eq2
           else incr eq3);
          offset := !offset + step.Point.b
        done;
        let st =
          { points_visited = length + 1 + !eq3;
            eq1 = !eq1;
            eq2 = !eq2;
            eq3 = !eq3 }
        in
        record_stats st;
        Lams_obs.Obs.observe d_length (float_of_int length);
        ( { Access_table.start = Some start;
            start_local = Some start_local;
            length;
            gaps },
          st )
      end

let gap_table pr ~m = fst (gap_table_with_stats pr ~m)
