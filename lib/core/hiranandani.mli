(** The special-case linear algorithm of Hiranandani, Kennedy,
    Mellor-Crummey & Sethi (ICS'94), valid when [s mod pk < k] (§1, §7).

    Under that condition each [+s] hop advances the row-offset by
    [σ = s mod pk < k], so a processor's window is traversed left-to-right
    in offset order and the number of hops needed to re-enter the window
    after leaving it is a closed form — no sorting and no lattice basis
    required. Outside its precondition the method does not apply. *)

val applicable : Problem.t -> bool
(** [s mod (p*k) < k]. *)

val gap_table : Problem.t -> m:int -> Access_table.t
(** Produces a result identical to [Kns.gap_table] on its domain (checked
    by the test suite).
    @raise Invalid_argument if [not (applicable pr)] or [m] out of
    range. *)
