open Lams_numeric

type t = { start : int option; length : int }

(* Iterate over the reachable offsets of processor m's window. For each,
   pass the smallest non-negative j with s*j ≡ i (mod pk) to [f]. The
   Bézout coefficient advances j by a constant (mod pk/d) as i advances by
   d, so the loop body is conditional-free. *)
let scan_window (pr : Problem.t) ~m f =
  if m < 0 || m >= pr.Problem.p then invalid_arg "Start_finder: bad processor";
  let pk = Problem.row_len pr in
  let s = pr.Problem.s and l = pr.Problem.l and k = pr.Problem.k in
  let d, x, _ = Euclid.egcd s pk in
  let period = pk / d in
  let lo = (k * m) - l in
  let hi = lo + k in
  let i0 = Diophantine.first_multiple_at_least ~d lo in
  if i0 < hi then begin
    let x_unit = Modular.emod x period in
    (* j for the first solvable offset. *)
    let j = ref (Modular.emod (x * (i0 / d)) period) in
    let i = ref i0 in
    while !i < hi do
      f ~offset_in_window:(!i - lo) ~j:!j;
      j := !j + x_unit;
      if !j >= period then j := !j - period;
      i := !i + d
    done
  end

let find pr ~m =
  let best = ref max_int and count = ref 0 in
  scan_window pr ~m (fun ~offset_in_window:_ ~j ->
      incr count;
      if j < !best then best := j);
  if !count = 0 then { start = None; length = 0 }
  else { start = Some (pr.Problem.l + (pr.Problem.s * !best)); length = !count }

let first_cycle_locations pr ~m =
  let acc = ref [] and count = ref 0 in
  scan_window pr ~m (fun ~offset_in_window:_ ~j ->
      incr count;
      acc := (pr.Problem.l + (pr.Problem.s * j)) :: !acc);
  let out = Array.make !count 0 in
  List.iteri (fun idx loc -> out.(!count - 1 - idx) <- loc) !acc;
  out

let last_location pr ~m ~u =
  let l = pr.Problem.l and s = pr.Problem.s in
  if u < l then None
  else begin
    let jcap = (u - l) / s in
    let period = Problem.cycle_indices pr in
    let best = ref (-1) in
    scan_window pr ~m (fun ~offset_in_window:_ ~j ->
        if j <= jcap then begin
          let jmax = j + (period * ((jcap - j) / period)) in
          if jmax > !best then best := jmax
        end);
    if !best < 0 then None else Some (l + (s * !best))
  end

let count_owned pr ~m ~u =
  let l = pr.Problem.l and s = pr.Problem.s in
  if u < l then 0
  else begin
    let jcap = (u - l) / s in
    let period = Problem.cycle_indices pr in
    let total = ref 0 in
    scan_window pr ~m (fun ~offset_in_window:_ ~j ->
        if j <= jcap then total := !total + (((jcap - j) / period) + 1));
    !total
  end
