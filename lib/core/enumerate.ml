open Lams_lattice
open Lams_dist

type state =
  | Singleton of { stride_global : int; stride_local : int }
      (** only one reachable offset: constant hop *)
  | Walk of { basis : Basis.t; m : int }

type cursor = { global : int; local : int; state : state }

let start pr ~m =
  let { Start_finder.start; length } = Start_finder.find pr ~m in
  match start with
  | None -> None
  | Some g ->
      let lay = Problem.layout pr in
      let local = Layout.local_address lay g in
      let state =
        if length = 1 then
          Singleton
            { stride_global = Problem.cycle_span pr;
              stride_local = pr.Problem.k * pr.Problem.s / Problem.gcd pr }
        else begin
          match Kns.basis pr with
          | Some basis -> Walk { basis; m }
          | None ->
              invalid_arg
                "Enumerate.start: no basis for a window with >= 2 accesses \
                 (violates the d < k invariant: length >= 2 implies \
                 gcd(s,pk) < k)"
        end
      in
      Some { global = g; local; state }

let global c = c.global
let local c = c.local

let next c =
  match c.state with
  | Singleton { stride_global; stride_local } ->
      { c with
        global = c.global + stride_global;
        local = c.local + stride_local }
  | Walk { basis; m } ->
      let pk = basis.Basis.p * basis.Basis.k in
      let offset = c.global mod pk in
      let step = Basis.next_step basis ~proc:m ~offset in
      let index_delta =
        (* The step's section-index advance: (pk*a + b) / s. *)
        ((pk * step.Point.a) + step.Point.b) / basis.Basis.s
      in
      { c with
        global = c.global + (index_delta * basis.Basis.s);
        local = c.local + Basis.gap basis step }

let seq pr ~m ~u =
  let rec from = function
    | Some c when c.global <= u -> fun () -> Seq.Cons ((c.global, c.local), from (Some (next c)))
    | _ -> Seq.empty
  in
  from (start pr ~m)

let iter_bounded pr ~m ~u ~f =
  (* Allocation-free fast path: the Theorem 3 tests inlined over mutable
     cursors — the loop shape the paper's §6.2 envisions a compiler
     emitting when it keeps only R and L. *)
  match Start_finder.find pr ~m with
  | { Start_finder.start = None; _ } -> ()
  | { Start_finder.start = Some start; length } ->
      let lay = Problem.layout pr in
      let global = ref start and local = ref (Layout.local_address lay start) in
      if length = 1 then begin
        let dg = Problem.cycle_span pr
        and dl = pr.Problem.k * pr.Problem.s / Problem.gcd pr in
        while !global <= u do
          f !global !local;
          global := !global + dg;
          local := !local + dl
        done
      end
      else begin
        let b =
          match Kns.basis pr with
          | Some b -> b
          | None ->
              invalid_arg
                "Enumerate.iter_bounded: no basis for a window with >= 2 \
                 accesses (violates the d < k invariant: length >= 2 \
                 implies gcd(s,pk) < k)"
        in
        let k = pr.Problem.k and s = pr.Problem.s in
        let pk = Problem.row_len pr in
        let window_lo = m * k and window_hi = (m + 1) * k in
        let r = b.Basis.r and l_vec = b.Basis.l in
        let rb = r.Point.b and lb = l_vec.Point.b in
        let r_gap = Point.memory_gap ~k r
        and l_gap = -Point.memory_gap ~k l_vec in
        let rl_gap = r_gap + l_gap in
        (* Global-index advance of each step: index delta times stride. *)
        let r_idx = ((pk * r.Point.a) + rb) / s in
        let l_idx = -(((pk * l_vec.Point.a) + lb) / s) in
        let offset = ref (start mod pk) in
        while !global <= u do
          f !global !local;
          if !offset + rb < window_hi then begin
            offset := !offset + rb;
            global := !global + (r_idx * s);
            local := !local + r_gap
          end
          else if !offset - lb >= window_lo then begin
            offset := !offset - lb;
            global := !global + (l_idx * s);
            local := !local + l_gap
          end
          else begin
            offset := !offset + rb - lb;
            global := !global + ((r_idx + l_idx) * s);
            local := !local + rl_gap
          end
        done
      end
