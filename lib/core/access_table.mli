(** The result every access-sequence algorithm produces: the processor's
    starting location and the periodic table of local memory gaps
    (the paper's [AM] table).

    If [start = Some g], processor [m]'s accesses in increasing
    global-index order are [g = g₀ < g₁ < g₂ < …] and the local addresses
    satisfy [local(g_{j+1}) = local(g_j) + gaps.(j mod length)]. *)

type t = {
  start : int option;  (** global index of the first owned element; [None]
                           iff the processor owns no section element *)
  start_local : int option;  (** its packed local address *)
  length : int;  (** the gap table's period, [0] iff [start = None] *)
  gaps : int array;  (** the [AM] table; [Array.length gaps = length] *)
}

val empty : t
(** The no-elements result. *)

val singleton : start:int -> start_local:int -> gap:int -> t
(** Period-1 result (the paper's lines 15–17 special case). *)

val equal : t -> t -> bool

val local_addresses : t -> count:int -> int array
(** First [count] local addresses in access order.
    @raise Invalid_argument if [count > 0] on an empty table. *)

val global_step_sum : t -> int
(** Sum of one period of gaps — must equal [k * cycle_span / row_len], the
    local distance covered by one full period (an invariant the tests
    exercise). *)

type indexed
(** A table augmented with gap prefix sums for O(1) random access. *)

val index : t -> indexed
(** One O(length) pass. @raise Invalid_argument on an empty table. *)

val nth_local : indexed -> int -> int
(** [nth_local it j]: local address of the [j]-th access (0-based) in
    O(1): [start_local + (j / length) * period_sum + prefix (j mod
    length)]. Matches [local_addresses] element-wise (tested).
    @raise Invalid_argument if [j < 0]. *)

val pp : Format.formatter -> t -> unit
