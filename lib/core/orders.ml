let increasing pr ~m ~u =
  Enumerate.seq pr ~m ~u |> Seq.map fst |> Array.of_seq

let virtual_cyclic pr ~m ~u =
  (* One congruence class per reachable offset, ascending offset; within a
     class indices ascend with step cycle_span. *)
  let span = Problem.cycle_span pr in
  let firsts = Start_finder.first_cycle_locations pr ~m in
  let out = ref [] in
  Array.iter
    (fun first ->
      let g = ref first in
      while !g <= u do
        out := !g :: !out;
        g := !g + span
      done)
    firsts;
  let a = Array.of_list (List.rev !out) in
  a

let same_set a b =
  let sa = List.sort compare (Array.to_list a)
  and sb = List.sort compare (Array.to_list b) in
  sa = sb

let is_increasing a =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i - 1) < a.(i) && go (i + 1)) in
  n <= 1 || go 1
