(** Zipf-skewed load generator for the daemon ([lams loadgen]).

    [clients] threads each open one connection and issue synchronous
    queries whose keys are Zipf-ranked over [keys] distinct canonical
    problems: rank 0 is the hottest. The rank→request mapping is a pure
    hash ({!request_of_rank}), so two runs with the same config replay
    the same key population — which is what makes the warm-restart check
    meaningful — while per-client {!Lams_util.Prng} streams keep the
    rank {e sequence} reproducible from [seed].

    Hits are counted client-side from the digest hit flags, so the
    report needs no server cooperation beyond the protocol itself. *)

type config = {
  clients : int;
  requests : int;  (** total across all clients *)
  keys : int;  (** distinct ranks the Zipf sampler draws from *)
  theta : float;  (** Zipf exponent; [1.2] is the default skew *)
  sched_frac : float;  (** fraction of ranks mapped to schedule/redist
                           queries instead of plan queries *)
  seed : int;
}

val default_config : config
(** 8 clients, 20_000 requests, 20_000 keys, theta 1.2, sched_frac 0.25,
    seed 42. *)

type report = {
  sent : int;
  answered : int;  (** digest replies (plan, schedule or redistribution) *)
  hits : int;
  misses : int;
  shed : int;  (** [Overloaded] replies *)
  errors : int;  (** [Error] replies, undecodable frames, dead sockets *)
  wall_s : float;
  throughput : float;  (** answered replies per second *)
  p50_us : float;  (** over all answered requests *)
  p95_us : float;
  p95_hit_us : float;  (** over cache-hit requests only; [0.] if none *)
  hit_rate : float;  (** hits / answered *)
  time_to_target_s : float option;
      (** when the trailing-window hit rate first reached the target;
          [None] if it never did *)
}

val request_of_rank : config -> int -> Wire.request
(** Deterministic in [(config.keys, config.sched_frac, rank)]; always a
    [Plan], [Schedule] or [Redist] request that the daemon accepts. *)

val run : ?target_hit_rate:float -> config -> Server.address -> report
(** Run the workload against a listening daemon ([target_hit_rate]
    defaults to [0.9]).
    @raise Unix.Unix_error when the daemon is not reachable. *)

val pp_report : Format.formatter -> report -> unit

val check : report -> min_hit_rate:float -> (unit, string) result
(** The CI gate: zero errors and a final hit rate at or above the
    floor. *)
