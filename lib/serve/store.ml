module Problem = Lams_core.Problem
module Plan_cache = Lams_core.Plan_cache
module Start_finder = Lams_core.Start_finder
module Layout = Lams_dist.Layout
module Section = Lams_dist.Section
module Schedule = Lams_sched.Schedule

type stats = {
  size : int;
  capacity : int;
  shards : int;
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  removals : int;
}

let max_procs = 4096

let fnv_fold init xs = List.fold_left (fun h x -> Wire.fnv1a64 ~init:h x) init xs

module Plan_store = struct
  type key = { p : int; k : int; s : int; l : int; u : int }

  module Lru = Lams_util.Sharded_lru.Make (struct
    type t = key

    let equal (a : key) (b : key) =
      a.p = b.p && a.k = b.k && a.s = b.s && a.l = b.l && a.u = b.u

    (* A hand-mixed hash: the generic [Hashtbl.hash] costs a C call per
       lookup, and the sharded store hashes twice (shard pick + bucket),
       so the serve hot path wants this to be a handful of int ops. *)
    let hash (k : key) =
      let h = k.p in
      let h = (h * 0x1000193) + k.k in
      let h = (h * 0x1000193) + k.s in
      let h = (h * 0x1000193) + k.l in
      let h = (h * 0x1000193) + k.u in
      h land max_int
  end)

  type value = { entry : Plan_cache.entry; digests : Wire.proc_digest array }
  type t = value Lru.t

  let create ?shards ~capacity () = Lru.create ?shards ~capacity ()

  let canonical_key pr ~u =
    let pr0, u0, g_shift, local_shift = Plan_cache.canonicalize pr ~u in
    let { Problem.p; k; l; s } = pr0 in
    ({ p; k; s; l; u = u0 }, g_shift, local_shift)

  let key_of_req (r : Wire.plan_req) =
    if r.p > max_procs then
      Error (Printf.sprintf "p = %d exceeds the serving cap (%d)" r.p max_procs)
    else if r.u < r.l then
      Error (Printf.sprintf "empty section: u = %d < l = %d" r.u r.l)
    else
      match Problem.make ~p:r.p ~k:r.k ~l:r.l ~s:r.s with
      | pr -> Ok (canonical_key pr ~u:r.u)
      | exception Invalid_argument msg -> Error msg

  (* One processor's digest at canonical position. [table_hash] folds
     only shift-invariant data (gap period, gaps, FSM transitions), so a
     rebased view of the same entry hashes identically — which is
     exactly what lets a hit skip re-hashing. *)
  let proc_digest pr0 ~u0 view ~m =
    let lay = Problem.layout pr0 in
    let table = Plan_cache.table view ~m in
    let last = Plan_cache.last_location view ~m in
    let count = Start_finder.count_owned pr0 ~m ~u:u0 in
    let h = fnv_fold Wire.fnv_offset [ table.length ] in
    let h = Array.fold_left (fun h g -> Wire.fnv1a64 ~init:h g) h table.gaps in
    let h =
      match Plan_cache.fsm view ~m with
      | None -> Wire.fnv1a64 ~init:h (-1)
      | Some fsm ->
          let h = fnv_fold h [ fsm.start_offset; fsm.length ] in
          let h =
            Array.fold_left (fun h d -> Wire.fnv1a64 ~init:h d) h fsm.delta
          in
          Array.fold_left (fun h o -> Wire.fnv1a64 ~init:h o) h fsm.next_offset
    in
    match (last, table.start_local) with
    | Some last_g, Some start_local when count > 0 ->
        {
          Wire.owned = true;
          start_local;
          last_local = Layout.local_address lay last_g;
          length = table.length;
          count;
          table_hash = h;
        }
    | _ ->
        {
          Wire.owned = false;
          start_local = -1;
          last_local = -1;
          length = table.length;
          count = 0;
          table_hash = h;
        }

  let build_value (key : key) =
    let pr0 = Problem.make ~p:key.p ~k:key.k ~l:key.l ~s:key.s in
    let entry = Plan_cache.build_entry pr0 ~u:key.u in
    let view = Plan_cache.view_of_entry entry ~g_shift:0 ~local_shift:0 in
    let digests =
      Array.init key.p (fun m -> proc_digest pr0 ~u0:key.u view ~m)
    in
    { entry; digests }

  let find_key t key = Lru.find_or_build t key ~build:build_value

  let digest v ~local_shift ~hit =
    let procs =
      if local_shift = 0 then v.digests
      else
        Array.map
          (fun (d : Wire.proc_digest) ->
            if d.owned then
              {
                d with
                start_local = d.start_local + local_shift;
                last_local = d.last_local + local_shift;
              }
            else d)
          v.digests
    in
    { Wire.plan_hit = hit; procs }

  let view v ~g_shift ~local_shift =
    Plan_cache.view_of_entry v.entry ~g_shift ~local_shift

  let find t pr ~u =
    let key, g_shift, local_shift = canonical_key pr ~u in
    let v, hit = find_key t key in
    (view v ~g_shift ~local_shift, hit)

  let stats t =
    {
      size = Lru.size t;
      capacity = Lru.capacity t;
      shards = Lru.shards t;
      hits = Lru.hits t;
      misses = Lru.misses t;
      evictions = Lru.evictions t;
      insertions = Lru.insertions t;
      removals = Lru.removals t;
    }

  let clear = Lru.clear
  let iter_keys = Lru.iter_keys
end

module Sched_store = struct
  type key = {
    sp : int;
    sk : int;
    ssec : int * int * int;
    dp : int;
    dk : int;
    dsec : int * int * int;
  }

  module Lru = Lams_util.Sharded_lru.Make (struct
    type t = key

    let equal (a : key) (b : key) =
      a.sp = b.sp && a.sk = b.sk && a.dp = b.dp && a.dk = b.dk
      &&
      let slo, shi, sst = a.ssec and slo', shi', sst' = b.ssec in
      slo = slo' && shi = shi' && sst = sst'
      &&
      let dlo, dhi, dst = a.dsec and dlo', dhi', dst' = b.dsec in
      dlo = dlo' && dhi = dhi' && dst = dst'

    let hash (k : key) =
      let slo, shi, sst = k.ssec and dlo, dhi, dst = k.dsec in
      let h = k.sp in
      let h = (h * 0x1000193) + k.sk in
      let h = (h * 0x1000193) + slo in
      let h = (h * 0x1000193) + shi in
      let h = (h * 0x1000193) + sst in
      let h = (h * 0x1000193) + k.dp in
      let h = (h * 0x1000193) + k.dk in
      let h = (h * 0x1000193) + dlo in
      let h = (h * 0x1000193) + dhi in
      let h = (h * 0x1000193) + dst in
      h land max_int
  end)

  type value = {
    sched : Schedule.t;  (** at canonical section positions *)
    sdig : Wire.sched_digest;  (** with [sched_hit = false] *)
    rdig : Wire.redist_digest;  (** with [redist_hit = false] *)
  }

  type t = value Lru.t

  let create ?shards ~capacity () = Lru.create ?shards ~capacity ()

  let triplet (sec : Section.t) = (sec.lo, sec.hi, sec.stride)

  let validate_side ~what ~p ~k (lo, hi, stride) =
    if p < 1 || p > max_procs then
      Error (Printf.sprintf "%s: p = %d out of [1, %d]" what p max_procs)
    else if k < 1 then Error (Printf.sprintf "%s: k = %d must be >= 1" what k)
    else if stride = 0 then Error (Printf.sprintf "%s: stride must be non-zero" what)
    else if lo < 0 || hi < 0 then
      Error (Printf.sprintf "%s: negative section bound" what)
    else
      let sec = Section.make ~lo ~hi ~stride in
      if Section.is_empty sec then Error (Printf.sprintf "%s: empty section" what)
      else Ok (Layout.create ~p ~k, sec)

  let key_of_req (r : Wire.sched_req) =
    match
      ( validate_side ~what:"source" ~p:r.src_p ~k:r.src_k
          (r.src_lo, r.src_hi, r.src_stride),
        validate_side ~what:"destination" ~p:r.dst_p ~k:r.dst_k
          (r.dst_lo, r.dst_hi, r.dst_stride) )
    with
    | Error e, _ | _, Error e -> Error e
    | Ok (src_layout, src_section), Ok (dst_layout, dst_section) ->
        if Section.count src_section <> Section.count dst_section then
          Error
            (Printf.sprintf "element count mismatch: source %d, destination %d"
               (Section.count src_section) (Section.count dst_section))
        else
          let (src0, src_shift), (dst0, dst_shift) =
            Lams_sched.Cache.canonicalize ~src_layout ~src_section ~dst_layout
              ~dst_section
          in
          Ok
            ( {
                sp = r.src_p;
                sk = r.src_k;
                ssec = triplet src0;
                dp = r.dst_p;
                dk = r.dst_k;
                dsec = triplet dst0;
              },
              src_shift,
              dst_shift )

  let digests_of_schedule (sched : Schedule.t) =
    let shape_hash =
      List.fold_left
        (fun h round ->
          let h = Wire.fnv1a64 ~init:h (-1) in
          List.fold_left
            (fun h (tr : Schedule.transfer) ->
              fnv_fold h [ tr.src_proc; tr.dst_proc; tr.elements ])
            h round)
        Wire.fnv_offset sched.rounds
    in
    let pairs = Hashtbl.create 64 in
    let add (tr : Schedule.transfer) =
      let key = (tr.src_proc, tr.dst_proc) in
      let prev = try Hashtbl.find pairs key with Not_found -> 0 in
      Hashtbl.replace pairs key (prev + tr.elements)
    in
    List.iter add sched.locals;
    List.iter (List.iter add) sched.rounds;
    let pair_list =
      Hashtbl.fold (fun (s, d) e acc -> (s, d, e) :: acc) pairs []
      |> List.sort compare |> Array.of_list
    in
    let sdig =
      {
        Wire.sched_hit = false;
        rounds = Schedule.rounds_count sched;
        max_degree = sched.max_degree;
        total = sched.total;
        cross = Schedule.cross_elements sched;
        locals = List.length sched.locals;
        shape_hash;
      }
    in
    let rdig =
      {
        Wire.redist_hit = false;
        r_total = sched.total;
        r_cross = Schedule.cross_elements sched;
        pairs = pair_list;
      }
    in
    (sdig, rdig)

  let build_value (key : key) =
    let slo, shi, sst = key.ssec and dlo, dhi, dst = key.dsec in
    let sched =
      Schedule.build
        ~src_layout:(Layout.create ~p:key.sp ~k:key.sk)
        ~src_section:(Section.make ~lo:slo ~hi:shi ~stride:sst)
        ~dst_layout:(Layout.create ~p:key.dp ~k:key.dk)
        ~dst_section:(Section.make ~lo:dlo ~hi:dhi ~stride:dst)
    in
    let sdig, rdig = digests_of_schedule sched in
    { sched; sdig; rdig }

  let find_key t key = Lru.find_or_build t key ~build:build_value
  let sched_digest v ~hit = { v.sdig with Wire.sched_hit = hit }
  let redist_digest v ~hit = { v.rdig with Wire.redist_hit = hit }

  let schedule v ~src_shift ~dst_shift =
    Schedule.rebase v.sched ~src_delta:src_shift ~dst_delta:dst_shift

  let stats t =
    {
      size = Lru.size t;
      capacity = Lru.capacity t;
      shards = Lru.shards t;
      hits = Lru.hits t;
      misses = Lru.misses t;
      evictions = Lru.evictions t;
      insertions = Lru.insertions t;
      removals = Lru.removals t;
    }

  let clear = Lru.clear
  let iter_keys = Lru.iter_keys
end
