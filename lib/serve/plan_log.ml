type t = {
  path : string;
  mutex : Mutex.t;
  mutable oc : out_channel option;
  mutable appended : int;
}

let open_append path =
  open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path

let open_log path =
  { path; mutex = Mutex.create (); oc = Some (open_append path); appended = 0 }

let path t = t.path

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let plan_line (k : Store.Plan_store.key) =
  Printf.sprintf "P %d %d %d %d %d\n" k.p k.k k.s k.l k.u

let sched_line (k : Store.Sched_store.key) =
  let slo, shi, sst = k.ssec and dlo, dhi, dst = k.dsec in
  Printf.sprintf "S %d %d %d %d %d %d %d %d %d %d\n" k.sp k.sk slo shi sst k.dp
    k.dk dlo dhi dst

let append t line =
  with_lock t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          output_string oc line;
          t.appended <- t.appended + 1)

let append_plan t key = append t (plan_line key)
let append_sched t key = append t (sched_line key)
let appended t = with_lock t (fun () -> t.appended)

let flush t =
  with_lock t (fun () -> match t.oc with None -> () | Some oc -> flush oc)

let close t =
  with_lock t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          t.oc <- None;
          close_out oc)

(* A line warms at most one store entry; anything unparsable or invalid
   is skipped so a torn tail never poisons startup. *)
let replay_line ~plans ~scheds line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "P"; p; k; s; l; u ] -> (
      match
        {
          Wire.p = int_of_string p;
          k = int_of_string k;
          s = int_of_string s;
          l = int_of_string l;
          u = int_of_string u;
        }
      with
      | req -> (
          match Store.Plan_store.key_of_req req with
          | Ok (key, _, _) ->
              ignore (Store.Plan_store.find_key plans key);
              true
          | Error _ -> false)
      | exception Failure _ -> false)
  | [ "S"; sp; sk; slo; shi; sst; dp; dk; dlo; dhi; dst ] -> (
      match
        {
          Wire.src_p = int_of_string sp;
          src_k = int_of_string sk;
          src_lo = int_of_string slo;
          src_hi = int_of_string shi;
          src_stride = int_of_string sst;
          dst_p = int_of_string dp;
          dst_k = int_of_string dk;
          dst_lo = int_of_string dlo;
          dst_hi = int_of_string dhi;
          dst_stride = int_of_string dst;
        }
      with
      | req -> (
          match Store.Sched_store.key_of_req req with
          | Ok (key, _, _) ->
              ignore (Store.Sched_store.find_key scheds key);
              true
          | Error _ -> false)
      | exception Failure _ -> false)
  | _ -> false

let replay path ~plans ~scheds =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let warmed = ref 0 in
          (try
             while true do
               if replay_line ~plans ~scheds (input_line ic) then incr warmed
             done
           with End_of_file -> ());
          !warmed)

let rotate t ~plans ~scheds =
  with_lock t (fun () ->
      let tmp = t.path ^ ".tmp" in
      let oc = open_out tmp in
      Store.Plan_store.iter_keys plans (fun k -> output_string oc (plan_line k));
      Store.Sched_store.iter_keys scheds (fun k ->
          output_string oc (sched_line k));
      close_out oc;
      (match t.oc with
      | None -> ()
      | Some old ->
          t.oc <- None;
          close_out old);
      Sys.rename tmp t.path;
      t.oc <- Some (open_append t.path);
      t.appended <- 0)
