(** The plan-compilation daemon behind [lams serve].

    One listener thread accepts connections; a reader thread per
    connection decodes frames and enqueues jobs; a pool of worker
    {e domains} drains the queue in batches, groups jobs that share a
    canonical cache key, resolves each group with {e one} store lookup
    (one build on a miss) and fans the rebased digests back out. Lookups
    go through the sharded stores ({!Store}), so workers contend only on
    same-shard keys, never on a global cache mutex.

    Back-pressure is load shedding: once the queue holds
    [high_water] jobs, new requests are answered [Overloaded]
    immediately instead of queued ([high_water = 0] sheds everything — a
    test hook). Shutdown is graceful: the queue is drained and every
    enqueued job answered, then connections close and the plan log is
    flushed — so a SIGTERM never loses logged keys or strands an
    accepted request. *)

type config = {
  shards : int;  (** store shards (clamped to [>= 1]) *)
  plan_capacity : int;
  sched_capacity : int;
  workers : int;  (** worker domains (clamped to [>= 1]) *)
  batch_max : int;  (** max jobs drained per batch *)
  high_water : int;  (** shed above this queue depth; [0] sheds all *)
  log_path : string option;  (** plan log; [None] disables persistence *)
  rotate_after : int;  (** rotate the log every this many appends *)
}

val default_config : config
(** 8 shards (or domain count), 4096/1024 capacities, 4 workers,
    batch 64, high water 1024, no log, rotate every 65536 appends. *)

type address = [ `Unix of string | `Tcp of string * int ]

type counters = {
  requests : int;  (** decoded requests, shed or served *)
  hits : int;  (** jobs answered from a store (incl. batch fan-out) *)
  batched : int;  (** fan-out members beyond each group's leader *)
  shed : int;  (** [Overloaded] answers *)
  protocol_errors : int;  (** framing/decode failures answered [Error] *)
  connections : int;  (** connections accepted over the lifetime *)
  replayed : int;  (** entries warmed from the plan log at startup *)
}

type t

val start : config -> address -> t
(** Bind, replay the plan log (if any), spawn workers and the listener.
    An existing socket file at a [`Unix] path is replaced.
    @raise Unix.Unix_error if the address cannot be bound. *)

val stop : t -> unit
(** Graceful shutdown as described above. Idempotent. *)

val counters : t -> counters
val plan_stats : t -> Store.stats
val sched_stats : t -> Store.stats

val stats_payload : t -> Wire.stats_payload
(** What a [Stats] request answers: the counters above, both stores'
    accounting, and the served-latency distribution (microseconds). *)

val run : config -> address -> unit
(** [start], then block until SIGTERM or SIGINT, then [stop]. Installs
    the signal handlers (and ignores SIGPIPE); prints one
    [listening on ...] line to stdout when ready. *)

val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list
(** The batching step, exposed pure for tests: partition a batch by key,
    preserving first-seen key order and per-key arrival order.
    [List.concat_map snd (group_by f xs)] is a permutation of [xs], and
    every group is non-empty and key-homogeneous. *)
