(** Zipf-distributed key sampling for the load generator.

    Rank [r] (0-based) is drawn with probability proportional to
    [(r + 1) ** -theta]: [theta = 0] is uniform, [theta ~ 1] is the
    classic web-workload skew, larger [theta] concentrates more mass on
    the hottest keys. The sampler precomputes the cumulative weights
    once ([O(n)] setup, [O(log n)] per draw) and is immutable after
    {!create}, so one table can be shared by every client thread. *)

type t

val create : n:int -> theta:float -> t
(** @raise Invalid_argument if [n <= 0], [theta < 0] or [theta] is not
    finite. *)

val n : t -> int
val theta : t -> float

val sample : t -> Lams_util.Prng.t -> int
(** A rank in [\[0, n)]; rank 0 is the most probable. *)

val mass : t -> int -> float
(** [mass t r] is the probability that a draw lands in [\[0, r)] — the
    working-set mass of the [r] hottest keys (used to size caches in the
    bench). [mass t 0 = 0.], [mass t (n t) = 1.]. *)
