let magic = 0x4C414D53 (* "LAMS" *)
let version = 1
let max_frame = 1 lsl 20

type plan_req = { p : int; k : int; s : int; l : int; u : int }

type sched_req = {
  src_p : int;
  src_k : int;
  src_lo : int;
  src_hi : int;
  src_stride : int;
  dst_p : int;
  dst_k : int;
  dst_lo : int;
  dst_hi : int;
  dst_stride : int;
}

type request =
  | Plan of plan_req
  | Schedule of sched_req
  | Redist of sched_req
  | Stats

type proc_digest = {
  owned : bool;
  start_local : int;
  last_local : int;
  length : int;
  count : int;
  table_hash : int64;
}

type plan_digest = { plan_hit : bool; procs : proc_digest array }

type sched_digest = {
  sched_hit : bool;
  rounds : int;
  max_degree : int;
  total : int;
  cross : int;
  locals : int;
  shape_hash : int64;
}

type redist_digest = {
  redist_hit : bool;
  r_total : int;
  r_cross : int;
  pairs : (int * int * int) array;
}

type dist_summary = {
  d_count : int;
  d_min : float;
  d_mean : float;
  d_p95 : float;
  d_max : float;
}

type stats_payload = {
  s_counters : (string * int) list;
  s_dists : (string * dist_summary) list;
}

type error_code =
  | E_bad_magic
  | E_bad_version
  | E_bad_frame
  | E_bad_tag
  | E_invalid_request
  | E_internal

type response =
  | Plan_digest of plan_digest
  | Sched_digest of sched_digest
  | Redist_digest of redist_digest
  | Stats_reply of stats_payload
  | Error of error_code * string
  | Overloaded

type frame_error =
  | Truncated
  | Oversized of int
  | Bad_magic of int
  | Bad_version of int
  | Bad_tag of int
  | Bad_payload of string

(* --- FNV-1a 64 --- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 ~init x =
  let h = ref init in
  for i = 0 to 7 do
    let byte = (x lsr (8 * i)) land 0xff in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

(* --- Tags --- *)

let tag_plan = 1
let tag_schedule = 2
let tag_redist = 3
let tag_stats = 4
let tag_plan_digest = 65
let tag_sched_digest = 66
let tag_redist_digest = 67
let tag_stats_reply = 68
let tag_error = 69
let tag_overloaded = 70

let error_code_to_byte = function
  | E_bad_magic -> 0
  | E_bad_version -> 1
  | E_bad_frame -> 2
  | E_bad_tag -> 3
  | E_invalid_request -> 4
  | E_internal -> 5

let error_code_of_byte = function
  | 0 -> Some E_bad_magic
  | 1 -> Some E_bad_version
  | 2 -> Some E_bad_frame
  | 3 -> Some E_bad_tag
  | 4 -> Some E_invalid_request
  | 5 -> Some E_internal
  | _ -> None

let error_code_name = function
  | E_bad_magic -> "bad-magic"
  | E_bad_version -> "bad-version"
  | E_bad_frame -> "bad-frame"
  | E_bad_tag -> "bad-tag"
  | E_invalid_request -> "invalid-request"
  | E_internal -> "internal"

(* --- Encoding --- *)

(* A tiny append-only writer: frames are small (the plan digest for the
   largest accepted p is ~160 KB, everything else is bytes), so a
   Buffer + one final Bytes copy is simpler than size pre-computation
   and nowhere near the wire cost. *)
module W = struct
  let i64 b x = Buffer.add_int64_be b (Int64.of_int x)
  let i64_raw b x = Buffer.add_int64_be b x
  let byte b x = Buffer.add_uint8 b x
  let bool b x = Buffer.add_uint8 b (if x then 1 else 0)
  let f64 b x = Buffer.add_int64_be b (Int64.bits_of_float x)

  let str b s =
    let n = min (String.length s) 0xffff in
    Buffer.add_uint16_be b n;
    Buffer.add_substring b s 0 n
end

let header b ~tag ~id =
  Buffer.add_int32_be b (Int32.of_int magic);
  Buffer.add_uint16_be b version;
  W.byte b tag;
  W.i64 b id

let encode_sched_req b (r : sched_req) =
  W.i64 b r.src_p;
  W.i64 b r.src_k;
  W.i64 b r.src_lo;
  W.i64 b r.src_hi;
  W.i64 b r.src_stride;
  W.i64 b r.dst_p;
  W.i64 b r.dst_k;
  W.i64 b r.dst_lo;
  W.i64 b r.dst_hi;
  W.i64 b r.dst_stride

let encode_request ~id req =
  if id < 0 then invalid_arg "Wire.encode_request: negative id";
  let b = Buffer.create 64 in
  (match req with
  | Plan r ->
      header b ~tag:tag_plan ~id;
      W.i64 b r.p;
      W.i64 b r.k;
      W.i64 b r.s;
      W.i64 b r.l;
      W.i64 b r.u
  | Schedule r ->
      header b ~tag:tag_schedule ~id;
      encode_sched_req b r
  | Redist r ->
      header b ~tag:tag_redist ~id;
      encode_sched_req b r
  | Stats -> header b ~tag:tag_stats ~id);
  Buffer.to_bytes b

let encode_response ~id resp =
  if id < 0 then invalid_arg "Wire.encode_response: negative id";
  let b = Buffer.create 128 in
  (match resp with
  | Plan_digest d ->
      header b ~tag:tag_plan_digest ~id;
      W.bool b d.plan_hit;
      W.i64 b (Array.length d.procs);
      Array.iter
        (fun pd ->
          W.bool b pd.owned;
          W.i64 b pd.start_local;
          W.i64 b pd.last_local;
          W.i64 b pd.length;
          W.i64 b pd.count;
          W.i64_raw b pd.table_hash)
        d.procs
  | Sched_digest d ->
      header b ~tag:tag_sched_digest ~id;
      W.bool b d.sched_hit;
      W.i64 b d.rounds;
      W.i64 b d.max_degree;
      W.i64 b d.total;
      W.i64 b d.cross;
      W.i64 b d.locals;
      W.i64_raw b d.shape_hash
  | Redist_digest d ->
      header b ~tag:tag_redist_digest ~id;
      W.bool b d.redist_hit;
      W.i64 b d.r_total;
      W.i64 b d.r_cross;
      W.i64 b (Array.length d.pairs);
      Array.iter
        (fun (s, dst, e) ->
          W.i64 b s;
          W.i64 b dst;
          W.i64 b e)
        d.pairs
  | Stats_reply p ->
      header b ~tag:tag_stats_reply ~id;
      W.i64 b (List.length p.s_counters);
      List.iter
        (fun (name, v) ->
          W.str b name;
          W.i64 b v)
        p.s_counters;
      W.i64 b (List.length p.s_dists);
      List.iter
        (fun (name, d) ->
          W.str b name;
          W.i64 b d.d_count;
          W.f64 b d.d_min;
          W.f64 b d.d_mean;
          W.f64 b d.d_p95;
          W.f64 b d.d_max)
        p.s_dists
  | Error (code, msg) ->
      header b ~tag:tag_error ~id;
      W.byte b (error_code_to_byte code);
      W.str b msg
  | Overloaded -> header b ~tag:tag_overloaded ~id);
  Buffer.to_bytes b

(* --- Decoding --- *)

exception Short
exception Bad of string

(* A bounds-checked cursor over the payload. Any overrun raises [Short],
   caught at the top level and mapped to [Bad_payload] — the typed
   rejection the connection loop relies on. *)
module R = struct
  type t = { buf : bytes; mutable pos : int }

  let make buf = { buf; pos = 0 }

  let need r n = if r.pos + n > Bytes.length r.buf then raise Short

  let i64 r =
    need r 8;
    let v = Bytes.get_int64_be r.buf r.pos in
    r.pos <- r.pos + 8;
    let x = Int64.to_int v in
    if Int64.of_int x <> v then raise (Bad "integer out of range");
    x

  let i64_raw r =
    need r 8;
    let v = Bytes.get_int64_be r.buf r.pos in
    r.pos <- r.pos + 8;
    v

  let byte r =
    need r 1;
    let v = Bytes.get_uint8 r.buf r.pos in
    r.pos <- r.pos + 1;
    v

  let bool r = byte r <> 0
  let f64 r = Int64.float_of_bits (i64_raw r)

  let str r =
    need r 2;
    let n = Bytes.get_uint16_be r.buf r.pos in
    r.pos <- r.pos + 2;
    need r n;
    let s = Bytes.sub_string r.buf r.pos n in
    r.pos <- r.pos + n;
    s

  let finished r = if r.pos <> Bytes.length r.buf then raise (Bad "trailing bytes")

  let counted r ~max_count name =
    let n = i64 r in
    if n < 0 || n > max_count then raise (Bad (name ^ " count out of range"));
    n
end

let decode_header buf =
  if Bytes.length buf < 15 then Stdlib.Error Truncated
  else begin
    let m = Int32.to_int (Bytes.get_int32_be buf 0) land 0xffffffff in
    if m <> magic then Stdlib.Error (Bad_magic m)
    else
      let v = Bytes.get_uint16_be buf 4 in
      if v <> version then Stdlib.Error (Bad_version v)
      else
        let tag = Bytes.get_uint8 buf 6 in
        let id = Int64.to_int (Bytes.get_int64_be buf 7) in
        if id < 0 then Stdlib.Error (Bad_payload "negative request id")
        else Ok (tag, id)
  end

let decode_sched_req r =
  let src_p = R.i64 r in
  let src_k = R.i64 r in
  let src_lo = R.i64 r in
  let src_hi = R.i64 r in
  let src_stride = R.i64 r in
  let dst_p = R.i64 r in
  let dst_k = R.i64 r in
  let dst_lo = R.i64 r in
  let dst_hi = R.i64 r in
  let dst_stride = R.i64 r in
  { src_p; src_k; src_lo; src_hi; src_stride;
    dst_p; dst_k; dst_lo; dst_hi; dst_stride }

let with_body buf decode =
  match decode_header buf with
  | Stdlib.Error e -> Stdlib.Error e
  | Ok (tag, id) -> (
      let r = R.make buf in
      r.R.pos <- 15;
      match decode r tag with
      | exception Short -> Stdlib.Error Truncated
      | exception Bad msg -> Stdlib.Error (Bad_payload msg)
      | None -> Stdlib.Error (Bad_tag tag)
      | Some v ->
          (match R.finished r with
          | () -> Ok (id, v)
          | exception Bad msg -> Stdlib.Error (Bad_payload msg)))

let decode_request buf =
  with_body buf (fun r tag ->
      if tag = tag_plan then begin
        let p = R.i64 r in
        let k = R.i64 r in
        let s = R.i64 r in
        let l = R.i64 r in
        let u = R.i64 r in
        Some (Plan { p; k; s; l; u })
      end
      else if tag = tag_schedule then Some (Schedule (decode_sched_req r))
      else if tag = tag_redist then Some (Redist (decode_sched_req r))
      else if tag = tag_stats then Some Stats
      else None)

let decode_response buf =
  with_body buf (fun r tag ->
      if tag = tag_plan_digest then begin
        let plan_hit = R.bool r in
        let n = R.counted r ~max_count:(1 lsl 16) "processor" in
        let procs =
          Array.init n (fun _ ->
              let owned = R.bool r in
              let start_local = R.i64 r in
              let last_local = R.i64 r in
              let length = R.i64 r in
              let count = R.i64 r in
              let table_hash = R.i64_raw r in
              { owned; start_local; last_local; length; count; table_hash })
        in
        Some (Plan_digest { plan_hit; procs })
      end
      else if tag = tag_sched_digest then begin
        let sched_hit = R.bool r in
        let rounds = R.i64 r in
        let max_degree = R.i64 r in
        let total = R.i64 r in
        let cross = R.i64 r in
        let locals = R.i64 r in
        let shape_hash = R.i64_raw r in
        Some
          (Sched_digest
             { sched_hit; rounds; max_degree; total; cross; locals; shape_hash })
      end
      else if tag = tag_redist_digest then begin
        let redist_hit = R.bool r in
        let r_total = R.i64 r in
        let r_cross = R.i64 r in
        let n = R.counted r ~max_count:(1 lsl 16) "pair" in
        let pairs =
          Array.init n (fun _ ->
              let s = R.i64 r in
              let d = R.i64 r in
              let e = R.i64 r in
              (s, d, e))
        in
        Some (Redist_digest { redist_hit; r_total; r_cross; pairs })
      end
      else if tag = tag_stats_reply then begin
        let nc = R.counted r ~max_count:4096 "counter" in
        let s_counters =
          List.init nc (fun _ ->
              let name = R.str r in
              let v = R.i64 r in
              (name, v))
        in
        let nd = R.counted r ~max_count:4096 "distribution" in
        let s_dists =
          List.init nd (fun _ ->
              let name = R.str r in
              let d_count = R.i64 r in
              let d_min = R.f64 r in
              let d_mean = R.f64 r in
              let d_p95 = R.f64 r in
              let d_max = R.f64 r in
              (name, { d_count; d_min; d_mean; d_p95; d_max }))
        in
        Some (Stats_reply { s_counters; s_dists })
      end
      else if tag = tag_error then begin
        match error_code_of_byte (R.byte r) with
        | None -> raise (Bad "unknown error code")
        | Some code ->
            let msg = R.str r in
            Some (Error (code, msg))
      end
      else if tag = tag_overloaded then Some Overloaded
      else None)

let error_of_frame_error = function
  | Truncated -> (E_bad_frame, "truncated frame")
  | Oversized n -> (E_bad_frame, Printf.sprintf "frame of %d bytes exceeds limit" n)
  | Bad_magic m -> (E_bad_magic, Printf.sprintf "bad magic 0x%08x" m)
  | Bad_version v -> (E_bad_version, Printf.sprintf "unsupported version %d" v)
  | Bad_tag t -> (E_bad_tag, Printf.sprintf "unknown message tag %d" t)
  | Bad_payload msg -> (E_bad_frame, msg)

(* --- Framed I/O --- *)

let rec read_exactly fd buf pos len =
  if len = 0 then true
  else
    let n = Unix.read fd buf pos len in
    if n = 0 then false else read_exactly fd buf (pos + n) (len - n)

let read_frame fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 1 with
  | 0 -> `Eof
  | _ -> (
      if not (read_exactly fd hdr 1 3) then `Error Truncated
      else
        let len = Int32.to_int (Bytes.get_int32_be hdr 0) land 0xffffffff in
        if len > max_frame then `Error (Oversized len)
        else
          let buf = Bytes.create len in
          if read_exactly fd buf 0 len then `Frame buf else `Error Truncated)

let write_frame fd payload =
  let len = Bytes.length payload in
  if len > max_frame then invalid_arg "Wire.write_frame: payload too large";
  let out = Bytes.create (4 + len) in
  Bytes.set_int32_be out 0 (Int32.of_int len);
  Bytes.blit payload 0 out 4 len;
  let rec push pos remaining =
    if remaining > 0 then begin
      let n = Unix.write fd out pos remaining in
      push (pos + n) (remaining - n)
    end
  in
  push 0 (4 + len)

(* --- Printers --- *)

let pp_frame_error ppf = function
  | Truncated -> Format.fprintf ppf "truncated frame"
  | Oversized n -> Format.fprintf ppf "oversized frame (%d bytes)" n
  | Bad_magic m -> Format.fprintf ppf "bad magic 0x%08x" m
  | Bad_version v -> Format.fprintf ppf "bad version %d" v
  | Bad_tag t -> Format.fprintf ppf "bad tag %d" t
  | Bad_payload msg -> Format.fprintf ppf "bad payload: %s" msg

let pp_request ppf = function
  | Plan r ->
      Format.fprintf ppf "plan(p=%d k=%d s=%d l=%d u=%d)" r.p r.k r.s r.l r.u
  | (Schedule r | Redist r) as req ->
      Format.fprintf ppf "%s(%d/cyclic(%d) %d:%d:%d -> %d/cyclic(%d) %d:%d:%d)"
        (match req with Schedule _ -> "schedule" | _ -> "redist")
        r.src_p r.src_k r.src_lo r.src_hi r.src_stride r.dst_p r.dst_k
        r.dst_lo r.dst_hi r.dst_stride
  | Stats -> Format.fprintf ppf "stats"

let pp_response ppf = function
  | Plan_digest d ->
      Format.fprintf ppf "plan-digest(hit=%b procs=%d)" d.plan_hit
        (Array.length d.procs)
  | Sched_digest d ->
      Format.fprintf ppf "sched-digest(hit=%b rounds=%d cross=%d)" d.sched_hit
        d.rounds d.cross
  | Redist_digest d ->
      Format.fprintf ppf "redist-digest(hit=%b pairs=%d)" d.redist_hit
        (Array.length d.pairs)
  | Stats_reply p ->
      Format.fprintf ppf "stats-reply(%d counters, %d dists)"
        (List.length p.s_counters) (List.length p.s_dists)
  | Error (code, msg) -> Format.fprintf ppf "error(%s: %s)" (error_code_name code) msg
  | Overloaded -> Format.fprintf ppf "overloaded"
