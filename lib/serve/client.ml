type t = { fd : Unix.file_descr; mutable next_id : int; mutable open_ : bool }

let connect (addr : Server.address) =
  let fd =
    match addr with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path) with
        | e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e);
        fd
    | `Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (try Unix.connect fd (Unix.ADDR_INET (inet, port)) with
        | e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e);
        fd
  in
  { fd; next_id = 1; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  Wire.write_frame t.fd (Wire.encode_request ~id req);
  id

let receive t =
  match Wire.read_frame t.fd with
  | `Eof -> `Eof
  | `Error fe -> `Error fe
  | `Frame payload -> (
      match Wire.decode_response payload with
      | Ok (id, resp) -> `Response (id, resp)
      | Error fe -> `Error fe)

let request t req =
  let id = send t req in
  let rec await () =
    match receive t with
    | `Eof -> failwith "lams serve: connection closed mid-request"
    | `Error fe ->
        failwith
          (Format.asprintf "lams serve: undecodable reply: %a"
             Wire.pp_frame_error fe)
    | `Response (rid, resp) -> if rid = id then resp else await ()
  in
  await ()

let plan t r = request t (Wire.Plan r)
let schedule t r = request t (Wire.Schedule r)
let redist t r = request t (Wire.Redist r)
let stats t = request t Wire.Stats

let send_payload t payload = Wire.write_frame t.fd payload

let send_raw t bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write t.fd bytes !off (n - !off)
  done
