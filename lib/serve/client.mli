(** Blocking client for the [lams serve] wire protocol — the load
    generator's workhorse and the protocol tests' probe.

    One connection, synchronous request/response. Request ids are
    assigned monotonically per connection and checked against the echoed
    id on the way back. *)

type t

val connect : Server.address -> t
(** @raise Unix.Unix_error when the daemon is not reachable. *)

val close : t -> unit
(** Idempotent. *)

val request : t -> Wire.request -> Wire.response
(** Send and await the matching reply.
    @raise Failure on EOF or an undecodable reply (daemon gone). *)

val plan : t -> Wire.plan_req -> Wire.response
val schedule : t -> Wire.sched_req -> Wire.response
val redist : t -> Wire.sched_req -> Wire.response
val stats : t -> Wire.response

(** {2 Low-level access (protocol tests)} *)

val send : t -> Wire.request -> int
(** Frame and send, returning the assigned id. *)

val receive : t -> [ `Response of int * Wire.response | `Eof | `Error of Wire.frame_error ]

val send_payload : t -> bytes -> unit
(** Length-prefix and send an arbitrary payload — e.g. garbage that is
    not a valid request. *)

val send_raw : t -> bytes -> unit
(** Put raw bytes on the wire, no framing — e.g. a truncated frame
    followed by {!close}. *)
