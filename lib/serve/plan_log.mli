(** The daemon's persisted plan log: an append-only text file of
    canonical cache keys, replayed at startup to warm the stores.

    Each line is one key — [P p k s l u] for a plan,
    [S sp sk lo hi st dp dk lo hi st] for a schedule — always in
    canonical form, so replay hits exactly the entries the previous
    incarnation served. Replay is tolerant: unparsable or invalid lines
    (a half-written tail after a crash, garbage from a concurrent
    writer) are skipped, never fatal. Rotation compacts the file down to
    the keys still live in the stores, via write-to-temp + atomic
    rename, so a crash mid-rotation leaves either the old log or the new
    one, never a torn file. *)

type t

val open_log : string -> t
(** Open (creating if absent) for appending. @raise Sys_error on an
    unwritable path. *)

val path : t -> string

val append_plan : t -> Store.Plan_store.key -> unit
(** Thread-safe; buffered (see {!flush}). *)

val append_sched : t -> Store.Sched_store.key -> unit

val appended : t -> int
(** Entries appended since {!open_log} or the last {!rotate} — the
    server's rotation trigger. *)

val flush : t -> unit

val close : t -> unit
(** Flush and close. Idempotent. *)

val replay :
  string -> plans:Store.Plan_store.t -> scheds:Store.Sched_store.t -> int
(** Rebuild every key logged at [path] into the given stores (a missing
    file warms nothing) and return the number of entries warmed. *)

val rotate :
  t -> plans:Store.Plan_store.t -> scheds:Store.Sched_store.t -> unit
(** Compact the log to the stores' live keys and reset {!appended}. *)
