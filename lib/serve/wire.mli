(** The `lams serve` wire protocol: length-prefixed binary frames.

    Every frame on the socket is a 4-byte big-endian payload length
    followed by the payload. A payload starts with a fixed header —
    4-byte magic ["LAMS"], 2-byte protocol {!version}, 1-byte message
    tag, 8-byte request id — and continues with the tag's typed body
    (all integers 8-byte big-endian). Responses echo the request id, so
    a client may pipeline and match replies out of order.

    Decoding never raises: malformed input comes back as a typed
    {!frame_error}, which the server answers with an {!Error} response
    before closing the connection (a framing error means the stream can
    no longer be resynchronised). Frames above {!max_frame} bytes are
    rejected without being read. *)

val magic : int
(** ["LAMS"] as a big-endian 32-bit integer, [0x4C414D53]. *)

val version : int
(** Protocol version, currently [1]. Bumped on any layout change. *)

val max_frame : int
(** Largest accepted payload, [1 lsl 20] bytes. *)

(** {1 Messages} *)

type plan_req = { p : int; k : int; s : int; l : int; u : int }
(** An access-plan query: the whole-machine plan for section
    [A(l:u:s)] under [cyclic(k)] on [p] processors. *)

type sched_req = {
  src_p : int;
  src_k : int;
  src_lo : int;
  src_hi : int;
  src_stride : int;
  dst_p : int;
  dst_k : int;
  dst_lo : int;
  dst_hi : int;
  dst_stride : int;
}
(** A redistribution query: [DST(dst_lo:dst_hi:dst_stride) =
    SRC(src_lo:src_hi:src_stride)] across two block-cyclic layouts. *)

type request =
  | Plan of plan_req
  | Schedule of sched_req  (** answered with round structure *)
  | Redist of sched_req  (** answered with per-pair element counts *)
  | Stats  (** service counters and latency distributions *)

type proc_digest = {
  owned : bool;  (** does this processor own any section element? *)
  start_local : int;
  last_local : int;
  length : int;  (** gap-table period *)
  count : int;  (** elements visited *)
  table_hash : int64;  (** FNV-1a over gaps, FSM deltas and start offset *)
}

type plan_digest = { plan_hit : bool; procs : proc_digest array }

type sched_digest = {
  sched_hit : bool;
  rounds : int;
  max_degree : int;
  total : int;
  cross : int;
  locals : int;
  shape_hash : int64;  (** FNV-1a over per-round [(src, dst, elements)] *)
}

type redist_digest = {
  redist_hit : bool;
  r_total : int;
  r_cross : int;
  pairs : (int * int * int) array;
      (** [(src, dst, elements)], ascending lexicographic *)
}

type dist_summary = {
  d_count : int;
  d_min : float;
  d_mean : float;
  d_p95 : float;
  d_max : float;
}

type stats_payload = {
  s_counters : (string * int) list;
  s_dists : (string * dist_summary) list;
}

type error_code =
  | E_bad_magic
  | E_bad_version
  | E_bad_frame  (** truncated / oversized / malformed body *)
  | E_bad_tag
  | E_invalid_request  (** well-formed frame, invalid problem arguments *)
  | E_internal

type response =
  | Plan_digest of plan_digest
  | Sched_digest of sched_digest
  | Redist_digest of redist_digest
  | Stats_reply of stats_payload
  | Error of error_code * string
  | Overloaded  (** shed: the in-flight queue passed the high-water mark *)

(** {1 Codec} *)

type frame_error =
  | Truncated  (** EOF mid-frame, or a body shorter than its header says *)
  | Oversized of int  (** declared payload length beyond {!max_frame} *)
  | Bad_magic of int
  | Bad_version of int
  | Bad_tag of int
  | Bad_payload of string

val encode_request : id:int -> request -> bytes
(** The frame payload (no length prefix). [id] must be [>= 0]. *)

val encode_response : id:int -> response -> bytes

val decode_request : bytes -> (int * request, frame_error) result
val decode_response : bytes -> (int * response, frame_error) result

val error_of_frame_error : frame_error -> error_code * string
(** The typed [Error] body a peer gets for a framing error. *)

val pp_frame_error : Format.formatter -> frame_error -> unit
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
val error_code_name : error_code -> string

(** {1 Framed socket I/O} *)

val read_frame : Unix.file_descr -> [ `Frame of bytes | `Eof | `Error of frame_error ]
(** Read one length-prefixed frame. [`Eof] only at a clean frame
    boundary; EOF inside a frame is [`Error Truncated]. Never raises on
    malformed lengths; [Unix_error] from the descriptor itself does
    propagate. *)

val write_frame : Unix.file_descr -> bytes -> unit
(** Write the 4-byte length prefix and the payload, looping over short
    writes. *)

(** {1 Hashing} *)

val fnv1a64 : init:int64 -> int -> int64
(** One FNV-1a 64 step folding an [int] (as its 8 bytes, little end
    first) into a running hash; seed with {!fnv_offset}. *)

val fnv_offset : int64
