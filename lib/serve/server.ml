module Obs = Lams_obs.Obs
module Timer = Lams_util.Timer
module Stats = Lams_util.Stats

type config = {
  shards : int;
  plan_capacity : int;
  sched_capacity : int;
  workers : int;
  batch_max : int;
  high_water : int;
  log_path : string option;
  rotate_after : int;
}

let default_config =
  {
    shards = 8;
    plan_capacity = 4096;
    sched_capacity = 1024;
    workers = 4;
    batch_max = 64;
    high_water = 1024;
    log_path = None;
    rotate_after = 65536;
  }

type address = [ `Unix of string | `Tcp of string * int ]

type counters = {
  requests : int;
  hits : int;
  batched : int;
  shed : int;
  protocol_errors : int;
  connections : int;
  replayed : int;
}

type conn = { fd : Unix.file_descr; wmutex : Mutex.t; mutable alive : bool }

type job = { conn : conn; id : int; req : Wire.request; t0 : int64 }

type t = {
  cfg : config;
  addr : address;
  listen_fd : Unix.file_descr;
  plans : Store.Plan_store.t;
  scheds : Store.Sched_store.t;
  log : Plan_log.t option;
  replayed : int;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  c_requests : int Atomic.t;
  c_hits : int Atomic.t;
  c_batched : int Atomic.t;
  c_shed : int Atomic.t;
  c_protocol_errors : int Atomic.t;
  c_connections : int Atomic.t;
  lat_mutex : Mutex.t;
  lat_ring : float array;
  mutable lat_count : int;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable worker_domains : unit Domain.t list;
  mutable listener : Thread.t option;
}

let obs_requests = Obs.counter ~doc:"requests decoded by the daemon" "serve.requests"
let obs_hits = Obs.counter ~doc:"daemon requests answered from a store" "serve.hits"

let obs_batched =
  Obs.counter ~doc:"requests answered by a batch leader's lookup" "serve.batched"

let obs_shed = Obs.counter ~doc:"requests shed past the high-water mark" "serve.shed"

let group_by key items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun it ->
      let k = key it in
      match Hashtbl.find_opt tbl k with
      | Some cell -> cell := it :: !cell
      | None ->
          Hashtbl.add tbl k (ref [ it ]);
          order := k :: !order)
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

(* Only the connection's reader thread ever [close]s the descriptor —
   everyone else at most [shutdown]s it, which wakes the reader without
   freeing the fd number, so a blocked read never races a reuse. *)
let close_conn conn =
  Mutex.lock conn.wmutex;
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.wmutex

let shutdown_conn conn =
  Mutex.lock conn.wmutex;
  (if conn.alive then
     try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.unlock conn.wmutex

let respond conn id resp =
  Mutex.lock conn.wmutex;
  (if conn.alive then
     try Wire.write_frame conn.fd (Wire.encode_response ~id resp)
     with Unix.Unix_error _ | Sys_error _ -> (
       conn.alive <- false;
       try Unix.close conn.fd with Unix.Unix_error _ -> ()));
  Mutex.unlock conn.wmutex

let record_latency t t0 =
  let us = Int64.to_float (Int64.sub (Timer.now_ns ()) t0) /. 1e3 in
  Mutex.lock t.lat_mutex;
  t.lat_ring.(t.lat_count mod Array.length t.lat_ring) <- us;
  t.lat_count <- t.lat_count + 1;
  Mutex.unlock t.lat_mutex

let latency_summary t =
  Mutex.lock t.lat_mutex;
  let retained = min t.lat_count (Array.length t.lat_ring) in
  let xs = Array.sub t.lat_ring 0 retained in
  let count = t.lat_count in
  Mutex.unlock t.lat_mutex;
  if retained = 0 then
    { Wire.d_count = count; d_min = 0.; d_mean = 0.; d_p95 = 0.; d_max = 0. }
  else
    {
      Wire.d_count = count;
      d_min = Array.fold_left min xs.(0) xs;
      d_mean = Stats.mean xs;
      d_p95 = Stats.percentile xs 0.95;
      d_max = Array.fold_left max xs.(0) xs;
    }

let counters t =
  {
    requests = Atomic.get t.c_requests;
    hits = Atomic.get t.c_hits;
    batched = Atomic.get t.c_batched;
    shed = Atomic.get t.c_shed;
    protocol_errors = Atomic.get t.c_protocol_errors;
    connections = Atomic.get t.c_connections;
    replayed = t.replayed;
  }

let plan_stats t = Store.Plan_store.stats t.plans
let sched_stats t = Store.Sched_store.stats t.scheds

let stats_payload t =
  let c = counters t in
  let ps = plan_stats t and ss = sched_stats t in
  {
    Wire.s_counters =
      [
        ("serve.requests", c.requests);
        ("serve.hits", c.hits);
        ("serve.batched", c.batched);
        ("serve.shed", c.shed);
        ("serve.protocol_errors", c.protocol_errors);
        ("serve.connections", c.connections);
        ("serve.replayed", c.replayed);
        ("serve.plan_store.size", ps.size);
        ("serve.plan_store.hits", ps.hits);
        ("serve.plan_store.misses", ps.misses);
        ("serve.plan_store.evictions", ps.evictions);
        ("serve.sched_store.size", ss.size);
        ("serve.sched_store.hits", ss.hits);
        ("serve.sched_store.misses", ss.misses);
        ("serve.sched_store.evictions", ss.evictions);
      ];
    s_dists = [ ("serve.latency_us", latency_summary t) ];
  }

let finish t job resp =
  record_latency t job.t0;
  respond job.conn job.id resp

let maybe_rotate t log =
  if t.cfg.rotate_after > 0 && Plan_log.appended log >= t.cfg.rotate_after then
    Plan_log.rotate log ~plans:t.plans ~scheds:t.scheds

let log_append_plan t key =
  match t.log with
  | None -> ()
  | Some log ->
      Plan_log.append_plan log key;
      maybe_rotate t log

let log_append_sched t key =
  match t.log with
  | None -> ()
  | Some log ->
      Plan_log.append_sched log key;
      maybe_rotate t log

let count_served t ~rank ~hit =
  let served_hit = hit || rank > 0 in
  if served_hit then begin
    Atomic.incr t.c_hits;
    Obs.incr obs_hits
  end;
  if rank > 0 then begin
    Atomic.incr t.c_batched;
    Obs.incr obs_batched
  end;
  served_hit

let process_plan_group t key members =
  match Store.Plan_store.find_key t.plans key with
  | exception _ ->
      List.iter
        (fun (job, _) ->
          finish t job (Wire.Error (Wire.E_internal, "plan build failed")))
        members
  | v, hit ->
      if not hit then log_append_plan t key;
      List.iteri
        (fun rank (job, local_shift) ->
          let served_hit = count_served t ~rank ~hit in
          finish t job
            (Wire.Plan_digest
               (Store.Plan_store.digest v ~local_shift ~hit:served_hit)))
        members

let process_sched_group t key members =
  match Store.Sched_store.find_key t.scheds key with
  | exception _ ->
      List.iter
        (fun (job, _, _) ->
          finish t job (Wire.Error (Wire.E_internal, "schedule build failed")))
        members
  | v, hit ->
      if not hit then log_append_sched t key;
      List.iteri
        (fun rank (job, _, _) ->
          let served_hit = count_served t ~rank ~hit in
          let resp =
            match job.req with
            | Wire.Schedule _ ->
                Wire.Sched_digest
                  (Store.Sched_store.sched_digest v ~hit:served_hit)
            | _ ->
                Wire.Redist_digest
                  (Store.Sched_store.redist_digest v ~hit:served_hit)
          in
          finish t job resp)
        members

let process_batch t jobs =
  let plan_ok = ref [] and sched_ok = ref [] in
  List.iter
    (fun job ->
      match job.req with
      | Wire.Plan r -> (
          match Store.Plan_store.key_of_req r with
          | Ok (key, _g_shift, local_shift) ->
              plan_ok := (key, (job, local_shift)) :: !plan_ok
          | Error msg -> finish t job (Wire.Error (Wire.E_invalid_request, msg)))
      | Wire.Schedule r | Wire.Redist r -> (
          match Store.Sched_store.key_of_req r with
          | Ok (key, src_shift, dst_shift) ->
              sched_ok := (key, (job, src_shift, dst_shift)) :: !sched_ok
          | Error msg -> finish t job (Wire.Error (Wire.E_invalid_request, msg)))
      | Wire.Stats -> finish t job (Wire.Stats_reply (stats_payload t)))
    jobs;
  List.iter
    (fun (key, members) -> process_plan_group t key (List.map snd members))
    (group_by fst (List.rev !plan_ok));
  List.iter
    (fun (key, members) -> process_sched_group t key (List.map snd members))
    (group_by fst (List.rev !sched_ok))

let rec worker_loop t =
  Mutex.lock t.qmutex;
  while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
    Condition.wait t.qcond t.qmutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.qmutex
    (* stopping, and fully drained *)
  else begin
    let batch = ref [] and n = ref 0 in
    while !n < t.cfg.batch_max && not (Queue.is_empty t.queue) do
      batch := Queue.take t.queue :: !batch;
      incr n
    done;
    Mutex.unlock t.qmutex;
    (try process_batch t (List.rev !batch) with _ -> ());
    worker_loop t
  end

let shed t job =
  Atomic.incr t.c_shed;
  Obs.incr obs_shed;
  respond job.conn job.id Wire.Overloaded

let enqueue t job =
  Atomic.incr t.c_requests;
  Obs.incr obs_requests;
  if Atomic.get t.stopping then shed t job
  else begin
    Mutex.lock t.qmutex;
    if Queue.length t.queue >= t.cfg.high_water then begin
      Mutex.unlock t.qmutex;
      shed t job
    end
    else begin
      Queue.push job t.queue;
      Condition.signal t.qcond;
      Mutex.unlock t.qmutex
    end
  end

let protocol_error t conn fe =
  Atomic.incr t.c_protocol_errors;
  let code, msg = Wire.error_of_frame_error fe in
  respond conn 0 (Wire.Error (code, msg))

let rec reader_loop t conn =
  match Wire.read_frame conn.fd with
  | exception Unix.Unix_error _ -> close_conn conn
  | `Eof -> close_conn conn
  | `Error fe ->
      protocol_error t conn fe;
      close_conn conn
  | `Frame payload -> (
      match Wire.decode_request payload with
      | Error fe ->
          protocol_error t conn fe;
          close_conn conn
      | Ok (id, req) ->
          enqueue t { conn; id; req; t0 = Timer.now_ns () };
          reader_loop t conn)

let rec listener_loop t =
  if not (Atomic.get t.stopping) then
    match Unix.select [ t.listen_fd ] [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> listener_loop t
    | [], _, _ -> listener_loop t
    | _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error _ -> listener_loop t
        | fd, _ ->
            let conn = { fd; wmutex = Mutex.create (); alive = true } in
            Atomic.incr t.c_connections;
            Mutex.lock t.conns_mutex;
            t.conns <- conn :: t.conns;
            let th = Thread.create (fun () -> reader_loop t conn) () in
            t.readers <- th :: t.readers;
            Mutex.unlock t.conns_mutex;
            listener_loop t)

let bind_address addr =
  match addr with
  | `Unix path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      fd
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (try Unix.bind fd (Unix.ADDR_INET (inet, port)) with
      | e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e);
      Unix.listen fd 128;
      fd

let start cfg addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let cfg =
    {
      cfg with
      shards = max 1 cfg.shards;
      workers = max 1 cfg.workers;
      batch_max = max 1 cfg.batch_max;
      high_water = max 0 cfg.high_water;
    }
  in
  let plans =
    Store.Plan_store.create ~shards:cfg.shards ~capacity:cfg.plan_capacity ()
  in
  let scheds =
    Store.Sched_store.create ~shards:cfg.shards ~capacity:cfg.sched_capacity ()
  in
  let replayed, log =
    match cfg.log_path with
    | None -> (0, None)
    | Some path ->
        let warmed = Plan_log.replay path ~plans ~scheds in
        (warmed, Some (Plan_log.open_log path))
  in
  let listen_fd = bind_address addr in
  let t =
    {
      cfg;
      addr;
      listen_fd;
      plans;
      scheds;
      log;
      replayed;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      c_requests = Atomic.make 0;
      c_hits = Atomic.make 0;
      c_batched = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_protocol_errors = Atomic.make 0;
      c_connections = Atomic.make 0;
      lat_mutex = Mutex.create ();
      lat_ring = Array.make 8192 0.;
      lat_count = 0;
      conns_mutex = Mutex.create ();
      conns = [];
      readers = [];
      worker_domains = [];
      listener = None;
    }
  in
  t.worker_domains <-
    List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
  t

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.stopping true;
    Mutex.lock t.qmutex;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qmutex;
    (match t.listener with Some th -> Thread.join th | None -> ());
    (* Workers exit only once the queue is empty, so joining them here is
       the drain: every job accepted before the stop gets its answer
       while its connection is still up. *)
    List.iter Domain.join t.worker_domains;
    Mutex.lock t.conns_mutex;
    let conns = t.conns and readers = t.readers in
    Mutex.unlock t.conns_mutex;
    List.iter shutdown_conn conns;
    List.iter Thread.join readers;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.log with
    | None -> ()
    | Some log ->
        Plan_log.flush log;
        Plan_log.close log);
    match t.addr with
    | `Unix path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp _ -> ()
  end

let run cfg addr =
  let stop_flag = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  let t = start cfg addr in
  (match addr with
  | `Unix path -> Printf.printf "listening on unix:%s\n%!" path
  | `Tcp (host, port) -> Printf.printf "listening on tcp:%s:%d\n%!" host port);
  while not (Atomic.get stop_flag) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop t
