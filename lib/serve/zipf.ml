type t = { cum : float array; total : float; theta : float }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if not (Float.is_finite theta) || theta < 0. then
    invalid_arg "Zipf.create: theta must be finite and non-negative";
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for r = 0 to n - 1 do
    acc := !acc +. (float_of_int (r + 1) ** -.theta);
    cum.(r) <- !acc
  done;
  { cum; total = !acc; theta }

let n t = Array.length t.cum
let theta t = t.theta

let sample t rng =
  let u = Lams_util.Prng.float rng t.total in
  (* Smallest r with cum.(r) > u. *)
  let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let mass t r =
  if r <= 0 then 0.
  else if r >= Array.length t.cum then 1.
  else t.cum.(r - 1) /. t.total
