module Prng = Lams_util.Prng
module Timer = Lams_util.Timer
module Stats = Lams_util.Stats

type config = {
  clients : int;
  requests : int;
  keys : int;
  theta : float;
  sched_frac : float;
  seed : int;
}

let default_config =
  {
    clients = 8;
    requests = 20_000;
    keys = 20_000;
    theta = 1.2;
    sched_frac = 0.25;
    seed = 42;
  }

type report = {
  sent : int;
  answered : int;
  hits : int;
  misses : int;
  shed : int;
  errors : int;
  wall_s : float;
  throughput : float;
  p50_us : float;
  p95_us : float;
  p95_hit_us : float;
  hit_rate : float;
  time_to_target_s : float option;
}

(* SplitMix64 finalizer: the pure rank->request hash. *)
let mix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let mix_int rank salt =
  Int64.to_int (mix64 (Int64.of_int ((rank * 1_000_003) + salt))) land max_int

let procs = [| 1; 2; 4; 8 |]
let blocks = [| 4; 8; 16; 32 |]

let request_of_rank cfg rank =
  let h = mix_int rank 0 in
  let is_sched =
    cfg.sched_frac > 0.
    && float_of_int (h mod 10_000) < cfg.sched_frac *. 10_000.
  in
  if not is_sched then begin
    let h1 = mix_int rank 1 in
    let p = procs.(h1 mod 4) in
    let k = blocks.(h1 / 4 mod 4) in
    let s = 1 + (h1 / 16 mod 2048) in
    let l = h1 / 32768 mod 4096 in
    let count = 16 + (mix_int rank 2 mod 241) in
    Wire.Plan { p; k; s; l; u = l + (s * (count - 1)) }
  end
  else begin
    let h1 = mix_int rank 3 and h2 = mix_int rank 4 in
    let count = 8 + (h2 mod 57) in
    let src_lo = h1 / 256 mod 1024 and src_stride = 1 + (h1 / 262144 mod 16) in
    let dst_lo = h2 / 64 mod 1024 and dst_stride = 1 + (h2 / 65536 mod 16) in
    let req =
      {
        Wire.src_p = procs.(h1 mod 4);
        src_k = blocks.(h1 / 4 mod 4);
        src_lo;
        src_hi = src_lo + (src_stride * (count - 1));
        src_stride;
        dst_p = procs.(h1 / 16 mod 4);
        dst_k = blocks.(h1 / 64 mod 4);
        dst_lo;
        dst_hi = dst_lo + (dst_stride * (count - 1));
        dst_stride;
      }
    in
    if h2 / 1_048_576 land 1 = 0 then Wire.Schedule req else Wire.Redist req
  end

type acc = {
  mutable a_sent : int;
  mutable a_answered : int;
  mutable a_hits : int;
  mutable a_misses : int;
  mutable a_shed : int;
  mutable a_errors : int;
  mutable a_lat : float list;
  mutable a_hit_lat : float list;
  mutable a_events : (float * bool) list;  (** completion time s, hit *)
}

let fresh_acc () =
  {
    a_sent = 0;
    a_answered = 0;
    a_hits = 0;
    a_misses = 0;
    a_shed = 0;
    a_errors = 0;
    a_lat = [];
    a_hit_lat = [];
    a_events = [];
  }

let client_loop cfg addr zipf t0_ns n i acc =
  let rng = Prng.create (Int64.of_int (mix_int (cfg.seed + i) 7)) in
  let c = Client.connect addr in
  (try
     for _ = 1 to n do
       let rank = Zipf.sample zipf rng in
       let req = request_of_rank cfg rank in
       let q0 = Timer.now_ns () in
       acc.a_sent <- acc.a_sent + 1;
       match Client.request c req with
       | exception _ ->
           acc.a_errors <- acc.a_errors + 1;
           raise Exit
       | resp -> (
           let q1 = Timer.now_ns () in
           let us = Int64.to_float (Int64.sub q1 q0) /. 1e3 in
           let at = Int64.to_float (Int64.sub q1 t0_ns) /. 1e9 in
           let answered hit =
             acc.a_answered <- acc.a_answered + 1;
             acc.a_lat <- us :: acc.a_lat;
             acc.a_events <- (at, hit) :: acc.a_events;
             if hit then begin
               acc.a_hits <- acc.a_hits + 1;
               acc.a_hit_lat <- us :: acc.a_hit_lat
             end
             else acc.a_misses <- acc.a_misses + 1
           in
           match resp with
           | Wire.Plan_digest d -> answered d.plan_hit
           | Wire.Sched_digest d -> answered d.sched_hit
           | Wire.Redist_digest d -> answered d.redist_hit
           | Wire.Overloaded -> acc.a_shed <- acc.a_shed + 1
           | Wire.Error _ | Wire.Stats_reply _ ->
               acc.a_errors <- acc.a_errors + 1)
     done
   with Exit -> ());
  Client.close c

(* Earliest completion at which the hit rate over the previous [w]
   answers reached the target. *)
let time_to_target events target =
  let n = Array.length events in
  let w = min 500 (max 50 (n / 20)) in
  if n < w || w = 0 then None
  else begin
    let hits_in = ref 0 and result = ref None in
    (try
       for i = 0 to n - 1 do
         if snd events.(i) then incr hits_in;
         if i >= w && snd events.(i - w) then decr hits_in;
         if i >= w - 1 && float_of_int !hits_in >= target *. float_of_int w
         then begin
           result := Some (fst events.(i));
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let run ?(target_hit_rate = 0.9) cfg addr =
  let cfg =
    {
      cfg with
      clients = max 1 cfg.clients;
      requests = max 1 cfg.requests;
      keys = max 1 cfg.keys;
    }
  in
  let zipf = Zipf.create ~n:cfg.keys ~theta:cfg.theta in
  let accs = Array.init cfg.clients (fun _ -> fresh_acc ()) in
  let per_client = cfg.requests / cfg.clients in
  let extra = cfg.requests - (per_client * cfg.clients) in
  let t0_ns = Timer.now_ns () in
  let threads =
    List.init cfg.clients (fun i ->
        let n = per_client + if i < extra then 1 else 0 in
        Thread.create
          (fun () -> client_loop cfg addr zipf t0_ns n i accs.(i))
          ())
  in
  List.iter Thread.join threads;
  let wall_s = Int64.to_float (Int64.sub (Timer.now_ns ()) t0_ns) /. 1e9 in
  let sum f = Array.fold_left (fun a acc -> a + f acc) 0 accs in
  let answered = sum (fun a -> a.a_answered) in
  let hits = sum (fun a -> a.a_hits) in
  let lat =
    Array.of_list (Array.fold_left (fun l a -> a.a_lat @ l) [] accs)
  in
  let hit_lat =
    Array.of_list (Array.fold_left (fun l a -> a.a_hit_lat @ l) [] accs)
  in
  let events =
    Array.of_list (Array.fold_left (fun l a -> a.a_events @ l) [] accs)
  in
  Array.sort (fun (x, _) (y, _) -> compare x y) events;
  {
    sent = sum (fun a -> a.a_sent);
    answered;
    hits;
    misses = sum (fun a -> a.a_misses);
    shed = sum (fun a -> a.a_shed);
    errors = sum (fun a -> a.a_errors);
    wall_s;
    throughput = (if wall_s > 0. then float_of_int answered /. wall_s else 0.);
    p50_us = (if lat = [||] then 0. else Stats.percentile lat 0.5);
    p95_us = (if lat = [||] then 0. else Stats.percentile lat 0.95);
    p95_hit_us = (if hit_lat = [||] then 0. else Stats.percentile hit_lat 0.95);
    hit_rate =
      (if answered > 0 then float_of_int hits /. float_of_int answered else 0.);
    time_to_target_s = time_to_target events target_hit_rate;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>sent %d, answered %d (%.0f req/s over %.2f s)@,\
     hits %d, misses %d — hit rate %.1f%%@,\
     latency p50 %.1f us, p95 %.1f us (hits p95 %.1f us)@,\
     shed %d, errors %d@,\
     time to %s hit rate: %s@]"
    r.sent r.answered r.throughput r.wall_s r.hits r.misses
    (100. *. r.hit_rate) r.p50_us r.p95_us r.p95_hit_us r.shed r.errors
    "target"
    (match r.time_to_target_s with
    | None -> "never"
    | Some s -> Printf.sprintf "%.3f s" s)

let check r ~min_hit_rate =
  if r.errors > 0 then
    Error (Printf.sprintf "%d protocol/request errors" r.errors)
  else if r.answered = 0 then Error "no requests answered"
  else if r.hit_rate < min_hit_rate then
    Error
      (Printf.sprintf "hit rate %.3f below the %.3f floor" r.hit_rate
         min_hit_rate)
  else Ok ()
