(** The daemon's caches: sharded LRUs over canonical plan and schedule
    keys.

    These replace the single-mutex process caches
    ({!Lams_core.Plan_cache}, {!Lams_sched.Cache}) on the serve path:
    keys are the same canonical tuples those caches use (so the hit
    semantics are identical — translated sections collide), but lookups
    go through {!Lams_util.Sharded_lru} with one mutex per shard, and
    misses build through the exposed construction entry points without
    ever touching the global caches. Each cached value carries the wire
    digest precomputed at canonical position; a hit rebases the two
    position-dependent fields and never re-hashes. *)

type stats = {
  size : int;
  capacity : int;
  shards : int;
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  removals : int;
}

val max_procs : int
(** Serving cap on [p] (and on each side of a redistribution): plan
    digests are [O(p)] on the wire, so a query past this bound is an
    [E_invalid_request], not a build. *)

module Plan_store : sig
  type key = private { p : int; k : int; s : int; l : int; u : int }
  (** Canonical: [0 <= l < cycle_span], [u] shifted to match. *)

  type value
  type t

  val create : ?shards:int -> capacity:int -> unit -> t

  val canonical_key : Lams_core.Problem.t -> u:int -> key * int * int
  (** [(key, g_shift, local_shift)], per
      {!Lams_core.Plan_cache.canonicalize}. *)

  val key_of_req : Wire.plan_req -> (key * int * int, string) result
  (** Validate and canonicalize a wire request ([Error] on arguments
      {!Lams_core.Problem.make} rejects, or [p > max_procs]). *)

  val find_key : t -> key -> value * bool
  (** Lookup-or-build under the canonical key; [true] = served from the
      cache. *)

  val digest : value -> local_shift:int -> hit:bool -> Wire.plan_digest
  (** The wire digest rebased to the requester's section position. *)

  val view : value -> g_shift:int -> local_shift:int -> Lams_core.Plan_cache.view
  (** The underlying whole-machine plan, rebased — what the hammer test
      diffs against {!Lams_codegen.Plan.build_uncached}. *)

  val find : t -> Lams_core.Problem.t -> u:int -> Lams_core.Plan_cache.view * bool
  (** Convenience composition of the three steps above. *)

  val stats : t -> stats
  val clear : t -> unit
  val iter_keys : t -> (key -> unit) -> unit
end

module Sched_store : sig
  type key = private {
    sp : int;
    sk : int;
    ssec : int * int * int;  (** canonical source [lo, hi, stride] *)
    dp : int;
    dk : int;
    dsec : int * int * int;
  }

  type value
  type t

  val create : ?shards:int -> capacity:int -> unit -> t

  val key_of_req : Wire.sched_req -> (key * int * int, string) result
  (** [(key, src_local_shift, dst_local_shift)] per
      {!Lams_sched.Cache.canonicalize}; [Error] on invalid layouts,
      empty or count-mismatched sections, or [p] past {!max_procs}. *)

  val find_key : t -> key -> value * bool

  val sched_digest : value -> hit:bool -> Wire.sched_digest

  val redist_digest : value -> hit:bool -> Wire.redist_digest
  (** Digests are translation-invariant (they carry no local addresses),
      so hits need no rebase at all. *)

  val schedule : value -> src_shift:int -> dst_shift:int -> Lams_sched.Schedule.t
  (** The full rebased schedule (tests; the wire sends only digests). *)

  val stats : t -> stats
  val clear : t -> unit
  val iter_keys : t -> (key -> unit) -> unit
end
