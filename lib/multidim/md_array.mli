(** Multidimensional distributed arrays. Dimensions are mapped
    independently (§2): each dimension carries its own [cyclic(k)]
    distribution onto one axis of a processor grid, and the memory access
    problem for a multidimensional regular section "simply reduces to
    multiple applications of the algorithm for [the] one-dimensional
    case". Local storage on each grid node is row-major over the per-
    dimension local extents. *)

type t = private {
  dims : int array;  (** global extent per dimension *)
  layouts : Lams_dist.Layout.t array;  (** per-dimension [cyclic(k)] maps *)
  grid : Lams_dist.Proc_grid.t;
}

val create :
  dims:int array ->
  dists:Lams_dist.Distribution.t array ->
  grid:Lams_dist.Proc_grid.t ->
  t
(** @raise Invalid_argument unless [dims], [dists] and the grid all have
    the same rank and every extent is positive. Use a grid dimension of 1
    for an undistributed ("[*]") array dimension. *)

val rank : t -> int

val owner_coords : t -> int array -> int array
(** Grid coordinates owning a global multi-index. *)

val owner_rank : t -> int array -> int
(** Same, linearised. *)

val local_extents : t -> coords:int array -> int array
(** Per-dimension local extents on a grid node. *)

val local_size : t -> coords:int array -> int
(** Product of {!local_extents} — the node's allocation. *)

val local_address : t -> coords:int array -> int array -> int
(** Row-major local address of a global multi-index on its owning node.
    @raise Invalid_argument if [coords] does not own the element. *)

val traverse_owned :
  t ->
  sections:Lams_dist.Section.t array ->
  coords:int array ->
  f:(global:int array -> local:int -> unit) ->
  unit
(** Visit the grid node's share of the Cartesian section
    [A(sec₀, sec₁, …)] in row-major order over the {e normalised}
    (ascending) sections, last dimension innermost, calling [f] with the
    global multi-index and the node-local row-major address. The [global]
    array is reused across calls — copy it if you keep it. Each
    dimension's owned subsequence comes from the 1-D machinery
    ([Enumerate]), so the per-dimension work is the paper's
    [O(k + log min(s, pk))].
    @raise Invalid_argument on rank mismatch or out-of-bounds sections. *)

val inner_gap_table :
  t -> sections:Lams_dist.Section.t array -> coords:int array ->
  Lams_core.Access_table.t
(** The innermost dimension's [AM] table. The last dimension is
    contiguous in the row-major local storage, so its entries are directly
    linear-address gaps — the table a code generator would use for the
    innermost loop while keeping the outer loops explicit. *)
