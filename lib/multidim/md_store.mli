(** A multidimensional distributed array with per-grid-node storage: the
    multidimensional counterpart of [Lams_sim.Darray], packaged at the
    multidim level so applications can build block-scattered matrices
    (ScaLAPACK-style) without assembling the pieces by hand. *)

type t = private {
  md : Md_array.t;
  stores : float array array;  (** indexed by grid rank *)
}

val create :
  dims:int array ->
  dists:Lams_dist.Distribution.t array ->
  grid:Lams_dist.Proc_grid.t ->
  t
(** Zero-filled. Validation as in {!Md_array.create}. *)

val init : t -> f:(int array -> float) -> unit
(** Fill from a function of the global multi-index (front-end path). *)

val get : t -> int array -> float
(** Owner-indirected global read. @raise Invalid_argument on bad index. *)

val set : t -> int array -> float -> unit

val fill_section : t -> sections:Lams_dist.Section.t array -> float -> unit
(** Owner-computes constant assignment over a Cartesian section: every
    node traverses its share through the per-dimension 1-D machinery. *)

val map_section :
  t -> sections:Lams_dist.Section.t array -> f:(float -> float) -> unit
(** Owner-computes pointwise in-place update of a section. *)

val sum_section : t -> sections:Lams_dist.Section.t array -> float
(** Per-node partial sums over the owned share, combined globally. *)

val gather : t -> float array
(** Row-major global contents. *)

val local : t -> rank:int -> float array
(** A node's raw store. @raise Invalid_argument if out of range. *)
