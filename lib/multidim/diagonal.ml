open Lams_numeric
open Lams_dist
open Lams_core

type spec = { start : int array; steps : int array; count : int }

let make ~start ~steps ~count =
  if Array.length start <> Array.length steps then
    invalid_arg "Diagonal.make: rank mismatch between start and steps";
  if Array.exists (fun u -> u = 0) steps then
    invalid_arg "Diagonal.make: zero step";
  if count < 1 then invalid_arg "Diagonal.make: count < 1";
  { start = Array.copy start; steps = Array.copy steps; count }

let in_bounds (md : Md_array.t) spec =
  Array.length spec.start = Array.length md.Md_array.dims
  && Array.for_all Fun.id
       (Array.mapi
          (fun d r ->
            let last = r + ((spec.count - 1) * spec.steps.(d)) in
            min r last >= 0 && max r last < md.Md_array.dims.(d))
          spec.start)

type run = { first : int; period : int; count : int }

let check md spec ~coords name =
  if Array.length coords <> Array.length md.Md_array.dims then
    invalid_arg ("Diagonal." ^ name ^ ": coords rank mismatch");
  if not (in_bounds md spec) then
    invalid_arg ("Diagonal." ^ name ^ ": diagonal leaves the array")

(* Residue classes (mod that dimension's cycle length) of positions j for
   which coordinate c of dimension d owns index start_d + j * step_d. *)
let dim_classes (md : Md_array.t) spec ~d ~c =
  let lay = md.Md_array.layouts.(d) in
  let u = spec.steps.(d) and r = spec.start.(d) in
  let lo = if u > 0 then r else r + ((spec.count - 1) * u) in
  let pr =
    Problem.make ~p:lay.Layout.p ~k:lay.Layout.k ~l:lo ~s:(abs u)
  in
  let period = Problem.cycle_indices pr in
  let locs = Start_finder.first_cycle_locations pr ~m:c in
  let residues =
    Array.to_list locs
    |> List.map (fun loc ->
           let j_asc = (loc - lo) / abs u in
           if u > 0 then j_asc
           else Modular.emod (spec.count - 1 - j_asc) period)
  in
  (residues, period)

let intersect_classes (r1, p1) (r2, p2) =
  let g, x, _ = Euclid.egcd p1 p2 in
  if (r2 - r1) mod g <> 0 then None
  else begin
    let lcm = p1 / g * p2 in
    let t = (r2 - r1) / g * x mod (p2 / g) in
    Some (Modular.emod (r1 + (p1 * t)) lcm, lcm)
  end

let owned_runs md spec ~coords =
  check md spec ~coords "owned_runs";
  let rank = Array.length coords in
  (* Fold the per-dimension class unions through CRT intersection. *)
  let rec combine d acc =
    if d = rank then acc
    else begin
      let classes, period = dim_classes md spec ~d ~c:coords.(d) in
      let acc' =
        List.concat_map
          (fun cls ->
            List.filter_map
              (fun r -> intersect_classes cls (r, period))
              classes)
          acc
      in
      combine (d + 1) acc'
    end
  in
  combine 0 [ (0, 1) ]
  |> List.filter_map (fun (residue, modulus) ->
         if residue >= spec.count then None
         else
           Some
             { first = residue;
               period = modulus;
               count = 1 + ((spec.count - 1 - residue) / modulus) })
  |> List.sort (fun a b -> compare a.first b.first)

let positions r = List.init r.count (fun t -> r.first + (t * r.period))

let count_owned md spec ~coords =
  List.fold_left (fun acc r -> acc + r.count) 0 (owned_runs md spec ~coords)

let iter_owned md spec ~coords ~f =
  let runs = owned_runs md spec ~coords in
  let rank = Array.length coords in
  let global = Array.make rank 0 in
  (* Merge runs in increasing j: runs are disjoint but may interleave. *)
  let all = List.concat_map positions runs |> List.sort compare in
  List.iter
    (fun j ->
      for d = 0 to rank - 1 do
        global.(d) <- spec.start.(d) + (j * spec.steps.(d))
      done;
      f ~j ~global ~local:(Md_array.local_address md ~coords global))
    all
