(** Trapezoidal (including triangular) array sections — the paper's other
    future-work shape (§8).

    The region is a set of matrix rows with affinely-varying column
    bounds: for each row [i] of [rows], columns run from
    [col_lo(i) = a_lo*i + b_lo] to [col_hi(i) = a_hi*i + b_hi] (inclusive)
    with stride [col_stride]. A lower-triangular sweep is
    [rows = 0:n-1, col_lo = 0, col_hi = i]; a trapezoid tilts both bounds.
    Rows with an empty column range contribute nothing.

    Per grid node, the owned rows come from one application of the 1-D
    machinery on dimension 0; each owned row's owned columns come from one
    application on dimension 1 — the "multiple applications" recipe of
    §2, just with per-row parameters. *)

type bound = { scale : int; offset : int }
(** [i ↦ scale*i + offset]; unlike [Alignment], [scale = 0] (a constant
    bound) is allowed. *)

val bound : scale:int -> offset:int -> bound
val const : int -> bound

type spec = {
  rows : Lams_dist.Section.t;  (** dimension-0 indices *)
  col_lo : bound;  (** i ↦ first column *)
  col_hi : bound;  (** i ↦ last column (inclusive) *)
  col_stride : int;  (** positive *)
}

val make :
  rows:Lams_dist.Section.t ->
  col_lo:bound -> col_hi:bound -> ?col_stride:int -> unit -> spec
(** @raise Invalid_argument if [col_stride <= 0] or [rows] is empty. *)

val lower_triangle : n:int -> spec
(** Rows [0..n-1], columns [0..i]. *)

val upper_triangle : n:int -> spec
(** Rows [0..n-1], columns [i..n-1]. *)

val row_columns : spec -> int -> Lams_dist.Section.t option
(** The column section of one row; [None] when empty. *)

val in_bounds : Md_array.t -> spec -> bool
(** Every (row, column) cell inside the (rank-2) array. *)

val total_cells : spec -> int
(** Number of cells in the region. *)

val iter_owned :
  Md_array.t -> spec -> coords:int array ->
  f:(row:int -> col:int -> local:int -> unit) -> unit
(** Visit the node's cells in row-major order (rows ascending after
    normalisation, columns ascending).
    @raise Invalid_argument unless the array has rank 2, [coords]
    matches, and the spec is in bounds. *)

val count_owned : Md_array.t -> spec -> coords:int array -> int
(** Cells the node owns; closed-form per row ([O(rows · k₁/d₁)] total,
    independent of column count). *)
