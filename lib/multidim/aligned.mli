(** Access sequences under non-identity affine alignments (§2).

    Array element [A(i)] lives at template cell [a*i + b]; the template is
    distributed [cyclic(k)] over [p] processors. Each processor stores
    {e only the array elements whose template cell it owns}, packed in
    increasing template-cell order. The paper notes the access problem for
    any affine alignment is solved "by two applications of the access
    sequence computation algorithm for the identity alignment": one over
    the section's template-cell image (which elements does the processor
    own, and in what order), and one over the array's full template-cell
    image (where each owned element sits in the packed local store).

    This module composes those two applications. The packed address of an
    owned element is computed with the closed-form rank function
    [F(c) = count_owned(image, u = c)] — [O(k/d)] per element, so building
    a full gap table is [O(k²/d)]; correct and simple (the authors' ICS'95
    paper engineers this to [O(k)], out of scope here — cross-validated
    against brute force instead). *)

type t = private {
  p : int;
  k : int;
  align : Lams_dist.Alignment.t;
  array_size : int;
  image : Lams_dist.Section.t;  (** template cells of the whole array *)
}

val create :
  p:int -> k:int -> align:Lams_dist.Alignment.t -> array_size:int -> t
(** @raise Invalid_argument if any image cell would be negative (the
    template must start at cell 0 or later) or sizes are non-positive. *)

val template_extent : t -> int
(** Template cells needed: one past the largest image cell. *)

val owner : t -> int -> int
(** Owning processor of array element [i] (through its template cell). *)

val packed_count : t -> m:int -> int
(** Number of array elements processor [m] stores. *)

val packed_address : t -> m:int -> int -> int option
(** Packed local address of array element [i] on processor [m]; [None]
    when [m] does not own it. *)

val traverse :
  t -> section:Lams_dist.Section.t -> m:int -> (int * int) Seq.t
(** [(array index, packed address)] for the processor's share of
    [A(section)], in ascending template-cell order — which is ascending
    array-index order whenever the alignment scale is positive.
    @raise Invalid_argument if the section leaves [\[0, array_size)]. *)

val gap_table :
  t -> section:Lams_dist.Section.t -> m:int -> Lams_core.Access_table.t
(** Packed-storage gap table: the same contract as [Kns.gap_table], but
    gaps are distances in the packed local store. [start] is the global
    {e array index} of the first owned section element. *)
