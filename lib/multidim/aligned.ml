open Lams_dist
open Lams_core

type t = {
  p : int;
  k : int;
  align : Alignment.t;
  array_size : int;
  image : Section.t;
}

let create ~p ~k ~align ~array_size =
  if p <= 0 || k <= 0 then invalid_arg "Aligned.create: p, k must be positive";
  if array_size <= 0 then invalid_arg "Aligned.create: array_size <= 0";
  let image =
    Section.normalize
      (Section.make ~lo:(Alignment.apply align 0)
         ~hi:(Alignment.apply align (array_size - 1))
         ~stride:align.Alignment.scale)
  in
  if image.Section.lo < 0 then
    invalid_arg "Aligned.create: alignment maps below template cell 0";
  { p; k; align; array_size; image }

let template_extent t = t.image.Section.hi + 1

let layout t = Layout.create ~p:t.p ~k:t.k

let image_problem t = Problem.of_section (layout t) t.image

let cell t i = Alignment.apply t.align i

let owner t i =
  if i < 0 || i >= t.array_size then invalid_arg "Aligned.owner: index out of range";
  Layout.owner (layout t) (cell t i)

let packed_count t ~m =
  Start_finder.count_owned (image_problem t) ~m ~u:t.image.Section.hi

(* Rank of an owned image cell within processor m's packed store: the
   number of owned image cells at or below it, minus one. *)
let rank_of_cell t ~m c = Start_finder.count_owned (image_problem t) ~m ~u:c - 1

let packed_address t ~m i =
  if i < 0 || i >= t.array_size then
    invalid_arg "Aligned.packed_address: index out of range";
  let c = cell t i in
  if Layout.owner (layout t) c <> m then None else Some (rank_of_cell t ~m c)

let check_section t section =
  if Section.is_empty section then invalid_arg "Aligned: empty section";
  let norm = Section.normalize section in
  if norm.Section.lo < 0 || norm.Section.hi >= t.array_size then
    invalid_arg "Aligned: section outside the array"

(* The section's template-cell image, normalised. *)
let section_cells t section =
  Section.normalize (Alignment.section_image t.align (Section.normalize section))

let traverse t ~section ~m =
  check_section t section;
  let cells = section_cells t section in
  let pr = Problem.of_section (layout t) cells in
  Enumerate.seq pr ~m ~u:cells.Section.hi
  |> Seq.map (fun (c, _template_local) ->
         let i =
           match Alignment.preimage t.align c with
           | Some i -> i
           | None -> assert false (* c is in the image by construction *)
         in
         (i, rank_of_cell t ~m c))

let gap_table t ~section ~m =
  check_section t section;
  let cells = section_cells t section in
  let pr = Problem.of_section (layout t) cells in
  let { Start_finder.length; _ } = Start_finder.find pr ~m in
  if length = 0 then Access_table.empty
  else begin
    (* One period of the cell-offset pattern plus the wrap element. *)
    let elems = Brute.owned_prefix pr ~m ~count:(length + 1) in
    let ranks = Array.map (fun c -> rank_of_cell t ~m c) elems in
    let gaps = Array.init length (fun j -> ranks.(j + 1) - ranks.(j)) in
    let first_index =
      match Alignment.preimage t.align elems.(0) with
      | Some i -> i
      | None -> assert false
    in
    { Access_table.start = Some first_index;
      start_local = Some ranks.(0);
      length;
      gaps }
  end
