open Lams_dist
open Lams_core

type t = {
  dims : int array;
  layouts : Layout.t array;
  grid : Proc_grid.t;
}

let create ~dims ~dists ~grid =
  let r = Array.length dims in
  if r = 0 then invalid_arg "Md_array.create: rank 0";
  if Array.length dists <> r || Proc_grid.ndims grid <> r then
    invalid_arg "Md_array.create: rank mismatch between dims/dists/grid";
  Array.iter (fun n -> if n <= 0 then invalid_arg "Md_array.create: extent <= 0") dims;
  let layouts =
    Array.init r (fun t ->
        Distribution.to_layout dists.(t) ~n:dims.(t) ~p:(Proc_grid.dim grid t))
  in
  { dims; layouts; grid }

let rank t = Array.length t.dims

let check_rank t arr name =
  if Array.length arr <> rank t then
    invalid_arg ("Md_array." ^ name ^ ": rank mismatch")

let owner_coords t idx =
  check_rank t idx "owner_coords";
  Array.mapi (fun d i -> Layout.owner t.layouts.(d) i) idx

let owner_rank t idx = Proc_grid.rank_of_coords t.grid (owner_coords t idx)

let local_extents t ~coords =
  check_rank t coords "local_extents";
  Array.mapi
    (fun d c -> Layout.local_extent t.layouts.(d) ~n:t.dims.(d) ~proc:c)
    coords

let local_size t ~coords = Array.fold_left ( * ) 1 (local_extents t ~coords)

(* Row-major weights: weight of dim d is the product of local extents of
   dims d+1.. *)
let weights_of extents =
  let r = Array.length extents in
  let w = Array.make r 1 in
  for d = r - 2 downto 0 do
    w.(d) <- w.(d + 1) * extents.(d + 1)
  done;
  w

let local_address t ~coords idx =
  check_rank t coords "local_address";
  check_rank t idx "local_address";
  let extents = local_extents t ~coords in
  let w = weights_of extents in
  let addr = ref 0 in
  Array.iteri
    (fun d i ->
      if Layout.owner t.layouts.(d) i <> coords.(d) then
        invalid_arg "Md_array.local_address: element not owned by coords";
      addr := !addr + (Layout.local_address t.layouts.(d) i * w.(d)))
    idx;
  !addr

let check_sections t sections =
  check_rank t sections "sections";
  Array.iteri
    (fun d sec ->
      if Section.is_empty sec then invalid_arg "Md_array: empty section";
      let norm = Section.normalize sec in
      if norm.Section.lo < 0 || norm.Section.hi >= t.dims.(d) then
        invalid_arg "Md_array: section outside the array")
    sections

let traverse_owned t ~sections ~coords ~f =
  check_rank t coords "traverse_owned";
  check_sections t sections;
  let r = rank t in
  let extents = local_extents t ~coords in
  let w = weights_of extents in
  (* Per-dimension owned subsequences: (global, dim-local) pairs from the
     1-D enumerator, materialised once per dimension. *)
  let per_dim =
    Array.init r (fun d ->
        let norm = Section.normalize sections.(d) in
        let pr = Problem.of_section t.layouts.(d) norm in
        Enumerate.seq pr ~m:coords.(d) ~u:norm.Section.hi |> Array.of_seq)
  in
  if Array.for_all (fun a -> Array.length a > 0) per_dim then begin
    let global = Array.make r 0 in
    let rec nest d partial_addr =
      if d = r then f ~global ~local:partial_addr
      else
        Array.iter
          (fun (g, local_1d) ->
            global.(d) <- g;
            nest (d + 1) (partial_addr + (local_1d * w.(d))))
          per_dim.(d)
    in
    nest 0 0
  end

let inner_gap_table t ~sections ~coords =
  check_rank t coords "inner_gap_table";
  check_sections t sections;
  let d = rank t - 1 in
  let norm = Section.normalize sections.(d) in
  let pr = Problem.of_section t.layouts.(d) norm in
  Kns.gap_table pr ~m:coords.(d)
