(** Diagonal array sections — one of the paper's explicit future-work
    items (§8: "compiling programs that access diagonal or trapezoidal
    array sections … in the presence of cyclic(k) distributions").

    A diagonal access touches [A(r0 + j*u0, r1 + j*u1)] for
    [j = 0 … count-1] with per-step increments [u0, u1] (the main diagonal
    is [u0 = u1 = 1]). Ownership must hold in {e both} dimensions at once:
    each dimension's owned positions form residue classes modulo that
    dimension's cycle length, so a grid node's positions are CRT
    intersections of one class per dimension — arithmetic progressions,
    found in closed form exactly as for communication sets. *)

type spec = {
  start : int array;  (** [r_d]: starting index per dimension *)
  steps : int array;  (** [u_d]: per-position increment per dimension;
                          each non-zero *)
  count : int;  (** number of positions, [>= 1] *)
}

val make : start:int array -> steps:int array -> count:int -> spec
(** @raise Invalid_argument on rank mismatch, zero step, or
    [count < 1]. *)

val in_bounds : Md_array.t -> spec -> bool
(** Does every position stay inside the array? *)

type run = { first : int; period : int; count : int }
(** Positions [first, first+period, …], all in [\[0, spec.count)]. *)

val owned_runs : Md_array.t -> spec -> coords:int array -> run list
(** The grid node's positions along the diagonal, as disjoint sorted
    progressions, computed without enumerating the diagonal.
    @raise Invalid_argument on rank mismatch or out-of-bounds spec. *)

val iter_owned :
  Md_array.t -> spec -> coords:int array ->
  f:(j:int -> global:int array -> local:int -> unit) -> unit
(** Visit the node's diagonal positions in increasing [j], with the
    global multi-index and node-local row-major address. The [global]
    array is reused between calls. *)

val count_owned : Md_array.t -> spec -> coords:int array -> int
(** Closed-form count ([O(cells in one CRT table)], not [O(count)]). *)

val positions : run -> int list
