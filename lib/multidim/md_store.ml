open Lams_dist

type t = { md : Md_array.t; stores : float array array }

let create ~dims ~dists ~grid =
  let md = Md_array.create ~dims ~dists ~grid in
  let stores =
    Array.init (Proc_grid.size grid) (fun r ->
        Array.make
          (Md_array.local_size md
             ~coords:(Proc_grid.coords_of_rank grid r))
          0.)
  in
  { md; stores }

let rank_and_addr t idx =
  let coords = Md_array.owner_coords t.md idx in
  (Proc_grid.rank_of_coords t.md.Md_array.grid coords,
   Md_array.local_address t.md ~coords idx)

let get t idx =
  let r, a = rank_and_addr t idx in
  t.stores.(r).(a)

let set t idx v =
  let r, a = rank_and_addr t idx in
  t.stores.(r).(a) <- v

let iter_global t f =
  let dims = t.md.Md_array.dims in
  let rank = Array.length dims in
  let idx = Array.make rank 0 in
  let rec nest d =
    if d = rank then f idx
    else
      for i = 0 to dims.(d) - 1 do
        idx.(d) <- i;
        nest (d + 1)
      done
  in
  nest 0

let init t ~f = iter_global t (fun idx -> set t idx (f idx))

let for_each_node t f =
  let grid = t.md.Md_array.grid in
  for r = 0 to Proc_grid.size grid - 1 do
    f ~rank:r ~coords:(Proc_grid.coords_of_rank grid r)
  done

let fill_section t ~sections v =
  let normalized = Array.map Section.normalize sections in
  for_each_node t (fun ~rank ~coords ->
      let data = t.stores.(rank) in
      Md_array.traverse_owned t.md ~sections:normalized ~coords
        ~f:(fun ~global:_ ~local -> data.(local) <- v))

let map_section t ~sections ~f =
  let normalized = Array.map Section.normalize sections in
  for_each_node t (fun ~rank ~coords ->
      let data = t.stores.(rank) in
      Md_array.traverse_owned t.md ~sections:normalized ~coords
        ~f:(fun ~global:_ ~local -> data.(local) <- f data.(local)))

let sum_section t ~sections =
  let normalized = Array.map Section.normalize sections in
  let total = ref 0. in
  for_each_node t (fun ~rank ~coords ->
      let data = t.stores.(rank) in
      let partial = ref 0. in
      Md_array.traverse_owned t.md ~sections:normalized ~coords
        ~f:(fun ~global:_ ~local -> partial := !partial +. data.(local));
      total := !total +. !partial);
  !total

let gather t =
  let dims = t.md.Md_array.dims in
  let total = Array.fold_left ( * ) 1 dims in
  let out = Array.make total 0. in
  let at = ref 0 in
  iter_global t (fun idx ->
      out.(!at) <- get t idx;
      incr at);
  out

let local t ~rank =
  if rank < 0 || rank >= Array.length t.stores then
    invalid_arg "Md_store.local: rank out of range";
  t.stores.(rank)
