open Lams_dist
open Lams_core

type bound = { scale : int; offset : int }

let bound ~scale ~offset = { scale; offset }
let const offset = { scale = 0; offset }
let eval b i = (b.scale * i) + b.offset

type spec = {
  rows : Section.t;
  col_lo : bound;
  col_hi : bound;
  col_stride : int;
}

let make ~rows ~col_lo ~col_hi ?(col_stride = 1) () =
  if col_stride <= 0 then invalid_arg "Trapezoid.make: col_stride <= 0";
  if Section.is_empty rows then invalid_arg "Trapezoid.make: empty row range";
  { rows; col_lo; col_hi; col_stride }

let lower_triangle ~n =
  make ~rows:(Section.whole ~n) ~col_lo:(const 0)
    ~col_hi:(bound ~scale:1 ~offset:0) ()

let upper_triangle ~n =
  make ~rows:(Section.whole ~n)
    ~col_lo:(bound ~scale:1 ~offset:0)
    ~col_hi:(const (n - 1))
    ()

let row_columns spec i =
  let lo = eval spec.col_lo i and hi = eval spec.col_hi i in
  if lo > hi then None else Some (Section.make ~lo ~hi ~stride:spec.col_stride)

let check_rank (md : Md_array.t) name =
  if Array.length md.Md_array.dims <> 2 then
    invalid_arg ("Trapezoid." ^ name ^ ": rank-2 array required")

let in_bounds (md : Md_array.t) spec =
  Array.length md.Md_array.dims = 2
  && Section.fold spec.rows ~init:true ~f:(fun ok i ->
         ok
         && i >= 0
         && i < md.Md_array.dims.(0)
         &&
         match row_columns spec i with
         | None -> true
         | Some cols ->
             let norm = Section.normalize cols in
             norm.Section.lo >= 0 && norm.Section.hi < md.Md_array.dims.(1))

let total_cells spec =
  Section.fold spec.rows ~init:0 ~f:(fun acc i ->
      acc
      + match row_columns spec i with None -> 0 | Some c -> Section.count c)

let check md spec ~coords name =
  check_rank md name;
  if Array.length coords <> 2 then
    invalid_arg ("Trapezoid." ^ name ^ ": coords rank mismatch");
  if not (in_bounds md spec) then
    invalid_arg ("Trapezoid." ^ name ^ ": region leaves the array")

(* Owned rows of dimension 0, ascending. *)
let owned_rows (md : Md_array.t) spec ~coords =
  let rows = Section.normalize spec.rows in
  let pr0 = Problem.of_section md.Md_array.layouts.(0) rows in
  Enumerate.seq pr0 ~m:coords.(0) ~u:rows.Section.hi |> Seq.map fst

let iter_owned md spec ~coords ~f =
  check md spec ~coords "iter_owned";
  let lay1 = md.Md_array.layouts.(1) in
  (* Row-major local storage: a row's cells start at local0 * extent1. *)
  let w = Layout.local_extent lay1 ~n:md.Md_array.dims.(1) ~proc:coords.(1) in
  let lay0 = md.Md_array.layouts.(0) in
  Seq.iter
    (fun row ->
      match row_columns spec row with
      | None -> ()
      | Some cols ->
          let cols = Section.normalize cols in
          if not (Section.is_empty cols) then begin
            let pr1 = Problem.of_section lay1 cols in
            let row_base = Layout.local_address lay0 row * w in
            Enumerate.iter_bounded pr1 ~m:coords.(1) ~u:cols.Section.hi
              ~f:(fun col local1 -> f ~row ~col ~local:(row_base + local1))
          end)
    (owned_rows md spec ~coords)

let count_owned md spec ~coords =
  check md spec ~coords "count_owned";
  let lay1 = md.Md_array.layouts.(1) in
  Seq.fold_left
    (fun acc row ->
      match row_columns spec row with
      | None -> acc
      | Some cols ->
          let cols = Section.normalize cols in
          if Section.is_empty cols then acc
          else begin
            let pr1 = Problem.of_section lay1 cols in
            acc + Start_finder.count_owned pr1 ~m:coords.(1) ~u:cols.Section.hi
          end)
    0
    (owned_rows md spec ~coords)
