open Lams_core
open Lams_dist
open Lams_util

(* --- Observability ------------------------------------------------- *)

let c_cases =
  Lams_obs.Obs.counter "check.cases" ~units:"cases"
    ~doc:"fuzz cases run through the oracle matrix"

let c_mismatches =
  Lams_obs.Obs.counter "check.mismatches" ~units:"mismatches"
    ~doc:"differential divergences found (before shrinking)"

let c_shrink_steps =
  Lams_obs.Obs.counter "check.shrink_steps" ~units:"reductions"
    ~doc:"successful counterexample reductions"

let c_fault_rounds =
  Lams_obs.Obs.counter "check.fault_rounds" ~units:"rounds"
    ~doc:"domain-pool fault-injection / contention rounds"

let c_native_rounds =
  Lams_obs.Obs.counter "check.native_rounds" ~units:"rounds"
    ~doc:"compiled-C conformance rounds (table, table-free vs interpreter)"

let c_comm_rounds =
  Lams_obs.Obs.counter "check.comm_rounds" ~units:"rounds"
    ~doc:"comm-set inspector rounds (linear joint-cycle walk vs all-pairs CRT)"

let c_adaptive_rounds =
  Lams_obs.Obs.counter "check.adaptive_rounds" ~units:"rounds"
    ~doc:"adaptive-scheduling rounds (adaptive vs cost-blind vs legacy on \
          heterogeneous fabrics)"

(* --- Cases --------------------------------------------------------- *)

type case = { p : int; k : int; l : int; s : int; u : int }

let case_problem c = Problem.make ~p:c.p ~k:c.k ~l:c.l ~s:c.s

let pp_case ppf c =
  Format.fprintf ppf "p=%d k=%d l=%d s=%d u=%d" c.p c.k c.l c.s c.u

type mismatch = {
  case : case;
  m : int;
  oracle : string;
  candidate : string;
  detail : string;
}

let repro_line mm =
  Printf.sprintf "lams explain -p %d -k %d -l %d -s %d -m %d -n %d" mm.case.p
    mm.case.k mm.case.l mm.case.s (max 0 mm.m) (mm.case.u + 1)

let pp_mismatch ppf mm =
  Format.fprintf ppf
    "@[<v>%s disagrees with %s on %a%s:@ %s@ repro: %s@]" mm.candidate
    mm.oracle pp_case mm.case
    (if mm.m >= 0 then Printf.sprintf " (processor %d)" mm.m else "")
    mm.detail (repro_line mm)

exception Found of mismatch

let fail case ~m ~oracle ~candidate detail =
  raise (Found { case; m; oracle; candidate; detail })

(* --- Oracle helpers ------------------------------------------------ *)

let table_str t = Format.asprintf "%a" Access_table.pp t

let ints_str a =
  "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int a)) ^ "]"

let opt_str = function None -> "none" | Some g -> string_of_int g

(* Everything bounded is measured against this: the owned elements of
   [A(l:u:s)] on processor m, found by scanning the section one index at
   a time with only the ownership test — no Euclid, no lattice, no FSM. *)
let brute_owned pr ~m ~u = Brute.owned_up_to pr ~m ~u

let brute_last pr ~m ~u =
  let owned = brute_owned pr ~m ~u in
  let n = Array.length owned in
  if n = 0 then None else Some owned.(n - 1)

(* Replay [steps] gaps out of an FSM and compare against the oracle
   table's cyclic gap sequence. *)
let check_fsm_replay case ~m ~candidate ~(expected : Access_table.t) fsm =
  let steps = 2 * expected.Access_table.length in
  if steps > 0 then begin
    let want =
      Array.init steps (fun j ->
          expected.Access_table.gaps.(j mod expected.Access_table.length))
    in
    let got =
      try Fsm.walk fsm ~steps
      with e ->
        fail case ~m ~oracle:"brute" ~candidate
          ("replay raised " ^ Printexc.to_string e)
    in
    if got <> want then
      fail case ~m ~oracle:"brute" ~candidate
        (Printf.sprintf "replayed gaps %s, expected %s" (ints_str got)
           (ints_str want))
  end

(* --- The per-processor oracle matrix ------------------------------- *)

let check_processor case pr ~shared ~auto ~view ~view2 ~m =
  let expected = Brute.gap_table pr ~m in
  (* 1. Gap tables: every closed-form/table algorithm against brute. *)
  let candidates =
    [ ("kns", fun () -> Kns.gap_table pr ~m);
      ("chatterjee", fun () -> Chatterjee.gap_table pr ~m);
      ("auto", fun () -> Auto.gap_table auto ~m);
      ("plan_cache", fun () -> Plan_cache.table view ~m);
      ("plan_cache(hit)", fun () -> Plan_cache.table view2 ~m) ]
    @ (if Hiranandani.applicable pr then
         [ ("hiranandani", fun () -> Hiranandani.gap_table pr ~m) ]
       else [])
    @
    match shared with
    | Some sh -> [ ("shared_fsm", fun () -> Shared_fsm.gap_table sh ~m) ]
    | None -> []
  in
  List.iter
    (fun (candidate, build) ->
      let got =
        try build ()
        with e ->
          fail case ~m ~oracle:"brute" ~candidate
            ("raised " ^ Printexc.to_string e)
      in
      if not (Access_table.equal got expected) then
        fail case ~m ~oracle:"brute" ~candidate
          (Printf.sprintf "table %s, expected %s" (table_str got)
             (table_str expected)))
    candidates;
  (* 2. FSM replays: per-processor build, the shared master's view, and
     the cached view. *)
  (match Fsm.build pr ~m with
  | None ->
      if expected.Access_table.length <> 0 then
        fail case ~m ~oracle:"brute" ~candidate:"fsm"
          "Fsm.build returned None for a non-empty window"
  | Some fsm ->
      if expected.Access_table.length = 0 then
        fail case ~m ~oracle:"brute" ~candidate:"fsm"
          "Fsm.build returned a table for an empty window"
      else check_fsm_replay case ~m ~candidate:"fsm" ~expected fsm);
  (match shared with
  | Some sh when expected.Access_table.length > 0 ->
      check_fsm_replay case ~m ~candidate:"shared_fsm.fsm_for" ~expected
        (Shared_fsm.fsm_for sh ~m)
  | _ -> ());
  (match Plan_cache.fsm view ~m with
  | None ->
      if expected.Access_table.length <> 0 then
        fail case ~m ~oracle:"brute" ~candidate:"plan_cache.fsm"
          "cached FSM missing for a non-empty window"
  | Some fsm ->
      if expected.Access_table.length = 0 then
        fail case ~m ~oracle:"brute" ~candidate:"plan_cache.fsm"
          "cached FSM present for an empty window"
      else check_fsm_replay case ~m ~candidate:"plan_cache.fsm" ~expected fsm);
  (* 3. Bounded facts: starts, lasts, counts. *)
  let owned = brute_owned pr ~m ~u:case.u in
  let found = Start_finder.find pr ~m in
  if found.Start_finder.start <> expected.Access_table.start then
    fail case ~m ~oracle:"brute" ~candidate:"start_finder"
      (Printf.sprintf "start %s, expected %s"
         (opt_str found.Start_finder.start)
         (opt_str expected.Access_table.start));
  if found.Start_finder.length <> expected.Access_table.length then
    fail case ~m ~oracle:"brute" ~candidate:"start_finder"
      (Printf.sprintf "period length %d, expected %d"
         found.Start_finder.length expected.Access_table.length);
  let want_last = brute_last pr ~m ~u:case.u in
  let got_last = Start_finder.last_location pr ~m ~u:case.u in
  if got_last <> want_last then
    fail case ~m ~oracle:"brute" ~candidate:"last_location"
      (Printf.sprintf "last %s, expected %s" (opt_str got_last)
         (opt_str want_last));
  let cache_last = Plan_cache.last_location view ~m in
  if cache_last <> want_last then
    fail case ~m ~oracle:"brute" ~candidate:"plan_cache.last_location"
      (Printf.sprintf "last %s, expected %s (view shift %d)"
         (opt_str cache_last) (opt_str want_last) (Plan_cache.g_shift view));
  let got_count = Start_finder.count_owned pr ~m ~u:case.u in
  if got_count <> Array.length owned then
    fail case ~m ~oracle:"brute" ~candidate:"count_owned"
      (Printf.sprintf "count %d, expected %d" got_count (Array.length owned));
  (* 4. The enumerator, bounded: both the cursor Seq and the inlined
     loop must visit exactly the owned elements, in order, with the
     packed local address of each. *)
  let lay = Problem.layout pr in
  let want_locals = Array.map (fun g -> Layout.local_address lay g) owned in
  let check_enum candidate got_pairs =
    let got_g = Array.map fst got_pairs and got_l = Array.map snd got_pairs in
    if got_g <> owned then
      fail case ~m ~oracle:"brute" ~candidate
        (Printf.sprintf "globals %s, expected %s" (ints_str got_g)
           (ints_str owned));
    if got_l <> want_locals then
      fail case ~m ~oracle:"brute" ~candidate
        (Printf.sprintf "locals %s, expected %s" (ints_str got_l)
           (ints_str want_locals))
  in
  check_enum "enumerate.seq"
    (Array.of_seq (Enumerate.seq pr ~m ~u:case.u));
  let acc = ref [] in
  Enumerate.iter_bounded pr ~m ~u:case.u ~f:(fun g local ->
      acc := (g, local) :: !acc);
  check_enum "enumerate.iter_bounded" (Array.of_list (List.rev !acc));
  (* 5. Whole-machine plans: the cached path must be indistinguishable
     from the seed per-processor path, and both must traverse exactly
     the brute-force local addresses (all four Figure 8 shapes). *)
  let pu = Lams_codegen.Plan.build_uncached pr ~m ~u:case.u in
  let pc = Lams_codegen.Plan.build pr ~m ~u:case.u in
  (match (pu, pc) with
  | None, None ->
      if Array.length owned > 0 then
        fail case ~m ~oracle:"brute" ~candidate:"plan"
          "no plan although the processor owns elements"
  | Some _, None ->
      fail case ~m ~oracle:"plan_uncached" ~candidate:"plan_cached"
        "cached build returned None, uncached returned a plan"
  | None, Some _ ->
      fail case ~m ~oracle:"plan_uncached" ~candidate:"plan_cached"
        "cached build returned a plan, uncached returned None"
  | Some a, Some b ->
      if Array.length owned = 0 then
        fail case ~m ~oracle:"brute" ~candidate:"plan"
          "plan built although the processor owns nothing";
      let field name proj to_str =
        if proj a <> proj b then
          fail case ~m ~oracle:"plan_uncached" ~candidate:"plan_cached"
            (Printf.sprintf "%s: uncached %s, cached %s" name
               (to_str (proj a)) (to_str (proj b)))
      in
      field "start_local" (fun p -> p.Lams_codegen.Plan.start_local)
        string_of_int;
      field "last_local" (fun p -> p.Lams_codegen.Plan.last_local)
        string_of_int;
      field "length" (fun p -> p.Lams_codegen.Plan.length) string_of_int;
      field "start_offset" (fun p -> p.Lams_codegen.Plan.start_offset)
        string_of_int;
      if a.Lams_codegen.Plan.delta_m <> b.Lams_codegen.Plan.delta_m then
        fail case ~m ~oracle:"plan_uncached" ~candidate:"plan_cached"
          (Printf.sprintf "delta_m: uncached %s, cached %s"
             (ints_str a.Lams_codegen.Plan.delta_m)
             (ints_str b.Lams_codegen.Plan.delta_m));
      List.iter
        (fun (plan_name, plan) ->
          List.iter
            (fun shape ->
              let got = Lams_codegen.Shapes.addresses shape plan in
              if got <> want_locals then
                fail case ~m ~oracle:"brute"
                  ~candidate:
                    (Printf.sprintf "%s/shape %s" plan_name
                       (Lams_codegen.Shapes.name shape))
                  (Printf.sprintf "addresses %s, expected %s" (ints_str got)
                     (ints_str want_locals)))
            Lams_codegen.Shapes.all)
        [ ("plan_uncached", a); ("plan_cached", b) ])

(* --- Machine-wide simulator checks --------------------------------- *)

(* Cap on the global array size we are willing to materialize for the
   fill/copy oracles; cases beyond it are still fully checked through
   the table matrix above. *)
let sim_extent_cap = 32_768

let sim_checks case =
  if case.u >= case.l && case.u + 1 <= sim_extent_cap then begin
    let open Lams_sim in
    let n = case.u + 1 in
    let sec = Section.make ~lo:case.l ~hi:case.u ~stride:case.s in
    let dist = Distribution.Block_cyclic case.k in
    (* Parallel fill ≡ sequential fill ≡ membership oracle. *)
    let seq_arr = Darray.create ~name:"chk_seq" ~n ~p:case.p ~dist in
    let par_arr = Darray.create ~name:"chk_par" ~n ~p:case.p ~dist in
    Section_ops.fill seq_arr sec 7.5;
    Section_ops.fill ~parallel:true par_arr sec 7.5;
    if not (Darray.equal_contents seq_arr par_arr) then
      fail case ~m:(-1) ~oracle:"fill(sequential)" ~candidate:"fill(parallel)"
        "parallel fill produced different contents";
    (* One raw gather instead of n counted [Darray.get]s: the verify
       loop is a harness hot path and must not dominate the access
       accounting it runs alongside. *)
    let seq_got = Darray.gather seq_arr in
    for g = 0 to n - 1 do
      let want = if Section.mem sec g then 7.5 else 0. in
      if seq_got.(g) <> want then
        fail case ~m:(Layout.owner (Darray.layout seq_arr) g)
          ~oracle:"section membership" ~candidate:"fill"
          (Printf.sprintf "element %d is %g, expected %g" g seq_got.(g) want)
    done;
    (* Cross-layout copy against the positional oracle: element j of the
       destination section receives element j of the source section. *)
    let src =
      Darray.of_array ~name:"chk_src" ~p:case.p ~dist
        (Array.init n (fun g -> float_of_int ((3 * g) + 1)))
    in
    let dst =
      Darray.create ~name:"chk_dst" ~n ~p:case.p
        ~dist:(Distribution.Block_cyclic (case.k + 1))
    in
    ignore
      (Section_ops.copy ~src ~src_section:sec ~dst ~dst_section:sec ()
        : Network.t);
    let cnt = Section.count sec in
    let dst_got = Darray.gather dst in
    for j = 0 to cnt - 1 do
      let g = Section.nth sec j in
      let want = float_of_int ((3 * g) + 1) in
      if dst_got.(g) <> want then
        fail case ~m:(Layout.owner (Darray.layout dst) g) ~oracle:"copy oracle"
          ~candidate:"section_ops.copy"
          (Printf.sprintf "destination element %d is %g, expected %g" g
             dst_got.(g) want)
    done;
    (* Scheduled redistribution against the legacy copy: same sections,
       same positional contract, plus the schedule's own structural
       invariants (contention-free rounds, exactly-once delivery,
       rounds <= max degree). *)
    let sched =
      Lams_sched.Schedule.build ~src_layout:(Darray.layout src)
        ~src_section:sec ~dst_layout:(Darray.layout dst) ~dst_section:sec
    in
    (match Lams_sched.Schedule.validate sched with
    | Ok () -> ()
    | Error msg ->
        fail case ~m:(-1) ~oracle:"schedule invariants"
          ~candidate:"sched.schedule" msg);
    let dst2 =
      Darray.create ~name:"chk_dst2" ~n ~p:case.p
        ~dist:(Distribution.Block_cyclic (case.k + 1))
    in
    let net = Lams_sched.Executor.run sched ~src ~dst:dst2 in
    if Network.max_congestion net > 1 then
      fail case ~m:(-1) ~oracle:"contention-free rounds"
        ~candidate:"sched.executor"
        (Printf.sprintf "peak mailbox depth %d on the scheduled path"
           (Network.max_congestion net));
    if not (Darray.equal_contents dst dst2) then
      fail case ~m:(-1) ~oracle:"section_ops.copy"
        ~candidate:"sched.executor"
        "scheduled redistribution differs from the legacy exchange";
    (* Chaos round: the same schedule on a seeded lossy fabric (drop,
       duplicate, reorder, corrupt, delay, plus a planned mid-round
       rank crash on multi-processor cases) must still land the exact
       legacy contents — the reliable protocol retransmits, dedups and
       checksums its way there, the respawn budget replays the crashed
       rank, and exhaustion downgrades to the pre-packed buffers, so
       any divergence is a protocol bug, never bad luck. *)
    let chaos_seed =
      case.p + (31 * case.k) + (1009 * case.l) + (9176 * case.s)
      + (523 * case.u)
    in
    let fm =
      Fault_model.create
        ~rates:
          { Fault_model.drop = 0.25; duplicate = 0.15; reorder = 0.2;
            corrupt = 0.15; delay = 0.25 }
        ~max_delay:3
        ~crashes:(if case.p > 1 then [ (case.l mod case.p, 2) ] else [])
        ~seed:chaos_seed ()
    in
    let dst3 =
      Darray.create ~name:"chk_dst3" ~n ~p:case.p
        ~dist:(Distribution.Block_cyclic (case.k + 1))
    in
    let chaos_net = Network.create ~p:case.p in
    Network.set_faults chaos_net (Some fm);
    ignore
      (Lams_sched.Executor.run ~net:chaos_net ~respawns:4 sched ~src
         ~dst:dst3
        : Network.t);
    if not (Darray.equal_contents dst dst3) then
      fail case ~m:(-1) ~oracle:"section_ops.copy(perfect network)"
        ~candidate:"sched.executor(chaos)"
        (Printf.sprintf
           "scheduled-under-faults differs from legacy-on-perfect \
            (fault seed %d)"
           chaos_seed);
    if Network.in_flight chaos_net <> 0 then
      fail case ~m:(-1) ~oracle:"quiet fabric" ~candidate:"sched.executor(chaos)"
        "protocol stragglers left in flight after the run"
  end

(* --- One case through the whole matrix ----------------------------- *)

let check_case_full ~sim case =
  Lams_obs.Obs.incr c_cases;
  try
    let pr = case_problem case in
    let shared = Shared_fsm.build pr in
    let auto = Auto.create pr in
    let view = Plan_cache.find pr ~u:case.u in
    (* A second lookup: hit or rebuilt, the served tables must agree
       with the first view (and, transitively, with brute). *)
    let view2 = Plan_cache.find pr ~u:case.u in
    for m = 0 to case.p - 1 do
      check_processor case pr ~shared ~auto ~view ~view2 ~m
    done;
    if sim then sim_checks case;
    None
  with Found mm ->
    Lams_obs.Obs.incr c_mismatches;
    Some mm

let check_case case = check_case_full ~sim:true case

(* --- Corner-biased generation -------------------------------------- *)

let short_section_cap rng pk = Prng.int rng (max 1 (pk / 2))

let gen_case rng ~max_p ~max_k ~max_s =
  let p = if Prng.int rng 5 = 0 then 1 else Prng.int_in rng 1 (max 1 max_p) in
  let k = if Prng.int rng 5 = 0 then 1 else Prng.int_in rng 1 (max 1 max_k) in
  let pk = p * k in
  let s =
    match Prng.int rng 6 with
    | 0 ->
        (* pk | s: one reachable offset per window, singleton tables. *)
        pk * Prng.int_in rng 1 (max 1 (max_s / pk))
    | 1 ->
        (* k | s: pushes d = gcd(s, pk) toward >= k, the degenerate
           regime (closed forms, no FSM). *)
        k * Prng.int_in rng 1 (max 1 (max_s / k))
    | 2 ->
        (* A divisor of k times an odd factor: d | k with d > 1 when it
           lands, the single-class shared-FSM regime. *)
        let div = 1 lsl Prng.int rng 4 in
        max 1 (div * ((2 * Prng.int rng (max 1 (max_s / (2 * div)))) + 1))
    | _ -> Prng.int_in rng 1 (max 1 max_s)
  in
  let s = max 1 (min s (max 1 max_s)) in
  let d = Lams_numeric.Euclid.gcd s pk in
  let span = s * pk / d in
  let l =
    match Prng.int rng 4 with
    | 0 -> Prng.int rng (2 * pk)
    | 1 ->
        (* Starts beyond one cycle span: the plan-cache key
           canonicalizes these, so the view rebase gets exercised. *)
        (span * Prng.int_in rng 1 3) + Prng.int rng (max 1 pk)
    | 2 -> Prng.int rng (max 1 span)
    | _ -> Prng.int rng (max 1 (span + (2 * pk)))
  in
  let u =
    match Prng.int rng 8 with
    | 0 -> l - 1 (* empty bounded section *)
    | 1 -> l (* exactly one element *)
    | 2 -> l + s (* two elements *)
    | 3 ->
        (* Short section: processors own zero or one elements each. *)
        l + (short_section_cap rng pk * s)
    | 4 -> l + span + Prng.int rng (max 1 s) (* just past one span *)
    | _ -> l + (s * Prng.int rng (2 * pk))
  in
  { p; k; l; s; u }

(* --- Shrinking ----------------------------------------------------- *)

let clamp_case c =
  let p = max 1 c.p and k = max 1 c.k and s = max 1 c.s in
  let l = max 0 c.l in
  { p; k; l; s; u = max (l - 1) c.u }

(* Candidate reductions, most aggressive first. Only candidates that
   still fail are kept, so none of these need to preserve the failure —
   they only need to move every coordinate toward its floor. *)
let shrink_candidates c =
  let pk = c.p * c.k in
  let d = Lams_numeric.Euclid.gcd c.s pk in
  let span = c.s * pk / d in
  let cands =
    [ { c with p = 1 };
      { c with p = c.p / 2 };
      { c with p = c.p - 1 };
      { c with k = 1 };
      { c with k = c.k / 2 };
      { c with k = c.k - 1 };
      { c with s = 1 };
      { c with s = c.s / 2 };
      { c with s = c.s mod pk };
      { c with s = d };
      { c with s = c.s - 1 };
      { c with l = 0 };
      { c with l = c.l mod span };
      { c with l = c.l mod pk };
      { c with l = c.l / 2 };
      { c with l = c.l - 1 };
      (* Translations: shift the whole section down, preserving u - l.
         Bugs conditioned on the section's length (not its position)
         survive these when the position-only reductions all pass. *)
      { c with l = 0; u = c.u - c.l };
      { c with l = c.l mod pk; u = c.u - (c.l - (c.l mod pk)) };
      { c with l = c.l / 2; u = c.u - (c.l - (c.l / 2)) };
      { c with u = c.l - 1 };
      { c with u = c.l };
      { c with u = c.l + (((c.u - c.l) / c.s / 2) * c.s) };
      { c with u = c.u - c.s };
      { c with u = c.u - 1 } ]
  in
  List.filter
    (fun cand -> cand <> c)
    (List.map clamp_case
       (List.filter (fun cand -> cand.p >= 1 && cand.k >= 1 && cand.s >= 1)
          cands))

type shrunk = { minimal : mismatch; steps : int }

let shrink mm0 =
  let steps = ref 0 in
  let current = ref mm0 in
  let progress = ref true in
  while !progress && !steps < 500 do
    progress := false;
    (try
       List.iter
         (fun cand ->
           (* Shrinking re-runs the full matrix; mismatch counting is
              for real finds, so compensate the counter drift below. *)
           match check_case_full ~sim:true cand with
           | Some mm ->
               current := mm;
               incr steps;
               Lams_obs.Obs.incr c_shrink_steps;
               progress := true;
               raise Exit
           | None -> ())
         (shrink_candidates !current.case)
     with Exit -> ())
  done;
  { minimal = !current; steps = !steps }

(* --- Fault injection and contention -------------------------------- *)

(* A fault mismatch is machine-wide: m = -1 and the case records the
   instance the round was driving at the time (zeros for pure pool
   rounds). *)
let pool_case = { p = 0; k = 0; l = 0; s = 0; u = -1 }

let fault_mark = "lams_check fault at rank "

let pool_fault_round case rng =
  (* Inject failures at a pseudo-random subset of ranks; the pool must
     re-raise the lowest failing rank's exception and stay usable. *)
  let p = Prng.int_in rng 2 16 in
  let failing = Array.init p (fun _ -> Prng.int rng 3 = 0) in
  failing.(Prng.int rng p) <- true;
  let lowest =
    let rec go i = if failing.(i) then i else go (i + 1) in
    go 0
  in
  let expected = fault_mark ^ string_of_int lowest in
  (match
     Lams_sim.Spmd.run_parallel ~domains:4 ~p (fun m ->
         if failing.(m) then failwith (fault_mark ^ string_of_int m))
   with
  | () ->
      fail case ~m:(-1) ~oracle:"injected fault" ~candidate:"spmd.pool"
        "no exception surfaced from a failing rank"
  | exception Failure msg ->
      if msg <> expected then
        fail case ~m:(-1) ~oracle:"injected fault" ~candidate:"spmd.pool"
          (Printf.sprintf "surfaced %S, expected the lowest failing rank's \
                           %S"
             msg expected)
  | exception e ->
      fail case ~m:(-1) ~oracle:"injected fault" ~candidate:"spmd.pool"
        ("surfaced unexpected exception " ^ Printexc.to_string e));
  (* The pool must be intact after the failed job: a clean job runs
     every rank exactly once. *)
  let p2 = Prng.int_in rng 2 32 in
  let hits = Array.make p2 0 in
  Lams_sim.Spmd.run_parallel ~domains:4 ~p:p2 (fun m ->
      hits.(m) <- hits.(m) + 1);
  Array.iteri
    (fun m h ->
      if h <> 1 then
        fail case ~m:(-1) ~oracle:"pool reuse" ~candidate:"spmd.pool"
          (Printf.sprintf "after an injected fault, rank %d ran %d times" m h))
    hits

let contention_round rng =
  (* Race whole-machine plan lookups from two extra domains against
     cache-capacity churn and pool traffic on the main domain; every
     table served under contention must still equal brute force. *)
  let case =
    let p = Prng.int_in rng 2 6 and k = Prng.int_in rng 1 8 in
    let s = Prng.int_in rng 1 40 in
    let l = Prng.int rng (4 * p * k) in
    { p; k; l; s; u = l + (s * Prng.int_in rng 1 (2 * p * k)) }
  in
  let pr = case_problem case in
  let saved_cap = Plan_cache.capacity () in
  let racer () =
    let bad = ref None in
    for _round = 1 to 20 do
      let view = Plan_cache.find pr ~u:case.u in
      for m = 0 to case.p - 1 do
        let got = Plan_cache.table view ~m in
        let want = Brute.gap_table pr ~m in
        if (not (Access_table.equal got want)) && !bad = None then
          bad :=
            Some
              (Printf.sprintf "processor %d served %s under contention, \
                               expected %s"
                 m (table_str got) (table_str want))
      done
    done;
    !bad
  in
  let d1 = Domain.spawn racer and d2 = Domain.spawn racer in
  (* Main domain: capacity churn (forcing evictions of the very entry
     the racers are reading) plus pool jobs. *)
  let churn_err = ref None in
  (try
     for i = 1 to 10 do
       Plan_cache.set_capacity (1 + (i mod 3));
       ignore (Plan_cache.find pr ~u:case.u : Plan_cache.view);
       Lams_sim.Spmd.run_parallel ~domains:3 ~p:8 (fun _ -> ())
     done
   with e -> churn_err := Some (Printexc.to_string e));
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  Plan_cache.set_capacity saved_cap;
  (match !churn_err with
  | Some e ->
      fail case ~m:(-1) ~oracle:"capacity churn" ~candidate:"plan_cache"
        ("churn raised " ^ e)
  | None -> ());
  match (r1, r2) with
  | Some detail, _ | _, Some detail ->
      fail case ~m:(-1) ~oracle:"brute" ~candidate:"plan_cache(contended)"
        detail
  | None, None -> ()

let fault_round rng =
  Lams_obs.Obs.incr c_fault_rounds;
  try
    pool_fault_round pool_case rng;
    contention_round rng;
    None
  with Found mm ->
    Lams_obs.Obs.incr c_mismatches;
    Some mm

(* Comm-set inspector round: the linear joint-cycle walk
   (Comm_sets.build) against the all-pairs CRT oracle it replaced
   (Comm_sets.build_crt), which must be structurally identical — same
   transfers in the same order, same runs, same elements. Layouts and
   sections are derived deterministically from the case (so a repro line
   replays the round), folded down so the quadratic oracle stays cheap;
   all four stride-sign combinations run, the machines differ
   (p_src <> p_dst whenever p_src > 1), and short counts keep sections
   below one joint cycle in play. *)
let comm_round case =
  Lams_obs.Obs.incr c_comm_rounds;
  let open Lams_sim in
  try
    let p1 = 1 + ((case.p - 1) mod 8) in
    let k1 = 1 + ((case.k - 1) mod 24) in
    let p2 = if p1 = 1 then 1 + (case.k mod 8) else p1 - 1 + (2 * (case.l mod 2)) in
    let k2 = 1 + ((case.k + case.s) mod 24) in
    let count = 1 + (abs (case.u - case.l) mod (2 * p1 * k1)) in
    let s1 = 1 + ((case.s - 1) mod (2 * k1)) in
    let s2 = 1 + ((case.s + case.l) mod 9) in
    let l1 = case.l mod ((2 * p1 * k1) + 1) and l2 = case.l mod 10 in
    let sec lo s rev =
      if rev then Section.make ~lo:(lo + (s * (count - 1))) ~hi:lo ~stride:(-s)
      else Section.make ~lo ~hi:(lo + (s * (count - 1))) ~stride:s
    in
    let src_layout = Layout.create ~p:p1 ~k:k1
    and dst_layout = Layout.create ~p:p2 ~k:k2 in
    List.iter
      (fun (rev1, rev2) ->
        let src_section = sec l1 s1 rev1 and dst_section = sec l2 s2 rev2 in
        let walk =
          Comm_sets.build ~src_layout ~src_section ~dst_layout ~dst_section
        in
        let crt =
          Comm_sets.build_crt ~src_layout ~src_section ~dst_layout
            ~dst_section
        in
        if walk <> crt then
          fail case ~m:(-1) ~oracle:"comm_sets.build_crt"
            ~candidate:"comm_sets.build"
            (Format.asprintf
               "@[<v>p=%d k=%d %a -> p=%d k=%d %a:@ walk:@ %a@ crt:@ %a@]"
               p1 k1 Section.pp src_section p2 k2 Section.pp dst_section
               Comm_sets.pp walk Comm_sets.pp crt))
      [ (false, false); (true, false); (false, true); (true, true) ];
    None
  with Found mm ->
    Lams_obs.Obs.incr c_mismatches;
    Some mm

(* Adaptive-scheduling round: the same exchange on a heterogeneous
   fabric (case-derived per-link lossy and bandwidth-limited links on
   top of a mildly faulty baseline), run cost-blind and adaptive —
   adaptive both cold (empty health table: must take the bit-identical
   neutral path) and warm (health learned from the two earlier runs:
   reweighted rounds, split transfers, possible mid-exchange re-plans).
   All three must land exactly the legacy contents; any divergence is a
   planning or protocol bug, never bad luck. The health table is reset
   at round start so campaigns replay deterministically. *)
let adaptive_round case =
  Lams_obs.Obs.incr c_adaptive_rounds;
  let open Lams_sim in
  try
    if case.u >= case.l && case.u + 1 <= sim_extent_cap && case.p > 1 then begin
      let n = case.u + 1 in
      let p = case.p in
      let sec = Section.make ~lo:case.l ~hi:case.u ~stride:case.s in
      let src =
        Darray.of_array ~name:"adp_src" ~p
          ~dist:(Distribution.Block_cyclic case.k)
          (Array.init n (fun g -> float_of_int ((7 * g) + 2)))
      in
      let mk name =
        Darray.create ~name ~n ~p
          ~dist:(Distribution.Block_cyclic (case.k + 1))
      in
      let legacy = mk "adp_legacy" in
      ignore
        (Section_ops.copy ~src ~src_section:sec ~dst:legacy ~dst_section:sec ()
          : Network.t);
      let seed =
        77 + case.p + (13 * case.k) + (101 * case.l) + (977 * case.s)
        + (31 * case.u)
      in
      (* One lossy link and one slow link, both case-derived. *)
      let lossy = (case.l mod p, case.u mod p) in
      let slow = (case.s mod p, (case.s + case.k) mod p) in
      let link_rates link =
        let ep = (link / p, link mod p) in
        if ep = lossy && fst ep <> snd ep then
          Some
            { Fault_model.no_faults with Fault_model.drop = 0.4; delay = 0.3 }
        else None
      in
      let bandwidth link =
        let ep = (link / p, link mod p) in
        if ep = slow && fst ep <> snd ep then Some 0.5 else None
      in
      let base_rates =
        { Fault_model.drop = 0.1; duplicate = 0.05; reorder = 0.1;
          corrupt = 0.05; delay = 0.1 }
      in
      let sched =
        Lams_sched.Schedule.build ~src_layout:(Darray.layout src)
          ~src_section:sec ~dst_layout:(Darray.layout legacy) ~dst_section:sec
      in
      let run_exec ~adaptive name =
        let out = mk name in
        let fm =
          Fault_model.create ~rates:base_rates ~link_rates ~bandwidth ~seed ()
        in
        let net = Network.create ~p in
        Network.set_faults net (Some fm);
        ignore
          (Lams_sched.Executor.run ~net ~adaptive sched ~src ~dst:out
            : Network.t);
        if Network.in_flight net <> 0 then
          fail case ~m:(-1) ~oracle:"quiet fabric" ~candidate:name
            "protocol stragglers left in flight after the run";
        if not (Darray.equal_contents legacy out) then
          fail case ~m:(-1) ~oracle:"section_ops.copy(perfect network)"
            ~candidate:name
            (Printf.sprintf
               "heterogeneous-fabric run differs from legacy-on-perfect \
                (fault seed %d)"
               seed)
      in
      Lams_sched.Link_health.reset ();
      run_exec ~adaptive:true "adp_cold";
      run_exec ~adaptive:false "adp_blind";
      run_exec ~adaptive:true "adp_warm"
    end;
    None
  with Found mm ->
    Lams_obs.Obs.incr c_mismatches;
    Some mm

(* Compiled-C conformance round: hand the case to the native harness,
   which compiles all five node-code variants (Figure 8 tables plus the
   table-free form) with the system cc and diffs addresses and final
   memories bit-for-bit against the interpreter. No C compiler on the
   host -> the round silently degrades to a no-op. Tool errors (the
   emitted C failed to compile, the binary crashed or timed out) are
   reported as mismatches too: the emitter producing uncompilable text
   is exactly the regression this round exists to catch. *)
let native_round case =
  Lams_obs.Obs.incr c_native_rounds;
  let label = function
    | Lams_native.Harness.Diverged d ->
        Some
          ( (if d.Lams_native.Harness.m >= 0 then d.Lams_native.Harness.m
             else -1),
            Printf.sprintf "%s %s: %s" d.Lams_native.Harness.variant
              d.Lams_native.Harness.what d.Lams_native.Harness.detail )
    | Lams_native.Harness.Tool_error e -> Some (-1, e)
    | Lams_native.Harness.Agree _ | Lams_native.Harness.No_cc
    | Lams_native.Harness.Unsupported _ ->
        None
  in
  match
    label
      (Lams_native.Harness.check_problem ~timeout:30. (case_problem case)
         ~u:case.u)
  with
  | None -> None
  | Some (m, detail) ->
      Lams_obs.Obs.incr c_mismatches;
      Some { case; m; oracle = "interpreter"; candidate = "compiled-c"; detail }

(* --- The harness --------------------------------------------------- *)

type config = {
  seed : int;
  budget : int;
  max_p : int;
  max_k : int;
  max_s : int;
  faults : bool;
  sim : bool;
  native : bool;
}

let default_config =
  { seed = 42;
    budget = 1000;
    max_p = 12;
    max_k = 48;
    max_s = 4096;
    faults = true;
    sim = true;
    native = true }

type report = {
  config : config;
  cases : int;
  fault_rounds : int;
  native_rounds : int;
  comm_rounds : int;
  adaptive_rounds : int;
  failure : (mismatch * shrunk) option;
}

let run ?(progress = fun _ -> ()) cfg =
  let rng = Prng.create (Int64.of_int cfg.seed) in
  let fault_rng = Prng.split rng in
  let cases = ref 0 and fault_rounds = ref 0 and native_rounds = ref 0 in
  let comm_rounds = ref 0 and adaptive_rounds = ref 0 in
  let failure = ref None in
  (* Each native round costs a cc invocation (~0.1s); budget them so a
     quick 400-case campaign gains at most ~1s of wall time. *)
  let max_native_rounds = 8 in
  let native_enabled = cfg.native && Lams_native.Harness.cc () <> None in
  (try
     for i = 1 to cfg.budget do
       if i mod 500 = 0 then progress i;
       let case =
         gen_case rng ~max_p:cfg.max_p ~max_k:cfg.max_k ~max_s:cfg.max_s
       in
       incr cases;
       (match check_case_full ~sim:cfg.sim case with
       | Some mm ->
           failure := Some (mm, shrink mm);
           raise Exit
       | None -> ());
       if i mod 2 = 0 then begin
         incr comm_rounds;
         match comm_round case with
         | Some mm ->
             (* Inspector mismatches are machine-wide and derive their
                own layouts from the case; report them unshrunk. *)
             failure := Some (mm, { minimal = mm; steps = 0 });
             raise Exit
         | None -> ()
       end;
       if cfg.sim && i mod 4 = 0 then begin
         incr adaptive_rounds;
         match adaptive_round case with
         | Some mm ->
             (* Adaptive mismatches are machine-wide (fabric + health
                state); report them unshrunk. *)
             failure := Some (mm, { minimal = mm; steps = 0 });
             raise Exit
         | None -> ()
       end;
       if cfg.faults && i mod 50 = 0 then begin
         incr fault_rounds;
         match fault_round fault_rng with
         | Some mm ->
             (* Machine-wide rounds do not reproduce through check_case,
                so report them unshrunk. *)
             failure := Some (mm, { minimal = mm; steps = 0 });
             raise Exit
         | None -> ()
       end;
       if native_enabled && i mod 100 = 0 && !native_rounds < max_native_rounds
       then begin
         incr native_rounds;
         match native_round case with
         | Some mm ->
             (* Native mismatches shrink through check_case only when the
                interpreter also disagrees with itself; report unshrunk. *)
             failure := Some (mm, { minimal = mm; steps = 0 });
             raise Exit
         | None -> ()
       end
     done
   with Exit -> ());
  { config = cfg;
    cases = !cases;
    fault_rounds = !fault_rounds;
    native_rounds = !native_rounds;
    comm_rounds = !comm_rounds;
    adaptive_rounds = !adaptive_rounds;
    failure = !failure }

(* --- Reporting ----------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let mismatch_json mm =
  Printf.sprintf
    "{\"p\": %d, \"k\": %d, \"l\": %d, \"s\": %d, \"u\": %d, \"m\": %d, \
     \"oracle\": \"%s\", \"candidate\": \"%s\", \"detail\": \"%s\", \
     \"repro\": \"%s\"}"
    mm.case.p mm.case.k mm.case.l mm.case.s mm.case.u mm.m
    (json_escape mm.oracle) (json_escape mm.candidate)
    (json_escape mm.detail) (json_escape (repro_line mm))

let report_json r =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"seed\": %d,\n  \"budget\": %d,\n" r.config.seed
       r.config.budget);
  Buffer.add_string b
    (Printf.sprintf
       "  \"cases\": %d,\n  \"fault_rounds\": %d,\n  \"native_rounds\": \
        %d,\n  \"comm_rounds\": %d,\n  \"adaptive_rounds\": %d,\n"
       r.cases r.fault_rounds r.native_rounds r.comm_rounds
       r.adaptive_rounds);
  Buffer.add_string b
    (Printf.sprintf "  \"mismatches\": %d"
       (match r.failure with None -> 0 | Some _ -> 1));
  (match r.failure with
  | None -> ()
  | Some (orig, sh) ->
      Buffer.add_string b
        (Printf.sprintf ",\n  \"original\": %s,\n  \"shrunk\": %s,\n  \
                         \"shrink_steps\": %d"
           (mismatch_json orig)
           (mismatch_json sh.minimal)
           sh.steps));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let pp_report ppf r =
  match r.failure with
  | None ->
      Format.fprintf ppf
        "OK: %d cases (seed %d), %d fault rounds, %d native rounds, \
         %d comm rounds, %d adaptive rounds, every implementation pair \
         agrees"
        r.cases r.config.seed r.fault_rounds r.native_rounds r.comm_rounds
        r.adaptive_rounds
  | Some (orig, sh) ->
      Format.fprintf ppf
        "@[<v>MISMATCH after %d cases (seed %d):@ %a@ shrunk (%d steps) \
         to:@ %a@]"
        r.cases r.config.seed pp_mismatch orig sh.steps pp_mismatch
        sh.minimal
