(** Deterministic differential fuzzing and fault injection for the whole
    access-sequence pipeline.

    PR 2 multiplied the implementations that must agree on every
    instance: the seed per-processor lattice walk ({!Lams_core.Kns}),
    the generalized shared FSM ({!Lams_core.Shared_fsm}, one regime per
    [d = gcd(s, pk)]), the strategy dispatcher ({!Lams_core.Auto}), the
    published baselines ({!Lams_core.Chatterjee},
    {!Lams_core.Hiranandani}), the incremental enumerator
    ({!Lams_core.Enumerate}), the offset-indexed FSM replays
    ({!Lams_core.Fsm}), and the cached whole-machine plans
    ({!Lams_core.Plan_cache} / {!Lams_codegen.Plan}, including the
    cycle-span view rebase). This module cross-checks every pair against
    the brute-force oracle ({!Lams_core.Brute}) on instances {e biased
    toward the regime boundaries} — [p = 1], [k = 1], [pk | s],
    [d >= k], [d | k] vs [d ∤ k], [u] at or just past [l], starts beyond
    one cycle span — exactly the corners where a closed form can be
    silently off by one while spot tests stay green.

    The harness is deterministic and seedable: the same [seed] and
    [budget] replay the same cases. A failing case is shrunk greedily to
    a minimal [(p, k, l, s, u)] counterexample and reported with a
    [lams explain]-ready repro line. Fault-injection rounds additionally
    drive the {!Lams_sim.Spmd} domain pool with failing ranks (the
    lowest failing rank's exception must surface, and the pool must stay
    usable), race whole-machine plan lookups from concurrent domains
    against cache-capacity churn, and check {!Lams_sim.Section_ops}
    fills and copies against sequential oracles.

    Every second case additionally runs a comm-set inspector round: the
    linear joint-cycle walk ({!Lams_sim.Comm_sets.build}) against the
    all-pairs CRT oracle it replaced
    ({!Lams_sim.Comm_sets.build_crt}), on case-derived layout pairs with
    all four stride-sign combinations, [p_src <> p_dst], and sections
    shorter than one joint cycle — the two must be structurally
    identical.

    Every fourth case (when [sim] is set) runs an adaptive-scheduling
    round on a heterogeneous fabric: a case-derived lossy link and a
    bandwidth-limited link on top of mild machine-wide fault rates,
    with the redistribution executed three ways — adaptive from a cold
    {!Lams_sched.Link_health} table (the reweight must be the identity),
    cost-blind, and adaptive again with the health the first two runs
    accumulated (cost-aware rounds, transfer splitting and mid-exchange
    re-planning live). All three must drain the fabric and match the
    legacy {!Lams_sim.Section_ops.copy} oracle bit-for-bit.

    Progress is observable through {!Lams_obs.Obs} counters:
    [check.cases], [check.mismatches], [check.shrink_steps],
    [check.fault_rounds], [check.comm_rounds],
    [check.adaptive_rounds]. *)

(** {1 Cases} *)

type case = { p : int; k : int; l : int; s : int; u : int }
(** One fuzz case: the block-cyclic instance [(p, k, l, s)] plus the
    section upper bound [u] ([u < l] is legal and denotes an empty
    bounded section — itself a boundary worth checking). *)

val case_problem : case -> Lams_core.Problem.t
(** The instance as a {!Lams_core.Problem}. @raise Invalid_argument on
    malformed cases (only possible for hand-built ones). *)

val pp_case : Format.formatter -> case -> unit

(** {1 Mismatches} *)

type mismatch = {
  case : case;
  m : int;  (** processor the divergence was observed on; [-1] for
                machine-wide checks (pool faults, fills, copies) *)
  oracle : string;  (** reference implementation, e.g. ["brute"] *)
  candidate : string;  (** diverging implementation, e.g. ["shared_fsm"] *)
  detail : string;  (** human-readable expected-vs-got *)
}

val repro_line : mismatch -> string
(** A ready-to-paste [lams explain] invocation for the mismatching
    instance and processor. *)

val pp_mismatch : Format.formatter -> mismatch -> unit

(** {1 Checking one case} *)

val check_case : case -> mismatch option
(** Run the full oracle matrix on one case and return the first
    divergence found, [None] when every implementation pair agrees.
    Includes the cached-plan path (and therefore touches the process
    plan cache). *)

val adaptive_round : case -> mismatch option
(** Run the heterogeneous-fabric adaptive round for one case (see the
    module doc): cold-adaptive, cost-blind and warm-adaptive executions
    of the case-derived redistribution, each checked for a drained
    fabric and bit-identical contents against the legacy copy oracle.
    Resets the process-global {!Lams_sched.Link_health} table first.
    Cases too large (or too small: [p <= 1]) to materialize return
    [None] without running. *)

(** {1 Generation and shrinking} *)

val gen_case : Lams_util.Prng.t -> max_p:int -> max_k:int -> max_s:int -> case
(** Draw one corner-biased case. Roughly one case in five pins [p = 1]
    or [k = 1]; strides are biased toward multiples of [pk] and of [k]
    (forcing [pk | s] and the degenerate [d >= k] regime) and toward
    divisors/non-divisors of [k]; lower bounds are biased beyond one
    cycle span (exercising the plan-cache view rebase); upper bounds are
    biased toward [l - 1], [l], and a handful of elements (sections
    where processors own zero or one elements). *)

type shrunk = {
  minimal : mismatch;  (** the mismatch on the minimal failing case *)
  steps : int;  (** successful shrink reductions applied *)
}

val shrink : mismatch -> shrunk
(** Greedily minimize a failing case: repeatedly try smaller candidate
    values for each of [p], [k], [l], [s], [u] and keep any candidate on
    which {!check_case} still fails (the divergence is allowed to morph
    into a different pair during shrinking — any failure justifies the
    reduction). Mismatches from machine-wide rounds ([m = -1]) that no
    longer reproduce under {!check_case} are returned unshrunk. *)

(** {1 The harness} *)

type config = {
  seed : int;
  budget : int;  (** number of generated pipeline cases *)
  max_p : int;
  max_k : int;
  max_s : int;
  faults : bool;
      (** interleave domain-pool fault-injection / contention rounds
          (every 50 cases) *)
  sim : bool;
      (** run the slower {!Lams_sim} differential checks (parallel vs
          sequential fill, cross-layout copy vs oracle, scheduled
          redistribution vs the legacy exchange plus the schedule's
          round-validity invariants) on cases small enough to
          materialize *)
  native : bool;
      (** interleave compiled-C conformance rounds (every 100 cases,
          capped at 8 per campaign): the current case's emitted node
          code — all four Figure 8 shapes plus the table-free variant —
          compiled with the system cc and diffed bit-for-bit against
          the interpreter via {!Lams_native.Harness.check_problem}.
          Silently skipped when the host has no C compiler. *)
}

val default_config : config
(** [seed = 42], [budget = 1000], [max_p = 12], [max_k = 48],
    [max_s = 4096], [faults = true], [sim = true], [native = true]. *)

type report = {
  config : config;
  cases : int;  (** pipeline cases actually executed *)
  fault_rounds : int;
  native_rounds : int;  (** compiled-C conformance rounds executed *)
  comm_rounds : int;
      (** linear-vs-CRT comm-set inspector rounds executed (every
          second case) *)
  adaptive_rounds : int;
      (** heterogeneous-fabric adaptive scheduling rounds executed
          (every fourth case when [sim] is set) *)
  failure : (mismatch * shrunk) option;
      (** original mismatch and its shrunk form; [None] = clean run *)
}

val run : ?progress:(int -> unit) -> config -> report
(** Execute the fuzz campaign: generate and check [budget] cases
    (stopping at the first mismatch, which is then shrunk), interleaving
    fault rounds when [faults] is set. [progress] is called with the
    case index every 500 cases. Deterministic given [config]. *)

val report_json : report -> string
(** The report as one JSON object (stable field order), for [--json]. *)

val pp_report : Format.formatter -> report -> unit
