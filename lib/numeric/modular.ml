let emod a m =
  if m = 0 then raise Division_by_zero;
  let r = a mod m in
  if r < 0 then r + abs m else r

let ediv a m =
  if m = 0 then raise Division_by_zero;
  (a - emod a m) / m

let floor_div a b =
  if b = 0 then raise Division_by_zero;
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let ceil_div a b = -floor_div (-a) b

let in_range ~lo ~hi x = lo <= x && x < hi

let pow b e =
  if e < 0 then invalid_arg "Modular.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
    else go acc (b * b) (e asr 1)
  in
  go 1 b e
