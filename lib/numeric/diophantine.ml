type solution = { x0 : int; period : int }

let solve_with_bezout ~d ~x ~a:_ ~m c =
  if m <= 0 then invalid_arg "Diophantine.solve_with_bezout: modulus <= 0";
  if d <= 0 then invalid_arg "Diophantine.solve_with_bezout: gcd <= 0";
  if c mod d <> 0 then None
  else begin
    let period = m / d in
    (* a*x ≡ d (mod m), so a*(x*(c/d)) ≡ c (mod m). *)
    let x0 = Modular.emod (x * (c / d)) period in
    Some { x0; period }
  end

let solve ~a ~m c =
  if m <= 0 then invalid_arg "Diophantine.solve: modulus <= 0";
  let d, x, _ = Euclid.egcd a m in
  if d = 0 then (if Modular.emod c m = 0 then Some { x0 = 0; period = 1 } else None)
  else solve_with_bezout ~d ~x ~a ~m c

let smallest_at_least sol lo =
  sol.x0 + (sol.period * Modular.ceil_div (lo - sol.x0) sol.period)

let largest_at_most sol hi =
  if hi < 0 then None
  else begin
    let x = sol.x0 + (sol.period * Modular.floor_div (hi - sol.x0) sol.period) in
    if x < 0 then None else Some x
  end

let solve_linear ~a ~b ~c =
  if a = 0 && b = 0 then (if c = 0 then Some (0, 0) else None)
  else begin
    let d, x, y = Euclid.egcd a b in
    if c mod d <> 0 then None else Some (x * (c / d), y * (c / d))
  end

let first_multiple_at_least ~d n = d * Modular.ceil_div n d

let count_multiples ~d ~lo ~hi =
  if d <= 0 then invalid_arg "Diophantine.count_multiples: d <= 0";
  if hi <= lo then 0
  else begin
    let first = first_multiple_at_least ~d lo in
    if first >= hi then 0 else 1 + ((hi - 1 - first) / d)
  end
