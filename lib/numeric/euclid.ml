let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

(* Classical extended Euclid on non-negative inputs; sign-fixed wrapper
   below. Invariant: returns (d, x, y) with a*x + b*y = d = gcd a b. *)
let rec egcd_nonneg a b =
  if b = 0 then (a, 1, 0)
  else begin
    let d, x, y = egcd_nonneg b (a mod b) in
    (d, y, x - (a / b * y))
  end

let egcd a b =
  let d, x, y = egcd_nonneg (abs a) (abs b) in
  let x = if a < 0 then -x else x in
  let y = if b < 0 then -y else y in
  (d, x, y)

let modular_inverse a m =
  if m <= 0 then invalid_arg "Euclid.modular_inverse: modulus must be positive";
  let d, x, _ = egcd a m in
  if d <> 1 then None else Some (Modular.emod x m)

let steps a b =
  let rec go n a b = if b = 0 then n else go (n + 1) b (a mod b) in
  go 0 (abs a) (abs b)
