(** Linear congruences [a*x ≡ c (mod m)] and linear Diophantine equations
    [a*x + b*y = c].

    The paper (§2, following Chatterjee et al.) reduces "first section
    element owned by processor m" to the family of congruences
    [s*j ≡ i (mod p*k)] for the [k] offsets [i] in the processor's range;
    each is solvable iff [gcd(s, pk)] divides [i]. *)

type solution = {
  x0 : int;  (** the smallest non-negative solution *)
  period : int;  (** solutions are exactly [x0 + t*period], [t ∈ ℤ]; [> 0] *)
}

val solve : a:int -> m:int -> int -> solution option
(** [solve ~a ~m c] solves [a*x ≡ c (mod m)] for [m > 0]. [None] iff
    [gcd a m] does not divide [c]. @raise Invalid_argument if [m <= 0]. *)

val solve_with_bezout :
  d:int -> x:int -> a:int -> m:int -> int -> solution option
(** Same as {!solve} but reusing a precomputed extended-Euclid result
    [d = gcd a m] and Bézout coefficient [x] with [a*x ≡ d (mod m)]; this is
    the form used in the algorithms' inner loops where Euclid must run only
    once. @raise Invalid_argument if [m <= 0 || d <= 0]. *)

val smallest_at_least : solution -> int -> int
(** [smallest_at_least sol lo]: least solution [>= lo]. *)

val largest_at_most : solution -> int -> int option
(** [largest_at_most sol hi]: greatest solution in [\[0, hi\]], or [None]
    when no solution lies in that interval (in particular when [hi < 0]). *)

val solve_linear : a:int -> b:int -> c:int -> (int * int) option
(** [solve_linear ~a ~b ~c] finds one integer pair [(x, y)] with
    [a*x + b*y = c], or [None] when [gcd a b] does not divide [c]
    (with the convention [solve_linear 0 0 0 = Some (0, 0)]). *)

val count_multiples : d:int -> lo:int -> hi:int -> int
(** Number of multiples of [d > 0] in the half-open interval [\[lo, hi)].
    This is the paper's [length] (the AM-table period) when applied to the
    processor's offset window. @raise Invalid_argument if [d <= 0]. *)

val first_multiple_at_least : d:int -> int -> int
(** Least multiple of [d > 0] that is [>= n]. *)
