(** Greatest common divisors and the extended Euclid's algorithm.

    Line 3 of the paper's Figure 5:
    [(d, x, y) = EXTENDED-EUCLID(s, pk)] with [s*x + pk*y = d = gcd(s, pk)].
    Runs in [O(log min(s, pk))] time, the only super-linear-in-nothing term
    of the access-sequence algorithm. *)

val gcd : int -> int -> int
(** [gcd a b >= 0]; [gcd 0 0 = 0]. Accepts negative arguments. *)

val lcm : int -> int -> int
(** Least common multiple, [>= 0]; [lcm x 0 = 0]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (d, x, y)] with [a*x + b*y = d = gcd a b] and [d >= 0]
    (except [egcd 0 0 = (0, 0, 0)]). The Bézout pair returned is the one
    produced by the classical recursion — small in magnitude:
    [|x| <= max 1 (|b|/(2d))] and [|y| <= max 1 (|a|/(2d))] for nonzero
    inputs. *)

val modular_inverse : int -> int -> int option
(** [modular_inverse a m] is [Some x] with [a*x ≡ 1 (mod m)],
    [0 <= x < m], when [gcd a m = 1]; [None] otherwise.
    @raise Invalid_argument if [m <= 0]. *)

val steps : int -> int -> int
(** Number of recursive steps the Euclid recursion performs on [(a, b)] —
    exposed for the complexity-measurement tests (logarithmic bound). *)
