(** Euclidean (sign-safe) integer division and related helpers.

    OCaml's [mod] and [/] truncate toward zero, so they disagree with the
    mathematical conventions the paper uses ([div]/[mod] with non-negative
    remainder) as soon as operands are negative. Every index computation in
    this library goes through these helpers. *)

val emod : int -> int -> int
(** [emod a m] is the mathematical [a mod m] with result in [\[0, |m|)].
    @raise Division_by_zero if [m = 0]. *)

val ediv : int -> int -> int
(** [ediv a m] is the floor-like quotient paired with {!emod}:
    [a = ediv a m * m + emod a m] with [0 <= emod a m < |m|]. *)

val floor_div : int -> int -> int
(** Quotient rounded toward negative infinity. Equals {!ediv} for
    positive divisors. *)

val ceil_div : int -> int -> int
(** Quotient rounded toward positive infinity. *)

val in_range : lo:int -> hi:int -> int -> bool
(** [in_range ~lo ~hi x] is [lo <= x && x < hi] (half-open). *)

val pow : int -> int -> int
(** [pow b e] for [e >= 0] by binary exponentiation (no overflow check).
    @raise Invalid_argument on negative exponent. *)
