open Lams_util

type rates = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  delay : float;
}

let no_faults =
  { drop = 0.; duplicate = 0.; reorder = 0.; corrupt = 0.; delay = 0. }

let some_faults r =
  r.drop > 0. || r.duplicate > 0. || r.reorder > 0. || r.corrupt > 0.
  || r.delay > 0.

type t = {
  rates : rates;
  (* Per-link overrides; [None] for a link means the global [rates]
     apply. Pure function of the link id, so the draw sequence stays a
     pure function of (seed, link). *)
  link_rates : int -> rates option;
  (* Per-link effective bandwidth in elements per simulated tick:
     [Some epb] adds a deterministic service delay of
     [ceil (payload_len / epb)] ticks to every delivered copy. No PRNG
     draw is involved, so attaching a bandwidth profile never perturbs
     the fault streams. [None] = infinitely fast (the default). *)
  bandwidth : int -> float option;
  max_delay : int;
  seed : int;
  (* One SplitMix64 stream per link, created on first use from
     (seed, link) alone so the draw sequence is a pure function of the
     seed and of that link's send order — concurrent traffic on other
     links cannot perturb it. *)
  streams : (int, Prng.t) Hashtbl.t;
  (* rank -> data sends left before its planned crash fires. *)
  crash_plan : (int, int) Hashtbl.t;
  mutex : Mutex.t;
}

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault_model.create: %s rate %g outside [0, 1]" name r)

let check_rates r =
  check_rate "drop" r.drop;
  check_rate "duplicate" r.duplicate;
  check_rate "reorder" r.reorder;
  check_rate "corrupt" r.corrupt;
  check_rate "delay" r.delay

let create ?(rates = no_faults) ?(link_rates = fun _ -> None)
    ?(bandwidth = fun _ -> None) ?(max_delay = 3) ?(crashes = []) ~seed () =
  check_rates rates;
  if max_delay < 1 then invalid_arg "Fault_model.create: max_delay < 1";
  let crash_plan = Hashtbl.create 4 in
  List.iter
    (fun (rank, nth) ->
      if rank < 0 || nth < 1 then
        invalid_arg "Fault_model.create: crash entry needs rank >= 0, nth >= 1";
      Hashtbl.replace crash_plan rank nth)
    crashes;
  { rates; link_rates; bandwidth; max_delay; seed;
    streams = Hashtbl.create 16; crash_plan; mutex = Mutex.create () }

let rates t = t.rates
let seed t = t.seed
let max_delay t = t.max_delay

let rates_for t ~link =
  match t.link_rates link with
  | Some r -> check_rates r; r
  | None -> t.rates

let bandwidth_for t ~link = t.bandwidth link

(* Deterministic service time for a payload on a bandwidth-limited
   link. Zero-length payloads (protocol acks) transmit for free. *)
let service_ticks t ~link ~payload_len =
  match t.bandwidth link with
  | None -> 0
  | Some epb ->
      if epb <= 0. then invalid_arg "Fault_model: bandwidth <= 0"
      else if payload_len = 0 then 0
      else int_of_float (ceil (float_of_int payload_len /. epb))

type copy = {
  delay : int;
  corrupt : (int * int) option;
}

type verdict = {
  copies : copy list;
  reorder : bool;
}

(* SplitMix64's finalizer, mixing the link id into the seed so adjacent
   links get unrelated streams. *)
let link_seed seed link =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (link + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Callers hold [t.mutex]. *)
let stream t link =
  match Hashtbl.find_opt t.streams link with
  | Some g -> g
  | None ->
      let g = Prng.create (link_seed t.seed link) in
      Hashtbl.add t.streams link g;
      g

let plan_send t ~link ~payload_len =
  Mutex.lock t.mutex;
  let rates = rates_for t ~link in
  let service = service_ticks t ~link ~payload_len in
  let g = stream t link in
  let draw p = p > 0. && Prng.float g 1.0 < p in
  let dropped = draw rates.drop in
  let dup = draw rates.duplicate in
  let reorder = draw rates.reorder in
  let one_copy () =
    let delay = if draw rates.delay then 1 + Prng.int g t.max_delay else 0 in
    let corrupt =
      if draw rates.corrupt && payload_len > 0 then
        Some (Prng.int g payload_len, Prng.int g 52)
      else None
    in
    { delay = delay + service; corrupt }
  in
  (* Drop and duplicate compose: drop kills one copy, duplicate adds
     one, so drop+duplicate still delivers a single copy. *)
  let copies =
    match (dropped, dup) with
    | true, false -> []
    | true, true | false, false -> [ one_copy () ]
    | false, true -> [ one_copy (); one_copy () ]
  in
  Mutex.unlock t.mutex;
  { copies; reorder }

let crash_now t ~rank =
  Mutex.lock t.mutex;
  let fire =
    match Hashtbl.find_opt t.crash_plan rank with
    | None -> false
    | Some 1 ->
        (* Consume before the raise: the respawned rank replays its
           round without re-hitting the crash site. *)
        Hashtbl.remove t.crash_plan rank;
        true
    | Some n ->
        Hashtbl.replace t.crash_plan rank (n - 1);
        false
  in
  Mutex.unlock t.mutex;
  fire

let crashes_pending t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.crash_plan in
  Mutex.unlock t.mutex;
  n

(* "SRC:DST:drop=0.2,delay=0.5,bw=4" -> ((src, dst), rates, bandwidth).
   Kept here (rather than in the CLI) so tests can exercise the grammar
   directly and `lams chaos --link` stays a thin shim. *)
let parse_link_spec spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ':' spec with
  | [ src_s; dst_s; kvs ] -> (
      match (int_of_string_opt (String.trim src_s),
             int_of_string_opt (String.trim dst_s)) with
      | None, _ | _, None -> fail "link spec %S: endpoints must be integers" spec
      | Some src, Some dst when src < 0 || dst < 0 ->
          fail "link spec %S: endpoints must be >= 0" spec
      | Some src, Some dst ->
          let parts =
            String.split_on_char ',' kvs |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          if parts = [] then fail "link spec %S: no key=value settings" spec
          else
            let rec go rates bw = function
              | [] ->
                  if rates = no_faults && bw = None then
                    fail "link spec %S: all settings are defaults" spec
                  else Ok ((src, dst), rates, bw)
              | kv :: rest -> (
                  match String.index_opt kv '=' with
                  | None -> fail "link spec %S: %S is not key=value" spec kv
                  | Some i -> (
                      let key = String.sub kv 0 i in
                      let v_s = String.sub kv (i + 1) (String.length kv - i - 1) in
                      match float_of_string_opt v_s with
                      | None -> fail "link spec %S: %S is not a number" spec v_s
                      | Some v -> (
                          let prob name set =
                            if v < 0. || v > 1. then
                              fail "link spec %S: %s=%g outside [0, 1]" spec name v
                            else go (set v) bw rest
                          in
                          match key with
                          | "drop" -> prob "drop" (fun v -> { rates with drop = v })
                          | "dup" | "duplicate" ->
                              prob "duplicate" (fun v -> { rates with duplicate = v })
                          | "reorder" ->
                              prob "reorder" (fun v -> { rates with reorder = v })
                          | "corrupt" ->
                              prob "corrupt" (fun v -> { rates with corrupt = v })
                          | "delay" -> prob "delay" (fun v -> { rates with delay = v })
                          | "bw" ->
                              if v <= 0. then
                                fail "link spec %S: bw=%g must be > 0" spec v
                              else go rates (Some v) rest
                          | _ ->
                              fail
                                "link spec %S: unknown key %S (want \
                                 drop/dup/reorder/corrupt/delay/bw)"
                                spec key)))
            in
            go no_faults None parts)
  | _ -> fail "link spec %S: want SRC:DST:key=val[,key=val...]" spec
