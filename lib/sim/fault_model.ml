open Lams_util

type rates = {
  drop : float;
  duplicate : float;
  reorder : float;
  corrupt : float;
  delay : float;
}

let no_faults =
  { drop = 0.; duplicate = 0.; reorder = 0.; corrupt = 0.; delay = 0. }

let some_faults r =
  r.drop > 0. || r.duplicate > 0. || r.reorder > 0. || r.corrupt > 0.
  || r.delay > 0.

type t = {
  rates : rates;
  max_delay : int;
  seed : int;
  (* One SplitMix64 stream per link, created on first use from
     (seed, link) alone so the draw sequence is a pure function of the
     seed and of that link's send order — concurrent traffic on other
     links cannot perturb it. *)
  streams : (int, Prng.t) Hashtbl.t;
  (* rank -> data sends left before its planned crash fires. *)
  crash_plan : (int, int) Hashtbl.t;
  mutex : Mutex.t;
}

let check_rate name r =
  if not (r >= 0. && r <= 1.) then
    invalid_arg (Printf.sprintf "Fault_model.create: %s rate %g outside [0, 1]" name r)

let create ?(rates = no_faults) ?(max_delay = 3) ?(crashes = []) ~seed () =
  check_rate "drop" rates.drop;
  check_rate "duplicate" rates.duplicate;
  check_rate "reorder" rates.reorder;
  check_rate "corrupt" rates.corrupt;
  check_rate "delay" rates.delay;
  if max_delay < 1 then invalid_arg "Fault_model.create: max_delay < 1";
  let crash_plan = Hashtbl.create 4 in
  List.iter
    (fun (rank, nth) ->
      if rank < 0 || nth < 1 then
        invalid_arg "Fault_model.create: crash entry needs rank >= 0, nth >= 1";
      Hashtbl.replace crash_plan rank nth)
    crashes;
  { rates; max_delay; seed; streams = Hashtbl.create 16; crash_plan;
    mutex = Mutex.create () }

let rates t = t.rates
let seed t = t.seed
let max_delay t = t.max_delay

type copy = {
  delay : int;
  corrupt : (int * int) option;
}

type verdict = {
  copies : copy list;
  reorder : bool;
}

(* SplitMix64's finalizer, mixing the link id into the seed so adjacent
   links get unrelated streams. *)
let link_seed seed link =
  let z = Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int (link + 1)) 0x9E3779B97F4A7C15L) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Callers hold [t.mutex]. *)
let stream t link =
  match Hashtbl.find_opt t.streams link with
  | Some g -> g
  | None ->
      let g = Prng.create (link_seed t.seed link) in
      Hashtbl.add t.streams link g;
      g

let plan_send t ~link ~payload_len =
  Mutex.lock t.mutex;
  let g = stream t link in
  let draw p = p > 0. && Prng.float g 1.0 < p in
  let dropped = draw t.rates.drop in
  let dup = draw t.rates.duplicate in
  let reorder = draw t.rates.reorder in
  let one_copy () =
    let delay = if draw t.rates.delay then 1 + Prng.int g t.max_delay else 0 in
    let corrupt =
      if draw t.rates.corrupt && payload_len > 0 then
        Some (Prng.int g payload_len, Prng.int g 52)
      else None
    in
    { delay; corrupt }
  in
  (* Drop and duplicate compose: drop kills one copy, duplicate adds
     one, so drop+duplicate still delivers a single copy. *)
  let copies =
    match (dropped, dup) with
    | true, false -> []
    | true, true | false, false -> [ one_copy () ]
    | false, true -> [ one_copy (); one_copy () ]
  in
  Mutex.unlock t.mutex;
  { copies; reorder }

let crash_now t ~rank =
  Mutex.lock t.mutex;
  let fire =
    match Hashtbl.find_opt t.crash_plan rank with
    | None -> false
    | Some 1 ->
        (* Consume before the raise: the respawned rank replays its
           round without re-hitting the crash site. *)
        Hashtbl.remove t.crash_plan rank;
        true
    | Some n ->
        Hashtbl.replace t.crash_plan rank (n - 1);
        false
  in
  Mutex.unlock t.mutex;
  fire

let crashes_pending t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.crash_plan in
  Mutex.unlock t.mutex;
  n
