open Lams_util
open Lams_dist
open Lams_core
open Lams_codegen

let check_section (a : Darray.t) sec =
  if Section.is_empty sec then invalid_arg "Section_ops: empty section";
  let norm = Section.normalize sec in
  if norm.Section.lo < 0 || norm.Section.hi >= Darray.size a then
    invalid_arg "Section_ops: section outside the array"

let plan_for (a : Darray.t) sec ~m =
  let norm = Section.normalize sec in
  let pr = Problem.of_section (Darray.layout a) norm in
  Plan.build pr ~m ~u:norm.Section.hi

let fill ?(shape = Shapes.Shape_d) ?(parallel = false) a sec v =
  check_section a sec;
  let body m =
    match plan_for a sec ~m with
    | None -> ()
    | Some plan -> Shapes.assign shape plan (Local_store.data (Darray.local a m)) v
  in
  if parallel then Spmd.run_parallel ~p:(Darray.procs a) body
  else Spmd.run ~p:(Darray.procs a) ~f:body

let fill_timed ?(shape = Shapes.Shape_d) a sec v =
  check_section a sec;
  (* Plans are built outside the timed region: Table 2 times the node code
     only (table construction is Table 1's subject). *)
  let plans = Array.init (Darray.procs a) (fun m -> plan_for a sec ~m) in
  Spmd.run_timed ~p:(Darray.procs a) ~f:(fun m ->
      match plans.(m) with
      | None -> ()
      | Some plan -> Shapes.assign shape plan (Local_store.data (Darray.local a m)) v)

let map_section a sec ~f =
  check_section a sec;
  let norm = Section.normalize sec in
  let pr = Problem.of_section (Darray.layout a) norm in
  Spmd.run ~p:(Darray.procs a) ~f:(fun m ->
      let store = Darray.local a m in
      Enumerate.iter_bounded pr ~m ~u:norm.Section.hi ~f:(fun _g local ->
          Local_store.set store local (f (Local_store.get store local))))

let sum a sec =
  check_section a sec;
  let norm = Section.normalize sec in
  let pr = Problem.of_section (Darray.layout a) norm in
  let partials =
    Spmd.run_collect ~p:(Darray.procs a) ~f:(fun m ->
        let store = Darray.local a m in
        let acc = ref 0. in
        Enumerate.iter_bounded pr ~m ~u:norm.Section.hi ~f:(fun _g local ->
            acc := !acc +. Local_store.get store local);
        !acc)
  in
  Array.fold_left ( +. ) 0. partials

(* Traversal position of a global index within an (unnormalised) section. *)
let position_in (sec : Section.t) g =
  if sec.Section.stride > 0 then (g - sec.Section.lo) / sec.Section.stride
  else (sec.Section.lo - g) / -sec.Section.stride

let copy_network ?net ~p () =
  match net with
  | None -> Network.create ~p
  | Some n ->
      if Network.procs n < p then
        invalid_arg "Section_ops.copy: network smaller than the machine";
      n

let copy ?net ~src ~src_section ~dst ~dst_section () =
  check_section src src_section;
  check_section dst dst_section;
  if Section.count src_section <> Section.count dst_section then
    invalid_arg "Section_ops.copy: section element counts differ";
  let p_src = Darray.procs src and p_dst = Darray.procs dst in
  let p = max p_src p_dst in
  let net = copy_network ?net ~p () in
  let src_norm = Section.normalize src_section in
  let src_pr = Problem.of_section (Darray.layout src) src_norm in
  let dst_lay = Darray.layout dst in
  (* Phase 1: every source owner walks its owned elements, routes each
     value to the destination owner's local address. Two passes: count
     per destination, then fill exact-size message buffers — no list
     cells, no per-pair tuples, no rebuild on the gather hot path. *)
  let send_phase m =
    if m < p_src then begin
      let store = Darray.local src m in
      let counts = Array.make p_dst 0 in
      Enumerate.iter_bounded src_pr ~m ~u:src_norm.Section.hi
        ~f:(fun g _local ->
          let j = position_in src_section g in
          let owner = Layout.owner dst_lay (Section.nth dst_section j) in
          counts.(owner) <- counts.(owner) + 1);
      let addresses = Array.map (fun n -> Array.make n 0) counts in
      let payload = Array.map Fbuf.uninit counts in
      let cursor = Array.make p_dst 0 in
      (* Gather straight from the raw backing: this two-phase oracle is a
         hot differential path, and the per-element accounting belongs to
         user-facing element ops, not to bulk transport. *)
      let data = Local_store.data store in
      Enumerate.iter_bounded src_pr ~m ~u:src_norm.Section.hi
        ~f:(fun g local ->
          let j = position_in src_section g in
          let g_dst = Section.nth dst_section j in
          let owner = Layout.owner dst_lay g_dst in
          let at = cursor.(owner) in
          addresses.(owner).(at) <- Layout.local_address dst_lay g_dst;
          Fbuf.unsafe_set payload.(owner) at (Fbuf.get data local);
          cursor.(owner) <- at + 1);
      Array.iteri
        (fun owner n ->
          if n > 0 then
            Network.send net ~src:m ~dst:owner ~tag:0
              ~addresses:addresses.(owner) ~payload:payload.(owner))
        counts
    end
  in
  (* Phase 2: destination owners drain their mailboxes. *)
  let recv_phase m =
    if m < p_dst then begin
      let data = Local_store.data (Darray.local dst m) in
      List.iter
        (fun (msg : Network.message) ->
          Array.iteri
            (fun idx addr ->
              Fbuf.set data addr (Fbuf.unsafe_get msg.Network.payload idx))
            msg.Network.addresses)
        (Network.receive_all net ~dst:m)
    end
  in
  Spmd.barrier_phases ~p ~phases:[ send_phase; recv_phase ];
  net

let copy_scheduled ?net ~src ~src_section ~dst ~dst_section () =
  check_section src src_section;
  check_section dst dst_section;
  if Section.count src_section <> Section.count dst_section then
    invalid_arg "Section_ops.copy: section element counts differ";
  let p_src = Darray.procs src and p_dst = Darray.procs dst in
  let p = max p_src p_dst in
  let net = copy_network ?net ~p () in
  let src_lay = Darray.layout src and dst_lay = Darray.layout dst in
  let schedule =
    Comm_sets.build ~src_layout:src_lay ~src_section ~dst_layout:dst_lay
      ~dst_section
  in
  (* Pre-index the transfers by sender before spawning phases: each rank
     reads its own slot instead of filtering the full O(p²) list. *)
  let by_src = Comm_sets.by_src schedule ~p_src in
  (* Phase 1: each sender walks its transfers' progressions; no ownership
     tests are needed — the schedule already encodes them. *)
  let send_phase m =
    if m < p_src then
      let data = Local_store.data (Darray.local src m) in
      List.iter
        (fun (tr : Comm_sets.transfer) ->
          let n = tr.Comm_sets.elements in
          let addresses = Array.make n 0 and payload = Fbuf.uninit n in
          let idx = ref 0 in
          List.iter
            (fun run ->
              List.iter
                (fun j ->
                  let g_src = Section.nth src_section j
                  and g_dst = Section.nth dst_section j in
                  addresses.(!idx) <- Layout.local_address dst_lay g_dst;
                  Fbuf.unsafe_set payload !idx
                    (Fbuf.get data (Layout.local_address src_lay g_src));
                  incr idx)
                (Comm_sets.positions run))
            tr.Comm_sets.runs;
          Network.send net ~src:m ~dst:tr.Comm_sets.dst_proc ~tag:1
            ~addresses ~payload)
        by_src.(m)
  in
  let recv_phase m =
    if m < p_dst then begin
      let data = Local_store.data (Darray.local dst m) in
      List.iter
        (fun (msg : Network.message) ->
          Array.iteri
            (fun idx addr ->
              Fbuf.set data addr (Fbuf.unsafe_get msg.Network.payload idx))
            msg.Network.addresses)
        (Network.receive_all net ~dst:m)
    end
  in
  Spmd.barrier_phases ~p ~phases:[ send_phase; recv_phase ];
  net
