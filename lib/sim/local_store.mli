(** One processor's local memory: flat unboxed float64 storage
    ({!Lams_util.Fbuf.t}) with optional access accounting. The raw
    bigarray is exposed so the Figure 8 node-code kernels and the packing
    blits can run on it without indirection — exactly the memory a
    compiler-generated SPMD node program would own. *)

type t

val create : int -> t
(** Zero-initialised store of the given extent. @raise Invalid_argument on
    a negative size. *)

val extent : t -> int
val data : t -> Lams_util.Fbuf.t
(** The backing buffer (shared, not a copy). *)

val get : t -> int -> float
(** Counted read. @raise Invalid_argument out of bounds. *)

val set : t -> int -> float -> unit
(** Counted write. @raise Invalid_argument out of bounds. *)

val reads : t -> int
(** Number of {!get} calls (kernels using {!data} bypass counting). *)

val writes : t -> int
val reset_counters : t -> unit
val fill : t -> float -> unit
