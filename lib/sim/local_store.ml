open Lams_util

type t = { data : Fbuf.t; mutable reads : int; mutable writes : int }

let create n =
  if n < 0 then invalid_arg "Local_store.create: negative size";
  { data = Fbuf.create n; reads = 0; writes = 0 }

let extent t = Fbuf.length t.data
let data t = t.data

let get t i =
  if i < 0 || i >= Fbuf.length t.data then
    invalid_arg "Local_store.get: out of bounds";
  t.reads <- t.reads + 1;
  Fbuf.unsafe_get t.data i

let set t i v =
  if i < 0 || i >= Fbuf.length t.data then
    invalid_arg "Local_store.set: out of bounds";
  t.writes <- t.writes + 1;
  Fbuf.unsafe_set t.data i v

let reads t = t.reads
let writes t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0

let fill t v = Fbuf.fill t.data v
