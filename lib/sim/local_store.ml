type t = { data : float array; mutable reads : int; mutable writes : int }

let create n =
  if n < 0 then invalid_arg "Local_store.create: negative size";
  { data = Array.make n 0.; reads = 0; writes = 0 }

let extent t = Array.length t.data
let data t = t.data

let get t i =
  if i < 0 || i >= Array.length t.data then
    invalid_arg "Local_store.get: out of bounds";
  t.reads <- t.reads + 1;
  t.data.(i)

let set t i v =
  if i < 0 || i >= Array.length t.data then
    invalid_arg "Local_store.set: out of bounds";
  t.writes <- t.writes + 1;
  t.data.(i) <- v

let reads t = t.reads
let writes t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0

let fill t v = Array.fill t.data 0 (Array.length t.data) v
