(** A distributed array: global index space [\[0, n)] mapped onto [p]
    local stores by a [cyclic(k)] layout. The global accessors are the
    "front-end" view (used by sequential references and tests); SPMD node
    code works on the per-processor {!local} stores directly. *)

type t = private {
  name : string;
  n : int;
  layout : Lams_dist.Layout.t;
  stores : Local_store.t array;
}

val create :
  name:string -> n:int -> p:int -> dist:Lams_dist.Distribution.t -> t
(** Zero-filled. @raise Invalid_argument if [n <= 0] or [p <= 0]. *)

val of_array :
  name:string -> p:int -> dist:Lams_dist.Distribution.t -> float array -> t
(** Distribute existing global contents. *)

val layout : t -> Lams_dist.Layout.t
val size : t -> int
val procs : t -> int
val local : t -> int -> Local_store.t
(** Processor [m]'s store. @raise Invalid_argument out of range. *)

val get : t -> int -> float
(** Global read (owner-indirected). @raise Invalid_argument out of
    [\[0, n)]. *)

val set : t -> int -> float -> unit
(** Global write. *)

val gather : t -> float array
(** Assemble the full global contents (order [n]). *)

val equal_contents : t -> t -> bool
(** Same [n] and same gathered values (layouts may differ). *)
