(** SPMD array-statement execution over distributed arrays — the
    operations an HPF compiler emits node code for, built on the paper's
    address-sequence machinery.

    Local traversals use a Figure 8 node-code shape; inter-array
    assignments compute their communication sets from the same owned-
    element enumerations and move data through the simulated
    {!Network}. *)

val fill :
  ?shape:Lams_codegen.Shapes.t ->
  ?parallel:bool ->
  Darray.t -> Lams_dist.Section.t -> float -> unit
(** [fill a sec v] executes [A(l:u:s) = v] (the paper's measured kernel)
    on every processor. Default shape is [Shape_d], the paper's fastest.
    [parallel] runs the node programs concurrently on OCaml domains
    (safe: ranks touch disjoint stores); default sequential.
    @raise Invalid_argument if the section reaches outside the array. *)

val fill_timed :
  ?shape:Lams_codegen.Shapes.t ->
  Darray.t -> Lams_dist.Section.t -> float -> Spmd.timing
(** Same, reporting per-rank times (max = the paper's statistic). *)

val map_section :
  Darray.t -> Lams_dist.Section.t -> f:(float -> float) -> unit
(** Pointwise in-place update of the section ([A(sec) = f(A(sec))]),
    owner-computes, no communication. *)

val sum : Darray.t -> Lams_dist.Section.t -> float
(** Reduction over the section: per-processor partial sums (via the
    table-free enumerator) combined globally. *)

val copy :
  ?net:Network.t ->
  src:Darray.t -> src_section:Lams_dist.Section.t ->
  dst:Darray.t -> dst_section:Lams_dist.Section.t -> unit -> Network.t
(** [copy ~src ~src_section ~dst ~dst_section ()] executes
    [DST(dst_section) = SRC(src_section)] element-wise in traversal order
    (so reversed sections reverse, as in Fortran 90). The two sections
    must have equal element counts. Owners of source elements build one
    message per destination processor (addresses + payload) and the
    destination owners drain their mailboxes — the classic two-phase
    exchange. Returns the network used (a fresh one if [net] was omitted)
    so callers can inspect traffic counters.
    @raise Invalid_argument on count mismatch, out-of-bounds sections, or
    a network sized differently from the machines. *)

val copy_scheduled :
  ?net:Network.t ->
  src:Darray.t -> src_section:Lams_dist.Section.t ->
  dst:Darray.t -> dst_section:Lams_dist.Section.t -> unit -> Network.t
(** Same operation and same result as {!copy}, but driven by the
    closed-form {!Comm_sets} schedule instead of enumerating owned
    elements — the structure a compiler emits when it knows the mapping
    statically. The test suite checks the two paths byte-identical. *)

val check_section : Darray.t -> Lams_dist.Section.t -> unit
(** @raise Invalid_argument if the section is empty or reaches outside
    the array. *)
