type message = {
  src : int;
  tag : int;
  addresses : int array;
  payload : float array;
}

type t = {
  p : int;
  mailboxes : message Queue.t array;
  mutable sent : int;
  mutable moved : int;
}

(* Element width for byte accounting: payloads are 64-bit floats. *)
let bytes_per_element = 8

let c_messages =
  Lams_obs.Obs.counter "sim.network.messages" ~units:"messages"
    ~doc:"point-to-point messages enqueued (all fabrics)"

let c_bytes =
  Lams_obs.Obs.counter "sim.network.bytes" ~units:"bytes"
    ~doc:"payload bytes enqueued (8 per element)"

let c_elements =
  Lams_obs.Obs.counter "sim.network.elements" ~units:"elements"
    ~doc:"payload elements enqueued"

let c_drains =
  Lams_obs.Obs.counter "sim.network.drains" ~units:"drains"
    ~doc:"mailbox drains (receive_all calls)"

let create ~p =
  if p <= 0 then invalid_arg "Network.create: p <= 0";
  { p; mailboxes = Array.init p (fun _ -> Queue.create ()); sent = 0; moved = 0 }

let procs t = t.p

let check_rank t r name =
  if r < 0 || r >= t.p then invalid_arg ("Network." ^ name ^ ": rank out of range")

let send t ~src ~dst ~tag ~addresses ~payload =
  check_rank t src "send";
  check_rank t dst "send";
  if Array.length addresses <> Array.length payload then
    invalid_arg "Network.send: addresses/payload length mismatch";
  Queue.push { src; tag; addresses; payload } t.mailboxes.(dst);
  t.sent <- t.sent + 1;
  t.moved <- t.moved + Array.length payload;
  Lams_obs.Obs.incr c_messages;
  Lams_obs.Obs.add c_elements (Array.length payload);
  Lams_obs.Obs.add c_bytes (bytes_per_element * Array.length payload)

let receive_all t ~dst =
  check_rank t dst "receive_all";
  Lams_obs.Obs.incr c_drains;
  let q = t.mailboxes.(dst) in
  let rec drain acc =
    match Queue.take_opt q with
    | None -> List.rev acc
    | Some m -> drain (m :: acc)
  in
  drain []

let pending t ~dst =
  check_rank t dst "pending";
  Queue.length t.mailboxes.(dst)

let messages_sent t = t.sent
let elements_moved t = t.moved
