type message = {
  src : int;
  tag : int;
  addresses : int array;
  payload : float array;
}

type t = {
  p : int;
  mailboxes : message Queue.t array;
  mutable sent : int;
  mutable moved : int;
  (* Per-link ([src * p + dst]) cumulative traffic and in-flight peaks.
     [pending_link]/[peak_link] count messages posted but not yet
     drained; [peak_dst] is the deepest any mailbox ever got — the
     congestion a single-port receiver would have to serialize. *)
  link_msgs : int array;
  link_elems : int array;
  pending_link : int array;
  peak_link : int array;
  peak_dst : int array;
  (* Guards every mutable field above plus the queues, so executor
     phases may post/drain from concurrent domains. *)
  mutex : Mutex.t;
}

(* Element width for byte accounting: payloads are 64-bit floats. *)
let bytes_per_element = 8

let c_messages =
  Lams_obs.Obs.counter "sim.network.messages" ~units:"messages"
    ~doc:"point-to-point messages enqueued (all fabrics)"

let c_bytes =
  Lams_obs.Obs.counter "sim.network.bytes" ~units:"bytes"
    ~doc:"payload bytes enqueued (8 per element)"

let c_elements =
  Lams_obs.Obs.counter "sim.network.elements" ~units:"elements"
    ~doc:"payload elements enqueued"

let c_drains =
  Lams_obs.Obs.counter "sim.network.drains" ~units:"drains"
    ~doc:"mailbox drains (receive_all calls)"

let d_congestion =
  Lams_obs.Obs.distribution "sim.network.congestion" ~units:"messages"
    ~doc:"mailbox depth right after each send (in-flight per receiver)"

let create ~p =
  if p <= 0 then invalid_arg "Network.create: p <= 0";
  { p;
    mailboxes = Array.init p (fun _ -> Queue.create ());
    sent = 0;
    moved = 0;
    link_msgs = Array.make (p * p) 0;
    link_elems = Array.make (p * p) 0;
    pending_link = Array.make (p * p) 0;
    peak_link = Array.make (p * p) 0;
    peak_dst = Array.make p 0;
    mutex = Mutex.create () }

let procs t = t.p

let check_rank t r name =
  if r < 0 || r >= t.p then invalid_arg ("Network." ^ name ^ ": rank out of range")

let send t ~src ~dst ~tag ~addresses ~payload =
  check_rank t src "send";
  check_rank t dst "send";
  (* An empty address array marks a *packed* message: the receiver knows
     the placement (from its half of the schedule), so per-element
     destination addresses are not shipped. *)
  if Array.length addresses <> 0
     && Array.length addresses <> Array.length payload
  then invalid_arg "Network.send: addresses/payload length mismatch";
  Mutex.lock t.mutex;
  Queue.push { src; tag; addresses; payload } t.mailboxes.(dst);
  t.sent <- t.sent + 1;
  t.moved <- t.moved + Array.length payload;
  let link = (src * t.p) + dst in
  t.link_msgs.(link) <- t.link_msgs.(link) + 1;
  t.link_elems.(link) <- t.link_elems.(link) + Array.length payload;
  t.pending_link.(link) <- t.pending_link.(link) + 1;
  if t.pending_link.(link) > t.peak_link.(link) then
    t.peak_link.(link) <- t.pending_link.(link);
  let depth = Queue.length t.mailboxes.(dst) in
  if depth > t.peak_dst.(dst) then t.peak_dst.(dst) <- depth;
  Mutex.unlock t.mutex;
  Lams_obs.Obs.incr c_messages;
  Lams_obs.Obs.add c_elements (Array.length payload);
  Lams_obs.Obs.add c_bytes (bytes_per_element * Array.length payload);
  Lams_obs.Obs.observe d_congestion (float_of_int depth)

let receive_all t ~dst =
  check_rank t dst "receive_all";
  Lams_obs.Obs.incr c_drains;
  Mutex.lock t.mutex;
  let q = t.mailboxes.(dst) in
  let rec drain acc =
    match Queue.take_opt q with
    | None -> List.rev acc
    | Some m ->
        let link = (m.src * t.p) + dst in
        t.pending_link.(link) <- t.pending_link.(link) - 1;
        drain (m :: acc)
  in
  let msgs = drain [] in
  Mutex.unlock t.mutex;
  msgs

let pending t ~dst =
  check_rank t dst "pending";
  Mutex.lock t.mutex;
  let n = Queue.length t.mailboxes.(dst) in
  Mutex.unlock t.mutex;
  n

let messages_sent t = t.sent
let elements_moved t = t.moved

let link_messages t ~src ~dst =
  check_rank t src "link_messages";
  check_rank t dst "link_messages";
  t.link_msgs.((src * t.p) + dst)

let link_elements t ~src ~dst =
  check_rank t src "link_elements";
  check_rank t dst "link_elements";
  t.link_elems.((src * t.p) + dst)

let max_congestion t = Array.fold_left max 0 t.peak_dst

let max_link_in_flight t = Array.fold_left max 0 t.peak_link

let congestion t ~dst =
  check_rank t dst "congestion";
  t.peak_dst.(dst)
