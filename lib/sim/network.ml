type message = {
  src : int;
  tag : int;
  addresses : int array;
  payload : float array;
}

type t = {
  p : int;
  mailboxes : message Queue.t array;
  mutable sent : int;
  mutable moved : int;
}

let create ~p =
  if p <= 0 then invalid_arg "Network.create: p <= 0";
  { p; mailboxes = Array.init p (fun _ -> Queue.create ()); sent = 0; moved = 0 }

let procs t = t.p

let check_rank t r name =
  if r < 0 || r >= t.p then invalid_arg ("Network." ^ name ^ ": rank out of range")

let send t ~src ~dst ~tag ~addresses ~payload =
  check_rank t src "send";
  check_rank t dst "send";
  if Array.length addresses <> Array.length payload then
    invalid_arg "Network.send: addresses/payload length mismatch";
  Queue.push { src; tag; addresses; payload } t.mailboxes.(dst);
  t.sent <- t.sent + 1;
  t.moved <- t.moved + Array.length payload

let receive_all t ~dst =
  check_rank t dst "receive_all";
  let q = t.mailboxes.(dst) in
  let rec drain acc =
    match Queue.take_opt q with
    | None -> List.rev acc
    | Some m -> drain (m :: acc)
  in
  drain []

let pending t ~dst =
  check_rank t dst "pending";
  Queue.length t.mailboxes.(dst)

let messages_sent t = t.sent
let elements_moved t = t.moved
