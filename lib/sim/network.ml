open Lams_util

type message = {
  src : int;
  tag : int;
  header : int array;
  addresses : int array;
  payload : Fbuf.t;
}

type fault_counts = {
  dropped : int;
  duplicated : int;
  reordered : int;
  corrupted : int;
  delayed : int;
  crashes : int;
}

let zero_faults =
  { dropped = 0; duplicated = 0; reordered = 0; corrupted = 0; delayed = 0;
    crashes = 0 }

type t = {
  p : int;
  mutable faults : Fault_model.t option;
  mailboxes : message Queue.t array;
  (* Simulated time: advanced only by the single-threaded orchestrator
     between phases ([advance]), never by sends or drains, so the
     maturity of delayed messages is deterministic. *)
  mutable now : int;
  (* Per-destination held-back messages as (deliver_at, order, msg),
     kept sorted; [order] is a global arrival stamp breaking ties. *)
  delayed : (int * int * message) list array;
  mutable delayed_count : int;
  mutable order : int;
  mutable sent : int;
  mutable moved : int;
  mutable faulted : fault_counts;
  (* Per-link ([src * p + dst]) cumulative traffic and in-flight peaks.
     [pending_link]/[peak_link] count messages posted but not yet
     drained; [peak_dst] is the deepest any mailbox ever got — the
     congestion a single-port receiver would have to serialize. *)
  link_msgs : int array;
  link_elems : int array;
  pending_link : int array;
  peak_link : int array;
  peak_dst : int array;
  (* Guards every mutable field above plus the queues, so executor
     phases may post/drain from concurrent domains. *)
  mutex : Mutex.t;
}

(* Element width for byte accounting: payloads are 64-bit floats. *)
let bytes_per_element = 8

let c_messages =
  Lams_obs.Obs.counter "sim.network.messages" ~units:"messages"
    ~doc:"point-to-point messages enqueued (all fabrics)"

let c_bytes =
  Lams_obs.Obs.counter "sim.network.bytes" ~units:"bytes"
    ~doc:"payload bytes enqueued (8 per element)"

let c_elements =
  Lams_obs.Obs.counter "sim.network.elements" ~units:"elements"
    ~doc:"payload elements enqueued"

let c_drains =
  Lams_obs.Obs.counter "sim.network.drains" ~units:"drains"
    ~doc:"mailbox drains (receive_all calls)"

let d_congestion =
  Lams_obs.Obs.distribution "sim.network.congestion" ~units:"messages"
    ~doc:"mailbox depth right after each send (in-flight per receiver)"

let c_f_dropped =
  Lams_obs.Obs.counter "sim.network.faults.dropped" ~units:"messages"
    ~doc:"messages lost by the fault model"

let c_f_duplicated =
  Lams_obs.Obs.counter "sim.network.faults.duplicated" ~units:"messages"
    ~doc:"messages cloned by the fault model"

let c_f_reordered =
  Lams_obs.Obs.counter "sim.network.faults.reordered" ~units:"messages"
    ~doc:"messages that jumped their mailbox queue"

let c_f_corrupted =
  Lams_obs.Obs.counter "sim.network.faults.corrupted" ~units:"messages"
    ~doc:"messages delivered with a flipped payload bit"

let c_f_delayed =
  Lams_obs.Obs.counter "sim.network.faults.delayed" ~units:"messages"
    ~doc:"messages held back in simulated time"

let c_f_crashes =
  Lams_obs.Obs.counter "sim.network.faults.crashes" ~units:"crashes"
    ~doc:"planned mid-send rank crashes fired by the fault model"

let create ~p =
  if p <= 0 then invalid_arg "Network.create: p <= 0";
  { p;
    faults = None;
    mailboxes = Array.init p (fun _ -> Queue.create ());
    now = 0;
    delayed = Array.make p [];
    delayed_count = 0;
    order = 0;
    sent = 0;
    moved = 0;
    faulted = zero_faults;
    link_msgs = Array.make (p * p) 0;
    link_elems = Array.make (p * p) 0;
    pending_link = Array.make (p * p) 0;
    peak_link = Array.make (p * p) 0;
    peak_dst = Array.make p 0;
    mutex = Mutex.create () }

let procs t = t.p

let set_faults t fm = t.faults <- fm

let has_faults t = t.faults <> None

let fault_counts t =
  Mutex.lock t.mutex;
  let c = t.faulted in
  Mutex.unlock t.mutex;
  c

let check_rank t r name =
  if r < 0 || r >= t.p then invalid_arg ("Network." ^ name ^ ": rank out of range")

(* Callers hold [t.mutex]. Counts one surviving copy onto the link and
   into the cumulative traffic, then either queues it or holds it back. *)
let enqueue_copy t ~dst ~link ~reorder (msg : message)
    (copy : Fault_model.copy) =
  let payload, corrupted =
    match copy.Fault_model.corrupt with
    | None -> (msg.payload, false)
    | Some (idx, bit) ->
        (* Corrupt a private copy: the sender still owns (and may
           retransmit from) the original buffer. *)
        let dup = Fbuf.copy msg.payload in
        let bits = Int64.bits_of_float (Fbuf.get dup idx) in
        Fbuf.set dup idx
          (Int64.float_of_bits (Int64.logxor bits (Int64.shift_left 1L bit)));
        (dup, true)
  in
  if corrupted then begin
    t.faulted <- { t.faulted with corrupted = t.faulted.corrupted + 1 };
    Lams_obs.Obs.incr c_f_corrupted
  end;
  let msg = if corrupted then { msg with payload } else msg in
  t.sent <- t.sent + 1;
  t.moved <- t.moved + Fbuf.length msg.payload;
  t.link_msgs.(link) <- t.link_msgs.(link) + 1;
  t.link_elems.(link) <- t.link_elems.(link) + Fbuf.length msg.payload;
  t.pending_link.(link) <- t.pending_link.(link) + 1;
  if t.pending_link.(link) > t.peak_link.(link) then
    t.peak_link.(link) <- t.pending_link.(link);
  t.order <- t.order + 1;
  if copy.Fault_model.delay > 0 then begin
    t.faulted <- { t.faulted with delayed = t.faulted.delayed + 1 };
    Lams_obs.Obs.incr c_f_delayed;
    let entry = (t.now + copy.Fault_model.delay, t.order, msg) in
    t.delayed.(dst) <-
      List.sort
        (fun (a, i, _) (b, j, _) -> if a <> b then compare a b else compare i j)
        (entry :: t.delayed.(dst));
    t.delayed_count <- t.delayed_count + 1;
    Queue.length t.mailboxes.(dst)
  end
  else begin
    let q = t.mailboxes.(dst) in
    if reorder && Queue.length q > 0 then begin
      t.faulted <- { t.faulted with reordered = t.faulted.reordered + 1 };
      Lams_obs.Obs.incr c_f_reordered;
      (* Insert at a deterministic off-tail position: rebuild the queue
         with the newcomer second-from-front. Rare path; the queues are
         round-sized (tiny). *)
      let rest = List.of_seq (Queue.to_seq q) in
      Queue.clear q;
      (match rest with
      | [] -> Queue.push msg q
      | first :: others ->
          Queue.push first q;
          Queue.push msg q;
          List.iter (fun m -> Queue.push m q) others)
    end
    else Queue.push msg q;
    let depth = Queue.length q in
    if depth > t.peak_dst.(dst) then t.peak_dst.(dst) <- depth;
    depth
  end

let transmit t ~src ~dst ~tag ~header ~addresses ~payload =
  check_rank t src "send";
  check_rank t dst "send";
  (* An empty address array marks a *packed* message: the receiver knows
     the placement (from its half of the schedule), so per-element
     destination addresses are not shipped. *)
  if Array.length addresses <> 0
     && Array.length addresses <> Fbuf.length payload
  then invalid_arg "Network.send: addresses/payload length mismatch";
  (* The crash check runs before the mutex (and before any enqueue): a
     planned crash kills the rank with the fabric untouched by this
     send, like a process dying inside the transport call. *)
  (match t.faults with
  | Some fm when Fbuf.length payload > 0 && Fault_model.crash_now fm ~rank:src ->
      Mutex.lock t.mutex;
      t.faulted <- { t.faulted with crashes = t.faulted.crashes + 1 };
      Mutex.unlock t.mutex;
      Lams_obs.Obs.incr c_f_crashes;
      raise (Spmd.Crash src)
  | _ -> ());
  let msg = { src; tag; header; addresses; payload } in
  let link = (src * t.p) + dst in
  let verdict =
    match t.faults with
    | None ->
        { Fault_model.copies = [ { Fault_model.delay = 0; corrupt = None } ];
          reorder = false }
    | Some fm -> Fault_model.plan_send fm ~link ~payload_len:(Fbuf.length payload)
  in
  Mutex.lock t.mutex;
  (match verdict.Fault_model.copies with
  | [] ->
      t.faulted <- { t.faulted with dropped = t.faulted.dropped + 1 };
      Lams_obs.Obs.incr c_f_dropped
  | _ :: _ :: _ ->
      t.faulted <- { t.faulted with duplicated = t.faulted.duplicated + 1 };
      Lams_obs.Obs.incr c_f_duplicated
  | [ _ ] -> ());
  let depth =
    List.fold_left
      (fun acc copy ->
        max acc
          (enqueue_copy t ~dst ~link ~reorder:verdict.Fault_model.reorder msg
             copy))
      0 verdict.Fault_model.copies
  in
  Mutex.unlock t.mutex;
  List.iter
    (fun _ ->
      Lams_obs.Obs.incr c_messages;
      Lams_obs.Obs.add c_elements (Fbuf.length payload);
      Lams_obs.Obs.add c_bytes (bytes_per_element * Fbuf.length payload))
    verdict.Fault_model.copies;
  if verdict.Fault_model.copies <> [] then
    Lams_obs.Obs.observe d_congestion (float_of_int depth)

let send t ~src ~dst ~tag ~addresses ~payload =
  transmit t ~src ~dst ~tag ~header:[||] ~addresses ~payload

(* Callers hold [t.mutex]. Move matured held-back messages for [dst]
   into its mailbox (at the front, oldest deliver_at first: they were
   "on the wire" before anything enqueued this phase). *)
let mature t ~dst =
  match t.delayed.(dst) with
  | [] -> ()
  | entries ->
      let ready, still =
        List.partition (fun (at, _, _) -> at <= t.now) entries
      in
      if ready <> [] then begin
        t.delayed.(dst) <- still;
        t.delayed_count <- t.delayed_count - List.length ready;
        let q = t.mailboxes.(dst) in
        let tail = List.of_seq (Queue.to_seq q) in
        Queue.clear q;
        List.iter (fun (_, _, m) -> Queue.push m q) ready;
        List.iter (fun m -> Queue.push m q) tail
      end

let receive_all t ~dst =
  check_rank t dst "receive_all";
  Lams_obs.Obs.incr c_drains;
  Mutex.lock t.mutex;
  mature t ~dst;
  let q = t.mailboxes.(dst) in
  let rec drain acc =
    match Queue.take_opt q with
    | None -> List.rev acc
    | Some m ->
        let link = (m.src * t.p) + dst in
        t.pending_link.(link) <- t.pending_link.(link) - 1;
        drain (m :: acc)
  in
  let msgs = drain [] in
  Mutex.unlock t.mutex;
  msgs

let pending t ~dst =
  check_rank t dst "pending";
  Mutex.lock t.mutex;
  mature t ~dst;
  let n = Queue.length t.mailboxes.(dst) in
  Mutex.unlock t.mutex;
  n

(* --- Simulated time ------------------------------------------------- *)

let now t =
  Mutex.lock t.mutex;
  let n = t.now in
  Mutex.unlock t.mutex;
  n

let advance t ~ticks =
  if ticks < 0 then invalid_arg "Network.advance: ticks < 0";
  Mutex.lock t.mutex;
  t.now <- t.now + ticks;
  Mutex.unlock t.mutex

let horizon t =
  Mutex.lock t.mutex;
  let h =
    Array.fold_left
      (fun acc entries ->
        List.fold_left
          (fun acc (at, _, _) ->
            match acc with Some b when b <= at -> acc | _ -> Some at)
          acc entries)
      None t.delayed
  in
  Mutex.unlock t.mutex;
  h

let in_flight t =
  Mutex.lock t.mutex;
  let n =
    Array.fold_left (fun acc q -> acc + Queue.length q) t.delayed_count
      t.mailboxes
  in
  Mutex.unlock t.mutex;
  n

let purge t =
  Mutex.lock t.mutex;
  let n =
    Array.fold_left (fun acc q -> acc + Queue.length q) t.delayed_count
      t.mailboxes
  in
  Array.iter Queue.clear t.mailboxes;
  Array.fill t.delayed 0 t.p [];
  t.delayed_count <- 0;
  Array.fill t.pending_link 0 (t.p * t.p) 0;
  Mutex.unlock t.mutex;
  n

(* --- Accounting ----------------------------------------------------- *)

let messages_sent t = t.sent
let elements_moved t = t.moved

let link_messages t ~src ~dst =
  check_rank t src "link_messages";
  check_rank t dst "link_messages";
  t.link_msgs.((src * t.p) + dst)

let link_elements t ~src ~dst =
  check_rank t src "link_elements";
  check_rank t dst "link_elements";
  t.link_elems.((src * t.p) + dst)

let max_congestion t = Array.fold_left max 0 t.peak_dst

let max_link_in_flight t = Array.fold_left max 0 t.peak_link

let congestion t ~dst =
  check_rank t dst "congestion";
  t.peak_dst.(dst)

let reset_stats t =
  Mutex.lock t.mutex;
  t.sent <- 0;
  t.moved <- 0;
  t.faulted <- zero_faults;
  Array.fill t.link_msgs 0 (t.p * t.p) 0;
  Array.fill t.link_elems 0 (t.p * t.p) 0;
  Array.fill t.peak_link 0 (t.p * t.p) 0;
  Array.fill t.peak_dst 0 t.p 0;
  (* Keep the in-flight accounting consistent with what is actually
     still queued or held back, so a drain after the reset cannot drive
     pending_link negative. *)
  Array.fill t.pending_link 0 (t.p * t.p) 0;
  Array.iteri
    (fun dst q ->
      Queue.iter
        (fun (m : message) ->
          let link = (m.src * t.p) + dst in
          t.pending_link.(link) <- t.pending_link.(link) + 1)
        q)
    t.mailboxes;
  Array.iteri
    (fun dst entries ->
      List.iter
        (fun (_, _, (m : message)) ->
          let link = (m.src * t.p) + dst in
          t.pending_link.(link) <- t.pending_link.(link) + 1)
        entries)
    t.delayed;
  Mutex.unlock t.mutex
