open Lams_dist

type t = {
  name : string;
  n : int;
  layout : Layout.t;
  stores : Local_store.t array;
}

let create ~name ~n ~p ~dist =
  if n <= 0 then invalid_arg "Darray.create: n <= 0";
  let layout = Distribution.to_layout dist ~n ~p in
  let stores =
    Array.init p (fun m -> Local_store.create (Layout.local_extent layout ~n ~proc:m))
  in
  { name; n; layout; stores }

let layout t = t.layout
let size t = t.n
let procs t = Array.length t.stores

let local t m =
  if m < 0 || m >= Array.length t.stores then
    invalid_arg "Darray.local: rank out of range";
  t.stores.(m)

let check_global t g name =
  if g < 0 || g >= t.n then invalid_arg ("Darray." ^ name ^ ": index out of range")

let get t g =
  check_global t g "get";
  let m = Layout.owner t.layout g in
  Local_store.get t.stores.(m) (Layout.local_address t.layout g)

let set t g v =
  check_global t g "set";
  let m = Layout.owner t.layout g in
  Local_store.set t.stores.(m) (Layout.local_address t.layout g) v

(* Bulk init/readback go through the raw backing: they are harness and
   verification paths, and routing them through counted {!get}/{!set}
   would swamp the access accounting the per-element API exists for. *)
let of_array ~name ~p ~dist values =
  let t = create ~name ~n:(Array.length values) ~p ~dist in
  Array.iteri
    (fun g v ->
      let m = Layout.owner t.layout g in
      Lams_util.Fbuf.set
        (Local_store.data t.stores.(m))
        (Layout.local_address t.layout g) v)
    values;
  t

let gather t =
  Array.init t.n (fun g ->
      let m = Layout.owner t.layout g in
      Lams_util.Fbuf.get
        (Local_store.data t.stores.(m))
        (Layout.local_address t.layout g))

let equal_contents t1 t2 = t1.n = t2.n && gather t1 = gather t2
