open Lams_numeric
open Lams_dist
open Lams_core

type progression = { first : int; period : int; count : int }

type transfer = {
  src_proc : int;
  dst_proc : int;
  runs : progression list;
  elements : int;
}

type t = { transfers : transfer list; total : int }

(* Traversal residue (mod the side's cycle length) of a first-cycle
   location. Handles negative strides by reflecting the residues of the
   normalised section: position j of the original corresponds to
   position (total-1-j) of the normalised one. *)
let residue_of_location (norm : Section.t) ~stride ~total ~period loc =
  let j_norm = (loc - norm.Section.lo) / norm.Section.stride in
  if stride > 0 then j_norm else Modular.emod (total - 1 - j_norm) period

(* Residue classes of traversal positions owned by processor [proc]
   (one Start_finder pass — the per-pair unit of the CRT oracle). *)
let owner_classes (lay : Layout.t) (section : Section.t) ~proc =
  let total = Section.count section in
  let norm = Section.normalize section in
  let pr = Problem.of_section lay norm in
  let period = Problem.cycle_indices pr in
  let locs = Start_finder.first_cycle_locations pr ~m:proc in
  let residues =
    Array.to_list locs
    |> List.map
         (residue_of_location norm ~stride:section.Section.stride ~total
            ~period)
  in
  (residues, period)

(* The whole side at once: owner-of-residue table over one cycle. The
   per-processor first-cycle location sets partition the cycle's
   residues (their lengths sum to the cycle length), so p Start_finder
   passes — O(k/d) each, O(period) in total — fill the table
   completely. *)
let owner_table (lay : Layout.t) (section : Section.t) =
  let total = Section.count section in
  let norm = Section.normalize section in
  let pr = Problem.of_section lay norm in
  let period = Problem.cycle_indices pr in
  let owner = Array.make period (-1) in
  for m = 0 to lay.Layout.p - 1 do
    Array.iter
      (fun loc ->
        owner.(residue_of_location norm ~stride:section.Section.stride ~total
                  ~period loc)
        <- m)
      (Start_finder.first_cycle_locations pr ~m)
  done;
  (owner, period)

(* CRT intersection of j ≡ r1 (mod p1) with j ≡ r2 (mod p2):
   the class j ≡ r (mod lcm), or None when incompatible. *)
let intersect_classes (r1, p1) (r2, p2) =
  let g, x, _ = Euclid.egcd p1 p2 in
  if (r2 - r1) mod g <> 0 then None
  else begin
    let lcm = p1 / g * p2 in
    let t = (r2 - r1) / g * x mod (p2 / g) in
    Some (Modular.emod (r1 + (p1 * t)) lcm, lcm)
  end

let clip_to_range (residue, modulus) ~total =
  if residue >= total then None
  else Some { first = residue; period = modulus; count = 1 + ((total - 1 - residue) / modulus) }

let check_args ~src_section ~dst_section =
  let total = Section.count src_section in
  if total = 0 then invalid_arg "Comm_sets.build: empty section";
  if Section.count dst_section <> total then
    invalid_arg "Comm_sets.build: section element counts differ";
  let check_bounds sec =
    let norm = Section.normalize sec in
    if norm.Section.lo < 0 then
      invalid_arg "Comm_sets.build: negative indices in section"
  in
  check_bounds src_section;
  check_bounds dst_section;
  total

(* The all-pairs oracle: probe every (src class, dst class) pair of
   every processor pair with a CRT solve. Recomputes the destination
   side's classes once per source processor and visits empty pairs —
   quadratic in both the machine and the owned-class counts; kept as
   the differential baseline for {!build}. *)
let build_crt ~src_layout ~src_section ~dst_layout ~dst_section =
  let total = check_args ~src_section ~dst_section in
  let transfers = ref [] in
  for src_proc = src_layout.Layout.p - 1 downto 0 do
    let src_classes, src_period = owner_classes src_layout src_section ~proc:src_proc in
    for dst_proc = dst_layout.Layout.p - 1 downto 0 do
      let dst_classes, dst_period = owner_classes dst_layout dst_section ~proc:dst_proc in
      let runs =
        List.concat_map
          (fun r1 ->
            List.filter_map
              (fun r2 ->
                Option.bind
                  (intersect_classes (r1, src_period) (r2, dst_period))
                  (clip_to_range ~total))
              dst_classes)
          src_classes
        |> List.sort (fun a b -> compare a.first b.first)
      in
      let elements = List.fold_left (fun acc r -> acc + r.count) 0 runs in
      if elements > 0 then
        transfers := { src_proc; dst_proc; runs; elements } :: !transfers
    done
  done;
  { transfers = !transfers; total }

type bucket = { mutable runs_rev : progression list; mutable elements : int }

(* One closed-form walk instead of the p² CRT probes: every residue ρ of
   the joint cycle L = lcm(period_src, period_dst) belongs to exactly one
   (src owner, dst owner) pair — owner_src(ρ mod period_src) sends it to
   owner_dst(ρ mod period_dst) — and residues ≥ total own no positions
   at all. Sweeping ρ ascending therefore emits every nonempty
   intersection class exactly once, already sorted by [first] within
   its pair; empty pairs are never visited. *)
let build ~src_layout ~src_section ~dst_layout ~dst_section =
  let total = check_args ~src_section ~dst_section in
  let src_owner, src_period = owner_table src_layout src_section in
  let dst_owner, dst_period = owner_table dst_layout dst_section in
  let joint =
    src_period / Euclid.gcd src_period dst_period * dst_period
  in
  let limit = min joint total in
  let p_dst = dst_layout.Layout.p in
  let buckets : (int, bucket) Hashtbl.t = Hashtbl.create 64 in
  let rs = ref 0 and rd = ref 0 in
  for rho = 0 to limit - 1 do
    let key = (src_owner.(!rs) * p_dst) + dst_owner.(!rd) in
    let count = 1 + ((total - 1 - rho) / joint) in
    let run = { first = rho; period = joint; count } in
    (match Hashtbl.find_opt buckets key with
    | Some b ->
        b.runs_rev <- run :: b.runs_rev;
        b.elements <- b.elements + count
    | None -> Hashtbl.add buckets key { runs_rev = [ run ]; elements = count });
    incr rs;
    if !rs = src_period then rs := 0;
    incr rd;
    if !rd = dst_period then rd := 0
  done;
  let transfers =
    Hashtbl.fold (fun key b acc -> (key, b) :: acc) buckets []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (key, b) ->
           { src_proc = key / p_dst;
             dst_proc = key mod p_dst;
             runs = List.rev b.runs_rev;
             elements = b.elements })
  in
  { transfers; total }

let positions r = List.init r.count (fun t -> r.first + (t * r.period))

let find t ~src_proc ~dst_proc =
  List.find_opt
    (fun tr -> tr.src_proc = src_proc && tr.dst_proc = dst_proc)
    t.transfers

let by_src t ~p_src =
  let a = Array.make (max 1 p_src) [] in
  List.iter (fun tr -> a.(tr.src_proc) <- tr :: a.(tr.src_proc)) t.transfers;
  Array.map List.rev a

let cross_processor_elements t =
  List.fold_left
    (fun acc tr -> if tr.src_proc <> tr.dst_proc then acc + tr.elements else acc)
    0 t.transfers

let pp ppf t =
  Format.fprintf ppf "@[<v>%d elements, %d active pairs@," t.total
    (List.length t.transfers);
  List.iter
    (fun tr ->
      Format.fprintf ppf "  %d -> %d: %d elements in %d runs@," tr.src_proc
        tr.dst_proc tr.elements (List.length tr.runs))
    t.transfers;
  Format.fprintf ppf "@]"
