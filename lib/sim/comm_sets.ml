open Lams_numeric
open Lams_dist
open Lams_core

type progression = { first : int; period : int; count : int }

type transfer = {
  src_proc : int;
  dst_proc : int;
  runs : progression list;
  elements : int;
}

type t = { transfers : transfer list; total : int }

(* Residue classes (mod the cycle length) of traversal positions owned by
   processor [proc]. Handles negative strides by reflecting the classes of
   the normalised section: position j of the original corresponds to
   position (total-1-j) of the normalised one. *)
let owner_classes (lay : Layout.t) (section : Section.t) ~proc =
  let total = Section.count section in
  let norm = Section.normalize section in
  let pr = Problem.of_section lay norm in
  let period = Problem.cycle_indices pr in
  let locs = Start_finder.first_cycle_locations pr ~m:proc in
  let residues =
    Array.to_list locs
    |> List.map (fun loc ->
           let j_norm = (loc - norm.Section.lo) / norm.Section.stride in
           if section.Section.stride > 0 then j_norm
           else Modular.emod (total - 1 - j_norm) period)
  in
  (residues, period)

(* CRT intersection of j ≡ r1 (mod p1) with j ≡ r2 (mod p2):
   the class j ≡ r (mod lcm), or None when incompatible. *)
let intersect_classes (r1, p1) (r2, p2) =
  let g, x, _ = Euclid.egcd p1 p2 in
  if (r2 - r1) mod g <> 0 then None
  else begin
    let lcm = p1 / g * p2 in
    let t = (r2 - r1) / g * x mod (p2 / g) in
    Some (Modular.emod (r1 + (p1 * t)) lcm, lcm)
  end

let clip_to_range (residue, modulus) ~total =
  if residue >= total then None
  else Some { first = residue; period = modulus; count = 1 + ((total - 1 - residue) / modulus) }

let build ~src_layout ~src_section ~dst_layout ~dst_section =
  let total = Section.count src_section in
  if total = 0 then invalid_arg "Comm_sets.build: empty section";
  if Section.count dst_section <> total then
    invalid_arg "Comm_sets.build: section element counts differ";
  let check_bounds sec =
    let norm = Section.normalize sec in
    if norm.Section.lo < 0 then
      invalid_arg "Comm_sets.build: negative indices in section"
  in
  check_bounds src_section;
  check_bounds dst_section;
  let transfers = ref [] in
  for src_proc = src_layout.Layout.p - 1 downto 0 do
    let src_classes, src_period = owner_classes src_layout src_section ~proc:src_proc in
    for dst_proc = dst_layout.Layout.p - 1 downto 0 do
      let dst_classes, dst_period = owner_classes dst_layout dst_section ~proc:dst_proc in
      let runs =
        List.concat_map
          (fun r1 ->
            List.filter_map
              (fun r2 ->
                Option.bind
                  (intersect_classes (r1, src_period) (r2, dst_period))
                  (clip_to_range ~total))
              dst_classes)
          src_classes
        |> List.sort (fun a b -> compare a.first b.first)
      in
      let elements = List.fold_left (fun acc r -> acc + r.count) 0 runs in
      if elements > 0 then
        transfers := { src_proc; dst_proc; runs; elements } :: !transfers
    done
  done;
  { transfers = !transfers; total }

let positions r = List.init r.count (fun t -> r.first + (t * r.period))

let find t ~src_proc ~dst_proc =
  List.find_opt
    (fun tr -> tr.src_proc = src_proc && tr.dst_proc = dst_proc)
    t.transfers

let cross_processor_elements t =
  List.fold_left
    (fun acc tr -> if tr.src_proc <> tr.dst_proc then acc + tr.elements else acc)
    0 t.transfers

let pp ppf t =
  Format.fprintf ppf "@[<v>%d elements, %d active pairs@," t.total
    (List.length t.transfers);
  List.iter
    (fun tr ->
      Format.fprintf ppf "  %d -> %d: %d elements in %d runs@," tr.src_proc
        tr.dst_proc tr.elements (List.length tr.runs))
    t.transfers;
  Format.fprintf ppf "@]"
