(** A deterministic message-passing fabric between simulated processors:
    point-to-point mailboxes with per-link traffic accounting. Stands in
    for the iPSC/860 interconnect when array statements move data between
    differently-mapped arrays.

    By default the fabric is perfect — no loss, duplication, reordering,
    corruption or delay. Attach a {!Fault_model} at creation to make it
    lossy: each send then draws its fate from the model's per-link
    seeded streams, and delivery may be held back in {e simulated time}
    (an integer clock advanced only by {!advance}, never by traffic, so
    fault sequences replay exactly from a seed).

    All operations are safe to call from concurrent domains (one mutex
    per fabric), so executor phases may post and drain in parallel. *)

type message = {
  src : int;
  tag : int;
  header : int array;
      (** protocol metadata (e.g. {!Lams_sched.Reliable} sequence
          numbers and checksums); [[||]] for bare data messages *)
  addresses : int array;
      (** destination-local addresses; empty for {e packed} messages,
          whose placement the receiver derives from its schedule *)
  payload : Lams_util.Fbuf.t;  (** same length as [addresses] unless packed *)
}

type fault_counts = {
  dropped : int;
  duplicated : int;
  reordered : int;
  corrupted : int;
  delayed : int;
  crashes : int;
}

type t

val create : p:int -> t
(** A perfect fabric for [p] processors.
    @raise Invalid_argument if [p <= 0]. *)

val procs : t -> int

val set_faults : t -> Fault_model.t option -> unit
(** Attach (or detach with [None]) a fault model. Do this while the
    fabric is quiet — between runs, not mid-phase. *)

val has_faults : t -> bool
(** Is a fault model attached (even an all-zero-rates one)? The
    reliable protocol verifies checksums exactly when this holds. *)

val fault_counts : t -> fault_counts
(** Faults injected since creation (or the last {!reset_stats});
    all zero on a perfect fabric. Also the [sim.network.faults.*]
    {!Lams_obs.Obs} counters. *)

val bytes_per_element : int
(** Accounting width of one payload element (8, a double). *)

val transmit : t -> src:int -> dst:int -> tag:int -> header:int array ->
  addresses:int array -> payload:Lams_util.Fbuf.t -> unit
(** Enqueue. An empty [addresses] array marks a packed message (any
    payload length); otherwise the lengths must match. Under a fault
    model the message may be dropped, cloned, corrupted (into a private
    copy — the caller's buffer is never touched), reordered or held
    back; a planned crash raises {!Spmd.Crash} {e before} anything is
    enqueued.
    @raise Invalid_argument on rank out of range or length mismatch.
    @raise Spmd.Crash on a planned mid-send rank crash. *)

val send : t -> src:int -> dst:int -> tag:int -> addresses:int array ->
  payload:Lams_util.Fbuf.t -> unit
(** {!transmit} with an empty header. *)

val receive_all : t -> dst:int -> message list
(** Drain processor [dst]'s mailbox in arrival order; held-back
    messages whose delivery time has matured are included (oldest
    first, ahead of the queue). *)

val pending : t -> dst:int -> int
(** Messages deliverable to [dst] right now (matured ones included,
    still-delayed ones not). *)

(** {1 Simulated time}

    An integer tick clock, [0] at creation. Only {!advance} moves it —
    sends and drains never do — so the orchestrator alone decides when
    held-back messages mature and when retransmit timeouts fire, which
    keeps fault replay deterministic under parallel phases. *)

val now : t -> int

val advance : t -> ticks:int -> unit
(** @raise Invalid_argument if [ticks < 0]. *)

val horizon : t -> int option
(** Earliest delivery time among held-back messages, [None] if none —
    the next instant at which waiting could change anything. *)

val in_flight : t -> int
(** Messages posted but not yet drained, queued and held-back alike. *)

val purge : t -> int
(** Discard every undrained message (queued and held-back) and zero the
    in-flight accounting; returns how many were discarded. Cumulative
    traffic counters are kept. The executor uses this to release packed
    buffers still referenced by undelivered messages when a round
    raises, and to clear protocol stragglers before handing a reused
    fabric back to its caller. *)

val messages_sent : t -> int
(** Total messages enqueued since creation (fault-surviving copies:
    dropped messages are not counted, duplicates count twice). *)

val elements_moved : t -> int
(** Total payload elements enqueued since creation. *)

(** {1 Congestion accounting}

    Cumulative per-link traffic plus {e in-flight peaks}: how many
    messages were simultaneously posted-but-undrained, per link and per
    receiver. A contention-free round schedule keeps every peak at 1;
    the unscheduled exchange lets them grow with the transfer degree.
    Also observed as the [sim.network.congestion] distribution. *)

val link_messages : t -> src:int -> dst:int -> int
(** Messages ever sent on one (src, dst) link. *)

val link_elements : t -> src:int -> dst:int -> int
(** Payload elements ever sent on one (src, dst) link. *)

val congestion : t -> dst:int -> int
(** Peak mailbox depth seen at [dst]. *)

val max_congestion : t -> int
(** Largest {!congestion} over all receivers. *)

val max_link_in_flight : t -> int
(** Peak simultaneously-pending messages on any single link. *)

val reset_stats : t -> unit
(** Zero the cumulative and peak accounting (sent/moved totals,
    per-link traffic, congestion and in-flight peaks, fault counts)
    without touching queued traffic or the clock; the in-flight counts
    are recomputed from what is actually still queued. Pair with
    {!Lams_obs.Obs.reset} between back-to-back measured runs on a
    reused fabric, so the first run's peaks cannot skew the second's
    report. *)
