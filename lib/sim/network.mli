(** A deterministic message-passing fabric between simulated processors:
    point-to-point mailboxes with per-link traffic accounting. Stands in
    for the iPSC/860 interconnect when array statements move data between
    differently-mapped arrays. *)

type message = {
  src : int;
  tag : int;
  addresses : int array;  (** destination-local addresses *)
  payload : float array;  (** same length as [addresses] *)
}

type t

val create : p:int -> t
(** @raise Invalid_argument if [p <= 0]. *)

val procs : t -> int

val send : t -> src:int -> dst:int -> tag:int -> addresses:int array ->
  payload:float array -> unit
(** Enqueue. @raise Invalid_argument on rank out of range or length
    mismatch between addresses and payload. *)

val receive_all : t -> dst:int -> message list
(** Drain processor [dst]'s mailbox in arrival order. *)

val pending : t -> dst:int -> int
(** Messages waiting for [dst]. *)

val messages_sent : t -> int
(** Total messages enqueued since creation. *)

val elements_moved : t -> int
(** Total payload elements enqueued since creation. *)
