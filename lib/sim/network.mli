(** A deterministic message-passing fabric between simulated processors:
    point-to-point mailboxes with per-link traffic accounting. Stands in
    for the iPSC/860 interconnect when array statements move data between
    differently-mapped arrays.

    All operations are safe to call from concurrent domains (one mutex
    per fabric), so executor phases may post and drain in parallel. *)

type message = {
  src : int;
  tag : int;
  addresses : int array;
      (** destination-local addresses; empty for {e packed} messages,
          whose placement the receiver derives from its schedule *)
  payload : float array;  (** same length as [addresses] unless packed *)
}

type t

val create : p:int -> t
(** @raise Invalid_argument if [p <= 0]. *)

val procs : t -> int

val bytes_per_element : int
(** Accounting width of one payload element (8, a double). *)

val send : t -> src:int -> dst:int -> tag:int -> addresses:int array ->
  payload:float array -> unit
(** Enqueue. An empty [addresses] array marks a packed message (any
    payload length); otherwise the lengths must match.
    @raise Invalid_argument on rank out of range or length mismatch. *)

val receive_all : t -> dst:int -> message list
(** Drain processor [dst]'s mailbox in arrival order. *)

val pending : t -> dst:int -> int
(** Messages waiting for [dst]. *)

val messages_sent : t -> int
(** Total messages enqueued since creation. *)

val elements_moved : t -> int
(** Total payload elements enqueued since creation. *)

(** {1 Congestion accounting}

    Cumulative per-link traffic plus {e in-flight peaks}: how many
    messages were simultaneously posted-but-undrained, per link and per
    receiver. A contention-free round schedule keeps every peak at 1;
    the unscheduled exchange lets them grow with the transfer degree.
    Also observed as the [sim.network.congestion] distribution. *)

val link_messages : t -> src:int -> dst:int -> int
(** Messages ever sent on one (src, dst) link. *)

val link_elements : t -> src:int -> dst:int -> int
(** Payload elements ever sent on one (src, dst) link. *)

val congestion : t -> dst:int -> int
(** Peak mailbox depth seen at [dst]. *)

val max_congestion : t -> int
(** Largest {!congestion} over all receivers. *)

val max_link_in_flight : t -> int
(** Peak simultaneously-pending messages on any single link. *)
