open Lams_util

type timing = {
  per_proc_us : float array;
  max_us : float;
  total_us : float;
}

let check_p p = if p <= 0 then invalid_arg "Spmd: p <= 0"

let run ~p ~f =
  check_p p;
  for m = 0 to p - 1 do
    f m
  done

let run_timed ~p ~f =
  check_p p;
  let per_proc_us =
    Array.init p (fun m ->
        let (), us = Timer.time_us (fun () -> f m) in
        us)
  in
  { per_proc_us;
    max_us = Array.fold_left max 0. per_proc_us;
    total_us = Array.fold_left ( +. ) 0. per_proc_us }

let run_parallel ?domains ~p f =
  check_p p;
  let workers =
    let d =
      match domains with
      | Some d -> d
      | None -> Domain.recommended_domain_count ()
    in
    max 1 (min d p)
  in
  if workers = 1 then run ~p ~f
  else begin
    (* Static block partition of ranks over domains. *)
    let chunk = (p + workers - 1) / workers in
    let spawned =
      List.init workers (fun w ->
          let lo = w * chunk in
          let hi = min p (lo + chunk) - 1 in
          Domain.spawn (fun () ->
              for m = lo to hi do
                f m
              done))
    in
    List.iter Domain.join spawned
  end

let run_collect ~p ~f =
  check_p p;
  Array.init p f

let barrier_phases ~p ~phases =
  check_p p;
  List.iter (fun phase -> run ~p ~f:phase) phases
