open Lams_util

type timing = {
  per_proc_us : float array;
  max_us : float;
  total_us : float;
}

let check_p p = if p <= 0 then invalid_arg "Spmd: p <= 0"

let run ~p ~f =
  check_p p;
  for m = 0 to p - 1 do
    f m
  done

let run_timed ~p ~f =
  check_p p;
  let per_proc_us =
    Array.init p (fun m ->
        let (), us = Timer.time_us (fun () -> f m) in
        us)
  in
  { per_proc_us;
    max_us = Array.fold_left max 0. per_proc_us;
    total_us = Array.fold_left ( +. ) 0. per_proc_us }

(* --- The reusable domain pool ---------------------------------------

   Seed behaviour spawned (and joined) fresh domains on every
   [run_parallel] call — ~10s of microseconds per domain per call, paid
   on every parallel fill/copy. The pool spawns its workers once, parks
   them on a condition variable, and hands each [run_parallel] call to
   them as a generation-stamped job. Ranks are scheduled dynamically:
   participants grab chunks of ranks from an [Atomic] cursor, so uneven
   rank costs load-balance instead of following the seed's static block
   partition. The caller participates too, then blocks until the job's
   completed-rank count reaches [p]. *)

let c_dispatches =
  Lams_obs.Obs.counter "spmd.pool.dispatches" ~units:"jobs"
    ~doc:"parallel rank sweeps dispatched to the domain pool"

let c_spawns =
  Lams_obs.Obs.counter "spmd.pool.spawns" ~units:"domains"
    ~doc:"worker domains spawned (once per process, not per call)"

type job = {
  f : int -> unit;
  p : int;
  chunk : int;
  width : int;  (* max participants, including the caller *)
  cursor : int Atomic.t;  (* next rank block to hand out *)
  joined : int Atomic.t;  (* worker admission ticket *)
  completed : int Atomic.t;  (* ranks finished, job done at [p] *)
  mutable error : (int * exn) option;  (* lowest failing rank wins *)
}

type pool = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable spawned : bool;
}

let pool =
  { mutex = Mutex.create ();
    cond = Condition.create ();
    job = None;
    generation = 0;
    stop = false;
    workers = [];
    spawned = false }

(* Keep the error of the lowest failing rank, not of whichever domain
   lost the race: [run_parallel] then surfaces the same exception as the
   sequential [run] would (which stops at the first failing rank), and
   fault-injection harnesses get a reproducible report regardless of
   chunk scheduling. *)
let record_error j ~rank e =
  Mutex.lock pool.mutex;
  (match j.error with
  | Some (r, _) when r <= rank -> ()
  | _ -> j.error <- Some (rank, e));
  Mutex.unlock pool.mutex

(* Pull rank chunks until the cursor runs dry. Whoever retires the last
   rank wakes the caller (and any parked worker) so completion is never
   missed: the broadcast happens under the pool mutex, which the caller
   holds while re-checking [completed]. *)
let work_on j =
  let rec grab () =
    let lo = Atomic.fetch_and_add j.cursor j.chunk in
    if lo < j.p then begin
      let hi = min j.p (lo + j.chunk) in
      (* Per-rank catch so the failing rank is known; the rest of the
         chunk is skipped, like the ranks after a failure in [run]. *)
      let m = ref lo and aborted = ref false in
      while (not !aborted) && !m < hi do
        (try j.f !m
         with e ->
           record_error j ~rank:!m e;
           aborted := true);
        incr m
      done;
      let finished = hi - lo + Atomic.fetch_and_add j.completed (hi - lo) in
      if finished >= j.p then begin
        Mutex.lock pool.mutex;
        Condition.broadcast pool.cond;
        Mutex.unlock pool.mutex
      end;
      grab ()
    end
  in
  grab ()

let worker () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.generation = !seen do
      Condition.wait pool.cond pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let job = pool.job in
      seen := pool.generation;
      Mutex.unlock pool.mutex;
      match job with
      | Some j ->
          (* Admission ticket: a pool larger than the requested width
             leaves the surplus workers parked ([width - 1] worker slots;
             the caller is the remaining participant). *)
          if Atomic.fetch_and_add j.joined 1 < j.width - 1 then work_on j
      | None -> ()
    end
  done

let shutdown () =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.cond;
  let ws = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join ws

(* Spawn the workers on first parallel use: one fewer than the
   recommended domain count (the calling domain participates), but at
   least one so the pool path stays exercised on single-core hosts. *)
let ensure_workers () =
  Mutex.lock pool.mutex;
  if not pool.spawned then begin
    pool.spawned <- true;
    let n = max 1 (Domain.recommended_domain_count () - 1) in
    pool.workers <- List.init n (fun _ -> Domain.spawn worker);
    Lams_obs.Obs.add c_spawns n;
    at_exit shutdown
  end;
  Mutex.unlock pool.mutex

let run_parallel ?domains ~p f =
  check_p p;
  let width =
    let d =
      match domains with
      | Some d -> d
      | None -> Domain.recommended_domain_count ()
    in
    max 1 (min d p)
  in
  if width = 1 then run ~p ~f
  else begin
    ensure_workers ();
    Lams_obs.Obs.incr c_dispatches;
    (* Small chunks load-balance; a floor of width avoids degenerate
       one-rank handouts dominating on large p. *)
    let chunk = max 1 (p / (width * 4)) in
    let j =
      { f;
        p;
        chunk;
        width;
        cursor = Atomic.make 0;
        joined = Atomic.make 0;
        completed = Atomic.make 0;
        error = None }
    in
    Mutex.lock pool.mutex;
    pool.job <- Some j;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    (* The caller is always a participant (no admission ticket). *)
    work_on j;
    Mutex.lock pool.mutex;
    while Atomic.get j.completed < j.p do
      Condition.wait pool.cond pool.mutex
    done;
    (match pool.job with Some j' when j' == j -> pool.job <- None | _ -> ());
    Mutex.unlock pool.mutex;
    match j.error with Some (_, e) -> raise e | None -> ()
  end

let run_collect ~p ~f =
  check_p p;
  Array.init p f

(* --- Crash recovery -------------------------------------------------

   A worker domain that dies mid-phase (the fault model's planned
   crashes, surfaced as [Crash rank]) is respawned in place: the rank's
   node program is re-run from the top of the phase. That is only
   correct when the phase is replay-idempotent — which the scheduled
   executor's phases are: packing rewrites the same buffers, resends
   are absorbed by the reliable protocol's sequence-number dedup. The
   respawn budget is shared across the whole job (an [Atomic]), so a
   crash storm cannot loop forever: once it is spent, the [Crash]
   propagates and the caller walks down the degradation ladder. *)

exception Crash of int

type respawn_budget = int Atomic.t

let respawn_budget n = Atomic.make (max 0 n)

let respawns_left (b : respawn_budget) = max 0 (Atomic.get b)

let c_crashes =
  Lams_obs.Obs.counter "spmd.recovery.crashes" ~units:"crashes"
    ~doc:"worker ranks that died mid-phase (Spmd.Crash)"

let c_respawns =
  Lams_obs.Obs.counter "spmd.recovery.respawns" ~units:"respawns"
    ~doc:"crashed ranks respawned and their phase replayed"

let c_exhausted =
  Lams_obs.Obs.counter "spmd.recovery.exhausted" ~units:"crashes"
    ~doc:"crashes surfaced because the respawn budget was spent"

let run_protected ?budget ?(parallel = false) ~p f =
  check_p p;
  let g =
    match budget with
    | None -> f
    | Some b ->
        fun m ->
          let rec attempt () =
            try f m
            with Crash _ as e ->
              Lams_obs.Obs.incr c_crashes;
              (* fetch_and_add may briefly overdraw under parallel crash
                 storms; the restore keeps the budget non-negative and
                 the overdraw only means one extra respawn, never an
                 unbounded loop. *)
              if Atomic.fetch_and_add b (-1) > 0 then begin
                Lams_obs.Obs.incr c_respawns;
                attempt ()
              end
              else begin
                Atomic.incr b;
                Lams_obs.Obs.incr c_exhausted;
                raise e
              end
          in
          attempt ()
  in
  if parallel then run_parallel ~p g else run ~p ~f:g

let barrier_phases ~p ~phases =
  check_p p;
  List.iter (fun phase -> run ~p ~f:phase) phases
