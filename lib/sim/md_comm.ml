open Lams_dist
open Lams_multidim

type transfer = {
  src_coords : int array;
  dst_coords : int array;
  dim_runs : Comm_sets.progression list array;
  elements : int;
}

type t = {
  transfers : transfer list;
  total : int;
  shape : int array;
}

let c_schedules =
  Lams_obs.Obs.counter "sim.md_comm.schedules" ~units:"schedules"
    ~doc:"multidimensional communication schedules built"

let c_transfers =
  Lams_obs.Obs.counter "sim.md_comm.transfers" ~units:"transfers"
    ~doc:"node-pair transfers across all schedules"

let c_cross =
  Lams_obs.Obs.counter "sim.md_comm.cross_node_elements" ~units:"elements"
    ~doc:"scheduled elements that change node coordinates"

let cross_node_elements t =
  List.fold_left
    (fun acc tr ->
      if tr.src_coords <> tr.dst_coords then acc + tr.elements else acc)
    0 t.transfers

let build ~src ~src_sections ~dst ~dst_sections =
  let rank = Array.length src.Md_array.dims in
  if
    Array.length src_sections <> rank
    || Array.length dst.Md_array.dims <> Array.length dst_sections
    || Array.length dst_sections <> rank
  then invalid_arg "Md_comm.build: rank mismatch";
  let shape = Array.map Section.count src_sections in
  Array.iteri
    (fun d n ->
      if Section.count dst_sections.(d) <> n then
        invalid_arg "Md_comm.build: per-dimension element counts differ")
    shape;
  (* One 1-D schedule per dimension. *)
  let per_dim =
    Array.init rank (fun d ->
        Comm_sets.build
          ~src_layout:src.Md_array.layouts.(d)
          ~src_section:src_sections.(d)
          ~dst_layout:dst.Md_array.layouts.(d)
          ~dst_section:dst_sections.(d))
  in
  (* Cartesian product of per-dimension transfers. *)
  let rec combine d acc =
    if d = rank then [ List.rev acc ]
    else
      List.concat_map
        (fun (tr : Comm_sets.transfer) -> combine (d + 1) (tr :: acc))
        per_dim.(d).Comm_sets.transfers
  in
  let transfers =
    combine 0 []
    |> List.map (fun per_dim_transfers ->
           let arr = Array.of_list per_dim_transfers in
           { src_coords = Array.map (fun (tr : Comm_sets.transfer) -> tr.Comm_sets.src_proc) arr;
             dst_coords = Array.map (fun (tr : Comm_sets.transfer) -> tr.Comm_sets.dst_proc) arr;
             dim_runs = Array.map (fun (tr : Comm_sets.transfer) -> tr.Comm_sets.runs) arr;
             elements =
               Array.fold_left
                 (fun acc (tr : Comm_sets.transfer) -> acc * tr.Comm_sets.elements)
                 1 arr })
  in
  let t = { transfers; total = Array.fold_left ( * ) 1 shape; shape } in
  Lams_obs.Obs.incr c_schedules;
  Lams_obs.Obs.add c_transfers (List.length transfers);
  Lams_obs.Obs.add c_cross (cross_node_elements t);
  t

let by_src_rank t ~grid =
  let a = Array.make (max 1 (Proc_grid.size grid)) [] in
  List.iter
    (fun tr ->
      let r = Proc_grid.rank_of_coords grid tr.src_coords in
      a.(r) <- tr :: a.(r))
    t.transfers;
  Array.map List.rev a

let iter_positions transfer ~f =
  let rank = Array.length transfer.dim_runs in
  let pos = Array.make rank 0 in
  let rec nest d =
    if d = rank then f pos
    else
      List.iter
        (fun run ->
          List.iter
            (fun j ->
              pos.(d) <- j;
              nest (d + 1))
            (Comm_sets.positions run))
        transfer.dim_runs.(d)
  in
  nest 0

let pp ppf t =
  let coords c =
    "("
    ^ String.concat "," (Array.to_list (Array.map string_of_int c))
    ^ ")"
  in
  Format.fprintf ppf "@[<v>%d elements, %d active node pairs@," t.total
    (List.length t.transfers);
  List.iter
    (fun tr ->
      Format.fprintf ppf "  %s -> %s: %d elements@," (coords tr.src_coords)
        (coords tr.dst_coords) tr.elements)
    t.transfers;
  Format.fprintf ppf "@]"
