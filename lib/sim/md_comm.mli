(** Communication sets for multidimensional array assignments
    [DST(secs_d) = SRC(secs_s)] between block-cyclic grids.

    Because dimensions are mapped independently (§2), the communication
    set factorises: node pair [((q₀,…), (r₀,…))] exchanges exactly the
    Cartesian product of the per-dimension position sets, each of which
    is a 1-D {!Comm_sets} schedule. The whole multidimensional schedule
    therefore costs a product of per-dimension class counts — still
    independent of how many elements move. *)

type transfer = {
  src_coords : int array;  (** sending grid node *)
  dst_coords : int array;  (** receiving grid node *)
  dim_runs : Comm_sets.progression list array;
      (** per-dimension position progressions; the exchanged positions are
          the Cartesian product *)
  elements : int;  (** product of per-dimension counts *)
}

type t = {
  transfers : transfer list;  (** only non-empty pairs *)
  total : int;  (** total element count of the assignment *)
  shape : int array;  (** per-dimension element counts *)
}

val build :
  src:Lams_multidim.Md_array.t ->
  src_sections:Lams_dist.Section.t array ->
  dst:Lams_multidim.Md_array.t ->
  dst_sections:Lams_dist.Section.t array ->
  t
(** @raise Invalid_argument on rank mismatch between the two sides or
    per-dimension element-count mismatch (shape non-conformance). *)

val by_src_rank : t -> grid:Lams_dist.Proc_grid.t -> transfer list array
(** Transfers grouped by the sending node's rank on [grid] (transfer
    order preserved within each slot) — the send side of an exchange
    reads its own slot instead of scanning the full node-pair list on
    every rank. @raise Invalid_argument if a transfer's source
    coordinates do not fit the grid. *)

val iter_positions : transfer -> f:(int array -> unit) -> unit
(** Visit every exchanged multidimensional position (row-major over the
    per-dimension runs). The position array is reused between calls. *)

val cross_node_elements : t -> int
(** Elements whose source and destination nodes differ. *)

val pp : Format.formatter -> t -> unit
