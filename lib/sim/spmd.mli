(** The SPMD execution model: the same node program runs on every
    processor, parameterised by its rank. On the real iPSC/860 the nodes
    run concurrently and the paper reports the {e maximum} time over all
    32 processors; we run the node programs sequentially on the host and
    report per-rank wall-clock times, so the same maximum statistic is
    available without requiring 32 physical CPUs (see DESIGN.md,
    Substitutions). *)

type timing = {
  per_proc_us : float array;  (** elapsed microseconds per rank *)
  max_us : float;  (** the paper's reported statistic *)
  total_us : float;
}

val run : p:int -> f:(int -> unit) -> unit
(** [run ~p ~f] executes [f m] for every rank [m] in [0 .. p-1].
    @raise Invalid_argument if [p <= 0]. *)

val run_parallel : ?domains:int -> p:int -> (int -> unit) -> unit
(** Like {!run}, but ranks execute concurrently on OCaml 5 domains
    ([domains] defaults to [Domain.recommended_domain_count], clamped to
    [p]). Correct only when [f m] touches rank-disjoint state — which
    holds for the node programs here, since each rank owns its local
    store. Timing is not reported (per-rank wall-clock is meaningless
    under oversubscription); use {!run_timed} for the paper's metric.

    Served by a process-wide {e domain pool}: worker domains are spawned
    once on first use and parked on a condition variable between calls,
    so repeated parallel sweeps pay a wakeup, not a
    [Domain.spawn]/[join] round trip. Ranks are handed out in chunks
    from an [Atomic] cursor (dynamic load balancing); the calling domain
    participates. An exception in [f] aborts the rest of that rank
    chunk and is re-raised in the caller after all ranks retire; when
    several ranks fail, the {e lowest} failing rank's exception wins, so
    the surfaced error is deterministic and matches what the sequential
    {!run} (which stops at the first failing rank) would raise.
    Dispatches and spawns are the [spmd.pool.*] {!Lams_obs.Obs}
    counters. When [domains] (or the recommendation, e.g. on a
    single-core host) is [1], runs sequentially without touching the
    pool. *)

val run_timed : p:int -> f:(int -> unit) -> timing
(** Same, timing each rank's execution. *)

val run_collect : p:int -> f:(int -> 'a) -> 'a array
(** Gather each rank's result. *)

(** {1 Crash recovery}

    The fault model ({!Fault_model}) can kill a worker rank mid-phase;
    the death is surfaced as [Crash rank]. {!run_protected} respawns the
    rank in place — its phase function is re-run from the top — which is
    correct exactly when the phase is replay-idempotent (the scheduled
    executor's phases are: packed buffers are rewritten with the same
    values, resent messages are absorbed by the reliable protocol's
    dedup). Crashes, respawns and budget exhaustions are the
    [spmd.recovery.*] {!Lams_obs.Obs} counters. *)

exception Crash of int
(** Rank [m]'s worker died mid-phase. *)

type respawn_budget

val respawn_budget : int -> respawn_budget
(** A budget shared by every phase of one job (clamped to [>= 0]);
    [respawn_budget 0] never respawns. *)

val respawns_left : respawn_budget -> int

val run_protected :
  ?budget:respawn_budget -> ?parallel:bool -> p:int -> (int -> unit) -> unit
(** {!run} (or {!run_parallel} with [~parallel:true]) with crash
    recovery: a rank raising [Crash] is re-run while [budget] lasts;
    with the budget spent (or absent) the [Crash] propagates like any
    other exception. Non-[Crash] exceptions are never retried. *)

val barrier_phases : p:int -> phases:(int -> unit) list -> unit
(** Run a list of phases with an (implicit) global barrier between them:
    phase [i] runs on every rank before phase [i+1] starts on any rank —
    the send/receive structure of a data-exchange step. *)
