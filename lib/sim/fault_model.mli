(** A deterministic, seedable fault model for the simulated fabric.

    The perfect {!Network} never loses, duplicates, reorders, corrupts
    or delays a message, and a crashed worker domain kills the whole
    run. Real distributed-memory targets fail in exactly these ways, so
    a network may carry a fault model: each send draws, from a
    {e per-link} PRNG stream, whether the message is dropped, cloned,
    delivered out of order, bit-flipped or held back in simulated time.

    Determinism: the stream for link [(src, dst)] is derived from
    [(seed, src * p + dst)] alone, and a round schedule totally orders
    the sends on any single link, so the fault sequence is a pure
    function of the seed — independent of how concurrent domains
    interleave sends on {e different} links. Replaying a seed replays
    the faults.

    Crashes are planned, not drawn: [(rank, nth)] crashes [rank] on its
    [nth] {e data} send (payload-carrying; protocol acks don't count),
    once. The entry is consumed before the raise, so a respawned rank
    replaying its round sails past the crash site — the semantics of a
    process restart. *)

type rates = {
  drop : float;  (** message vanishes *)
  duplicate : float;  (** message delivered twice *)
  reorder : float;  (** message jumps the mailbox queue *)
  corrupt : float;  (** one payload element gets a flipped bit *)
  delay : float;  (** delivery held back 1..[max_delay] ticks *)
}
(** Per-send probabilities, each in [\[0, 1\]]. Drop and duplicate
    compose: a dropped duplicate still delivers one copy. *)

val no_faults : rates

val some_faults : rates -> bool
(** Any rate positive? *)

type t

val create :
  ?rates:rates ->
  ?link_rates:(int -> rates option) ->
  ?bandwidth:(int -> float option) ->
  ?max_delay:int ->
  ?crashes:(int * int) list ->
  seed:int ->
  unit ->
  t
(** [create ~seed ()] with all-zero [rates] (the default) and no
    [crashes] is a faultless model — attaching it changes nothing but
    makes the network report [has_faults], which switches the reliable
    protocol to verifying checksums. [max_delay] (default 3, ticks of
    simulated time) bounds every drawn delay.

    [link_rates] gives per-link overrides for heterogeneous fabrics:
    [link_rates (src * p + dst) = Some r] replaces the global [rates]
    for that link only. It must be a pure function of the link id
    (consulted on every send).

    [bandwidth] models slow links: [Some epb] (elements per tick) adds
    a deterministic service delay of [ceil (payload_len / epb)] ticks
    to every delivered copy on that link. Zero-length payloads
    (protocol acks) are exempt. No PRNG draw is involved, so a
    bandwidth profile never perturbs the fault streams — the same seed
    replays the same drops with or without it.
    @raise Invalid_argument on a rate outside [\[0, 1\]], [max_delay < 1],
    or a crash entry with negative rank or [nth < 1]. *)

val rates : t -> rates
val seed : t -> int
val max_delay : t -> int

val rates_for : t -> link:int -> rates
(** The rates in force on [link]: the per-link override if present,
    else the global rates.
    @raise Invalid_argument if the override has a rate outside [\[0, 1\]]. *)

val bandwidth_for : t -> link:int -> float option
(** The bandwidth limit on [link], if any (elements per tick). *)

val service_ticks : t -> link:int -> payload_len:int -> int
(** The deterministic service delay a [payload_len]-element message
    incurs on [link]: [ceil (payload_len / epb)] under a bandwidth
    limit, else 0. *)

val parse_link_spec :
  string -> ((int * int) * rates * float option, string) result
(** Parse a ["SRC:DST:key=val,key=val"] per-link profile (the
    [lams chaos --link] grammar). Keys: [drop], [dup]/[duplicate],
    [reorder], [corrupt], [delay] (probabilities in [\[0, 1\]]) and
    [bw] (elements per tick, > 0). Returns the endpoints, the parsed
    rates (unset keys zero) and the bandwidth limit if given. *)

(** {1 The per-send verdict} — drawn by {!Network.send}, exposed for
    tests. *)

type copy = {
  delay : int;  (** 0 = deliver now; else ticks of simulated time *)
  corrupt : (int * int) option;
      (** payload index and the bit (0..51) to flip in its mantissa *)
}

type verdict = {
  copies : copy list;  (** [\[\]] = dropped; two entries = duplicated *)
  reorder : bool;  (** insert at a drawn queue position, not the tail *)
}

val plan_send : t -> link:int -> payload_len:int -> verdict
(** Draw the fate of one message on [link] (its [src * p + dst] id).
    Thread-safe; draws on distinct links never perturb each other's
    streams. *)

val crash_now : t -> rank:int -> bool
(** Consume [rank]'s crash plan entry if this is the planned data send:
    [true] means the caller must die (raise {!Spmd.Crash}) {e before}
    enqueuing. Subsequent sends by the respawned rank return [false]. *)

val crashes_pending : t -> int
(** Planned crashes not yet fired. *)
