(** Closed-form communication sets for array assignments
    [DST(dst_section) = SRC(src_section)] between block-cyclic arrays —
    the companion problem to local address generation (§7; Chatterjee et
    al. compute these sets alongside local addresses, Stichnoth et al.
    and Gupta et al. give alternative schemes).

    Element [j] of the assignment reads [SRC(src.lo + j*src.stride)] and
    writes [DST(dst.lo + j*dst.stride)]. On each side, the traversal
    positions owned by one processor form a union of residue classes
    modulo that side's cycle length [p*k / gcd(|s|, p*k)]. Every residue
    of the joint cycle [L = lcm(cycle_src, cycle_dst)] therefore belongs
    to exactly one processor pair, and one ascending sweep of the joint
    cycle emits each pair's progressions directly — no CRT solves, no
    per-pair probing, and not a single element enumerated. *)

type progression = {
  first : int;  (** smallest traversal position in the run *)
  period : int;
  count : int;  (** number of positions; all lie in [\[0, total)] *)
}

type transfer = {
  src_proc : int;
  dst_proc : int;
  runs : progression list;  (** disjoint; sorted by [first] *)
  elements : int;  (** total positions across [runs] *)
}

type t = {
  transfers : transfer list;
      (** only pairs that exchange at least one element, in ascending
          lexicographic [(src_proc, dst_proc)] order — deterministic, so
          downstream consumers (schedule lowering, golden tests, {!pp})
          can rely on it *)
  total : int;  (** section element count *)
}

val build :
  src_layout:Lams_dist.Layout.t ->
  src_section:Lams_dist.Section.t ->
  dst_layout:Lams_dist.Layout.t ->
  dst_section:Lams_dist.Section.t ->
  t
(** The linear-time inspector. Cost is
    [O(cycle_src + cycle_dst + min(L, total))] where
    [cycle = p*k / gcd(|s|, p*k)] per side and
    [L = lcm(cycle_src, cycle_dst)]: one owner-of-residue table per side
    (p Start_finder passes summing to the cycle length) plus a single
    sweep of the populated prefix of the joint cycle — linear in the
    communicated structure, never in the processor-pair product. Empty
    pairs cost nothing. Returns a result structurally identical to
    {!build_crt} (same transfers, same runs, same order).
    @raise Invalid_argument if the sections are empty, have different
    element counts, or contain negative indices. *)

val build_crt :
  src_layout:Lams_dist.Layout.t ->
  src_section:Lams_dist.Section.t ->
  dst_layout:Lams_dist.Layout.t ->
  dst_section:Lams_dist.Section.t ->
  t
(** The legacy all-pairs oracle, kept as the differential baseline for
    {!build}: probes all [p_src * p_dst] processor pairs, recomputing the
    destination side's owner classes once per source processor, with one
    CRT solve per (src class, dst class) pair — i.e.
    [O(p_src * p_dst * (k_src/d_src) * (k_dst/d_dst))] extended-Euclid
    solves plus [p_src * (1 + p_dst)] owner-class rebuilds. Quadratic in
    the machine and in the per-window class counts (the block-sized-k
    cliff `bench/inspector.ml` measures). Raises like {!build}. *)

val positions : progression -> int list
(** Materialise a run (test/debug helper). *)

val find : t -> src_proc:int -> dst_proc:int -> transfer option

val by_src : t -> p_src:int -> transfer list array
(** Transfers grouped by [src_proc] (index = sending processor; each
    group keeps the ascending [dst_proc] order), so an SPMD send phase
    reads its own slot instead of filtering the whole O(p²) list on
    every rank. *)

val cross_processor_elements : t -> int
(** Elements whose source and destination owners differ — the actual
    network traffic an SPMD runtime must move. *)

val pp : Format.formatter -> t -> unit
