(** Closed-form communication sets for array assignments
    [DST(dst_section) = SRC(src_section)] between block-cyclic arrays —
    the companion problem to local address generation (§7; Chatterjee et
    al. compute these sets alongside local addresses, Stichnoth et al.
    and Gupta et al. give alternative schemes).

    Element [j] of the assignment reads [SRC(src.lo + j*src.stride)] and
    writes [DST(dst.lo + j*dst.stride)]. On each side, the traversal
    positions owned by one processor form a union of residue classes
    modulo that side's cycle length [p*k / gcd(|s|, p*k)]; the positions a
    processor pair [(q, r)] exchanges are therefore the CRT intersections
    of a source class with a destination class — a union of arithmetic
    progressions, computed here without enumerating a single element. *)

type progression = {
  first : int;  (** smallest traversal position in the run *)
  period : int;
  count : int;  (** number of positions; all lie in [\[0, total)] *)
}

type transfer = {
  src_proc : int;
  dst_proc : int;
  runs : progression list;  (** disjoint; sorted by [first] *)
  elements : int;  (** total positions across [runs] *)
}

type t = {
  transfers : transfer list;
      (** only pairs that exchange at least one element, in ascending
          lexicographic [(src_proc, dst_proc)] order — deterministic, so
          downstream consumers (schedule lowering, golden tests, {!pp})
          can rely on it *)
  total : int;  (** section element count *)
}

val build :
  src_layout:Lams_dist.Layout.t ->
  src_section:Lams_dist.Section.t ->
  dst_layout:Lams_dist.Layout.t ->
  dst_section:Lams_dist.Section.t ->
  t
(** @raise Invalid_argument if the sections are empty, have different
    element counts, or contain negative indices. Cost is
    [O(k_src/d_src · k_dst/d_dst)] pairs of classes overall — independent
    of the section length. *)

val positions : progression -> int list
(** Materialise a run (test/debug helper). *)

val find : t -> src_proc:int -> dst_proc:int -> transfer option

val cross_processor_elements : t -> int
(** Elements whose source and destination owners differ — the actual
    network traffic an SPMD runtime must move. *)

val pp : Format.formatter -> t -> unit
