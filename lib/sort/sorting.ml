let swap (a : int array) i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

let insertion_range a lo hi =
  for i = lo + 1 to hi do
    let key = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > key do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- key
  done

let insertion a = insertion_range a 0 (Array.length a - 1)

let quicksort_cutoff = 16

let quicksort a =
  (* Three-way partition (Dutch national flag) keeps the sort linear on the
     all-equal segments that arise when many offsets share a location. *)
  let rec sort lo hi =
    if hi - lo >= quicksort_cutoff then begin
      let mid = lo + ((hi - lo) / 2) in
      (* Median-of-three into a.(mid). *)
      if a.(lo) > a.(mid) then swap a lo mid;
      if a.(mid) > a.(hi) then begin
        swap a mid hi;
        if a.(lo) > a.(mid) then swap a lo mid
      end;
      let pivot = a.(mid) in
      let lt = ref lo and gt = ref hi and i = ref lo in
      while !i <= !gt do
        let v = a.(!i) in
        if v < pivot then begin
          swap a !lt !i;
          incr lt;
          incr i
        end
        else if v > pivot then begin
          swap a !i !gt;
          decr gt
        end
        else incr i
      done;
      sort lo (!lt - 1);
      sort (!gt + 1) hi
    end
    else insertion_range a lo hi
  in
  let n = Array.length a in
  if n > 1 then sort 0 (n - 1)

let merge a =
  let n = Array.length a in
  if n > 1 then begin
    let buf = Array.make n 0 in
    let merge_runs src dst lo mid hi =
      let i = ref lo and j = ref mid and t = ref lo in
      while !t < hi do
        if !i < mid && (!j >= hi || src.(!i) <= src.(!j)) then begin
          dst.(!t) <- src.(!i);
          incr i
        end
        else begin
          dst.(!t) <- src.(!j);
          incr j
        end;
        incr t
      done
    in
    let src = ref a and dst = ref buf in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo < n do
        let mid = min n (!lo + !width) in
        let hi = min n (!lo + (2 * !width)) in
        merge_runs !src !dst !lo mid hi;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := !width * 2
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

let radix_lsd ?(bits_per_pass = 8) a =
  if bits_per_pass < 1 || bits_per_pass > 24 then
    invalid_arg "Sorting.radix_lsd: bits_per_pass outside [1, 24]";
  let n = Array.length a in
  if n > 1 then begin
    let maxv = Array.fold_left max 0 a in
    Array.iter
      (fun v -> if v < 0 then invalid_arg "Sorting.radix_lsd: negative key")
      a;
    let buckets = 1 lsl bits_per_pass in
    let mask = buckets - 1 in
    let count = Array.make buckets 0 in
    let buf = Array.make n 0 in
    let src = ref a and dst = ref buf in
    let shift = ref 0 in
    while maxv lsr !shift > 0 do
      Array.fill count 0 buckets 0;
      let s = !src and d = !dst in
      for i = 0 to n - 1 do
        let b = (s.(i) lsr !shift) land mask in
        count.(b) <- count.(b) + 1
      done;
      let total = ref 0 in
      for b = 0 to buckets - 1 do
        let c = count.(b) in
        count.(b) <- !total;
        total := !total + c
      done;
      for i = 0 to n - 1 do
        let b = (s.(i) lsr !shift) land mask in
        d.(count.(b)) <- s.(i);
        count.(b) <- count.(b) + 1
      done;
      let t = !src in
      src := !dst;
      dst := t;
      shift := !shift + bits_per_pass
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

let for_baseline a = if Array.length a >= 64 then radix_lsd a else quicksort a

let is_sorted a =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i - 1) <= a.(i) && go (i + 1)) in
  n <= 1 || go 1
