(** Integer sorting routines, implemented from scratch as the substrate for
    the Chatterjee et al. baseline (§6.1).

    The paper's baseline implementation sorts the initial cycle of memory
    accesses with "the most efficient sorting routines available": a
    comparison sort for small [k] and a linear-time LSD radix sort for
    [k >= 64]. We reproduce that policy in {!for_baseline}. *)

val insertion : int array -> unit
(** In-place insertion sort; [O(n²)] worst case, excellent below ~32
    elements. *)

val quicksort : int array -> unit
(** In-place three-way (fat-pivot) quicksort with median-of-three pivot
    selection and insertion sort below a small cutoff. [O(n log n)]
    expected, robust on already-sorted and constant inputs — both occur in
    the paper's workloads ([s = pk+1] gives a sorted initial cycle,
    [s = pk−1] a reverse-sorted one). *)

val merge : int array -> unit
(** Stable bottom-up merge sort with a scratch buffer; [O(n log n)]
    worst case. *)

val radix_lsd : ?bits_per_pass:int -> int array -> unit
(** LSD radix sort over non-negative ints: [O(n * (w / bits_per_pass))]
    with counting passes of [2^bits_per_pass] buckets (default 8 bits).
    Only the passes needed to cover the maximum value are run, so small
    key ranges sort in few passes.
    @raise Invalid_argument if the array contains a negative value or
    [bits_per_pass] is outside [\[1, 24\]]. *)

val for_baseline : int array -> unit
(** The paper's policy: radix sort when [Array.length >= 64], quicksort
    otherwise. Keys must be non-negative (section element indices are). *)

val is_sorted : int array -> bool
(** Non-decreasing order check (test helper). *)
