type counter = {
  c_name : string;
  c_units : string;
  c_doc : string;
  cell : int Atomic.t;
}

type distribution = {
  d_name : string;
  d_units : string;
  d_doc : string;
  lock : Mutex.t;
  mutable samples : float array;
  mutable len : int;
}

type span = { sp_dist : distribution }

type metric = C of counter | D of distribution | S of span

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let kind_name = function C _ -> "counter" | D _ -> "distribution" | S _ -> "span"

let register name make match_existing =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> begin
          match match_existing existing with
          | Some m -> m
          | None ->
              invalid_arg
                (Printf.sprintf "Obs: %S is already a %s" name
                   (kind_name existing))
        end
      | None ->
          let m = make () in
          Hashtbl.add registry name m;
          m)

let counter ?(units = "") ?(doc = "") name =
  let made =
    register name
      (fun () ->
        C { c_name = name; c_units = units; c_doc = doc; cell = Atomic.make 0 })
      (function C _ as m -> Some m | D _ | S _ -> None)
  in
  match made with C c -> c | D _ | S _ -> assert false

let make_dist name units doc =
  { d_name = name;
    d_units = units;
    d_doc = doc;
    lock = Mutex.create ();
    samples = Array.make 16 0.;
    len = 0 }

let distribution ?(units = "") ?(doc = "") name =
  let made =
    register name
      (fun () -> D (make_dist name units doc))
      (function D _ as m -> Some m | C _ | S _ -> None)
  in
  match made with D d -> d | C _ | S _ -> assert false

let span ?(doc = "") name =
  let made =
    register name
      (fun () -> S { sp_dist = make_dist name "us" doc })
      (function S _ as m -> Some m | C _ | D _ -> None)
  in
  match made with S s -> s | C _ | D _ -> assert false

let incr c = if Atomic.get enabled_flag then Atomic.incr c.cell

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters are monotonic (negative n)";
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

let push d x =
  Mutex.lock d.lock;
  if d.len = Array.length d.samples then begin
    let bigger = Array.make (2 * d.len) 0. in
    Array.blit d.samples 0 bigger 0 d.len;
    d.samples <- bigger
  end;
  d.samples.(d.len) <- x;
  d.len <- d.len + 1;
  Mutex.unlock d.lock

let observe d x = if Atomic.get enabled_flag then push d x

let time sp f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let x, ns = Lams_util.Timer.time_ns f in
    push sp.sp_dist (Int64.to_float ns /. 1e3);
    x
  end

let counter_value c = Atomic.get c.cell

let distribution_count d =
  Mutex.lock d.lock;
  let n = d.len in
  Mutex.unlock d.lock;
  n

type dist_summary = {
  count : int;
  min : float;
  mean : float;
  p95 : float;
  max : float;
}

type value = Counter of int | Distribution of dist_summary | Span of dist_summary

type entry = { name : string; units : string; doc : string; value : value }

type snapshot = entry list

let summarize_dist d =
  Mutex.lock d.lock;
  let data = Array.sub d.samples 0 d.len in
  Mutex.unlock d.lock;
  if Array.length data = 0 then { count = 0; min = 0.; mean = 0.; p95 = 0.; max = 0. }
  else begin
    let sorted = Array.copy data in
    Array.sort compare sorted;
    { count = Array.length data;
      min = sorted.(0);
      mean = Lams_util.Stats.mean data;
      p95 = Lams_util.Stats.percentile data 0.95;
      max = sorted.(Array.length sorted - 1) }
  end

let snapshot () =
  let metrics = with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  metrics
  |> List.map (fun m ->
         match m with
         | C c ->
             { name = c.c_name;
               units = c.c_units;
               doc = c.c_doc;
               value = Counter (Atomic.get c.cell) }
         | D d ->
             { name = d.d_name;
               units = d.d_units;
               doc = d.d_doc;
               value = Distribution (summarize_dist d) }
         | S s ->
             { name = s.sp_dist.d_name;
               units = s.sp_dist.d_units;
               doc = s.sp_dist.d_doc;
               value = Span (summarize_dist s.sp_dist) })
  |> List.sort (fun a b -> compare a.name b.name)

let reset_dist d =
  Mutex.lock d.lock;
  d.len <- 0;
  Mutex.unlock d.lock

let reset () =
  let metrics = with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  List.iter
    (function
      | C c -> Atomic.set c.cell 0
      | D d -> reset_dist d
      | S s -> reset_dist s.sp_dist)
    metrics

let find snap name = List.find_opt (fun e -> e.name = name) snap

let find_counter snap name =
  match find snap name with
  | Some { value = Counter n; _ } -> Some n
  | Some _ | None -> None

let fmt_float x =
  (* Integral values print without a fractional tail so counter-like
     distributions stay readable. *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.3f" x

let render snap =
  let open Lams_util in
  let t =
    Ascii_table.create
      ~align:[ Ascii_table.Left; Left; Right; Right; Right; Right; Right; Left ]
      [ "metric"; "kind"; "value"; "min"; "mean"; "p95"; "max"; "units" ]
  in
  List.iter
    (fun e ->
      let kind, cells =
        match e.value with
        | Counter n -> ("counter", [ string_of_int n; ""; ""; ""; "" ])
        | Distribution s | Span s ->
            ( (match e.value with Span _ -> "span" | _ -> "dist"),
              [ Printf.sprintf "n=%d" s.count;
                fmt_float s.min;
                fmt_float s.mean;
                fmt_float s.p95;
                fmt_float s.max ] )
      in
      Ascii_table.add_row t ((e.name :: kind :: cells) @ [ e.units ]))
    snap;
  Ascii_table.render t

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.9g" x

let to_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"metrics\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ", ";
      let common kind =
        Printf.sprintf "\"name\": \"%s\", \"kind\": \"%s\", \"units\": \"%s\""
          (json_escape e.name) kind (json_escape e.units)
      in
      (match e.value with
      | Counter n ->
          Buffer.add_string b
            (Printf.sprintf "{%s, \"value\": %d}" (common "counter") n)
      | Distribution s | Span s ->
          let kind = match e.value with Span _ -> "span" | _ -> "distribution" in
          Buffer.add_string b
            (Printf.sprintf
               "{%s, \"count\": %d, \"min\": %s, \"mean\": %s, \"p95\": %s, \
                \"max\": %s}"
               (common kind) s.count (json_float s.min) (json_float s.mean)
               (json_float s.p95) (json_float s.max))))
    snap;
  Buffer.add_string b "]}\n";
  Buffer.contents b
