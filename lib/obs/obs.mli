(** Lightweight observability for the access-sequence pipeline.

    A process-global registry of named metrics:

    - {e counters} — monotonic integer tallies ({!counter}, {!incr},
      {!add});
    - {e distributions} — float samples summarised as
      count/min/mean/p95/max ({!distribution}, {!observe});
    - {e spans} — wall-clock timers recording elapsed microseconds into a
      distribution ({!span}, {!time}).

    The registry is {e disabled by default} and instrumentation is
    cheap-by-default: while disabled, {!incr}, {!add}, {!observe} and
    {!time} reduce to one flag load and a branch — no allocation, no
    locking — so instrumented hot paths (the lattice walk, the network)
    run at full speed. Enable with [set_enabled true] (the CLI's
    [--metrics] flag does this), then {!snapshot} / {!render} /
    {!to_json} the accumulated values.

    Counters use [Atomic.t] and distributions take a per-metric mutex, so
    recording is safe from parallel SPMD domains ({!Lams_sim}); exact
    cross-domain tallies are only guaranteed at quiescence (after the
    joining barrier), which is when snapshots are taken. *)

type counter
type distribution
type span

(** {1 Global switch} *)

val set_enabled : bool -> unit
(** Turn recording on or off. Off (the default) freezes every value. *)

val enabled : unit -> bool

(** {1 Registration}

    Registration is idempotent: registering a name twice returns the same
    metric (the first registration's [units]/[doc] win). Names are
    conventionally dot-separated, [<subsystem>.<quantity>], e.g.
    [kns.points_visited].

    @raise Invalid_argument if the name is already registered as a
    different kind of metric. *)

val counter : ?units:string -> ?doc:string -> string -> counter
val distribution : ?units:string -> ?doc:string -> string -> distribution

val span : ?doc:string -> string -> span
(** A span's distribution records elapsed microseconds. *)

(** {1 Recording} *)

val incr : counter -> unit
(** Add one (when enabled). *)

val add : counter -> int -> unit
(** Add [n >= 0] (when enabled). Counters are monotonic:
    @raise Invalid_argument on negative [n], enabled or not. *)

val observe : distribution -> float -> unit
(** Record one sample (when enabled). *)

val time : span -> (unit -> 'a) -> 'a
(** [time sp f] runs [f ()]; when enabled, records the elapsed
    microseconds. When disabled this is a tail call to [f]. *)

(** {1 Direct reads (tests, assertions)} *)

val counter_value : counter -> int
val distribution_count : distribution -> int

(** {1 Snapshots}

    A snapshot is an immutable copy of every registered metric, sorted by
    name; later recording never changes an existing snapshot. *)

type dist_summary = {
  count : int;
  min : float;  (** 0. when [count = 0] *)
  mean : float;  (** 0. when [count = 0] *)
  p95 : float;  (** 95th percentile, linear interpolation *)
  max : float;
}

type value =
  | Counter of int
  | Distribution of dist_summary
  | Span of dist_summary  (** summary of elapsed microseconds *)

type entry = { name : string; units : string; doc : string; value : value }

type snapshot = entry list

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every counter and empty every distribution/span. Registrations
    and the enabled flag are kept. *)

val find : snapshot -> string -> entry option

val find_counter : snapshot -> string -> int option
(** [find_counter s name] is the counter's value, [None] if absent or not
    a counter. *)

val render : snapshot -> string
(** Column-aligned ASCII table ({!Lams_util.Ascii_table}), one metric per
    row. *)

val to_json : snapshot -> string
(** The snapshot as one JSON object:
    [{"metrics": [{"name": ..., "kind": "counter", "units": ...,
    "value": ...} | {"name": ..., "kind": "distribution" | "span",
    "units": ..., "count": ..., "min": ..., "mean": ..., "p95": ...,
    "max": ...}]}], metrics sorted by name — stable for diffing across
    runs. *)
