(** Column-aligned plain-text tables, used to print the reproduction of the
    paper's Table 1 and Table 2 in the benchmark harness. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?align:align list -> string list -> t
(** [create headers] starts a table. [align] gives per-column alignment
    (defaults to [Right] for every column); a short list is padded with its
    last element, an empty list means all [Right]. *)

val add_row : t -> string list -> unit
(** Append a data row. Rows shorter than the header are padded with empty
    cells; longer rows extend the table width. *)

val add_separator : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** Render with box-drawing in plain ASCII ([+--+] style). *)

val pp : Format.formatter -> t -> unit
(** [pp ppf t] prints [render t]. *)
