(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (SplitMix64) used by the test and
    benchmark harnesses so that every workload is reproducible from a seed.
    We avoid [Stdlib.Random] to guarantee identical streams across OCaml
    releases. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Distinct seeds give independent
    streams for all practical purposes. *)

val copy : t -> t
(** [copy g] duplicates the state; the copy evolves independently. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val split : t -> t
(** [split g] derives a statistically independent child generator and
    advances [g]. Useful to give each simulated processor its own stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on [||]. *)
