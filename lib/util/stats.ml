type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p25 : float;
  p75 : float;
}

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs q =
  check_nonempty "Stats.percentile" xs;
  if q < 0. || q > 1. then invalid_arg "Stats.percentile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 0.5

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let quant q =
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    let frac = pos -. floor pos in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  in
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = quant 0.5;
    p25 = quant 0.25;
    p75 = quant 0.75;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.p25 s.median s.p75 s.max
