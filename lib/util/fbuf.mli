(** Flat float64 buffers backed by [Bigarray.Array1].

    The whole data plane — local stores, packed payload buffers, network
    messages — moves through these. A [t] is unboxed C-layout memory, so
    contiguous copies compile down to [memmove] (see the C stubs) instead
    of the boxed element loops a [float array] forces on the negative-
    stride path. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** [create n] is a zero-filled buffer of [n] floats. *)

val uninit : int -> t
(** [uninit n] is a buffer of [n] floats with unspecified contents. Only
    for buffers that are fully overwritten before being read (packed
    payload buffers: the pack blocks partition [0, n)). *)

val empty : t
(** The shared zero-length buffer (ack payloads and the like). *)

val length : t -> int

val get : t -> int -> float
val set : t -> int -> float -> unit

val unsafe_get : t -> int -> float
val unsafe_set : t -> int -> float -> unit

val fill : t -> float -> unit

val fill_range : t -> pos:int -> len:int -> float -> unit
(** Bulk fill of [pos, pos + len): a [Bigarray.Array1.fill] on a sub
    view. Bounds-checked; raises [Invalid_argument "Fbuf.fill_range"]
    out of range. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Forward copy, [memmove] semantics: overlapping ranges are safe.
    Bounds-checked; raises [Invalid_argument "Fbuf.blit"] out of range. *)

val rev_blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Reversed copy: [dst.(dst_pos + i) <- src.(src_pos + len - 1 - i)] for
    [0 <= i < len]. This single orientation serves both step = -1 pack
    directions: packing reads a descending run into an ascending buffer
    span, unpacking writes an ascending buffer span back into a
    descending run. Bounds-checked; raises
    [Invalid_argument "Fbuf.rev_blit"] out of range. The two ranges must
    not overlap. *)

val sub : t -> pos:int -> len:int -> t
(** [sub t ~pos ~len] is a zero-copy view of [pos, pos + len): writes
    through the view land in [t]. Views share storage with their parent,
    so a view obtained from a pooled buffer must never itself be released
    to the pool — release the parent. Bounds-checked; raises
    [Invalid_argument "Fbuf.sub"] out of range. *)

val sub_blit_to_floats : src:t -> src_pos:int -> dst:float array ->
  dst_pos:int -> len:int -> unit
(** Copy out of a buffer into a plain [float array] (boxing bridge for
    legacy oracles and message traces). *)

val of_array : float array -> t
val to_array : t -> float array
val copy : t -> t
val init : int -> (int -> float) -> t
val equal : t -> t -> bool
(** Structural equality on length and bits (NaN = NaN holds, since the
    comparison is on [Int64] bit patterns). *)
