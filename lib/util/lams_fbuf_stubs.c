/* Blit primitives for Fbuf (float64 c_layout Bigarray.Array1).
 *
 * Bounds are validated on the OCaml side; these assume valid ranges.
 * Both are registered [@@noalloc] — they never allocate or raise.
 */

#include <string.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

/* Forward copy with memmove semantics (overlap-safe). */
value lams_fbuf_blit(value vsrc, value vsrc_pos, value vdst, value vdst_pos,
                     value vlen)
{
  const double *src = (const double *)Caml_ba_data_val(vsrc);
  double *dst = (double *)Caml_ba_data_val(vdst);
  size_t len = (size_t)Long_val(vlen);
  memmove(dst + Long_val(vdst_pos), src + Long_val(vsrc_pos),
          len * sizeof(double));
  return Val_unit;
}

/* Reversed copy: dst[dst_pos + i] = src[src_pos + len - 1 - i].
 * Ranges must not overlap. */
value lams_fbuf_rev_blit(value vsrc, value vsrc_pos, value vdst,
                         value vdst_pos, value vlen)
{
  const double *src = (const double *)Caml_ba_data_val(vsrc) + Long_val(vsrc_pos);
  double *dst = (double *)Caml_ba_data_val(vdst) + Long_val(vdst_pos);
  long len = Long_val(vlen);
  for (long i = 0; i < len; i++)
    dst[i] = src[len - 1 - i];
  return Val_unit;
}
