type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  headers : string list;
  align : align list;
  mutable rows : row list;  (* reversed *)
  mutable ncols : int;
}

let create ?(align = []) headers =
  { headers; align; rows = []; ncols = List.length headers }

let add_row t cells =
  t.ncols <- max t.ncols (List.length cells);
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let column_alignment t col =
  let rec nth_or_last i = function
    | [] -> Right
    | [ a ] -> a
    | a :: rest -> if i = 0 then a else nth_or_last (i - 1) rest
  in
  nth_or_last col t.align

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let left = fill / 2 in
        String.make left ' ' ^ s ^ String.make (fill - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.make t.ncols 0 in
  let note cells =
    List.iteri
      (fun i c -> if i < t.ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  note t.headers;
  List.iter (function Cells c -> note c | Separator -> ()) rows;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line align_of cells =
    let cells = Array.of_list cells in
    Buffer.add_char buf '|';
    Array.iteri
      (fun i w ->
        let c = if i < Array.length cells then cells.(i) else "" in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (align_of i) w c);
        Buffer.add_string buf " |")
      widths;
    Buffer.add_char buf '\n'
  in
  rule ();
  line (fun _ -> Center) t.headers;
  rule ();
  List.iter
    (function
      | Cells c -> line (column_alignment t) c
      | Separator -> rule ())
    rows;
  rule ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
