(** Minimal ASCII line plots, used to render the reproduction of the paper's
    Figure 7 (construction time vs. block size for both algorithms) directly
    in the terminal. *)

type series = {
  label : string;
  marker : char;  (** glyph plotted at each data point *)
  points : (float * float) list;  (** (x, y), need not be sorted *)
}

val plot :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** [plot ~title series] renders the series on one shared canvas with axis
    tick labels and a legend. Default canvas is 72x20 characters. Log scales
    require strictly positive data on that axis.
    @raise Invalid_argument if no series contains a point, or if a log
    scale is requested over non-positive values. *)
