module Make (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type 'v slot = { value : 'v; mutable last_used : int }

  (* Accounting lives inside the shard, as plain fields guarded by the
     shard mutex: a shared Atomic.t would put one contended cache line
     back on every hit and undo exactly what sharding buys (measured:
     8 hammering domains ran *slower* than the single global mutex with
     shared counters). Reads sum across shards — exact at quiescence,
     which is when the accounting tests look. *)
  type 'v shard = {
    mutex : Mutex.t;
    table : 'v slot H.t;
    mutable tick : int;
    mutable s_hits : int;
    mutable s_misses : int;
    mutable s_evictions : int;
    mutable s_insertions : int;
    mutable s_removals : int;
  }

  type 'v t = {
    shard_arr : 'v shard array;
    shard_cap : int;  (* per-shard capacity; 0 disables caching *)
    total_cap : int;
  }

  let create ?(shards = 16) ~capacity () =
    let shards = max 1 shards in
    let capacity = max 0 capacity in
    let shard_cap =
      if capacity = 0 then 0 else (capacity + shards - 1) / shards
    in
    {
      shard_arr =
        Array.init shards (fun _ ->
            {
              mutex = Mutex.create ();
              table = H.create 64;
              tick = 0;
              s_hits = 0;
              s_misses = 0;
              s_evictions = 0;
              s_insertions = 0;
              s_removals = 0;
            });
      shard_cap;
      total_cap = capacity;
    }

  let shard_of t key =
    (* Spread the hash before reducing: Hashtbl.hash values cluster in
       the low bits for small-int keys, and the shard index must not
       reuse exactly the bits the per-shard table will bucket on. *)
    let h = K.hash key land max_int in
    let h = h lxor (h lsr 17) in
    t.shard_arr.(h mod Array.length t.shard_arr)

  (* Callers hold [sh.mutex]. Same linear scan as the global caches:
     capacities are small enough that a doubly-linked list would be
     noise, and the scan runs at most once per insert. *)
  let evict_down_to sh target =
    while H.length sh.table > target do
      let victim = ref None in
      H.iter
        (fun key slot ->
          match !victim with
          | Some (_, age) when age <= slot.last_used -> ()
          | _ -> victim := Some (key, slot.last_used))
        sh.table;
      match !victim with
      | None -> ()
      | Some (key, _) ->
          H.remove sh.table key;
          sh.s_evictions <- sh.s_evictions + 1
    done

  let find_or_build t key ~build =
    let sh = shard_of t key in
    Mutex.lock sh.mutex;
    match H.find_opt sh.table key with
    | Some slot ->
        sh.tick <- sh.tick + 1;
        slot.last_used <- sh.tick;
        sh.s_hits <- sh.s_hits + 1;
        Mutex.unlock sh.mutex;
        (slot.value, true)
    | None ->
        sh.s_misses <- sh.s_misses + 1;
        Mutex.unlock sh.mutex;
        let value = build key in
        if t.shard_cap > 0 then begin
          Mutex.lock sh.mutex;
          if not (H.mem sh.table key) then begin
            evict_down_to sh (t.shard_cap - 1);
            sh.tick <- sh.tick + 1;
            H.add sh.table key { value; last_used = sh.tick };
            sh.s_insertions <- sh.s_insertions + 1
          end;
          Mutex.unlock sh.mutex
        end;
        (value, false)

  let find_opt t key =
    let sh = shard_of t key in
    Mutex.lock sh.mutex;
    let found =
      match H.find_opt sh.table key with
      | Some slot ->
          sh.tick <- sh.tick + 1;
          slot.last_used <- sh.tick;
          sh.s_hits <- sh.s_hits + 1;
          Some slot.value
      | None ->
          sh.s_misses <- sh.s_misses + 1;
          None
    in
    Mutex.unlock sh.mutex;
    found

  let remove t key =
    let sh = shard_of t key in
    Mutex.lock sh.mutex;
    if H.mem sh.table key then begin
      H.remove sh.table key;
      sh.s_removals <- sh.s_removals + 1
    end;
    Mutex.unlock sh.mutex

  let iter_keys t f =
    Array.iter
      (fun sh ->
        Mutex.lock sh.mutex;
        let entries =
          H.fold (fun key slot acc -> (key, slot.last_used) :: acc) sh.table []
        in
        Mutex.unlock sh.mutex;
        (* Outside the lock: [f] may be arbitrarily slow (it writes log
           lines), and the contract forbids it touching the cache. *)
        List.stable_sort (fun (_, a) (_, b) -> compare b a) entries
        |> List.iter (fun (key, _) -> f key))
      t.shard_arr

  let sum_shards t f =
    Array.fold_left
      (fun acc sh ->
        Mutex.lock sh.mutex;
        let n = f sh in
        Mutex.unlock sh.mutex;
        acc + n)
      0 t.shard_arr

  let size t = sum_shards t (fun sh -> H.length sh.table)
  let capacity t = t.total_cap
  let shards t = Array.length t.shard_arr

  let clear t =
    Array.iter
      (fun sh ->
        Mutex.lock sh.mutex;
        H.reset sh.table;
        sh.tick <- 0;
        sh.s_hits <- 0;
        sh.s_misses <- 0;
        sh.s_evictions <- 0;
        sh.s_insertions <- 0;
        sh.s_removals <- 0;
        Mutex.unlock sh.mutex)
      t.shard_arr

  let hits t = sum_shards t (fun sh -> sh.s_hits)
  let misses t = sum_shards t (fun sh -> sh.s_misses)
  let evictions t = sum_shards t (fun sh -> sh.s_evictions)
  let insertions t = sum_shards t (fun sh -> sh.s_insertions)
  let removals t = sum_shards t (fun sh -> sh.s_removals)
end
