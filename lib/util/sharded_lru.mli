(** A sharded, mutex-per-shard LRU cache.

    The process-wide caches ({!Lams_core.Plan_cache}, the schedule
    cache) serialize every lookup on one global mutex — fine for a
    handful of SPMD domains, but the serving daemon answers queries from
    many worker domains at once, and a single lock becomes the
    bottleneck long before the hash lookup does. This functor shards the
    key space by hash: each shard has its own mutex, hash table and LRU
    clock, so lookups of different keys proceed in parallel and only
    same-shard lookups ever contend.

    Semantics per shard mirror the global caches: lookups bump a
    monotonic tick, inserts evict the least-recently-used entry of
    {e that shard} once the shard is at capacity, and builds happen
    outside the lock (a racing double-build of one key is harmless —
    both values are equal by construction and the first insert wins).

    Accounting is exact and per-shard — plain fields guarded by the
    shard mutex, summed on read, never a shared atomic (one contended
    counter cache line on the hit path measurably undoes the sharding).
    [hits + misses = lookups] and [insertions - evictions - removals =
    size] at quiescence — the hammer tests pin both. *)

module Make (K : Hashtbl.HashedType) : sig
  type 'v t

  val create : ?shards:int -> capacity:int -> unit -> 'v t
  (** [create ~shards ~capacity ()] makes an empty cache of at most
      [capacity] entries spread over [shards] independent shards
      (default 16, clamped to [>= 1]; each shard holds at most
      [ceil (capacity / shards)], so the whole cache never exceeds
      [shards * ceil (capacity / shards)] entries transiently and
      [capacity <= 0] disables caching entirely). *)

  val find_or_build : 'v t -> K.t -> build:(K.t -> 'v) -> 'v * bool
  (** [find_or_build t key ~build] returns the cached value and [true]
      on a hit, or runs [build key] {e outside the shard lock}, inserts
      the result (unless a racer inserted first, or capacity is 0) and
      returns it with [false]. Exceptions from [build] propagate and
      leave the cache unchanged (the miss is still counted). *)

  val find_opt : 'v t -> K.t -> 'v option
  (** Hit-or-nothing lookup; bumps the LRU on a hit. Counts as a lookup
      (hit or miss) like {!find_or_build}. *)

  val remove : 'v t -> K.t -> unit
  (** Drop one key if present (counted under [removals], not
      [evictions]). *)

  val iter_keys : 'v t -> (K.t -> unit) -> unit
  (** Visit every live key, shard by shard, most-recently-used first
      within a shard (the plan log's rotation compacts with this). [f]
      must not touch the cache. *)

  val size : 'v t -> int
  val capacity : 'v t -> int
  val shards : 'v t -> int
  val clear : 'v t -> unit

  (** {2 Accounting} *)

  val hits : 'v t -> int
  val misses : 'v t -> int
  val evictions : 'v t -> int
  val insertions : 'v t -> int
  val removals : 'v t -> int
end
