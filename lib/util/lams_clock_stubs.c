#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

/* Monotonic nanosecond clock for the benchmark harness. */
CAMLprim value lams_clock_gettime_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
