type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The stubs assume the caller validated ranges; [@noalloc] keeps them
   callable without the GC entry dance. *)
external unsafe_blit_stub : t -> int -> t -> int -> int -> unit
  = "lams_fbuf_blit" [@@noalloc]

external unsafe_rev_blit_stub : t -> int -> t -> int -> int -> unit
  = "lams_fbuf_rev_blit" [@@noalloc]

let create n = Bigarray.Array1.init Bigarray.float64 Bigarray.c_layout n (fun _ -> 0.)

let uninit n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let empty = uninit 0

let length = Bigarray.Array1.dim

let get (t : t) i = Bigarray.Array1.get t i
let set (t : t) i v = Bigarray.Array1.set t i v

let unsafe_get (t : t) i = Bigarray.Array1.unsafe_get t i
let unsafe_set (t : t) i v = Bigarray.Array1.unsafe_set t i v

let fill (t : t) v = Bigarray.Array1.fill t v

let fill_range t ~pos ~len v =
  if len < 0 || pos < 0 || pos > length t - len then
    invalid_arg "Fbuf.fill_range";
  Bigarray.Array1.fill (Bigarray.Array1.sub t pos len) v

let check_range name buf pos len =
  if len < 0 || pos < 0 || pos > length buf - len then invalid_arg name

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  check_range "Fbuf.blit" src src_pos len;
  check_range "Fbuf.blit" dst dst_pos len;
  if len > 0 then unsafe_blit_stub src src_pos dst dst_pos len

let rev_blit ~src ~src_pos ~dst ~dst_pos ~len =
  check_range "Fbuf.rev_blit" src src_pos len;
  check_range "Fbuf.rev_blit" dst dst_pos len;
  if len > 0 then unsafe_rev_blit_stub src src_pos dst dst_pos len

let sub t ~pos ~len =
  check_range "Fbuf.sub" t pos len;
  Bigarray.Array1.sub t pos len

let sub_blit_to_floats ~src ~src_pos ~dst ~dst_pos ~len =
  check_range "Fbuf.sub_blit_to_floats" src src_pos len;
  if len < 0 || dst_pos < 0 || dst_pos > Array.length dst - len then
    invalid_arg "Fbuf.sub_blit_to_floats";
  for i = 0 to len - 1 do
    Array.unsafe_set dst (dst_pos + i) (unsafe_get src (src_pos + i))
  done

let of_array a =
  let n = Array.length a in
  let t = uninit n in
  for i = 0 to n - 1 do
    unsafe_set t i (Array.unsafe_get a i)
  done;
  t

let to_array t =
  let n = length t in
  if n = 0 then [||]
  else begin
    let a = Array.make n (unsafe_get t 0) in
    for i = 1 to n - 1 do
      Array.unsafe_set a i (unsafe_get t i)
    done;
    a
  end

let copy t =
  let n = length t in
  let r = uninit n in
  if n > 0 then unsafe_blit_stub t 0 r 0 n;
  r

let init n f =
  let t = uninit n in
  for i = 0 to n - 1 do
    unsafe_set t i (f i)
  done;
  t

let equal a b =
  length a = length b
  && begin
       let n = length a in
       let rec go i =
         i >= n
         || (Int64.bits_of_float (unsafe_get a i)
             = Int64.bits_of_float (unsafe_get b i)
            && go (i + 1))
       in
       go 0
     end
