type series = { label : string; marker : char; points : (float * float) list }

let plot ?(width = 72) ?(height = 20) ?(log_x = false) ?(log_y = false)
    ?(x_label = "") ?(y_label = "") ~title series =
  let all = List.concat_map (fun s -> s.points) series in
  if all = [] then invalid_arg "Ascii_plot.plot: no data points";
  let tx v =
    if log_x then begin
      if v <= 0. then invalid_arg "Ascii_plot.plot: log_x over non-positive x";
      log v
    end
    else v
  and ty v =
    if log_y then begin
      if v <= 0. then invalid_arg "Ascii_plot.plot: log_y over non-positive y";
      log v
    end
    else v
  in
  let xs = List.map (fun (x, _) -> tx x) all
  and ys = List.map (fun (_, y) -> ty y) all in
  let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
  let xmin = fmin xs and xmax = fmax xs in
  let ymin = fmin ys and ymax = fmax ys in
  let xspan = if xmax > xmin then xmax -. xmin else 1. in
  let yspan = if ymax > ymin then ymax -. ymin else 1. in
  let grid = Array.make_matrix height width ' ' in
  let place s =
    List.iter
      (fun (x, y) ->
        let cx =
          int_of_float ((tx x -. xmin) /. xspan *. float_of_int (width - 1))
        and cy =
          int_of_float ((ty y -. ymin) /. yspan *. float_of_int (height - 1))
        in
        let cy = height - 1 - cy in
        grid.(cy).(cx) <- s.marker)
      s.points
  in
  List.iter place series;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  if y_label <> "" then begin
    Buffer.add_string buf y_label;
    Buffer.add_char buf '\n'
  end;
  let untx v = if log_x then exp v else v
  and unty v = if log_y then exp v else v in
  let ylab row =
    (* Tick label on first, middle and last rows. *)
    let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
    let v = unty (ymin +. (frac *. yspan)) in
    if row = 0 || row = height - 1 || row = height / 2 then
      Printf.sprintf "%10.1f |" v
    else String.make 10 ' ' ^ " |"
  in
  Array.iteri
    (fun row line ->
      Buffer.add_string buf (ylab row);
      Buffer.add_string buf (String.init width (fun i -> line.(i)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  let xticks =
    [ (0., xmin); (0.5, xmin +. (0.5 *. xspan)); (1.0, xmax) ]
    |> List.map (fun (frac, v) ->
           (int_of_float (frac *. float_of_int (width - 1)), untx v))
  in
  let axis = Bytes.make (width + 12) ' ' in
  List.iter
    (fun (col, v) ->
      let s = Printf.sprintf "%g" v in
      let at = min (12 + col) (Bytes.length axis - String.length s) in
      Bytes.blit_string s 0 axis at (String.length s))
    xticks;
  Buffer.add_string buf (Bytes.to_string axis);
  Buffer.add_char buf '\n';
  if x_label <> "" then begin
    Buffer.add_string buf (String.make 12 ' ');
    Buffer.add_string buf x_label;
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun s ->
      Buffer.add_string buf (Printf.sprintf "  %c = %s\n" s.marker s.label))
    series;
  Buffer.contents buf
