external clock_gettime_ns : unit -> int64 = "lams_clock_gettime_ns"
(* CLOCK_MONOTONIC via a one-line C stub; avoids a Unix dependency. *)

let now_ns = clock_gettime_ns

let time_ns f =
  let t0 = now_ns () in
  let x = f () in
  let t1 = now_ns () in
  (x, Int64.sub t1 t0)

let time_us f =
  let x, ns = time_ns f in
  (x, Int64.to_float ns /. 1e3)

let best_of ~repeats f =
  if repeats <= 0 then invalid_arg "Timer.best_of: repeats must be positive";
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, us = time_us f in
    if us < !best then best := us
  done;
  !best

let median_of ~repeats f =
  if repeats <= 0 then invalid_arg "Timer.median_of: repeats must be positive";
  let samples = Array.init repeats (fun _ -> snd (time_us f)) in
  Stats.median samples
