type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy g = { state = g.state }

(* SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA'14). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let split g =
  let seed = next_int64 g in
  { state = mix seed }

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
