(** Summary statistics over float samples, used to report benchmark
    measurements (median of repeated runs, spread, etc.). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p25 : float;
  p75 : float;
}

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val stddev : float array -> float
(** Sample standard deviation; [0.] for singleton input.
    @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs q] for [q] in [\[0,1\]], linear interpolation between
    order statistics. Does not mutate its argument.
    @raise Invalid_argument on empty input or [q] outside [\[0,1\]]. *)

val median : float array -> float
(** [median xs = percentile xs 0.5]. *)

val summarize : float array -> summary
(** All of the above in one pass (plus sorting for the quantiles). *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable one-line rendering. *)
