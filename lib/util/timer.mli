(** Monotonic wall-clock timing for the benchmark harness.

    The paper reports microseconds from [dclock] on the iPSC/860; we report
    microseconds from the host monotonic clock. *)

val now_ns : unit -> int64
(** Current monotonic time in nanoseconds. *)

val time_ns : (unit -> 'a) -> 'a * int64
(** [time_ns f] runs [f ()] and returns its result with the elapsed
    nanoseconds. *)

val time_us : (unit -> 'a) -> 'a * float
(** Same, in (fractional) microseconds. *)

val best_of : repeats:int -> (unit -> 'a) -> float
(** [best_of ~repeats f] runs [f] [repeats] times and returns the minimum
    elapsed microseconds — the conventional noise-resistant estimate for a
    deterministic computation. @raise Invalid_argument if [repeats <= 0]. *)

val median_of : repeats:int -> (unit -> 'a) -> float
(** Median elapsed microseconds over [repeats] runs. *)
