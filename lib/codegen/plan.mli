(** A per-processor traversal plan: everything the node code needs to visit
    its share of [A(l:u:s)] in increasing index order — the output of the
    table-construction phase (§6.1), consumed by the node-code shapes of
    Figure 8 (§6.2).

    {[
      let pr = Problem.make ~p:4 ~k:8 ~l:4 ~s:9 in
      match Plan.build pr ~m:1 ~u:319 with
      | None -> ()                        (* processor owns nothing *)
      | Some plan ->
          let mem = Array.make (Plan.local_extent_needed plan) 0. in
          Shapes.assign Shapes.Shape_d plan mem 100.
          (* mem now holds processor 1's share of A(4:319:9) = 100.0 *)
    ]} *)

type t = {
  problem : Lams_core.Problem.t;
  m : int;  (** this processor *)
  u : int;  (** section upper bound *)
  start_local : int;  (** [startmem] as a local array index *)
  last_local : int;  (** [lastmem]; [< start_local] iff nothing to do *)
  length : int;  (** gap-table period *)
  delta_m : int array;  (** [AM] in access order (shapes a–c) *)
  start_offset : int;  (** start state for shape (d) *)
  delta_by_offset : int array;  (** shape (d): gap indexed by local offset *)
  next_offset : int array;  (** shape (d): successor local offset *)
}

val build : Lams_core.Problem.t -> m:int -> u:int -> t option
(** [None] iff the processor owns no element of [A(l:u:s)].

    Served through the process-wide {!Lams_core.Plan_cache}: the first
    request for a section builds the whole machine's tables at once
    (via the generalized shared FSM when [d < k]); later requests — any
    [m], and any [l]/[u] congruent modulo the cycle span — are array
    lookups. The [delta_m]/[delta_by_offset]/[next_offset] arrays are
    shared with the cache and with other plans: treat them as read-only.
    [delta_by_offset] may carry valid entries for offsets outside this
    processor's residue class (never visited from [start_offset]);
    equal to {!build_uncached} on every visited state (tested).
    @raise Invalid_argument if [m] is out of range. *)

val build_uncached : Lams_core.Problem.t -> m:int -> u:int -> t option
(** The seed path: per-processor [Kns.gap_table] + [Fsm.build], no
    sharing, no cache. Kept as the differential-testing oracle and for
    callers that must not retain cache references.
    @raise Invalid_argument if [m] is out of range. *)

val access_count : t -> int
(** Number of elements this plan visits (= [Start_finder.count_owned]). *)

val local_extent_needed : t -> int
(** Minimum local array size that makes the traversal safe:
    [last_local + 1]. *)

val pp : Format.formatter -> t -> unit
