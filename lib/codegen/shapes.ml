type t = Shape_a | Shape_b | Shape_c | Shape_d

let all = [ Shape_a; Shape_b; Shape_c; Shape_d ]

let name = function
  | Shape_a -> "8(a)"
  | Shape_b -> "8(b)"
  | Shape_c -> "8(c)"
  | Shape_d -> "8(d)"

let of_string str =
  match String.lowercase_ascii (String.trim str) with
  | "a" | "8a" | "8(a)" | "mod" -> Some Shape_a
  | "b" | "8b" | "8(b)" | "test" -> Some Shape_b
  | "c" | "8c" | "8(c)" | "goto" -> Some Shape_c
  | "d" | "8d" | "8(d)" | "lookup" -> Some Shape_d
  | _ -> None

let check_mem (p : Plan.t) (mem : Lams_util.Fbuf.t) =
  if Lams_util.Fbuf.length mem < Plan.local_extent_needed p then
    invalid_arg "Shapes: local memory shorter than the plan's extent"

(* The assign_* kernels use unsafe array accesses to match the bounds-
   check-free C the paper measures: [check_mem] plus the plan invariants
   (gaps positive, last_local within extent, offsets within [0, k)) keep
   every access in range, which the test suite verifies through the safe
   [visit] path. *)

(* --- Figure 8(a): base += deltaM[i]; i = (i+1) mod length --- *)
let assign_a (p : Plan.t) (mem : Lams_util.Fbuf.t) v =
  let delta = p.Plan.delta_m and length = p.Plan.length in
  let last = p.Plan.last_local in
  let base = ref p.Plan.start_local and i = ref 0 in
  while !base <= last do
    Lams_util.Fbuf.unsafe_set mem !base v;
    base := !base + Array.unsafe_get delta !i;
    i := (!i + 1) mod length
  done

(* --- Figure 8(b): i++; if (i == length) i = 0 --- *)
let assign_b (p : Plan.t) (mem : Lams_util.Fbuf.t) v =
  let delta = p.Plan.delta_m and length = p.Plan.length in
  let last = p.Plan.last_local in
  let base = ref p.Plan.start_local and i = ref 0 in
  while !base <= last do
    Lams_util.Fbuf.unsafe_set mem !base v;
    base := !base + Array.unsafe_get delta !i;
    incr i;
    if !i = length then i := 0
  done

(* --- Figure 8(c): for over one period inside while(TRUE), goto done --- *)
exception Done

let assign_c (p : Plan.t) (mem : Lams_util.Fbuf.t) v =
  let delta = p.Plan.delta_m and length = p.Plan.length in
  let last = p.Plan.last_local in
  let base = ref p.Plan.start_local in
  (try
     while true do
       for i = 0 to length - 1 do
         Lams_util.Fbuf.unsafe_set mem !base v;
         base := !base + Array.unsafe_get delta i;
         if !base > last then raise_notrace Done
       done
     done
   with Done -> ())

(* --- Figure 8(d): two-table lookup indexed by local offset --- *)
let assign_d (p : Plan.t) (mem : Lams_util.Fbuf.t) v =
  let delta = p.Plan.delta_by_offset and next = p.Plan.next_offset in
  let last = p.Plan.last_local in
  let base = ref p.Plan.start_local and i = ref p.Plan.start_offset in
  while !base <= last do
    Lams_util.Fbuf.unsafe_set mem !base v;
    base := !base + Array.unsafe_get delta !i;
    i := Array.unsafe_get next !i
  done

let assign shape p mem v =
  check_mem p mem;
  match shape with
  | Shape_a -> assign_a p mem v
  | Shape_b -> assign_b p mem v
  | Shape_c -> assign_c p mem v
  | Shape_d -> assign_d p mem v

let visit shape (p : Plan.t) ~f =
  let last = p.Plan.last_local in
  match shape with
  | Shape_a ->
      let base = ref p.Plan.start_local and i = ref 0 in
      while !base <= last do
        f !base;
        base := !base + p.Plan.delta_m.(!i);
        i := (!i + 1) mod p.Plan.length
      done
  | Shape_b ->
      let base = ref p.Plan.start_local and i = ref 0 in
      while !base <= last do
        f !base;
        base := !base + p.Plan.delta_m.(!i);
        incr i;
        if !i = p.Plan.length then i := 0
      done
  | Shape_c ->
      let base = ref p.Plan.start_local in
      (try
         while true do
           for i = 0 to p.Plan.length - 1 do
             f !base;
             base := !base + p.Plan.delta_m.(i);
             if !base > last then raise_notrace Done
           done
         done
       with Done -> ())
  | Shape_d ->
      let base = ref p.Plan.start_local and i = ref p.Plan.start_offset in
      while !base <= last do
        f !base;
        base := !base + p.Plan.delta_by_offset.(!i);
        i := p.Plan.next_offset.(!i)
      done

let addresses shape p =
  let acc = ref [] and n = ref 0 in
  visit shape p ~f:(fun a ->
      acc := a :: !acc;
      incr n);
  let out = Array.make !n 0 in
  List.iteri (fun idx a -> out.(!n - 1 - idx) <- a) !acc;
  out

type op_stats = {
  writes : int;
  mods : int;
  wrap_tests : int;
  table_loads : int;
}

let op_stats shape p =
  let n = Plan.access_count p in
  match shape with
  | Shape_a -> { writes = n; mods = n; wrap_tests = 0; table_loads = n }
  | Shape_b -> { writes = n; mods = 0; wrap_tests = n; table_loads = n }
  | Shape_c ->
      (* The period-boundary test disappears into the for-loop bound; only
         the exit compare remains per element. *)
      { writes = n; mods = 0; wrap_tests = n; table_loads = n }
  | Shape_d -> { writes = n; mods = 0; wrap_tests = 0; table_loads = 2 * n }
