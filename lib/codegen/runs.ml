type run = { start_local : int; length : int }

let fold_runs plan ~init ~f =
  (* One pass over the traversal, merging distance-1 neighbours. *)
  let acc = ref init in
  let current = ref None in
  Shapes.visit Shapes.Shape_b plan ~f:(fun addr ->
      match !current with
      | Some (start, len) when addr = start + len ->
          current := Some (start, len + 1)
      | Some (start, len) ->
          acc := f !acc { start_local = start; length = len };
          current := Some (addr, 1)
      | None -> current := Some (addr, 1));
  (match !current with
  | Some (start, len) -> acc := f !acc { start_local = start; length = len }
  | None -> ());
  !acc

let of_plan plan = List.rev (fold_runs plan ~init:[] ~f:(fun acc r -> r :: acc))

let count plan = fold_runs plan ~init:0 ~f:(fun acc _ -> acc + 1)

let fill_by_runs plan mem v =
  fold_runs plan ~init:() ~f:(fun () { start_local; length } ->
      Lams_util.Fbuf.fill_range mem ~pos:start_local ~len:length v)

let average_run_length plan =
  let runs, elems =
    fold_runs plan ~init:(0, 0) ~f:(fun (r, e) { length; _ } ->
        (r + 1, e + length))
  in
  if runs = 0 then nan else float_of_int elems /. float_of_int runs
