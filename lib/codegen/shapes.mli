(** The four node-code shapes of the paper's Figure 8, as executable
    traversals over a processor's local memory.

    All four visit exactly the same local addresses (the plan's share of
    [A(l:u:s)], in increasing index order); they differ only in the
    bookkeeping per element, which is what Table 2 measures:

    - {b Shape_a}: cyclic index via [i = (i+1) mod length] — one integer
      division per element (the paper's conceptual version).
    - {b Shape_b}: the [mod] replaced by a compare-and-reset test (what
      Chatterjee et al. actually implemented).
    - {b Shape_c}: a [for] loop over one period inside an infinite loop,
      exiting by [goto] — removes the wrap test from the dependence chain
      and schedules better.
    - {b Shape_d}: tables indexed by {e local offset} ([deltaM] +
      [NextOffset]) — two table lookups, no wrap logic at all; fastest in
      the paper. *)

type t = Shape_a | Shape_b | Shape_c | Shape_d

val all : t list
val name : t -> string
(** "8(a)" … "8(d)". *)

val of_string : string -> t option
(** Accepts "a" | "8a" | "8(a)" (case-insensitive), etc. *)

val assign : t -> Plan.t -> Lams_util.Fbuf.t -> float -> unit
(** [assign shape plan mem v] performs the paper's measured kernel
    [A(l:u:s) = v] on the local memory. Dedicated tight loop per shape (no
    closures) so the benchmark measures the shape, not the harness.
    @raise Invalid_argument if [mem] is shorter than
    [Plan.local_extent_needed plan]. *)

val visit : t -> Plan.t -> f:(int -> unit) -> unit
(** Call [f] on every visited local address, in order (verification
    path). *)

val addresses : t -> Plan.t -> int array
(** Materialised visit order. *)

type op_stats = {
  writes : int;
  mods : int;  (** integer [mod] operations *)
  wrap_tests : int;  (** compare-and-reset / loop-exit tests *)
  table_loads : int;  (** gap/next-offset table reads *)
}

val op_stats : t -> Plan.t -> op_stats
(** Bookkeeping-operation counts for one full traversal — the ablation
    data explaining Table 2's ordering. *)
