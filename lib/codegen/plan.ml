open Lams_core
open Lams_dist

type t = {
  problem : Problem.t;
  m : int;
  u : int;
  start_local : int;
  last_local : int;
  length : int;
  delta_m : int array;
  start_offset : int;
  delta_by_offset : int array;
  next_offset : int array;
}

let check_m pr m =
  if m < 0 || m >= pr.Problem.p then
    invalid_arg "Plan.build: processor out of range"

let assemble pr ~m ~u ~(table : Access_table.t) ~(fsm : Fsm.t) ~last =
  let lay = Problem.layout pr in
  { problem = pr;
    m;
    u;
    start_local = Option.get table.Access_table.start_local;
    last_local = Layout.local_address lay last;
    length = table.Access_table.length;
    delta_m = table.Access_table.gaps;
    start_offset = fsm.Fsm.start_offset;
    delta_by_offset = fsm.Fsm.delta;
    next_offset = fsm.Fsm.next_offset }

let build_uncached pr ~m ~u =
  check_m pr m;
  match Start_finder.last_location pr ~m ~u with
  | None -> None
  | Some last ->
      let table = Kns.gap_table pr ~m in
      let fsm =
        match Fsm.build pr ~m with
        | Some f -> f
        | None ->
            invalid_arg
              "Plan.build_uncached: FSM missing although a last location \
               exists (a non-empty bounded section implies a non-empty \
               access table)"
      in
      Some (assemble pr ~m ~u ~table ~fsm ~last)

let build pr ~m ~u =
  check_m pr m;
  let view = Plan_cache.find pr ~u in
  match Plan_cache.last_location view ~m with
  | None -> None
  | Some last ->
      let table = Plan_cache.table view ~m in
      let fsm =
        match Plan_cache.fsm view ~m with
        | Some f -> f
        | None ->
            invalid_arg
              "Plan.build: cached FSM missing although a last location \
               exists (a non-empty bounded section implies a non-empty \
               access table)"
      in
      Some (assemble pr ~m ~u ~table ~fsm ~last)

let access_count t =
  Start_finder.count_owned t.problem ~m:t.m ~u:t.u

let local_extent_needed t = t.last_local + 1

let pp ppf t =
  Format.fprintf ppf
    "proc %d: start=%d last=%d length=%d AM=[%s] startoff=%d" t.m
    t.start_local t.last_local t.length
    (String.concat "; " (Array.to_list (Array.map string_of_int t.delta_m)))
    t.start_offset
